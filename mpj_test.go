package mpj

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunLocalAllreduce(t *testing.T) {
	err := RunLocal(4, func(p *Process) error {
		w := p.World()
		sum := make([]int64, 1)
		if err := w.Allreduce([]int64{int64(w.Rank())}, 0, sum, 0, 1, LONG, SUM); err != nil {
			return err
		}
		if sum[0] != 6 {
			return fmt.Errorf("rank %d: sum = %d", w.Rank(), sum[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunLocalEveryDevice(t *testing.T) {
	for _, dev := range []string{"niodev", "mxdev", "smpdev", "ibisdev"} {
		dev := dev
		t.Run(dev, func(t *testing.T) {
			err := RunLocalOpts(3, &Options{Device: dev}, func(p *Process) error {
				w := p.World()
				buf := make([]int32, 1)
				if w.Rank() == 0 {
					buf[0] = 42
				}
				if err := w.Bcast(buf, 0, 1, INT, 0); err != nil {
					return err
				}
				if buf[0] != 42 {
					return fmt.Errorf("rank %d: bcast got %d", w.Rank(), buf[0])
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunLocalSingleRank(t *testing.T) {
	if err := RunLocal(1, func(p *Process) error {
		if p.Size() != 1 || p.Rank() != 0 {
			return fmt.Errorf("rank/size %d/%d", p.Rank(), p.Size())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLocalPropagatesBodyError(t *testing.T) {
	err := RunLocal(2, func(p *Process) error {
		if p.Rank() == 1 {
			return fmt.Errorf("deliberate failure")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunLocalRecoversPanic(t *testing.T) {
	err := RunLocal(2, func(p *Process) error {
		if p.Rank() == 0 {
			// Drain the message rank 1 sends before panicking, so the
			// job isn't wedged.
			buf := make([]int32, 1)
			p.World().Recv(buf, 0, 1, INT, 1, 0)
			panic("boom")
		}
		return p.World().Send([]int32{1}, 0, 1, INT, 0, 0)
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunLocalRejectsBadConfig(t *testing.T) {
	if err := RunLocal(0, func(p *Process) error { return nil }); err == nil {
		t.Error("0 ranks accepted")
	}
	if err := RunLocalOpts(1, &Options{Device: "nosuch"}, func(p *Process) error { return nil }); err == nil {
		t.Error("unknown device accepted")
	}
	if err := RunLocalOpts(1, &Options{Fabric: "nosuch"}, func(p *Process) error { return nil }); err == nil {
		t.Error("unknown fabric accepted")
	}
}

func TestRunLocalShapedFabric(t *testing.T) {
	// Over the emulated Gigabit Ethernet fabric a small round trip
	// must take at least two one-way latencies (2 * 21 us).
	err := RunLocalOpts(2, &Options{Fabric: "gige"}, func(p *Process) error {
		w := p.World()
		buf := make([]int32, 1)
		if w.Rank() == 0 {
			start := time.Now()
			if err := w.Send([]int32{1}, 0, 1, INT, 1, 0); err != nil {
				return err
			}
			if _, err := w.Recv(buf, 0, 1, INT, 1, 0); err != nil {
				return err
			}
			if rtt := time.Since(start); rtt < 42*time.Microsecond {
				return fmt.Errorf("round trip %v unbelievably fast for emulated GigE", rtt)
			}
		} else {
			if _, err := w.Recv(buf, 0, 1, INT, 0, 0); err != nil {
				return err
			}
			if err := w.Send(buf, 0, 1, INT, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDevicesList(t *testing.T) {
	devs := Devices()
	want := []string{"ibisdev", "mxdev", "niodev", "smpdev"}
	for _, w := range want {
		found := false
		for _, d := range devs {
			if d == w {
				found = true
			}
		}
		if !found {
			t.Errorf("device %q not registered (have %v)", w, devs)
		}
	}
}

func TestPublicWaitAnyOverlap(t *testing.T) {
	// The §V-A pattern at the public API: post wildcard receives, do
	// other work, then collect with WaitAny.
	err := RunLocal(2, func(p *Process) error {
		w := p.World()
		const k = 5
		if w.Rank() == 0 {
			reqs := make([]*Request, k)
			bufs := make([][]int64, k)
			for i := 0; i < k; i++ {
				bufs[i] = make([]int64, 1)
				r, err := w.Irecv(bufs[i], 0, 1, LONG, AnySource, i)
				if err != nil {
					return err
				}
				reqs[i] = r
			}
			remaining := k
			for remaining > 0 {
				idx, st, err := WaitAny(reqs)
				if err != nil {
					return err
				}
				if st.Tag != idx {
					return fmt.Errorf("tag %d at index %d", st.Tag, idx)
				}
				if bufs[idx][0] != int64(idx*3) {
					return fmt.Errorf("payload %d at index %d", bufs[idx][0], idx)
				}
				reqs[idx] = nil
				remaining--
			}
			return nil
		}
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				w.Send([]int64{int64(i * 3)}, 0, 1, LONG, 0, i)
			}(i)
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunLocalManyRanks(t *testing.T) {
	const n = 12
	err := RunLocal(n, func(p *Process) error {
		w := p.World()
		out := make([]int32, n)
		if err := w.Allgather([]int32{int32(w.Rank())}, 0, 1, INT, out, 0, 1, INT); err != nil {
			return err
		}
		for i := range out {
			if out[i] != int32(i) {
				return fmt.Errorf("allgather %v", out)
			}
		}
		return w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
