package mpj

import (
	"mpj/internal/ckpt"
	"mpj/internal/xdev"
)

// Fault tolerance. When a rank dies mid-job, operations touching it
// fail with an error matching ErrPeerLost instead of hanging. The
// survivors then run the ULFM recovery sequence on the damaged
// communicator — all three operations are methods on Intracomm:
//
//	Revoke()  poison the communicator everywhere: every pending and
//	          future operation on it fails with ErrRevoked
//	Agree(f)  fault-tolerant agreement: the bitwise AND of every
//	          survivor's flag word, uniform even under further deaths
//	Shrink()  a fresh, fully working communicator over the survivors
//
// and typically restore application state from the last coordinated
// checkpoint (Checkpoint / LatestCheckpoint / RestoreCheckpoint).
// examples/heat -ckpt is a complete worked example, and multi-process
// jobs opt in with mpjrun -ft, which reports a lost rank to the job
// instead of tearing it down.
var (
	// ErrRevoked matches (errors.Is) every error produced by an
	// operation on a revoked communicator.
	ErrRevoked = xdev.ErrRevoked
	// ErrPeerLost matches every error produced by an operation that
	// failed because the peer process died.
	ErrPeerLost = xdev.ErrPeerLost
)

// Checkpoint/restart surface, re-exported from the internal
// implementation (see internal/ckpt for the file format).
type (
	// CheckpointRegion is one named piece of rank-local state included
	// in a coordinated checkpoint.
	CheckpointRegion = ckpt.Region
	// Snapshot is one rank's state restored from a checkpoint.
	Snapshot = ckpt.Snapshot
)

// Checkpoint takes a coordinated snapshot of the communicator into
// dir/<id>: collective — barriers bracket the per-rank writes, and the
// checkpoint only becomes visible (to LatestCheckpoint) once every
// rank's CRC-protected snapshot file is durable. A rank with no
// region data still participates by passing no regions.
func Checkpoint(comm *Intracomm, dir, id string, regions ...CheckpointRegion) error {
	return ckpt.Checkpoint(comm, dir, id, regions...)
}

// LatestCheckpoint returns the id of the newest completed checkpoint
// under dir, or "" when none exists. Checkpoints interrupted
// mid-write are ignored.
func LatestCheckpoint(dir string) (string, error) {
	return ckpt.Latest(dir)
}

// RestoreCheckpoint loads the snapshots this rank owns from
// checkpoint id: its own pre-failure state — located by process
// identity in old, the group of the communicator that took the
// checkpoint — plus any orphaned snapshots of dead ranks dealt to it
// round-robin. comm is the current (typically shrunken) communicator;
// the result maps old ranks to snapshots.
func RestoreCheckpoint(dir, id string, old *Group, comm *Intracomm) (map[int]*Snapshot, error) {
	return ckpt.Restore(dir, id, old, comm)
}
