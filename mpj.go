// Package mpj is a Go implementation of MPJ Express — the thread-safe
// MPI-like messaging library of Baker, Carpenter and Shafi ("MPJ
// Express: Towards Thread Safe Java HPC", IEEE Cluster 2006) — built
// from scratch on the Go standard library.
//
// The library reproduces the paper's layered architecture (Fig. 1):
//
//	mpj (this package)        — the MPJ API: communicators, collectives
//	internal/core             — high level + base level
//	internal/mpjdev           — rank-level device layer, Waitany/peek
//	internal/xdev             — the pluggable device API (Fig. 2)
//	internal/niodev           — pure-Go TCP device (eager + rendezvous)
//	internal/mxdev, mxsim     — device over a simulated Myrinet eXpress
//	internal/smpdev           — shared-memory device for SMP ranks
//	internal/mpjbuf           — the buffering API (static + dynamic)
//
// Every communication path is safe at MPI_THREAD_MULTIPLE: any
// goroutine of a rank may send, receive, probe or wait concurrently.
//
// # Quick start
//
//	mpj.RunLocal(4, func(p *mpj.Process) error {
//	    w := p.World()
//	    sum := make([]int64, 1)
//	    if err := w.Allreduce([]int64{int64(w.Rank())}, 0, sum, 0, 1, mpj.LONG, mpj.SUM); err != nil {
//	        return err
//	    }
//	    fmt.Printf("rank %d of %d: sum=%d\n", w.Rank(), w.Size(), sum[0])
//	    return nil
//	})
//
// Multi-process jobs are bootstrapped with the mpjrun/mpjdaemon tools
// (cmd/mpjrun, cmd/mpjdaemon); a launched process joins its job with
// InitFromEnv.
package mpj

import (
	"mpj/internal/core"
	"mpj/internal/mpjbuf"
)

// Version is the library version.
const Version = "1.0.0"

// Core type surface, re-exported for applications. External modules
// import only this package; the internal packages are implementation.
type (
	// Process is one MPI process handle (Init/Finalize scope).
	Process = core.Process
	// Intracomm is a single-group communicator with collectives.
	Intracomm = core.Intracomm
	// Intercomm is a two-group communicator.
	Intercomm = core.Intercomm
	// CartComm is an intracommunicator with a Cartesian grid.
	CartComm = core.CartComm
	// GraphComm is an intracommunicator with a neighbour graph.
	GraphComm = core.GraphComm
	// Group is an ordered process set.
	Group = core.Group
	// Datatype describes element layout (derived datatypes).
	Datatype = core.Datatype
	// Op is a reduction operation.
	Op = core.Op
	// Status describes a completed receive.
	Status = core.Status
	// Request is an in-flight non-blocking operation.
	Request = core.Request
	// ThreadLevel is an MPI-2.0 thread-support level.
	ThreadLevel = core.ThreadLevel
	// Win is a one-sided communication window (MPI-2 RMA): each rank
	// exposes a byte region that any rank reads, writes and combines
	// into with Put/Get/Accumulate, synchronized by Fence or
	// Lock/Unlock. Created with Intracomm.WinCreate.
	Win = core.Win
)

// Lock types for Win.Lock (MPI_LOCK_SHARED / MPI_LOCK_EXCLUSIVE).
const (
	LockShared    = core.LockShared
	LockExclusive = core.LockExclusive
)

// Wildcards and special ranks.
const (
	// AnySource matches a message from any rank (MPI.ANY_SOURCE).
	AnySource = core.AnySource
	// AnyTag matches any message tag (MPI.ANY_TAG).
	AnyTag = core.AnyTag
	// Undefined is the rank of processes outside a group, and the
	// non-member color for Split.
	Undefined = core.Undefined
	// ProcNull is the null process rank (MPI.PROC_NULL).
	ProcNull = core.ProcNull
)

// Thread-support levels (§IV-B). InitThread always provides
// ThreadMultiple.
const (
	ThreadSingle     = core.ThreadSingle
	ThreadFunneled   = core.ThreadFunneled
	ThreadSerialized = core.ThreadSerialized
	ThreadMultiple   = core.ThreadMultiple
)

// Base datatypes.
var (
	BYTE    = core.BYTE
	BOOLEAN = core.BOOLEAN
	CHAR    = core.CHAR
	SHORT   = core.SHORT
	INT     = core.INT
	LONG    = core.LONG
	FLOAT   = core.FLOAT
	DOUBLE  = core.DOUBLE
	OBJECT  = core.OBJECT
)

// Built-in reduction operations.
var (
	// REPLACE is the MPI_REPLACE accumulate op (Win.Accumulate only
	// combines with built-in ops).
	REPLACE = core.REPLACE

	MAX    = core.MAX
	MIN    = core.MIN
	SUM    = core.SUM
	PROD   = core.PROD
	LAND   = core.LAND
	LOR    = core.LOR
	LXOR   = core.LXOR
	BAND   = core.BAND
	BOR    = core.BOR
	BXOR   = core.BXOR
	MAXLOC = core.MAXLOC
	MINLOC = core.MINLOC
)

// Struct builds a heterogeneous derived datatype over []any buffers
// (MPI_Type_struct); see core.Struct.
func Struct(blocklengths, displacements []int, types []*Datatype) (*Datatype, error) {
	return core.Struct(blocklengths, displacements, types)
}

// NewOp wraps a user-defined reduction function (MPI_Op_create).
func NewOp(fn func(in, inout any) error, commute bool) *Op {
	return core.NewOp(fn, commute)
}

// DimsCreate factors nnodes into balanced grid dimensions
// (MPI_Dims_create).
func DimsCreate(nnodes int, dims []int) ([]int, error) {
	return core.DimsCreate(nnodes, dims)
}

// WaitAll blocks until all non-nil requests complete (MPI_Waitall).
func WaitAll(reqs []*Request) ([]*Status, error) { return core.WaitAll(reqs) }

// WaitAny blocks until one request completes, without polling
// (paper §IV-E.1); it returns the completed request's index.
func WaitAny(reqs []*Request) (int, *Status, error) { return core.WaitAny(reqs) }

// TestAny polls the requests once (MPI_Testany).
func TestAny(reqs []*Request) (int, *Status, bool, error) { return core.TestAny(reqs) }

// TestAll reports whether all requests have completed (MPI_Testall).
func TestAll(reqs []*Request) ([]*Status, bool, error) { return core.TestAll(reqs) }

// Wtime returns elapsed wall-clock seconds since a fixed point in the
// past (MPI_Wtime).
func Wtime() float64 { return core.Wtime() }

// Wtick returns the resolution of Wtime in seconds (MPI_Wtick).
func Wtick() float64 { return core.Wtick() }

// RegisterObjectType records a concrete Go type for OBJECT-datatype
// messages (the Serializable analogue); built-ins are pre-registered.
func RegisterObjectType(v any) { mpjbuf.RegisterObjectType(v) }

// Buffer is the mpjbuf message buffer, exposed for the direct-buffer
// API the paper's conclusion proposes: pack once with the typed Write
// methods, then move it with Comm.SendBuffer/RecvBuffer, skipping the
// per-call pack/unpack of the typed interface.
type Buffer = mpjbuf.Buffer

// NewBuffer returns a Buffer whose static section has the given
// initial capacity in bytes.
func NewBuffer(capacity int) *Buffer { return mpjbuf.New(capacity) }
