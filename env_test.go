package mpj

import (
	"fmt"
	"net"
	"testing"
)

func TestInitFromEnvSingleRank(t *testing.T) {
	// A size-1 job still needs a listen address string present.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	addr := l.Addr().String()
	l.Close()

	t.Setenv(EnvRank, "0")
	t.Setenv(EnvSize, "1")
	t.Setenv(EnvAddrs, addr)
	t.Setenv(EnvDevice, "niodev")

	p, err := InitFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Finalize()
	if p.Rank() != 0 || p.Size() != 1 {
		t.Fatalf("rank/size %d/%d", p.Rank(), p.Size())
	}
	// Self traffic works.
	w := p.World()
	req, err := w.Isend([]int32{5}, 0, 1, INT, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int32, 1)
	if _, err := w.Recv(buf, 0, 1, INT, 0, 0); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 5 {
		t.Fatalf("got %d", buf[0])
	}
	if _, err := req.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestInitFromEnvValidation(t *testing.T) {
	cases := []struct{ rank, size, addrs, dev string }{
		{"", "1", "a", ""},           // missing rank
		{"0", "", "a", ""},           // missing size
		{"0", "2", "only-one", ""},   // addr count mismatch
		{"0", "1", "a", "nosuchdev"}, // unknown device
		{"zero", "1", "a", "niodev"}, // unparseable rank
	}
	for i, c := range cases {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			t.Setenv(EnvRank, c.rank)
			t.Setenv(EnvSize, c.size)
			t.Setenv(EnvAddrs, c.addrs)
			t.Setenv(EnvDevice, c.dev)
			if p, err := InitFromEnv(); err == nil {
				p.Finalize()
				t.Errorf("case %d accepted", i)
			}
		})
	}
}
