package mpj_test

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"

	"mpj/internal/mpjrt"
)

// TestExamplesRun executes every example end to end (via go run) and
// checks for its expected output — the examples are documentation and
// must stay runnable.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	ckdir := t.TempDir()
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"quickstart", []string{"run", "./examples/quickstart"}, "broadcast said"},
		{"pi", []string{"run", "./examples/pi", "-samples", "200000", "-np", "2"}, "pi ≈ 3.1"},
		{"nbody", []string{"run", "./examples/nbody", "-n", "128", "-steps", "3", "-np", "2"}, "kinetic energy"},
		{"heat", []string{"run", "./examples/heat", "-grid", "32", "-iters", "60", "-np", "4"}, "average plate temperature"},
		{"multithreaded", []string{"run", "./examples/multithreaded", "-goroutines", "3", "-msgs", "5"}, "MPI_THREAD_MULTIPLE verified"},
		// 48 divides evenly over both the 2x2 start grid and the 3x1
		// survivor grid after the kill.
		{"heat-recovery", []string{"run", "./examples/heat", "-grid", "48", "-iters", "80", "-np", "4",
			"-ckpt", ckdir, "-ckpt-every", "15", "-kill", "1", "-kill-iter", "25"},
			"survivors restored checkpoint"},
		{"pagerank", []string{"run", "./examples/pagerank", "-nodes", "600", "-iters", "40", "-np", "3"}, "pagerank mass 1.000"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}

// TestNbodyBenchDeterminism runs the nbody example's serial-vs-parallel
// comparison, which internally asserts bit-identical energies.
func TestNbodyBenchDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	out, err := exec.Command("go", "run", "./examples/nbody", "-bench", "-n", "96", "-steps", "3", "-np", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "results identical") {
		t.Fatalf("determinism check missing:\n%s", out)
	}
}

// TestCommandsRun smoke-tests the command-line tools.
func TestCommandsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("commands skipped in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"benchfig-fig10", []string{"run", "./cmd/benchfig", "-fig", "10"}, "Figure 10"},
		{"benchfig-qualitative", []string{"run", "./cmd/benchfig", "-exp", "qualitative"}, "thread-safe communication"},
		{"benchfig-many-recv", []string{"run", "./cmd/benchfig", "-exp", "many-recv"}, "posted 650/650"},
		{"pingpong", []string{"run", "./cmd/pingpong", "-max", "4096", "-reps", "5"}, "bytes"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}

// TestBenchfigSVG checks the chart renderer end to end.
func TestBenchfigSVG(t *testing.T) {
	if testing.Short() {
		t.Skip("commands skipped in -short mode")
	}
	path := t.TempDir() + "/fig13.svg"
	out, err := exec.Command("go", "run", "./cmd/benchfig", "-fig", "13", "-svg", path).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") || !strings.Contains(string(data), "MPJ Express") {
		t.Fatalf("svg malformed: %.120s", data)
	}
}

// TestNbodyViaDaemon builds the nbody example and launches it as a
// real 3-process job through the runtime system (daemon + mpjrun
// logic) over loopback TCP — the full Fig. 9 path on a real workload.
func TestNbodyViaDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon job skipped in -short mode")
	}
	bin := t.TempDir() + "/nbody"
	if out, err := exec.Command("go", "build", "-o", bin, "./examples/nbody").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	d, err := mpjrt.NewDaemon("127.0.0.1:0", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var buf bytes.Buffer
	res, err := mpjrt.Run(mpjrt.Job{
		NP:       3,
		Daemons:  []string{d.Addr()},
		Program:  bin,
		Args:     []string{"-n", "192", "-steps", "3"},
		BasePort: 24831,
		Output:   &buf,
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if res.Failed() {
		t.Fatalf("exit codes %v\n%s", res.ExitCodes, buf.String())
	}
	if !strings.Contains(buf.String(), "np=3: 192 particles, 3 steps, kinetic energy") {
		t.Fatalf("output: %s", buf.String())
	}
}
