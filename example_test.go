package mpj_test

import (
	"fmt"
	"sort"
	"sync"

	"mpj"
)

// ExampleRunLocal runs four ranks in one process and reduces their
// ranks to a sum every rank observes.
func ExampleRunLocal() {
	var mu sync.Mutex
	var lines []string
	err := mpj.RunLocal(4, func(p *mpj.Process) error {
		w := p.World()
		sum := make([]int64, 1)
		if err := w.Allreduce([]int64{int64(w.Rank())}, 0, sum, 0, 1, mpj.LONG, mpj.SUM); err != nil {
			return err
		}
		mu.Lock()
		lines = append(lines, fmt.Sprintf("rank %d sees sum %d", w.Rank(), sum[0]))
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// rank 0 sees sum 6
	// rank 1 sees sum 6
	// rank 2 sees sum 6
	// rank 3 sees sum 6
}

// ExampleDatatype_Vector sends the first column of a 4x4 matrix using
// a strided derived datatype (paper §IV-C's example).
func ExampleDatatype_Vector() {
	err := mpj.RunLocal(2, func(p *mpj.Process) error {
		w := p.World()
		col, err := mpj.FLOAT.Vector(4, 1, 4)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			matrix := make([]float32, 16)
			for i := range matrix {
				matrix[i] = float32(i)
			}
			return w.Send(matrix, 0, 1, col, 1, 0)
		}
		column := make([]float32, 4)
		if _, err := w.Recv(column, 0, 4, mpj.FLOAT, 0, 0); err != nil {
			return err
		}
		fmt.Println(column)
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// [0 4 8 12]
}

// ExampleWaitAny overlaps computation with wildcard receives, the
// pattern §V-A measures.
func ExampleWaitAny() {
	err := mpj.RunLocal(2, func(p *mpj.Process) error {
		w := p.World()
		if w.Rank() == 1 {
			w.Send([]int64{7}, 0, 1, mpj.LONG, 0, 0)
			return nil
		}
		buf := make([]int64, 1)
		req, err := w.Irecv(buf, 0, 1, mpj.LONG, mpj.AnySource, 0)
		if err != nil {
			return err
		}
		idx, st, err := mpj.WaitAny([]*mpj.Request{req})
		if err != nil {
			return err
		}
		fmt.Printf("request %d from rank %d delivered %d\n", idx, st.Source, buf[0])
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// request 0 from rank 1 delivered 7
}
