package mpj

// The benchmark harness. Each paper table/figure has a regeneration
// path:
//
//   - Figs. 10–15 (transfer time / throughput on the three fabrics):
//     modelled curves — BenchmarkFigures exercises the generator, and
//     `go run ./cmd/benchfig -fig N` prints the rows; the Benchmark
//     PingPong* functions below measure the *live* Go implementation's
//     software path (the numbers EXPERIMENTS.md compares against the
//     modelled MPJ Express curves);
//   - §V-A (ANY_SOURCE overlap): BenchmarkAnySourceOverlap*;
//   - §VI (650 pending receives): BenchmarkManyPendingReceives;
//   - §IV-E.1 (Waitany via peek, no polling): BenchmarkWaitAnyPeek vs
//     BenchmarkWaitAnyPollingBaseline (ablation);
//   - §V-E (packing overhead: MPJE vs mpjdev): BenchmarkPacked vs
//     BenchmarkUnpacked transfer.

import (
	"fmt"
	"sync"
	"testing"

	"mpj/internal/expt"
	"mpj/internal/perfmodel"
)

// benchWorld wires n in-process ranks and runs fn; the benchmark body
// runs inside rank goroutines.
func benchWorld(b *testing.B, n int, opts *Options, fn func(p *Process) error) {
	b.Helper()
	if err := RunLocalOpts(n, opts, fn); err != nil {
		b.Fatal(err)
	}
}

// ---- live ping-pong over niodev (Figs. 10-15 live counterpart) ----

func benchPingPong(b *testing.B, size int, opts *Options) {
	b.SetBytes(int64(size))
	benchWorld(b, 2, opts, func(p *Process) error {
		w := p.World()
		peer := 1 - w.Rank()
		out := make([]byte, size)
		in := make([]byte, size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if w.Rank() == 0 {
				if err := w.Send(out, 0, size, BYTE, peer, 0); err != nil {
					return err
				}
				if _, err := w.Recv(in, 0, size, BYTE, peer, 0); err != nil {
					return err
				}
			} else {
				if _, err := w.Recv(in, 0, size, BYTE, peer, 0); err != nil {
					return err
				}
				if err := w.Send(out, 0, size, BYTE, peer, 0); err != nil {
					return err
				}
			}
		}
		b.StopTimer()
		return nil
	})
}

func BenchmarkPingPongEager(b *testing.B) {
	for _, size := range []int{1, 1 << 10, 16 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchPingPong(b, size, &Options{Device: "niodev"})
		})
	}
}

func BenchmarkPingPongRendezvous(b *testing.B) {
	for _, size := range []int{256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchPingPong(b, size, &Options{Device: "niodev"})
		})
	}
}

func BenchmarkPingPongMxdev(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchPingPong(b, size, &Options{Device: "mxdev"})
		})
	}
}

func BenchmarkPingPongSmpdev(b *testing.B) {
	benchPingPong(b, 1<<10, &Options{Device: "smpdev"})
}

// BenchmarkTracingOverhead measures what the mpe tracing subsystem
// costs on the 1 KiB ping-pong. "off" is the default path: the device
// Recorder is mpe.Nop and every hot-path hook sits behind a single
// Enabled() check, so it must stay within noise (<2%) of the
// pre-instrumentation baseline. "on" records every protocol event into
// the per-rank ring and feeds the latency histograms. EXPERIMENTS.md
// records the measured numbers.
func BenchmarkTracingOverhead(b *testing.B) {
	const size = 1 << 10
	b.Run("off", func(b *testing.B) {
		benchPingPong(b, size, &Options{Device: "niodev"})
	})
	b.Run("on", func(b *testing.B) {
		benchPingPong(b, size, &Options{Device: "niodev", Tracing: true, TraceDir: b.TempDir()})
	})
}

// ---- §V-E packing overhead ablation: MPJE-with-packing vs raw ----

// BenchmarkPackedTransfer sends doubles through the full MPJ path
// (pack into mpjbuf, transfer, unpack) — the MPJ Express curve.
func BenchmarkPackedTransfer(b *testing.B) {
	const n = 1 << 15 // 256 KiB of doubles
	b.SetBytes(int64(n * 8))
	benchWorld(b, 2, nil, func(p *Process) error {
		w := p.World()
		peer := 1 - w.Rank()
		data := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if w.Rank() == 0 {
				if err := w.Send(data, 0, n, DOUBLE, peer, 0); err != nil {
					return err
				}
			} else {
				if _, err := w.Recv(data, 0, n, DOUBLE, peer, 0); err != nil {
					return err
				}
			}
		}
		b.StopTimer()
		return nil
	})
}

// BenchmarkUnpackedTransfer sends the same bytes without element
// conversion (BYTE datatype fast path) — the mpjdev-like floor the
// paper compares against in §V-E.
func BenchmarkUnpackedTransfer(b *testing.B) {
	const n = 1 << 18 // 256 KiB
	b.SetBytes(int64(n))
	benchWorld(b, 2, nil, func(p *Process) error {
		w := p.World()
		peer := 1 - w.Rank()
		data := make([]byte, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if w.Rank() == 0 {
				if err := w.Send(data, 0, n, BYTE, peer, 0); err != nil {
					return err
				}
			} else {
				if _, err := w.Recv(data, 0, n, BYTE, peer, 0); err != nil {
					return err
				}
			}
		}
		b.StopTimer()
		return nil
	})
}

// ---- collectives ----

func BenchmarkBarrier(b *testing.B) {
	benchWorld(b, 4, nil, func(p *Process) error {
		w := p.World()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Barrier(); err != nil {
				return err
			}
		}
		b.StopTimer()
		return nil
	})
}

func BenchmarkBcast(b *testing.B) {
	const n = 1 << 12
	benchWorld(b, 4, nil, func(p *Process) error {
		w := p.World()
		buf := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Bcast(buf, 0, n, DOUBLE, 0); err != nil {
				return err
			}
		}
		b.StopTimer()
		return nil
	})
}

func BenchmarkAllreduce(b *testing.B) {
	const n = 1 << 10
	benchWorld(b, 4, nil, func(p *Process) error {
		w := p.World()
		in := make([]float64, n)
		out := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Allreduce(in, 0, out, 0, n, DOUBLE, SUM); err != nil {
				return err
			}
		}
		b.StopTimer()
		return nil
	})
}

func BenchmarkAlltoall(b *testing.B) {
	const per = 256
	benchWorld(b, 4, nil, func(p *Process) error {
		w := p.World()
		in := make([]int64, per*w.Size())
		out := make([]int64, per*w.Size())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Alltoall(in, 0, per, LONG, out, 0, per, LONG); err != nil {
				return err
			}
		}
		b.StopTimer()
		return nil
	})
}

// ---- §IV-E.1 ablation: peek-based WaitAny vs polling ----

func BenchmarkWaitAnyPeek(b *testing.B) {
	benchWorld(b, 2, nil, func(p *Process) error {
		w := p.World()
		peer := 1 - w.Rank()
		buf := make([]int64, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if w.Rank() == 0 {
				req, err := w.Irecv(buf, 0, 1, LONG, AnySource, 0)
				if err != nil {
					return err
				}
				if err := w.Send(buf, 0, 1, LONG, peer, 1); err != nil {
					return err
				}
				if _, _, err := WaitAny([]*Request{req}); err != nil {
					return err
				}
			} else {
				if _, err := w.Recv(buf, 0, 1, LONG, peer, 1); err != nil {
					return err
				}
				if err := w.Send(buf, 0, 1, LONG, peer, 0); err != nil {
					return err
				}
			}
		}
		b.StopTimer()
		return nil
	})
}

// BenchmarkWaitAnyPollingBaseline is the "straightforward" Waitany the
// paper rejects: spin on TestAny until something completes.
func BenchmarkWaitAnyPollingBaseline(b *testing.B) {
	benchWorld(b, 2, nil, func(p *Process) error {
		w := p.World()
		peer := 1 - w.Rank()
		buf := make([]int64, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if w.Rank() == 0 {
				req, err := w.Irecv(buf, 0, 1, LONG, AnySource, 0)
				if err != nil {
					return err
				}
				if err := w.Send(buf, 0, 1, LONG, peer, 1); err != nil {
					return err
				}
				for {
					_, _, ok, err := TestAny([]*Request{req})
					if err != nil {
						return err
					}
					if ok {
						break
					}
				}
			} else {
				if _, err := w.Recv(buf, 0, 1, LONG, peer, 1); err != nil {
					return err
				}
				if err := w.Send(buf, 0, 1, LONG, peer, 0); err != nil {
					return err
				}
			}
		}
		b.StopTimer()
		return nil
	})
}

// ---- thread-multiple scaling ----

func BenchmarkThreadMultipleSenders(b *testing.B) {
	const goroutines = 4
	benchWorld(b, 2, nil, func(p *Process) error {
		w := p.World()
		peer := 1 - w.Rank()
		b.ResetTimer()
		var wg sync.WaitGroup
		errs := make([]error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				buf := make([]int64, 1)
				for i := 0; i < b.N/goroutines+1; i++ {
					if err := w.Send(buf, 0, 1, LONG, peer, g); err != nil {
						errs[g] = err
						return
					}
					if _, err := w.Recv(buf, 0, 1, LONG, peer, g); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		b.StopTimer()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// ---- experiment and figure regeneration ----

func BenchmarkAnySourceOverlapMPJ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AnySourceOverlap("mpj", 128, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnySourceOverlapIbis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AnySourceOverlap("ibis", 128, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkManyPendingReceives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		posted, postErr, err := expt.ManyPendingReceives("mpj", 650)
		if err != nil || postErr != nil || posted != 650 {
			b.Fatalf("posted=%d postErr=%v err=%v", posted, postErr, err)
		}
	}
}

// BenchmarkObjectVsTypedTransfer quantifies §IV-C's concern about "the
// cost of object serialization": the same 4096 float64 values sent as
// a typed DOUBLE array (packed big-endian) versus as an OBJECT message
// (gob-serialized, the JDK-serialization analogue).
func BenchmarkObjectVsTypedTransfer(b *testing.B) {
	const n = 4096
	fill := func(dst []float64) {
		for i := range dst {
			dst[i] = 1.0/float64(i+1) + float64(i)*1e-3
		}
	}
	b.Run("typed-doubles", func(b *testing.B) {
		b.SetBytes(n * 8)
		benchWorld(b, 2, nil, func(p *Process) error {
			w := p.World()
			peer := 1 - w.Rank()
			data := make([]float64, n)
			fill(data)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if w.Rank() == 0 {
					if err := w.Send(data, 0, n, DOUBLE, peer, 0); err != nil {
						return err
					}
				} else {
					if _, err := w.Recv(data, 0, n, DOUBLE, peer, 0); err != nil {
						return err
					}
				}
			}
			b.StopTimer()
			return nil
		})
	})
	b.Run("object-serialized", func(b *testing.B) {
		// Boxed per-element objects, the shape of a Java Object[] —
		// each element pays serialization overhead individually.
		b.SetBytes(n * 8)
		benchWorld(b, 2, nil, func(p *Process) error {
			w := p.World()
			peer := 1 - w.Rank()
			payload := make([]float64, n)
			fill(payload)
			objs := make([]any, n)
			for i, v := range payload {
				objs[i] = v
			}
			in := make([]any, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if w.Rank() == 0 {
					if err := w.Send(objs, 0, n, OBJECT, peer, 0); err != nil {
						return err
					}
				} else {
					if _, err := w.Recv(in, 0, n, OBJECT, peer, 0); err != nil {
						return err
					}
				}
			}
			b.StopTimer()
			return nil
		})
	})
}

// BenchmarkEagerLimitSweep is the protocol-threshold ablation: the
// same 64 KiB transfer with the switch placed below (forcing
// rendezvous) and above (eager) the message size. The gap is the
// rendezvous handshake cost the paper's 128 KiB default avoids paying
// for small messages.
func BenchmarkEagerLimitSweep(b *testing.B) {
	const size = 64 << 10
	for _, cfg := range []struct {
		name  string
		limit int
	}{
		{"eager", 1 << 20},
		{"rendezvous", 1024},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			benchPingPong(b, size, &Options{Device: "niodev", EagerLimit: cfg.limit})
		})
	}
}

// BenchmarkFigures regenerates all six modelled evaluation figures.
func BenchmarkFigures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, f := range perfmodel.Figures() {
			if pts := f.Generate(); len(pts) == 0 {
				b.Fatal("empty figure")
			}
		}
	}
}
