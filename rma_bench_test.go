package mpj

// One-sided vs two-sided microbenchmarks (the ISSUE 6 tentpole's
// headline numbers, recorded in EXPERIMENTS.md): Put/Get/Accumulate
// against the equivalent Send/Recv exchange, on the shared-memory
// device (direct delivery: Put is a mutex + memcpy) and on niodev
// (active-message delivery: frames through the TCP stack). Small
// stays under one segment; large crosses the 64 KiB segment size —
// and, for the two-sided niodev baseline, the 128 KiB eager limit.

import (
	"fmt"
	"testing"
)

var rmaBenchSizes = []struct {
	name string
	n    int
}{
	{"small-1KiB", 1 << 10},
	{"large-256KiB", 256 << 10},
}

var rmaBenchDevices = []string{"smpdev", "niodev"}

// benchRMAWin runs a 2-rank job with one window per rank: rank 0 runs
// the timed body, rank 1 is a passive target that only matches the
// body's fences (fences are collective — every rank must make the
// same number of Fence calls). Free's internal fence then holds both
// ranks in the job until the other is done.
func benchRMAWin(b *testing.B, device string, winBytes, fences int, fn func(w *Win) error) {
	b.Helper()
	benchWorld(b, 2, &Options{Device: device}, func(p *Process) error {
		w, err := p.World().WinCreate(make([]byte, winBytes))
		if err != nil {
			return err
		}
		if p.World().Rank() == 0 {
			if err := fn(w); err != nil {
				return err
			}
		} else {
			for i := 0; i < fences; i++ {
				if err := w.Fence(); err != nil {
					return err
				}
			}
		}
		return w.Free()
	})
}

func BenchmarkRMAPut(b *testing.B) {
	for _, dev := range rmaBenchDevices {
		for _, sz := range rmaBenchSizes {
			b.Run(dev+"/"+sz.name, func(b *testing.B) {
				b.SetBytes(int64(sz.n))
				data := make([]byte, sz.n)
				benchRMAWin(b, dev, sz.n, 1, func(w *Win) error {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := w.Put(data, 1, 0); err != nil {
							return err
						}
					}
					// The closing fence is part of what a real epoch
					// pays; keep it inside the timed region.
					err := w.Fence()
					b.StopTimer()
					return err
				})
			})
		}
	}
}

func BenchmarkRMAGet(b *testing.B) {
	for _, dev := range rmaBenchDevices {
		for _, sz := range rmaBenchSizes {
			b.Run(dev+"/"+sz.name, func(b *testing.B) {
				b.SetBytes(int64(sz.n))
				dst := make([]byte, sz.n)
				benchRMAWin(b, dev, sz.n, 0, func(w *Win) error {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := w.Get(dst, 1, 0); err != nil {
							return err
						}
					}
					b.StopTimer()
					return nil
				})
			})
		}
	}
}

func BenchmarkRMAAccumulate(b *testing.B) {
	const n = 1 << 10 // 128 int64 slots
	for _, dev := range rmaBenchDevices {
		b.Run(dev, func(b *testing.B) {
			b.SetBytes(n)
			data := make([]byte, n)
			benchRMAWin(b, dev, n, 1, func(w *Win) error {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := w.Accumulate(data, 1, 0, LONG, SUM); err != nil {
						return err
					}
				}
				err := w.Fence()
				b.StopTimer()
				return err
			})
		})
	}
}

// BenchmarkRMASendRecvBaseline is the two-sided equivalent of the Put
// benchmark: the same bytes moved with Send on one side and a posted
// Recv on the other — the receiver participation one-sided
// communication eliminates.
func BenchmarkRMASendRecvBaseline(b *testing.B) {
	for _, dev := range rmaBenchDevices {
		for _, sz := range rmaBenchSizes {
			b.Run(fmt.Sprintf("%s/%s", dev, sz.name), func(b *testing.B) {
				b.SetBytes(int64(sz.n))
				benchWorld(b, 2, &Options{Device: dev}, func(p *Process) error {
					w := p.World()
					buf := make([]byte, sz.n)
					// Only rank 0 touches the timer: b is not
					// goroutine-safe and both ranks run this body.
					if w.Rank() == 0 {
						b.ResetTimer()
					}
					for i := 0; i < b.N; i++ {
						if w.Rank() == 0 {
							if err := w.Send(buf, 0, sz.n, BYTE, 1, 0); err != nil {
								return err
							}
						} else {
							if _, err := w.Recv(buf, 0, sz.n, BYTE, 0, 0); err != nil {
								return err
							}
						}
					}
					if w.Rank() == 0 {
						b.StopTimer()
					}
					return nil
				})
			})
		}
	}
}
