package mpj

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mpj/internal/replay"
)

// replayRoundTrip records a run of body, replays it while re-recording
// the observed decisions, and requires (a) a divergence-free replay
// and (b) per-rank decision logs byte-identical to the recording.
func replayRoundTrip(t *testing.T, n int, opts Options, body func(p *Process) error) {
	t.Helper()
	recDir, obsDir := t.TempDir(), t.TempDir()

	rec := opts
	rec.RecordDir = recDir
	if err := RunLocalOpts(n, &rec, body); err != nil {
		t.Fatalf("record run: %v", err)
	}

	rep := opts
	rep.ReplayDir = recDir
	rep.RecordDir = obsDir
	if err := RunLocalOpts(n, &rep, body); err != nil {
		t.Fatalf("replay run: %v", err)
	}

	for r := 0; r < n; r++ {
		name := replay.LogName(r)
		recorded, err := os.ReadFile(filepath.Join(recDir, name))
		if err != nil {
			t.Fatalf("rank %d recording: %v", r, err)
		}
		observed, err := os.ReadFile(filepath.Join(obsDir, name))
		if err != nil {
			t.Fatalf("rank %d observed log: %v", r, err)
		}
		if !bytes.Equal(recorded, observed) {
			t.Errorf("rank %d: replay-observed log differs from recording\nrecorded:\n%s\nobserved:\n%s",
				r, recorded, observed)
		}
	}
}

// replayDevices is the matrix every wildcard shape replays on. ibisdev
// rides smpdev transparently; hybrid composes smpdev and niodev.
var replayDevices = []struct {
	name string
	opts Options
}{
	{"niodev", Options{Device: "niodev"}},
	{"smpdev", Options{Device: "smpdev"}},
	{"mxdev", Options{Device: "mxdev"}},
	{"ibisdev", Options{Device: "ibisdev"}},
	{"hybrid", Options{Device: "hybrid", NodeMap: "0,0,1,1"}},
}

// TestReplayAnySource records and replays a many-to-one ANY_SOURCE
// pattern: rank 0 drains one message per peer in whatever order the
// senders race in, and the replay must reproduce that order exactly.
func TestReplayAnySource(t *testing.T) {
	const msgs = 8
	body := func(p *Process) error {
		w := p.World()
		if w.Rank() == 0 {
			buf := make([]int32, 2)
			for i := 0; i < (w.Size()-1)*msgs; i++ {
				st, err := w.Recv(buf, 0, 2, INT, AnySource, 7)
				if err != nil {
					return err
				}
				if int(buf[0]) != st.Source {
					return fmt.Errorf("payload says src %d, status says %d", buf[0], st.Source)
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			if err := w.Send([]int32{int32(w.Rank()), int32(i)}, 0, 2, INT, 0, 7); err != nil {
				return err
			}
		}
		return nil
	}
	for _, d := range replayDevices {
		t.Run(d.name, func(t *testing.T) {
			replayRoundTrip(t, 4, d.opts, body)
		})
	}
}

// TestReplayAnyTag replays an ANY_TAG shape: two sender threads on
// each peer race distinct tags at rank 0.
func TestReplayAnyTag(t *testing.T) {
	const perTag = 4
	body := func(p *Process) error {
		w := p.World()
		if w.Rank() == 0 {
			buf := make([]int32, 1)
			for src := 1; src < w.Size(); src++ {
				for i := 0; i < 2*perTag; i++ {
					if _, err := w.Recv(buf, 0, 1, INT, src, AnyTag); err != nil {
						return err
					}
				}
			}
			return nil
		}
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				tag := 100 + g
				for i := 0; i < perTag; i++ {
					if err := w.Send([]int32{int32(tag)}, 0, 1, INT, 0, tag); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		return errors.Join(errs...)
	}
	for _, d := range replayDevices {
		opts := d.opts
		if opts.NodeMap != "" {
			opts.NodeMap = "0,0,1" // 3-rank job
		}
		t.Run(d.name, func(t *testing.T) {
			replayRoundTrip(t, 3, opts, body)
		})
	}
}

// TestReplayAnySourceAnyTag replays the fully wild shape with racing
// sender threads across ranks and tags.
func TestReplayAnySourceAnyTag(t *testing.T) {
	const perThread = 3
	body := func(p *Process) error {
		w := p.World()
		if w.Rank() == 0 {
			buf := make([]int32, 1)
			total := (w.Size() - 1) * 2 * perThread
			for i := 0; i < total; i++ {
				if _, err := w.Recv(buf, 0, 1, INT, AnySource, AnyTag); err != nil {
					return err
				}
			}
			return nil
		}
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				tag := 10*w.Rank() + g
				for i := 0; i < perThread; i++ {
					if err := w.Send([]int32{int32(i)}, 0, 1, INT, 0, tag); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		return errors.Join(errs...)
	}
	for _, d := range replayDevices {
		t.Run(d.name, func(t *testing.T) {
			replayRoundTrip(t, 4, d.opts, body)
		})
	}
}

// TestReplayHybridClaims pins the hybriddev dual-post arbitration:
// with placement 0,0,1,1 rank 0's ANY_SOURCE receives are dual-posted
// on both the shared-memory and wire cores, and which core claims each
// request is a recorded decision the replay must reproduce (by
// single-posting into the recorded winner).
func TestReplayHybridClaims(t *testing.T) {
	const msgs = 6
	body := func(p *Process) error {
		w := p.World()
		if w.Rank() == 0 {
			buf := make([]int32, 1)
			for i := 0; i < (w.Size()-1)*msgs; i++ {
				if _, err := w.Recv(buf, 0, 1, INT, AnySource, 3); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			if err := w.Send([]int32{int32(i)}, 0, 1, INT, 0, 3); err != nil {
				return err
			}
		}
		return nil
	}
	replayRoundTrip(t, 4, Options{Device: "hybrid", NodeMap: "0,0,1,1"}, body)

	// The recording must actually contain claim decisions — rank 0 has
	// both a node-local peer (1) and wire peers (2, 3).
	dir := t.TempDir()
	if err := RunLocalOpts(4, &Options{Device: "hybrid", NodeMap: "0,0,1,1", RecordDir: dir}, body); err != nil {
		t.Fatal(err)
	}
	recs, err := replay.ReadLog(filepath.Join(dir, replay.LogName(0)))
	if err != nil {
		t.Fatal(err)
	}
	claims := 0
	for _, r := range recs {
		if r.Kind == "claim" && r.Dev != "" {
			claims++
		}
	}
	if claims == 0 {
		t.Fatal("hybrid ANY_SOURCE run recorded no resolved claim decisions")
	}
}

// TestReplayWaitany exercises the completion-pop decision stream:
// WaitAny's pop order over racing requests is recorded and enforced.
func TestReplayWaitany(t *testing.T) {
	const rounds = 5
	body := func(p *Process) error {
		w := p.World()
		if w.Rank() == 0 {
			for r := 0; r < rounds; r++ {
				reqs := make([]*Request, w.Size()-1)
				bufs := make([][]int32, w.Size()-1)
				for i := range reqs {
					bufs[i] = make([]int32, 1)
					var err error
					reqs[i], err = w.Irecv(bufs[i], 0, 1, INT, i+1, r)
					if err != nil {
						return err
					}
				}
				for done := 0; done < len(reqs); done++ {
					if _, _, err := WaitAny(reqs); err != nil {
						return err
					}
				}
			}
			return nil
		}
		for r := 0; r < rounds; r++ {
			if err := w.Send([]int32{int32(r)}, 0, 1, INT, 0, r); err != nil {
				return err
			}
		}
		return nil
	}
	for _, d := range replayDevices {
		if d.name == "ibisdev" {
			continue // no completion queue: Peek unsupported
		}
		t.Run(d.name, func(t *testing.T) {
			replayRoundTrip(t, 4, d.opts, body)
		})
	}
}

// TestReplayAgree records and replays fault-tolerant agreement
// outcomes alongside point-to-point traffic.
func TestReplayAgree(t *testing.T) {
	body := func(p *Process) error {
		w := p.World()
		for round := 0; round < 3; round++ {
			v, err := w.Agree(int64(0b111000 | round))
			if err != nil {
				return err
			}
			if v != int64(0b111000|round) {
				return fmt.Errorf("agree round %d: got %#x", round, v)
			}
		}
		return nil
	}
	replayRoundTrip(t, 3, Options{Device: "niodev"}, body)

	dir := t.TempDir()
	if err := RunLocalOpts(3, &Options{Device: "niodev", RecordDir: dir}, body); err != nil {
		t.Fatal(err)
	}
	recs, err := replay.ReadLog(filepath.Join(dir, replay.LogName(1)))
	if err != nil {
		t.Fatal(err)
	}
	agrees := 0
	for _, r := range recs {
		if r.Kind == "agree" {
			agrees++
		}
	}
	if agrees != 3 {
		t.Fatalf("recorded %d agree decisions, want 3", agrees)
	}
}

// TestReplayDivergenceTyped tampers with a recorded wildcard decision
// and requires the replay to fail with the typed divergence error
// naming the mismatch.
func TestReplayDivergenceTyped(t *testing.T) {
	dir := t.TempDir()
	body := func(p *Process) error {
		w := p.World()
		if w.Rank() == 0 {
			buf := make([]int32, 1)
			for i := 0; i < w.Size()-1; i++ {
				if _, err := w.Recv(buf, 0, 1, INT, AnySource, 9); err != nil {
					return err
				}
			}
			return nil
		}
		return w.Send([]int32{1}, 0, 1, INT, 0, 9)
	}
	if err := RunLocalOpts(3, &Options{Device: "smpdev", RecordDir: dir}, body); err != nil {
		t.Fatal(err)
	}

	// Corrupt the expected seq of rank 0's first wildcard match: the
	// recorded source still sends, but the stamp check must trip.
	path := filepath.Join(dir, replay.LogName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	tampered := false
	for i, ln := range lines {
		if strings.Contains(ln, `"k":"wildcard"`) && strings.Contains(ln, `"seq":`) {
			at := strings.Index(ln, `"seq":`)
			end := at + len(`"seq":`)
			rest := ln[end:]
			stop := strings.IndexAny(rest, ",}")
			lines[i] = ln[:end] + "1" + rest[stop:]
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatalf("no wildcard record to tamper in:\n%s", data)
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	err = RunLocalOpts(3, &Options{Device: "smpdev", ReplayDir: dir}, body)
	if err == nil {
		t.Fatal("tampered replay ran divergence-free")
	}
	if !errors.Is(err, replay.ErrReplayDiverged) {
		t.Fatalf("tampered replay error = %v, want ErrReplayDiverged", err)
	}
	var div *replay.DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("error %v carries no *DivergenceError", err)
	}
	if div.Op != "wildcard" {
		t.Fatalf("divergence op = %q, want wildcard", div.Op)
	}
}

// TestReplayTwiceByteIdentical replays the same recording twice and
// requires the two observed logs to agree byte for byte on every rank
// — the CI replay job's determinism assertion.
func TestReplayTwiceByteIdentical(t *testing.T) {
	const msgs = 4
	body := func(p *Process) error {
		w := p.World()
		if w.Rank() == 0 {
			buf := make([]int32, 1)
			for i := 0; i < (w.Size()-1)*msgs; i++ {
				if _, err := w.Recv(buf, 0, 1, INT, AnySource, AnyTag); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			if err := w.Send([]int32{int32(i)}, 0, 1, INT, 0, w.Rank()); err != nil {
				return err
			}
		}
		return nil
	}
	recDir := t.TempDir()
	if err := RunLocalOpts(4, &Options{Device: "niodev", RecordDir: recDir}, body); err != nil {
		t.Fatal(err)
	}
	obs := [2]string{t.TempDir(), t.TempDir()}
	for i, dir := range obs {
		if err := RunLocalOpts(4, &Options{Device: "niodev", ReplayDir: recDir, RecordDir: dir}, body); err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
	}
	for r := 0; r < 4; r++ {
		a, err := os.ReadFile(filepath.Join(obs[0], replay.LogName(r)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(obs[1], replay.LogName(r)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("rank %d: two replays of one recording disagree", r)
		}
	}
}

// TestReplayCIScenario is the CI replay job's driver (satellite 5,
// ISSUE 10): a chaos-seeded hybrid fan-in whose record and replay
// stages run as separate processes so the byte-compare happens on real
// on-disk artifacts. Gated on MPJ_CI_REPLAY_DIR / MPJ_CI_REPLAY_STAGE
// so the ordinary test run skips it; the workflow runs stage "record"
// once and stage "replay" twice (MPJ_CI_REPLAY_OUT=observed-1,
// observed-2), then asserts all three decision-log sets byte-identical
// and uploads them on divergence.
func TestReplayCIScenario(t *testing.T) {
	base := os.Getenv("MPJ_CI_REPLAY_DIR")
	stage := os.Getenv("MPJ_CI_REPLAY_STAGE")
	if base == "" || stage == "" {
		t.Skip("CI driver: set MPJ_CI_REPLAY_DIR and MPJ_CI_REPLAY_STAGE")
	}
	const msgs = 6
	body := func(p *Process) error {
		w := p.World()
		if w.Rank() == 0 {
			buf := make([]int32, 2)
			for i := 0; i < (w.Size()-1)*msgs; i++ {
				if _, err := w.Recv(buf, 0, 2, INT, AnySource, AnyTag); err != nil {
					return err
				}
			}
		} else {
			for i := 0; i < msgs; i++ {
				msg := []int32{int32(w.Rank()), int32(i)}
				if err := w.Send(msg, 0, 2, INT, 0, w.Rank()); err != nil {
					return err
				}
			}
		}
		// An agreement round so the CI scenario also exercises the
		// agree decision stream.
		if _, err := w.Agree(int64(1 << w.Rank())); err != nil {
			return err
		}
		return nil
	}
	opts := Options{Device: "hybrid", NodeMap: "0,0,1,1"}
	switch stage {
	case "record":
		opts.RecordDir = filepath.Join(base, "recorded")
	case "replay":
		out := os.Getenv("MPJ_CI_REPLAY_OUT")
		if out == "" {
			t.Fatal("stage replay needs MPJ_CI_REPLAY_OUT")
		}
		opts.ReplayDir = filepath.Join(base, "recorded")
		opts.RecordDir = filepath.Join(base, out)
	default:
		t.Fatalf("unknown MPJ_CI_REPLAY_STAGE %q", stage)
	}
	if err := os.MkdirAll(opts.RecordDir, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := RunLocalOpts(4, &opts, body); err != nil {
		t.Fatalf("stage %s: %v", stage, err)
	}
}
