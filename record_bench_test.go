package mpj

import "testing"

// BenchmarkRecordOverhead measures what decision recording
// (MPJ_RECORD / Options.RecordDir, internal/replay) costs on the hot
// path. "off" is the default: Core.session is a nil atomic pointer and
// every hook is a single load-and-branch, so it must stay within noise
// of the pre-instrumentation baseline. "on" opens a per-rank recording
// session: sends draw deterministic per-stream sequence stamps under
// the session mutex and concrete receives stamp their replay identity,
// but no wildcard/claim/pop decisions are logged for this concrete
// traffic — the acceptance criterion (ISSUE 10) is "on" within 10% of
// "off" on the eager ping-pong. The 8-sender message-rate case adds
// contention on the session's seq streams, the worst realistic case
// for the recording locks. EXPERIMENTS.md records the measured
// before/after table.
func BenchmarkRecordOverhead(b *testing.B) {
	const size = 1 << 10
	b.Run("pingpong/off", func(b *testing.B) {
		benchPingPong(b, size, &Options{Device: "niodev"})
	})
	b.Run("pingpong/on", func(b *testing.B) {
		benchPingPong(b, size, &Options{Device: "niodev", RecordDir: b.TempDir()})
	})
	b.Run("msgrate8x/off", func(b *testing.B) {
		benchMsgRate(b, 8, 8, &Options{Device: "niodev"})
	})
	b.Run("msgrate8x/on", func(b *testing.B) {
		benchMsgRate(b, 8, 8, &Options{Device: "niodev", RecordDir: b.TempDir()})
	})
}
