package mpj_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"mpj"
)

// freePort reserves a listen address for the telemetry server; the
// test closes the probe listener and hands the address to the job.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestLiveTelemetryEndpoints scrapes /metrics and /introspect while a
// 4-rank job is still running (held open by a barrier) and checks that
// the exposition carries every rank's counters — the live view must be
// consistent with the devices' Stats(), not a post-mortem artifact.
func TestLiveTelemetryEndpoints(t *testing.T) {
	addr := freePort(t)
	var scrapeOnce sync.Once
	var metricsBody, introBody string
	var scrapeErr error

	err := mpj.RunLocalOpts(4, &mpj.Options{MetricsAddr: addr}, func(p *mpj.Process) error {
		w := p.World()
		me := w.Rank()
		peer := me ^ 1
		buf := make([]byte, 1<<10)
		for iter := 0; iter < 3; iter++ {
			if me%2 == 0 {
				if err := w.Send(buf, 0, len(buf), mpj.BYTE, peer, iter); err != nil {
					return err
				}
				if _, err := w.Recv(buf, 0, len(buf), mpj.BYTE, peer, iter); err != nil {
					return err
				}
			} else {
				if _, err := w.Recv(buf, 0, len(buf), mpj.BYTE, peer, iter); err != nil {
					return err
				}
				if err := w.Send(buf, 0, len(buf), mpj.BYTE, peer, iter); err != nil {
					return err
				}
			}
		}
		// First barrier: every rank has finished its sends. Rank 0
		// scrapes in between; the closing barrier keeps the other
		// ranks (and their devices) alive while it happens.
		if err := w.Barrier(); err != nil {
			return err
		}
		if me == 0 {
			scrapeOnce.Do(func() {
				get := func(path string) string {
					resp, err := http.Get("http://" + addr + path)
					if err != nil {
						scrapeErr = err
						return ""
					}
					defer resp.Body.Close()
					b, err := io.ReadAll(resp.Body)
					if err != nil {
						scrapeErr = err
						return ""
					}
					return string(b)
				}
				metricsBody = get("/metrics")
				introBody = get("/introspect")
			})
		}
		return w.Barrier()
	})
	if err != nil {
		t.Fatalf("job: %v", err)
	}
	if scrapeErr != nil {
		t.Fatalf("scrape: %v", scrapeErr)
	}

	// Every rank must appear with a non-zero eager-send counter: each
	// sent 3 eager messages before the scrape.
	for r := 0; r < 4; r++ {
		want := fmt.Sprintf(`mpj_eager_sent_total{rank="%d",device="niodev"}`, r)
		i := strings.Index(metricsBody, want)
		if i < 0 {
			t.Errorf("metrics missing %q", want)
			continue
		}
		line := metricsBody[i:]
		if j := strings.IndexByte(line, '\n'); j >= 0 {
			line = line[:j]
		}
		if strings.HasSuffix(line, " 0") {
			t.Errorf("rank %d eager counter still zero mid-job: %q", r, line)
		}
	}
	if !strings.Contains(metricsBody, "# TYPE mpj_bytes_sent_total counter") {
		t.Error("metrics missing bytes family header")
	}

	var doc struct {
		Ranks map[string]struct {
			Device string          `json:"device"`
			State  json.RawMessage `json:"state"`
		} `json:"ranks"`
	}
	if err := json.Unmarshal([]byte(introBody), &doc); err != nil {
		t.Fatalf("introspect not valid JSON: %v\n%s", err, introBody)
	}
	if len(doc.Ranks) != 4 {
		t.Fatalf("introspect covers %d ranks, want 4:\n%s", len(doc.Ranks), introBody)
	}
	for r, st := range doc.Ranks {
		if st.Device != "niodev" {
			t.Errorf("rank %s device = %q", r, st.Device)
		}
		if len(st.State) == 0 {
			t.Errorf("rank %s has no introspection state", r)
		}
	}
}

// TestMetricsEnvActivation checks the MPJ_METRICS_ADDR toggle used by
// mpjrun-launched processes.
func TestMetricsEnvActivation(t *testing.T) {
	addr := freePort(t)
	t.Setenv(mpj.EnvMetricsAddr, addr)
	var body string
	err := mpj.RunLocal(2, func(p *mpj.Process) error {
		if p.World().Rank() == 0 {
			resp, err := http.Get("http://" + addr + "/metrics")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				return err
			}
			body = string(b)
		}
		return p.World().Barrier()
	})
	if err != nil {
		t.Fatalf("RunLocal: %v", err)
	}
	if !strings.Contains(body, "mpj_eager_sent_total") {
		t.Errorf("env-activated metrics missing counters:\n%s", body)
	}
}
