package mpj_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mpj"
	"mpj/internal/mpe"
)

// runTracedJob runs a 4-rank job with tracing into dir: eager and
// rendezvous ping-pongs plus a barrier and an allreduce.
func runTracedJob(t *testing.T, dir string) {
	t.Helper()
	err := mpj.RunLocalOpts(4, mpj.WithTracing(dir), func(p *mpj.Process) error {
		w := p.World()
		me := w.Rank()
		peer := me ^ 1
		for _, size := range []int{1 << 10, 256 << 10} {
			buf := make([]byte, size)
			for iter := 0; iter < 3; iter++ {
				if me%2 == 0 {
					if err := w.Send(buf, 0, size, mpj.BYTE, peer, iter); err != nil {
						return err
					}
					if _, err := w.Recv(buf, 0, size, mpj.BYTE, peer, iter); err != nil {
						return err
					}
				} else {
					if _, err := w.Recv(buf, 0, size, mpj.BYTE, peer, iter); err != nil {
						return err
					}
					if err := w.Send(buf, 0, size, mpj.BYTE, peer, iter); err != nil {
						return err
					}
				}
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		sum := make([]int64, 1)
		return w.Allreduce([]int64{int64(me)}, 0, sum, 0, 1, mpj.LONG, mpj.SUM)
	})
	if err != nil {
		t.Fatalf("traced job: %v", err)
	}
}

func TestTracingEndToEnd(t *testing.T) {
	dir := t.TempDir()
	runTracedJob(t, dir)

	files, err := mpe.ReadTraceDir(dir)
	if err != nil {
		t.Fatalf("ReadTraceDir: %v", err)
	}
	if len(files) != 4 {
		t.Fatalf("got %d trace files, want 4", len(files))
	}
	for _, tf := range files {
		if tf.Device != "niodev" {
			t.Errorf("rank %d: device %q, want niodev", tf.Rank, tf.Device)
		}
		if tf.Size != 4 {
			t.Errorf("rank %d: size %d, want 4", tf.Rank, tf.Size)
		}
		if tf.Counters == nil {
			t.Fatalf("rank %d: no counters", tf.Rank)
		}
		if tf.Counters.EagerSent == 0 || tf.Counters.RndvSent == 0 {
			t.Errorf("rank %d: counters %+v, want both eager and rendezvous sends", tf.Rank, *tf.Counters)
		}
		if len(tf.Events) == 0 {
			t.Errorf("rank %d: no events", tf.Rank)
		}
	}

	// The merged Chrome trace must be valid JSON with every rank as a
	// pid and at least 3 distinct event types.
	var buf bytes.Buffer
	if err := mpe.WriteChromeTrace(&buf, files, -1); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		pids[e.Pid] = true
		names[e.Name] = true
	}
	if len(pids) < 2 {
		t.Errorf("chrome trace covers %d ranks, want >= 2", len(pids))
	}
	if len(names) < 3 {
		t.Errorf("chrome trace has %d event types (%v), want >= 3", len(names), names)
	}
	for _, want := range []string{"SendEnd", "RecvMatched", "EagerOut", "RendezvousRTS"} {
		if !names[want] {
			t.Errorf("chrome trace missing event type %s (have %v)", want, names)
		}
	}

	// The summary must include latency percentiles per size bucket.
	buf.Reset()
	if err := mpe.WriteSummary(&buf, files, -1); err != nil {
		t.Fatalf("WriteSummary: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"p50", "p95", "send completion latency", "<=4KiB", "<=1MiB"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestTraceMergeCorrelation is the cross-rank correlation acceptance
// check: over a traced 4-rank niodev job, at least 99% of seq-stamped
// sends must find their receive, the merged Chrome export must carry
// flow events, and the report must include the latency and
// critical-path sections.
func TestTraceMergeCorrelation(t *testing.T) {
	dir := t.TempDir()
	runTracedJob(t, dir)

	files, err := mpe.ReadTraceDir(dir)
	if err != nil {
		t.Fatalf("ReadTraceDir: %v", err)
	}
	m, err := mpe.MergeTraces(files)
	if err != nil {
		t.Fatalf("MergeTraces: %v", err)
	}
	if m.Sends == 0 {
		t.Fatal("no seq-stamped sends recorded")
	}
	if rate := m.MatchRate(); rate < 0.99 {
		t.Errorf("match rate = %.3f (%d/%d), want >= 0.99", rate, len(m.Matched), m.Sends)
	}
	// All four ranks exchanged bidirectional traffic with their peer,
	// so every offset must be estimated, not assumed.
	for r := 0; r < 4; r++ {
		if !m.OffsetKnown[r] {
			t.Errorf("rank %d clock offset not estimated", r)
		}
	}
	// Matched messages must carry sane corrected timelines.
	for _, mm := range m.Matched {
		if mm.SendEndNS < mm.SendBeginNS || mm.RecvDeliverNS < mm.RecvPostNS {
			t.Fatalf("inverted span in %+v", mm)
		}
	}
	if len(m.Collectives) == 0 {
		t.Error("no collective instances correlated")
	}

	var buf bytes.Buffer
	if err := m.WriteMergedChrome(&buf); err != nil {
		t.Fatalf("WriteMergedChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged chrome trace invalid JSON: %v", err)
	}
	flows := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "s" || ev.Ph == "f" {
			flows++
		}
	}
	if want := 2 * len(m.Matched); flows != want {
		t.Errorf("flow events = %d, want %d (2 per matched message)", flows, want)
	}

	buf.Reset()
	if err := m.WriteReport(&buf); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"estimated clock offsets",
		"per-message wire latency",
		"collective critical path",
		"Barrier", "Allreduce",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merge report missing %q:\n%s", want, out)
		}
	}
}

// TestTracingEnvActivation checks the MPJ_TRACE / MPJ_TRACE_DIR
// environment toggles used by mpjrun-launched processes.
func TestTracingEnvActivation(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(mpj.EnvTrace, "1")
	t.Setenv(mpj.EnvTraceDir, dir)
	err := mpj.RunLocal(2, func(p *mpj.Process) error {
		return p.World().Barrier()
	})
	if err != nil {
		t.Fatalf("RunLocal: %v", err)
	}
	files, err := mpe.ReadTraceDir(dir)
	if err != nil {
		t.Fatalf("ReadTraceDir: %v", err)
	}
	if len(files) != 2 {
		t.Fatalf("got %d trace files, want 2", len(files))
	}
}

// TestTracingOffWritesNothing ensures the default path stays untraced.
func TestTracingOffWritesNothing(t *testing.T) {
	dir := t.TempDir()
	err := mpj.RunLocalOpts(2, &mpj.Options{TraceDir: dir}, func(p *mpj.Process) error {
		return p.World().Barrier()
	})
	if err != nil {
		t.Fatalf("RunLocal: %v", err)
	}
	if _, err := mpe.ReadTraceDir(dir); err == nil {
		t.Fatal("trace files written with tracing disabled")
	}
}
