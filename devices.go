package mpj

// Link every communication device into the registry so Options.Device
// and MPJ_DEVICE can select any of them by name.
import (
	_ "mpj/internal/hybriddev"
	_ "mpj/internal/ibisdev"
	_ "mpj/internal/mxdev"
	_ "mpj/internal/niodev"
	_ "mpj/internal/smpdev"

	"mpj/internal/xdev"
)

// Devices lists the available communication device names.
func Devices() []string { return xdev.Names() }
