package hybriddev

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mpj/internal/devtest"
	"mpj/internal/niodev"
	"mpj/internal/transport"
	"mpj/internal/xdev"
)

var jobCounter atomic.Int64

// mapper builds the node placement for an n-rank job.
type mapper func(n int) []int

// singleNode places every rank on one node: all traffic routes over
// the shared-memory inner, no wire protocol in the data path.
func singleNode(n int) []int { return make([]int, n) }

// interleaved places rank i on node i%2: every adjacent pair is
// inter-"node", so ranks 0 and 1 — the pair the conformance suite
// hammers — always exercise the niodev path, while same-parity pairs
// and the ANY_SOURCE tests keep the smp path and the cross-core
// arbitration busy.
func interleaved(n int) []int {
	nodeOf := make([]int, n)
	for i := range nodeOf {
		nodeOf[i] = i % 2
	}
	return nodeOf
}

// conformanceRunner adapts the shared device suite: an in-process
// colocated job with the given placement.
func conformanceRunner(nodes mapper) devtest.JobRunner {
	return func(t *testing.T, n int, fn func(d xdev.Device, rank int, pids []xdev.ProcessID)) {
		t.Helper()
		dialer := transport.NewInProc(0)
		job := jobCounter.Add(1)
		addrs := make([]string, n)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("hyb-conf-%d-rank-%d", job, i)
		}
		group := fmt.Sprintf("hyb-conf-%d", job)
		nodeOf := nodes(n)
		devs := make([]*Device, n)
		pidLists := make([][]xdev.ProcessID, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			devs[i] = New()
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				pidLists[rank], errs[rank] = devs[rank].Init(xdev.Config{
					Rank: rank, Size: n, Addrs: addrs, Dialer: dialer,
					Group: group, NodeOf: nodeOf, Colocated: true,
				})
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("rank %d init: %v", i, err)
			}
		}
		defer func() {
			for _, d := range devs {
				d.Finish()
			}
		}()
		var jobWG sync.WaitGroup
		for i := 0; i < n; i++ {
			jobWG.Add(1)
			go func(rank int) {
				defer jobWG.Done()
				fn(devs[rank], rank, pidLists[rank])
			}(i)
		}
		jobWG.Wait()
	}
}

// TestConformanceSingleNode: placement says one node, so the suite
// runs entirely over the smp inner (eager-only, like smpdev itself).
func TestConformanceSingleNode(t *testing.T) {
	devtest.RunConformance(t, conformanceRunner(singleNode),
		devtest.Options{HasPeek: true})
}

// TestConformanceTwoNodes: interleaved placement routes the suite's
// rank-0↔rank-1 traffic over the wire inner (full eager/rendezvous
// protocol) while wildcard receives dual-post across both cores.
func TestConformanceTwoNodes(t *testing.T) {
	devtest.RunConformance(t, conformanceRunner(interleaved),
		devtest.Options{HasPeek: true, RendezvousAt: niodev.DefaultEagerLimit})
}

// Chaos: blocked calls must fail typed, not hang, under Finish and
// peer death — on both placements.
func TestChaosConformanceSingleNode(t *testing.T) {
	devtest.RunChaos(t, conformanceRunner(singleNode),
		devtest.ChaosOptions{HasPeek: true})
}

func TestChaosConformanceTwoNodes(t *testing.T) {
	devtest.RunChaos(t, conformanceRunner(interleaved),
		devtest.ChaosOptions{HasPeek: true})
}

// Recovery: kill a rank mid-operation, then Revoke/Shrink/Agree and
// restore — the revoke must poison both inner transports.
func TestRecoveryConformanceSingleNode(t *testing.T) {
	devtest.RunRecovery(t, conformanceRunner(singleNode))
}

func TestRecoveryConformanceTwoNodes(t *testing.T) {
	devtest.RunRecovery(t, conformanceRunner(interleaved))
}

// TestNodeMapValidation rejects a placement that does not cover the
// job.
func TestNodeMapValidation(t *testing.T) {
	d := New()
	_, err := d.Init(xdev.Config{Rank: 0, Size: 4, NodeOf: []int{0, 1}})
	if err == nil {
		t.Fatal("Init accepted a node map shorter than the job")
	}
}
