// Package hybriddev composes two transports behind one xdev.Device —
// the hierarchical, node-aware device the paper's pluggable xdev layer
// (Fig. 2) was designed to admit. Each peer is classified by the job's
// node placement (xdev.Config.NodeOf, plumbed from mpjrun/MPJ_NODE_MAP):
//
//   - node-local peers talk over an smpdev mailbox core — one
//     in-memory copy, no wire, no protocol switch;
//   - remote peers ride a full niodev device — eager/rendezvous
//     protocols, CRC framing, abort/revoke broadcast.
//
// The composition leans on the devcore multi-core seam rather than a
// third protocol:
//
//   - one completion queue: the smp core's queue is redirected into
//     the nio core's at Init (devcore.SetQueue), so a single Peek —
//     and with it mpjdev's Waitany — observes completions from both
//     transports;
//   - cross-core ANY_SOURCE arbitration: a wildcard receive is
//     claim-armed (devcore.EnableClaim) and posted into BOTH cores;
//     whichever transport's message matches first wins the claim, and
//     the loser's stale copy is discarded by the claim-aware match
//     loops and failure drains;
//   - cross-core blocking probes: both cores fire a notification hook
//     (devcore.SetNotify) whenever arrivals park or failure state
//     changes, so one generation-counted wait loop spans two
//     condition variables without polling.
//
// The shared-memory path is only taken when the runtime explicitly
// declares the job colocated (Config.Colocated — RunLocal and the
// in-process test runners); a multi-process job degrades to all-niodev
// routing while the placement still steers the topology-aware
// collectives above. Revoke and Abort fan out through both inner
// devices; placement-aware PeerErr consults both.
package hybriddev

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mpj/internal/devcore"
	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/niodev"
	"mpj/internal/replay"
	"mpj/internal/smpdev"
	"mpj/internal/xdev"
)

// DeviceName is the registry name of this device.
const DeviceName = "hybrid"

func init() {
	xdev.Register(DeviceName, func() xdev.Device { return New() })
}

// Device routes between an smpdev core (node-local peers) and a
// niodev device (remote peers) by job placement.
type Device struct {
	cfg    xdev.Config
	self   xdev.ProcessID
	pids   []xdev.ProcessID
	nodeOf []int // slot -> node id
	myNode int
	nNodes int

	nio *niodev.Device
	smp *smpdev.Device // nil unless the job is colocated

	// session is the rank's record/replay session (nil when off). The
	// same session rides cfg.Replay into both inner devices, so their
	// merged completion queue is enforced as one pop stream; hybriddev
	// itself records/enforces the dual-post claim arbitrations.
	session *replay.Session

	// local[slot] reports whether slot routes over the smp path.
	// Self is always local when the smp inner exists, so a wildcard
	// receive must cover the smp core unless allLocal lets it skip the
	// wire core instead.
	local    []bool
	allLocal bool // every rank is node-local (single-node colocated job)

	// Probe support: a generation-counted wait shared by both inner
	// cores' notification hooks, so one blocking ANY_SOURCE probe can
	// span two condition variables.
	pmu   sync.Mutex
	pcond *sync.Cond
	pgen  uint64

	initDone bool
	finished atomic.Bool

	rec mpe.Recorder
}

// New returns an uninitialized hybrid device.
func New() *Device {
	d := &Device{rec: mpe.Nop{}}
	d.pcond = sync.NewCond(&d.pmu)
	return d
}

// Init joins the job on both inner transports. The niodev inner dials
// every peer — including node-local ones — so abort/revoke broadcasts
// and remote traffic always have a wire; the smpdev inner is created
// only when cfg.Colocated declares all ranks in-process. Placement
// comes from cfg.NodeOf; with no placement, a colocated job is one
// node and a distributed job is one rank per node.
func (d *Device) Init(cfg xdev.Config) ([]xdev.ProcessID, error) {
	if d.initDone {
		return nil, xdev.Errf(DeviceName, "init", "device already initialized")
	}
	if cfg.Size < 1 {
		return nil, xdev.Errf(DeviceName, "init", "job size %d < 1", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, xdev.Errf(DeviceName, "init", "rank %d out of range [0,%d)", cfg.Rank, cfg.Size)
	}
	nodeOf := cfg.NodeOf
	if nodeOf == nil {
		nodeOf = make([]int, cfg.Size)
		if !cfg.Colocated {
			for i := range nodeOf {
				nodeOf[i] = i
			}
		}
	}
	if len(nodeOf) != cfg.Size {
		return nil, &xdev.Error{Dev: DeviceName, Op: "init",
			Err: fmt.Errorf("%w: places %d ranks, job has %d", xdev.ErrBadNodeMap, len(nodeOf), cfg.Size)}
	}
	d.cfg = cfg
	if cfg.Recorder != nil {
		d.rec = cfg.Recorder
	}
	d.session = cfg.Replay
	d.nodeOf = append([]int(nil), nodeOf...)
	d.myNode = nodeOf[cfg.Rank]
	d.nNodes = xdev.NodeCount(nodeOf)

	nioCfg := cfg
	nioCfg.NodeOf, nioCfg.Colocated = nil, false
	d.nio = niodev.New()
	pids, err := d.nio.Init(nioCfg)
	if err != nil {
		return nil, err
	}
	d.pids = pids
	d.self = pids[cfg.Rank]

	if cfg.Colocated {
		smpCfg := cfg
		smpCfg.NodeOf, smpCfg.Colocated = nil, false
		smpCfg.Group = cfg.Group + "!hybrid-smp"
		d.smp = smpdev.New()
		if _, err := d.smp.Init(smpCfg); err != nil {
			d.nio.Finish()
			return nil, err
		}
		// Merge the smp core's completion stream into the nio core's
		// queue before any traffic, so one Peek observes both.
		d.smp.Core().SetQueue(d.nio.Core().Queue())
		d.smp.Core().SetNotify(d.wakeProbes)
	}
	d.nio.Core().SetNotify(d.wakeProbes)

	d.local = make([]bool, cfg.Size)
	d.allLocal = d.smp != nil
	for slot, node := range d.nodeOf {
		d.local[slot] = d.smp != nil && node == d.myNode
		if !d.local[slot] {
			d.allLocal = false
		}
	}

	d.initDone = true
	return append([]xdev.ProcessID(nil), d.pids...), nil
}

// ID returns this process's ProcessID.
func (d *Device) ID() xdev.ProcessID { return d.self }

// route picks the inner device carrying traffic to dst.
func (d *Device) route(dst xdev.ProcessID) xdev.Device {
	if d.smp != nil && dst.UUID < uint64(len(d.local)) && d.local[dst.UUID] {
		return d.smp
	}
	return d.nio
}

// ready gates new operations.
func (d *Device) ready(op string) error {
	if !d.initDone || d.finished.Load() {
		return xdev.Errf(DeviceName, op, "device not ready")
	}
	return nil
}

// SendOverhead reports the worst-case per-message overhead across the
// two paths (the wire path's frame header), so upper layers size
// buffers safely for either route.
func (d *Device) SendOverhead() int { return d.nio.SendOverhead() }

// RecvOverhead reports the worst-case per-message overhead.
func (d *Device) RecvOverhead() int { return d.nio.RecvOverhead() }

// ISend starts a standard-mode non-blocking send on the route to dst.
func (d *Device) ISend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	if err := d.ready("isend"); err != nil {
		return nil, err
	}
	return d.route(dst).ISend(buf, dst, tag, context)
}

// Send is the blocking standard-mode send.
func (d *Device) Send(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	if err := d.ready("send"); err != nil {
		return err
	}
	return d.route(dst).Send(buf, dst, tag, context)
}

// ISsend starts a synchronous-mode non-blocking send.
func (d *Device) ISsend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	if err := d.ready("issend"); err != nil {
		return nil, err
	}
	return d.route(dst).ISsend(buf, dst, tag, context)
}

// Ssend is the blocking synchronous-mode send.
func (d *Device) Ssend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	if err := d.ready("ssend"); err != nil {
		return err
	}
	return d.route(dst).Ssend(buf, dst, tag, context)
}

// IRecv posts a non-blocking receive. A specific source routes to one
// transport; ANY_SOURCE with both paths live dual-posts one claim-armed
// request into both cores, and whichever transport's message matches
// first wins (cross-core arbitration in devcore).
func (d *Device) IRecv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Request, error) {
	if err := d.ready("irecv"); err != nil {
		return nil, err
	}
	if !src.IsAnySource() {
		return d.route(src).IRecv(buf, src, tag, context)
	}
	if d.smp == nil {
		return d.nio.IRecv(buf, src, tag, context)
	}
	if d.allLocal {
		return d.smp.IRecv(buf, src, tag, context)
	}

	req := d.nio.Core().NewRequest(devcore.RecvReq, buf)
	req.OpCtx = int32(context)
	if d.rec.Enabled() {
		req.Trace(-1, int32(tag), int32(context))
		d.rec.Event(mpe.RecvPosted, -1, int32(tag), int32(context), 0)
	}
	// A record/replay session arbitrates the dual-post through a claim
	// decision: recording logs which core won with what (src,seq), and
	// replay short-circuits the race entirely — the request is posted
	// only into the recorded winner, narrowed to the recorded envelope,
	// and the match verifies the recorded (src,seq).
	if cd := d.session.OpenClaim(); cd != nil {
		req.SetClaimDecision(cd)
		core := d.nio.Core()
		if d.session.Recording() {
			core.Counters.DecisionsRecorded.Add(1)
		}
		if cd.Enforce {
			core.Counters.DecisionsEnforced.Add(1)
			srcPid := xdev.ProcessID{UUID: uint64(cd.Src)}
			var err error
			if cd.Dev == smpdev.DeviceName {
				err = d.smp.PostRecvReq(req, srcPid, int(cd.Tag), context)
			} else {
				err = d.nio.PostRecvReq(req, srcPid, int(cd.Tag), context)
			}
			if err != nil {
				return nil, err
			}
			return req, nil
		}
	}
	req.EnableClaim()
	// Post shared-memory first: a parked local message completes the
	// request immediately and the wire core never sees it.
	if err := d.smp.PostRecvReq(req, src, tag, context); err != nil {
		return nil, err
	}
	if err := d.nio.PostRecvReq(req, src, tag, context); err != nil {
		if errors.Is(err, devcore.ErrClaimed) {
			return req, nil // a local sender won the request mid-post
		}
		// Wire-side gate failure (closed/aborted/revoked). Claim the
		// request so the smp copy goes stale; if a local sender claimed
		// it first, the receive is already being delivered.
		if req.TryClaim() {
			return nil, err
		}
		return req, nil
	}
	return req, nil
}

// Recv blocks until a matching message has been received.
func (d *Device) Recv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	r, err := d.IRecv(buf, src, tag, context)
	if err != nil {
		return xdev.Status{}, err
	}
	return r.Wait()
}

// IProbe checks for a matching message on either transport without
// receiving it.
func (d *Device) IProbe(src xdev.ProcessID, tag, context int) (xdev.Status, bool, error) {
	if err := d.ready("iprobe"); err != nil {
		return xdev.Status{}, false, err
	}
	if !src.IsAnySource() {
		return d.route(src).IProbe(src, tag, context)
	}
	if d.smp != nil {
		st, ok, err := d.smp.IProbe(src, tag, context)
		if ok || err != nil {
			return st, ok, err
		}
	}
	return d.nio.IProbe(src, tag, context)
}

// wakeProbes is the notification hook both inner cores fire after any
// state change that could satisfy (or fail) a blocked probe.
func (d *Device) wakeProbes() {
	d.pmu.Lock()
	d.pgen++
	d.pcond.Broadcast()
	d.pmu.Unlock()
}

// Probe blocks until a matching message is available on either
// transport. A specific source delegates to its route's own blocking
// probe; ANY_SOURCE alternates non-blocking checks of both cores with
// a generation-counted wait on the shared notification hook, so no
// arrival, failure or shutdown on either transport is missed.
func (d *Device) Probe(src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	if err := d.ready("probe"); err != nil {
		return xdev.Status{}, err
	}
	if !src.IsAnySource() {
		return d.route(src).Probe(src, tag, context)
	}
	if d.smp == nil {
		return d.nio.Probe(src, tag, context)
	}
	for {
		d.pmu.Lock()
		gen := d.pgen
		d.pmu.Unlock()
		st, ok, err := d.IProbe(src, tag, context)
		if err != nil {
			return xdev.Status{}, err
		}
		if ok {
			return st, nil
		}
		d.pmu.Lock()
		for d.pgen == gen {
			d.pcond.Wait()
		}
		d.pmu.Unlock()
	}
}

// Peek blocks until some request completes — on either transport: the
// smp core's completions are merged into the nio core's queue at Init.
func (d *Device) Peek() (xdev.Request, error) {
	if d.nio == nil {
		return nil, xdev.Errf(DeviceName, "peek", "device not ready")
	}
	return d.nio.Peek()
}

// ReplayActive reports whether a record/replay session is installed
// (mpjdev's WaitAny skips its Test fast path while one is).
func (d *Device) ReplayActive() bool { return d.session != nil }

// Finish leaves the job on both transports: the shared-memory core
// shuts down first (failing its pending requests and propagating this
// rank's departure to node-local peers), then the wire device says
// goodbye to remote peers and tears the connections down. Blocked
// probes wake through the notification hooks either shutdown fires.
func (d *Device) Finish() error {
	if d.finished.Swap(true) || !d.initDone {
		return nil
	}
	if d.smp != nil {
		d.smp.Finish()
	}
	d.nio.Finish()
	d.wakeProbes()
	return nil
}

// Abort tears the whole job down: the wire device broadcasts the abort
// to every dialed peer (node-local ones included — the wire reaches
// ranks in other processes that shared memory cannot), and the
// shared-memory group aborts every colocated mailbox directly.
// Implements xdev.Aborter.
func (d *Device) Abort(code int) error {
	if !d.initDone {
		return nil
	}
	d.nio.Abort(code)
	if d.smp != nil {
		d.smp.Abort(code)
	}
	d.wakeProbes()
	return nil
}

// Revoke poisons the matching context on both transports: direct board
// iteration over the colocated mailboxes, a revoke flood over the
// wire. Both halves are idempotent, so the overlap (a peer revoked
// both ways) converges. Implements xdev.Revoker.
func (d *Device) Revoke(context int) error {
	if err := d.ready("revoke"); err != nil {
		return err
	}
	if d.smp != nil {
		if err := d.smp.Revoke(context); err != nil {
			return err
		}
	}
	return d.nio.Revoke(context)
}

// PeerErr reports the recorded death error of peer p from whichever
// transport noticed it first (xdev.PeerChecker).
func (d *Device) PeerErr(p xdev.ProcessID) error {
	if d.smp != nil {
		if err := d.smp.PeerErr(p); err != nil {
			return err
		}
	}
	if d.nio == nil {
		return nil
	}
	return d.nio.PeerErr(p)
}

// MemoryDomain names the shared in-process namespace — but only when
// the whole job is one node. A simulated multi-node job deliberately
// withholds it so one-sided operations exercise the routed
// active-message path, the same honesty that keeps inter-"node"
// traffic on the wire (xdev.MemoryDomain).
func (d *Device) MemoryDomain() (string, bool) {
	if !d.initDone || d.smp == nil || d.nNodes != 1 {
		return "", false
	}
	return d.smp.MemoryDomain()
}

// Stats merges the activity counters of both transports
// (mpe.StatsSource).
func (d *Device) Stats() mpe.CounterSnapshot {
	if d.nio == nil {
		return mpe.CounterSnapshot{}
	}
	st := d.nio.Stats()
	if d.smp != nil {
		st = st.Add(d.smp.Stats())
	}
	return st
}

// CountersRef exposes one live counter block for upper-layer
// accounting (mpe.CounterSource). Collective/RMA counts land on the
// wire core's block and appear once in the merged Stats.
func (d *Device) CountersRef() *mpe.Counters {
	if d.nio == nil {
		return nil
	}
	return d.nio.CountersRef()
}

// Recorder exposes the device's event recorder (mpe.Instrumented).
func (d *Device) Recorder() mpe.Recorder { return d.rec }

// Introspect snapshots both transports for the telemetry /introspect
// endpoint, plus the routing view itself.
func (d *Device) Introspect() any {
	out := struct {
		NodeOf []int `json:"nodeOf,omitempty"`
		MyNode int   `json:"myNode"`
		Nodes  int   `json:"nodes"`
		Smp    any   `json:"smp,omitempty"`
		Nio    any   `json:"nio,omitempty"`
	}{NodeOf: d.nodeOf, MyNode: d.myNode, Nodes: d.nNodes}
	if d.smp != nil {
		out.Smp = d.smp.Introspect()
	}
	if d.nio != nil {
		out.Nio = d.nio.Introspect()
	}
	return out
}

var (
	_ xdev.Device      = (*Device)(nil)
	_ xdev.Aborter     = (*Device)(nil)
	_ xdev.Revoker     = (*Device)(nil)
	_ xdev.PeerChecker = (*Device)(nil)
	_ mpe.Instrumented = (*Device)(nil)
)
