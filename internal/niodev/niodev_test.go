package niodev

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpj/internal/mpjbuf"
	"mpj/internal/transport"
	"mpj/internal/xdev"
)

// runJob starts n devices wired through an in-process transport and
// runs fn for each rank on its own goroutine, as n "processes".
func runJob(t *testing.T, n int, opts xdev.Config, fn func(d *Device, rank int, pids []xdev.ProcessID)) {
	t.Helper()
	tr := transport.NewInProc(0)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("rank-%d", i)
	}
	var wg sync.WaitGroup
	devs := make([]*Device, n)
	errs := make([]error, n)
	pidLists := make([][]xdev.ProcessID, n)
	for i := 0; i < n; i++ {
		devs[i] = New()
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := opts
			cfg.Rank, cfg.Size, cfg.Addrs, cfg.Dialer = rank, n, addrs, tr
			pidLists[rank], errs[rank] = devs[rank].Init(cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", i, err)
		}
	}
	defer func() {
		for _, d := range devs {
			d.Finish()
		}
	}()
	var jobWG sync.WaitGroup
	for i := 0; i < n; i++ {
		jobWG.Add(1)
		go func(rank int) {
			defer jobWG.Done()
			fn(devs[rank], rank, pidLists[rank])
		}(i)
	}
	done := make(chan struct{})
	go func() {
		jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("job deadlocked (60s timeout)")
	}
}

func sendInts(t *testing.T, d *Device, dst xdev.ProcessID, tag int, vals []int32) {
	t.Helper()
	buf := mpjbuf.New(len(vals)*4 + 16)
	if err := buf.WriteInts(vals, 0, len(vals)); err != nil {
		t.Errorf("pack: %v", err)
		return
	}
	if err := d.Send(buf, dst, tag, 0); err != nil {
		t.Errorf("send: %v", err)
	}
}

func recvInts(t *testing.T, d *Device, src xdev.ProcessID, tag, n int) []int32 {
	t.Helper()
	buf := mpjbuf.New(0)
	if _, err := d.Recv(buf, src, tag, 0); err != nil {
		t.Errorf("recv: %v", err)
		return nil
	}
	out := make([]int32, n)
	if _, err := buf.ReadInts(out, 0, n); err != nil {
		t.Errorf("unpack: %v", err)
		return nil
	}
	return out
}

func TestEagerSendRecv(t *testing.T) {
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			sendInts(t, d, pids[1], 7, []int32{1, 2, 3})
		} else {
			got := recvInts(t, d, pids[0], 7, 3)
			if len(got) == 3 && (got[0] != 1 || got[2] != 3) {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestRendezvousLargeMessage(t *testing.T) {
	const n = 100_000 // 400 KB static section > 128 KiB eager limit
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			vals := make([]int32, n)
			for i := range vals {
				vals[i] = int32(i)
			}
			sendInts(t, d, pids[1], 1, vals)
		} else {
			got := recvInts(t, d, pids[0], 1, n)
			for i, v := range got {
				if v != int32(i) {
					t.Fatalf("element %d = %d", i, v)
				}
			}
		}
	})
}

func TestRendezvousBeforeRecvPosted(t *testing.T) {
	// RTS arrives before the receive is posted; the user thread sends RTR.
	const n = 80_000
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			vals := make([]int32, n)
			vals[n-1] = 42
			sendInts(t, d, pids[1], 5, vals)
		} else {
			time.Sleep(100 * time.Millisecond) // let the RTS land first
			got := recvInts(t, d, pids[0], 5, n)
			if len(got) == n && got[n-1] != 42 {
				t.Errorf("tail = %d, want 42", got[n-1])
			}
		}
	})
}

func TestEagerBeforeRecvPosted(t *testing.T) {
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			sendInts(t, d, pids[1], 9, []int32{11})
		} else {
			time.Sleep(100 * time.Millisecond)
			got := recvInts(t, d, pids[0], 9, 1)
			if len(got) == 1 && got[0] != 11 {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestSsendCompletesOnlyAfterMatch(t *testing.T) {
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			buf := mpjbuf.New(16)
			buf.WriteInts([]int32{1}, 0, 1)
			req, err := d.ISsend(buf, pids[1], 3, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if _, ok, _ := req.Test(); ok {
				t.Error("synchronous send completed before receiver matched")
			}
			// Tell rank 1 to post its receive now.
			sendInts(t, d, pids[1], 4, []int32{0})
			if _, err := req.Wait(); err != nil {
				t.Errorf("ssend wait: %v", err)
			}
		} else {
			recvInts(t, d, pids[0], 4, 1) // the go-ahead
			got := recvInts(t, d, pids[0], 3, 1)
			if len(got) == 1 && got[0] != 1 {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	runJob(t, 3, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		switch rank {
		case 1, 2:
			sendInts(t, d, pids[0], 40+rank, []int32{int32(rank)})
		case 0:
			seen := map[int32]bool{}
			for i := 0; i < 2; i++ {
				buf := mpjbuf.New(0)
				st, err := d.Recv(buf, xdev.AnySource, xdev.AnyTag, 0)
				if err != nil {
					t.Error(err)
					return
				}
				out := make([]int32, 1)
				buf.ReadInts(out, 0, 1)
				seen[out[0]] = true
				if int(st.Source.UUID) != int(out[0]) {
					t.Errorf("status source %v does not match payload %d", st.Source, out[0])
				}
				if st.Tag != 40+int(out[0]) {
					t.Errorf("status tag %d, want %d", st.Tag, 40+out[0])
				}
			}
			if !seen[1] || !seen[2] {
				t.Errorf("missing senders: %v", seen)
			}
		}
	})
}

func TestMessageOrderingPreserved(t *testing.T) {
	const msgs = 50
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			for i := 0; i < msgs; i++ {
				sendInts(t, d, pids[1], 6, []int32{int32(i)})
			}
		} else {
			for i := 0; i < msgs; i++ {
				got := recvInts(t, d, pids[0], 6, 1)
				if len(got) == 1 && got[0] != int32(i) {
					t.Fatalf("message %d carried %d (order violated)", i, got[0])
				}
			}
		}
	})
}

func TestSelfSendRecv(t *testing.T) {
	runJob(t, 1, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		req, err := func() (xdev.Request, error) {
			buf := mpjbuf.New(16)
			buf.WriteInts([]int32{99}, 0, 1)
			return d.ISend(buf, pids[0], 2, 0)
		}()
		if err != nil {
			t.Fatal(err)
		}
		got := recvInts(t, d, pids[0], 2, 1)
		if len(got) == 1 && got[0] != 99 {
			t.Errorf("got %v", got)
		}
		if _, err := req.Wait(); err != nil {
			t.Error(err)
		}
	})
}

func TestSelfSsend(t *testing.T) {
	runJob(t, 1, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		buf := mpjbuf.New(16)
		buf.WriteInts([]int32{5}, 0, 1)
		req, err := d.ISsend(buf, pids[0], 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := req.Test(); ok {
			t.Fatal("self ssend completed before match")
		}
		got := recvInts(t, d, pids[0], 2, 1)
		if len(got) == 1 && got[0] != 5 {
			t.Errorf("got %v", got)
		}
		if _, err := req.Wait(); err != nil {
			t.Error(err)
		}
	})
}

func TestProbeAndIProbe(t *testing.T) {
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			sendInts(t, d, pids[1], 13, []int32{1, 2})
		} else {
			st, err := d.Probe(pids[0], 13, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if st.Tag != 13 || st.Source != pids[0] {
				t.Errorf("probe status %+v", st)
			}
			// IProbe must also see it, and probing must not consume.
			if _, ok, _ := d.IProbe(xdev.AnySource, xdev.AnyTag, 0); !ok {
				t.Error("iprobe missed an available message")
			}
			got := recvInts(t, d, pids[0], 13, 2)
			if len(got) == 2 && got[1] != 2 {
				t.Errorf("got %v", got)
			}
			if _, ok, _ := d.IProbe(xdev.AnySource, xdev.AnyTag, 0); ok {
				t.Error("iprobe found a message after it was received")
			}
		}
	})
}

func TestContextSeparation(t *testing.T) {
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			bufA := mpjbuf.New(16)
			bufA.WriteInts([]int32{1}, 0, 1)
			if err := d.Send(bufA, pids[1], 5, 100); err != nil {
				t.Error(err)
			}
			bufB := mpjbuf.New(16)
			bufB.WriteInts([]int32{2}, 0, 1)
			if err := d.Send(bufB, pids[1], 5, 200); err != nil {
				t.Error(err)
			}
		} else {
			// Receive context 200 first even though it was sent second.
			buf := mpjbuf.New(0)
			if _, err := d.Recv(buf, pids[0], 5, 200); err != nil {
				t.Error(err)
				return
			}
			out := make([]int32, 1)
			buf.ReadInts(out, 0, 1)
			if out[0] != 2 {
				t.Errorf("context 200 delivered %d, want 2", out[0])
			}
			buf2 := mpjbuf.New(0)
			if _, err := d.Recv(buf2, pids[0], 5, 100); err != nil {
				t.Error(err)
				return
			}
			buf2.ReadInts(out, 0, 1)
			if out[0] != 1 {
				t.Errorf("context 100 delivered %d, want 1", out[0])
			}
		}
	})
}

func TestBidirectionalLargeSendsNoDeadlock(t *testing.T) {
	// The scenario the paper's forked rendez-write thread exists for:
	// both processes send large messages to each other simultaneously.
	const n = 200_000
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		peer := pids[1-rank]
		vals := make([]int32, n)
		for i := range vals {
			vals[i] = int32(rank)
		}
		buf := mpjbuf.New(n*4 + 16)
		buf.WriteInts(vals, 0, n)
		req, err := d.ISend(buf, peer, 2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		got := recvInts(t, d, peer, 2, n)
		if len(got) == n && got[0] != int32(1-rank) {
			t.Errorf("rank %d got payload from %d", rank, got[0])
		}
		if _, err := req.Wait(); err != nil {
			t.Error(err)
		}
	})
}

func TestManyPendingReceives(t *testing.T) {
	// Paper §VI: MPJ Express can post any number of non-blocking
	// receives, whereas MPJ/Ibis died at ~650 because it spawned a
	// thread per operation. Post 650 wildcard receives, then satisfy
	// them all.
	const n = 650
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			reqs := make([]xdev.Request, n)
			bufs := make([]*mpjbuf.Buffer, n)
			for i := 0; i < n; i++ {
				bufs[i] = mpjbuf.New(0)
				r, err := d.IRecv(bufs[i], xdev.AnySource, i, 0)
				if err != nil {
					t.Fatalf("irecv %d: %v", i, err)
				}
				reqs[i] = r
			}
			// Signal readiness.
			sendInts(t, d, pids[1], 9999, []int32{1})
			for i := 0; i < n; i++ {
				if _, err := reqs[i].Wait(); err != nil {
					t.Fatalf("wait %d: %v", i, err)
				}
				out := make([]int32, 1)
				bufs[i].ReadInts(out, 0, 1)
				if out[0] != int32(i) {
					t.Fatalf("receive %d carried %d", i, out[0])
				}
			}
		} else {
			recvInts(t, d, pids[0], 9999, 1)
			for i := 0; i < n; i++ {
				sendInts(t, d, pids[0], i, []int32{int32(i)})
			}
		}
	})
}

func TestThreadMultipleConcurrentTraffic(t *testing.T) {
	// MPI_THREAD_MULTIPLE (paper §IV-B): many goroutines per process
	// communicate concurrently; message contents are verified on
	// receipt.
	const goroutines = 8
	const perG = 20
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		peer := pids[1-rank]
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					want := int32(g*1000 + i)
					buf := mpjbuf.New(16)
					buf.WriteInts([]int32{want}, 0, 1)
					if err := d.Send(buf, peer, g, 0); err != nil {
						t.Errorf("send: %v", err)
						return
					}
					got := recvInts(t, d, peer, g, 1)
					if len(got) == 1 && got[0] != want {
						t.Errorf("goroutine %d msg %d: got %d, want %d", g, i, got[0], want)
					}
				}
			}(g)
		}
		wg.Wait()
	})
}

func TestProgression(t *testing.T) {
	// The paper's ProgressionTest: one blocked goroutine (a receive
	// that is satisfied only at the very end) must not halt progress of
	// other goroutines in the same process.
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		peer := pids[1-rank]
		if rank == 0 {
			blocked := make(chan struct{})
			go func() {
				defer close(blocked)
				buf := mpjbuf.New(0)
				if _, err := d.Recv(buf, peer, 777, 0); err != nil {
					t.Errorf("blocked recv: %v", err)
				}
			}()
			// While that goroutine blocks, run normal traffic.
			for i := 0; i < 10; i++ {
				buf := mpjbuf.New(16)
				buf.WriteInts([]int32{int32(i)}, 0, 1)
				if err := d.Send(buf, peer, 1, 0); err != nil {
					t.Error(err)
				}
				got := recvInts(t, d, peer, 1, 1)
				if len(got) == 1 && got[0] != int32(i) {
					t.Errorf("round %d: got %d", i, got[0])
				}
			}
			select {
			case <-blocked:
				t.Error("blocked receive completed prematurely")
			default:
			}
			// Tell the peer to release the blocked goroutine.
			buf := mpjbuf.New(16)
			buf.WriteInts([]int32{0}, 0, 1)
			if err := d.Send(buf, peer, 778, 0); err != nil {
				t.Error(err)
			}
			<-blocked
		} else {
			for i := 0; i < 10; i++ {
				got := recvInts(t, d, peer, 1, 1)
				if len(got) == 1 && got[0] != int32(i) {
					t.Errorf("round %d: got %d", i, got[0])
				}
				buf := mpjbuf.New(16)
				buf.WriteInts([]int32{int32(i)}, 0, 1)
				if err := d.Send(buf, peer, 1, 0); err != nil {
					t.Error(err)
				}
			}
			// Wait for the go-ahead, then satisfy the blocked receive.
			recvInts(t, d, peer, 778, 1)
			buf := mpjbuf.New(16)
			buf.WriteInts([]int32{0}, 0, 1)
			if err := d.Send(buf, peer, 777, 0); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestPeekReturnsCompletedRequest(t *testing.T) {
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			buf := mpjbuf.New(0)
			req, err := d.IRecv(buf, pids[1], 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.Peek()
			if err != nil {
				t.Fatal(err)
			}
			if got != req {
				t.Error("peek returned a different request")
			}
			if _, ok, _ := got.Test(); !ok {
				t.Error("peeked request is not complete")
			}
		} else {
			sendInts(t, d, pids[0], 3, []int32{1})
		}
	})
}

func TestRequestAttachment(t *testing.T) {
	runJob(t, 1, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		buf := mpjbuf.New(16)
		buf.WriteInts([]int32{1}, 0, 1)
		req, err := d.ISend(buf, pids[0], 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if req.Attachment() != nil {
			t.Error("fresh request has attachment")
		}
		req.SetAttachment("hello")
		if req.Attachment() != "hello" {
			t.Error("attachment lost")
		}
		rb := mpjbuf.New(0)
		d.Recv(rb, pids[0], 0, 0)
	})
}

func TestEagerLimitConfigurable(t *testing.T) {
	// With a tiny eager limit, even small messages use rendezvous.
	runJob(t, 2, xdev.Config{EagerLimit: 8}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if d.EagerLimit() != 8 {
			t.Errorf("EagerLimit = %d", d.EagerLimit())
		}
		if rank == 0 {
			sendInts(t, d, pids[1], 2, []int32{1, 2, 3, 4})
		} else {
			got := recvInts(t, d, pids[0], 2, 4)
			if len(got) == 4 && got[3] != 4 {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestInitValidation(t *testing.T) {
	cases := []xdev.Config{
		{Rank: 0, Size: 0},
		{Rank: -1, Size: 2, Addrs: []string{"a", "b"}},
		{Rank: 2, Size: 2, Addrs: []string{"a", "b"}},
		{Rank: 0, Size: 3, Addrs: []string{"a"}},
	}
	for i, cfg := range cases {
		d := New()
		cfg.Dialer = transport.NewInProc(0)
		if _, err := d.Init(cfg); err == nil {
			t.Errorf("case %d: Init accepted invalid config %+v", i, cfg)
			d.Finish()
		}
	}
}

func TestDoubleInitRejected(t *testing.T) {
	d := New()
	if _, err := d.Init(xdev.Config{Rank: 0, Size: 1}); err != nil {
		t.Fatal(err)
	}
	defer d.Finish()
	if _, err := d.Init(xdev.Config{Rank: 0, Size: 1}); err == nil {
		t.Fatal("second Init accepted")
	}
}

func TestFinishIdempotentAndUnblocksPeek(t *testing.T) {
	d := New()
	if _, err := d.Init(xdev.Config{Rank: 0, Size: 1}); err != nil {
		t.Fatal(err)
	}
	peekErr := make(chan error, 1)
	go func() {
		_, err := d.Peek()
		peekErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal("second Finish errored:", err)
	}
	select {
	case err := <-peekErr:
		if err == nil {
			t.Fatal("peek returned nil error after Finish")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Finish did not unblock Peek")
	}
}

func TestDeviceRegistry(t *testing.T) {
	d, err := xdev.NewInstance(DeviceName)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*Device); !ok {
		t.Fatalf("registry returned %T", d)
	}
	if _, err := xdev.NewInstance("nosuchdev"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestSendToUnknownProcess(t *testing.T) {
	runJob(t, 1, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		buf := mpjbuf.New(16)
		buf.WriteInts([]int32{1}, 0, 1)
		if _, err := d.ISend(buf, xdev.ProcessID{UUID: 99}, 0, 0); err == nil {
			t.Error("send to unknown process accepted")
		}
	})
}

func TestObjectMessage(t *testing.T) {
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			buf := mpjbuf.New(0)
			if err := buf.WriteObjects([]any{"hello", []float64{1, 2}}, 0, 2); err != nil {
				t.Error(err)
				return
			}
			if err := d.Send(buf, pids[1], 0, 0); err != nil {
				t.Error(err)
			}
		} else {
			buf := mpjbuf.New(0)
			if _, err := d.Recv(buf, pids[0], 0, 0); err != nil {
				t.Error(err)
				return
			}
			objs := make([]any, 2)
			if _, err := buf.ReadObjects(objs, 0, 2); err != nil {
				t.Error(err)
				return
			}
			if objs[0] != "hello" {
				t.Errorf("objs[0] = %v", objs[0])
			}
			if f, ok := objs[1].([]float64); !ok || f[1] != 2 {
				t.Errorf("objs[1] = %#v", objs[1])
			}
		}
	})
}

func TestNoGoroutineLeakAfterFinish(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		runJob(t, 3, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
			peer := pids[(rank+1)%3]
			buf := mpjbuf.New(16)
			buf.WriteInts([]int32{1}, 0, 1)
			if err := d.Send(buf, peer, 0, 0); err != nil {
				t.Error(err)
			}
			rb := mpjbuf.New(0)
			if _, err := d.Recv(rb, pids[(rank+2)%3], 0, 0); err != nil {
				t.Error(err)
			}
		})
	}
	// Give exiting handlers a moment, then compare.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines before=%d after=%d\n%s", before, after, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
