package niodev

import (
	"testing"
	"time"

	"mpj/internal/mpjbuf"
	"mpj/internal/xdev"
)

// TestStatsProtocolSelection verifies through the counters that small
// messages really take the eager path and large ones rendezvous — the
// 128 KiB switch of §IV-A.
func TestStatsProtocolSelection(t *testing.T) {
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			small := mpjbuf.New(0)
			small.WriteBytes(make([]byte, 1024), 0, 1024)
			if err := d.Send(small, pids[1], 0, 0); err != nil {
				t.Error(err)
				return
			}
			big := mpjbuf.New(0)
			payload := make([]byte, 256<<10)
			big.WriteBytes(payload, 0, len(payload))
			if err := d.Send(big, pids[1], 1, 0); err != nil {
				t.Error(err)
				return
			}
			st := d.Stats()
			if st.EagerSent != 1 {
				t.Errorf("EagerSent = %d, want 1", st.EagerSent)
			}
			if st.RndvSent != 1 {
				t.Errorf("RndvSent = %d, want 1", st.RndvSent)
			}
			if st.BytesSent < 257<<10 {
				t.Errorf("BytesSent = %d", st.BytesSent)
			}
		} else {
			b := mpjbuf.New(0)
			if _, err := d.Recv(b, pids[0], 0, 0); err != nil {
				t.Error(err)
			}
			b2 := mpjbuf.New(0)
			if _, err := d.Recv(b2, pids[0], 1, 0); err != nil {
				t.Error(err)
			}
		}
	})
}

// TestStatsUnexpectedVsMatched distinguishes arrivals that found a
// posted receive from those parked in the unexpected queue.
func TestStatsUnexpectedVsMatched(t *testing.T) {
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			// Message 1: receiver not ready -> unexpected.
			sendInts(t, d, pids[1], 1, []int32{1})
			// Handshake so the peer can post the second receive first.
			recvInts(t, d, pids[1], 99, 1)
			// Message 2: receive already posted -> matched.
			sendInts(t, d, pids[1], 2, []int32{2})
		} else {
			time.Sleep(50 * time.Millisecond) // let message 1 land unexpected
			got := recvInts(t, d, pids[0], 1, 1)
			if len(got) == 1 && got[0] != 1 {
				t.Errorf("got %v", got)
			}
			// Post the second receive BEFORE releasing the sender.
			buf := mpjbuf.New(0)
			req, err := d.IRecv(buf, pids[0], 2, 0)
			if err != nil {
				t.Error(err)
				return
			}
			sendInts(t, d, pids[0], 99, []int32{0})
			if _, err := req.Wait(); err != nil {
				t.Error(err)
				return
			}
			st := d.Stats()
			if st.Unexpected < 1 {
				t.Errorf("Unexpected = %d, want >= 1", st.Unexpected)
			}
			if st.Matched < 1 {
				t.Errorf("Matched = %d, want >= 1", st.Matched)
			}
		}
	})
}

// TestAsyncRendezvousProgress: a rendezvous transfer completes at the
// receiver while the sender's application thread does no MPI calls —
// progress is driven entirely by the input-handler goroutines (the
// paper's progress-engine property).
func TestAsyncRendezvousProgress(t *testing.T) {
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		const n = 100_000 // > eager limit as int32s
		if rank == 0 {
			vals := make([]int32, n)
			vals[n-1] = 7
			buf := mpjbuf.New(n*4 + 16)
			buf.WriteInts(vals, 0, n)
			req, err := d.ISend(buf, pids[1], 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			// Do NOT call Wait/Test until the receiver confirms it has
			// the data: progression must not depend on this thread.
			ack := recvInts(t, d, pids[1], 1, 1)
			if len(ack) == 1 && ack[0] != 1 {
				t.Errorf("ack %v", ack)
			}
			if _, err := req.Wait(); err != nil {
				t.Error(err)
			}
		} else {
			got := recvInts(t, d, pids[0], 0, n)
			if len(got) == n && got[n-1] != 7 {
				t.Errorf("tail %d", got[n-1])
			}
			sendInts(t, d, pids[0], 1, []int32{1})
		}
	})
}
