package niodev

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpj/internal/devcore"
	"mpj/internal/xdev"
)

// This file is the device's asynchronous outbound path (the default;
// MPJ_SEND_ENGINE=direct restores the synchronous one). The original
// writeMsg pattern — take the per-destination lock, issue one vectored
// write, release — is exactly the paper's "lock dest channel / send /
// unlock", and it serializes every concurrent sender on a mutex held
// across a syscall while paying one wire write per frame. The send
// engine inverts that: writeMsg callers enqueue frames on a bounded
// per-peer MPSC queue and return immediately; a per-peer drainer
// goroutine coalesces everything queued — eager payloads, ACKs, RTRs,
// rendezvous data — into a single wire write, amortizing the syscall
// (and, on the in-process transport, the ring-buffer lock round) over
// the whole batch. Ibdxnet applies the same shape to InfiniBand: lock
// free per-connection send queues drained by a dedicated provider
// thread with adaptive busy-poll/park progress.
//
// Invariants:
//
//   - Ordering: frames to one peer go out in enqueue order — the queue
//     is FIFO and one drainer owns it — so the MPI non-overtaking
//     guarantee per (src,dst) is exactly what the direct path gave.
//   - Backpressure: data frames block once the queue holds SendQueue
//     frames, bounding memory; control frames (ACK, RTR) enqueue
//     unbounded because an input handler must never block on its own
//     outbound queue (the two-sided flow-control deadlock).
//   - Completion: a frame carrying a request completes it after the
//     frame is on the wire, never before — buffer ownership transfers
//     at completion, exactly as on the synchronous path.
//   - Failure: poisoning a queue (peer death, revoked conn, Finish)
//     wakes blocked enqueuers with the death error and fails every
//     queued frame's request; no frame is silently dropped.

// Send-engine tunables (see also MPJ_SEND_ENGINE / MPJ_SEND_SPIN /
// MPJ_SEND_QUEUE and the matching xdev.Config fields).
const (
	// DefaultSendQueue is the per-peer queue bound in frames.
	DefaultSendQueue = 256
	// DefaultSendSpin is how many scheduler yields a drainer busy-polls
	// for new frames after going idle before parking on its condition
	// variable. Spinning wins when traffic is hot (the next frame
	// arrives within a few microseconds); parking keeps idle peers
	// free.
	DefaultSendSpin = 512

	// maxBatchFrames caps the frames coalesced into one wire write, and
	// maxBatchBytes the bytes, bounding both the gather list and the
	// latency a queued frame can hide behind a giant batch.
	maxBatchFrames = 64
	maxBatchBytes  = 1 << 20

	// stageSegMax is the payload-segment size below which the drainer
	// memcpys the segment into its staging buffer instead of adding a
	// gather entry. A batch of small messages then becomes exactly one
	// contiguous Write — one syscall on TCP, one ring-buffer round on
	// the in-process pipe — while large segments are still written
	// zero-copy from the user's buffer.
	stageSegMax = 4 << 10

	// goodbyeFlush bounds how long Finish waits for the drainers to
	// flush queued frames (and the closing bye behind them) before the
	// connections are torn down regardless.
	goodbyeFlush = 500 * time.Millisecond
)

// sendFrame is one queued wire message: the encoded header, the
// payload segments (owned by the sending request's buffer until
// completion), and optionally the request the wire write completes.
type sendFrame struct {
	hdr  []byte   // encoded headerLen bytes from the devcore slice pool
	segs [][]byte // payload segments; nil for control frames
	wire int      // total payload bytes (header excluded)

	// req, when non-nil, is completed with st once the frame is on the
	// wire (or with the peer's death error if it never gets there).
	// Control frames and protocol exchanges whose completion is a
	// *reply* (sync-send ACK, rendezvous RTR) leave it nil: their
	// requests live in core-registered pending sets that the failure
	// drains cover.
	req *devcore.Request
	st  xdev.Status
}

var framePool = sync.Pool{New: func() any { return new(sendFrame) }}

func getFrame() *sendFrame { return framePool.Get().(*sendFrame) }

func putFrame(f *sendFrame) {
	devcore.PutSlice(f.hdr)
	f.hdr = nil
	clear(f.segs)
	f.segs = f.segs[:0]
	f.wire = 0
	f.req = nil
	f.st = xdev.Status{}
	framePool.Put(f)
}

// peerQueue is the bounded MPSC frame queue feeding one peer's
// drainer: finely locked (one short critical section per operation,
// never held across I/O), FIFO, with poison-on-failure semantics.
type peerQueue struct {
	mu    sync.Mutex
	ready *sync.Cond // drainer parks here when the queue is empty
	space *sync.Cond // bounded enqueuers park here when it is full

	frames []*sendFrame
	head   int
	limit  int

	// depth mirrors the queue length so the drainer's busy-poll phase
	// can check for work without bouncing the lock.
	depth atomic.Int64

	err     error // poison: peer dead or device down; enqueue fails with it
	closing bool  // graceful close: drain what is queued, accept no more
	busy    bool  // drainer is mid-batch (frames in flight, not in the queue)
	writer  bool  // an inline (caller-runs) writer holds the take+write role

	// waiting marks the drainer parked on ready, and spaceWaiters
	// counts enqueuers parked on space, so the opposite side only pays
	// a futex wake when someone is actually parked — enqueues while
	// the drainer is busy writing (the common hot-path case) and batch
	// takes with no blocked sender are signal-free.
	waiting      bool
	spaceWaiters int
}

func newPeerQueue(limit int) *peerQueue {
	q := &peerQueue{limit: limit}
	q.ready = sync.NewCond(&q.mu)
	q.space = sync.NewCond(&q.mu)
	return q
}

func (q *peerQueue) len() int { return len(q.frames) - q.head }

// enqueue appends f. Bounded enqueues block while the queue is at its
// limit — the backpressure that keeps a fast sender from buffering
// unbounded frames — and are woken by the drainer or by poison.
func (q *peerQueue) enqueue(f *sendFrame, bounded bool) error {
	q.mu.Lock()
	if bounded {
		for q.err == nil && !q.closing && q.len() >= q.limit {
			q.spaceWaiters++
			q.space.Wait()
			q.spaceWaiters--
		}
	}
	if q.err != nil {
		err := q.err
		q.mu.Unlock()
		return err
	}
	if q.closing {
		q.mu.Unlock()
		return ErrDeviceClosed
	}
	q.frames = append(q.frames, f)
	q.depth.Store(int64(q.len()))
	if q.waiting {
		q.ready.Signal()
	}
	q.mu.Unlock()
	return nil
}

// takeBatch pops up to maxBatchFrames / maxBatchBytes frames into dst,
// blocking while the queue is empty. An empty return means the queue
// is poisoned or closing and fully drained: the drainer exits.
//
// The empty-queue wait is adaptive: the drainer first busy-polls
// (spin scheduler yields, checking the lock-free depth mirror) so a
// hot sender's next frame is picked up without a futex round trip,
// then parks on the condition variable until signaled.
func (q *peerQueue) takeBatch(dst []*sendFrame, spin int) []*sendFrame {
	q.mu.Lock()
	q.busy = false
	for {
		if q.writer {
			// An inline writer owns take+write; taking now would let
			// this batch overtake the frames it is writing. Park — the
			// writer signals on release when frames remain.
			q.waiting = true
			q.ready.Wait()
			q.waiting = false
			continue
		}
		if q.head < len(q.frames) {
			bytes := 0
			for q.head < len(q.frames) && len(dst) < maxBatchFrames {
				f := q.frames[q.head]
				if len(dst) > 0 && bytes+headerLen+f.wire > maxBatchBytes {
					break
				}
				dst = append(dst, f)
				bytes += headerLen + f.wire
				q.frames[q.head] = nil
				q.head++
			}
			if q.head == len(q.frames) {
				q.frames = q.frames[:0]
				q.head = 0
			}
			q.depth.Store(int64(q.len()))
			q.busy = true
			if q.spaceWaiters > 0 {
				q.space.Broadcast()
			}
			q.mu.Unlock()
			return dst
		}
		if q.err != nil || q.closing {
			q.mu.Unlock()
			return dst[:0]
		}
		if spin > 0 {
			q.mu.Unlock()
			for i := 0; i < spin && q.depth.Load() == 0; i++ {
				runtime.Gosched()
			}
			q.mu.Lock()
			if q.head < len(q.frames) || q.err != nil || q.closing {
				continue
			}
		}
		q.waiting = true
		q.ready.Wait()
		q.waiting = false
	}
}

// poison fails the queue with err: every blocked enqueuer wakes and
// fails, future enqueues fail fast, the drainer exits once its current
// batch is done, and the frames still queued are returned so the
// caller can fail their requests. Idempotent; the first error sticks.
func (q *peerQueue) poison(err error) []*sendFrame {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	drained := append([]*sendFrame(nil), q.frames[q.head:]...)
	clear(q.frames)
	q.frames, q.head = q.frames[:0], 0
	q.depth.Store(0)
	q.ready.Broadcast()
	q.space.Broadcast()
	q.mu.Unlock()
	return drained
}

// closeWith marks the queue closing and, when accepted, appends final
// behind everything already queued — how Finish orders the goodbye
// frame after every data frame (flush-on-finalize). Returns false if
// the queue was already poisoned or closing (final was not taken).
func (q *peerQueue) closeWith(final *sendFrame) bool {
	q.mu.Lock()
	defer func() {
		q.ready.Broadcast()
		q.space.Broadcast()
		q.mu.Unlock()
	}()
	if q.err != nil || q.closing {
		q.closing = true
		return false
	}
	q.closing = true
	if final != nil {
		q.frames = append(q.frames, final)
		q.depth.Store(int64(q.len()))
	}
	return true
}

// waitIdle blocks until the queue is empty with no batch in flight,
// the queue is poisoned, or the deadline passes; it reports whether
// the queue really drained. sync.Cond has no timed wait and this only
// runs on the Finish path, so a short poll is the simplest correct
// implementation.
func (q *peerQueue) waitIdle(deadline time.Time) bool {
	for {
		q.mu.Lock()
		idle := q.head == len(q.frames) && !q.busy && !q.writer
		poisoned := q.err != nil
		q.mu.Unlock()
		if idle || poisoned {
			return idle
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// sendEngine owns one peerQueue and one drainer goroutine per peer.
type sendEngine struct {
	d    *Device
	qs   []*peerQueue // indexed by slot; nil for self
	spin int

	// inline enables the caller-runs fast path (MPJ_SEND_INLINE,
	// default on): a may-block sender that finds the writer role free
	// writes its own frame — plus anything queued — itself. Off, every
	// frame goes through the drainer: callers never touch the wire
	// (the tentpole's strict no-blocking-send semantics) at the cost
	// of a scheduling handoff per batch.
	inline bool

	// batchHist counts completed batches by frames-per-batch bucket:
	// bucket i holds batches of [2^i, 2^(i+1)) frames. The coalescing
	// ratio it exposes is the engine's whole point, so it is kept even
	// without tracing.
	batchHist [8]atomic.Uint64
}

func newSendEngine(d *Device, queue, spin int, inline bool) *sendEngine {
	e := &sendEngine{d: d, qs: make([]*peerQueue, d.cfg.Size), spin: spin, inline: inline}
	for slot := range e.qs {
		if slot != d.cfg.Rank {
			e.qs[slot] = newPeerQueue(queue)
		}
	}
	return e
}

// start launches the per-peer drainers; they are counted on handlerWG
// so shutdown(wait=true) joins them.
func (e *sendEngine) start() {
	for slot, q := range e.qs {
		if q == nil {
			continue
		}
		e.d.handlerWG.Add(1)
		go e.drain(slot)
	}
}

// queue returns the peer's queue, or nil for self/out-of-range slots.
func (e *sendEngine) queue(slot int) *peerQueue {
	if slot < 0 || slot >= len(e.qs) {
		return nil
	}
	return e.qs[slot]
}

// depth reports the peer's current queue depth for introspection.
func (e *sendEngine) depthOf(slot int) int {
	if q := e.queue(slot); q != nil {
		return int(q.depth.Load())
	}
	return 0
}

// histSnapshot copies the frames-per-batch histogram (bucket i counts
// batches of 2^i..2^(i+1)-1 frames; the last bucket is open-ended).
func (e *sendEngine) histSnapshot() []uint64 {
	out := make([]uint64, len(e.batchHist))
	for i := range e.batchHist {
		out[i] = e.batchHist[i].Load()
	}
	return out
}

// failQueued poisons slot's queue with err and fails every queued
// frame's request with it. Called by the peer-death path; idempotent.
func (e *sendEngine) failQueued(slot int, err error) {
	q := e.queue(slot)
	if q == nil {
		return
	}
	e.completeFrames(q.poison(err), err)
}

// stop poisons every queue — device shutdown: blocked enqueuers wake,
// queued frames fail, drainers exit after their in-flight batch.
func (e *sendEngine) stop(err error) {
	for slot, q := range e.qs {
		if q != nil {
			e.failQueued(slot, err)
		}
	}
}

// completeFrames finishes a batch: on success every frame carrying a
// request completes with its status; on failure with err. Frames and
// their pooled headers are recycled either way.
func (e *sendEngine) completeFrames(batch []*sendFrame, err error) {
	for _, f := range batch {
		if f.req != nil {
			if err != nil {
				f.req.Complete(xdev.Status{}, err)
			} else {
				f.req.Complete(f.st, nil)
			}
		}
		putFrame(f)
	}
}

// inlineBuf is the reusable scratch (batch list, staging buffer,
// gather list) for one inline write, pooled so the caller-runs fast
// path allocates nothing in steady state.
type inlineBuf struct {
	batch   []*sendFrame
	staging []byte
	gather  net.Buffers
}

var inlinePool = sync.Pool{New: func() any {
	return &inlineBuf{batch: make([]*sendFrame, 0, maxBatchFrames)}
}}

// sendApp submits an app-thread frame: flat combining. If no writer
// (inline or drainer batch take) is in flight and everything queued
// fits one batch, the calling goroutine becomes the peer's writer — it
// takes the queued frames, appends its own, and issues the wire write
// itself. That keeps the direct path's inline latency (no drainer
// wake, no completion handoff) while still coalescing whatever other
// senders queued meanwhile; under contention or when the queue is deep
// it degrades gracefully to a plain bounded enqueue for the drainer.
// Only may-block threads use this — input handlers always enqueue
// (§IV-A.2: a handler must never block on a wire write).
func (e *sendEngine) sendApp(slot int, q *peerQueue, f *sendFrame) error {
	if !e.inline {
		return q.enqueue(f, true)
	}
	q.mu.Lock()
	if q.err != nil || q.closing || q.writer || q.len()+1 > maxBatchFrames {
		q.mu.Unlock()
		return q.enqueue(f, true)
	}
	bytes := 0
	for i := q.head; i < len(q.frames); i++ {
		bytes += headerLen + q.frames[i].wire
	}
	if q.head < len(q.frames) && bytes+headerLen+f.wire > maxBatchBytes {
		q.mu.Unlock()
		return q.enqueue(f, true)
	}
	ib := inlinePool.Get().(*inlineBuf)
	batch := ib.batch[:0]
	for i := q.head; i < len(q.frames); i++ {
		batch = append(batch, q.frames[i])
		q.frames[i] = nil
	}
	q.frames, q.head = q.frames[:0], 0
	batch = append(batch, f)
	q.depth.Store(0)
	q.writer = true
	if q.spaceWaiters > 0 {
		q.space.Broadcast()
	}
	q.mu.Unlock()

	err := e.writeBatch(slot, batch, &ib.staging, &ib.gather)
	if err != nil {
		e.completeFrames(batch, e.d.peerLost(slot, err))
		e.d.markPeerDead(slot, err)
	} else {
		e.completeFrames(batch, nil)
	}
	ib.batch = batch[:0]
	inlinePool.Put(ib)

	q.mu.Lock()
	q.writer = false
	if q.head < len(q.frames) && q.waiting {
		q.ready.Signal()
	}
	q.mu.Unlock()
	// The frame was accepted: a wire failure completes its request via
	// the failure path (exactly as a drainer write failure would), so
	// the caller must not unwind.
	return nil
}

// compBatch is one written (or failed) batch handed from a drainer to
// its completer: frames to complete, and the final error if the wire
// write failed.
type compBatch struct {
	frames []*sendFrame
	err    error
}

// compPipeline is how many written batches may await completion before
// the drainer blocks handing off the next one.
const compPipeline = 4

// drain is the progress loop for one peer: batch, write, hand off,
// repeat. Completions are pipelined onto a dedicated completer
// goroutine so the drainer's serial path is just batching and the wire
// write — a batch's completion wakes overlap the next batch's write.
// The completer is single and FIFO, so requests complete in wire
// order. On a write error the peer is declared dead — which poisons
// the queue — and the loop exits once the queue reports empty.
func (e *sendEngine) drain(slot int) {
	defer e.d.handlerWG.Done()
	q := e.qs[slot]
	comp := make(chan compBatch, compPipeline)
	// free recycles batch backing slices between the two goroutines so
	// the steady state allocates nothing.
	free := make(chan []*sendFrame, compPipeline+1)
	e.d.handlerWG.Add(1)
	go e.complete(comp, free)
	defer close(comp)
	var staging []byte
	var gather net.Buffers
	for {
		var batch []*sendFrame
		select {
		case batch = <-free:
			batch = batch[:0]
		default:
			batch = make([]*sendFrame, 0, maxBatchFrames)
		}
		batch = q.takeBatch(batch, e.spin)
		if len(batch) == 0 {
			return
		}
		err := e.writeBatch(slot, batch, &staging, &gather)
		if err != nil {
			comp <- compBatch{frames: batch, err: e.d.peerLost(slot, err)}
			// Declaring the peer dead poisons this queue, so the next
			// takeBatch drains to empty and the loop exits.
			e.d.markPeerDead(slot, err)
			continue
		}
		comp <- compBatch{frames: batch}
	}
}

// complete is the completer half of one peer's drain pipeline: it
// finishes handed-off batches in order until the drainer closes the
// channel, then exits — shutdown joins it via handlerWG, so no written
// frame's request is left pending when Finish returns.
func (e *sendEngine) complete(comp chan compBatch, free chan []*sendFrame) {
	defer e.d.handlerWG.Done()
	for cb := range comp {
		e.completeFrames(cb.frames, cb.err)
		select {
		case free <- cb.frames[:0]:
		default:
		}
	}
}

// writeBatch coalesces the batch into one wire write: headers and
// small payload segments are copied into the staging buffer, large
// segments are referenced zero-copy, and the resulting gather list —
// often a single contiguous run — goes out under the per-destination
// lock in one Write/writev.
func (e *sendEngine) writeBatch(slot int, batch []*sendFrame, staging *[]byte, gather *net.Buffers) error {
	// Pre-size the staging area so appends cannot reallocate under the
	// gather entries that alias it.
	staged, total := 0, 0
	for _, f := range batch {
		staged += headerLen
		total += headerLen + f.wire
		for _, s := range f.segs {
			if len(s) < stageSegMax {
				staged += len(s)
			}
		}
	}
	st := (*staging)[:0]
	if cap(st) < staged {
		st = make([]byte, 0, staged)
	}
	g := (*gather)[:0]
	mark := 0
	for _, f := range batch {
		st = append(st, f.hdr...)
		for _, s := range f.segs {
			if len(s) >= stageSegMax {
				if len(st) > mark {
					g = append(g, st[mark:len(st):len(st)])
					mark = len(st)
				}
				g = append(g, s)
			} else {
				st = append(st, s...)
			}
		}
	}
	if len(st) > mark {
		g = append(g, st[mark:len(st):len(st)])
	}
	*staging = st

	d := e.d
	d.wmu[slot].Lock()
	conn := d.writeConn(slot)
	var err error
	switch {
	case conn == nil:
		err = xdev.Errf(DeviceName, "write", "no channel to slot %d", slot)
	case len(g) == 1:
		_, err = conn.Write(g[0])
	default:
		wb := g
		_, err = wb.WriteTo(conn) // consumes wb; g keeps the backing
	}
	d.wmu[slot].Unlock()
	clear(g[:cap(g)])
	*gather = g[:0]
	if err != nil {
		return err
	}

	c := &d.core.Counters
	c.SendBatches.Add(1)
	c.FramesCoalesced.Add(uint64(len(batch)))
	c.SendBatchBytes.Add(uint64(total))
	bucket := 0
	for n := len(batch); n > 1 && bucket < len(e.batchHist)-1; n >>= 1 {
		bucket++
	}
	e.batchHist[bucket].Add(1)
	return nil
}
