package niodev

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mpj/internal/devtest"
	"mpj/internal/transport"
	"mpj/internal/xdev"
)

var jobCounter atomic.Int64

// conformanceRunner adapts the shared device conformance suite.
func conformanceRunner(tr func() xdev.Transport) devtest.JobRunner {
	return conformanceRunnerCfg(tr, nil)
}

// conformanceRunnerCfg is conformanceRunner with a per-rank Config
// mutator, used to pin the send-engine mode (and any future tunable)
// for a whole suite run.
func conformanceRunnerCfg(tr func() xdev.Transport, mutate func(*xdev.Config)) devtest.JobRunner {
	return func(t *testing.T, n int, fn func(d xdev.Device, rank int, pids []xdev.ProcessID)) {
		t.Helper()
		dialer := tr()
		job := jobCounter.Add(1)
		addrs := make([]string, n)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("conf-%d-rank-%d", job, i)
		}
		devs := make([]*Device, n)
		pidLists := make([][]xdev.ProcessID, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			devs[i] = New()
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				cfg := xdev.Config{
					Rank: rank, Size: n, Addrs: addrs, Dialer: dialer,
				}
				if mutate != nil {
					mutate(&cfg)
				}
				pidLists[rank], errs[rank] = devs[rank].Init(cfg)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("rank %d init: %v", i, err)
			}
		}
		defer func() {
			for _, d := range devs {
				d.Finish()
			}
		}()
		var jobWG sync.WaitGroup
		for i := 0; i < n; i++ {
			jobWG.Add(1)
			go func(rank int) {
				defer jobWG.Done()
				fn(devs[rank], rank, pidLists[rank])
			}(i)
		}
		jobWG.Wait()
	}
}

func TestConformanceInProc(t *testing.T) {
	devtest.RunConformance(t,
		conformanceRunner(func() xdev.Transport { return transport.NewInProc(0) }),
		devtest.Options{HasPeek: true, RendezvousAt: DefaultEagerLimit})
}

// TestConformanceInProcDirect pins MPJ_SEND_ENGINE=direct: the
// synchronous escape-hatch path must pass the same suite the default
// engine path does.
func TestConformanceInProcDirect(t *testing.T) {
	devtest.RunConformance(t,
		conformanceRunnerCfg(func() xdev.Transport { return transport.NewInProc(0) },
			func(cfg *xdev.Config) { cfg.SendEngine = "direct" }),
		devtest.Options{HasPeek: true, RendezvousAt: DefaultEagerLimit})
}

// TestChaosConformanceInProcDirect keeps the failure semantics of the
// direct path covered alongside the engine default.
func TestChaosConformanceInProcDirect(t *testing.T) {
	devtest.RunChaos(t,
		conformanceRunnerCfg(func() xdev.Transport { return transport.NewInProc(0) },
			func(cfg *xdev.Config) { cfg.SendEngine = "direct" }),
		devtest.ChaosOptions{HasPeek: true})
}

// TestConformanceTCP runs the same suite over real loopback sockets —
// the transport multi-process jobs use.
func TestConformanceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP suite skipped in -short mode")
	}
	devtest.RunConformance(t, func(t *testing.T, n int, fn func(d xdev.Device, rank int, pids []xdev.ProcessID)) {
		t.Helper()
		// Reserve ports by listening on :0 first, then closing;
		// niodev's dial retry tolerates the small race.
		addrs := make([]string, n)
		for i := range addrs {
			l, err := transport.TCP{}.Listen("127.0.0.1:0")
			if err != nil {
				t.Skipf("loopback unavailable: %v", err)
			}
			addrs[i] = l.Addr().String()
			l.Close()
		}
		devs := make([]*Device, n)
		pidLists := make([][]xdev.ProcessID, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			devs[i] = New()
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				pidLists[rank], errs[rank] = devs[rank].Init(xdev.Config{
					Rank: rank, Size: n, Addrs: addrs, Dialer: transport.TCP{},
				})
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("rank %d init: %v", i, err)
			}
		}
		defer func() {
			for _, d := range devs {
				d.Finish()
			}
		}()
		var jobWG sync.WaitGroup
		for i := 0; i < n; i++ {
			jobWG.Add(1)
			go func(rank int) {
				defer jobWG.Done()
				fn(devs[rank], rank, pidLists[rank])
			}(i)
		}
		jobWG.Wait()
	}, devtest.Options{HasPeek: true, LargeN: 60_000, RendezvousAt: DefaultEagerLimit})
}

// TestChaosConformanceInProc runs the shared failure-semantics suite:
// blocked calls must fail typed, not hang, under Finish and peer death.
func TestChaosConformanceInProc(t *testing.T) {
	devtest.RunChaos(t,
		conformanceRunner(func() xdev.Transport { return transport.NewInProc(0) }),
		devtest.ChaosOptions{HasPeek: true})
}

// TestRecoveryConformanceInProc runs the survivor-continues recovery
// suite: kill a rank mid-operation, then Revoke/Shrink/Agree/Restore.
func TestRecoveryConformanceInProc(t *testing.T) {
	devtest.RunRecovery(t,
		conformanceRunner(func() xdev.Transport { return transport.NewInProc(0) }))
}
