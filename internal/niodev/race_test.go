//go:build race

package niodev

// Under the race detector sync.Pool deliberately drops items to widen
// interleavings, so pooled paths allocate; alloc-count assertions only
// hold in a normal build.
const raceEnabled = true
