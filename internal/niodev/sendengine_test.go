package niodev

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mpj/internal/mpjbuf"
	"mpj/internal/xdev"
)

// TestPeerQueueBatchOrder checks the queue's FIFO contract: a batch
// pops frames in enqueue order, up to the batch caps.
func TestPeerQueueBatchOrder(t *testing.T) {
	q := newPeerQueue(16)
	var want []*sendFrame
	for i := 0; i < 5; i++ {
		f := getFrame()
		f.hdr = make([]byte, headerLen)
		want = append(want, f)
		if err := q.enqueue(f, true); err != nil {
			t.Fatal(err)
		}
	}
	got := q.takeBatch(nil, 0)
	if len(got) != 5 {
		t.Fatalf("batch has %d frames, want 5", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("frame %d out of order", i)
		}
	}
	if q.depth.Load() != 0 {
		t.Fatalf("depth = %d after drain", q.depth.Load())
	}
}

// TestPeerQueuePoisonWakesBlockedEnqueuer is the backpressure-failure
// contract at the queue level: an enqueue blocked on a full queue must
// wake with the poison error, and the queued frames must be handed
// back for failure, not dropped.
func TestPeerQueuePoisonWakesBlockedEnqueuer(t *testing.T) {
	q := newPeerQueue(1)
	f1 := getFrame()
	f1.hdr = make([]byte, headerLen)
	if err := q.enqueue(f1, true); err != nil {
		t.Fatal(err)
	}
	dead := errors.New("peer dead")
	blocked := make(chan error, 1)
	go func() {
		f2 := getFrame()
		f2.hdr = make([]byte, headerLen)
		err := q.enqueue(f2, true) // queue full: blocks until poison
		if err != nil {
			putFrame(f2)
		}
		blocked <- err
	}()
	// Give the enqueuer time to block, then poison.
	time.Sleep(20 * time.Millisecond)
	drained := q.poison(dead)
	if len(drained) != 1 || drained[0] != f1 {
		t.Fatalf("poison drained %d frames, want the 1 queued", len(drained))
	}
	select {
	case err := <-blocked:
		if !errors.Is(err, dead) {
			t.Fatalf("blocked enqueue woke with %v, want the poison error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked enqueue never woke after poison")
	}
	// Post-poison enqueues fail fast, and the drainer side sees empty.
	f3 := getFrame()
	f3.hdr = make([]byte, headerLen)
	if err := q.enqueue(f3, false); !errors.Is(err, dead) {
		t.Fatalf("post-poison enqueue: %v, want poison error", err)
	}
	putFrame(f3)
	if batch := q.takeBatch(nil, 0); len(batch) != 0 {
		t.Fatalf("takeBatch on poisoned queue returned %d frames", len(batch))
	}
	putFrame(f1)
}

// TestPeerQueueCloseWithAppendsBehindQueued checks flush-on-finalize
// at the queue level: the closing frame (the bye) must come out
// *after* everything already queued.
func TestPeerQueueCloseWithAppendsBehindQueued(t *testing.T) {
	q := newPeerQueue(16)
	data := getFrame()
	data.hdr = make([]byte, headerLen)
	if err := q.enqueue(data, true); err != nil {
		t.Fatal(err)
	}
	bye := getFrame()
	bye.hdr = make([]byte, headerLen)
	if !q.closeWith(bye) {
		t.Fatal("closeWith rejected on a healthy queue")
	}
	if err := q.enqueue(getFrame(), false); err == nil {
		t.Fatal("enqueue accepted after closeWith")
	}
	batch := q.takeBatch(nil, 0)
	if len(batch) != 2 || batch[0] != data || batch[1] != bye {
		t.Fatalf("closing batch = %d frames, want [data, bye] in order", len(batch))
	}
	if again := q.takeBatch(nil, 0); len(again) != 0 {
		t.Fatal("takeBatch did not report the closed queue as drained")
	}
	putFrame(data)
	putFrame(bye)
}

// TestSendEngineFlushOnFinish checks flush-on-finalize end to end:
// frames enqueued (not yet written) when Finish is called must all
// reach the peer ahead of the goodbye — no frame left queued.
func TestSendEngineFlushOnFinish(t *testing.T) {
	const n = 64
	runJob(t, 2, xdev.Config{SendEngine: "engine"}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			if d.engine == nil {
				t.Error("send engine not running under default config")
				return
			}
			for i := 0; i < n; i++ {
				buf := mpjbuf.New(16)
				buf.WriteInts([]int32{int32(i)}, 0, 1)
				// ISend without Wait: completion rides the engine frame.
				if _, err := d.ISend(buf, pids[1], 5, 0); err != nil {
					t.Errorf("isend %d: %v", i, err)
					return
				}
			}
			// Finish with up to n frames still queued: sayGoodbye must
			// drain them through the engine before the bye goes out.
			d.Finish()
			return
		}
		for i := 0; i < n; i++ {
			got := recvInts(t, d, pids[0], 5, 1)
			if len(got) != 1 || got[0] != int32(i) {
				t.Errorf("recv %d: got %v, want [%d]", i, got, i)
				return
			}
		}
		// The departure must have been graceful: a flushed goodbye, not
		// a connection error.
		deadline := time.Now().Add(5 * time.Second)
		for d.peerErr(0) == nil {
			if time.Now().After(deadline) {
				t.Error("rank 1 never saw rank 0's goodbye")
				return
			}
			time.Sleep(time.Millisecond)
		}
		if d.Stats().PeersLost != 0 {
			t.Error("graceful goodbye was counted as a peer loss")
		}
	})
}

// TestSendEngineBlockedEnqueueWokenByPeerDeath checks backpressure
// failure end to end: senders blocked on a full per-peer queue (the
// drainer is wedged mid-batch behind the conn-ownership lock) must
// wake with ErrPeerLost when the peer is declared dead.
func TestSendEngineBlockedEnqueueWokenByPeerDeath(t *testing.T) {
	runJob(t, 2, xdev.Config{SendEngine: "engine", SendQueue: 1}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank != 0 {
			return // rank 1 just exists to be declared dead
		}
		// Wedge the drainer: it takes wmu[1] per batch, so holding the
		// lock stalls the first frame mid-write and lets the queue
		// (limit 1) fill behind it.
		d.wmu[1].Lock()
		const senders = 3
		errsCh := make(chan error, senders)
		for i := 0; i < senders; i++ {
			go func() {
				buf := mpjbuf.New(16)
				buf.WriteInts([]int32{1}, 0, 1)
				errsCh <- d.Send(buf, pids[1], 9, 0)
			}()
		}
		// Let the senders pile up: one frame in the drainer, one in the
		// queue, one blocked in enqueue.
		time.Sleep(50 * time.Millisecond)
		d.markPeerDead(1, errors.New("test: simulated peer failure"))
		d.wmu[1].Unlock()
		for i := 0; i < senders; i++ {
			select {
			case err := <-errsCh:
				if !errors.Is(err, xdev.ErrPeerLost) {
					t.Errorf("sender %d: %v, want ErrPeerLost", i, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("sender %d still blocked after peer death", i)
			}
		}
	})
}

// TestSendEngineManySendersOnePeer is the -race stress for the MPSC
// path: many goroutines funnel into one peer's queue; per-(src,dst)
// order must hold within each sender's tag stream, and every message
// must arrive exactly once.
func TestSendEngineManySendersOnePeer(t *testing.T) {
	const senders = 8
	msgs := 200
	if testing.Short() {
		msgs = 50
	}
	runJob(t, 2, xdev.Config{SendEngine: "engine"}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < msgs; i++ {
						sendInts(t, d, pids[1], 100+s, []int32{int32(i)})
					}
				}(s)
			}
			wg.Wait()
			// The whole point of the engine: those sends must have been
			// coalesced, so frames per wire write is at least 1 and the
			// batch counters moved.
			st := d.Stats()
			if st.SendBatches == 0 {
				t.Error("engine mode ran but SendBatches = 0")
			}
			if st.FramesCoalesced < st.SendBatches {
				t.Errorf("FramesCoalesced=%d < SendBatches=%d", st.FramesCoalesced, st.SendBatches)
			}
			return
		}
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					got := recvInts(t, d, pids[0], 100+s, 1)
					if len(got) != 1 || got[0] != int32(i) {
						t.Errorf("tag %d msg %d: got %v, want [%d] (ordering violated)", 100+s, i, got, i)
						return
					}
				}
			}(s)
		}
		wg.Wait()
	})
}

// TestSendEngineDirectModeEscapeHatch pins MPJ_SEND_ENGINE=direct and
// checks both that no engine runs and that traffic still flows.
func TestSendEngineDirectModeEscapeHatch(t *testing.T) {
	runJob(t, 2, xdev.Config{SendEngine: "direct"}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if d.engine != nil {
			t.Error("direct mode still started a send engine")
			return
		}
		if rank == 0 {
			sendInts(t, d, pids[1], 3, []int32{42})
		} else {
			if got := recvInts(t, d, pids[0], 3, 1); len(got) != 1 || got[0] != 42 {
				t.Errorf("direct mode recv: %v", got)
			}
			if st := d.Stats(); st.SendBatches != 0 {
				t.Errorf("direct mode counted %d send batches", st.SendBatches)
			}
		}
	})
}

// TestSendEngineBadMode ensures an unknown selector fails Init loudly
// instead of silently picking a path.
func TestSendEngineBadMode(t *testing.T) {
	d := New()
	_, err := d.Init(xdev.Config{Rank: 0, Size: 1, SendEngine: "warp"})
	if err == nil {
		t.Fatal("Init accepted SendEngine=warp")
	}
}

// TestSendEngineCountersAndIntrospection checks the observability
// satellite: batch counters move, and Introspect reports the engine
// state plus per-peer queue depth fields.
func TestSendEngineCountersAndIntrospection(t *testing.T) {
	runJob(t, 2, xdev.Config{SendEngine: "engine"}, func(d *Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			for i := 0; i < 32; i++ {
				sendInts(t, d, pids[1], 11, []int32{int32(i)})
			}
			// A drainer may still be mid-batch when the last Send returns
			// — poll briefly for the batch counters instead of reading
			// them racily.
			st := d.Stats()
			for deadline := time.Now().Add(5 * time.Second); st.SendBatches == 0 || st.FramesCoalesced == 0 || st.SendBatchBytes == 0; st = d.Stats() {
				if time.Now().After(deadline) {
					t.Errorf("engine counters did not move: batches=%d frames=%d bytes=%d",
						st.SendBatches, st.FramesCoalesced, st.SendBatchBytes)
					break
				}
				time.Sleep(time.Millisecond)
			}
			intro, ok := d.Introspect().(introspection)
			if !ok {
				t.Fatalf("Introspect returned %T", d.Introspect())
			}
			if intro.SendEngine.Mode != "engine" {
				t.Errorf("introspected mode = %q, want engine", intro.SendEngine.Mode)
			}
			if intro.SendEngine.QueueLimit != DefaultSendQueue {
				t.Errorf("introspected queue limit = %d, want %d", intro.SendEngine.QueueLimit, DefaultSendQueue)
			}
			hist := intro.SendEngine.BatchHist
			var total uint64
			for _, b := range hist {
				total += b
			}
			if total == 0 {
				t.Error("batch histogram is empty after 32 sends")
			}
			return
		}
		for i := 0; i < 32; i++ {
			recvInts(t, d, pids[0], 11, 1)
		}
	})
}

// TestSendEngineLargeMessages drives the rendezvous path (payload over
// the eager limit) through the engine: the forked rendezvous writer
// enqueues its data frame like any other sender.
func TestSendEngineLargeMessages(t *testing.T) {
	const n = 40_000 // * 4 bytes > 128 KiB default eager limit
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		vals := make([]int32, n)
		if rank == 0 {
			for i := range vals {
				vals[i] = int32(i)
			}
			sendInts(t, d, pids[1], 21, vals)
			if st := d.Stats(); st.RndvSent != 1 {
				t.Errorf("RndvSent = %d, want 1 (message should exceed the eager limit)", st.RndvSent)
			}
			return
		}
		got := recvInts(t, d, pids[0], 21, n)
		for i, v := range got {
			if v != int32(i) {
				t.Fatalf("payload[%d] = %d, want %d", i, v, i)
			}
		}
	})
}
