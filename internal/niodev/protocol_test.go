package niodev

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"mpj/internal/mpjbuf"
	"mpj/internal/transport"
	"mpj/internal/xdev"
)

func TestHeaderRoundTrip(t *testing.T) {
	f := func(typ uint8, src uint32, tag, ctx int32, seq, wireLen uint64) bool {
		h := header{typ: typ, src: src, tag: tag, ctx: ctx, seq: seq, wireLen: wireLen}
		buf := make([]byte, headerLen)
		h.encode(buf)
		return decodeHeader(buf) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	a, b := transport.Pipe(64)
	defer a.Close()
	defer b.Close()
	go func() {
		if err := writeHello(a, 42, helloFlagCRC); err != nil {
			t.Errorf("writeHello: %v", err)
		}
	}()
	slot, flags, err := readHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if slot != 42 {
		t.Fatalf("slot = %d", slot)
	}
	if flags&helloFlagCRC == 0 {
		t.Fatalf("flags = %#x, want CRC bit set", flags)
	}
}

func TestHelloBadMagic(t *testing.T) {
	a, b := transport.Pipe(64)
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 1, 0, 0, 0, 0})
	if _, _, err := readHello(b); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// injectRaw writes raw bytes onto the write channel to slot under the
// conn-ownership lock — the same lock the send engine's drainer takes
// per batch — so injected garbage lands between engine batches, never
// mid-frame.
func (d *Device) injectRaw(slot int, raw []byte) error {
	d.wmu[slot].Lock()
	defer d.wmu[slot].Unlock()
	conn := d.writeConn(slot)
	if conn == nil {
		return xdev.Errf(DeviceName, "inject", "no channel to slot %d", slot)
	}
	_, err := conn.Write(raw)
	return err
}

func TestInputHandlerDropsUnknownMessageType(t *testing.T) {
	tr := transport.NewInProc(0)
	addrs := []string{"unk-0", "unk-1"}
	devs := [2]*Device{New(), New()}
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(rank int) {
			_, err := devs[rank].Init(xdev.Config{Rank: rank, Size: 2, Addrs: addrs, Dialer: tr})
			done <- err
		}(i)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	defer devs[0].Finish()
	defer devs[1].Finish()

	// Inject a garbage frame on rank 0's write channel to rank 1: rank
	// 1's input handler must reject it (the hello negotiated checksums,
	// and this frame has none), count it as corrupt, and declare rank 0
	// dead rather than silently processing garbage.
	hdr := make([]byte, headerLen)
	hdr[0] = 0xff
	if err := devs[0].injectRaw(1, hdr); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for devs[1].peerErr(0) == nil {
		if time.Now().After(deadline) {
			t.Fatal("rank 1 never declared rank 0 dead")
		}
		time.Sleep(time.Millisecond)
	}
	if got := devs[1].Stats().FramesCorrupt; got != 1 {
		t.Fatalf("FramesCorrupt = %d, want 1", got)
	}
	if !errors.Is(devs[1].peerErr(0), xdev.ErrPeerLost) {
		t.Fatalf("peer error %v does not wrap ErrPeerLost", devs[1].peerErr(0))
	}
	if !errors.Is(devs[1].peerErr(0), xdev.ErrCorruptFrame) {
		t.Fatalf("peer error %v does not wrap ErrCorruptFrame", devs[1].peerErr(0))
	}
	// New operations naming the dead peer fail fast on rank 1.
	buf := mpjbuf.New(16)
	buf.WriteInts([]int32{5}, 0, 1)
	if err := devs[1].Send(buf, xdev.ProcessID{UUID: 0}, 0, 0); !errors.Is(err, xdev.ErrPeerLost) {
		t.Fatalf("send to dead peer: %v, want ErrPeerLost", err)
	}
}

func TestWriteMsgWithoutChannel(t *testing.T) {
	d := New()
	if _, err := d.Init(xdev.Config{Rank: 0, Size: 1}); err != nil {
		t.Fatal(err)
	}
	defer d.Finish()
	// Slot 0 is self: no write channel exists.
	if err := d.writeMsg(0, header{typ: msgEager}, nil); err == nil {
		t.Fatal("writeMsg to missing channel succeeded")
	}
}

func TestSendOverheadMatchesHeader(t *testing.T) {
	d := New()
	if d.SendOverhead() != headerLen || d.RecvOverhead() != headerLen {
		t.Fatalf("overheads %d/%d, want %d", d.SendOverhead(), d.RecvOverhead(), headerLen)
	}
}

func TestDialPeerGivesUp(t *testing.T) {
	// Ensure the dial retry loop terminates with an error against a
	// transport that always refuses (scoped-down timeout via listener
	// absence would take 30s; instead check the refusing path quickly
	// by dialing an in-proc transport with no listener and a tiny
	// deadline through Init validation instead).
	tr := transport.NewInProc(0)
	if _, err := tr.Dial("nobody-home"); err == nil {
		t.Fatal("dial with no listener succeeded")
	}
}

func TestConnCloseDuringRecvFailsPending(t *testing.T) {
	tr := transport.NewInProc(0)
	addrs := []string{"close-0", "close-1"}
	devs := [2]*Device{New(), New()}
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(rank int) {
			_, err := devs[rank].Init(xdev.Config{Rank: rank, Size: 2, Addrs: addrs, Dialer: tr})
			done <- err
		}(i)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Pending blocking recv on rank 0; Finish must unblock it with an
	// error (or the job would hang on shutdown).
	errc := make(chan error, 1)
	go func() {
		rb := mpjbuf.New(0)
		_, err := devs[0].Recv(rb, xdev.ProcessID{UUID: 1}, 9, 0)
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond)
	devs[0].Finish()
	devs[1].Finish()
	select {
	case <-errc:
		// Completed (with or without error) — not wedged. A pending
		// recv whose device closed may legitimately stay pending at
		// the device level; what matters is Peek/Wait unblocking.
	case <-time.After(2 * time.Second):
		// The paper's semantics leave outstanding requests undefined
		// at Finish; our implementation wakes Peek but a raw blocked
		// Recv on a vanished message is application misuse. Accept
		// both outcomes but ensure no deadlock beyond this test:
		t.Skip("pending recv not failed by Finish (acceptable: MPI leaves this undefined)")
	}
}
