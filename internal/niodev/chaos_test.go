package niodev

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/transport"
	"mpj/internal/xdev"
)

// Seeded fault-injection tests: deterministic chaos against full
// multi-rank jobs. Each scenario runs once per seed; the seed drives
// both the fault plan's threshold jitter and any in-test randomness,
// so a failing seed reproduces exactly with
//
//	MPJ_CHAOS_SEED=<n> go test -race -run TestChaos ./internal/niodev/
//
// Set MPJ_CHAOS_TRACE_DIR to dump per-rank mpe trace files on failure
// (the CI chaos job uploads them as artifacts).

// chaosSeeds returns the fault-plan seeds to exercise: the single seed
// in MPJ_CHAOS_SEED when set (the CI chaos matrix), a fixed trio
// otherwise.
func chaosSeeds(t *testing.T) []int64 {
	if s := os.Getenv("MPJ_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("MPJ_CHAOS_SEED=%q: %v", s, err)
		}
		return []int64{v}
	}
	return []int64{1, 2, 3}
}

// chaosJob boots an n-rank job over a shared in-process fabric, with
// each rank's dialer taken from dialerOf (nil = the plain fabric; the
// usual shape wraps one rank's dialer in a transport.Faulty). Devices
// are finished on cleanup; on test failure each rank's trace is written
// to MPJ_CHAOS_TRACE_DIR if set.
func chaosJob(t *testing.T, n int, dialerOf func(rank int, base xdev.Transport) xdev.Transport) []*Device {
	t.Helper()
	base := transport.NewInProc(0)
	job := jobCounter.Add(1)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("chaos-%d-rank-%d", job, i)
	}
	traceDir := os.Getenv("MPJ_CHAOS_TRACE_DIR")
	devs := make([]*Device, n)
	tracers := make([]*mpe.Tracer, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		devs[i] = New()
		dialer := xdev.Transport(base)
		if dialerOf != nil {
			dialer = dialerOf(i, base)
		}
		cfg := xdev.Config{Rank: i, Size: n, Addrs: addrs, Dialer: dialer}
		if traceDir != "" {
			tracers[i] = mpe.NewTracer(i, 0)
			cfg.Recorder = tracers[i]
		}
		wg.Add(1)
		go func(rank int, cfg xdev.Config) {
			defer wg.Done()
			_, errs[rank] = devs[rank].Init(cfg)
		}(i, cfg)
	}
	wg.Wait()
	t.Cleanup(func() {
		for _, d := range devs {
			d.Finish()
		}
		if traceDir != "" && t.Failed() {
			for _, tr := range tracers {
				if tr != nil {
					if err := mpe.WriteFile(traceDir, tr.File()); err != nil {
						t.Logf("trace dump: %v", err)
					}
				}
			}
		}
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", i, err)
		}
	}
	return devs
}

func chaosSend(d *Device, dst xdev.ProcessID, tag int, vals []int64) error {
	buf := mpjbuf.New(len(vals)*8 + 16)
	if err := buf.WriteLongs(vals, 0, len(vals)); err != nil {
		return err
	}
	return d.Send(buf, dst, tag, 0)
}

func chaosRecv(d *Device, src xdev.ProcessID, tag int) error {
	buf := mpjbuf.New(0)
	_, err := d.Recv(buf, src, tag, 0)
	return err
}

// TestChaosKillOneRankMidTraffic is the issue's acceptance scenario: a
// 4-rank job exchanges ring traffic, then a seeded victim finishes
// (dies) while every survivor has both a blocked Recv and a posted
// IRecv pinned on it. Both must surface xdev.ErrPeerLost within 10
// seconds — no goroutine left blocked — and the survivors must still be
// able to talk to each other afterwards.
func TestChaosKillOneRankMidTraffic(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n = 4
			rng := rand.New(rand.NewSource(seed))
			victim := rng.Intn(n)
			killDelay := time.Duration(20+rng.Intn(60)) * time.Millisecond
			devs := chaosJob(t, n, nil)

			var wg sync.WaitGroup
			for rank := 0; rank < n; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					d := devs[rank]
					// Ring traffic proves the job is wired before the
					// fault fires.
					for i := 0; i < 10; i++ {
						if err := chaosSend(d, d.pids[(rank+1)%n], 1, []int64{int64(rank*100 + i)}); err != nil {
							t.Errorf("rank %d ring send: %v", rank, err)
							return
						}
						if err := chaosRecv(d, d.pids[(rank-1+n)%n], 1); err != nil {
							t.Errorf("rank %d ring recv: %v", rank, err)
							return
						}
					}
					if rank == victim {
						time.Sleep(killDelay)
						d.Finish()
						return
					}

					// One posted IRecv and one blocked Recv, both pinned
					// on the victim; the victim never sends either.
					waitErrc := make(chan error, 1)
					if req, err := d.IRecv(mpjbuf.New(0), d.pids[victim], 98, 0); err != nil {
						waitErrc <- err // victim already detected dead
					} else {
						go func() {
							_, err := req.Wait()
							waitErrc <- err
						}()
					}
					recvErrc := make(chan error, 1)
					go func() { recvErrc <- chaosRecv(d, d.pids[victim], 99) }()

					deadline := time.After(10 * time.Second)
					for pending := 2; pending > 0; pending-- {
						select {
						case err := <-recvErrc:
							recvErrc = nil
							if !errors.Is(err, xdev.ErrPeerLost) {
								t.Errorf("rank %d: blocked Recv got %v, want ErrPeerLost", rank, err)
							}
						case err := <-waitErrc:
							waitErrc = nil
							if !errors.Is(err, xdev.ErrPeerLost) {
								t.Errorf("rank %d: blocked Wait got %v, want ErrPeerLost", rank, err)
							}
						case <-deadline:
							t.Errorf("rank %d: still blocked on dead rank %d after 10s", rank, victim)
							return
						}
					}

					// Survivors re-form a smaller ring and keep working.
					next := (rank + 1) % n
					for next == victim {
						next = (next + 1) % n
					}
					prev := (rank - 1 + n) % n
					for prev == victim {
						prev = (prev - 1 + n) % n
					}
					if err := chaosSend(d, d.pids[next], 2, []int64{int64(rank)}); err != nil {
						t.Errorf("rank %d post-loss send: %v", rank, err)
					}
					if err := chaosRecv(d, d.pids[prev], 2); err != nil {
						t.Errorf("rank %d post-loss recv: %v", rank, err)
					}
				}(rank)
			}
			wg.Wait()
		})
	}
}

// TestChaosResetMidRendezvous cuts rank 0's write channel partway
// through a large rendezvous transfer: past the hello and RTS control
// traffic, well before the ~512 KiB payload completes. The receiver's
// blocked Recv must fail with ErrPeerLost (it answered the RTS and is
// owed data that will never arrive) and the sender's Send must report
// the failure rather than pretend success.
func TestChaosResetMidRendezvous(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			devs := chaosJob(t, 2, func(rank int, base xdev.Transport) xdev.Transport {
				if rank != 0 {
					return base
				}
				return transport.NewFaulty(base, transport.FaultPlan{
					Seed:            seed,
					ResetAfterBytes: 64 << 10,
				})
			})

			const elems = 64 << 10 // 512 KiB payload, 4× the eager limit
			sendErrc := make(chan error, 1)
			go func() {
				sendErrc <- chaosSend(devs[0], devs[0].pids[1], 3, make([]int64, elems))
			}()

			if err := chaosRecv(devs[1], devs[1].pids[0], 3); err == nil {
				t.Fatal("recv of reset rendezvous transfer succeeded")
			} else if !errors.Is(err, xdev.ErrPeerLost) {
				t.Fatalf("recv error %v does not wrap ErrPeerLost", err)
			}
			select {
			case err := <-sendErrc:
				if err == nil {
					t.Fatal("send over reset channel reported success")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("sender still blocked 10s after reset")
			}
		})
	}
}

// TestChaosCorruptFrame flips a bit in rank 0's wire traffic shortly
// after the handshake (the 12-byte hello itself stays clean, so the
// job wires up). The receiver's CRC check must reject the frame —
// counted in FramesCorrupt, surfaced as ErrCorruptFrame — and declare
// the peer lost. Never silent corruption.
func TestChaosCorruptFrame(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			devs := chaosJob(t, 2, func(rank int, base xdev.Transport) xdev.Transport {
				if rank != 0 {
					return base
				}
				// Threshold jitter keeps the cut in [48, 80] bytes:
				// after the hello, inside the first eager frames.
				return transport.NewFaulty(base, transport.FaultPlan{
					Seed:              seed,
					CorruptAfterBytes: 64,
				})
			})

			// Small eager sends, paced so the send engine drains each one
			// as its own wire write: corruption fires on the first write
			// that STARTS past the threshold, so a single coalesced batch
			// spanning it would sail through clean. Enough paced writes
			// guarantee one begins beyond the jittered cut. Sends may
			// themselves error once the receiver has torn the connection
			// down; that is fine.
			for i := 0; i < 8; i++ {
				if err := chaosSend(devs[0], devs[0].pids[1], 4, []int64{int64(i)}); err != nil {
					t.Logf("send %d after corruption: %v", i, err)
					break
				}
				time.Sleep(2 * time.Millisecond)
			}

			deadline := time.Now().Add(10 * time.Second)
			var perr error
			for time.Now().Before(deadline) {
				if perr = devs[1].peerErr(0); perr != nil {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if perr == nil {
				t.Fatal("receiver never declared the corrupting peer dead")
			}
			if !errors.Is(perr, xdev.ErrCorruptFrame) {
				t.Errorf("peer death cause %v does not wrap ErrCorruptFrame", perr)
			}
			if !errors.Is(perr, xdev.ErrPeerLost) {
				t.Errorf("peer death cause %v does not wrap ErrPeerLost", perr)
			}
			if got := devs[1].Stats().FramesCorrupt; got < 1 {
				t.Errorf("FramesCorrupt = %d, want ≥ 1", got)
			}
			// The corruption must also surface to blocked callers, not
			// just the stats: a receive pinned on the dead peer fails
			// fast (tag 44 was never sent, so no buffered clean message
			// can satisfy it).
			if err := chaosRecv(devs[1], devs[1].pids[0], 44); !errors.Is(err, xdev.ErrPeerLost) {
				t.Errorf("recv from corrupting peer got %v, want ErrPeerLost", err)
			}
		})
	}
}

// TestChaosAbort: one rank aborts the job while every other rank is
// blocked receiving. The abort broadcast must wake them all with the
// abort code — MPI_Abort semantics at the device layer.
func TestChaosAbort(t *testing.T) {
	const n, code = 4, 7
	devs := chaosJob(t, n, nil)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			d := devs[rank]
			if rank == 0 {
				time.Sleep(50 * time.Millisecond) // let the others block
				if err := d.Abort(code); err != nil {
					t.Errorf("abort: %v", err)
				}
				return
			}
			errc := make(chan error, 1)
			go func() { errc <- chaosRecv(d, d.pids[0], 50) }()
			select {
			case err := <-errc:
				if !errors.Is(err, xdev.ErrAborted) {
					t.Errorf("rank %d: recv during abort got %v, want ErrAborted", rank, err)
					return
				}
				var ab *xdev.AbortError
				if !errors.As(err, &ab) {
					t.Errorf("rank %d: %v carries no *xdev.AbortError", rank, err)
				} else if ab.Code != code || ab.From != 0 {
					t.Errorf("rank %d: abort (code=%d from=%d), want (code=%d from=0)",
						rank, ab.Code, ab.From, code)
				}
			case <-time.After(10 * time.Second):
				t.Errorf("rank %d: recv still blocked 10s after abort", rank)
			}
		}(rank)
	}
	wg.Wait()
}

// TestChaosDialRefusals: a rank whose dials are refused several times
// must still join the job — dialPeer's jittered backoff absorbs planned
// refusals exactly like peers that are slow to come up.
func TestChaosDialRefusals(t *testing.T) {
	var faulty *transport.Faulty
	var peerAddr string
	devs := chaosJob(t, 2, func(rank int, base xdev.Transport) xdev.Transport {
		if rank != 1 {
			return base
		}
		faulty = transport.NewFaulty(base, transport.FaultPlan{Seed: 1, DialRefusals: 3})
		return faulty
	})
	peerAddr = devs[1].cfg.Addrs[0]

	// chaosJob already fataled if Init failed; the job being up despite
	// the refusals is the point. Confirm the retries actually happened.
	if got := faulty.Dials(peerAddr); got < 4 {
		t.Fatalf("Dials(%q) = %d, want ≥ 4 (3 refusals + success)", peerAddr, got)
	}
	if err := chaosSend(devs[1], devs[1].pids[0], 5, []int64{42}); err != nil {
		t.Fatalf("send after refused dials: %v", err)
	}
	if err := chaosRecv(devs[0], devs[0].pids[1], 5); err != nil {
		t.Fatalf("recv after refused dials: %v", err)
	}
}
