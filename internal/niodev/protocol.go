package niodev

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"

	"mpj/internal/devcore"
	"mpj/internal/match"
	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/xdev"
)

// Wire message types.
const (
	msgEager     = 1 // standard-mode eager data
	msgEagerSync = 2 // synchronous-mode eager data; receiver ACKs on match
	msgRTS       = 3 // rendezvous READY_TO_SEND
	msgRTR       = 4 // rendezvous READY_TO_RECV
	msgRndvData  = 5 // rendezvous payload
	msgAck       = 6 // eager-sync matched acknowledgement
	msgAbort     = 7 // job abort broadcast; tag carries the abort code
	msgBye       = 8 // graceful departure: the sender finished cleanly
	msgRevoke    = 9 // context revocation broadcast; ctx carries the context
)

// headerLen is the fixed wire header:
// type(1) flags(1) pad(2) src(4) tag(4) ctx(4) seq(8) wireLen(8)
// payCRC(4) hdrCRC(4).
//
// hdrCRC covers bytes [0:36) and payCRC the payload bytes, both
// CRC-32C (Castagnoli); they are computed only when the sender
// negotiated checksums in its hello (flags bit 0), and zero otherwise.
const headerLen = 40

// hdrFlagCRC marks a frame whose payCRC/hdrCRC fields are valid.
const hdrFlagCRC = 0x01

const helloMagic = 0x4d504a45 // "MPJE"

// helloFlagCRC advertises in the hello handshake that every frame on
// this connection carries CRC-32C integrity checksums. The receiver
// then treats a frame without the flag — or with a mismatching
// checksum — as corrupt.
const helloFlagCRC = 0x01

// castagnoli is the CRC-32C table shared by all frame checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

type header struct {
	typ     uint8
	flags   uint8
	src     uint32
	tag     int32
	ctx     int32
	seq     uint64
	wireLen uint64
	payCRC  uint32
}

func (h header) encode(dst []byte) {
	dst[0] = h.typ
	dst[1] = h.flags
	dst[2], dst[3] = 0, 0
	binary.BigEndian.PutUint32(dst[4:8], h.src)
	binary.BigEndian.PutUint32(dst[8:12], uint32(h.tag))
	binary.BigEndian.PutUint32(dst[12:16], uint32(h.ctx))
	binary.BigEndian.PutUint64(dst[16:24], h.seq)
	binary.BigEndian.PutUint64(dst[24:32], h.wireLen)
	binary.BigEndian.PutUint32(dst[32:36], h.payCRC)
	var hdrCRC uint32
	if h.flags&hdrFlagCRC != 0 {
		hdrCRC = crc32.Checksum(dst[0:36], castagnoli)
	}
	binary.BigEndian.PutUint32(dst[36:40], hdrCRC)
}

func decodeHeader(src []byte) header {
	return header{
		typ:     src[0],
		flags:   src[1],
		src:     binary.BigEndian.Uint32(src[4:8]),
		tag:     int32(binary.BigEndian.Uint32(src[8:12])),
		ctx:     int32(binary.BigEndian.Uint32(src[12:16])),
		seq:     binary.BigEndian.Uint64(src[16:24]),
		wireLen: binary.BigEndian.Uint64(src[24:32]),
		payCRC:  binary.BigEndian.Uint32(src[32:36]),
	}
}

// verifyHeader checks the integrity of a raw frame header read from a
// connection whose hello negotiated checksums.
func verifyHeader(raw []byte) error {
	if raw[1]&hdrFlagCRC == 0 {
		return fmt.Errorf("niodev: frame missing negotiated checksum: %w", xdev.ErrCorruptFrame)
	}
	want := binary.BigEndian.Uint32(raw[36:40])
	if got := crc32.Checksum(raw[0:36], castagnoli); got != want {
		return fmt.Errorf("niodev: header checksum mismatch (got %#x want %#x): %w",
			got, want, xdev.ErrCorruptFrame)
	}
	return nil
}

func writeHello(c net.Conn, slot uint32, flags uint32) error {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:4], helloMagic)
	binary.BigEndian.PutUint32(b[4:8], slot)
	binary.BigEndian.PutUint32(b[8:12], flags)
	_, err := c.Write(b[:])
	return err
}

func readHello(c net.Conn) (slot, flags uint32, err error) {
	var b [12]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return 0, 0, err
	}
	if binary.BigEndian.Uint32(b[0:4]) != helloMagic {
		return 0, 0, fmt.Errorf("niodev: bad hello magic")
	}
	return binary.BigEndian.Uint32(b[4:8]), binary.BigEndian.Uint32(b[8:12]), nil
}

// crcReader accumulates a CRC-32C over everything read through it, so
// payloads streamed straight into user buffers can still be verified.
type crcReader struct {
	r   io.Reader
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.sum = crc32.Update(c.sum, castagnoli, p[:n])
	}
	return n, err
}

// payloadCRC checksums a payload's segments as one stream.
func payloadCRC(segments [][]byte) uint32 {
	var sum uint32
	for _, s := range segments {
		sum = crc32.Update(sum, castagnoli, s)
	}
	return sum
}

// writeMsg writes a header and optional payload segments to dst's write
// channel under the per-destination lock (the paper's "lock dest
// channel / send / unlock"). The header comes from the devcore slice
// pool: the write is synchronous, so the slice can be recycled as soon
// as WriteTo returns.
func (d *Device) writeMsg(slot int, h header, segments [][]byte) error {
	hdr := devcore.GetSlice(headerLen)
	if d.crcOut {
		h.flags |= hdrFlagCRC
		h.payCRC = payloadCRC(segments)
	}
	h.encode(hdr)

	d.wmu[slot].Lock()
	conn := d.writeConn(slot)
	var err error
	switch {
	case conn == nil:
		err = xdev.Errf(DeviceName, "write", "no channel to slot %d", slot)
	case len(segments) == 0:
		_, err = conn.Write(hdr)
	default:
		bp := gatherPool.Get().(*net.Buffers)
		orig := append(append((*bp)[:0], hdr), segments...)
		bufs := orig
		_, err = bufs.WriteTo(conn) // consumes bufs; orig keeps the backing
		clear(orig)
		*bp = orig[:0]
		gatherPool.Put(bp)
	}
	d.wmu[slot].Unlock()
	devcore.PutSlice(hdr)
	return err
}

// gatherPool recycles the vectored-write gather lists of writeMsg so
// the steady-state frame path does not allocate. Entries are cleared
// before reuse so pooled lists do not pin payload slices.
var gatherPool = sync.Pool{New: func() any {
	b := make(net.Buffers, 0, 4)
	return &b
}}

// newFrame builds a send-engine frame for h and segments, encoding the
// header (with checksums when negotiated) into a pooled slice.
func (d *Device) newFrame(h header, segments [][]byte, req *devcore.Request, st xdev.Status) *sendFrame {
	hdr := devcore.GetSlice(headerLen)
	if d.crcOut {
		h.flags |= hdrFlagCRC
		h.payCRC = payloadCRC(segments)
	}
	h.encode(hdr)
	f := getFrame()
	f.hdr = hdr
	f.segs = append(f.segs, segments...)
	for _, s := range segments {
		f.wire += len(s)
	}
	f.req = req
	f.st = st
	return f
}

// send routes one protocol frame to slot — the single choke point the
// two outbound paths share. In engine mode (the default) it enqueues
// the frame on the peer's send queue and returns without touching the
// network: the peer's drainer coalesces it into a batch, writes, and
// completes req (if the frame carries one) with st. In direct mode
// (MPJ_SEND_ENGINE=direct) it writes synchronously via writeMsg and
// completes req inline.
//
// bounded selects backpressure: data frames from application threads
// pass true and block while the peer's queue is full; control frames
// (ACK, RTR) issued by input handlers pass false, because a handler
// blocked on its own outbound queue is the classic two-sided
// flow-control deadlock.
//
// The contract on error: req has NOT been completed, no frame was (or
// will be) written, the peer's death has already been recorded where
// the failure implies it, and the returned error is final — it
// satisfies errors.Is for xdev.ErrPeerLost (or the device-closed /
// abort shape). Callers only unwind their own registration state.
func (d *Device) send(slot int, h header, segments [][]byte, req *devcore.Request, st xdev.Status, bounded bool) error {
	if e := d.engine; e != nil {
		q := e.queue(slot)
		if q == nil {
			return xdev.Errf(DeviceName, "send", "no queue for slot %d", slot)
		}
		f := d.newFrame(h, segments, req, st)
		var err error
		if bounded {
			// May-block callers go through the caller-runs fast path:
			// when the writer role is free the sender writes its own
			// frame (plus anything queued) inline, skipping the drainer
			// wake entirely.
			err = e.sendApp(slot, q, f)
		} else {
			err = q.enqueue(f, false)
		}
		if err != nil {
			f.req = nil // caller keeps ownership on the error path
			putFrame(f)
			return err
		}
		return nil
	}
	if err := d.writeMsg(slot, h, segments); err != nil {
		d.markPeerDead(slot, err)
		return d.peerLost(slot, err)
	}
	if req != nil {
		req.Complete(st, nil)
	}
	return nil
}

// isend implements the four send modes. sync selects synchronous
// completion semantics (Ssend/ISsend).
func (d *Device) isend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int, sync bool) (*devcore.Request, error) {
	if err := d.opErr("isend"); err != nil {
		return nil, err
	}
	slot, err := d.slotOf(dst)
	if err != nil {
		return nil, err
	}
	if err := d.peerErr(slot); err != nil {
		return nil, err
	}
	if err := d.core.CtxErr(int32(context)); err != nil {
		return nil, err
	}
	req := d.core.NewRequest(devcore.SendReq, buf)
	req.OpCtx = int32(context)
	wireLen := buf.WireLen()
	if d.rec.Enabled() {
		req.Trace(int32(slot), int32(tag), int32(context))
		d.rec.Event(mpe.SendBegin, int32(slot), int32(tag), int32(context), int64(wireLen))
	}

	if slot == d.cfg.Rank {
		d.deliverSelf(buf, tag, context, sync, req)
		return req, nil
	}

	if wireLen <= d.eagerLimit {
		// Eager protocol (paper Fig. 3): write the data immediately and
		// return a non-pending request — unless synchronous, in which
		// case completion waits for the receiver's match ACK.
		typ := uint8(msgEager)
		var seq uint64
		if sync {
			typ = msgEagerSync
			seq = d.core.NextSeqSend(uint64(slot), int32(context), int32(tag))
			if err := d.pendingSync.Add(devcore.PendingKey{Peer: uint64(slot), Seq: seq}, req); err != nil {
				return nil, err // peer death or shutdown raced the gate checks
			}
		} else if d.rec.Enabled() || d.core.ReplayActive() {
			// Plain eager frames only need a seq for cross-rank trace
			// correlation and the record/replay match stamp, so the
			// counter bump is paid only when one of those is on.
			seq = d.core.NextSeqSend(uint64(slot), int32(context), int32(tag))
		}
		req.SetSeq(seq)
		if d.core.ReplayActive() {
			req.SetReplayID(int64(slot), int32(tag), int32(context), seq)
		}
		d.core.Counters.EagerSent.Add(1)
		d.core.Counters.BytesSent.Add(uint64(wireLen))
		h := header{typ: typ, src: uint32(d.cfg.Rank), tag: int32(tag), ctx: int32(context), seq: seq, wireLen: uint64(wireLen)}
		// A non-sync eager request rides the frame: the drainer (or the
		// direct write) completes it once the data is on the wire —
		// buffer ownership returns to the user at completion, exactly as
		// before. A sync request's completion is the receiver's ACK, so
		// its frame carries no request.
		var freq *devcore.Request
		if !sync {
			freq = req
		}
		if err := d.send(slot, h, buf.Segments(), freq, xdev.Status{Source: d.self, Tag: tag, Bytes: wireLen}, true); err != nil {
			if sync {
				if _, mine := d.pendingSync.Take(devcore.PendingKey{Peer: uint64(slot), Seq: seq}); !mine {
					// The peer-death drain already owned and completed
					// this request; hand it back so Wait reports that.
					return req, nil
				}
			}
			return nil, err
		}
		if d.rec.Enabled() {
			d.rec.EventSeq(mpe.EagerOut, int32(slot), int32(tag), int32(context), int64(wireLen), seq)
		}
		return req, nil
	}

	// Rendezvous protocol (paper Fig. 6): register the pending send,
	// then announce with READY_TO_SEND. The core lock and the
	// destination channel lock are taken one after the other, never
	// nested, so sends to other destinations don't block.
	d.core.Counters.RndvSent.Add(1)
	d.core.Counters.BytesSent.Add(uint64(wireLen))
	seq := d.core.NextSeqSend(uint64(slot), int32(context), int32(tag))
	req.SetSeq(seq)
	if d.core.ReplayActive() {
		req.SetReplayID(int64(slot), int32(tag), int32(context), seq)
	}
	req.SendTag, req.SendCtx = int32(tag), int32(context)
	if err := d.pendingRndv.Add(devcore.PendingKey{Peer: uint64(slot), Seq: seq}, req); err != nil {
		return nil, err // peer death or shutdown raced the gate checks
	}
	h := header{typ: msgRTS, src: uint32(d.cfg.Rank), tag: int32(tag), ctx: int32(context), seq: seq, wireLen: uint64(wireLen)}
	if err := d.send(slot, h, nil, nil, xdev.Status{}, true); err != nil {
		if _, mine := d.pendingRndv.Take(devcore.PendingKey{Peer: uint64(slot), Seq: seq}); !mine {
			return req, nil // completed by the peer-death drain
		}
		return nil, err
	}
	if d.rec.Enabled() {
		d.rec.EventSeq(mpe.RendezvousRTS, int32(slot), int32(tag), int32(context), int64(wireLen), seq)
	}
	return req, nil
}

// ISend starts a standard-mode non-blocking send.
func (d *Device) ISend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	return d.isend(buf, dst, tag, context, false)
}

// Send is the blocking standard-mode send.
func (d *Device) Send(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	r, err := d.isend(buf, dst, tag, context, false)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

// ISsend starts a synchronous-mode non-blocking send.
func (d *Device) ISsend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	return d.isend(buf, dst, tag, context, true)
}

// Ssend is the blocking synchronous-mode send.
func (d *Device) Ssend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	r, err := d.isend(buf, dst, tag, context, true)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

// deliverSelf routes a send whose destination is this process through
// the matching engine without touching the network.
func (d *Device) deliverSelf(buf *mpjbuf.Buffer, tag, context int, sync bool, sreq *devcore.Request) {
	env := match.Concrete{Ctx: int32(context), Tag: int32(tag), Src: uint64(d.cfg.Rank)}
	st := xdev.Status{Source: d.self, Tag: tag, Bytes: buf.WireLen()}
	d.core.Counters.EagerSent.Add(1)
	d.core.Counters.BytesSent.Add(uint64(buf.WireLen()))

	var seq uint64
	if d.rec.Enabled() || d.core.ReplayActive() {
		seq = d.core.NextSeqSend(uint64(d.cfg.Rank), int32(context), int32(tag))
		sreq.SetSeq(seq)
	}
	if d.core.ReplayActive() {
		sreq.SetReplayID(int64(d.cfg.Rank), int32(tag), int32(context), seq)
	}
	arr := &devcore.Arrival{
		Src: uint64(d.cfg.Rank), Tag: int32(tag), Ctx: int32(context),
		Seq: seq, WireLen: buf.WireLen(), Data: devcore.WireCopy(buf),
	}
	if sync {
		arr.SyncReq = sreq
	}
	rreq, matched, err := d.core.MatchOrPark(env, arr)
	if err != nil {
		// Shutdown or abort raced the isend gate: nothing parked, so the
		// sender completes with the failure instead of hanging.
		devcore.PutSlice(arr.Data)
		if ferr := d.opErr("isend"); ferr != nil {
			err = ferr
		}
		sreq.Complete(xdev.Status{}, err)
		return
	}
	if matched {
		loadErr := rreq.Buf.LoadWire(arr.Data)
		devcore.PutSlice(arr.Data)
		rreq.Complete(st, loadErr)
		sreq.Complete(st, nil)
		return
	}
	if !sync {
		sreq.Complete(st, nil)
	}
}

func (d *Device) pattern(src xdev.ProcessID, tag, context int) (match.Pattern, error) {
	p := match.Pattern{Ctx: int32(context)}
	if tag == xdev.AnyTag {
		p.Tag = match.AnyTag
	} else {
		p.Tag = int32(tag)
	}
	if src.IsAnySource() {
		p.Src = match.AnySource
	} else {
		slot, err := d.slotOf(src)
		if err != nil {
			return p, err
		}
		p.Src = uint64(slot)
	}
	return p, nil
}

// IRecv posts a non-blocking receive (paper Figs. 4 and 7). If an
// unexpected message already matches, it is consumed immediately;
// otherwise the request joins the pending-recv-request-set.
//
// A receive pinned to a peer already known dead fails fast with the
// peer's death error — unless a matching message arrived before the
// peer died, which is still delivered. ANY_SOURCE receives stay posted
// as long as any peer could satisfy them.
func (d *Device) IRecv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Request, error) {
	if err := d.opErr("irecv"); err != nil {
		return nil, err
	}
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return nil, err
	}
	req := d.core.NewRequest(devcore.RecvReq, buf)
	req.OpCtx = int32(context)
	if d.rec.Enabled() {
		peer := int32(-1)
		if !src.IsAnySource() {
			peer = int32(p.Src)
		}
		req.Trace(peer, int32(tag), int32(context))
		d.rec.Event(mpe.RecvPosted, peer, int32(tag), int32(context), 0)
	}
	if err := d.irecvReq(req, p); err != nil {
		return nil, err
	}
	return req, nil
}

// irecvReq is the post-creation half of IRecv: it posts req under the
// pattern, or consumes a matching parked arrival — answering a
// rendezvous announcement with READY_TO_RECV, or delivering a buffered
// eager payload. A nil return means the request's lifecycle is now in
// the core's hands (posted, or already completed, possibly with a
// recorded failure); a non-nil return means nothing happened to req
// (devcore.ErrClaimed: a dual-posted request was won by the other core
// first).
func (d *Device) irecvReq(req *devcore.Request, p match.Pattern) error {
	buf := req.Buf
	arr, err := d.core.PostRecv(p, req, nil)
	if err != nil {
		return err
	}
	if arr == nil {
		return nil // posted; an arrival or drain completes it
	}
	if arr.Rndv {
		// Rendezvous announced but unmatched until now: the user thread
		// (not the input handler) sends READY_TO_RECV, per Fig. 7.
		k := devcore.PendingKey{Peer: arr.Src, Seq: arr.Seq}
		if err := d.rndvIncoming.Add(k, req); err != nil {
			// The announcing peer died (or the device closed) between the
			// match and the registration; fail the receive the same way
			// the drain would have.
			req.Complete(xdev.Status{}, err)
			return nil
		}
		h := header{typ: msgRTR, src: uint32(d.cfg.Rank), seq: arr.Seq}
		if err := d.send(int(arr.Src), h, nil, nil, xdev.Status{}, false); err != nil {
			if _, mine := d.rndvIncoming.Take(k); !mine {
				return nil // completed by the peer-death drain
			}
			req.Complete(xdev.Status{}, &xdev.Error{Dev: DeviceName, Op: "rendezvous RTR", Err: err})
			return nil
		}
		if d.rec.Enabled() {
			d.rec.EventSeq(mpe.RendezvousRTR, int32(arr.Src), arr.Tag, arr.Ctx, int64(arr.WireLen), arr.Seq)
		}
		return nil
	}

	// Buffered eager message: copy from the device-level input buffer
	// into the user buffer (Fig. 4), recycling the staging slice.
	st := xdev.Status{Source: d.pids[arr.Src], Tag: int(arr.Tag), Bytes: arr.WireLen}
	loadErr := buf.LoadWire(arr.Data)
	devcore.PutSlice(arr.Data)
	arr.Data = nil
	switch {
	case arr.SyncReq != nil:
		arr.SyncReq.Complete(st, nil) // self synchronous sender
	case arr.Sync:
		h := header{typ: msgAck, src: uint32(d.cfg.Rank), seq: arr.Seq}
		if err := d.send(int(arr.Src), h, nil, nil, xdev.Status{}, false); err != nil {
			req.Complete(st, err)
			return nil
		}
	}
	req.Complete(st, loadErr)
	return nil
}

// PostRecvReq posts a receive on an externally created request — the
// composition hook hybriddev uses to dual-post one ANY_SOURCE request
// into this device and its shared-memory sibling. The caller owns
// request creation and tracing; rendezvous and eager delivery behave
// exactly as in IRecv. Returns devcore.ErrClaimed when the sibling
// core won the request before this device could act (req untouched).
func (d *Device) PostRecvReq(req *devcore.Request, src xdev.ProcessID, tag, context int) error {
	if err := d.opErr("irecv"); err != nil {
		return err
	}
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return err
	}
	req.OpCtx = int32(context)
	return d.irecvReq(req, p)
}

// Core exposes the device's progress core for composition (hybriddev's
// shared completion queue and notification hooks).
func (d *Device) Core() *devcore.Core { return d.core }

// Recv blocks until a matching message has been received.
func (d *Device) Recv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	r, err := d.IRecv(buf, src, tag, context)
	if err != nil {
		return xdev.Status{}, err
	}
	return r.Wait()
}

// IProbe checks for a matching available message without receiving it.
func (d *Device) IProbe(src xdev.ProcessID, tag, context int) (xdev.Status, bool, error) {
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return xdev.Status{}, false, err
	}
	arr, err := d.core.IProbe(p, "iprobe")
	if err != nil {
		return xdev.Status{}, false, err
	}
	if arr == nil {
		return xdev.Status{}, false, nil
	}
	return xdev.Status{Source: d.pids[arr.Src], Tag: int(arr.Tag), Bytes: arr.WireLen}, true, nil
}

// Probe blocks until a matching message is available. It fails instead
// of blocking forever when the device closes, the job aborts, or a
// pinned source dies with no buffered match left.
func (d *Device) Probe(src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return xdev.Status{}, err
	}
	arr, err := d.core.Probe(p, "probe")
	if err != nil {
		return xdev.Status{}, err
	}
	return xdev.Status{Source: d.pids[arr.Src], Tag: int(arr.Tag), Bytes: arr.WireLen}, nil
}

// inputHandler is the progress engine for one inbound connection (read
// channel) from peer slot src. It mirrors the paper's input-handler
// pseudocode (Figs. 5 and 8): it must never block on anything except
// reading its own channel, so rendezvous data sends are forked onto
// their own goroutines.
//
// When the loop exits on an error while the device is still live, the
// peer is declared dead: its pending requests fail with ErrPeerLost
// and blocked waiters wake (the failure-detection half of the device).
func (d *Device) inputHandler(conn net.Conn, src uint32, crc bool) {
	// Inbound frames are read through a buffered reader sized to the
	// send engine's batch cap: a coalesced batch from the peer arrives
	// in one (or few) bulk reads instead of two reads per frame, the
	// receive-side mirror of the vectored batch write. Payload reads at
	// or above the buffer size bypass it (bufio passes large reads
	// straight through when its buffer is empty), so rendezvous bulk
	// data still streams zero-copy into user buffers.
	err := d.readLoop(bufio.NewReaderSize(conn, 64<<10), src, crc)
	conn.Close()
	if err != nil && !d.closed.Load() {
		d.markPeerDead(int(src), err)
	}
}

func (d *Device) readLoop(conn io.Reader, src uint32, crc bool) error {
	hdr := make([]byte, headerLen)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return err // connection closed (Finish, abort, or peer exit)
		}
		if crc {
			if err := verifyHeader(hdr); err != nil {
				d.noteCorrupt(src, err)
				return err
			}
		}
		h := decodeHeader(hdr)
		switch h.typ {
		case msgEager, msgEagerSync:
			if err := d.handleEager(conn, h, crc); err != nil {
				return err
			}
		case msgRTS:
			d.handleRTS(h)
		case msgRTR:
			d.handleRTR(h)
		case msgRndvData:
			if err := d.handleRndvData(conn, h, crc); err != nil {
				return err
			}
		case msgAck:
			d.handleAck(h)
		case msgAbort:
			d.handleAbort(h)
			return nil // device is tearing down; the conn is closing
		case msgRevoke:
			d.handleRevoke(h)
		case msgBye:
			// Graceful departure: the peer finished cleanly. Requests
			// pinned on it fail the same way as on a crash (it can no
			// longer complete anything), but this is not a failure —
			// no PeersLost accounting.
			d.markPeerGone(int(src), fmt.Errorf("niodev: peer %d finished", src), true)
			return nil
		default:
			// Protocol error: drop the connection.
			return fmt.Errorf("niodev: unknown message type %d from slot %d", h.typ, src)
		}
	}
}

// noteCorrupt records a frame rejected by the integrity check.
func (d *Device) noteCorrupt(src uint32, err error) {
	d.core.Counters.FramesCorrupt.Add(1)
	if d.rec.Enabled() {
		d.rec.Event(mpe.FrameCorrupt, int32(src), -1, -1, 0)
	}
	_ = err
}

// checkPayload verifies a streamed payload's CRC after the read.
func checkPayload(crc bool, sum uint32, h header) error {
	if !crc || sum == h.payCRC {
		return nil
	}
	return fmt.Errorf("niodev: payload checksum mismatch (got %#x want %#x): %w",
		sum, h.payCRC, xdev.ErrCorruptFrame)
}

func (d *Device) handleEager(conn io.Reader, h header, crc bool) error {
	env := match.Concrete{Ctx: h.ctx, Tag: h.tag, Src: uint64(h.src)}
	st := xdev.Status{Source: d.pids[h.src], Tag: int(h.tag), Bytes: int(h.wireLen)}

	if req, ok := d.core.MatchPosted(env, h.seq); ok {
		// Matched: receive directly into the user buffer (Fig. 5). The
		// crcReader checksums the stream on the way through so even the
		// zero-copy path is integrity checked.
		cr := &crcReader{r: conn}
		err := req.Buf.LoadWireFrom(cr, int(h.wireLen))
		if err == nil {
			err = checkPayload(crc, cr.sum, h)
			if err != nil {
				d.noteCorrupt(h.src, err)
			}
		}
		if err != nil {
			// Torn or corrupt frame: the peer is about to be declared
			// dead (the read loop exits on the returned error), so this
			// receive fails in the same peer-lost shape.
			err = d.peerLost(int(h.src), err)
		} else if h.typ == msgEagerSync {
			// The matched-sync ACK is piggybacked: in engine mode it joins
			// the next coalesced batch to h.src instead of paying its own
			// write (satellite: no standalone ACK frames).
			if ackErr := d.send(int(h.src), header{typ: msgAck, src: uint32(d.cfg.Rank), seq: h.seq}, nil, nil, xdev.Status{}, false); ackErr != nil {
				err = ackErr
			}
		}
		req.Complete(st, err)
		if err != nil {
			return err
		}
		return nil
	}
	// Unmatched: receive into a pooled device input buffer (the eager
	// protocol's unlimited-device-memory assumption). The core lock is
	// not held across the network read — other connections' matching
	// must proceed while this payload drains — so MatchOrPark retries
	// the match afterwards in case a receive was posted meanwhile.
	data := devcore.GetSlice(int(h.wireLen))
	if _, err := io.ReadFull(conn, data); err != nil {
		devcore.PutSlice(data)
		return err
	}
	if err := checkPayload(crc, crc32.Checksum(data, castagnoli), h); err != nil {
		devcore.PutSlice(data)
		d.noteCorrupt(h.src, err)
		return err
	}
	arr := &devcore.Arrival{
		Src: uint64(h.src), Tag: h.tag, Ctx: h.ctx, Seq: h.seq,
		WireLen: int(h.wireLen), Sync: h.typ == msgEagerSync, Data: data,
	}
	req, matched, err := d.core.MatchOrPark(env, arr)
	if err != nil {
		// Device closing: drop the message; the sender learns of our
		// departure through its own failure detection.
		devcore.PutSlice(data)
		return nil
	}
	if matched {
		loadErr := req.Buf.LoadWire(data)
		devcore.PutSlice(data)
		if h.typ == msgEagerSync {
			ackErr := d.send(int(h.src), header{typ: msgAck, src: uint32(d.cfg.Rank), seq: h.seq}, nil, nil, xdev.Status{}, false)
			if loadErr == nil {
				loadErr = ackErr
			}
		}
		req.Complete(st, loadErr)
	}
	return nil
}

func (d *Device) handleRTS(h header) {
	env := match.Concrete{Ctx: h.ctx, Tag: h.tag, Src: uint64(h.src)}
	arr := &devcore.Arrival{
		Src: uint64(h.src), Tag: h.tag, Ctx: h.ctx, Seq: h.seq,
		WireLen: int(h.wireLen), Rndv: true,
	}
	req, matched, err := d.core.MatchOrPark(env, arr)
	if err != nil {
		return // closing; the announcing sender fails via peer death
	}
	if !matched {
		return // parked; a future receive answers the RTS
	}
	// Matched: the input handler answers READY_TO_RECV (Fig. 8).
	k := devcore.PendingKey{Peer: uint64(h.src), Seq: h.seq}
	if err := d.rndvIncoming.Add(k, req); err != nil {
		req.Complete(xdev.Status{}, err)
		return
	}
	if err := d.send(int(h.src), header{typ: msgRTR, src: uint32(d.cfg.Rank), seq: h.seq}, nil, nil, xdev.Status{}, false); err != nil {
		if _, mine := d.rndvIncoming.Take(k); mine {
			req.Complete(xdev.Status{}, err)
		}
		return
	}
	if d.rec.Enabled() {
		d.rec.EventSeq(mpe.RendezvousRTR, int32(h.src), h.tag, h.ctx, int64(h.wireLen), h.seq)
	}
}

func (d *Device) handleRTR(h header) {
	req, ok := d.pendingRndv.Take(devcore.PendingKey{Peer: uint64(h.src), Seq: h.seq})
	if !ok {
		return // duplicate, or drained by peer death / shutdown
	}
	// Fork a rendezvous writer so the input handler never blocks on a
	// bulk write or a full send queue — otherwise two processes
	// simultaneously sending large messages to each other could
	// deadlock (paper §IV-A.2).
	dst := int(h.src)
	d.handlerWG.Add(1)
	go func() {
		defer d.handlerWG.Done()
		wireLen := req.Buf.WireLen()
		dh := header{
			typ: msgRndvData, src: uint32(d.cfg.Rank),
			tag: req.SendTag, ctx: req.SendCtx,
			seq: h.seq, wireLen: uint64(wireLen),
		}
		// The frame carries the request: the drainer (or direct write)
		// completes it once the payload is on the wire.
		st := xdev.Status{Source: d.self, Bytes: wireLen}
		if err := d.send(dst, dh, req.Buf.Segments(), req, st, true); err != nil {
			req.Complete(xdev.Status{}, err)
			return
		}
		if d.rec.Enabled() {
			d.rec.EventSeq(mpe.RendezvousData, int32(dst), req.SendTag, req.SendCtx, int64(wireLen), h.seq)
		}
	}()
}

func (d *Device) handleRndvData(conn io.Reader, h header, crc bool) error {
	req, ok := d.rndvIncoming.Take(devcore.PendingKey{Peer: uint64(h.src), Seq: h.seq})
	if !ok {
		// Protocol violation: data for an unknown rendezvous.
		return fmt.Errorf("niodev: rendezvous data for unknown seq %d from slot %d", h.seq, h.src)
	}
	cr := &crcReader{r: conn}
	err := req.Buf.LoadWireFrom(cr, int(h.wireLen))
	if err == nil {
		err = checkPayload(crc, cr.sum, h)
		if err != nil {
			d.noteCorrupt(h.src, err)
		}
	}
	if err != nil {
		// The rendezvous data stream died or failed its checksum: the
		// read loop exits on the returned error and declares the peer
		// dead, so the waiting receive fails in the same shape.
		err = d.peerLost(int(h.src), err)
	}
	req.Complete(xdev.Status{Source: d.pids[h.src], Tag: int(h.tag), Bytes: int(h.wireLen)}, err)
	return err
}

func (d *Device) handleAck(h header) {
	req, ok := d.pendingSync.Take(devcore.PendingKey{Peer: uint64(h.src), Seq: h.seq})
	if !ok {
		return
	}
	req.Complete(xdev.Status{Source: d.self, Bytes: req.Buf.WireLen()}, nil)
}
