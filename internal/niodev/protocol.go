package niodev

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"mpj/internal/match"
	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/xdev"
)

// Wire message types.
const (
	msgEager     = 1 // standard-mode eager data
	msgEagerSync = 2 // synchronous-mode eager data; receiver ACKs on match
	msgRTS       = 3 // rendezvous READY_TO_SEND
	msgRTR       = 4 // rendezvous READY_TO_RECV
	msgRndvData  = 5 // rendezvous payload
	msgAck       = 6 // eager-sync matched acknowledgement
)

// headerLen is the fixed wire header:
// type(1) pad(3) src(4) tag(4) ctx(4) seq(8) wireLen(8).
const headerLen = 32

const helloMagic = 0x4d504a45 // "MPJE"

type header struct {
	typ     uint8
	src     uint32
	tag     int32
	ctx     int32
	seq     uint64
	wireLen uint64
}

func (h header) encode(dst []byte) {
	dst[0] = h.typ
	dst[1], dst[2], dst[3] = 0, 0, 0
	binary.BigEndian.PutUint32(dst[4:8], h.src)
	binary.BigEndian.PutUint32(dst[8:12], uint32(h.tag))
	binary.BigEndian.PutUint32(dst[12:16], uint32(h.ctx))
	binary.BigEndian.PutUint64(dst[16:24], h.seq)
	binary.BigEndian.PutUint64(dst[24:32], h.wireLen)
}

func decodeHeader(src []byte) header {
	return header{
		typ:     src[0],
		src:     binary.BigEndian.Uint32(src[4:8]),
		tag:     int32(binary.BigEndian.Uint32(src[8:12])),
		ctx:     int32(binary.BigEndian.Uint32(src[12:16])),
		seq:     binary.BigEndian.Uint64(src[16:24]),
		wireLen: binary.BigEndian.Uint64(src[24:32]),
	}
}

func writeHello(c net.Conn, slot uint32) error {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:4], helloMagic)
	binary.BigEndian.PutUint32(b[4:8], slot)
	_, err := c.Write(b[:])
	return err
}

func readHello(c net.Conn) (uint32, error) {
	var b [8]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return 0, err
	}
	if binary.BigEndian.Uint32(b[0:4]) != helloMagic {
		return 0, fmt.Errorf("niodev: bad hello magic")
	}
	return binary.BigEndian.Uint32(b[4:8]), nil
}

// arrival is an unexpected (not-yet-matched) message recorded in the
// arrived set: either a fully buffered eager payload or a rendezvous
// READY_TO_SEND envelope.
type arrival struct {
	src     uint32
	tag     int32
	ctx     int32
	seq     uint64
	wireLen int
	sync    bool
	rndv    bool     // true: RTS envelope, data not here yet
	data    []byte   // eager payload (wire form)
	syncReq *request // self-delivery synchronous sender awaiting match
}

// writeMsg writes a header and optional payload segments to dst's write
// channel under the per-destination lock (the paper's "lock dest
// channel / send / unlock").
func (d *Device) writeMsg(slot int, h header, segments [][]byte) error {
	bufs := make(net.Buffers, 0, 1+len(segments))
	hdr := make([]byte, headerLen)
	h.encode(hdr)
	bufs = append(bufs, hdr)
	bufs = append(bufs, segments...)

	d.wmu[slot].Lock()
	defer d.wmu[slot].Unlock()
	conn := d.wconn[slot]
	if conn == nil {
		return xdev.Errf(DeviceName, "write", "no channel to slot %d", slot)
	}
	_, err := bufs.WriteTo(conn)
	return err
}

// isend implements the four send modes. sync selects synchronous
// completion semantics (Ssend/ISsend).
func (d *Device) isend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int, sync bool) (*request, error) {
	if d.closed.Load() {
		return nil, xdev.Errf(DeviceName, "isend", "device closed")
	}
	slot, err := d.slotOf(dst)
	if err != nil {
		return nil, err
	}
	req := d.newRequest(sendReq, buf)
	wireLen := buf.WireLen()
	if d.rec.Enabled() {
		req.trace(int32(slot), int32(tag), int32(context))
		d.rec.Event(mpe.SendBegin, int32(slot), int32(tag), int32(context), int64(wireLen))
	}

	if slot == d.cfg.Rank {
		d.deliverSelf(buf, tag, context, sync, req)
		return req, nil
	}

	if wireLen <= d.eagerLimit {
		// Eager protocol (paper Fig. 3): write the data immediately and
		// return a non-pending request — unless synchronous, in which
		// case completion waits for the receiver's match ACK.
		typ := uint8(msgEager)
		var seq uint64
		if sync {
			typ = msgEagerSync
			seq = d.seq.Add(1)
			d.smu.Lock()
			d.pendingSync[seq] = req
			d.smu.Unlock()
		}
		d.stats.EagerSent.Add(1)
		d.stats.BytesSent.Add(uint64(wireLen))
		h := header{typ: typ, src: uint32(d.cfg.Rank), tag: int32(tag), ctx: int32(context), seq: seq, wireLen: uint64(wireLen)}
		if err := d.writeMsg(slot, h, buf.Segments()); err != nil {
			if sync {
				d.smu.Lock()
				delete(d.pendingSync, seq)
				d.smu.Unlock()
			}
			return nil, &xdev.Error{Dev: DeviceName, Op: "eager send", Err: err}
		}
		if d.rec.Enabled() {
			d.rec.Event(mpe.EagerOut, int32(slot), int32(tag), int32(context), int64(wireLen))
		}
		if !sync {
			req.complete(xdev.Status{Source: d.self, Tag: tag, Bytes: wireLen}, nil)
		}
		return req, nil
	}

	// Rendezvous protocol (paper Fig. 6): register the pending send,
	// then announce with READY_TO_SEND. The send-communication-sets
	// lock and the destination channel lock are taken one after the
	// other, never nested, so sends to other destinations don't block.
	d.stats.RndvSent.Add(1)
	d.stats.BytesSent.Add(uint64(wireLen))
	seq := d.seq.Add(1)
	req.sendTag, req.sendCtx = int32(tag), int32(context)
	d.smu.Lock()
	d.pendingRndv[seq] = req
	d.smu.Unlock()
	h := header{typ: msgRTS, src: uint32(d.cfg.Rank), tag: int32(tag), ctx: int32(context), seq: seq, wireLen: uint64(wireLen)}
	if err := d.writeMsg(slot, h, nil); err != nil {
		d.smu.Lock()
		delete(d.pendingRndv, seq)
		d.smu.Unlock()
		return nil, &xdev.Error{Dev: DeviceName, Op: "rendezvous RTS", Err: err}
	}
	if d.rec.Enabled() {
		d.rec.Event(mpe.RendezvousRTS, int32(slot), int32(tag), int32(context), int64(wireLen))
	}
	return req, nil
}

// ISend starts a standard-mode non-blocking send.
func (d *Device) ISend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	return d.isend(buf, dst, tag, context, false)
}

// Send is the blocking standard-mode send.
func (d *Device) Send(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	r, err := d.isend(buf, dst, tag, context, false)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

// ISsend starts a synchronous-mode non-blocking send.
func (d *Device) ISsend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	return d.isend(buf, dst, tag, context, true)
}

// Ssend is the blocking synchronous-mode send.
func (d *Device) Ssend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	r, err := d.isend(buf, dst, tag, context, true)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

// deliverSelf routes a send whose destination is this process through
// the matching engine without touching the network.
func (d *Device) deliverSelf(buf *mpjbuf.Buffer, tag, context int, sync bool, sreq *request) {
	env := match.Concrete{Ctx: int32(context), Tag: int32(tag), Src: uint64(d.cfg.Rank)}
	st := xdev.Status{Source: d.self, Tag: tag, Bytes: buf.WireLen()}
	d.stats.EagerSent.Add(1)
	d.stats.BytesSent.Add(uint64(buf.WireLen()))

	d.rmu.Lock()
	if rreq, ok := d.posted.Match(env); ok {
		d.rmu.Unlock()
		d.stats.Matched.Add(1)
		err := rreq.buf.LoadWire(buf.Wire())
		rreq.complete(st, err)
		sreq.complete(st, nil)
		return
	}
	d.stats.Unexpected.Add(1)
	if d.rec.Enabled() {
		d.rec.Event(mpe.RecvUnexpected, int32(d.cfg.Rank), int32(tag), int32(context), int64(buf.WireLen()))
	}
	arr := &arrival{
		src: uint32(d.cfg.Rank), tag: int32(tag), ctx: int32(context),
		wireLen: buf.WireLen(), data: buf.Wire(),
	}
	if sync {
		arr.syncReq = sreq
	}
	d.arrived.Add(env, arr)
	d.rcond.Broadcast()
	d.rmu.Unlock()
	if !sync {
		sreq.complete(st, nil)
	}
}

func (d *Device) pattern(src xdev.ProcessID, tag, context int) (match.Pattern, error) {
	p := match.Pattern{Ctx: int32(context)}
	if tag == xdev.AnyTag {
		p.Tag = match.AnyTag
	} else {
		p.Tag = int32(tag)
	}
	if src.IsAnySource() {
		p.Src = match.AnySource
	} else {
		slot, err := d.slotOf(src)
		if err != nil {
			return p, err
		}
		p.Src = uint64(slot)
	}
	return p, nil
}

// IRecv posts a non-blocking receive (paper Figs. 4 and 7). If an
// unexpected message already matches, it is consumed immediately;
// otherwise the request joins the pending-recv-request-set.
func (d *Device) IRecv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Request, error) {
	if d.closed.Load() {
		return nil, xdev.Errf(DeviceName, "irecv", "device closed")
	}
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return nil, err
	}
	req := d.newRequest(recvReq, buf)
	if d.rec.Enabled() {
		peer := int32(-1)
		if !src.IsAnySource() {
			peer = int32(p.Src)
		}
		req.trace(peer, int32(tag), int32(context))
		d.rec.Event(mpe.RecvPosted, peer, int32(tag), int32(context), 0)
	}

	d.rmu.Lock()
	arr, ok := d.arrived.Match(p)
	if !ok {
		d.posted.Add(p, req)
		d.rmu.Unlock()
		return req, nil
	}
	if arr.rndv {
		// Rendezvous announced but unmatched until now: the user thread
		// (not the input handler) sends READY_TO_RECV, per Fig. 7.
		d.rndvIncoming[rndvKey{arr.src, arr.seq}] = req
		d.rmu.Unlock()
		h := header{typ: msgRTR, src: uint32(d.cfg.Rank), seq: arr.seq}
		if err := d.writeMsg(int(arr.src), h, nil); err != nil {
			d.rmu.Lock()
			delete(d.rndvIncoming, rndvKey{arr.src, arr.seq})
			d.rmu.Unlock()
			return nil, &xdev.Error{Dev: DeviceName, Op: "rendezvous RTR", Err: err}
		}
		if d.rec.Enabled() {
			d.rec.Event(mpe.RendezvousRTR, int32(arr.src), arr.tag, arr.ctx, int64(arr.wireLen))
		}
		return req, nil
	}
	d.rmu.Unlock()

	// Buffered eager message: copy from the device-level input buffer
	// into the user buffer (Fig. 4).
	st := xdev.Status{Source: d.pids[arr.src], Tag: int(arr.tag), Bytes: arr.wireLen}
	loadErr := buf.LoadWire(arr.data)
	switch {
	case arr.syncReq != nil:
		arr.syncReq.complete(st, nil) // self synchronous sender
	case arr.sync:
		h := header{typ: msgAck, src: uint32(d.cfg.Rank), seq: arr.seq}
		if err := d.writeMsg(int(arr.src), h, nil); err != nil {
			req.complete(st, err)
			return req, nil
		}
	}
	req.complete(st, loadErr)
	return req, nil
}

// Recv blocks until a matching message has been received.
func (d *Device) Recv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	r, err := d.IRecv(buf, src, tag, context)
	if err != nil {
		return xdev.Status{}, err
	}
	return r.Wait()
}

// IProbe checks for a matching available message without receiving it.
func (d *Device) IProbe(src xdev.ProcessID, tag, context int) (xdev.Status, bool, error) {
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return xdev.Status{}, false, err
	}
	d.rmu.Lock()
	defer d.rmu.Unlock()
	arr, ok := d.arrived.Peek(p)
	if !ok {
		return xdev.Status{}, false, nil
	}
	return xdev.Status{Source: d.pids[arr.src], Tag: int(arr.tag), Bytes: arr.wireLen}, true, nil
}

// Probe blocks until a matching message is available.
func (d *Device) Probe(src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return xdev.Status{}, err
	}
	d.rmu.Lock()
	defer d.rmu.Unlock()
	for {
		if arr, ok := d.arrived.Peek(p); ok {
			return xdev.Status{Source: d.pids[arr.src], Tag: int(arr.tag), Bytes: arr.wireLen}, nil
		}
		if d.closed.Load() {
			return xdev.Status{}, xdev.Errf(DeviceName, "probe", "device closed")
		}
		d.rcond.Wait()
	}
}

// inputHandler is the progress engine for one inbound connection (read
// channel) from peer slot src. It mirrors the paper's input-handler
// pseudocode (Figs. 5 and 8): it must never block on anything except
// reading its own channel, so rendezvous data sends are forked onto
// their own goroutines.
func (d *Device) inputHandler(conn net.Conn, src uint32) {
	defer conn.Close()
	hdr := make([]byte, headerLen)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return // connection closed (Finish or peer exit)
		}
		h := decodeHeader(hdr)
		switch h.typ {
		case msgEager, msgEagerSync:
			if err := d.handleEager(conn, h); err != nil {
				return
			}
		case msgRTS:
			d.handleRTS(h)
		case msgRTR:
			d.handleRTR(h)
		case msgRndvData:
			if err := d.handleRndvData(conn, h); err != nil {
				return
			}
		case msgAck:
			d.handleAck(h)
		default:
			return // protocol error: drop the connection
		}
	}
}

func (d *Device) handleEager(conn net.Conn, h header) error {
	env := match.Concrete{Ctx: h.ctx, Tag: h.tag, Src: uint64(h.src)}
	st := xdev.Status{Source: d.pids[h.src], Tag: int(h.tag), Bytes: int(h.wireLen)}

	d.rmu.Lock()
	req, ok := d.posted.Match(env)
	if ok {
		d.rmu.Unlock()
		d.stats.Matched.Add(1)
		// Matched: receive directly into the user buffer (Fig. 5).
		err := req.buf.LoadWireFrom(conn, int(h.wireLen))
		if h.typ == msgEagerSync {
			ackErr := d.writeMsg(int(h.src), header{typ: msgAck, src: uint32(d.cfg.Rank), seq: h.seq}, nil)
			if err == nil {
				err = ackErr
			}
		}
		req.complete(st, err)
		if err != nil {
			return err
		}
		return nil
	}
	// Unmatched: receive into a device input buffer (the eager
	// protocol's unlimited-device-memory assumption). The lock is not
	// held across the network read — other connections' matching must
	// proceed while this payload drains — so the match is retried
	// afterwards in case a receive was posted meanwhile.
	d.rmu.Unlock()
	data := make([]byte, h.wireLen)
	if _, err := io.ReadFull(conn, data); err != nil {
		return err
	}
	d.rmu.Lock()
	if req, ok := d.posted.Match(env); ok {
		d.rmu.Unlock()
		d.stats.Matched.Add(1)
		err := req.buf.LoadWire(data)
		if h.typ == msgEagerSync {
			ackErr := d.writeMsg(int(h.src), header{typ: msgAck, src: uint32(d.cfg.Rank), seq: h.seq}, nil)
			if err == nil {
				err = ackErr
			}
		}
		req.complete(st, err)
		return nil
	}
	d.stats.Unexpected.Add(1)
	if d.rec.Enabled() {
		d.rec.Event(mpe.RecvUnexpected, int32(h.src), h.tag, h.ctx, int64(h.wireLen))
	}
	d.arrived.Add(env, &arrival{
		src: h.src, tag: h.tag, ctx: h.ctx, seq: h.seq,
		wireLen: int(h.wireLen), sync: h.typ == msgEagerSync, data: data,
	})
	d.rcond.Broadcast()
	d.rmu.Unlock()
	return nil
}

func (d *Device) handleRTS(h header) {
	env := match.Concrete{Ctx: h.ctx, Tag: h.tag, Src: uint64(h.src)}
	d.rmu.Lock()
	req, ok := d.posted.Match(env)
	if ok {
		d.stats.Matched.Add(1)
		d.rndvIncoming[rndvKey{h.src, h.seq}] = req
		d.rmu.Unlock()
		// Matched: the input handler answers READY_TO_RECV (Fig. 8).
		if err := d.writeMsg(int(h.src), header{typ: msgRTR, src: uint32(d.cfg.Rank), seq: h.seq}, nil); err != nil {
			d.rmu.Lock()
			delete(d.rndvIncoming, rndvKey{h.src, h.seq})
			d.rmu.Unlock()
			req.complete(xdev.Status{}, err)
			return
		}
		if d.rec.Enabled() {
			d.rec.Event(mpe.RendezvousRTR, int32(h.src), h.tag, h.ctx, int64(h.wireLen))
		}
		return
	}
	d.stats.Unexpected.Add(1)
	if d.rec.Enabled() {
		d.rec.Event(mpe.RecvUnexpected, int32(h.src), h.tag, h.ctx, int64(h.wireLen))
	}
	d.arrived.Add(env, &arrival{
		src: h.src, tag: h.tag, ctx: h.ctx, seq: h.seq,
		wireLen: int(h.wireLen), rndv: true,
	})
	d.rcond.Broadcast()
	d.rmu.Unlock()
}

func (d *Device) handleRTR(h header) {
	d.smu.Lock()
	req := d.pendingRndv[h.seq]
	delete(d.pendingRndv, h.seq)
	d.smu.Unlock()
	if req == nil {
		return // duplicate or raced with Finish
	}
	// Fork a rendezvous writer so the input handler never blocks on a
	// bulk write — otherwise two processes simultaneously sending large
	// messages to each other could deadlock (paper §IV-A.2).
	dst := int(h.src)
	d.handlerWG.Add(1)
	go func() {
		defer d.handlerWG.Done()
		wireLen := req.buf.WireLen()
		dh := header{
			typ: msgRndvData, src: uint32(d.cfg.Rank),
			tag: req.sendTag, ctx: req.sendCtx,
			seq: h.seq, wireLen: uint64(wireLen),
		}
		err := d.writeMsg(dst, dh, req.buf.Segments())
		if err == nil && d.rec.Enabled() {
			d.rec.Event(mpe.RendezvousData, int32(dst), req.sendTag, req.sendCtx, int64(wireLen))
		}
		req.complete(xdev.Status{Source: d.self, Bytes: wireLen}, err)
	}()
}

func (d *Device) handleRndvData(conn net.Conn, h header) error {
	d.rmu.Lock()
	req := d.rndvIncoming[rndvKey{h.src, h.seq}]
	delete(d.rndvIncoming, rndvKey{h.src, h.seq})
	d.rmu.Unlock()
	if req == nil {
		// Protocol violation: data for an unknown rendezvous.
		return fmt.Errorf("niodev: rendezvous data for unknown seq %d from slot %d", h.seq, h.src)
	}
	err := req.buf.LoadWireFrom(conn, int(h.wireLen))
	req.complete(xdev.Status{Source: d.pids[h.src], Tag: int(h.tag), Bytes: int(h.wireLen)}, err)
	return err
}

func (d *Device) handleAck(h header) {
	d.smu.Lock()
	req := d.pendingSync[h.seq]
	delete(d.pendingSync, h.seq)
	d.smu.Unlock()
	if req == nil {
		return
	}
	req.complete(xdev.Status{Source: d.self, Bytes: req.buf.WireLen()}, nil)
}
