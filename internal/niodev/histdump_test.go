package niodev

import (
	"sync"
	"testing"

	"mpj/internal/xdev"
)

// TestDumpBatchHistogram is a data-collection harness, skipped unless
// -run explicitly selects it with -v: blasts 8 senders x 5000 msgs of
// 512B and logs the coalescing counters and frames-per-batch histogram.
func TestDumpBatchHistogram(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("data-collection harness; run with -v")
	}
	const senders, msgs = 8, 5000
	runJob(t, 2, xdev.Config{}, func(d *Device, rank int, pids []xdev.ProcessID) {
		payload := make([]int32, 128) // 512B
		if rank == 0 {
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < msgs; i++ {
						sendInts(t, d, pids[1], 100+s, payload)
					}
				}(s)
			}
			wg.Wait()
			st := d.Stats()
			intro := d.Introspect().(introspection)
			t.Logf("SendBatches=%d FramesCoalesced=%d SendBatchBytes=%d", st.SendBatches, st.FramesCoalesced, st.SendBatchBytes)
			if st.SendBatches > 0 {
				t.Logf("frames/batch=%.2f bytes/syscall=%.0f", float64(st.FramesCoalesced)/float64(st.SendBatches), float64(st.SendBatchBytes)/float64(st.SendBatches))
			}
			t.Logf("batchHist=%v", intro.SendEngine.BatchHist)
			return
		}
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					recvInts(t, d, pids[0], 100+s, len(payload))
				}
			}(s)
		}
		wg.Wait()
	})
}
