package niodev

import (
	"mpj/internal/devcore"
	"mpj/internal/mpe"
)

// Stats is a snapshot of the device's activity counters, usable for
// tuning and for verifying protocol selection (eager vs rendezvous) in
// tests and benchmarks. It is the shared mpe.CounterSnapshot type —
// every device in the repository reports the same shape.
type Stats = mpe.CounterSnapshot

// Stats returns a snapshot of the device's activity counters, which
// live in the shared progress core.
func (d *Device) Stats() Stats { return d.core.Counters.Snapshot() }

// CountersRef exposes the live counter block (mpe.CounterSource) so
// upper layers account into the same counters Stats reports.
func (d *Device) CountersRef() *mpe.Counters {
	if d.core == nil {
		return nil
	}
	return &d.core.Counters
}

// Recorder exposes the device's event recorder so upper layers
// (mpjdev, core) record into the same per-rank stream
// (mpe.Instrumented).
func (d *Device) Recorder() mpe.Recorder { return d.rec }

// peerState is one peer's wire + liveness view for Introspect.
type peerState struct {
	Slot      int    `json:"slot"`
	Connected bool   `json:"connected"`
	Err       string `json:"err,omitempty"`
}

// introspection is the live-state dump the telemetry endpoint serves:
// the progress core's queue depths plus this device's per-peer
// connection and failure state.
type introspection struct {
	Core  devcore.CoreState `json:"core"`
	Peers []peerState       `json:"peers,omitempty"`
}

// Introspect snapshots the device's live progress-engine and
// connection state for the telemetry /introspect endpoint.
func (d *Device) Introspect() any {
	out := introspection{Core: d.core.Introspect()}
	for slot := range d.pids {
		if slot == d.cfg.Rank {
			continue
		}
		ps := peerState{Slot: slot, Connected: d.writeConn(slot) != nil}
		if err := d.core.PeerErr(uint64(slot)); err != nil {
			ps.Err = err.Error()
		}
		out.Peers = append(out.Peers, ps)
	}
	return out
}
