package niodev

import (
	"mpj/internal/devcore"
	"mpj/internal/mpe"
)

// Stats is a snapshot of the device's activity counters, usable for
// tuning and for verifying protocol selection (eager vs rendezvous) in
// tests and benchmarks. It is the shared mpe.CounterSnapshot type —
// every device in the repository reports the same shape.
type Stats = mpe.CounterSnapshot

// Stats returns a snapshot of the device's activity counters, which
// live in the shared progress core.
func (d *Device) Stats() Stats { return d.core.Counters.Snapshot() }

// CountersRef exposes the live counter block (mpe.CounterSource) so
// upper layers account into the same counters Stats reports.
func (d *Device) CountersRef() *mpe.Counters {
	if d.core == nil {
		return nil
	}
	return &d.core.Counters
}

// Recorder exposes the device's event recorder so upper layers
// (mpjdev, core) record into the same per-rank stream
// (mpe.Instrumented).
func (d *Device) Recorder() mpe.Recorder { return d.rec }

// peerState is one peer's wire + liveness view for Introspect.
type peerState struct {
	Slot      int    `json:"slot"`
	Connected bool   `json:"connected"`
	Err       string `json:"err,omitempty"`
	// SendQueue is the number of frames currently queued for this peer
	// in the asynchronous send engine (always 0 in direct mode).
	SendQueue int `json:"sendQueue,omitempty"`
}

// sendEngineState is the engine's live view for Introspect: the
// configured tunables plus the frames-per-batch histogram (bucket i
// counts batches of 2^i..2^(i+1)-1 frames; the last is open-ended).
type sendEngineState struct {
	Mode       string   `json:"mode"`
	QueueLimit int      `json:"queueLimit,omitempty"`
	Spin       int      `json:"spin,omitempty"`
	Inline     bool     `json:"inline,omitempty"`
	BatchHist  []uint64 `json:"batchHist,omitempty"`
}

// introspection is the live-state dump the telemetry endpoint serves:
// the progress core's queue depths plus this device's per-peer
// connection and failure state.
type introspection struct {
	Core       devcore.CoreState `json:"core"`
	SendEngine sendEngineState   `json:"sendEngine"`
	Peers      []peerState       `json:"peers,omitempty"`
}

// Introspect snapshots the device's live progress-engine and
// connection state for the telemetry /introspect endpoint.
func (d *Device) Introspect() any {
	out := introspection{
		Core:       d.core.Introspect(),
		SendEngine: sendEngineState{Mode: "direct"},
	}
	if e := d.engine; e != nil {
		out.SendEngine = sendEngineState{
			Mode:       "engine",
			QueueLimit: d.sendQueue,
			Spin:       d.sendSpin,
			Inline:     e.inline,
			BatchHist:  e.histSnapshot(),
		}
	}
	for slot := range d.pids {
		if slot == d.cfg.Rank {
			continue
		}
		ps := peerState{Slot: slot, Connected: d.writeConn(slot) != nil}
		if err := d.core.PeerErr(uint64(slot)); err != nil {
			ps.Err = err.Error()
		}
		if e := d.engine; e != nil {
			ps.SendQueue = e.depthOf(slot)
		}
		out.Peers = append(out.Peers, ps)
	}
	return out
}
