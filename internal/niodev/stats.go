package niodev

import "mpj/internal/mpe"

// Stats is a snapshot of the device's activity counters, usable for
// tuning and for verifying protocol selection (eager vs rendezvous) in
// tests and benchmarks. It is the shared mpe.CounterSnapshot type —
// every device in the repository reports the same shape.
type Stats = mpe.CounterSnapshot

// Stats returns a snapshot of the device's activity counters, which
// live in the shared progress core.
func (d *Device) Stats() Stats { return d.core.Counters.Snapshot() }

// CountersRef exposes the live counter block (mpe.CounterSource) so
// upper layers account into the same counters Stats reports.
func (d *Device) CountersRef() *mpe.Counters {
	if d.core == nil {
		return nil
	}
	return &d.core.Counters
}

// Recorder exposes the device's event recorder so upper layers
// (mpjdev, core) record into the same per-rank stream
// (mpe.Instrumented).
func (d *Device) Recorder() mpe.Recorder { return d.rec }
