package niodev

import "sync/atomic"

// Stats counts device activity, usable for tuning and for verifying
// protocol selection (eager vs rendezvous) in tests and benchmarks.
type Stats struct {
	// EagerSent counts standard/synchronous sends that used the eager
	// protocol (including self-deliveries).
	EagerSent uint64
	// RndvSent counts sends that used the rendezvous protocol.
	RndvSent uint64
	// BytesSent is the total wire payload of initiated sends.
	BytesSent uint64
	// Unexpected counts messages (or RTS envelopes) that arrived
	// before a matching receive was posted.
	Unexpected uint64
	// Matched counts arrivals that found a posted receive immediately.
	Matched uint64
}

// statCounters is the device-internal atomic representation.
type statCounters struct {
	eagerSent  atomic.Uint64
	rndvSent   atomic.Uint64
	bytesSent  atomic.Uint64
	unexpected atomic.Uint64
	matched    atomic.Uint64
}

// Stats returns a snapshot of the device's activity counters.
func (d *Device) Stats() Stats {
	return Stats{
		EagerSent:  d.stats.eagerSent.Load(),
		RndvSent:   d.stats.rndvSent.Load(),
		BytesSent:  d.stats.bytesSent.Load(),
		Unexpected: d.stats.unexpected.Load(),
		Matched:    d.stats.matched.Load(),
	}
}
