//go:build !race

package niodev

const raceEnabled = false
