package niodev

import (
	"fmt"

	"mpj/internal/mpe"
	"mpj/internal/xdev"
)

// Context revocation (xdev.Revoker). A revocation is flooded: the
// initiating rank broadcasts a control frame to every reachable peer,
// and each rank re-broadcasts on its *first* receipt. The flood makes
// propagation survive the initiator dying mid-broadcast — the ULFM
// reliability property Revoke exists for — and terminates because
// devcore.RevokeContext is idempotent, so duplicates are absorbed
// without forwarding.

// revokedErr is the shape every operation on a revoked context fails
// with.
func (d *Device) revokedErr(ctx int32) error {
	return &xdev.Error{
		Dev: DeviceName,
		Op:  fmt.Sprintf("context %d", ctx),
		Err: xdev.ErrRevoked,
	}
}

// Revoke poisons the matching context job-wide: a revoke frame goes to
// every reachable peer, then the local core drains the context.
// Idempotent; implements xdev.Revoker.
func (d *Device) Revoke(context int) error {
	d.propagateRevoke(int32(context), -1)
	return nil
}

// handleRevoke reacts to a peer's revocation broadcast on an
// input-handler goroutine.
func (d *Device) handleRevoke(h header) {
	d.propagateRevoke(h.ctx, int(h.src))
}

// propagateRevoke applies the revocation locally and, when this was
// the first receipt, forwards it to every reachable peer except `from`
// (the rank it arrived from; -1 when initiated locally).
func (d *Device) propagateRevoke(ctx int32, from int) {
	if d.closed.Load() {
		return
	}
	if !d.core.RevokeContext(ctx, d.revokedErr(ctx)) {
		return // already revoked: the flood has been here
	}
	if d.rec.Enabled() {
		d.rec.Event(mpe.Revoked, int32(from), -1, ctx, 0)
	}
	h := header{typ: msgRevoke, src: uint32(d.cfg.Rank), ctx: ctx}
	for slot := range d.pids {
		if slot == d.cfg.Rank || slot == from || d.peerErr(slot) != nil {
			continue
		}
		// Best effort: a peer that is already gone cannot be told, and
		// everyone reachable re-floods on first receipt anyway.
		_ = d.writeMsg(slot, h, nil)
	}
}

var _ xdev.Revoker = (*Device)(nil)
