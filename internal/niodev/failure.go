package niodev

import (
	"errors"
	"fmt"
	"net"

	"mpj/internal/devcore"
	"mpj/internal/mpe"
	"mpj/internal/xdev"
)

// This file is the device's failure model: peer-death detection and
// propagation, job abort, and the shutdown path shared by Finish and
// Abort. The propagation itself — draining posted receives, pending
// protocol exchanges, and parked synchronous senders, and waking
// blocked waiters — lives in devcore; this file decides *when* a peer
// is gone and what error shape its loss carries, and tears down the
// transport (connections, listener) around the core's drain.

// writeConn returns the write channel to slot under the connection
// table lock. The table is mutated by Init (while input handlers may
// already be failing peers) and read by writeMsg and the teardown
// paths.
func (d *Device) writeConn(slot int) net.Conn {
	d.pmu.Lock()
	defer d.pmu.Unlock()
	return d.wconn[slot]
}

func (d *Device) setWriteConn(slot int, c net.Conn) {
	d.pmu.Lock()
	d.wconn[slot] = c
	d.pmu.Unlock()
}

// peerErr returns the death error of slot, or nil while it is alive.
func (d *Device) peerErr(slot int) error {
	if slot < 0 || slot >= len(d.pids) {
		return nil
	}
	return d.core.PeerErr(uint64(slot))
}

// PeerErr reports the recorded death error of peer p, or nil while the
// connection is believed healthy (xdev.PeerChecker). niodev's death
// records are sticky: once a connection-level failure or a bye frame
// declares a slot gone, it stays gone.
func (d *Device) PeerErr(p xdev.ProcessID) error {
	return d.peerErr(int(p.UUID))
}

// opErr gates new operations: it returns the job's abort error if the
// job aborted, a device-closed error if the device finished, and nil
// while the device is live.
func (d *Device) opErr(op string) error {
	return d.core.OpErr(op)
}

// peerLost wraps cause in the death-error shape markPeerDead records,
// satisfying errors.Is for both xdev.ErrPeerLost and the cause.
func (d *Device) peerLost(slot int, cause error) error {
	return &xdev.Error{
		Dev: DeviceName,
		Op:  fmt.Sprintf("peer %d", slot),
		Err: errors.Join(xdev.ErrPeerLost, cause),
	}
}

// markPeerDead declares slot dead with the given cause: every pending
// request addressed to or pinned on the peer fails with an error
// satisfying errors.Is(err, xdev.ErrPeerLost) (and the cause, e.g.
// xdev.ErrCorruptFrame), future operations naming the peer fail fast,
// and blocked Probe callers wake. Idempotent per slot; a no-op once
// the device is closing (Finish/Abort already fail everything).
func (d *Device) markPeerDead(slot int, cause error) {
	d.markPeerGone(slot, cause, false)
}

// markPeerGone is markPeerDead plus the graceful case: a peer that
// announced a clean departure (bye frame) propagates identically —
// nothing pinned on it can complete — but is not counted or traced as
// a failure.
func (d *Device) markPeerGone(slot int, cause error, graceful bool) {
	if slot < 0 || slot >= len(d.pids) || slot == d.cfg.Rank {
		return
	}
	err := d.peerLost(slot, cause)
	first := d.core.FailPeer(uint64(slot), devcore.PeerFail{Err: err, Graceful: graceful, Sticky: true})
	if first && d.engine != nil {
		// Poison the peer's send queue: enqueuers blocked on a full
		// queue wake with the death error, queued frames fail their
		// requests (nothing is silently dropped), and the drainer
		// exits. A gracefully departed peer can no more receive queued
		// frames than a crashed one, so both cases drain.
		d.engine.failQueued(slot, err)
	}
	if first && !graceful {
		// Close the write channel so writers blocked mid-frame and
		// future writeMsg calls fail instead of wedging. Close is safe
		// against a concurrent Write; taking wmu here could deadlock
		// behind one. Not done for a graceful departure: the peer is
		// still draining byes in its shutdown window, and closing our
		// half would feed it an EOF it miscounts as our death — its own
		// shutdown closes both ends moments later anyway.
		if wc := d.writeConn(slot); wc != nil {
			wc.Close()
		}
	}
}

// Abort tears the whole job down with the given code: a control frame
// is broadcast so remote ranks abort promptly, then the local device
// fails everything and closes. Implements xdev.Aborter.
func (d *Device) Abort(code int) error {
	ab := &xdev.AbortError{Code: code, From: d.cfg.Rank}
	if d.closed.Load() {
		return nil
	}
	h := header{typ: msgAbort, src: uint32(d.cfg.Rank), tag: int32(code)}
	for slot := range d.pids {
		if slot == d.cfg.Rank || d.peerErr(slot) != nil {
			continue
		}
		// Best effort: a peer that is already gone cannot be told.
		_ = d.writeMsg(slot, h, nil)
	}
	d.abortLocal(ab, true)
	return nil
}

// handleAbort reacts to a remote rank's abort broadcast. It runs on an
// input-handler goroutine, so the shutdown must not wait for the
// handlers themselves.
func (d *Device) handleAbort(h header) {
	d.abortLocal(&xdev.AbortError{Code: int(h.tag), From: int(h.src)}, false)
}

func (d *Device) abortLocal(ab *xdev.AbortError, wait bool) {
	d.core.SetAborted(ab)
	if d.rec.Enabled() {
		d.rec.Event(mpe.Aborted, int32(ab.From), int32(ab.Code), -1, 0)
	}
	d.shutdown(ab, wait)
}

// shutdown closes the device: the core fails every pending request
// with failErr (before the completion queue closes, so Peek/Waitany
// drain them as errored completions rather than losing them), then the
// transport is torn down — listener, write channels, read channels.
func (d *Device) shutdown(failErr error, wait bool) {
	if d.closed.Swap(true) {
		return
	}
	d.core.Shutdown(failErr, failErr)
	if d.engine != nil {
		// Poison every send queue before the connections close: blocked
		// enqueuers wake with failErr, queued frames fail their
		// requests, and the drainers exit (they are joined by the
		// handlerWG wait below).
		d.engine.stop(failErr)
	}

	if d.listener != nil {
		d.listener.Close()
	}
	d.pmu.Lock()
	wconns := append([]net.Conn(nil), d.wconn...)
	d.pmu.Unlock()
	for _, c := range wconns {
		if c != nil {
			c.Close()
		}
	}
	d.rcmu.Lock()
	for _, c := range d.rconns {
		c.Close()
	}
	d.rcmu.Unlock()
	if wait {
		d.handlerWG.Wait()
	}
}
