package niodev

import (
	"errors"
	"fmt"
	"net"

	"mpj/internal/match"
	"mpj/internal/mpe"
	"mpj/internal/xdev"
)

// This file is the device's failure model: peer-death detection and
// propagation, job abort, and the shutdown path shared by Finish and
// Abort.
//
// The ownership-transfer discipline that keeps requests completed
// exactly once: a request parked in a shared set (posted receives,
// rndvIncoming, pendingRndv, pendingSync) is completed by whoever
// removes it from that set under the set's lock. The drains below
// remove-then-complete; the protocol error paths re-check presence
// ("mine") before completing, and treat absence as "someone else
// already finished this request".

// writeConn returns the write channel to slot under the connection
// table lock. The table is mutated by Init (while input handlers may
// already be failing peers) and read by writeMsg and the teardown
// paths.
func (d *Device) writeConn(slot int) net.Conn {
	d.pmu.Lock()
	defer d.pmu.Unlock()
	return d.wconn[slot]
}

func (d *Device) setWriteConn(slot int, c net.Conn) {
	d.pmu.Lock()
	d.wconn[slot] = c
	d.pmu.Unlock()
}

// peerErr returns the death error of slot, or nil while it is alive.
func (d *Device) peerErr(slot int) error {
	d.pmu.Lock()
	defer d.pmu.Unlock()
	if slot >= 0 && slot < len(d.peerDead) {
		return d.peerDead[slot]
	}
	return nil
}

// opErr gates new operations: it returns the job's abort error if the
// job aborted, a device-closed error if the device finished, and nil
// while the device is live.
func (d *Device) opErr(op string) error {
	d.pmu.Lock()
	aborted := d.aborted
	d.pmu.Unlock()
	if aborted != nil {
		return aborted
	}
	if d.closed.Load() {
		return &xdev.Error{Dev: DeviceName, Op: op, Err: xdev.ErrDeviceClosed}
	}
	return nil
}

// peerLost wraps cause in the death-error shape markPeerDead records,
// satisfying errors.Is for both xdev.ErrPeerLost and the cause.
func (d *Device) peerLost(slot int, cause error) error {
	return &xdev.Error{
		Dev: DeviceName,
		Op:  fmt.Sprintf("peer %d", slot),
		Err: errors.Join(xdev.ErrPeerLost, cause),
	}
}

// markPeerDead declares slot dead with the given cause: every pending
// request addressed to or pinned on the peer fails with an error
// satisfying errors.Is(err, xdev.ErrPeerLost) (and the cause, e.g.
// xdev.ErrCorruptFrame), future operations naming the peer fail fast,
// and blocked Probe callers wake. Idempotent per slot; a no-op once
// the device is closing (Finish/Abort already fail everything).
func (d *Device) markPeerDead(slot int, cause error) {
	d.markPeerGone(slot, cause, false)
}

// markPeerGone is markPeerDead plus the graceful case: a peer that
// announced a clean departure (bye frame) propagates identically —
// nothing pinned on it can complete — but is not counted or traced as
// a failure.
func (d *Device) markPeerGone(slot int, cause error, graceful bool) {
	if slot < 0 || slot >= len(d.pids) || slot == d.cfg.Rank {
		return
	}
	err := d.peerLost(slot, cause)
	d.pmu.Lock()
	if d.peerDead[slot] != nil || d.closed.Load() {
		d.pmu.Unlock()
		return
	}
	d.peerDead[slot] = err
	wc := d.wconn[slot]
	d.pmu.Unlock()

	if !graceful {
		d.stats.PeersLost.Add(1)
		if d.rec.Enabled() {
			d.rec.Event(mpe.PeerLost, int32(slot), -1, -1, 0)
		}
		// Close the write channel so writers blocked mid-frame and
		// future writeMsg calls fail instead of wedging. Close is safe
		// against a concurrent Write; taking wmu here could deadlock
		// behind one. Not done for a graceful departure: the peer is
		// still draining byes in its shutdown window, and closing our
		// half would feed it an EOF it miscounts as our death — its own
		// shutdown closes both ends moments later anyway.
		if wc != nil {
			wc.Close()
		}
	}
	d.failPendingFor(slot, err)
}

// failPendingFor completes every pending request that can only be
// finished by the dead peer.
func (d *Device) failPendingFor(slot int, err error) {
	var victims []*request

	d.rmu.Lock()
	// Receives pinned on the dead source. ANY_SOURCE receives stay
	// posted: a live peer (or self) may still satisfy them.
	victims = append(victims, d.posted.TakeFunc(func(p match.Pattern, _ *request) bool {
		return p.Src == uint64(slot)
	})...)
	// Receives that answered the dead peer's RTS and are waiting for
	// rendezvous data that will never come.
	for k, r := range d.rndvIncoming {
		if k.src == uint32(slot) {
			delete(d.rndvIncoming, k)
			victims = append(victims, r)
		}
	}
	// Rendezvous announcements from the dead peer can never be
	// completed; drop them so they stop matching probes and receives.
	// Fully buffered eager payloads stay deliverable.
	d.arrived.TakeFunc(func(a *arrival) bool { return a.rndv && a.src == uint32(slot) })
	d.rcond.Broadcast()
	d.rmu.Unlock()

	d.smu.Lock()
	for seq, r := range d.pendingRndv {
		if r.dest == int32(slot) {
			delete(d.pendingRndv, seq)
			victims = append(victims, r)
		}
	}
	for seq, r := range d.pendingSync {
		if r.dest == int32(slot) {
			delete(d.pendingSync, seq)
			victims = append(victims, r)
		}
	}
	d.smu.Unlock()

	for _, r := range victims {
		r.complete(xdev.Status{}, err)
	}
}

// Abort tears the whole job down with the given code: a control frame
// is broadcast so remote ranks abort promptly, then the local device
// fails everything and closes. Implements xdev.Aborter.
func (d *Device) Abort(code int) error {
	ab := &xdev.AbortError{Code: code, From: d.cfg.Rank}
	if d.closed.Load() {
		return nil
	}
	h := header{typ: msgAbort, src: uint32(d.cfg.Rank), tag: int32(code)}
	for slot := range d.pids {
		if slot == d.cfg.Rank || d.peerErr(slot) != nil {
			continue
		}
		// Best effort: a peer that is already gone cannot be told.
		_ = d.writeMsg(slot, h, nil)
	}
	d.abortLocal(ab, true)
	return nil
}

// handleAbort reacts to a remote rank's abort broadcast. It runs on an
// input-handler goroutine, so the shutdown must not wait for the
// handlers themselves.
func (d *Device) handleAbort(h header) {
	d.abortLocal(&xdev.AbortError{Code: int(h.tag), From: int(h.src)}, false)
}

func (d *Device) abortLocal(ab *xdev.AbortError, wait bool) {
	d.pmu.Lock()
	if d.aborted == nil {
		d.aborted = ab
	}
	d.pmu.Unlock()
	if d.rec.Enabled() {
		d.rec.Event(mpe.Aborted, int32(ab.From), int32(ab.Code), -1, 0)
	}
	d.shutdown(ab, wait)
}

// shutdown closes the device, failing every pending request with
// failErr so no caller is left blocked. Pending requests are failed
// before the completion queue closes, so Peek/Waitany drain them as
// (errored) completions rather than losing them.
func (d *Device) shutdown(failErr error, wait bool) {
	if d.closed.Swap(true) {
		return
	}

	// Fail everything still parked in the communication sets.
	var victims []*request
	d.rmu.Lock()
	victims = append(victims, d.posted.TakeFunc(func(match.Pattern, *request) bool { return true })...)
	for k, r := range d.rndvIncoming {
		delete(d.rndvIncoming, k)
		victims = append(victims, r)
	}
	// Self-delivery synchronous senders parked in the arrived set are
	// still waiting for a matching receive that will never come.
	for _, a := range d.arrived.TakeFunc(func(a *arrival) bool { return a.syncReq != nil }) {
		victims = append(victims, a.syncReq)
	}
	d.rcond.Broadcast()
	d.rmu.Unlock()
	d.smu.Lock()
	for seq, r := range d.pendingRndv {
		delete(d.pendingRndv, seq)
		victims = append(victims, r)
	}
	for seq, r := range d.pendingSync {
		delete(d.pendingSync, seq)
		victims = append(victims, r)
	}
	d.smu.Unlock()
	for _, r := range victims {
		r.complete(xdev.Status{}, failErr)
	}

	d.completions.Close()
	if d.listener != nil {
		d.listener.Close()
	}
	d.pmu.Lock()
	wconns := append([]net.Conn(nil), d.wconn...)
	d.pmu.Unlock()
	for _, c := range wconns {
		if c != nil {
			c.Close()
		}
	}
	d.rcmu.Lock()
	for _, c := range d.rconns {
		c.Close()
	}
	d.rcmu.Unlock()
	d.rmu.Lock()
	d.rcond.Broadcast()
	d.rmu.Unlock()
	if wait {
		d.handlerWG.Wait()
	}
}
