// Package niodev is the pure-Go communication device of this MPJ
// Express reproduction, the counterpart of the paper's Java NIO device
// (§IV-A). It speaks two protocols over stream connections:
//
//   - an eager protocol for messages at or below the eager limit
//     (128 KiB by default, the paper's TCP switch point): data is
//     written immediately on the assumption that the receiver can
//     buffer it (Figs. 3–5);
//   - a rendezvous protocol for larger messages: a READY_TO_SEND
//     control message, matched at the receiver, answered by a
//     READY_TO_RECV, after which a forked writer goroutine transmits
//     the data — never the input handler, which must stay unblocked to
//     avoid the mutual-large-send deadlock the paper describes
//     (Figs. 6–8).
//
// Faithful structural choices:
//
//   - two connections per process pair, one used exclusively for
//     writing and one for reading, mirroring the paper's split between
//     blocking write channels and non-blocking read channels;
//   - a per-destination lock serializing writers to each write channel;
//   - a single receive-communication-sets lock guarding message
//     matching, with the paper's four-key matching scheme (§IV-E.2,
//     package match);
//   - one input-handler goroutine per inbound connection plays the role
//     of the select()-driven progress engine: Go's blocking reads on a
//     per-peer goroutine are the idiomatic equivalent of NIO channel
//     multiplexing.
//
// The device is thread safe at MPI_THREAD_MULTIPLE: any goroutine may
// call any operation concurrently.
package niodev

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpj/internal/devcore"
	"mpj/internal/mpe"
	"mpj/internal/transport"
	"mpj/internal/xdev"
)

// DeviceName is the registry name of this device.
const DeviceName = "niodev"

// DefaultEagerLimit is the eager→rendezvous protocol switch point in
// wire bytes (the paper reports 128 Kbytes for TCP).
const DefaultEagerLimit = 128 << 10

// connectTimeout bounds how long Init waits for peers to come up.
const connectTimeout = 30 * time.Second

func init() {
	xdev.Register(DeviceName, func() xdev.Device { return New() })
}

// Device implements xdev.Device over stream transports.
type Device struct {
	cfg        xdev.Config
	self       xdev.ProcessID
	pids       []xdev.ProcessID
	tr         xdev.Transport
	listener   net.Listener
	eagerLimit int

	// Write channels: one conn per destination slot, each with its own
	// lock (the paper's per-destination channel lock). In engine mode
	// the lock is the conn-ownership lock shared by the drainer's
	// batched writes and the few remaining direct writes (abort,
	// revoke), so frames from the two paths never interleave.
	wmu   []sync.Mutex
	wconn []net.Conn

	// engine is the asynchronous send path (sendengine.go): per-peer
	// frame queues drained by coalescing sender goroutines. Nil for
	// single-process jobs and under MPJ_SEND_ENGINE=direct, in which
	// case every frame goes through writeMsg synchronously.
	engine    *sendEngine
	sendQueue  int
	sendSpin   int
	sendInline bool

	// core is the shared progress engine: the receive-communication
	// sets (posted + arrived under the paper's single lock), the
	// completion queue, and peer-death/abort propagation all live
	// there. The device contributes only the TCP transport binding.
	core *devcore.Core

	// Protocol pending sets, registered with the core so its failure
	// drains cover them. Keys are (peer slot, protocol sequence).
	pendingRndv  *devcore.PendingSet // send awaiting READY_TO_RECV
	pendingSync  *devcore.PendingSet // eager-sync send awaiting ACK
	rndvIncoming *devcore.PendingSet // receive awaiting rendezvous data

	// Inbound (read) channels accepted from peers, closed by Finish so
	// input handlers terminate without waiting for the peer to exit.
	rcmu   sync.Mutex
	rconns []net.Conn

	inboundWG sync.WaitGroup // one count per expected inbound conn
	handlerWG sync.WaitGroup
	closed    atomic.Bool
	initDone  bool

	// pmu guards the write-connection table, mutated by Init while
	// input handlers may already be failing peers.
	pmu    sync.Mutex
	crcOut bool // compute frame checksums on outgoing frames

	rec mpe.Recorder
}

// New returns an uninitialized niodev device.
func New() *Device {
	d := &Device{
		core: devcore.New(DeviceName),
		rec:  mpe.Nop{},
	}
	d.pendingRndv = d.core.NewPendingSet("rndv-send")
	d.pendingSync = d.core.NewPendingSet("sync-send")
	d.rndvIncoming = d.core.NewPendingSet("rndv-recv")
	return d
}

// Init joins the job described by cfg: it listens on its own address,
// dials a dedicated write channel to every peer, and waits for every
// peer's write channel to arrive (the inbound read channels).
func (d *Device) Init(cfg xdev.Config) ([]xdev.ProcessID, error) {
	if d.initDone {
		return nil, xdev.Errf(DeviceName, "init", "device already initialized")
	}
	if cfg.Size < 1 {
		return nil, xdev.Errf(DeviceName, "init", "job size %d < 1", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, xdev.Errf(DeviceName, "init", "rank %d out of range [0,%d)", cfg.Rank, cfg.Size)
	}
	d.cfg = cfg
	if cfg.Recorder != nil {
		d.rec = cfg.Recorder
		d.core.SetRecorder(cfg.Recorder)
	}
	if cfg.Replay != nil {
		d.core.SetReplay(cfg.Replay)
	}
	d.eagerLimit = cfg.EagerLimit
	if d.eagerLimit <= 0 {
		d.eagerLimit = DefaultEagerLimit
	}
	d.tr = cfg.Dialer
	if d.tr == nil {
		d.tr = transport.TCP{}
	}
	d.pids = make([]xdev.ProcessID, cfg.Size)
	for i := range d.pids {
		d.pids[i] = xdev.ProcessID{UUID: uint64(i)}
	}
	d.self = d.pids[cfg.Rank]
	d.wmu = make([]sync.Mutex, cfg.Size)
	d.wconn = make([]net.Conn, cfg.Size)
	d.crcOut = !cfg.DisableChecksum
	engineMode, err := sendEngineEnabled(cfg.SendEngine)
	if err != nil {
		return nil, err
	}
	d.sendQueue = intSetting(cfg.SendQueue, "MPJ_SEND_QUEUE", DefaultSendQueue)
	if d.sendQueue < 1 {
		d.sendQueue = 1
	}
	d.sendSpin = intSetting(cfg.SendSpin, "MPJ_SEND_SPIN", DefaultSendSpin)
	if d.sendSpin < 0 {
		d.sendSpin = 0 // negative disables spinning: park immediately
	}
	d.sendInline = boolSetting("MPJ_SEND_INLINE", true)

	if cfg.Size > 1 {
		if len(cfg.Addrs) != cfg.Size {
			return nil, xdev.Errf(DeviceName, "init", "have %d addresses for %d processes", len(cfg.Addrs), cfg.Size)
		}
		l, err := d.tr.Listen(cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, &xdev.Error{Dev: DeviceName, Op: "listen", Err: err}
		}
		d.listener = l
		d.inboundWG.Add(cfg.Size - 1)
		d.handlerWG.Add(1)
		go d.acceptLoop()

		for slot := 0; slot < cfg.Size; slot++ {
			if slot == cfg.Rank {
				continue
			}
			conn, err := d.dialPeer(cfg.Addrs[slot], slot)
			if err != nil {
				d.Finish()
				return nil, &xdev.Error{Dev: DeviceName, Op: "connect to slot " + fmt.Sprint(slot), Err: err}
			}
			d.setWriteConn(slot, conn)
		}
		// Wait for every peer's write channel to reach us, so the job
		// is fully wired before Init returns anywhere.
		if err := waitTimeout(&d.inboundWG, connectTimeout); err != nil {
			d.Finish()
			return nil, &xdev.Error{Dev: DeviceName, Op: "await inbound connections", Err: err}
		}
		if engineMode {
			// Started only after the job is fully wired: no frame can be
			// enqueued before Init returns, and every write conn exists.
			d.engine = newSendEngine(d, d.sendQueue, d.sendSpin, d.sendInline)
			d.engine.start()
		}
	}
	d.initDone = true
	return append([]xdev.ProcessID(nil), d.pids...), nil
}

// sendEngineEnabled resolves the outbound-path selector: the Config
// field, then MPJ_SEND_ENGINE, then the default (engine on).
func sendEngineEnabled(setting string) (bool, error) {
	if setting == "" {
		setting = os.Getenv("MPJ_SEND_ENGINE")
	}
	switch setting {
	case "", "engine", "on":
		return true, nil
	case "direct", "off":
		return false, nil
	}
	return false, xdev.Errf(DeviceName, "init", "bad send-engine mode %q (want engine or direct)", setting)
}

// boolSetting resolves a boolean environment tunable.
func boolSetting(env string, def bool) bool {
	switch os.Getenv(env) {
	case "1", "on", "true", "yes":
		return true
	case "0", "off", "false", "no":
		return false
	}
	return def
}

// intSetting resolves an integer tunable: the Config value when
// non-zero, else the environment variable, else the default.
func intSetting(cfgVal int, env string, def int) int {
	if cfgVal != 0 {
		return cfgVal
	}
	if s := os.Getenv(env); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// dialPeer dials addr, retrying with jittered exponential backoff
// until the peer's listener is up, and introduces itself with a hello
// frame advertising this side's checksum setting.
func (d *Device) dialPeer(addr string, slot int) (net.Conn, error) {
	var flags uint32
	if d.crcOut {
		flags |= helloFlagCRC
	}
	// Seed from (rank, slot) so simultaneous dialers desynchronize
	// deterministically.
	bo := transport.NewBackoff(2*time.Millisecond, 250*time.Millisecond,
		int64(d.cfg.Rank)*int64(d.cfg.Size)+int64(slot)+1)
	deadline := time.Now().Add(connectTimeout)
	var lastErr error
	for time.Now().Before(deadline) {
		conn, err := d.tr.Dial(addr)
		if err == nil {
			if err := writeHello(conn, uint32(d.cfg.Rank), flags); err != nil {
				conn.Close()
				return nil, err
			}
			return conn, nil
		}
		lastErr = err
		time.Sleep(bo.Next())
	}
	return nil, fmt.Errorf("gave up after %v: %w", connectTimeout, lastErr)
}

func (d *Device) acceptLoop() {
	defer d.handlerWG.Done()
	for {
		conn, err := d.listener.Accept()
		if err != nil {
			return // listener closed by Finish
		}
		d.handlerWG.Add(1)
		go func() {
			defer d.handlerWG.Done()
			slot, flags, err := readHello(conn)
			if err != nil || int(slot) >= d.cfg.Size {
				conn.Close()
				return
			}
			d.rcmu.Lock()
			d.rconns = append(d.rconns, conn)
			alreadyClosed := d.closed.Load()
			d.rcmu.Unlock()
			if alreadyClosed {
				conn.Close()
				return
			}
			d.inboundWG.Done()
			d.inputHandler(conn, slot, flags&helloFlagCRC != 0)
		}()
	}
}

// waitTimeout waits for wg or fails after the timeout. The explicit
// Timer (instead of time.After) is stopped on the success path so the
// common case does not leak a pending timer for the full timeout.
func waitTimeout(wg *sync.WaitGroup, timeout time.Duration) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		return nil
	case <-t.C:
		return fmt.Errorf("timed out after %v", timeout)
	}
}

// ID returns this process's ProcessID.
func (d *Device) ID() xdev.ProcessID { return d.self }

// SendOverhead reports the fixed per-message header bytes on the wire.
func (d *Device) SendOverhead() int { return headerLen }

// RecvOverhead reports the fixed per-message header bytes on the wire.
func (d *Device) RecvOverhead() int { return headerLen }

// EagerLimit reports the active protocol switch point.
func (d *Device) EagerLimit() int { return d.eagerLimit }

// Finish closes connections and the listener, fails every pending
// request with a device-closed error, and wakes all blocked callers —
// a Recv or Wait outstanding at Finish returns an error rather than
// hanging. Live peers are sent a goodbye frame first, so they treat
// this rank's departure as graceful rather than a failure.
func (d *Device) Finish() error {
	d.sayGoodbye()
	d.shutdown(ErrDeviceClosed, true)
	return nil
}

// sayGoodbye broadcasts a best-effort bye frame to every live peer.
// Writes run concurrently under a short bound so a wedged write
// channel cannot turn Finish into a hang: shutdown closes the
// connections immediately afterwards, failing any straggler, and that
// peer simply sees EOF (a loss) instead of the bye.
func (d *Device) sayGoodbye() {
	if d.closed.Load() || len(d.pids) == 0 {
		return
	}
	h := header{typ: msgBye, src: uint32(d.cfg.Rank)}
	if e := d.engine; e != nil {
		// Flush-on-finalize: close each peer's queue with the bye frame
		// appended *behind* everything already queued, so every data
		// frame a sender enqueued before Finish reaches the wire ahead
		// of the goodbye — no frame is left queued. Then wait (bounded)
		// for the drainers to run the queues dry.
		deadline := time.Now().Add(goodbyeFlush)
		for slot := range d.pids {
			if slot == d.cfg.Rank || d.peerErr(slot) != nil {
				continue
			}
			q := e.queue(slot)
			if q == nil {
				continue
			}
			f := d.newFrame(h, nil, nil, xdev.Status{})
			if !q.closeWith(f) {
				putFrame(f) // already poisoned or closing; nothing to flush
			}
		}
		for _, q := range e.qs {
			if q != nil {
				q.waitIdle(deadline)
			}
		}
		return
	}
	var wg sync.WaitGroup
	for slot := range d.pids {
		if slot == d.cfg.Rank || d.peerErr(slot) != nil {
			continue
		}
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			_ = d.writeMsg(slot, h, nil)
		}(slot)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	t := time.NewTimer(100 * time.Millisecond)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
	}
}

func (d *Device) slotOf(p xdev.ProcessID) (int, error) {
	if p.UUID >= uint64(len(d.pids)) {
		return 0, xdev.Errf(DeviceName, "resolve", "unknown process %v", p)
	}
	return int(p.UUID), nil
}

var _ xdev.Device = (*Device)(nil)
