package niodev

import (
	"fmt"
	"sync"

	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/xdev"
)

// ErrDeviceClosed is returned by operations outstanding when the device
// is finished. It wraps xdev.ErrDeviceClosed, so device-agnostic
// callers can test with errors.Is against the xdev sentinel.
var ErrDeviceClosed = fmt.Errorf("niodev: %w", xdev.ErrDeviceClosed)

type reqKind uint8

const (
	sendReq reqKind = iota
	recvReq
)

// request implements xdev.Request. A request is completed exactly once;
// completion places it on the device's completion queue where it stays
// until collected by Wait, Test or Peek (the Myrinet eXpress
// completion-queue discipline that makes peek() possible).
type request struct {
	dev  *Device
	kind reqKind
	buf  *mpjbuf.Buffer
	// sendTag and sendCtx label a rendezvous send so the data header
	// can repeat the envelope for the receiver's status.
	sendTag int32
	sendCtx int32
	// dest is the destination slot of a send request (-1 otherwise),
	// so the peer-death drain can find sends addressed to a dead peer.
	dest int32

	// Tracing envelope: the operation's start time (recorder clock),
	// peer slot, tag, and context, set at creation when tracing is on
	// so complete() can close the SendEnd/RecvMatched span. t0 < 0
	// means untraced.
	t0   int64
	peer int32
	tag  int32
	ctx  int32

	mu         sync.Mutex
	attachment any

	done   chan struct{}
	status xdev.Status
	err    error
}

func (d *Device) newRequest(kind reqKind, buf *mpjbuf.Buffer) *request {
	return &request{dev: d, kind: kind, buf: buf, t0: -1, dest: -1, done: make(chan struct{})}
}

// trace stamps the request with its tracing envelope (recorder clock
// start, peer slot, tag, context). Only called when tracing is on.
func (r *request) trace(peer, tag, ctx int32) {
	r.t0 = r.dev.rec.Now()
	r.peer, r.tag, r.ctx = peer, tag, ctx
}

// complete records the outcome and publishes the request to the
// completion queue. It is safe to call at most once.
func (r *request) complete(st xdev.Status, err error) {
	if err != nil {
		r.dev.stats.RequestsFailed.Add(1)
	}
	if r.t0 >= 0 {
		typ := mpe.SendEnd
		if r.kind == recvReq {
			typ = mpe.RecvMatched
		}
		r.dev.rec.Span(typ, r.peer, r.tag, r.ctx, int64(st.Bytes), r.t0)
	}
	r.status = st
	r.err = err
	close(r.done)
	r.dev.completions.Push(r)
}

// Wait blocks until the request completes.
func (r *request) Wait() (xdev.Status, error) {
	<-r.done
	r.dev.completions.Collect(r)
	return r.status, r.err
}

// Test reports whether the request has completed, without blocking.
func (r *request) Test() (xdev.Status, bool, error) {
	select {
	case <-r.done:
		r.dev.completions.Collect(r)
		return r.status, true, r.err
	default:
		return xdev.Status{}, false, nil
	}
}

// SetAttachment stores opaque upper-layer state on the request.
func (r *request) SetAttachment(v any) {
	r.mu.Lock()
	r.attachment = v
	r.mu.Unlock()
}

// Attachment returns the value stored by SetAttachment.
func (r *request) Attachment() any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attachment
}

// Peek blocks until some request completes and returns it (paper
// §IV-E.1; the primitive beneath mpjdev's Waitany).
func (d *Device) Peek() (xdev.Request, error) {
	r, err := d.completions.Peek()
	if err != nil {
		if e := d.opErr("peek"); e != nil {
			return nil, e
		}
		return nil, ErrDeviceClosed
	}
	return r, nil
}
