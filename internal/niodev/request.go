package niodev

import (
	"fmt"

	"mpj/internal/xdev"
)

// ErrDeviceClosed is returned by operations outstanding when the device
// is finished. It wraps xdev.ErrDeviceClosed, so device-agnostic
// callers can test with errors.Is against the xdev sentinel.
var ErrDeviceClosed = fmt.Errorf("niodev: %w", xdev.ErrDeviceClosed)

// The request type itself lives in devcore: niodev requests are
// *devcore.Request values completed exactly once through the core's
// completion queue (the Myrinet eXpress completion-queue discipline
// that makes peek() possible).

// Peek blocks until some request completes and returns it (paper
// §IV-E.1; the primitive beneath mpjdev's Waitany).
func (d *Device) Peek() (xdev.Request, error) {
	r, err := d.core.Peek()
	if err != nil {
		return nil, err
	}
	return r, nil
}

// ReplayActive reports whether a record/replay session is installed
// (mpjdev's WaitAny skips its Test fast path while one is).
func (d *Device) ReplayActive() bool { return d.core != nil && d.core.ReplayActive() }
