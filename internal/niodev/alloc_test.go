package niodev

import (
	"io"
	"net"
	"sync"
	"testing"

	"mpj/internal/xdev"
)

// TestWriteMsgAllocs is the allocation regression guard for the pooled
// frame path: steady-state writeMsg must not allocate for header-only
// frames (pooled header, single Write) and at most once for frames
// with payload segments (the net.Buffers gather list escapes into
// WriteTo).
func TestWriteMsgAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; counts only hold in normal builds")
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go io.Copy(io.Discard, c2)

	d := New()
	d.pids = []xdev.ProcessID{{UUID: 0}}
	d.wmu = make([]sync.Mutex, 1)
	d.wconn = make([]net.Conn, 1)
	d.setWriteConn(0, c1)
	d.crcOut = true

	payload := make([]byte, 64)
	segs := [][]byte{payload}
	h := header{typ: msgEager, src: 0, tag: 1, wireLen: uint64(len(payload))}

	// Warm the slice pools so the measurement sees the steady state.
	for i := 0; i < 8; i++ {
		if err := d.writeMsg(0, h, segs); err != nil {
			t.Fatal(err)
		}
	}

	hdrOnly := testing.AllocsPerRun(100, func() {
		if err := d.writeMsg(0, header{typ: msgAck, src: 0}, nil); err != nil {
			t.Fatal(err)
		}
	})
	if hdrOnly > 0 {
		t.Errorf("header-only writeMsg allocates %.1f times per call, want 0", hdrOnly)
	}

	withPayload := testing.AllocsPerRun(100, func() {
		if err := d.writeMsg(0, h, segs); err != nil {
			t.Fatal(err)
		}
	})
	if withPayload > 1 {
		t.Errorf("segmented writeMsg allocates %.1f times per call, want <= 1", withPayload)
	}
}
