package perfmodel

import (
	"math"

	"mpj/internal/netsim"
)

// Two-level collective model. A hybrid job has two message costs: an
// intra-node transfer (one shared-memory handoff on the smpdev route)
// and an inter-node transfer (the full wire protocol on the niodev
// route). The hierarchical collectives in internal/core trade wire
// edges for shared-memory edges; whether that pays depends on the gap
// between the two levels, the message size, and how much of the
// software cost can actually run in parallel. This model predicts the
// per-call time of the flat and hierarchical variants and hence the
// crossover size past which the hierarchical variant should win — the
// number the size×ranks×topology selection table encodes and the
// BenchmarkHybridColl flat-vs-hierarchical comparison measures.
//
// Two regimes bound each prediction, and the model takes their max:
//
//   - the critical path: the chain of sequential transfers through the
//     deepest tree branch, the binding constraint on a real cluster
//     where every rank owns a core and a NIC;
//   - the aggregate software work divided by the CPUs available: on an
//     in-process "cluster" every pack, frame, and copy of every rank
//     competes for the same cores, so total work is the binding
//     constraint (with CPUs=1, time IS the sum of all software costs).
//
// The flat algorithms are modelled placement-blind in the worst case:
// every tree/exchange edge crosses the wire. The scattered placement
// in BenchmarkHybridColl (node = popcount(rank) mod 2) realises this
// exactly — every power-of-two distance flips the node — which is what
// makes the measured scattered numbers directly comparable to these
// predictions.
type TwoLevel struct {
	// Intra is the node-local message cost (smpdev route).
	Intra Series
	// IntraFabric carries the node-local latency/bandwidth.
	IntraFabric netsim.Fabric
	// Inter is the cross-node message cost (niodev route).
	Inter Series
	// InterFabric carries the wire latency/bandwidth.
	InterFabric netsim.Fabric
	// Nodes and RanksPerNode describe the (balanced) placement.
	Nodes        int
	RanksPerNode int
	// CPUs is the effective parallelism available to the software
	// costs. 0 means one core per rank (a real cluster); 1 models the
	// in-process benchmark where every rank shares one core.
	CPUs int
	// SegBytes is the collective segment size (pipelined trees move
	// segments of this size, which stay on the eager path). 0 defaults
	// to 32 KiB, matching internal/core's defaultSegmentBytes.
	SegBytes int
	// OpNS is the per-byte cost of applying the reduction operator,
	// counted once per folded stream in the Allreduce predictions. On
	// a real cluster the fold hides behind the wire (leave 0); with
	// CPUs=1 it is serialized work like everything else.
	OpNS float64
}

// P returns the total rank count.
func (t TwoLevel) P() int { return t.Nodes * t.RanksPerNode }

func (t TwoLevel) cpus() int {
	if t.CPUs <= 0 {
		return t.P()
	}
	return t.CPUs
}

func (t TwoLevel) segBytes() int {
	if t.SegBytes <= 0 {
		return 32 << 10
	}
	return t.SegBytes
}

// streamUS is the cost of one pipelined tree edge: the payload moves
// as SegBytes segments, each an eager message (segmentation is what
// keeps the collectives off the rendezvous path).
func (t TwoLevel) streamUS(s Series, f netsim.Fabric, n int) float64 {
	seg := t.segBytes()
	us := 0.0
	for n > 0 {
		c := min(n, seg)
		us += s.OneWayUS(f, c)
		n -= c
	}
	return us
}

// xferUS is the cost of one unsegmented transfer — the RSAG stripes
// and RD vectors of the leader phase, which do switch to rendezvous
// past the eager limit.
func (t TwoLevel) xferUS(s Series, f netsim.Fabric, n int) float64 {
	return s.OneWayUS(f, n)
}

func (t TwoLevel) intraStream(n int) float64 { return t.streamUS(t.Intra, t.IntraFabric, n) }
func (t TwoLevel) interStream(n int) float64 { return t.streamUS(t.Inter, t.InterFabric, n) }
func (t TwoLevel) interXfer(n int) float64   { return t.xferUS(t.Inter, t.InterFabric, n) }

// log2ceil returns ceil(log2(n)), 0 for n <= 1.
func log2ceil(n int) int {
	k := 0
	for p := 1; p < n; p <<= 1 {
		k++
	}
	return k
}

// rsagUS is a Rabenseifner reduce-scatter + allgather critical path
// over p participants: 2·log2(p) rounds, round k exchanging n/2^k
// bytes at the given per-transfer cost.
func rsagUS(p, n int, xfer func(int) float64) float64 {
	if p <= 1 {
		return 0
	}
	us := 0.0
	for k := 1; k <= log2ceil(p); k++ {
		us += 2 * xfer(n>>k)
	}
	return us
}

// bound combines the two regimes: critical path vs aggregate work
// spread over the available cores.
func (t TwoLevel) bound(critUS, aggUS float64) float64 {
	return math.Max(critUS, aggUS/float64(t.cpus()))
}

// FlatBcastUS is the placement-blind pipelined binomial broadcast with
// every edge on the wire: depth edges on the critical path, p-1 edges
// of aggregate work.
func (t TwoLevel) FlatBcastUS(n int) float64 {
	p := t.P()
	edge := t.interStream(n)
	return t.bound(float64(log2ceil(p))*edge, float64(p-1)*edge)
}

// HierBcastUS is the fused two-level broadcast: Nodes-1 wire edges and
// p-Nodes shared-memory edges.
func (t TwoLevel) HierBcastUS(n int) float64 {
	wire := t.interStream(n)
	local := t.intraStream(n)
	crit := float64(log2ceil(t.Nodes))*wire + float64(log2ceil(t.RanksPerNode))*local
	agg := float64(t.Nodes-1)*wire + float64(t.P()-t.Nodes)*local
	return t.bound(crit, agg)
}

// FlatReduceUS / HierReduceUS: the fold trees mirror the broadcast
// trees edge for edge (the op application itself is not modelled).
func (t TwoLevel) FlatReduceUS(n int) float64 { return t.FlatBcastUS(n) }
func (t TwoLevel) HierReduceUS(n int) float64 { return t.HierBcastUS(n) }

// FlatAllreduceUS is the placement-blind reduce-scatter+allgather over
// all p ranks: every round's exchange crosses the wire unsegmented (a
// stripe is one message, rendezvous past the eager limit), and every
// round moves p messages of aggregate work.
func (t TwoLevel) FlatAllreduceUS(n int) float64 {
	p := t.P()
	crit := rsagUS(p, n, t.interXfer)
	// Each rank folds roughly one full vector's worth of received
	// stripes across the reduce-scatter rounds.
	op := float64(n) * t.OpNS / 1000
	return t.bound(crit+op, float64(p)*(crit+op))
}

// HierAllreduceUS is the two-level allreduce: a pipelined intra-node
// fold to the leader, reduce-scatter+allgather across the Nodes
// leaders on the wire, and a pipelined intra-node broadcast back out.
func (t TwoLevel) HierAllreduceUS(n int) float64 {
	local := t.intraStream(n)
	lead := rsagUS(t.Nodes, n, t.interXfer)
	// Every received stream is folded once: p-Nodes child streams in
	// the intra fold, one vector per leader in the leader exchange —
	// p·n bytes of op work in aggregate, ~2n on the critical path.
	op := float64(n) * t.OpNS / 1000
	crit := 2*float64(log2ceil(t.RanksPerNode))*local + lead + 2*op
	agg := 2*float64(t.P()-t.Nodes)*local + float64(t.Nodes)*lead + float64(t.P())*op
	return t.bound(crit, agg)
}

// CrossoverBytes sweeps doubling sizes and returns the smallest
// message size from which hier stays at or below flat for the rest of
// the sweep (up to 16 MiB) — the predicted switch point for the
// selection table. Returns 0 when hier never wins, and 1 when it wins
// everywhere.
func CrossoverBytes(flat, hier func(int) float64) int {
	crossover := 0
	won := false
	for n := 1; n <= 16<<20; n *= 2 {
		if hier(n) <= flat(n) {
			if !won {
				crossover, won = n, true
			}
		} else {
			crossover, won = 0, false
		}
	}
	return crossover
}

// AllreduceCrossoverBytes is the predicted Allreduce switch point.
func (t TwoLevel) AllreduceCrossoverBytes() int {
	return CrossoverBytes(t.FlatAllreduceUS, t.HierAllreduceUS)
}

// BcastCrossoverBytes is the predicted Bcast switch point.
func (t TwoLevel) BcastCrossoverBytes() int {
	return CrossoverBytes(t.FlatBcastUS, t.HierBcastUS)
}

// SpeedupAt returns hier's predicted speedup (flat time / hier time)
// for an n-byte payload of the given pair of cost functions.
func SpeedupAt(flat, hier func(int) float64, n int) float64 {
	h := hier(n)
	if h <= 0 {
		return math.Inf(1)
	}
	return flat(n) / h
}

// SharedMemSeries is the intra-node software cost on the hybrid
// device's smpdev route: matching plus one pooled-buffer copy on each
// side — no framing, no protocol switch, no rendezvous.
func SharedMemSeries() Series {
	return Series{
		Name:        "smpdev (intra-node)",
		FixedUS:     2.0,
		EagerCopyNS: 0.35,
		RndvCopyNS:  0.35,
	}
}

// HybridGigE models a hybrid job on the paper's Gigabit Ethernet
// cluster: MPJ Express wire costs between nodes, shared memory within
// them, one core per rank.
func HybridGigE(nodes, ranksPerNode int) TwoLevel {
	inter := EthernetSeries()[0] // "MPJ Express" over niodev
	return TwoLevel{
		Intra:        SharedMemSeries(),
		IntraFabric:  netsim.SharedMemory(),
		Inter:        inter,
		InterFabric:  netsim.GigabitEthernet(),
		Nodes:        nodes,
		RanksPerNode: ranksPerNode,
	}
}

// HybridInProc models the BenchmarkHybridColl configuration: a
// RunLocal-style job where the "wire" is the in-process niodev
// transport (full framing, CRC, and protocol at memory speed), the
// intra level is the smpdev route, and every rank shares one core —
// so aggregate software work, not tree depth, is the binding
// constraint. Calibrated against the np=16 scattered-placement
// measurements in EXPERIMENTS.md: the eager wire path costs ~1.7× a
// shared-memory handoff per byte, and an unsegmented rendezvous
// transfer ~2.8× the eager rate.
func HybridInProc(nodes, ranksPerNode int) TwoLevel {
	return TwoLevel{
		Intra:       SharedMemSeries(),
		IntraFabric: netsim.SharedMemory(),
		Inter: Series{
			Name:        "niodev (in-proc)",
			FixedUS:     6.0,
			EagerCopyNS: 0.7,
			RndvCopyNS:  2.3,
			EagerLimit:  128 << 10,
			RndvSetupUS: 30,
		},
		InterFabric: netsim.Fabric{
			Name:          "In-Process Pipe",
			LatencyUS:     1.5,
			BandwidthMbps: 48_000,
			Efficiency:    1.0,
			ChunkBytes:    32 << 10,
		},
		Nodes:        nodes,
		RanksPerNode: ranksPerNode,
		CPUs:         1,
		OpNS:         1.0, // bounds-checked int64 SUM loop
	}
}
