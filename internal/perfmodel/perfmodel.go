// Package perfmodel regenerates the paper's evaluation figures
// (Figs. 10–15): ping-pong transfer time and throughput for MPJ
// Express and its comparator systems on Fast Ethernet, Gigabit
// Ethernet and Myrinet.
//
// The 2006 testbed (the StarBug cluster, MPICH 1.2.5, LAM 7.0.6,
// mpijava 1.2.5, MPJ/Ibis 1.2.1, MPICH-MX) is not reproducible, so
// each curve is generated from a protocol/pipeline model
// (internal/netsim) with a small per-series parameter set:
//
//   - FixedUS        — one-way software overhead (both hosts combined);
//   - EagerCopyNS    — per-byte, whole-message software copies in the
//     eager regime (packing, JNI array copies, internal staging);
//   - RndvCopyNS     — the same for the rendezvous regime (copies that
//     eager-mode pipelining would otherwise partially hide);
//   - EagerLimit     — the protocol switch point, whose handshake
//     produces the throughput dip the paper observes at 128 KB for
//     MPICH, mpijava and MPJ Express.
//
// Parameters are calibrated against the numbers the paper reports
// (e.g. 164 us MPJ Express latency on Fast Ethernet, 68 % GigE
// throughput, 1097 Mbps on Myrinet); everything in between — curve
// shape, crossovers, protocol dips — is produced by the model, not
// hand-drawn. EXPERIMENTS.md tabulates paper-reported versus modelled
// values for every anchor.
package perfmodel

import (
	"fmt"

	"mpj/internal/netsim"
)

// Series is one curve in a figure: a messaging stack on a fabric.
type Series struct {
	// Name as it appears in the figure legend.
	Name string
	// FixedUS is the one-way per-message software overhead in
	// microseconds, summed over sender and receiver.
	FixedUS float64
	// EagerCopyNS is the per-byte software copy cost (ns/byte, both
	// sides combined) on the eager path.
	EagerCopyNS float64
	// RndvCopyNS is the per-byte copy cost on the rendezvous path.
	RndvCopyNS float64
	// EagerLimit is the eager→rendezvous switch in bytes (0 = never);
	// messages of EagerLimit bytes or more use rendezvous.
	EagerLimit int
	// RndvSetupUS is the software cost of the rendezvous handshake
	// beyond the two wire crossings: on kernel TCP stacks each control
	// message traverses the full send/receive software path, while
	// NIC-level protocols (MX) keep it tiny.
	RndvSetupUS float64
	// PipelinedCopyNS is a per-byte copy that overlaps the wire
	// (hidden for large messages, visible only through the pipeline
	// fill).
	PipelinedCopyNS float64
}

// OneWayUS returns the modelled one-way transfer time in microseconds
// for a message of msgBytes on the fabric.
func (s Series) OneWayUS(f netsim.Fabric, msgBytes int) float64 {
	rendezvous := s.EagerLimit > 0 && msgBytes >= s.EagerLimit
	copyNS := s.EagerCopyNS
	prologueUS := 0.0
	if rendezvous {
		copyNS = s.RndvCopyNS
		// READY_TO_SEND + READY_TO_RECV cross the wire before the
		// payload moves, each processed by the stack's software path.
		prologueUS = 2*f.LatencyUS + s.RndvSetupUS
	}
	stages := []netsim.Stage{
		{Name: "pack", NSPerByte: copyNS / 2, WholeMessage: true},
		{Name: "sw", SetupUS: s.FixedUS},
		{Name: "copy", NSPerByte: s.PipelinedCopyNS},
		{Name: "wire", SetupUS: f.LatencyUS, NSPerByte: f.NSPerByte()},
		{Name: "unpack", NSPerByte: copyNS / 2, WholeMessage: true},
	}
	return prologueUS + netsim.PipelineUS(stages, msgBytes, f.ChunkBytes)
}

// ThroughputMbps returns the modelled steady bandwidth in Mbit/s.
func (s Series) ThroughputMbps(f netsim.Fabric, msgBytes int) float64 {
	t := s.OneWayUS(f, msgBytes)
	if t <= 0 {
		return 0
	}
	return float64(msgBytes) * 8 / t // bytes * 8 bit / us = Mbit/s
}

// ---- calibrated series ----

// EthernetSeries returns the seven curves of Figs. 10–13. The same
// software parameters serve both Fast and Gigabit Ethernet: fabric
// latency and bandwidth differences come from the fabric model.
func EthernetSeries() []Series {
	return []Series{
		// MPJ Express over niodev: mpjbuf pack+unpack on both sides
		// (2 x ~1.45 ns/B), 128 KiB protocol switch. Anchors: 164 us
		// latency (Fast Ethernet), 68 % GigE throughput.
		{Name: "MPJ Express", FixedUS: 109, EagerCopyNS: 2.9, RndvCopyNS: 2.9, EagerLimit: 128 << 10, RndvSetupUS: 220},
		// Bare mpjdev: the same stack minus packing (paper §V-E uses
		// the difference to attribute MPJE's overhead to mpjbuf).
		{Name: "mpjdev", FixedUS: 100, EagerCopyNS: 0, RndvCopyNS: 0, EagerLimit: 128 << 10, RndvSetupUS: 200},
		// MPICH 1.2.5: C library, one internal staging copy, 128 KiB
		// switch. Anchor: 76 % GigE throughput, dip at 128 KB.
		{Name: "MPICH", FixedUS: 18, EagerCopyNS: 1.8, RndvCopyNS: 1.8, EagerLimit: 128 << 10, RndvSetupUS: 36},
		// mpijava 1.2.5: MPICH plus JNI array copies on both sides.
		// Anchor: 60 % GigE throughput, lowest of the group.
		{Name: "mpijava", FixedUS: 30, EagerCopyNS: 4.2, RndvCopyNS: 4.2, EagerLimit: 128 << 10, RndvSetupUS: 60},
		// LAM 7.0.6: C library with an efficient long protocol — no
		// visible switch dip. Anchor: 90 % throughput on both fabrics.
		{Name: "LAM/MPI", FixedUS: 13, EagerCopyNS: 0.3, RndvCopyNS: 0.3},
		// MPJ/Ibis devices: zero-copy streaming (no packing), pure
		// Java fixed costs. Anchors: 144/143 us latency, 90 %
		// throughput.
		{Name: "MPJ/Ibis (TCPIbis)", FixedUS: 89, EagerCopyNS: 0.3, RndvCopyNS: 0.3},
		{Name: "MPJ/Ibis (NIOIbis)", FixedUS: 88, EagerCopyNS: 0.3, RndvCopyNS: 0.3},
	}
}

// MyrinetSeries returns the four curves of Figs. 14–15.
func MyrinetSeries() []Series {
	return []Series{
		// MPJ Express over mxdev: MX handles protocol internally
		// (32 KiB internal switch), mpjbuf packing remains. Anchors:
		// 23 us latency, 1097 Mbps at 16 MB.
		{Name: "MPJ Express", FixedUS: 20.8, EagerCopyNS: 2.9, RndvCopyNS: 2.9, EagerLimit: 32 << 10, RndvSetupUS: 4},
		// Bare mpjdev over MX: no packing; direct buffers avoid the
		// JNI copy entirely. Anchor: 1826 Mbps — above MPICH-MX.
		{Name: "mpjdev", FixedUS: 17, EagerCopyNS: 0.08, RndvCopyNS: 0.08, EagerLimit: 32 << 10, RndvSetupUS: 4},
		// MPICH-MX: native C on MX. Anchors: 4 us latency, 1800 Mbps.
		{Name: "MPICH-MX", FixedUS: 1.8, EagerCopyNS: 0.14, RndvCopyNS: 0.14, EagerLimit: 32 << 10, RndvSetupUS: 4},
		// mpijava over MPICH-MX: JNI copies pipeline acceptably in the
		// eager regime but serialize in rendezvous, so throughput peaks
		// at the last eager size (64 KB) and then drops. Anchors: 12 us
		// latency, 1347 Mbps peak at 64 KB, 868 Mbps at 16 MB.
		{Name: "mpijava", FixedUS: 9.8, EagerCopyNS: 1.5, RndvCopyNS: 4.9, EagerLimit: 128 << 10, RndvSetupUS: 4},
	}
}

// ---- figures ----

// Kind distinguishes transfer-time from throughput figures.
type Kind int

// Figure kinds.
const (
	TransferTime Kind = iota
	Throughput
)

// Figure describes one reproducible paper figure.
type Figure struct {
	ID     int
	Title  string
	Kind   Kind
	Fabric netsim.Fabric
	Series []Series
	// Sizes is the message-size sweep (bytes).
	Sizes []int
}

// Sizes1BTo16M is the paper's sweep: 1 byte to 16 MiB, doubling.
func Sizes1BTo16M() []int {
	var out []int
	for s := 1; s <= 16<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Figures returns all six evaluation figures (10–15).
func Figures() []Figure {
	fast, gige, mx := netsim.FastEthernet(), netsim.GigabitEthernet(), netsim.Myrinet2G()
	sizes := Sizes1BTo16M()
	return []Figure{
		{ID: 10, Title: "Transfer Time Comparison on Fast Ethernet", Kind: TransferTime, Fabric: fast, Series: EthernetSeries(), Sizes: sizes},
		{ID: 11, Title: "Throughput Comparison on Fast Ethernet", Kind: Throughput, Fabric: fast, Series: EthernetSeries(), Sizes: sizes},
		{ID: 12, Title: "Transfer Time Comparison on Gigabit Ethernet", Kind: TransferTime, Fabric: gige, Series: EthernetSeries(), Sizes: sizes},
		{ID: 13, Title: "Throughput Comparison on Gigabit Ethernet", Kind: Throughput, Fabric: gige, Series: EthernetSeries(), Sizes: sizes},
		{ID: 14, Title: "Transfer Time Comparison on Myrinet", Kind: TransferTime, Fabric: mx, Series: MyrinetSeries(), Sizes: sizes},
		{ID: 15, Title: "Throughput Comparison on Myrinet", Kind: Throughput, Fabric: mx, Series: MyrinetSeries(), Sizes: sizes},
	}
}

// FigureByID looks up one of the six figures.
func FigureByID(id int) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("perfmodel: no figure %d (have 10-15)", id)
}

// Point is one (size, value) sample of a series.
type Point struct {
	Bytes int
	Value float64 // microseconds for TransferTime, Mbps for Throughput
}

// Generate computes all curves of the figure.
func (fig Figure) Generate() map[string][]Point {
	out := make(map[string][]Point, len(fig.Series))
	for _, s := range fig.Series {
		pts := make([]Point, 0, len(fig.Sizes))
		for _, size := range fig.Sizes {
			var v float64
			if fig.Kind == TransferTime {
				v = s.OneWayUS(fig.Fabric, size)
			} else {
				v = s.ThroughputMbps(fig.Fabric, size)
			}
			pts = append(pts, Point{Bytes: size, Value: v})
		}
		out[s.Name] = pts
	}
	return out
}

// Latency returns the one-byte transfer time of a series — the
// "latency" number the paper quotes per system.
func (fig Figure) Latency(seriesName string) (float64, error) {
	for _, s := range fig.Series {
		if s.Name == seriesName {
			return s.OneWayUS(fig.Fabric, 1), nil
		}
	}
	return 0, fmt.Errorf("perfmodel: figure %d has no series %q", fig.ID, seriesName)
}

// PeakMbps returns a series' maximum modelled throughput over the
// sweep and the message size at which it occurs.
func (fig Figure) PeakMbps(seriesName string) (peak float64, atBytes int, err error) {
	for _, s := range fig.Series {
		if s.Name != seriesName {
			continue
		}
		for _, size := range fig.Sizes {
			if v := s.ThroughputMbps(fig.Fabric, size); v > peak {
				peak, atBytes = v, size
			}
		}
		return peak, atBytes, nil
	}
	return 0, 0, fmt.Errorf("perfmodel: figure %d has no series %q", fig.ID, seriesName)
}
