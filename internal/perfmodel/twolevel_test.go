package perfmodel

import "testing"

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestTwoLevelGigE: on a real wire the hierarchical variants must win
// across the whole sweep — every saved wire message costs ~100+ us of
// software and 21 us of latency, while the intra hops it adds cost
// ~2 us each.
func TestTwoLevelGigE(t *testing.T) {
	m := HybridGigE(4, 4)
	for n := 1; n <= 16<<20; n *= 16 {
		if f, h := m.FlatBcastUS(n), m.HierBcastUS(n); h >= f {
			t.Errorf("GigE Bcast at %d B: hier %.1f us >= flat %.1f us", n, h, f)
		}
		if f, h := m.FlatAllreduceUS(n), m.HierAllreduceUS(n); h >= f {
			t.Errorf("GigE Allreduce at %d B: hier %.1f us >= flat %.1f us", n, h, f)
		}
	}
	if c := m.BcastCrossoverBytes(); c != 1 {
		t.Errorf("GigE Bcast crossover = %d, want 1 (hier wins everywhere)", c)
	}
	if c := m.AllreduceCrossoverBytes(); c != 1 {
		t.Errorf("GigE Allreduce crossover = %d, want 1 (hier wins everywhere)", c)
	}
}

// TestTwoLevelDegenerate: sanity on a one-node placement — the
// hierarchical predictions stay finite and positive (the selection
// table never picks hier there anyway: hierEligible needs >= 2 nodes).
func TestTwoLevelDegenerate(t *testing.T) {
	m := HybridGigE(1, 8)
	for _, n := range []int{64, 64 << 10, 4 << 20} {
		if h := m.HierAllreduceUS(n); h <= 0 {
			t.Errorf("1-node HierAllreduce(%d) = %.2f, want > 0", n, h)
		}
	}
	if m.P() != 8 {
		t.Errorf("P() = %d, want 8", m.P())
	}
}

// TestTwoLevelInProc checks the model against the BenchmarkHybridColl
// scattered-placement measurements recorded in EXPERIMENTS.md (np=16,
// 2 nodes, one shared core): against a placement-blind flat whose
// every edge is a wire edge, hier is predicted to win from the
// smallest sizes (crossover 1, consistent with the measurement, where
// hier already wins at the 64 KiB floor of the sweep), and the
// absolute 4 MiB Allreduce predictions must land within 2x of the
// measured ~303 ms flat / ~190 ms hier.
func TestTwoLevelInProc(t *testing.T) {
	m := HybridInProc(2, 8)
	if c := m.AllreduceCrossoverBytes(); c != 1 {
		t.Errorf("in-proc Allreduce crossover = %d, want 1", c)
	}
	if c := m.BcastCrossoverBytes(); c != 1 {
		t.Errorf("in-proc Bcast crossover = %d, want 1", c)
	}
	const mib4 = 4 << 20
	flat := m.FlatAllreduceUS(mib4)
	hier := m.HierAllreduceUS(mib4)
	if flat < 303_000/2 || flat > 303_000*2 {
		t.Errorf("in-proc FlatAllreduce(4MiB) = %.0f us, want within 2x of 303000", flat)
	}
	if hier < 190_000/2 || hier > 190_000*2 {
		t.Errorf("in-proc HierAllreduce(4MiB) = %.0f us, want within 2x of 190000", hier)
	}
	if s := SpeedupAt(m.FlatAllreduceUS, m.HierAllreduceUS, mib4); s < 1.1 {
		t.Errorf("in-proc Allreduce speedup at 4 MiB = %.2fx, want >= 1.1x", s)
	}
	t.Logf("in-proc np=16 (2x8) predictions:")
	for _, n := range []int{64 << 10, 1 << 20, 4 << 20} {
		t.Logf("  %7d B: Allreduce flat %.0f us hier %.0f us (%.2fx) | Bcast flat %.0f us hier %.0f us (%.2fx)",
			n, m.FlatAllreduceUS(n), m.HierAllreduceUS(n),
			SpeedupAt(m.FlatAllreduceUS, m.HierAllreduceUS, n),
			m.FlatBcastUS(n), m.HierBcastUS(n),
			SpeedupAt(m.FlatBcastUS, m.HierBcastUS, n))
	}
}

// TestCrossoverBytesStability: a pair of curves that cross, un-cross and
// cross again must report the final stable crossover, not the first dip.
func TestCrossoverBytesStability(t *testing.T) {
	flat := func(n int) float64 { return float64(n) }
	hier := func(n int) float64 {
		switch {
		case n < 4:
			return float64(n) - 1 // early dip
		case n < 1024:
			return float64(n) + 1 // un-crosses
		default:
			return float64(n) / 2 // stable win
		}
	}
	if c := CrossoverBytes(flat, hier); c != 1024 {
		t.Errorf("crossover = %d, want 1024 (first size of the stable win)", c)
	}
	never := func(n int) float64 { return float64(n) * 2 }
	if c := CrossoverBytes(flat, never); c != 0 {
		t.Errorf("crossover with never-winning hier = %d, want 0", c)
	}
}
