package perfmodel

import (
	"math"
	"strings"
	"testing"
)

func series(t *testing.T, fig Figure, name string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("figure %d has no series %q", fig.ID, name)
	return Series{}
}

func fig(t *testing.T, id int) Figure {
	t.Helper()
	f, err := FigureByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func within(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.1f, want %.1f ± %.1f", what, got, want, tol)
	}
}

func pct(f Figure, name string, bytes int) float64 {
	for _, s := range f.Series {
		if s.Name == name {
			return s.ThroughputMbps(f.Fabric, bytes) / f.Fabric.BandwidthMbps * 100
		}
	}
	return -1
}

// TestFig10Latencies checks the latency anchors the paper reports for
// Fast Ethernet: MPJ Express 164 us, TCPIbis 144 us, NIOIbis 143 us,
// mpjdev slightly below MPJ Express, C MPI lowest of all.
func TestFig10Latencies(t *testing.T) {
	f := fig(t, 10)
	lat := func(name string) float64 {
		v, err := f.Latency(name)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	within(t, "MPJ Express latency", lat("MPJ Express"), 164, 2)
	within(t, "TCPIbis latency", lat("MPJ/Ibis (TCPIbis)"), 144, 2)
	within(t, "NIOIbis latency", lat("MPJ/Ibis (NIOIbis)"), 143, 2)
	if !(lat("mpjdev") < lat("MPJ Express")) {
		t.Error("mpjdev latency should be slightly below MPJ Express")
	}
	for _, java := range []string{"MPJ Express", "mpijava", "MPJ/Ibis (TCPIbis)", "MPJ/Ibis (NIOIbis)"} {
		if !(lat("LAM/MPI") < lat(java) && lat("MPICH") < lat(java)) {
			t.Errorf("C MPI latency should undercut %s", java)
		}
	}
	if !(lat("mpijava") < lat("MPJ/Ibis (TCPIbis)")) {
		t.Error("mpijava (JNI over C) should undercut pure-Java latency")
	}
}

// TestFig11FastEthernetThroughput checks the 16 MB anchors: everyone
// above 84 % of the wire, LAM and the Ibis devices around 90 %, MPICH
// and MPJ Express following, and the eager→rendezvous dip at 128 KB
// for MPICH, mpijava and MPJ Express only.
func TestFig11FastEthernetThroughput(t *testing.T) {
	f := fig(t, 11)
	const full = 16 << 20
	for _, s := range f.Series {
		if p := pct(f, s.Name, full); p < 84 {
			t.Errorf("%s achieves %.1f%% at 16 MB, paper says all ≥ 84%%", s.Name, p)
		}
	}
	within(t, "LAM/MPI %", pct(f, "LAM/MPI", full), 90, 3)
	within(t, "TCPIbis %", pct(f, "MPJ/Ibis (TCPIbis)", full), 90, 3)
	// Ordering: LAM/Ibis > MPICH, MPJE > mpijava.
	if !(pct(f, "LAM/MPI", full) > pct(f, "MPICH", full)) {
		t.Error("LAM should beat MPICH at 16 MB")
	}
	if !(pct(f, "MPICH", full) > pct(f, "mpijava", full)) {
		t.Error("MPICH should beat mpijava at 16 MB")
	}
	if !(pct(f, "MPJ Express", full) > pct(f, "mpijava", full)) {
		t.Error("MPJ Express should beat mpijava at 16 MB")
	}

	// The protocol-switch dip: the first rendezvous size (128 KB)
	// falls below the last eager size (64 KB).
	for _, name := range []string{"MPICH", "mpijava", "MPJ Express"} {
		s := series(t, f, name)
		if !(s.ThroughputMbps(f.Fabric, 128<<10) < s.ThroughputMbps(f.Fabric, 64<<10)) {
			t.Errorf("%s shows no dip at the 128 KB protocol switch", name)
		}
	}
	// LAM has no switch: monotone through that region.
	lam := series(t, f, "LAM/MPI")
	if !(lam.ThroughputMbps(f.Fabric, 128<<10) > lam.ThroughputMbps(f.Fabric, 64<<10)) {
		t.Error("LAM/MPI should not dip at 128 KB")
	}
}

// TestFig12GigabitLatencies: same ordering as Fast Ethernet with
// latencies reduced by the faster network.
func TestFig12GigabitLatencies(t *testing.T) {
	fGig := fig(t, 12)
	fFast := fig(t, 10)
	for _, s := range fGig.Series {
		lg, err := fGig.Latency(s.Name)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := fFast.Latency(s.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !(lg < lf) {
			t.Errorf("%s: GigE latency %.1f not below Fast Ethernet %.1f", s.Name, lg, lf)
		}
	}
}

// TestFig13GigabitThroughput checks the paper's 16 MB percentages:
// LAM/Ibis 90 %, MPICH 76 %, MPJ Express 68 %, mpijava 60 %,
// mpjdev 90 %.
func TestFig13GigabitThroughput(t *testing.T) {
	f := fig(t, 13)
	const full = 16 << 20
	within(t, "LAM/MPI %", pct(f, "LAM/MPI", full), 90, 3)
	within(t, "TCPIbis %", pct(f, "MPJ/Ibis (TCPIbis)", full), 90, 3)
	within(t, "NIOIbis %", pct(f, "MPJ/Ibis (NIOIbis)", full), 90, 3)
	within(t, "MPICH %", pct(f, "MPICH", full), 76, 3)
	within(t, "MPJ Express %", pct(f, "MPJ Express", full), 68, 3)
	within(t, "mpijava %", pct(f, "mpijava", full), 60, 3)
	within(t, "mpjdev %", pct(f, "mpjdev", full), 90, 3)
}

// TestFig14MyrinetLatencies: MPICH-MX 4 us, mpijava 12 us,
// MPJ Express 23 us.
func TestFig14MyrinetLatencies(t *testing.T) {
	f := fig(t, 14)
	lat := func(name string) float64 {
		v, err := f.Latency(name)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	within(t, "MPICH-MX latency", lat("MPICH-MX"), 4, 1)
	within(t, "mpijava latency", lat("mpijava"), 12, 1)
	within(t, "MPJ Express latency", lat("MPJ Express"), 23, 1)
	if !(lat("mpjdev") < lat("MPJ Express")) {
		t.Error("mpjdev should undercut MPJ Express on Myrinet")
	}
}

// TestFig15MyrinetThroughput checks: MPICH-MX 1800 Mbps at 16 MB,
// MPJ Express 1097, mpjdev 1826 (above MPICH-MX), and mpijava's
// peak of ~1347 Mbps at 64 KB followed by a drop to ~868 Mbps.
func TestFig15MyrinetThroughput(t *testing.T) {
	f := fig(t, 15)
	const full = 16 << 20
	thr := func(name string, size int) float64 {
		return series(t, f, name).ThroughputMbps(f.Fabric, size)
	}
	within(t, "MPICH-MX @16MB", thr("MPICH-MX", full), 1800, 60)
	within(t, "MPJ Express @16MB", thr("MPJ Express", full), 1097, 60)
	within(t, "mpjdev @16MB", thr("mpjdev", full), 1826, 60)
	if !(thr("mpjdev", full) > thr("MPICH-MX", full)) {
		t.Error("mpjdev should exceed MPICH-MX at 16 MB (paper §V-E)")
	}
	peak, at, err := f.PeakMbps("mpijava")
	if err != nil {
		t.Fatal(err)
	}
	within(t, "mpijava peak", peak, 1347, 80)
	if at != 64<<10 {
		t.Errorf("mpijava peak at %d bytes, paper says 64 KB", at)
	}
	within(t, "mpijava @16MB", thr("mpijava", full), 868, 60)
}

func TestFiguresEnumeration(t *testing.T) {
	figs := Figures()
	if len(figs) != 6 {
		t.Fatalf("have %d figures, want 6", len(figs))
	}
	for _, f := range figs {
		pts := f.Generate()
		if len(pts) != len(f.Series) {
			t.Errorf("figure %d generated %d series, want %d", f.ID, len(pts), len(f.Series))
		}
		for name, curve := range pts {
			if len(curve) != len(f.Sizes) {
				t.Errorf("figure %d series %s has %d points", f.ID, name, len(curve))
			}
			for _, p := range curve {
				if p.Value <= 0 {
					t.Errorf("figure %d series %s: non-positive value at %d bytes", f.ID, name, p.Bytes)
				}
			}
		}
	}
	if _, err := FigureByID(9); err == nil {
		t.Error("unknown figure accepted")
	}
	if _, err := fig(t, 10).Latency("nope"); err == nil {
		t.Error("unknown series accepted")
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	for _, f := range Figures() {
		if f.Kind != TransferTime {
			continue
		}
		for _, s := range f.Series {
			prev := 0.0
			for _, size := range f.Sizes {
				v := s.OneWayUS(f.Fabric, size)
				if v < prev {
					t.Errorf("figure %d %s: transfer time decreased at %d bytes", f.ID, s.Name, size)
					break
				}
				prev = v
			}
		}
	}
}

func TestSweepCoversPaperRange(t *testing.T) {
	sizes := Sizes1BTo16M()
	if sizes[0] != 1 || sizes[len(sizes)-1] != 16<<20 {
		t.Fatalf("sweep %v", sizes)
	}
	if len(sizes) != 25 {
		t.Fatalf("sweep has %d sizes", len(sizes))
	}
}

func TestSVGRendering(t *testing.T) {
	for _, f := range Figures() {
		svg := f.SVG()
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
			t.Fatalf("figure %d: malformed SVG envelope", f.ID)
		}
		for _, s := range f.Series {
			if !strings.Contains(svg, ">"+s.Name+"<") {
				t.Errorf("figure %d: legend missing %q", f.ID, s.Name)
			}
		}
		if strings.Count(svg, "<path") != len(f.Series) {
			t.Errorf("figure %d: expected %d curves, SVG has %d paths",
				f.ID, len(f.Series), strings.Count(svg, "<path"))
		}
		if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
			t.Errorf("figure %d: non-finite coordinates in SVG", f.ID)
		}
	}
}
