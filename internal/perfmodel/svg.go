package perfmodel

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file renders a Figure as a standalone SVG line chart —
// log-scaled X (message size) like the paper's plots, linear Y for
// throughput and log Y for transfer time. Pure stdlib.

const (
	svgW       = 760
	svgH       = 470
	svgMarginL = 70
	svgMarginR = 190
	svgMarginT = 40
	svgMarginB = 55
)

// seriesColors is a fixed palette, one per curve.
var seriesColors = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
	"#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
}

type axisMap struct {
	min, max float64
	log      bool
	lo, hi   float64 // pixel range
}

func (a axisMap) pos(v float64) float64 {
	t := 0.0
	if a.log {
		t = (math.Log2(v) - math.Log2(a.min)) / (math.Log2(a.max) - math.Log2(a.min))
	} else {
		t = (v - a.min) / (a.max - a.min)
	}
	return a.lo + t*(a.hi-a.lo)
}

// SVG renders the figure and returns the SVG document.
func (fig Figure) SVG() string {
	curves := fig.Generate()
	names := make([]string, 0, len(fig.Series))
	for _, s := range fig.Series {
		names = append(names, s.Name)
	}

	minX, maxX := float64(fig.Sizes[0]), float64(fig.Sizes[len(fig.Sizes)-1])
	minY, maxY := math.MaxFloat64, -math.MaxFloat64
	for _, pts := range curves {
		for _, p := range pts {
			minY = math.Min(minY, p.Value)
			maxY = math.Max(maxY, p.Value)
		}
	}
	logY := fig.Kind == TransferTime
	if logY {
		minY = math.Pow(2, math.Floor(math.Log2(minY)))
		maxY = math.Pow(2, math.Ceil(math.Log2(maxY)))
	} else {
		minY = 0
		maxY = maxY * 1.08
	}

	xm := axisMap{min: minX, max: maxX, log: true, lo: svgMarginL, hi: svgW - svgMarginR}
	ym := axisMap{min: minY, max: maxY, log: logY, lo: svgH - svgMarginB, hi: svgMarginT}
	if logY && minY <= 0 {
		ym.min = 1e-3
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", svgW, svgH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", svgW, svgH)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">Figure %d: %s</text>`+"\n",
		svgMarginL, fig.ID, fig.Title)

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		svgMarginL, svgH-svgMarginB, svgW-svgMarginR, svgH-svgMarginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		svgMarginL, svgMarginT, svgMarginL, svgH-svgMarginB)

	// X ticks: powers of 4 from 1 B.
	for v := minX; v <= maxX; v *= 4 {
		x := xm.pos(v)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#999"/>`+"\n",
			x, svgH-svgMarginB, x, svgH-svgMarginB+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x, svgH-svgMarginB+17, sizeLabel(int(v)))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="12">Message Length (Bytes)</text>`+"\n",
		(xm.lo+xm.hi)/2, svgH-12)

	// Y ticks.
	yLabel := "Time (us)"
	if fig.Kind == Throughput {
		yLabel = "Bandwidth (Mbps)"
	}
	for _, v := range yTicks(minY, maxY, logY) {
		y := ym.pos(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			svgMarginL, y, svgW-svgMarginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			svgMarginL-6, y, trimFloat(v))
	}
	fmt.Fprintf(&b, `<text x="18" y="%.1f" text-anchor="middle" font-size="12" transform="rotate(-90 18 %.1f)">%s</text>`+"\n",
		(ym.lo+ym.hi)/2, (ym.lo+ym.hi)/2, yLabel)

	// Curves + legend.
	for i, name := range names {
		color := seriesColors[i%len(seriesColors)]
		pts := curves[name]
		var path strings.Builder
		for j, p := range pts {
			cmd := "L"
			if j == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, xm.pos(float64(p.Bytes)), ym.pos(clampY(p.Value, ym)))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
			strings.TrimSpace(path.String()), color)
		ly := svgMarginT + 14 + i*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			svgW-svgMarginR+12, ly-4, svgW-svgMarginR+34, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", svgW-svgMarginR+40, ly, name)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func clampY(v float64, ym axisMap) float64 {
	if ym.log && v < ym.min {
		return ym.min
	}
	return v
}

func sizeLabel(v int) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%dM", v>>20)
	case v >= 1<<10:
		return fmt.Sprintf("%dK", v>>10)
	default:
		return fmt.Sprint(v)
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	s = strings.TrimSuffix(s, ".0")
	return s
}

func yTicks(min, max float64, log bool) []float64 {
	var out []float64
	if log {
		for v := min; v <= max*1.0001; v *= 4 {
			out = append(out, v)
		}
		return out
	}
	// Linear: ~6 round ticks.
	span := max - min
	step := math.Pow(10, math.Floor(math.Log10(span/5)))
	for _, m := range []float64{5, 2, 1} {
		if span/(step*m) >= 5 {
			step *= m
			break
		}
	}
	for v := math.Ceil(min/step) * step; v <= max; v += step {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}
