package replay

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenOffReturnsNil(t *testing.T) {
	s, err := Open(Config{})
	if err != nil || s != nil {
		t.Fatalf("Open with no dirs = (%v, %v), want (nil, nil)", s, err)
	}
	// A nil session must be fully inert.
	if s.Recording() || s.Replaying() || s.Diverged() != nil {
		t.Fatal("nil session reports active state")
	}
	if w := s.OpenWildcard("niodev", 0, -1, -1); w != nil {
		t.Fatal("nil session returned a wildcard decision")
	}
	if c := s.OpenClaim(); c != nil {
		t.Fatal("nil session returned a claim decision")
	}
	if err := s.Agree(1, 2); err != nil {
		t.Fatalf("nil Agree: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestNextSeqDeterministicPerStream(t *testing.T) {
	dir := t.TempDir()
	open := func() *Session {
		s, err := Open(Config{RecordDir: dir, Rank: 0, Size: 2, Device: "niodev"})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := open(), open()
	// Interleave two streams differently in each session: per-stream
	// counters mean the draws still agree stream by stream.
	var sa, sb []uint64
	sa = append(sa, a.NextSeq("niodev", 1, 0, 7), a.NextSeq("niodev", 1, 0, 7), a.NextSeq("niodev", 1, 0, 9))
	sb = append(sb, b.NextSeq("niodev", 1, 0, 9), b.NextSeq("niodev", 1, 0, 7), b.NextSeq("niodev", 1, 0, 7))
	if sa[0] != sb[1] || sa[1] != sb[2] || sa[2] != sb[0] {
		t.Fatalf("per-stream draws differ: %x vs %x", sa, sb)
	}
	if sa[0] == sa[2] {
		t.Fatal("different (ctx,tag) streams drew the same seq")
	}
	if sa[0] == sa[1] {
		t.Fatal("consecutive draws on one stream must differ")
	}
}

// record runs fn against a recording session in dir and closes it.
func record(t *testing.T, dir string, fn func(*Session)) {
	t.Helper()
	s, err := Open(Config{RecordDir: dir, Rank: 0, Size: 2, Device: "niodev", ChaosSeed: "42"})
	if err != nil {
		t.Fatal(err)
	}
	fn(s)
	if err := s.Close(); err != nil {
		t.Fatalf("record close: %v", err)
	}
}

func TestWildcardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, func(s *Session) {
		w := s.OpenWildcard("niodev", 0, -1, -1)
		if w == nil || w.Enforce {
			t.Fatalf("recording OpenWildcard = %+v, want non-enforcing", w)
		}
		if err := w.Resolve(3, 5, 0xabc); err != nil {
			t.Fatal(err)
		}
	})

	s, err := Open(Config{ReplayDir: dir, Rank: 0, Size: 2, Device: "niodev", ChaosSeed: "42"})
	if err != nil {
		t.Fatal(err)
	}
	w := s.OpenWildcard("niodev", 0, -1, -1)
	if w == nil || !w.Enforce {
		t.Fatalf("replaying OpenWildcard = %+v, want enforcing", w)
	}
	if w.Src != 3 || w.Tag != 5 || w.Seq != 0xabc {
		t.Fatalf("recorded resolution = src=%d tag=%d seq=%#x", w.Src, w.Tag, w.Seq)
	}
	if err := w.Resolve(3, 5, 0xabc); err != nil {
		t.Fatalf("matching resolve: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("clean replay close: %v", err)
	}
}

func TestWildcardDivergence(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, func(s *Session) {
		w := s.OpenWildcard("niodev", 0, -1, -1)
		if err := w.Resolve(3, 5, 0xabc); err != nil {
			t.Fatal(err)
		}
	})

	s, err := Open(Config{ReplayDir: dir, Rank: 0, Size: 2, Device: "niodev", ChaosSeed: "42"})
	if err != nil {
		t.Fatal(err)
	}
	w := s.OpenWildcard("niodev", 0, -1, -1)
	rerr := w.Resolve(3, 5, 0xdead) // wrong seq
	if !errors.Is(rerr, ErrReplayDiverged) {
		t.Fatalf("mismatched resolve = %v, want ErrReplayDiverged", rerr)
	}
	var div *DivergenceError
	if !errors.As(rerr, &div) {
		t.Fatalf("error %v is not a *DivergenceError", rerr)
	}
	if div.Op != "wildcard" {
		t.Fatalf("divergence op = %q, want wildcard", div.Op)
	}
	if s.Diverged() == nil {
		t.Fatal("session not marked diverged")
	}
	if cerr := s.Close(); !errors.Is(cerr, ErrReplayDiverged) {
		t.Fatalf("Close after divergence = %v, want ErrReplayDiverged", cerr)
	}
}

// TestClaimRoundTrip guards the claim stream's load path: the recorded
// placeholder is appended outside appendOut (to carry the arbitration
// index), so it must still stamp the stream key or replay loads an
// empty claim stream and silently never enforces.
func TestClaimRoundTrip(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, func(s *Session) {
		a, b := s.OpenClaim(), s.OpenClaim()
		if a.Idx != 0 || b.Idx != 1 {
			t.Fatalf("claim indices = %d,%d, want 0,1", a.Idx, b.Idx)
		}
		// Resolve out of posting order: the log must still bind by Idx.
		if err := b.Resolve("niodev", 2, 5, 0x20); err != nil {
			t.Fatal(err)
		}
		if err := a.Resolve("smpdev", 1, 5, 0x10); err != nil {
			t.Fatal(err)
		}
	})

	s, err := Open(Config{ReplayDir: dir, Rank: 0, Size: 2, Device: "niodev", ChaosSeed: "42"})
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.OpenClaim(), s.OpenClaim()
	if !a.Enforce || !b.Enforce {
		t.Fatalf("replaying claims = %+v / %+v, want both enforcing", a, b)
	}
	if a.Dev != "smpdev" || a.Src != 1 || a.Seq != 0x10 {
		t.Fatalf("claim 0 recorded winner = %s src=%d seq=%#x", a.Dev, a.Src, a.Seq)
	}
	if b.Dev != "niodev" || b.Src != 2 || b.Seq != 0x20 {
		t.Fatalf("claim 1 recorded winner = %s src=%d seq=%#x", b.Dev, b.Src, b.Seq)
	}
	if err := a.Resolve("smpdev", 1, 5, 0x10); err != nil {
		t.Fatalf("matching resolve: %v", err)
	}
	if err := b.Resolve("niodev", 3, 5, 0x20); !errors.Is(err, ErrReplayDiverged) {
		t.Fatalf("mismatched resolve = %v, want ErrReplayDiverged", err)
	}
}

func TestMetaMismatchFailsOpen(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, func(s *Session) {})
	if _, err := Open(Config{ReplayDir: dir, Rank: 0, Size: 4, Device: "niodev", ChaosSeed: "42"}); err == nil {
		t.Fatal("replay with wrong world size opened cleanly")
	}
	if _, err := Open(Config{ReplayDir: dir, Rank: 0, Size: 2, Device: "smpdev", ChaosSeed: "42"}); err == nil {
		t.Fatal("replay with wrong device opened cleanly")
	}
	if _, err := Open(Config{ReplayDir: dir, Rank: 0, Size: 2, Device: "niodev", ChaosSeed: "7"}); err == nil {
		t.Fatal("replay with wrong chaos seed opened cleanly")
	}
}

func TestAgreeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, func(s *Session) {
		if err := s.Agree(0, 0x3); err != nil {
			t.Fatal(err)
		}
		if err := s.Agree(0, 0x1); err != nil {
			t.Fatal(err)
		}
	})
	s, err := Open(Config{ReplayDir: dir, Rank: 0, Size: 2, Device: "niodev", ChaosSeed: "42"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Agree(0, 0x3); err != nil {
		t.Fatalf("matching agree: %v", err)
	}
	if err := s.Agree(0, 0x2); !errors.Is(err, ErrReplayDiverged) {
		t.Fatalf("mismatched agree = %v, want ErrReplayDiverged", err)
	}
}

func TestPopHoldAndTake(t *testing.T) {
	s, err := Open(Config{RecordDir: t.TempDir(), Rank: 0, Size: 1, Device: "smpdev"})
	if err != nil {
		t.Fatal(err)
	}
	k := PopKey{Dev: "smpdev", Op: "recv", Src: 1, Tag: 2, Ctx: 0, Seq: 9}
	if _, ok := s.TakeHeld(k); ok {
		t.Fatal("TakeHeld on empty session")
	}
	s.Hold(k, "first")
	s.Hold(k, "second")
	if v, ok := s.TakeHeld(k); !ok || v != "first" {
		t.Fatalf("TakeHeld = (%v,%v), want (first,true): equal keys must drain FIFO", v, ok)
	}
	if kk, v, ok := s.TakeAnyHeld(); !ok || kk != k || v != "second" {
		t.Fatalf("TakeAnyHeld = (%v,%v,%v)", kk, v, ok)
	}
	if s.Stalls() != 2 {
		t.Fatalf("Stalls = %d, want 2", s.Stalls())
	}
}

// TestLogBytesIdenticalAcrossInterleavings drives two recording
// sessions through the same decisions in different append orders and
// requires byte-identical logs — the property the CI replay job
// asserts end to end.
func TestLogBytesIdenticalAcrossInterleavings(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()

	record(t, dirA, func(s *Session) {
		a, b := s.OpenWildcard("niodev", 0, -1, 1), s.OpenWildcard("niodev", 0, -1, 2)
		_ = a.Resolve(1, 1, 0x1)
		_ = b.Resolve(2, 2, 0x2)
		_ = s.Agree(0, 7)
	})
	record(t, dirB, func(s *Session) {
		_ = s.Agree(0, 7)
		b, a := s.OpenWildcard("niodev", 0, -1, 2), s.OpenWildcard("niodev", 0, -1, 1)
		_ = b.Resolve(2, 2, 0x2)
		_ = a.Resolve(1, 1, 0x1)
	})
	ba, err := os.ReadFile(filepath.Join(dirA, LogName(0)))
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(filepath.Join(dirB, LogName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatalf("logs differ across interleavings:\nA:\n%s\nB:\n%s", ba, bb)
	}
}

func TestReadLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, func(s *Session) {
		w := s.OpenWildcard("smpdev", 0, -1, -1)
		_ = w.Resolve(1, 3, 0x10)
	})
	recs, err := ReadLog(filepath.Join(dir, LogName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want meta+wildcard", len(recs))
	}
	if recs[0].Kind != "meta" || recs[1].Kind != "wildcard" {
		t.Fatalf("kinds = %s,%s", recs[0].Kind, recs[1].Kind)
	}
	if recs[1].Src != 1 || recs[1].Tag != 3 || recs[1].Seq != 0x10 {
		t.Fatalf("wildcard record = %+v", recs[1])
	}
}
