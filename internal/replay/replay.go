// Package replay implements deterministic record/replay debugging for
// the MPJ runtime (ROADMAP "record per-rank match decisions and replay
// a failed chaos run"). A recording Session captures every
// nondeterministic decision a rank makes — wildcard (ANY_SOURCE /
// ANY_TAG) match resolutions keyed by the devcore (src,seq) stamps,
// completion-queue pop order, hybriddev dual-post claim arbitration,
// ULFM agreement outcomes and the chaos fault-plan seed — into a
// compact per-rank decision log (rank-N.decisions, JSON lines). A
// replaying Session loads such a log and hands the recorded outcomes
// back to devcore, which *enforces* them: wildcard receives are
// narrowed to the recorded (src,tag) and hold until the recorded
// message arrives, completion pops are reordered to the logged
// sequence, and any mismatch surfaces as a typed divergence error
// naming the first bad decision.
//
// The package is intentionally dependency-free (standard library only)
// so every layer — xdev, devcore, the devices, core — can import it
// without cycles. Decisions are buffered in memory per stream and
// written sorted at Close: append order across streams is racy even
// under enforcement (two threads resolve decisions concurrently), but
// the per-stream indices are deterministic, so sorting by
// (kind, stream, index) makes a record log and its replay-observed log
// byte-identical whenever the replay ran divergence-free.
package replay

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrReplayDiverged is the sentinel wrapped by every DivergenceError.
var ErrReplayDiverged = errors.New("replay: diverged from recording")

// DivergenceError reports the first decision where a replaying run
// departed from its recording.
type DivergenceError struct {
	Rank     int    // rank that observed the divergence
	Op       string // operation ("wildcard", "pop", "claim", "agree", "meta")
	Expected string // recorded outcome
	Observed string // what this run did instead
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("replay diverged: rank %d %s: expected %s, observed %s",
		e.Rank, e.Op, e.Expected, e.Observed)
}

func (e *DivergenceError) Unwrap() error { return ErrReplayDiverged }

// Record is one decision-log line. Field meaning varies by Kind:
//
//	meta     — Dev=device, Src=rank, Tag=world size, Note=chaos seed
//	wildcard — Key=pattern, Op="match"|"open", Src/Tag/Seq=resolution
//	claim    — Idx=claim index, Dev=winning core, Src/Tag/Seq=resolution
//	pop      — Idx=pop order, Dev/Op/Src/Tag/Ctx/Seq=request identity
//	agree    — Key=context stream, Val=agreed flag word
//	diverge  — Note=first-divergence report (never enforced, CI marker)
//
// No wall-clock timestamps: records must be byte-identical across runs.
type Record struct {
	Kind string `json:"k"`
	Key  string `json:"key,omitempty"`
	Idx  int    `json:"i"`
	Dev  string `json:"dev,omitempty"`
	Op   string `json:"op,omitempty"`
	Src  int64  `json:"src"`
	Tag  int64  `json:"tag"`
	Ctx  int64  `json:"ctx"`
	Seq  uint64 `json:"seq"`
	Val  int64  `json:"val,omitempty"`
	Note string `json:"note,omitempty"`
}

// kindRank fixes the on-disk section order of the sorted log.
func kindRank(kind string) int {
	switch kind {
	case "meta":
		return 0
	case "wildcard":
		return 1
	case "claim":
		return 2
	case "agree":
		return 3
	case "pop":
		return 4
	default: // diverge last
		return 5
	}
}

// PopKey identifies a completed request across runs: the creating
// core, the request direction, and the stamped envelope. Two requests
// with equal keys are interchangeable (an equivalence class the
// enforcement treats as FIFO).
type PopKey struct {
	Dev string
	Op  string // "send" | "recv"
	Src int64
	Tag int64
	Ctx int64
	Seq uint64
}

func (k PopKey) String() string {
	return fmt.Sprintf("%s %s src=%d tag=%d ctx=%d seq=%d",
		k.Dev, k.Op, k.Src, k.Tag, k.Ctx, k.Seq)
}

// Config parameterizes Open.
type Config struct {
	RecordDir string // write rank-N.decisions here ("" = no recording)
	ReplayDir string // load + enforce rank-N.decisions from here ("" = no replay)
	Rank      int
	Size      int
	Device    string
	ChaosSeed string // fault-plan seed (MPJ_CHAOS_SEED), "" if unset
}

// seqKey identifies one deterministic send-sequence stream. Scoping
// the counter to (dev,dst,ctx,tag) makes the stamped seq a function of
// the per-stream send count, so racing sender threads with
// interchangeable envelopes draw interchangeable stamps.
type seqKey struct {
	dev string
	dst uint64
	ctx int32
	tag int32
}

// Wildcard is one open wildcard-receive decision. When Enforce is set
// the replaying devcore narrows the posted pattern to (Src, Tag) and
// verifies the matched stamp against Seq.
type Wildcard struct {
	s       *Session
	out     *Record
	in      *Record
	Enforce bool
	Src     int64
	Tag     int32
	Seq     uint64
}

// Claim is one hybriddev dual-post arbitration decision. When Enforce
// is set the replaying device single-posts into core Dev with the
// pattern narrowed to (Src, Tag).
type Claim struct {
	s       *Session
	out     *Record
	in      *Record
	Idx     int
	Enforce bool
	Dev     string
	Src     int64
	Tag     int32
	Seq     uint64
}

// Session is one rank's record/replay state. A nil *Session is inert:
// every query method reports inactive. The same Session may be
// installed on several cores (hybriddev shares one across its smpdev
// and niodev halves so their merged completion stream is enforced as
// one pop sequence).
type Session struct {
	rank      int
	dir       string
	replaying bool
	timeout   time.Duration

	mu     sync.Mutex
	out    map[string][]*Record
	in     map[string][]*Record
	cursor map[string]int

	// Send-sequence streams sit under their own lock: NextSeq runs on
	// every send and must not contend with decision appends.
	seqMu sync.Mutex
	seqs  map[seqKey]uint64
	claimN int
	div    *DivergenceError
	closed bool

	// Pop enforcement: popMu serializes the designated peeker;
	// popHeld parks completions that arrived before their turn.
	popMu   sync.Mutex
	popHeld map[PopKey][]any
	heldN   atomic.Int64

	recorded atomic.Uint64
	enforced atomic.Uint64
	stalls   atomic.Uint64
	appendNS atomic.Int64
	appendN  atomic.Int64
}

// DirsFromEnv reads the MPJ_RECORD / MPJ_REPLAY environment variables.
func DirsFromEnv() (record, replay string) {
	return os.Getenv("MPJ_RECORD"), os.Getenv("MPJ_REPLAY")
}

// Open creates a Session for one rank. Returns (nil, nil) when neither
// directory is set. In replay mode the recorded meta header is checked
// against this run's topology and chaos seed; a mismatch is an
// immediate divergence.
func Open(cfg Config) (*Session, error) {
	if cfg.RecordDir == "" && cfg.ReplayDir == "" {
		return nil, nil
	}
	s := &Session{
		rank:      cfg.Rank,
		dir:       cfg.RecordDir,
		replaying: cfg.ReplayDir != "",
		timeout:   10 * time.Second,
		out:       make(map[string][]*Record),
		in:        make(map[string][]*Record),
		cursor:    make(map[string]int),
		seqs:      make(map[seqKey]uint64),
		popHeld:   make(map[PopKey][]any),
	}
	if ms, err := strconv.Atoi(os.Getenv("MPJ_REPLAY_TIMEOUT_MS")); err == nil && ms > 0 {
		s.timeout = time.Duration(ms) * time.Millisecond
	}
	meta := &Record{
		Kind: "meta", Key: "meta",
		Dev: cfg.Device, Src: int64(cfg.Rank), Tag: int64(cfg.Size),
		Note: cfg.ChaosSeed,
	}
	if s.replaying {
		if err := s.load(filepath.Join(cfg.ReplayDir, logName(cfg.Rank))); err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
		if rec := s.takeLocked("meta"); rec != nil {
			if rec.Dev != meta.Dev || rec.Tag != meta.Tag || rec.Note != meta.Note {
				return nil, s.Diverge("meta",
					fmt.Sprintf("device=%s size=%d seed=%q", rec.Dev, rec.Tag, rec.Note),
					fmt.Sprintf("device=%s size=%d seed=%q", meta.Dev, meta.Tag, meta.Note))
			}
		}
	}
	if s.dir != "" {
		if err := os.MkdirAll(s.dir, 0o777); err != nil {
			return nil, fmt.Errorf("record: %w", err)
		}
		s.out["meta"] = append(s.out["meta"], meta)
	}
	return s, nil
}

func logName(rank int) string { return fmt.Sprintf("rank-%d.decisions", rank) }

// LogName returns the decision-log filename for a rank (for tools).
func LogName(rank int) string { return logName(rank) }

func (s *Session) load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec := &Record{}
		if err := json.Unmarshal(line, rec); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		s.in[rec.Key] = append(s.in[rec.Key], rec)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, recs := range s.in {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Idx < recs[j].Idx })
	}
	return nil
}

// Recording reports whether decisions are being written.
func (s *Session) Recording() bool { return s != nil && s.dir != "" }

// Replaying reports whether recorded decisions are being enforced.
func (s *Session) Replaying() bool { return s != nil && s.replaying }

// Rank returns the owning rank.
func (s *Session) Rank() int { return s.rank }

// PopTimeout is how long a replaying Peek waits for the recorded
// completion before declaring divergence.
func (s *Session) PopTimeout() time.Duration { return s.timeout }

// takeLocked consumes the next replay record of a stream (nil when
// exhausted). Caller need not hold mu for Open-time use; concurrent
// use goes through take.
func (s *Session) takeLocked(key string) *Record {
	recs := s.in[key]
	cur := s.cursor[key]
	if cur >= len(recs) {
		return nil
	}
	s.cursor[key] = cur + 1
	return recs[cur]
}

// appendOut buffers one outgoing record on stream key, assigning its
// per-stream index, and accounts the append cost for the overhead
// gauge. Caller must hold s.mu.
func (s *Session) appendOut(key string, rec *Record) {
	t0 := time.Now()
	rec.Key = key
	rec.Idx = len(s.out[key])
	s.out[key] = append(s.out[key], rec)
	s.recorded.Add(1)
	s.appendNS.Add(time.Since(t0).Nanoseconds())
	s.appendN.Add(1)
}

// Diverge records the first divergence (sticky) and returns it. Later
// calls return the original error so every caller reports the same
// first mismatch.
func (s *Session) Diverge(op, expected, observed string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.divergeLocked(op, expected, observed)
}

func (s *Session) divergeLocked(op, expected, observed string) error {
	if s.div == nil {
		s.div = &DivergenceError{Rank: s.rank, Op: op, Expected: expected, Observed: observed}
		if s.dir != "" {
			s.out["zz-diverge"] = append(s.out["zz-diverge"], &Record{
				Kind: "diverge", Key: "zz-diverge", Note: s.div.Error(),
			})
		}
	}
	return s.div
}

// Diverged returns the sticky first divergence, or nil.
func (s *Session) Diverged() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.div == nil {
		return nil
	}
	return s.div
}

// ---- send-sequence determinism ----

// NextSeq draws the next deterministic send sequence number for the
// (dev,dst,ctx,tag) stream. The stamp composes a 32-bit envelope hash
// with the per-stream count so it stays unique per (src,dst) pair
// across concurrently pending streams — the devices' PendingKey
// protocol state requires that — while remaining a pure function of
// per-stream send order.
// envHash is fnv-32a over the little-endian bytes of (ctx, tag),
// inlined and allocation-free: NextSeq runs once per send, so this is
// the recording subsystem's hottest code (BenchmarkRecordOverhead).
func envHash(ctx, tag int32) uint32 {
	h := uint32(2166136261)
	for i := 0; i < 4; i++ {
		h = (h ^ uint32(byte(ctx>>(8*i)))) * 16777619
	}
	for i := 0; i < 4; i++ {
		h = (h ^ uint32(byte(tag>>(8*i)))) * 16777619
	}
	return h
}

func (s *Session) NextSeq(dev string, dst uint64, ctx, tag int32) uint64 {
	k := seqKey{dev: dev, dst: dst, ctx: ctx, tag: tag}
	s.seqMu.Lock()
	n := s.seqs[k] + 1
	s.seqs[k] = n
	s.seqMu.Unlock()
	return uint64(envHash(ctx, tag))<<32 | (n & 0xffffffff)
}

// ---- wildcard decisions ----

// WildcardKey builds the stream key for a posted wildcard pattern
// (src < 0 means ANY_SOURCE, tag < 0 means ANY_TAG).
func WildcardKey(dev string, ctx, tag int32, src int64) string {
	return fmt.Sprintf("w:%s:%d:%d:%d", dev, ctx, tag, src)
}

// OpenWildcard opens a decision for a newly posted wildcard receive.
// In record mode an unresolved placeholder is buffered (so stream
// indices stay aligned even for receives that never match); in replay
// mode the next recorded resolution for the same pattern stream is
// consumed and returned for enforcement.
func (s *Session) OpenWildcard(dev string, ctx, tag int32, src int64) *Wildcard {
	if s == nil {
		return nil
	}
	key := WildcardKey(dev, ctx, tag, src)
	w := &Wildcard{s: s}
	s.mu.Lock()
	if s.replaying {
		if rec := s.takeLocked(key); rec != nil && rec.Op == "match" {
			w.in = rec
			w.Enforce = true
			w.Src = rec.Src
			w.Tag = int32(rec.Tag)
			w.Seq = rec.Seq
			s.enforced.Add(1)
		}
	}
	if s.dir != "" {
		w.out = &Record{Kind: "wildcard", Op: "open", Src: -1, Tag: -1}
		s.appendOut(key, w.out)
	}
	s.mu.Unlock()
	return w
}

// Resolve stamps the matched (src,tag,seq) onto the decision and, when
// enforcing, verifies it against the recording. A non-nil error is the
// session's divergence report; the caller fails the receive with it.
func (w *Wildcard) Resolve(src int64, tag int32, seq uint64) error {
	if w == nil {
		return nil
	}
	s := w.s
	s.mu.Lock()
	if w.out != nil {
		w.out.Op = "match"
		w.out.Src = src
		w.out.Tag = int64(tag)
		w.out.Seq = seq
	}
	var err error
	if w.Enforce && (w.Src != src || w.Seq != seq) {
		err = s.divergeLocked("wildcard",
			fmt.Sprintf("src=%d tag=%d seq=%d", w.Src, w.Tag, w.Seq),
			fmt.Sprintf("src=%d tag=%d seq=%d", src, tag, seq))
	}
	s.mu.Unlock()
	return err
}

// ---- hybriddev claim decisions ----

// OpenClaim opens the next dual-post arbitration decision. Claim
// indices are assigned in IRecv posting order, which is deterministic
// per rank thread.
func (s *Session) OpenClaim() *Claim {
	if s == nil {
		return nil
	}
	c := &Claim{s: s}
	s.mu.Lock()
	c.Idx = s.claimN
	s.claimN++
	if s.replaying {
		recs := s.in["claim"]
		i := sort.Search(len(recs), func(i int) bool { return recs[i].Idx >= c.Idx })
		if i < len(recs) && recs[i].Idx == c.Idx && recs[i].Op == "match" {
			rec := recs[i]
			c.in = rec
			c.Enforce = true
			c.Dev = rec.Dev
			c.Src = rec.Src
			c.Tag = int32(rec.Tag)
			c.Seq = rec.Seq
			s.enforced.Add(1)
		}
	}
	if s.dir != "" {
		// Idx is the arbitration index (claimN), not the stream length:
		// both advance together, and the explicit index is what replay
		// binary-searches on.
		c.out = &Record{Kind: "claim", Key: "claim", Op: "open", Idx: c.Idx, Src: -1, Tag: -1}
		s.out["claim"] = append(s.out["claim"], c.out)
		s.recorded.Add(1)
	}
	s.mu.Unlock()
	return c
}

// Resolve stamps the winning core and matched envelope onto the claim
// decision, verifying against the recording when enforcing.
func (c *Claim) Resolve(dev string, src int64, tag int32, seq uint64) error {
	if c == nil {
		return nil
	}
	s := c.s
	s.mu.Lock()
	if c.out != nil {
		c.out.Op = "match"
		c.out.Dev = dev
		c.out.Src = src
		c.out.Tag = int64(tag)
		c.out.Seq = seq
	}
	var err error
	if c.Enforce && (c.Dev != dev || c.Src != src || c.Seq != seq) {
		err = s.divergeLocked("claim",
			fmt.Sprintf("idx=%d dev=%s src=%d seq=%d", c.Idx, c.Dev, c.Src, c.Seq),
			fmt.Sprintf("idx=%d dev=%s src=%d seq=%d", c.Idx, dev, src, seq))
	}
	s.mu.Unlock()
	return err
}

// ---- completion-pop order ----

// LockPops acquires the pop-enforcement mutex, serializing the
// designated peeker across every core sharing this session. Returns
// the unlock function.
func (s *Session) LockPops() func() {
	s.popMu.Lock()
	return s.popMu.Unlock
}

// NextPop peeks the next recorded pop without consuming it. ok is
// false when the recorded pop stream is exhausted (enforcement ends,
// Peek passes through). Caller holds LockPops.
func (s *Session) NextPop() (PopKey, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.in["pop"]
	cur := s.cursor["pop"]
	if !s.replaying || cur >= len(recs) {
		return PopKey{}, false
	}
	r := recs[cur]
	return PopKey{Dev: r.Dev, Op: r.Op, Src: r.Src, Tag: r.Tag, Ctx: r.Ctx, Seq: r.Seq}, true
}

// PopObserved logs the pop that this run performed and advances the
// replay cursor past it. Caller holds LockPops.
func (s *Session) PopObserved(k PopKey) {
	s.mu.Lock()
	if s.replaying {
		if cur := s.cursor["pop"]; cur < len(s.in["pop"]) {
			s.cursor["pop"] = cur + 1
		}
	}
	if s.dir != "" {
		s.appendOut("pop", &Record{
			Kind: "pop", Dev: k.Dev, Op: k.Op,
			Src: k.Src, Tag: k.Tag, Ctx: k.Ctx, Seq: k.Seq,
		})
	}
	s.mu.Unlock()
}

// Hold parks a completion that popped before its recorded turn.
// Caller holds LockPops.
func (s *Session) Hold(k PopKey, v any) {
	s.popHeld[k] = append(s.popHeld[k], v)
	s.heldN.Add(1)
	s.stalls.Add(1)
}

// TakeHeld releases the oldest held completion for k, if any. Caller
// holds LockPops.
func (s *Session) TakeHeld(k PopKey) (any, bool) {
	q := s.popHeld[k]
	if len(q) == 0 {
		return nil, false
	}
	v := q[0]
	if len(q) == 1 {
		delete(s.popHeld, k)
	} else {
		s.popHeld[k] = q[1:]
	}
	s.heldN.Add(-1)
	return v, true
}

// TakeAnyHeld drains one held completion in an arbitrary order — the
// post-divergence / shutdown escape hatch so held requests are still
// delivered. Caller holds LockPops.
func (s *Session) TakeAnyHeld() (PopKey, any, bool) {
	for k := range s.popHeld {
		v, _ := s.TakeHeld(k)
		return k, v, true
	}
	return PopKey{}, nil, false
}

// Stalls reports how many completions were held past their pop turn.
func (s *Session) Stalls() uint64 { return s.stalls.Load() }

// ---- ULFM agreement ----

// Agree records (and in replay verifies) one agreement outcome on the
// given context stream. A non-nil error is the divergence report.
func (s *Session) Agree(ctx int64, val int64) error {
	if s == nil {
		return nil
	}
	key := "agree:" + strconv.FormatInt(ctx, 10)
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.replaying {
		if rec := s.takeLocked(key); rec != nil {
			s.enforced.Add(1)
			if rec.Val != val {
				err = s.divergeLocked("agree",
					fmt.Sprintf("ctx=%d val=%d", ctx, rec.Val),
					fmt.Sprintf("ctx=%d val=%d", ctx, val))
			}
		}
	}
	if s.dir != "" {
		s.appendOut(key, &Record{Kind: "agree", Ctx: ctx, Val: val})
	}
	return err
}

// ---- counters / state ----

// Totals reports the session-lifetime decision counts.
func (s *Session) Totals() (recorded, enforced, stalls uint64) {
	return s.recorded.Load(), s.enforced.Load(), s.stalls.Load()
}

// State is the introspection snapshot exposed on /introspect and the
// Prometheus record-overhead gauge.
type State struct {
	Mode        string  `json:"mode"`
	Rank        int     `json:"rank"`
	Recorded    uint64  `json:"decisions_recorded"`
	Enforced    uint64  `json:"decisions_enforced"`
	Stalls      uint64  `json:"replay_stalls"`
	HeldPops    int64   `json:"held_pops"`
	AvgAppendNS float64 `json:"record_append_avg_ns"`
	Diverged    string  `json:"diverged,omitempty"`
}

// State snapshots the session.
func (s *Session) State() State {
	if s == nil {
		return State{Mode: "off"}
	}
	mode := "record"
	if s.replaying {
		mode = "replay"
		if s.dir != "" {
			mode = "replay+record"
		}
	}
	st := State{
		Mode:     mode,
		Rank:     s.rank,
		Recorded: s.recorded.Load(),
		Enforced: s.enforced.Load(),
		Stalls:   s.stalls.Load(),
		HeldPops: s.heldN.Load(),
	}
	if n := s.appendN.Load(); n > 0 {
		st.AvgAppendNS = float64(s.appendNS.Load()) / float64(n)
	}
	s.mu.Lock()
	if s.div != nil {
		st.Diverged = s.div.Error()
	}
	s.mu.Unlock()
	return st
}

// ---- log writing ----

// Close flushes the decision log (sorted by kind section, stream key,
// then per-stream index) and returns the sticky divergence if any.
// Close is idempotent.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		if s.div != nil {
			return s.div
		}
		return nil
	}
	s.closed = true
	if s.dir != "" {
		if err := s.writeLocked(); err != nil {
			return err
		}
	}
	if s.div != nil {
		return s.div
	}
	return nil
}

func (s *Session) writeLocked() error {
	type stream struct {
		key  string
		recs []*Record
	}
	streams := make([]stream, 0, len(s.out))
	for k, recs := range s.out {
		streams = append(streams, stream{k, recs})
	}
	sort.Slice(streams, func(i, j int) bool {
		a, b := streams[i], streams[j]
		ra, rb := kindRank(a.recs[0].Kind), kindRank(b.recs[0].Kind)
		if ra != rb {
			return ra < rb
		}
		return a.key < b.key
	})
	f, err := os.Create(filepath.Join(s.dir, logName(s.rank)))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, st := range streams {
		for _, rec := range st.recs {
			if err := enc.Encode(rec); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadLog parses a decision log for tooling (mpjtrace -decisions /
// -replay diffing).
func ReadLog(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []*Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		rec := &Record{}
		if err := json.Unmarshal(sc.Bytes(), rec); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}
