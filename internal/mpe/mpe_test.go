package mpe

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingOrderAndWrap(t *testing.T) {
	r := NewRing(16)
	if r.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", r.Cap())
	}
	for i := 0; i < 40; i++ {
		r.Put(Event{Type: SendBegin, Tag: int32(i)})
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("Snapshot len = %d, want 16", len(evs))
	}
	for i, ev := range evs {
		if want := int32(40 - 16 + i); ev.Tag != want {
			t.Errorf("event %d tag = %d, want %d", i, ev.Tag, want)
		}
	}
	if r.Overwritten() != 24 {
		t.Errorf("Overwritten = %d, want 24", r.Overwritten())
	}
	if r.Len() != 16 {
		t.Errorf("Len = %d, want 16", r.Len())
	}
}

func TestRingCapacityRounding(t *testing.T) {
	if got := NewRing(0).Cap(); got != 16 {
		t.Errorf("Cap(0) = %d, want 16", got)
	}
	if got := NewRing(100).Cap(); got != 128 {
		t.Errorf("Cap(100) = %d, want 128", got)
	}
}

// TestRingConcurrent hammers a deliberately tiny ring from many
// goroutines — the multi-goroutine workload the race detector must
// accept (ProgressionTest-style; every conformance job exercises it
// again through the instrumented devices).
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	const goroutines = 8
	const perG = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Put(Event{Type: EagerOut, Peer: int32(g), Tag: int32(i)})
			}
		}(g)
	}
	wg.Wait()
	evs := r.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("Snapshot len = %d, want 64", len(evs))
	}
	if want := uint64(goroutines*perG - 64); r.Overwritten() != want {
		t.Errorf("Overwritten = %d, want %d", r.Overwritten(), want)
	}
	// Per-writer tags must appear in increasing order: the ring must
	// not duplicate or reorder one goroutine's events.
	last := map[int32]int32{}
	for _, ev := range evs {
		if prev, ok := last[ev.Peer]; ok && ev.Tag <= prev {
			t.Fatalf("writer %d events out of order: %d after %d", ev.Peer, ev.Tag, prev)
		}
		last[ev.Peer] = ev.Tag
	}
}

// TestTracerConcurrent drives the full Recorder surface (events,
// spans, both histograms) concurrently, then snapshots — the workload
// the -race CI job runs.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(0, 256)
	var ctr Counters
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2_000; i++ {
				start := tr.Now()
				tr.Event(RecvPosted, int32(g), int32(i), 0, 64)
				tr.Span(SendEnd, int32(g), int32(i), 0, int64(i%(2<<20)), start)
				tr.Span(RecvMatched, int32(g), int32(i), 0, 512, start)
				ctr.EagerSent.Add(1)
				ctr.BytesSent.Add(64)
			}
		}(g)
	}
	wg.Wait()
	if !tr.Enabled() {
		t.Fatal("tracer not enabled")
	}
	if got := ctr.Snapshot().EagerSent; got != 16_000 {
		t.Errorf("EagerSent = %d, want 16000", got)
	}
	sh := tr.SendHist()
	var n uint64
	for _, b := range sh.Buckets {
		n += b.Count
	}
	if n != 16_000 {
		t.Errorf("send hist observations = %d, want 16000", n)
	}
	if len(tr.Events()) != 256 {
		t.Errorf("retained = %d, want 256", len(tr.Events()))
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 100 observations in the <=256B bucket: 1µs .. 100µs.
	for i := 1; i <= 100; i++ {
		h.Observe(100, int64(i)*1000)
	}
	s := h.Snapshot()
	b := s.Buckets[SizeBucket(100)]
	if b.Count != 100 {
		t.Fatalf("count = %d, want 100", b.Count)
	}
	if b.MaxNS != 100_000 {
		t.Errorf("max = %d, want 100000", b.MaxNS)
	}
	p50 := s.Percentile(SizeBucket(100), 50)
	// Upper bound from log2 buckets: true p50 is ~50µs, bound must be
	// within [50µs, 100µs] and never exceed the recorded max.
	if p50 < 50_000 || p50 > 128_000 {
		t.Errorf("p50 bound = %d, want within [50000, 128000]", p50)
	}
	if p95 := s.Percentile(SizeBucket(100), 95); p95 < p50 {
		t.Errorf("p95 %d < p50 %d", p95, p50)
	}
	if mean := s.MeanNS(SizeBucket(100)); mean != 50_500 {
		t.Errorf("mean = %d, want 50500", mean)
	}
	if got := s.Percentile(SizeBucket(1<<21), 50); got != 0 {
		t.Errorf("empty bucket percentile = %d, want 0", got)
	}
}

// TestHistogramEdgeCases pins the percentile bounds at the histogram's
// extremes: no samples, one sample, and a duration past the last log2
// bucket.
func TestHistogramEdgeCases(t *testing.T) {
	var empty Histogram
	s := empty.Snapshot()
	for _, q := range []float64{0, 50, 100} {
		if got := s.Percentile(0, q); got != 0 {
			t.Errorf("empty p%v = %d, want 0", q, got)
		}
	}
	if s.MeanNS(0) != 0 {
		t.Errorf("empty mean = %d, want 0", s.MeanNS(0))
	}

	var single Histogram
	single.Observe(100, 3000)
	s = single.Snapshot()
	for _, q := range []float64{0, 50, 95, 100} {
		// With one sample every percentile is the sample's bucket,
		// whose top is clamped to the observed max.
		if got := s.Percentile(SizeBucket(100), q); got != 3000 {
			t.Errorf("single-sample p%v = %d, want 3000 (clamped max)", q, got)
		}
	}
	if got := s.MeanNS(SizeBucket(100)); got != 3000 {
		t.Errorf("single-sample mean = %d, want 3000", got)
	}

	// A duration beyond 2^39 ns saturates into the last bucket; the
	// percentile must still come back as the recorded max, not a
	// 2^(d+1) overflow.
	var sat Histogram
	huge := int64(1) << 45 // ~10h, far past the bucket range
	sat.Observe(100, huge)
	sat.Observe(100, huge+5)
	s = sat.Snapshot()
	b := s.Buckets[SizeBucket(100)]
	if b.Counts[durBucketCount-1] != 2 {
		t.Fatalf("saturated bucket count = %d, want 2", b.Counts[durBucketCount-1])
	}
	if got := s.Percentile(SizeBucket(100), 99); got != huge+5 {
		t.Errorf("saturated p99 = %d, want %d", got, huge+5)
	}
	if b.MaxNS != huge+5 {
		t.Errorf("saturated max = %d, want %d", b.MaxNS, huge+5)
	}

	// Zero and negative durations land in bucket 0 and report its top.
	var zero Histogram
	zero.Observe(100, 0)
	zero.Observe(100, -7)
	s = zero.Snapshot()
	if got := s.Buckets[SizeBucket(100)].Count; got != 2 {
		t.Errorf("zero-dur count = %d, want 2", got)
	}
	if got := s.Percentile(SizeBucket(100), 50); got < 0 || got > 1 {
		t.Errorf("zero-dur p50 = %d, want within [0,1]", got)
	}
}

// BenchmarkEventStamping measures the traced hot path one message pays:
// a ring event plus a seq-stamped completion span (histogram observe
// included). The untraced path is the Nop recorder, benchmarked for
// contrast.
func BenchmarkEventStamping(b *testing.B) {
	b.Run("tracer", func(b *testing.B) {
		tr := NewTracer(0, 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			start := tr.Now()
			tr.EventSeq(EagerOut, 1, 0, 0, 1024, uint64(i)+1)
			tr.SpanSeq(SendEnd, 1, 0, 0, 1024, start, uint64(i)+1)
		}
	})
	b.Run("nop", func(b *testing.B) {
		var r Recorder = Nop{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			start := r.Now()
			r.EventSeq(EagerOut, 1, 0, 0, 1024, uint64(i)+1)
			r.SpanSeq(SendEnd, 1, 0, 0, 1024, start, uint64(i)+1)
		}
	})
}

func TestSizeBuckets(t *testing.T) {
	cases := []struct {
		bytes int64
		label string
	}{
		{0, "<=256B"}, {256, "<=256B"}, {257, "<=4KiB"},
		{4 << 10, "<=4KiB"}, {64 << 10, "<=64KiB"},
		{1 << 20, "<=1MiB"}, {1<<20 + 1, ">1MiB"},
	}
	for _, c := range cases {
		if got := SizeBucketLabel(SizeBucket(c.bytes)); got != c.label {
			t.Errorf("SizeBucket(%d) = %s, want %s", c.bytes, got, c.label)
		}
	}
}

func TestEventTypeTextRoundTrip(t *testing.T) {
	for typ := SendBegin; typ < eventTypeCount; typ++ {
		b, err := typ.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back EventType
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != typ {
			t.Errorf("round trip %v -> %v", typ, back)
		}
	}
	var bad EventType
	if err := bad.UnmarshalText([]byte("Nope")); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := NewTracer(3, 64)
	start := tr.Now()
	tr.Event(RecvUnexpected, 1, 7, 0, 128)
	tr.Span(SendEnd, 1, 7, 0, 128, start)
	tf := tr.File()
	tf.Device = "niodev"
	tf.Size = 4
	cs := (&Counters{}).Snapshot()
	tf.Counters = &cs

	dir := t.TempDir()
	if err := WriteFile(dir, tf); err != nil {
		t.Fatal(err)
	}
	files, err := ReadTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("got %d files", len(files))
	}
	got := files[0]
	if got.Rank != 3 || got.Device != "niodev" || got.Size != 4 {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(got.Events))
	}
	if got.Events[0].Type != RecvUnexpected || got.Events[1].Type != SendEnd {
		t.Errorf("event types: %v %v", got.Events[0].Type, got.Events[1].Type)
	}
	if got.Events[1].Dur < 0 {
		t.Errorf("span dur = %d", got.Events[1].Dur)
	}
	if got.EpochWallNS == 0 {
		t.Error("epoch wall clock missing")
	}
}

func TestReadTraceDirEmpty(t *testing.T) {
	if _, err := ReadTraceDir(t.TempDir()); err == nil {
		t.Error("expected error for empty dir")
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	mk := func(rank int, wall int64) *TraceFile {
		tr := NewTracer(rank, 64)
		s := tr.Now()
		tr.Event(EagerOut, 1-int32(rank), 0, 0, 64)
		tr.Span(SendEnd, 1-int32(rank), 0, 0, 64, s)
		tr.Span(CollectivePhase, -1, CollBarrier, 1, 0, s)
		tf := tr.File()
		tf.EpochWallNS = wall
		tf.Device = "smpdev"
		return tf
	}
	files := []*TraceFile{mk(0, 1000), mk(1, 5000)}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, files, -1); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	pids := map[float64]bool{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev["pid"].(float64)] = true
		names[ev["name"].(string)] = true
		if ph := ev["ph"].(string); ph != "M" && ph != "X" && ph != "i" {
			t.Errorf("unexpected ph %q", ph)
		}
	}
	if len(pids) < 2 {
		t.Errorf("events from %d ranks, want >= 2", len(pids))
	}
	for _, want := range []string{"EagerOut", "SendEnd", "Coll:Barrier"} {
		if !names[want] {
			t.Errorf("missing event name %q", want)
		}
	}
	// Rank filter keeps only the requested pid.
	buf.Reset()
	if err := WriteChromeTrace(&buf, files, 1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev["pid"].(float64) != 1 {
			t.Errorf("rank filter leaked pid %v", ev["pid"])
		}
	}
}

func TestSummaryOutput(t *testing.T) {
	tr := NewTracer(0, 256)
	for i := 0; i < 10; i++ {
		s := tr.Now()
		time.Sleep(time.Microsecond)
		tr.Span(SendEnd, 1, int32(i), 0, 100, s)
		tr.Span(RecvMatched, 1, int32(i), 0, 200<<10, s)
		tr.Span(CollectivePhase, -1, CollAllreduce, 1, 0, s)
	}
	tf := tr.File()
	tf.Device = "niodev"
	cs := CounterSnapshot{EagerSent: 10, Matched: 10, BytesSent: 1000}
	tf.Counters = &cs

	var buf bytes.Buffer
	if err := WriteSummary(&buf, []*TraceFile{tf}, -1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"rank 0 (niodev)",
		"eager=10",
		"send completion latency",
		"<=256B",
		"recv completion latency",
		"<=1MiB",
		"p50", "p95", "max",
		"Allreduce",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q in:\n%s", want, out)
		}
	}
	if err := WriteSummary(&buf, []*TraceFile{tf}, 5); err == nil {
		t.Error("expected error for absent rank filter")
	}
}

func TestNopRecorder(t *testing.T) {
	var r Recorder = Nop{}
	if r.Enabled() {
		t.Error("Nop enabled")
	}
	r.Event(SendBegin, 0, 0, 0, 0)
	r.Span(SendEnd, 0, 0, 0, 0, r.Now())
	if RecorderOf(42) != (Nop{}) {
		t.Error("RecorderOf non-instrumented != Nop")
	}
}

func TestCounterSnapshotAdd(t *testing.T) {
	a := CounterSnapshot{EagerSent: 1, RndvSent: 2, BytesSent: 3, Unexpected: 4, Matched: 5}
	b := a.Add(a)
	if b.EagerSent != 2 || b.RndvSent != 4 || b.BytesSent != 6 || b.Unexpected != 8 || b.Matched != 10 {
		t.Errorf("Add = %+v", b)
	}
}
