package mpe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// syntheticTraces builds a 3-rank trace set with known ground truth:
// rank 1's clock runs +500ns ahead of rank 0's and its epoch starts
// 200ns later (so wall alignment and offset estimation are both
// exercised); rank 2 exchanges no traffic at all. Messages (all true
// wire latency 1000ns, so the symmetrized estimate is exact):
//
//	seq 1  rank0->rank1  plain (posted receive, sender first)
//	seq 1  rank1->rank0  the reverse direction enabling the estimate
//	seq 2  rank0->rank1  late sender: receive posted before send began
//	seq 3  rank0->rank1  late receiver: arrival was unexpected
//	seq 4  rank0->rank1  unmatched: no receiver-side span
//
// plus one Barrier CollectivePhase on ranks 0 and 1 with known skew.
func syntheticTraces() []*TraceFile {
	// Rank 1 local time = (true time) + 500 (clock error) - 200 (epoch
	// wall offset, re-added by the merge's wall alignment).
	r1 := func(trueNS int64) int64 { return trueNS + 500 - 200 }
	rank0 := &TraceFile{
		Rank: 0, Size: 3, Device: "test", EpochWallNS: 1_000_000,
		Events: []Event{
			{Type: SendEnd, Peer: 1, Tag: 1, Ctx: 1, Bytes: 100, At: 1000, Dur: 100, Seq: 1},
			{Type: RecvMatched, Peer: 1, Tag: 2, Ctx: 1, Bytes: 100, At: 3900, Dur: 100, Seq: 1},
			{Type: SendEnd, Peer: 1, Tag: 3, Ctx: 1, Bytes: 100, At: 5000, Dur: 100, Seq: 2},
			{Type: SendEnd, Peer: 1, Tag: 4, Ctx: 1, Bytes: 5000, At: 7000, Dur: 100, Seq: 3},
			{Type: SendEnd, Peer: 1, Tag: 5, Ctx: 1, Bytes: 100, At: 9000, Dur: 100, Seq: 4},
			{Type: CollectivePhase, Peer: -1, Tag: CollBarrier, Ctx: 1, At: 9000, Dur: 500},
		},
	}
	rank1 := &TraceFile{
		Rank: 1, Size: 3, Device: "test", EpochWallNS: 1_000_200,
		Events: []Event{
			// seq 1 from rank 0: posted at true 1900, delivered at 2000.
			{Type: RecvMatched, Peer: 0, Tag: 1, Ctx: 1, Bytes: 100, At: r1(1900), Dur: 100, Seq: 1},
			// seq 1 to rank 0: began at true 3000.
			{Type: SendEnd, Peer: 0, Tag: 2, Ctx: 1, Bytes: 100, At: r1(3000), Dur: 100, Seq: 1},
			// seq 2: posted at true 4800 (before the send's 5000),
			// delivered at 6000.
			{Type: RecvMatched, Peer: 0, Tag: 3, Ctx: 1, Bytes: 100, At: r1(4800), Dur: 1200, Seq: 2},
			// seq 3: arrived unexpected, then matched late.
			{Type: RecvUnexpected, Peer: 0, Tag: 4, Ctx: 1, Bytes: 5000, At: r1(7500), Seq: 3},
			{Type: RecvMatched, Peer: 0, Tag: 4, Ctx: 1, Bytes: 5000, At: r1(7800), Dur: 200, Seq: 3},
			// Barrier entered at true 9200, left at 9700.
			{Type: CollectivePhase, Peer: -1, Tag: CollBarrier, Ctx: 1, At: r1(9200), Dur: 500},
		},
	}
	rank2 := &TraceFile{Rank: 2, Size: 3, Device: "test", EpochWallNS: 1_000_000}
	return []*TraceFile{rank0, rank1, rank2}
}

func TestMergeTracesMatchingAndOffsets(t *testing.T) {
	m, err := MergeTraces(syntheticTraces())
	if err != nil {
		t.Fatal(err)
	}
	if m.Sends != 5 || m.Recvs != 4 {
		t.Fatalf("sends/recvs = %d/%d, want 5/4", m.Sends, m.Recvs)
	}
	if len(m.Matched) != 4 || m.UnmatchedSends != 1 {
		t.Fatalf("matched=%d unmatched=%d, want 4/1", len(m.Matched), m.UnmatchedSends)
	}
	if got := m.MatchRate(); got != 0.8 {
		t.Errorf("MatchRate = %v, want 0.8", got)
	}

	// The symmetrized minimum-delta estimate recovers rank 1's +500ns
	// clock error exactly (equal true latency in both directions).
	if m.OffsetNS[0] != 0 || !m.OffsetKnown[0] {
		t.Errorf("rank 0 offset = %d known=%v, want 0/true", m.OffsetNS[0], m.OffsetKnown[0])
	}
	if m.OffsetNS[1] != -500 || !m.OffsetKnown[1] {
		t.Errorf("rank 1 offset = %d known=%v, want -500/true", m.OffsetNS[1], m.OffsetKnown[1])
	}
	if m.OffsetNS[2] != 0 || m.OffsetKnown[2] {
		t.Errorf("rank 2 offset = %d known=%v, want 0/false (no traffic)", m.OffsetNS[2], m.OffsetKnown[2])
	}

	// Matched is sorted by corrected send begin: seq1 r0, seq1 r1,
	// seq2, seq3.
	byTag := map[int32]MatchedMessage{}
	for _, mm := range m.Matched {
		byTag[mm.Tag] = mm
	}
	first := byTag[1]
	if first.Src != 0 || first.Dst != 1 || first.Seq != 1 {
		t.Fatalf("first matched = %+v", first)
	}
	if first.SendBeginNS != 1000 || first.RecvDeliverNS != 2000 || first.LatencyNS != 1000 {
		t.Errorf("seq1 corrected times: begin=%d deliver=%d latency=%d, want 1000/2000/1000",
			first.SendBeginNS, first.RecvDeliverNS, first.LatencyNS)
	}
	if first.LateSender || first.LateReceiver {
		t.Errorf("seq1 classified late: %+v", first)
	}
	if late := byTag[3]; !late.LateSender || late.LateReceiver {
		t.Errorf("seq2 want late sender: %+v", late)
	}
	if unexp := byTag[4]; !unexp.LateReceiver || unexp.LateSender {
		t.Errorf("seq3 want late receiver: %+v", unexp)
	}

	// One Barrier instance across two ranks with the known 200ns
	// corrected enter skew and 700ns span.
	if len(m.Collectives) != 1 {
		t.Fatalf("collectives = %d, want 1", len(m.Collectives))
	}
	op := m.Collectives[0]
	if op.Kind != CollBarrier || op.Ranks != 2 {
		t.Fatalf("collective = %+v", op)
	}
	if op.EnterSkewNS != 200 || op.SpanNS != 700 || op.MeanDurNS != 500 {
		t.Errorf("skew/span/mean = %d/%d/%d, want 200/700/500", op.EnterSkewNS, op.SpanNS, op.MeanDurNS)
	}
	if op.LastEnterRank != 1 || op.LastExitRank != 1 {
		t.Errorf("last-in/out = %d/%d, want 1/1", op.LastEnterRank, op.LastExitRank)
	}
}

func TestMergeTracesEmpty(t *testing.T) {
	if _, err := MergeTraces(nil); err == nil {
		t.Error("expected error for no files")
	}
	// Files with no seq-stamped events still merge (rate 1.0).
	m, err := MergeTraces([]*TraceFile{{Rank: 0, EpochWallNS: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.MatchRate() != 1.0 {
		t.Errorf("MatchRate with no sends = %v, want 1.0", m.MatchRate())
	}
}

func TestMergedChromeFlowEvents(t *testing.T) {
	m, err := MergeTraces(syntheticTraces())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteMergedChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			ID  int64  `json:"id"`
			BP  string `json:"bp"`
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	starts := map[int64]bool{}
	finishes := map[int64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			starts[ev.ID] = true
		case "f":
			finishes[ev.ID] = true
			if ev.BP != "e" {
				t.Errorf("flow finish without bp=e: %+v", ev)
			}
		}
	}
	if len(starts) != len(m.Matched) || len(finishes) != len(m.Matched) {
		t.Fatalf("flow pairs = %d starts / %d finishes, want %d each",
			len(starts), len(finishes), len(m.Matched))
	}
	for id := range starts {
		if !finishes[id] {
			t.Errorf("flow id %d has no finish", id)
		}
	}
}

// TestChromeExportDeterministic re-exports the same traces and demands
// byte-identical output — the exporter sorts by (timestamp, rank, seq)
// rather than leaking map iteration order.
func TestChromeExportDeterministic(t *testing.T) {
	files := syntheticTraces()
	export := func() []byte {
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, files, -1); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	mergedExport := func() []byte {
		m, err := MergeTraces(files)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteMergedChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Error("plain chrome export is not deterministic")
	}
	ma, mb := mergedExport(), mergedExport()
	if !bytes.Equal(ma, mb) {
		t.Error("merged chrome export is not deterministic")
	}
}

func TestMergeReportOutput(t *testing.T) {
	m, err := MergeTraces(syntheticTraces())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"matched 4/5 sends (80.0%)",
		"rank 1: -500ns",
		"no bidirectional traffic",
		"per-message wire latency",
		"late senders (receiver waited): 1/4",
		"late receivers (unexpected arrival): 1/4",
		"collective critical path",
		"Barrier",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q in:\n%s", want, out)
		}
	}
}
