package mpe

import "time"

// DefaultRingCapacity is the per-rank event capacity when the caller
// doesn't choose one (64Ki events ≈ 4 MiB).
const DefaultRingCapacity = 1 << 16

// Tracer is the enabled Recorder: one per rank, shared by every layer
// of that rank's stack (device, mpjdev, core). Events go into an
// overwriting Ring; send and receive completion spans additionally
// feed latency histograms.
//
// Timestamps are monotonic nanoseconds since the tracer's epoch
// (time.Since is monotonic-clock based in Go), with the epoch's wall
// clock kept alongside so the merge step can align ranks — including
// ranks from separate OS processes — on a shared timeline.
type Tracer struct {
	rank      int
	epoch     time.Time
	epochWall int64 // UnixNano of epoch
	ring      *Ring
	sendHist  Histogram
	recvHist  Histogram
	rmaHist   Histogram
	recoHist  Histogram
}

// NewTracer returns an enabled tracer for the given rank holding up to
// capacity events (DefaultRingCapacity if capacity <= 0).
func NewTracer(rank, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	now := time.Now()
	return &Tracer{
		rank:      rank,
		epoch:     now,
		epochWall: now.UnixNano(),
		ring:      NewRing(capacity),
	}
}

// Rank returns the rank this tracer records for.
func (t *Tracer) Rank() int { return t.rank }

// Enabled reports true: events are being kept.
func (t *Tracer) Enabled() bool { return true }

// Now returns nanoseconds since the tracer's epoch on the monotonic
// clock.
func (t *Tracer) Now() int64 { return int64(time.Since(t.epoch)) }

// Event records an instantaneous event.
func (t *Tracer) Event(typ EventType, peer, tag, ctx int32, bytes int64) {
	t.ring.Put(Event{Type: typ, Peer: peer, Tag: tag, Ctx: ctx, Bytes: bytes, At: t.Now()})
}

// EventSeq records an instantaneous event stamped with the message's
// per-sender sequence number.
func (t *Tracer) EventSeq(typ EventType, peer, tag, ctx int32, bytes int64, seq uint64) {
	t.ring.Put(Event{Type: typ, Peer: peer, Tag: tag, Ctx: ctx, Bytes: bytes, At: t.Now(), Seq: seq})
}

// Span records an event that began at start (from Now) and finished
// now. SendEnd and RecvMatched spans also feed the latency histograms.
func (t *Tracer) Span(typ EventType, peer, tag, ctx int32, bytes int64, start int64) {
	t.SpanSeq(typ, peer, tag, ctx, bytes, start, 0)
}

// SpanSeq is Span stamped with the message's per-sender sequence
// number — the correlation key cmd/mpjtrace -merge joins rank files on.
func (t *Tracer) SpanSeq(typ EventType, peer, tag, ctx int32, bytes int64, start int64, seq uint64) {
	end := t.Now()
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	t.ring.Put(Event{Type: typ, Peer: peer, Tag: tag, Ctx: ctx, Bytes: bytes, At: start, Dur: dur, Seq: seq})
	switch typ {
	case SendEnd:
		t.sendHist.Observe(bytes, dur)
	case RecvMatched:
		t.recvHist.Observe(bytes, dur)
	case RmaFence:
		t.rmaHist.Observe(bytes, dur)
	case Recovered:
		t.recoHist.Observe(bytes, dur)
	}
}

// SendHist returns a snapshot of the send-completion latency
// histogram.
func (t *Tracer) SendHist() HistSnapshot { return t.sendHist.Snapshot() }

// RecvHist returns a snapshot of the receive-completion latency
// histogram.
func (t *Tracer) RecvHist() HistSnapshot { return t.recvHist.Snapshot() }

// RmaHist returns a snapshot of the one-sided fence epoch latency
// histogram (RmaFence span durations, bucketed by bytes drained).
func (t *Tracer) RmaHist() HistSnapshot { return t.rmaHist.Snapshot() }

// RecoveryHist returns a snapshot of the fault-recovery latency
// histogram (Recovered span durations — the Revoke-to-Shrink window —
// bucketed by the number of ranks lost).
func (t *Tracer) RecoveryHist() HistSnapshot { return t.recoHist.Snapshot() }

// Events returns the retained events oldest-first. Only valid at
// quiescence (see Ring.Snapshot).
func (t *Tracer) Events() []Event { return t.ring.Snapshot() }

// Overwritten reports how many events were lost to ring wrap.
func (t *Tracer) Overwritten() uint64 { return t.ring.Overwritten() }
