// Package mpe is the event tracing and metrics subsystem of this MPJ
// Express reproduction — the analogue of the MPE-style instrumentation
// layer the original MPJ Express later grew for its parallel debugger
// and profiler (Akhtar & Shafi, arXiv:1408.6347). It gives every layer
// of the stack a common, low-overhead way to record what the progress
// engine actually did:
//
//   - the device layer records protocol state transitions (eager data
//     out, rendezvous RTS/RTR/data, matched vs unexpected arrivals);
//   - the mpjdev layer records request lifecycle and the park/wake of
//     the peek-based Waitany;
//   - the core layer records collective phases, tagged with the
//     communicator's collective context id.
//
// Events land in a per-rank, lock-free-ish overwriting ring buffer
// (Ring); send/receive completion latencies additionally feed
// per-message-size-bucket histograms (Histogram); devices aggregate
// protocol activity in shared atomic Counters. When tracing is off the
// layers hold a Nop Recorder, whose methods are empty — the entire
// cost of the disabled subsystem is a predicted-not-taken Enabled()
// check on the hot paths.
//
// A finished rank serializes its view as a TraceFile (one JSON file
// per rank); cmd/mpjtrace merges the per-rank files on a common
// wall-clock timeline and renders them as a Chrome trace_event JSON
// (chrome://tracing, https://ui.perfetto.dev) or a plain-text summary.
//
// The package is stdlib-only and sits below every other package in the
// repository: xdev carries a Recorder in its Config, so any device can
// be instrumented without new dependencies.
package mpe

import "fmt"

// EventType identifies what happened. The set covers the protocol and
// request machinery of the paper's Figs. 3–8 plus the Waitany queue of
// §IV-E.1 and the collective phases of the high level.
type EventType uint8

// Event types recorded by the instrumented layers.
const (
	// EvNone is the zero EventType; it is never recorded.
	EvNone EventType = iota
	// SendBegin marks entry into a device send operation.
	SendBegin
	// SendEnd is a span from SendBegin to send-request completion.
	SendEnd
	// RecvPosted marks a receive joining the posted-receive set.
	RecvPosted
	// RecvMatched is a span from RecvPosted to delivery into the
	// user buffer.
	RecvMatched
	// RecvUnexpected marks an arrival (eager payload or rendezvous
	// RTS envelope) parked in the unexpected queue.
	RecvUnexpected
	// EagerOut marks eager-protocol data written to the wire.
	EagerOut
	// RendezvousRTS marks a READY_TO_SEND control message sent.
	RendezvousRTS
	// RendezvousRTR marks a READY_TO_RECV answer sent.
	RendezvousRTR
	// RendezvousData marks rendezvous payload written by the forked
	// writer goroutine.
	RendezvousData
	// CollectivePhase is a span covering one collective call; the
	// event's Tag carries the collective kind (see CollName) and its
	// Ctx the communicator's collective context id.
	CollectivePhase
	// CollectiveAlgo marks the algorithm a collective call selected:
	// Tag carries the collective kind (CollName), Peer the algorithm
	// code (AlgoName), Bytes the payload size the decision was made
	// from, and Ctx the collective context id.
	CollectiveAlgo
	// WaitanyPark marks a Waitany caller blocking on the device's
	// peek queue.
	WaitanyPark
	// WaitanyWake is a span from WaitanyPark to wake-up.
	WaitanyWake
	// PeerLost marks a peer declared dead after a connection-level
	// failure; Peer carries the dead slot.
	PeerLost
	// FrameCorrupt marks a wire frame rejected by the integrity check;
	// Peer carries the sending slot.
	FrameCorrupt
	// Aborted marks a job abort, local or remote; Tag carries the
	// abort code and Peer the initiating slot.
	Aborted
	// RmaPut marks a one-sided Put issued at the origin; Peer carries
	// the target rank, Bytes the payload length.
	RmaPut
	// RmaGet marks a one-sided Get issued at the origin.
	RmaGet
	// RmaAcc marks a one-sided Accumulate issued at the origin.
	RmaAcc
	// RmaFence is a span covering one Fence epoch-synchronization call;
	// its duration feeds the epoch latency histogram.
	RmaFence
	// Revoked marks a matching context poisoned (ULFM revocation),
	// locally or by a peer's broadcast; Ctx carries the context and
	// Peer the rank the revocation arrived from (-1 when local).
	Revoked
	// Recovered is a span covering one Revoke→Shrink recovery sequence
	// at the core layer; its duration feeds the recovery latency
	// histogram. Ctx carries the revoked communicator's context.
	Recovered

	eventTypeCount
)

var eventNames = [eventTypeCount]string{
	EvNone:          "None",
	SendBegin:       "SendBegin",
	SendEnd:         "SendEnd",
	RecvPosted:      "RecvPosted",
	RecvMatched:     "RecvMatched",
	RecvUnexpected:  "RecvUnexpected",
	EagerOut:        "EagerOut",
	RendezvousRTS:   "RendezvousRTS",
	RendezvousRTR:   "RendezvousRTR",
	RendezvousData:  "RendezvousData",
	CollectivePhase: "CollectivePhase",
	CollectiveAlgo:  "CollectiveAlgo",
	WaitanyPark:     "WaitanyPark",
	WaitanyWake:     "WaitanyWake",
	PeerLost:        "PeerLost",
	FrameCorrupt:    "FrameCorrupt",
	Aborted:         "Aborted",
	RmaPut:          "RmaPut",
	RmaGet:          "RmaGet",
	RmaAcc:          "RmaAcc",
	RmaFence:        "RmaFence",
	Revoked:         "Revoked",
	Recovered:       "Recovered",
}

// String returns the event type's name.
func (t EventType) String() string {
	if int(t) < len(eventNames) && eventNames[t] != "" {
		return eventNames[t]
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// MarshalText serializes the type as its name (used by the JSON trace
// files, keeping them human-readable).
func (t EventType) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses an event type name.
func (t *EventType) UnmarshalText(b []byte) error {
	s := string(b)
	for i, n := range eventNames {
		if n == s {
			*t = EventType(i)
			return nil
		}
	}
	return fmt.Errorf("mpe: unknown event type %q", s)
}

// Event is one timestamped record in a rank's ring.
type Event struct {
	// Type says what happened.
	Type EventType `json:"t"`
	// Peer is the peer process slot, or -1 when not applicable
	// (wildcard receives, collective phases, Waitany).
	Peer int32 `json:"peer"`
	// Tag is the message tag. For CollectivePhase events it carries
	// the collective kind instead (see CollName).
	Tag int32 `json:"tag"`
	// Ctx is the matching context id, or -1 when not applicable.
	Ctx int32 `json:"ctx"`
	// Bytes is the wire payload length involved, if any.
	Bytes int64 `json:"n,omitempty"`
	// At is the event (or span start) time in nanoseconds since the
	// recording tracer's epoch.
	At int64 `json:"at"`
	// Dur is the span duration in nanoseconds; 0 for instantaneous
	// events.
	Dur int64 `json:"dur,omitempty"`
	// Seq is the message's protocol sequence number, unique per sending
	// rank (drawn from the sender core's counter), or 0 when the event
	// is not tied to one message. Together with the sending rank it
	// identifies one message across rank trace files: the merge step
	// (cmd/mpjtrace -merge) joins a SendEnd span on the sender with the
	// RecvMatched span carrying the same (Peer=sender, Seq) on the
	// receiver.
	Seq uint64 `json:"seq,omitempty"`
}

// Recorder is the hook interface the instrumented layers record
// through. Implementations must be safe for concurrent use; all
// methods must be cheap enough for protocol hot paths.
//
// Layers guard their instrumentation with Enabled() so that argument
// marshalling (timestamps, slot lookups) is not paid when tracing is
// off.
type Recorder interface {
	// Enabled reports whether events are being kept.
	Enabled() bool
	// Now returns the recorder's clock: nanoseconds since its epoch.
	Now() int64
	// Event records an instantaneous event.
	Event(t EventType, peer, tag, ctx int32, bytes int64)
	// Span records an event that began at start (a value previously
	// obtained from Now) and finished now.
	Span(t EventType, peer, tag, ctx int32, bytes int64, start int64)
	// EventSeq is Event carrying the message's per-sender sequence
	// number, the cross-rank correlation key.
	EventSeq(t EventType, peer, tag, ctx int32, bytes int64, seq uint64)
	// SpanSeq is Span carrying the message's per-sender sequence
	// number.
	SpanSeq(t EventType, peer, tag, ctx int32, bytes int64, start int64, seq uint64)
}

// Nop is the disabled Recorder: every method is an empty shell the
// compiler can see through. It is the value layers hold when tracing
// is off.
type Nop struct{}

// Enabled reports false: no events are kept.
func (Nop) Enabled() bool { return false }

// Now returns 0.
func (Nop) Now() int64 { return 0 }

// Event discards the event.
func (Nop) Event(EventType, int32, int32, int32, int64) {}

// Span discards the span.
func (Nop) Span(EventType, int32, int32, int32, int64, int64) {}

// EventSeq discards the event.
func (Nop) EventSeq(EventType, int32, int32, int32, int64, uint64) {}

// SpanSeq discards the span.
func (Nop) SpanSeq(EventType, int32, int32, int32, int64, int64, uint64) {}

// Instrumented is implemented by devices that expose their Recorder,
// letting upper layers (mpjdev, core) record into the same per-rank
// stream the device records into.
type Instrumented interface {
	Recorder() Recorder
}

// RecorderOf returns v's Recorder if v is Instrumented (and its
// recorder non-nil), and Nop otherwise.
func RecorderOf(v any) Recorder {
	if ins, ok := v.(Instrumented); ok {
		if r := ins.Recorder(); r != nil {
			return r
		}
	}
	return Nop{}
}

// StatsSource is implemented by devices that expose aggregated
// activity counters (all in-tree devices do).
type StatsSource interface {
	Stats() CounterSnapshot
}

// DefaultTraceDir is where traced jobs write per-rank trace files when
// no directory is configured, and where cmd/mpjtrace looks by default.
const DefaultTraceDir = "mpjtrace-out"

// Collective kinds carried in the Tag of CollectivePhase events.
const (
	CollBarrier int32 = iota + 1
	CollBcast
	CollGather
	CollGatherv
	CollScatter
	CollScatterv
	CollAllgather
	CollAllgatherv
	CollAlltoall
	CollAlltoallv
	CollReduce
	CollAllreduce
	CollReduceScatter
	CollScan
)

var collNames = map[int32]string{
	CollBarrier:       "Barrier",
	CollBcast:         "Bcast",
	CollGather:        "Gather",
	CollGatherv:       "Gatherv",
	CollScatter:       "Scatter",
	CollScatterv:      "Scatterv",
	CollAllgather:     "Allgather",
	CollAllgatherv:    "Allgatherv",
	CollAlltoall:      "Alltoall",
	CollAlltoallv:     "Alltoallv",
	CollReduce:        "Reduce",
	CollAllreduce:     "Allreduce",
	CollReduceScatter: "ReduceScatter",
	CollScan:          "Scan",
}

// CollName names a collective kind code (the Tag of a CollectivePhase
// event).
func CollName(kind int32) string {
	if n, ok := collNames[kind]; ok {
		return n
	}
	return fmt.Sprintf("Collective(%d)", kind)
}

// Collective algorithm codes carried in the Peer of CollectiveAlgo
// events: which variant the size × comm-size × commutativity selection
// table picked for one call.
const (
	// AlgoStoreForward is the unsegmented baseline: a blocking tree or
	// linear exchange that forwards whole messages.
	AlgoStoreForward int32 = iota + 1
	// AlgoPipelined is a segmented tree: each segment is forwarded (or
	// folded) as soon as it arrives, overlapping transfer levels.
	AlgoPipelined
	// AlgoRecursiveDoubling is the log2(n)-round allreduce exchange.
	AlgoRecursiveDoubling
	// AlgoReduceScatterAllgather is the Rabenseifner-style large-message
	// allreduce: recursive-halving reduce-scatter + recursive-doubling
	// allgather.
	AlgoReduceScatterAllgather
	// AlgoRing is the bandwidth-optimal n-1 step neighbour exchange.
	AlgoRing
	// AlgoBinomialGather is the small-block binomial gather tree.
	AlgoBinomialGather
	// AlgoStreamedFold is the non-commutative reduce at the root: a
	// bounded window of segment receives folded in rank order.
	AlgoStreamedFold
	// AlgoHierarchical is the topology-aware two-level variant: an
	// intra-node phase among the ranks of each node (shared-memory
	// traffic on the hybrid device) bracketing an inter-node phase
	// among the node leaders (one wire message per node instead of
	// one per rank).
	AlgoHierarchical
)

var algoNames = map[int32]string{
	AlgoStoreForward:           "store-forward",
	AlgoPipelined:              "pipelined",
	AlgoRecursiveDoubling:      "recursive-doubling",
	AlgoReduceScatterAllgather: "reduce-scatter-allgather",
	AlgoRing:                   "ring",
	AlgoBinomialGather:         "binomial-gather",
	AlgoStreamedFold:           "streamed-fold",
	AlgoHierarchical:           "hierarchical",
}

// AlgoName names a collective algorithm code (the Peer of a
// CollectiveAlgo event).
func AlgoName(code int32) string {
	if n, ok := algoNames[code]; ok {
		return n
	}
	return fmt.Sprintf("Algo(%d)", code)
}

// CounterSource is implemented by devices that expose their live
// Counters, letting upper layers (the core collectives) account
// activity into the same per-rank counters the device reports through
// Stats.
type CounterSource interface {
	CountersRef() *Counters
}

// discardCounters absorbs counter traffic for devices that do not
// expose theirs; the values are never read.
var discardCounters Counters

// CountersOf returns v's live Counters if v is a CounterSource (and
// the reference non-nil), and a shared discard instance otherwise.
func CountersOf(v any) *Counters {
	if cs, ok := v.(CounterSource); ok {
		if c := cs.CountersRef(); c != nil {
			return c
		}
	}
	return &discardCounters
}
