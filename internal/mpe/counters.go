package mpe

import "sync/atomic"

// Counters aggregates a device's protocol activity with atomic fields,
// shared by all devices (superseding the niodev-private statCounters).
// Send-side counters are incremented by the sending device; Unexpected
// and Matched by the device on whose side the matching happened; the
// failure counters by whichever side detected the failure.
type Counters struct {
	// EagerSent counts sends that took the eager protocol.
	EagerSent atomic.Uint64
	// RndvSent counts sends that took the rendezvous protocol.
	RndvSent atomic.Uint64
	// BytesSent totals payload bytes handed to the transport.
	BytesSent atomic.Uint64
	// Unexpected counts arrivals parked with no posted receive.
	Unexpected atomic.Uint64
	// Matched counts arrivals that found a posted receive.
	Matched atomic.Uint64
	// PeersLost counts peer processes declared dead after a
	// connection-level failure (read/write error, EOF, corruption).
	PeersLost atomic.Uint64
	// FramesCorrupt counts wire frames rejected by the integrity check
	// (niodev's negotiated CRC32).
	FramesCorrupt atomic.Uint64
	// RequestsFailed counts requests completed with an error (peer
	// death, device close, abort, corruption).
	RequestsFailed atomic.Uint64
	// CollSegsSent counts pipeline segments sent by segmented
	// collectives (incremented by the core layer).
	CollSegsSent atomic.Uint64
	// CollSegsRecv counts pipeline segments received by segmented
	// collectives (incremented by the core layer).
	CollSegsRecv atomic.Uint64
	// RmaPuts, RmaGets and RmaAccs count one-sided Put/Get/Accumulate
	// operations issued by this rank as origin (incremented by
	// internal/rma, once per user call regardless of segmentation).
	RmaPuts atomic.Uint64
	RmaGets atomic.Uint64
	RmaAccs atomic.Uint64
	// RmaBytes totals the payload bytes moved by one-sided operations
	// this rank originated.
	RmaBytes atomic.Uint64
	// SendBatches counts wire writes issued by the asynchronous send
	// engine (each one syscall, covering one coalesced batch), and
	// FramesCoalesced the frames those batches carried — their ratio is
	// the frames-per-syscall batching factor. SendBatchBytes totals the
	// wire bytes (headers + payload) of those batches, so
	// SendBatchBytes/SendBatches is the bytes-per-syscall ratio.
	SendBatches     atomic.Uint64
	FramesCoalesced atomic.Uint64
	SendBatchBytes  atomic.Uint64
	// CommRevokes, CommShrinks and CommAgrees count fault-tolerance
	// operations issued by this rank (incremented by the core layer):
	// communicator revocations initiated locally, successful Shrink
	// calls, and completed agreement rounds.
	CommRevokes atomic.Uint64
	CommShrinks atomic.Uint64
	CommAgrees  atomic.Uint64
	// DecisionsRecorded counts nondeterministic decisions written to
	// the record/replay decision log (wildcard resolutions, completion
	// pops, claim arbitrations); DecisionsEnforced counts recorded
	// decisions a replaying run enforced; ReplayStalls counts
	// completions held past their pop because the recording ordered an
	// earlier one (internal/replay).
	DecisionsRecorded atomic.Uint64
	DecisionsEnforced atomic.Uint64
	ReplayStalls      atomic.Uint64
}

// Snapshot returns a plain-value copy of the counters.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		EagerSent:       c.EagerSent.Load(),
		RndvSent:        c.RndvSent.Load(),
		BytesSent:       c.BytesSent.Load(),
		Unexpected:      c.Unexpected.Load(),
		Matched:         c.Matched.Load(),
		PeersLost:       c.PeersLost.Load(),
		FramesCorrupt:   c.FramesCorrupt.Load(),
		RequestsFailed:  c.RequestsFailed.Load(),
		CollSegsSent:    c.CollSegsSent.Load(),
		CollSegsRecv:    c.CollSegsRecv.Load(),
		RmaPuts:         c.RmaPuts.Load(),
		RmaGets:         c.RmaGets.Load(),
		RmaAccs:         c.RmaAccs.Load(),
		RmaBytes:        c.RmaBytes.Load(),
		SendBatches:     c.SendBatches.Load(),
		FramesCoalesced: c.FramesCoalesced.Load(),
		SendBatchBytes:  c.SendBatchBytes.Load(),
		CommRevokes:     c.CommRevokes.Load(),
		CommShrinks:     c.CommShrinks.Load(),
		CommAgrees:      c.CommAgrees.Load(),

		DecisionsRecorded: c.DecisionsRecorded.Load(),
		DecisionsEnforced: c.DecisionsEnforced.Load(),
		ReplayStalls:      c.ReplayStalls.Load(),
	}
}

// CounterSnapshot is a point-in-time copy of Counters. Field names
// keep compatibility with the original niodev.Stats so existing
// assertions keep working unchanged.
type CounterSnapshot struct {
	EagerSent       uint64 `json:"eagerSent"`
	RndvSent        uint64 `json:"rndvSent"`
	BytesSent       uint64 `json:"bytesSent"`
	Unexpected      uint64 `json:"unexpected"`
	Matched         uint64 `json:"matched"`
	PeersLost       uint64 `json:"peersLost,omitempty"`
	FramesCorrupt   uint64 `json:"framesCorrupt,omitempty"`
	RequestsFailed  uint64 `json:"requestsFailed,omitempty"`
	CollSegsSent    uint64 `json:"collSegsSent,omitempty"`
	CollSegsRecv    uint64 `json:"collSegsRecv,omitempty"`
	RmaPuts         uint64 `json:"rmaPuts,omitempty"`
	RmaGets         uint64 `json:"rmaGets,omitempty"`
	RmaAccs         uint64 `json:"rmaAccs,omitempty"`
	RmaBytes        uint64 `json:"rmaBytes,omitempty"`
	SendBatches     uint64 `json:"sendBatches,omitempty"`
	FramesCoalesced uint64 `json:"framesCoalesced,omitempty"`
	SendBatchBytes  uint64 `json:"sendBatchBytes,omitempty"`
	CommRevokes     uint64 `json:"commRevokes,omitempty"`
	CommShrinks     uint64 `json:"commShrinks,omitempty"`
	CommAgrees      uint64 `json:"commAgrees,omitempty"`

	DecisionsRecorded uint64 `json:"decisionsRecorded,omitempty"`
	DecisionsEnforced uint64 `json:"decisionsEnforced,omitempty"`
	ReplayStalls      uint64 `json:"replayStalls,omitempty"`
}

// Add returns the field-wise sum of two snapshots (used when a device
// aggregates sub-component counters, and by the merge step).
func (s CounterSnapshot) Add(o CounterSnapshot) CounterSnapshot {
	return CounterSnapshot{
		EagerSent:       s.EagerSent + o.EagerSent,
		RndvSent:        s.RndvSent + o.RndvSent,
		BytesSent:       s.BytesSent + o.BytesSent,
		Unexpected:      s.Unexpected + o.Unexpected,
		Matched:         s.Matched + o.Matched,
		PeersLost:       s.PeersLost + o.PeersLost,
		FramesCorrupt:   s.FramesCorrupt + o.FramesCorrupt,
		RequestsFailed:  s.RequestsFailed + o.RequestsFailed,
		CollSegsSent:    s.CollSegsSent + o.CollSegsSent,
		CollSegsRecv:    s.CollSegsRecv + o.CollSegsRecv,
		RmaPuts:         s.RmaPuts + o.RmaPuts,
		RmaGets:         s.RmaGets + o.RmaGets,
		RmaAccs:         s.RmaAccs + o.RmaAccs,
		RmaBytes:        s.RmaBytes + o.RmaBytes,
		SendBatches:     s.SendBatches + o.SendBatches,
		FramesCoalesced: s.FramesCoalesced + o.FramesCoalesced,
		SendBatchBytes:  s.SendBatchBytes + o.SendBatchBytes,
		CommRevokes:     s.CommRevokes + o.CommRevokes,
		CommShrinks:     s.CommShrinks + o.CommShrinks,
		CommAgrees:      s.CommAgrees + o.CommAgrees,

		DecisionsRecorded: s.DecisionsRecorded + o.DecisionsRecorded,
		DecisionsEnforced: s.DecisionsEnforced + o.DecisionsEnforced,
		ReplayStalls:      s.ReplayStalls + o.ReplayStalls,
	}
}
