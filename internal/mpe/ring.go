package mpe

import (
	"runtime"
	"sync/atomic"
)

// Ring is a bounded, overwriting event buffer safe for concurrent
// writers (the application threads and progress-engine goroutines of
// one rank). Writers claim a unique logical position with a single
// atomic add; each slot carries a sequence number so that a writer on
// lap k+1 does not touch the slot payload until the lap-k writer's
// release-store has published it — two writers never race on the same
// slot's event.
//
// When the ring is full the oldest events are overwritten — tracing
// must never block or abort the traffic it observes. Overwritten()
// reports how many events were lost that way.
//
// Snapshot is only valid at quiescence (no concurrent Put), which is
// how traces are read: after the rank's job body returned and its
// device finished.
type Ring struct {
	slots []slot
	mask  uint64
	pos   atomic.Uint64 // next logical write position
}

type slot struct {
	// seq == p means the slot is ready for the writer holding
	// logical position p (writers at p and p+cap share a slot but
	// never overlap: the p+cap writer waits for seq to become
	// p+cap, stored by the p writer after its payload write).
	seq atomic.Uint64
	ev  Event
}

// NewRing returns a ring holding up to capacity events; capacity is
// rounded up to a power of two (minimum 16).
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	r := &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Put records ev, overwriting the oldest retained event if the ring
// is full.
func (r *Ring) Put(ev Event) {
	p := r.pos.Add(1) - 1
	s := &r.slots[p&r.mask]
	// Wait out the (instruction-scale) window where the previous
	// lap's writer has claimed the slot but not yet published it.
	for s.seq.Load() != p {
		runtime.Gosched()
	}
	s.ev = ev
	s.seq.Store(p + uint64(len(r.slots)))
}

// Overwritten reports how many events were lost to ring wrap.
func (r *Ring) Overwritten() uint64 {
	if p := r.pos.Load(); p > uint64(len(r.slots)) {
		return p - uint64(len(r.slots))
	}
	return 0
}

// Len reports how many events the ring currently retains.
func (r *Ring) Len() int {
	n := r.pos.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot returns the retained events in record order (oldest first).
// It must only be called at quiescence: every goroutine that might Put
// has finished (and its completion observed, establishing
// happens-before with this call).
func (r *Ring) Snapshot() []Event {
	pos := r.pos.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if pos > n {
		start = pos - n
	}
	out := make([]Event, 0, pos-start)
	for p := start; p < pos; p++ {
		s := &r.slots[p&r.mask]
		// At quiescence every claimed slot has been published; keep
		// the check anyway so misuse degrades to a gap, not garbage.
		if s.seq.Load() == p+n {
			out = append(out, s.ev)
		}
	}
	return out
}
