package mpe

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// TraceFile is one rank's serialized trace: what NewTracer recorded,
// plus the device counters, written as `rank-N.trace.json` in the
// trace directory when the rank finalizes.
type TraceFile struct {
	// Rank is the recording process's world rank.
	Rank int `json:"rank"`
	// Size is the world size of the job, when known.
	Size int `json:"size,omitempty"`
	// Device names the xdev device the rank ran on.
	Device string `json:"device,omitempty"`
	// EpochWallNS is the wall-clock UnixNano of the tracer's epoch;
	// the merge step uses it to place ranks on a shared timeline.
	EpochWallNS int64 `json:"epochWallNs"`
	// Overwritten is how many events were lost to ring wrap.
	Overwritten uint64 `json:"overwritten,omitempty"`
	// Counters is the device's counter snapshot at finalize.
	Counters *CounterSnapshot `json:"counters,omitempty"`
	// SendHist / RecvHist are the completion-latency histograms.
	SendHist HistSnapshot `json:"sendHist"`
	RecvHist HistSnapshot `json:"recvHist"`
	// Events is the retained event stream, oldest first.
	Events []Event `json:"events"`
}

// File assembles the tracer's state into a TraceFile. Only valid at
// quiescence.
func (t *Tracer) File() *TraceFile {
	return &TraceFile{
		Rank:        t.rank,
		EpochWallNS: t.epochWall,
		Overwritten: t.Overwritten(),
		SendHist:    t.SendHist(),
		RecvHist:    t.RecvHist(),
		Events:      t.Events(),
	}
}

// TraceFileName returns the file name used for a rank's trace inside a
// trace directory.
func TraceFileName(rank int) string {
	return fmt.Sprintf("rank-%d.trace.json", rank)
}

// WriteFile serializes tf into dir (created if needed) under the
// conventional per-rank name.
func WriteFile(dir string, tf *TraceFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mpe: create trace dir: %w", err)
	}
	data, err := json.MarshalIndent(tf, "", " ")
	if err != nil {
		return fmt.Errorf("mpe: marshal trace: %w", err)
	}
	path := filepath.Join(dir, TraceFileName(tf.Rank))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("mpe: write trace: %w", err)
	}
	return nil
}

// ReadTraceDir loads every per-rank trace file in dir, sorted by rank.
func ReadTraceDir(dir string) ([]*TraceFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("mpe: read trace dir: %w", err)
	}
	var files []*TraceFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".trace.json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("mpe: read %s: %w", name, err)
		}
		tf := new(TraceFile)
		if err := json.Unmarshal(data, tf); err != nil {
			return nil, fmt.Errorf("mpe: parse %s: %w", name, err)
		}
		files = append(files, tf)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("mpe: no *.trace.json files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Rank < files[j].Rank })
	return files, nil
}
