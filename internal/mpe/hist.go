package mpe

import (
	"fmt"
	"sync/atomic"
)

// Message-size buckets for latency histograms. Protocol behaviour is
// size-driven (eager vs rendezvous around 128 KiB), so latencies are
// only comparable within a size class.
const (
	sizeBucketCount = 5
	durBucketCount  = 40 // log2 ns buckets: covers ~1ns .. ~9min
)

var sizeBucketTops = [sizeBucketCount]int64{256, 4 << 10, 64 << 10, 1 << 20, 1<<63 - 1}

var sizeBucketLabels = [sizeBucketCount]string{
	"<=256B", "<=4KiB", "<=64KiB", "<=1MiB", ">1MiB",
}

// SizeBucket returns the histogram bucket index for a payload length.
func SizeBucket(bytes int64) int {
	for i, top := range sizeBucketTops {
		if bytes <= top {
			return i
		}
	}
	return sizeBucketCount - 1
}

// SizeBucketLabel names a size bucket for display.
func SizeBucketLabel(i int) string {
	if i >= 0 && i < sizeBucketCount {
		return sizeBucketLabels[i]
	}
	return fmt.Sprintf("bucket(%d)", i)
}

// Histogram accumulates operation latencies in log2-nanosecond buckets
// per message-size class, with atomic counters so recording never
// locks.
type Histogram struct {
	counts [sizeBucketCount][durBucketCount]atomic.Uint64
	sum    [sizeBucketCount]atomic.Int64
	max    [sizeBucketCount]atomic.Int64
	n      [sizeBucketCount]atomic.Uint64
}

func durBucket(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := 0
	for v := ns; v > 1 && b < durBucketCount-1; v >>= 1 {
		b++
	}
	return b
}

// Observe records one operation of the given payload size taking ns
// nanoseconds.
func (h *Histogram) Observe(bytes, ns int64) {
	s := SizeBucket(bytes)
	h.counts[s][durBucket(ns)].Add(1)
	h.sum[s].Add(ns)
	h.n[s].Add(1)
	for {
		m := h.max[s].Load()
		if ns <= m || h.max[s].CompareAndSwap(m, ns) {
			return
		}
	}
}

// Snapshot returns a plain-value copy of the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	var out HistSnapshot
	for s := 0; s < sizeBucketCount; s++ {
		b := &out.Buckets[s]
		b.Label = sizeBucketLabels[s]
		b.Count = h.n[s].Load()
		b.SumNS = h.sum[s].Load()
		b.MaxNS = h.max[s].Load()
		for d := 0; d < durBucketCount; d++ {
			b.Counts[d] = h.counts[s][d].Load()
		}
	}
	return out
}

// HistSnapshot is a point-in-time copy of a Histogram, serializable to
// the per-rank trace file.
type HistSnapshot struct {
	Buckets [sizeBucketCount]HistBucket `json:"buckets"`
}

// HistBucket is one message-size class of a HistSnapshot.
type HistBucket struct {
	Label  string                 `json:"label"`
	Count  uint64                 `json:"count"`
	SumNS  int64                  `json:"sumNs"`
	MaxNS  int64                  `json:"maxNs"`
	Counts [durBucketCount]uint64 `json:"counts"`
}

// Merge returns the bucket-wise sum of two snapshots (used when
// merging ranks).
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	var out HistSnapshot
	for i := range out.Buckets {
		a, b := s.Buckets[i], o.Buckets[i]
		m := &out.Buckets[i]
		m.Label = sizeBucketLabels[i]
		m.Count = a.Count + b.Count
		m.SumNS = a.SumNS + b.SumNS
		m.MaxNS = a.MaxNS
		if b.MaxNS > m.MaxNS {
			m.MaxNS = b.MaxNS
		}
		for d := range m.Counts {
			m.Counts[d] = a.Counts[d] + b.Counts[d]
		}
	}
	return out
}

// Percentile returns an upper bound on the q-th percentile latency
// (q in [0,100]) for size bucket s, in nanoseconds. The bound is the
// top of the log2 duration bucket containing the q-th observation, so
// it is at most 2x the true value. Returns 0 when the bucket is empty.
func (s HistSnapshot) Percentile(bucket int, q float64) int64 {
	if bucket < 0 || bucket >= sizeBucketCount {
		return 0
	}
	b := s.Buckets[bucket]
	if b.Count == 0 {
		return 0
	}
	rank := uint64(q / 100 * float64(b.Count))
	if rank >= b.Count {
		rank = b.Count - 1
	}
	var seen uint64
	for d, c := range b.Counts {
		seen += c
		if seen > rank {
			// Bucket d holds durations in [2^d, 2^(d+1)) ns (d=0
			// also catches <=1ns); report the bucket top, clamped
			// to the observed max. The last bucket is open-ended,
			// so its only honest bound is the max itself.
			if d == durBucketCount-1 {
				return b.MaxNS
			}
			top := int64(1)
			if d > 0 {
				top = int64(1) << uint(d+1)
			}
			if b.MaxNS > 0 && top > b.MaxNS {
				top = b.MaxNS
			}
			return top
		}
	}
	return b.MaxNS
}

// MeanNS returns the mean latency for size bucket s, or 0 when empty.
func (s HistSnapshot) MeanNS(bucket int) int64 {
	if bucket < 0 || bucket >= sizeBucketCount {
		return 0
	}
	b := s.Buckets[bucket]
	if b.Count == 0 {
		return 0
	}
	return b.SumNS / int64(b.Count)
}
