package mpe

import (
	"fmt"
	"io"
	"sort"
)

// Cross-rank trace correlation.
//
// Each sender stamps every message with a per-sender sequence number
// (devcore.Core.NextSeq); the pair (sender rank, seq) identifies one
// message on both sides of the wire. MergeTraces joins every rank's
// SendEnd span to the matching RecvMatched span on the receiver,
// estimates per-rank clock offsets from the message graph itself, and
// derives per-message wire latency, late-sender/late-receiver
// classification, and a critical-path view of collectives.

// msgKey identifies one message across rank files.
type msgKey struct {
	src int
	seq uint64
}

// MatchedMessage is one point-to-point message seen on both its
// sender's and its receiver's timeline. All times are nanoseconds on
// the merged, clock-corrected timeline (t=0 at the earliest rank
// epoch).
type MatchedMessage struct {
	Src, Dst int
	Seq      uint64
	Tag, Ctx int32
	Bytes    int64
	// SendBeginNS..SendEndNS is the sender-side completion span;
	// RecvPostNS..RecvDeliverNS the receiver-side one.
	SendBeginNS, SendEndNS    int64
	RecvPostNS, RecvDeliverNS int64
	// LatencyNS is RecvDeliverNS - SendBeginNS (clamped at 0): the
	// wire + matching latency of this message after clock correction.
	LatencyNS int64
	// LateSender: the receive was posted before the send began — the
	// receiver sat waiting on the sender.
	LateSender bool
	// LateReceiver: the message arrived unexpected (no posted
	// receive) — the receiver was behind the sender.
	LateReceiver bool
}

// CollectiveOp is one instance of a collective across all ranks that
// recorded a CollectivePhase span for it, identified by (context,
// kind, per-rank occurrence index).
type CollectiveOp struct {
	Kind  int32
	Ctx   int32
	Index int // i-th (ctx,kind) collective on each rank
	Ranks int // ranks that recorded this instance
	// EnterSkewNS is max(start)-min(start) across ranks: how staggered
	// the ranks entered the collective.
	EnterSkewNS int64
	// SpanNS is max(end)-min(start): the whole-job critical path of
	// this instance. MeanDurNS is the mean per-rank time inside it.
	SpanNS    int64
	MeanDurNS int64
	// LastEnterRank / LastExitRank bound the critical path: the rank
	// that arrived last and the rank that finished last.
	LastEnterRank int
	LastExitRank  int
}

// Merged is the result of correlating all rank trace files.
type Merged struct {
	Files []*TraceFile
	// Sends / Recvs count seq-stamped completion spans found.
	Sends, Recvs int
	Matched      []MatchedMessage
	// UnmatchedSends counts seq-stamped sends with no receiver-side
	// span (ring overwrite, abort, or a rank file missing).
	UnmatchedSends int
	// OffsetNS[r] is the correction added to rank r's wall-aligned
	// timestamps; OffsetKnown[r] is false when rank r exchanged no
	// bidirectional traffic connecting it to rank 0.
	OffsetNS    map[int]int64
	OffsetKnown map[int]bool
	Collectives []CollectiveOp
}

// MatchRate returns matched sends as a fraction of all seq-stamped
// sends (1.0 when there were none).
func (m *Merged) MatchRate() float64 {
	if m.Sends == 0 {
		return 1.0
	}
	return float64(len(m.Matched)) / float64(m.Sends)
}

type sendRec struct {
	dst        int
	tag, ctx   int32
	bytes      int64
	begin, end int64
}

type recvRec struct {
	rank          int
	post, deliver int64
}

// MergeTraces correlates the per-rank trace files into one timeline.
func MergeTraces(files []*TraceFile) (*Merged, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("mpe: no trace files")
	}
	base := files[0].EpochWallNS
	for _, tf := range files {
		if tf.EpochWallNS < base {
			base = tf.EpochWallNS
		}
	}

	sends := map[msgKey]sendRec{}
	recvs := map[msgKey]recvRec{}
	unexpected := map[msgKey]bool{}
	nSends, nRecvs := 0, 0
	for _, tf := range files {
		wallOff := tf.EpochWallNS - base
		for _, ev := range tf.Events {
			if ev.Seq == 0 {
				continue
			}
			switch ev.Type {
			case SendEnd:
				nSends++
				sends[msgKey{src: tf.Rank, seq: ev.Seq}] = sendRec{
					dst: int(ev.Peer), tag: ev.Tag, ctx: ev.Ctx, bytes: ev.Bytes,
					begin: ev.At + wallOff, end: ev.At + ev.Dur + wallOff,
				}
			case RecvMatched:
				nRecvs++
				recvs[msgKey{src: int(ev.Peer), seq: ev.Seq}] = recvRec{
					rank: tf.Rank, post: ev.At + wallOff, deliver: ev.At + ev.Dur + wallOff,
				}
			case RecvUnexpected:
				unexpected[msgKey{src: int(ev.Peer), seq: ev.Seq}] = true
			}
		}
	}

	m := &Merged{
		Files: files, Sends: nSends, Recvs: nRecvs,
		OffsetNS: map[int]int64{}, OffsetKnown: map[int]bool{},
	}
	m.estimateOffsets(sends, recvs)

	for key, s := range sends {
		r, ok := recvs[key]
		if !ok {
			m.UnmatchedSends++
			continue
		}
		srcOff, dstOff := m.OffsetNS[key.src], m.OffsetNS[r.rank]
		mm := MatchedMessage{
			Src: key.src, Dst: r.rank, Seq: key.seq,
			Tag: s.tag, Ctx: s.ctx, Bytes: s.bytes,
			SendBeginNS: s.begin + srcOff, SendEndNS: s.end + srcOff,
			RecvPostNS: r.post + dstOff, RecvDeliverNS: r.deliver + dstOff,
			LateReceiver: unexpected[key],
		}
		mm.LatencyNS = mm.RecvDeliverNS - mm.SendBeginNS
		if mm.LatencyNS < 0 {
			mm.LatencyNS = 0
		}
		mm.LateSender = mm.RecvPostNS < mm.SendBeginNS && !mm.LateReceiver
		m.Matched = append(m.Matched, mm)
	}
	sort.Slice(m.Matched, func(i, j int) bool {
		a, b := m.Matched[i], m.Matched[j]
		if a.SendBeginNS != b.SendBeginNS {
			return a.SendBeginNS < b.SendBeginNS
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Seq < b.Seq
	})

	m.collectCollectives(base)
	return m, nil
}

// estimateOffsets computes per-rank clock corrections from the message
// graph. For ranks a→b, the smallest observed (deliver_b - begin_a)
// is minLatency + (err_b - err_a); with both directions available the
// symmetrized half-difference cancels the latency term, leaving the
// relative clock error — the classic NTP-style estimate. Errors
// propagate from rank 0 (the anchor) by BFS over rank pairs with
// bidirectional traffic.
func (m *Merged) estimateOffsets(sends map[msgKey]sendRec, recvs map[msgKey]recvRec) {
	type pair struct{ a, b int }
	minDelta := map[pair]int64{}
	for key, s := range sends {
		r, ok := recvs[key]
		if !ok || key.src == r.rank {
			continue
		}
		p := pair{a: key.src, b: r.rank}
		d := r.deliver - s.begin
		if cur, ok := minDelta[p]; !ok || d < cur {
			minDelta[p] = d
		}
	}

	// err[b] - err[a] for pairs seen in both directions.
	rel := map[pair]int64{}
	ranks := map[int]bool{}
	for _, tf := range m.Files {
		ranks[tf.Rank] = true
	}
	for p, dab := range minDelta {
		if dba, ok := minDelta[pair{a: p.b, b: p.a}]; ok {
			rel[p] = (dab - dba) / 2
		}
	}

	// BFS from rank 0; unreachable ranks keep offset 0, flagged
	// unknown.
	err := map[int]int64{0: 0}
	queue := []int{0}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for p, d := range rel {
			if p.a == a {
				if _, seen := err[p.b]; !seen {
					err[p.b] = err[a] + d
					queue = append(queue, p.b)
				}
			}
		}
	}
	for r := range ranks {
		if e, ok := err[r]; ok {
			m.OffsetNS[r] = -e
			m.OffsetKnown[r] = true
		} else {
			m.OffsetNS[r] = 0
			m.OffsetKnown[r] = r == 0
		}
	}
}

// collectCollectives groups CollectivePhase spans into per-instance
// CollectiveOps: the i-th (ctx,kind) span on each rank belongs to the
// same collective call, because collectives are ordered within a
// communicator.
func (m *Merged) collectCollectives(base int64) {
	type instKey struct {
		ctx, kind int32
		index     int
	}
	type rankSpan struct {
		rank       int
		start, end int64
	}
	seen := map[instKey][]rankSpan{}
	var order []instKey
	for _, tf := range m.Files {
		wallOff := tf.EpochWallNS - base
		corr := m.OffsetNS[tf.Rank]
		occ := map[[2]int32]int{}
		for _, ev := range tf.Events {
			if ev.Type != CollectivePhase {
				continue
			}
			ok := [2]int32{ev.Ctx, ev.Tag}
			k := instKey{ctx: ev.Ctx, kind: ev.Tag, index: occ[ok]}
			occ[ok]++
			if _, dup := seen[k]; !dup {
				order = append(order, k)
			}
			start := ev.At + wallOff + corr
			seen[k] = append(seen[k], rankSpan{rank: tf.Rank, start: start, end: start + ev.Dur})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.ctx != b.ctx {
			return a.ctx < b.ctx
		}
		if a.index != b.index {
			return a.index < b.index
		}
		return a.kind < b.kind
	})
	for _, k := range order {
		spans := seen[k]
		op := CollectiveOp{Kind: k.kind, Ctx: k.ctx, Index: k.index, Ranks: len(spans)}
		minStart, maxStart, maxEnd := spans[0].start, spans[0].start, spans[0].end
		op.LastEnterRank, op.LastExitRank = spans[0].rank, spans[0].rank
		var sumDur int64
		for _, s := range spans {
			if s.start < minStart {
				minStart = s.start
			}
			if s.start > maxStart {
				maxStart = s.start
				op.LastEnterRank = s.rank
			}
			if s.end > maxEnd {
				maxEnd = s.end
				op.LastExitRank = s.rank
			}
			sumDur += s.end - s.start
		}
		op.EnterSkewNS = maxStart - minStart
		op.SpanNS = maxEnd - minStart
		op.MeanDurNS = sumDur / int64(len(spans))
		m.Collectives = append(m.Collectives, op)
	}
}

// WriteMergedChrome writes the merged Chrome timeline with flow
// ("arrow") events connecting each matched send to its receive, so the
// viewer draws the message crossing ranks.
func (m *Merged) WriteMergedChrome(w io.Writer) error {
	var extra []chromeKeyed
	for i, mm := range m.Matched {
		id := int64(i + 1)
		args := map[string]any{
			"src": mm.Src, "dst": mm.Dst, "seq": mm.Seq,
			"bytes": mm.Bytes, "latency_ns": mm.LatencyNS,
		}
		extra = append(extra,
			chromeKeyed{
				atNS: mm.SendBeginNS, rank: mm.Src, seq: mm.Seq,
				ce: chromeEvent{
					Name: "msg", Cat: "flow", Ph: "s", ID: id,
					TS: float64(mm.SendBeginNS) / 1e3, PID: mm.Src, Args: args,
				},
			},
			chromeKeyed{
				atNS: mm.RecvDeliverNS, rank: mm.Dst, seq: mm.Seq,
				ce: chromeEvent{
					Name: "msg", Cat: "flow", Ph: "f", BP: "e", ID: id,
					TS: float64(mm.RecvDeliverNS) / 1e3, PID: mm.Dst, Args: args,
				},
			},
		)
	}
	return writeChromeTrace(w, m.Files, -1, extra)
}

// WriteReport writes the human-readable correlation report: match
// rate, clock offsets, per-size wire latency percentiles, late
// sender/receiver counts, and the collective critical-path table.
func (m *Merged) WriteReport(w io.Writer) error {
	fmt.Fprintf(w, "mpjtrace merge: %d rank(s), %d seq-stamped sends, %d recvs\n",
		len(m.Files), m.Sends, m.Recvs)
	fmt.Fprintf(w, "matched %d/%d sends (%.1f%%), %d unmatched\n",
		len(m.Matched), m.Sends, m.MatchRate()*100, m.UnmatchedSends)

	ranks := make([]int, 0, len(m.OffsetNS))
	for r := range m.OffsetNS {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	fmt.Fprintf(w, "\nestimated clock offsets (vs rank 0):\n")
	for _, r := range ranks {
		mark := ""
		if !m.OffsetKnown[r] {
			mark = "  (no bidirectional traffic; assumed 0)"
		}
		fmt.Fprintf(w, "  rank %d: %+dns%s\n", r, m.OffsetNS[r], mark)
	}

	if len(m.Matched) > 0 {
		bySize := map[int][]int64{}
		lateSend, lateRecv := 0, 0
		for _, mm := range m.Matched {
			bySize[SizeBucket(mm.Bytes)] = append(bySize[SizeBucket(mm.Bytes)], mm.LatencyNS)
			if mm.LateSender {
				lateSend++
			}
			if mm.LateReceiver {
				lateRecv++
			}
		}
		fmt.Fprintf(w, "\nper-message wire latency (send begin -> recv deliver, clock-corrected):\n")
		fmt.Fprintf(w, "  %-8s %8s %12s %12s %12s\n", "size", "count", "p50", "p95", "max")
		for b := 0; b < sizeBucketCount; b++ {
			durs := bySize[b]
			if len(durs) == 0 {
				continue
			}
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			fmt.Fprintf(w, "  %-8s %8d %12s %12s %12s\n",
				SizeBucketLabel(b), len(durs),
				fmtNS(durs[len(durs)*50/100]), fmtNS(durs[len(durs)*95/100]), fmtNS(durs[len(durs)-1]))
		}
		fmt.Fprintf(w, "late senders (receiver waited): %d/%d; late receivers (unexpected arrival): %d/%d\n",
			lateSend, len(m.Matched), lateRecv, len(m.Matched))
	}

	if len(m.Collectives) > 0 {
		fmt.Fprintf(w, "\ncollective critical path (per instance, clock-corrected):\n")
		fmt.Fprintf(w, "  %-14s %5s %6s %12s %12s %12s %10s %10s\n",
			"collective", "ctx", "ranks", "enter-skew", "span", "mean-dur", "last-in", "last-out")
		for _, op := range m.Collectives {
			fmt.Fprintf(w, "  %-14s %5d %6d %12s %12s %12s %10d %10d\n",
				CollName(op.Kind), op.Ctx, op.Ranks,
				fmtNS(op.EnterSkewNS), fmtNS(op.SpanNS), fmtNS(op.MeanDurNS),
				op.LastEnterRank, op.LastExitRank)
		}
	}
	return nil
}
