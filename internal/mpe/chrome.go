package mpe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, https://ui.perfetto.dev). ts/dur are in
// microseconds; pid groups a rank's events into one track.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    int64          `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func category(t EventType) string {
	switch t {
	case SendBegin, SendEnd, RecvPosted, RecvMatched, RecvUnexpected:
		return "request"
	case EagerOut, RendezvousRTS, RendezvousRTR, RendezvousData:
		return "protocol"
	case CollectivePhase, CollectiveAlgo:
		return "collective"
	case WaitanyPark, WaitanyWake:
		return "waitany"
	case PeerLost, FrameCorrupt, Aborted:
		return "failure"
	}
	return "other"
}

func eventName(ev Event) string {
	switch ev.Type {
	case CollectivePhase:
		return "Coll:" + CollName(ev.Tag)
	case CollectiveAlgo:
		return "Algo:" + CollName(ev.Tag) + "=" + AlgoName(ev.Peer)
	}
	return ev.Type.String()
}

// WriteChromeTrace merges the per-rank traces onto a shared timeline
// (aligned by each rank's epoch wall clock) and writes a Chrome
// trace_event JSON document. onlyRank < 0 keeps all ranks.
func WriteChromeTrace(w io.Writer, files []*TraceFile, onlyRank int) error {
	return writeChromeTrace(w, files, onlyRank, nil)
}

// ChromeExtra is one externally-sourced instant event merged into a
// Chrome trace export — mpjtrace injects per-rank replay decisions
// this way. AtNS places it on the merged timeline (decision logs carry
// no wall clock, so callers typically pass 0 and rely on the
// tie-break); the (Rank, Pos) pair is the decision's stable identity,
// so repeated exports over logs written by racing threads come out in
// the same order.
type ChromeExtra struct {
	AtNS int64
	Rank int
	Seq  uint64
	Pos  int // per-rank decision index — second sort key after rank
	Name string
	Cat  string
	Args map[string]any
}

// WriteChromeTraceExtras is WriteChromeTrace with extra events sorted
// into the merged stream by (timestamp, rank, seq, index).
func WriteChromeTraceExtras(w io.Writer, files []*TraceFile, onlyRank int, extras []ChromeExtra) error {
	var keyed []chromeKeyed
	for _, e := range extras {
		if onlyRank >= 0 && e.Rank != onlyRank {
			continue
		}
		keyed = append(keyed, chromeKeyed{
			atNS: e.AtNS, rank: e.Rank, seq: e.Seq, pos: e.Pos,
			ce: chromeEvent{
				Name: e.Name, Cat: e.Cat, Ph: "i", Scope: "t",
				TS: float64(e.AtNS) / 1e3, PID: e.Rank, TID: 0, Args: e.Args,
			},
		})
	}
	return writeChromeTrace(w, files, onlyRank, keyed)
}

// chromeKeyed pairs a renderable event with the sort key that makes
// repeated exports of the same trace byte-identical: timestamp, then
// rank, then the message sequence number, then ring position.
type chromeKeyed struct {
	atNS int64
	rank int
	seq  uint64
	pos  int
	ce   chromeEvent
}

// sortChromeEvents orders events deterministically: by merged-timeline
// timestamp, tie-broken on rank, then message seq, then the event's
// position in its rank's ring (a stable, reproducible order — map
// iteration or input interleaving can never change the output).
func sortChromeEvents(evs []chromeKeyed) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.atNS != b.atNS {
			return a.atNS < b.atNS
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.pos < b.pos
	})
}

// writeChromeTrace renders the merged timeline; extra (already keyed)
// events — the -merge mode's flow arrows — are sorted into the same
// stream.
func writeChromeTrace(w io.Writer, files []*TraceFile, onlyRank int, extra []chromeKeyed) error {
	if len(files) == 0 {
		return fmt.Errorf("mpe: no trace files")
	}
	// The earliest epoch is t=0 of the merged timeline; each rank's
	// events shift by its wall-clock offset from it.
	base := files[0].EpochWallNS
	for _, tf := range files {
		if tf.EpochWallNS < base {
			base = tf.EpochWallNS
		}
	}
	var meta []chromeEvent
	var keyed []chromeKeyed
	for _, tf := range files {
		if onlyRank >= 0 && tf.Rank != onlyRank {
			continue
		}
		offset := tf.EpochWallNS - base
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", PID: tf.Rank, TID: 0,
			Args: map[string]any{"name": fmt.Sprintf("rank %d (%s)", tf.Rank, tf.Device)},
		})
		for pos, ev := range tf.Events {
			ce := chromeEvent{
				Name: eventName(ev),
				Cat:  category(ev.Type),
				TS:   float64(ev.At+offset) / 1e3,
				PID:  tf.Rank,
				TID:  0,
				Args: map[string]any{},
			}
			if ev.Type == CollectiveAlgo {
				ce.Args["algo"] = AlgoName(ev.Peer)
			} else if ev.Peer >= 0 {
				ce.Args["peer"] = ev.Peer
			}
			if ev.Type != CollectivePhase && ev.Type != CollectiveAlgo {
				ce.Args["tag"] = ev.Tag
			}
			if ev.Ctx >= 0 {
				ce.Args["ctx"] = ev.Ctx
			}
			if ev.Bytes > 0 {
				ce.Args["bytes"] = ev.Bytes
			}
			if ev.Seq > 0 {
				ce.Args["seq"] = ev.Seq
			}
			if ev.Dur > 0 {
				ce.Ph = "X"
				ce.Dur = float64(ev.Dur) / 1e3
			} else {
				ce.Ph = "i"
				ce.Scope = "t"
			}
			keyed = append(keyed, chromeKeyed{
				atNS: ev.At + offset, rank: tf.Rank, seq: ev.Seq, pos: pos, ce: ce,
			})
		}
	}
	keyed = append(keyed, extra...)
	sortChromeEvents(keyed)
	out := meta
	for _, k := range keyed {
		out = append(out, k.ce)
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteSummary writes a plain-text report of the merged traces:
// per-rank counters, event counts by type, and exact per-size-bucket
// latency percentiles computed from the retained completion spans.
func WriteSummary(w io.Writer, files []*TraceFile, onlyRank int) error {
	if len(files) == 0 {
		return fmt.Errorf("mpe: no trace files")
	}
	kept := files[:0:0]
	for _, tf := range files {
		if onlyRank < 0 || tf.Rank == onlyRank {
			kept = append(kept, tf)
		}
	}
	if len(kept) == 0 {
		return fmt.Errorf("mpe: no trace for rank %d", onlyRank)
	}

	fmt.Fprintf(w, "mpjtrace summary: %d rank(s)\n", len(kept))
	var total CounterSnapshot
	haveCounters := false
	for _, tf := range kept {
		fmt.Fprintf(w, "\nrank %d", tf.Rank)
		if tf.Device != "" {
			fmt.Fprintf(w, " (%s)", tf.Device)
		}
		fmt.Fprintf(w, ": %d events", len(tf.Events))
		if tf.Overwritten > 0 {
			fmt.Fprintf(w, " (+%d overwritten)", tf.Overwritten)
		}
		fmt.Fprintln(w)
		if tf.Counters != nil {
			haveCounters = true
			total = total.Add(*tf.Counters)
			c := tf.Counters
			fmt.Fprintf(w, "  counters: eager=%d rndv=%d bytesSent=%d matched=%d unexpected=%d\n",
				c.EagerSent, c.RndvSent, c.BytesSent, c.Matched, c.Unexpected)
			if c.CollSegsSent+c.CollSegsRecv > 0 {
				fmt.Fprintf(w, "  collectives: segsSent=%d segsRecv=%d\n",
					c.CollSegsSent, c.CollSegsRecv)
			}
			if c.RmaPuts+c.RmaGets+c.RmaAccs > 0 {
				fmt.Fprintf(w, "  rma: puts=%d gets=%d accs=%d bytes=%d\n",
					c.RmaPuts, c.RmaGets, c.RmaAccs, c.RmaBytes)
			}
			if c.SendBatches > 0 {
				fmt.Fprintf(w, "  send engine: batches=%d frames=%d (%.2f frames/write, %.0f B/write)\n",
					c.SendBatches, c.FramesCoalesced,
					float64(c.FramesCoalesced)/float64(c.SendBatches),
					float64(c.SendBatchBytes)/float64(c.SendBatches))
			}
			if c.PeersLost+c.FramesCorrupt+c.RequestsFailed > 0 {
				fmt.Fprintf(w, "  failures: peersLost=%d framesCorrupt=%d requestsFailed=%d\n",
					c.PeersLost, c.FramesCorrupt, c.RequestsFailed)
			}
		}
		byType := map[EventType]int{}
		for _, ev := range tf.Events {
			byType[ev.Type]++
		}
		types := make([]EventType, 0, len(byType))
		for t := range byType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			fmt.Fprintf(w, "  %-16s %d\n", t, byType[t])
		}
	}
	if haveCounters && len(kept) > 1 {
		fmt.Fprintf(w, "\nall ranks: eager=%d rndv=%d bytesSent=%d matched=%d unexpected=%d\n",
			total.EagerSent, total.RndvSent, total.BytesSent, total.Matched, total.Unexpected)
		if total.CollSegsSent+total.CollSegsRecv > 0 {
			fmt.Fprintf(w, "all ranks collectives: segsSent=%d segsRecv=%d\n",
				total.CollSegsSent, total.CollSegsRecv)
		}
		if total.RmaPuts+total.RmaGets+total.RmaAccs > 0 {
			fmt.Fprintf(w, "all ranks rma: puts=%d gets=%d accs=%d bytes=%d\n",
				total.RmaPuts, total.RmaGets, total.RmaAccs, total.RmaBytes)
		}
		if total.SendBatches > 0 {
			fmt.Fprintf(w, "all ranks send engine: batches=%d frames=%d (%.2f frames/write, %.0f B/write)\n",
				total.SendBatches, total.FramesCoalesced,
				float64(total.FramesCoalesced)/float64(total.SendBatches),
				float64(total.SendBatchBytes)/float64(total.SendBatches))
		}
		if total.PeersLost+total.FramesCorrupt+total.RequestsFailed > 0 {
			fmt.Fprintf(w, "all ranks failures: peersLost=%d framesCorrupt=%d requestsFailed=%d\n",
				total.PeersLost, total.FramesCorrupt, total.RequestsFailed)
		}
	}

	writeLatencyTable(w, kept, SendEnd, "send completion latency")
	writeLatencyTable(w, kept, RecvMatched, "recv completion latency")
	writeLatencyTable(w, kept, RmaFence, "rma fence epoch latency")
	writeCollectives(w, kept)
	writeCollAlgos(w, kept)
	return nil
}

// writeLatencyTable prints exact percentiles per message-size bucket
// for the given span type, computed by sorting the retained span
// durations (the histograms carry the same data with bucket
// resolution; the retained events allow exact numbers).
func writeLatencyTable(w io.Writer, files []*TraceFile, typ EventType, title string) {
	bySize := map[int][]int64{}
	for _, tf := range files {
		for _, ev := range tf.Events {
			if ev.Type == typ && ev.Dur > 0 {
				b := SizeBucket(ev.Bytes)
				bySize[b] = append(bySize[b], ev.Dur)
			}
		}
	}
	if len(bySize) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s (per message-size bucket):\n", title)
	fmt.Fprintf(w, "  %-8s %8s %12s %12s %12s\n", "size", "count", "p50", "p95", "max")
	for b := 0; b < sizeBucketCount; b++ {
		durs := bySize[b]
		if len(durs) == 0 {
			continue
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		p50 := durs[len(durs)*50/100]
		p95 := durs[len(durs)*95/100]
		max := durs[len(durs)-1]
		fmt.Fprintf(w, "  %-8s %8d %12s %12s %12s\n",
			SizeBucketLabel(b), len(durs), fmtNS(p50), fmtNS(p95), fmtNS(max))
	}
}

func writeCollectives(w io.Writer, files []*TraceFile) {
	type stat struct {
		n   int
		sum int64
		max int64
	}
	byKind := map[int32]*stat{}
	for _, tf := range files {
		for _, ev := range tf.Events {
			if ev.Type != CollectivePhase {
				continue
			}
			s := byKind[ev.Tag]
			if s == nil {
				s = &stat{}
				byKind[ev.Tag] = s
			}
			s.n++
			s.sum += ev.Dur
			if ev.Dur > s.max {
				s.max = ev.Dur
			}
		}
	}
	if len(byKind) == 0 {
		return
	}
	kinds := make([]int32, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	fmt.Fprintf(w, "\ncollective phases (all ranks):\n")
	fmt.Fprintf(w, "  %-14s %8s %12s %12s\n", "collective", "calls", "mean", "max")
	for _, k := range kinds {
		s := byKind[k]
		fmt.Fprintf(w, "  %-14s %8d %12s %12s\n",
			CollName(k), s.n, fmtNS(s.sum/int64(s.n)), fmtNS(s.max))
	}
}

// writeCollAlgos tabulates which algorithm variant each collective
// selected (CollectiveAlgo events), per kind, with call counts and the
// payload-size range the choice covered.
func writeCollAlgos(w io.Writer, files []*TraceFile) {
	type key struct {
		kind int32
		algo int32
	}
	type stat struct {
		n        int
		minBytes int64
		maxBytes int64
	}
	byChoice := map[key]*stat{}
	for _, tf := range files {
		for _, ev := range tf.Events {
			if ev.Type != CollectiveAlgo {
				continue
			}
			k := key{kind: ev.Tag, algo: ev.Peer}
			s := byChoice[k]
			if s == nil {
				s = &stat{minBytes: ev.Bytes, maxBytes: ev.Bytes}
				byChoice[k] = s
			}
			s.n++
			if ev.Bytes < s.minBytes {
				s.minBytes = ev.Bytes
			}
			if ev.Bytes > s.maxBytes {
				s.maxBytes = ev.Bytes
			}
		}
	}
	if len(byChoice) == 0 {
		return
	}
	keys := make([]key, 0, len(byChoice))
	for k := range byChoice {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].algo < keys[j].algo
	})
	fmt.Fprintf(w, "\ncollective algorithm choices (all ranks):\n")
	fmt.Fprintf(w, "  %-14s %-26s %8s %20s\n", "collective", "algorithm", "calls", "payload bytes")
	for _, k := range keys {
		s := byChoice[k]
		sizes := fmt.Sprintf("%d", s.minBytes)
		if s.maxBytes != s.minBytes {
			sizes = fmt.Sprintf("%d-%d", s.minBytes, s.maxBytes)
		}
		fmt.Fprintf(w, "  %-14s %-26s %8d %20s\n",
			CollName(k.kind), AlgoName(k.algo), s.n, sizes)
	}
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
