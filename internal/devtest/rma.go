package devtest

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"
	"testing"

	"mpj/internal/mpjdev"
	"mpj/internal/rma"
	"mpj/internal/xdev"
)

// One-sided (RMA) conformance: windows, Put/Get bit-identity across
// segment boundaries, commutative and non-commutative Accumulate,
// fence epoch ordering, and shared-reader/exclusive-writer lock
// consistency — the semantics internal/core's Win surface relies on,
// exercised over whichever delivery path the device selects
// (shared-memory direct on smpdev, active-message frames elsewhere).

// rmaCtxCounter hands each RMA job a distinct matching context, far
// above anything the point-to-point suite uses on context 0.
var rmaCtxCounter atomic.Int64

func testRMA(t *testing.T, run JobRunner) {
	t.Run("PutGet", func(t *testing.T) { testRMAPutGet(t, run) })
	t.Run("Accumulate", func(t *testing.T) { testRMAAccumulate(t, run) })
	t.Run("FenceEpochs", func(t *testing.T) { testRMAFenceEpochs(t, run) })
	t.Run("Locks", func(t *testing.T) { testRMALocks(t, run) })
}

// newWin builds a window over a private context for this job.
func newWin(t *testing.T, d xdev.Device, rank int, pids []xdev.ProcessID, ctx int, buf []byte) *rma.Win {
	t.Helper()
	comm, err := mpjdev.NewComm(d, pids, rank, ctx)
	if err != nil {
		t.Fatalf("rank %d: comm: %v", rank, err)
	}
	w, err := rma.New(comm, buf, rma.Config{})
	if err != nil {
		t.Fatalf("rank %d: window create: %v", rank, err)
	}
	return w
}

func freeWin(t *testing.T, rank int, w *rma.Win) {
	t.Helper()
	if err := w.Free(); err != nil {
		t.Errorf("rank %d: free: %v", rank, err)
	}
}

// testRMAPutGet moves a large pattern one-sidedly and demands
// bit-identity at the target and on the one-sided read back — the
// transfer crosses the default segment size, so the AM path exercises
// reassembly.
func testRMAPutGet(t *testing.T, run JobRunner) {
	ctx := int(4096 + rmaCtxCounter.Add(1))
	const winBytes = 200 << 10
	const n = 150 << 10
	const off = 4096
	pattern := func(i int) byte { return byte(i*31 + 7) }
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		w := newWin(t, d, rank, pids, ctx, make([]byte, winBytes))
		defer freeWin(t, rank, w)
		if rank == 0 {
			data := make([]byte, n)
			for i := range data {
				data[i] = pattern(i)
			}
			if err := w.Put(data, 1, off); err != nil {
				t.Errorf("put: %v", err)
			}
			if err := w.Fence(); err != nil {
				t.Errorf("fence: %v", err)
				return
			}
			back := make([]byte, n)
			if err := w.Get(back, 1, off); err != nil {
				t.Errorf("get: %v", err)
			} else if !bytes.Equal(back, data) {
				t.Error("one-sided read back differs from put data")
			}
		} else {
			if err := w.Fence(); err != nil {
				t.Errorf("fence: %v", err)
				return
			}
			win := w.Buffer()
			for i := 0; i < n; i++ {
				if win[off+i] != pattern(i) {
					t.Errorf("target byte %d: got %d want %d", i, win[off+i], pattern(i))
					break
				}
			}
		}
	})
}

// testRMAAccumulate checks a commutative cross-origin SUM reduction
// and the non-commutative same-origin Replace-then-Sum ordering.
func testRMAAccumulate(t *testing.T, run JobRunner) {
	ctx := int(4096 + rmaCtxCounter.Add(1))
	const ranks = 3
	const slots = 512 // int64 slots in the commutative phase
	const rounds = 5
	le := binary.LittleEndian
	run(t, ranks, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		w := newWin(t, d, rank, pids, ctx, make([]byte, 8*slots+8*ranks))
		defer freeWin(t, rank, w)
		// Phase 1 (commutative): every rank, including the target
		// itself, sums (rank+1) into every slot of rank 0, rounds times.
		contrib := make([]byte, 8*slots)
		for i := 0; i < slots; i++ {
			le.PutUint64(contrib[8*i:], uint64(rank+1))
		}
		for r := 0; r < rounds; r++ {
			if err := w.Accumulate(contrib, 0, 0, rma.Int64, rma.Sum); err != nil {
				t.Errorf("accumulate sum: %v", err)
			}
		}
		if err := w.Fence(); err != nil {
			t.Errorf("fence 1: %v", err)
			return
		}
		if rank == 0 {
			want := int64(rounds * ranks * (ranks + 1) / 2)
			for i := 0; i < slots; i++ {
				if got := int64(le.Uint64(w.Buffer()[8*i:])); got != want {
					t.Errorf("slot %d: got %d want %d", i, got, want)
					break
				}
			}
		}
		// Phase 2 (non-commutative): each origin owns one disjoint slot
		// past the phase-1 region and issues Replace(1000+rank) then
		// Sum(rank+1); same-origin ordering requires the sum to land on
		// the replaced value.
		slot := 8*slots + 8*rank
		val := make([]byte, 8)
		le.PutUint64(val, uint64(1000+rank))
		if err := w.Accumulate(val, 0, slot, rma.Int64, rma.Replace); err != nil {
			t.Errorf("accumulate replace: %v", err)
		}
		le.PutUint64(val, uint64(rank+1))
		if err := w.Accumulate(val, 0, slot, rma.Int64, rma.Sum); err != nil {
			t.Errorf("accumulate sum 2: %v", err)
		}
		if err := w.Fence(); err != nil {
			t.Errorf("fence 2: %v", err)
			return
		}
		if rank == 0 {
			for r := 0; r < ranks; r++ {
				want := int64(1000 + r + r + 1)
				if got := int64(le.Uint64(w.Buffer()[8*slots+8*r:])); got != want {
					t.Errorf("origin %d slot: got %d want %d (replace-then-sum order violated)", r, got, want)
				}
			}
		}
	})
}

// testRMAFenceEpochs drives several fence epochs and checks each
// epoch's writes are exactly visible after its closing fence — no
// stale value, no bleed-ahead from the next epoch.
func testRMAFenceEpochs(t *testing.T, run JobRunner) {
	ctx := int(4096 + rmaCtxCounter.Add(1))
	const epochs = 5
	le := binary.LittleEndian
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		w := newWin(t, d, rank, pids, ctx, make([]byte, 16))
		defer freeWin(t, rank, w)
		val := make([]byte, 8)
		for e := 1; e <= epochs; e++ {
			if rank == 0 {
				le.PutUint64(val, uint64(e))
				if err := w.Put(val, 1, 0); err != nil {
					t.Errorf("epoch %d put: %v", e, err)
				}
			}
			if err := w.Fence(); err != nil {
				t.Errorf("rank %d epoch %d fence: %v", rank, e, err)
				return
			}
			if rank == 1 {
				if got := le.Uint64(w.Buffer()); got != uint64(e) {
					t.Errorf("after fence %d: window holds %d", e, got)
				}
			}
			// The check above must complete before epoch e+1's put can
			// land, so close the exposure epoch collectively.
			if err := w.Fence(); err != nil {
				t.Errorf("rank %d epoch %d exposure fence: %v", rank, e, err)
				return
			}
		}
	})
}

// testRMALocks runs an exclusive-lock writer against shared-lock
// readers on rank 0's window: the writer updates two disjoint halves
// inside one lock epoch, and no reader may ever observe the halves
// disagreeing.
func testRMALocks(t *testing.T, run JobRunner) {
	ctx := int(4096 + rmaCtxCounter.Add(1))
	const half = 2048
	const gens = 15
	const reads = 20
	run(t, 4, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		w := newWin(t, d, rank, pids, ctx, make([]byte, 2*half))
		defer freeWin(t, rank, w)
		switch rank {
		case 0:
			// Target: its window is the battleground; it only
			// participates in create/free.
		case 1:
			// Writer: generation g fills both halves with byte g under
			// an exclusive lock.
			buf := make([]byte, half)
			for g := 1; g <= gens; g++ {
				for i := range buf {
					buf[i] = byte(g)
				}
				if err := w.Lock(0, false); err != nil {
					t.Errorf("writer lock: %v", err)
					return
				}
				if err := w.Put(buf, 0, 0); err != nil {
					t.Errorf("writer put lo: %v", err)
				}
				if err := w.Put(buf, 0, half); err != nil {
					t.Errorf("writer put hi: %v", err)
				}
				if err := w.Unlock(0); err != nil {
					t.Errorf("writer unlock: %v", err)
					return
				}
			}
		default:
			// Readers: under a shared lock the two halves must always
			// carry the same generation.
			got := make([]byte, 2*half)
			for r := 0; r < reads; r++ {
				if err := w.Lock(0, true); err != nil {
					t.Errorf("reader lock: %v", err)
					return
				}
				if err := w.Get(got, 0, 0); err != nil {
					t.Errorf("reader get: %v", err)
				}
				if err := w.Unlock(0); err != nil {
					t.Errorf("reader unlock: %v", err)
					return
				}
				g := got[0]
				for i := 1; i < 2*half; i++ {
					if got[i] != g {
						t.Errorf("read %d: byte %d is %d, byte 0 is %d (torn epoch)", r, i, got[i], g)
						return
					}
				}
			}
		}
	})
}
