// Package devtest provides a conformance suite run against every xdev
// device implementation (niodev, mxdev, smpdev, ibisdev), checking the
// semantics the upper layers rely on: matching, ordering, wildcards,
// send modes, probe, thread-multiple safety and (optionally) peek.
package devtest

import (
	"sync"
	"testing"
	"time"

	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/xdev"
)

// JobRunner starts an n-rank job and runs fn once per rank, each on its
// own goroutine, with initialized devices. It must clean up afterwards.
type JobRunner func(t *testing.T, n int, fn func(d xdev.Device, rank int, pids []xdev.ProcessID))

// Options tailors the suite to device capabilities.
type Options struct {
	// HasPeek enables the completion-queue peek test.
	HasPeek bool
	// LargeN is the element count used for the large-message test
	// (large enough to cross protocol switch points where relevant).
	LargeN int
	// RendezvousAt is the wire-length threshold (bytes) at which the
	// device switches from eager to rendezvous accounting; 0 means the
	// device has no rendezvous path and counts every send as eager.
	RendezvousAt int
	// RelaxedPostedOrder relaxes the posted-receive half of the
	// MatchOrder test: a device that hands receives to polling worker
	// threads (ibisdev) cannot guarantee which of two receives matching
	// the same message was posted into the engine first. The relaxed
	// check still requires both receives to complete with the right
	// message set, just not the strict first-posted assignment.
	RelaxedPostedOrder bool
}

// RunConformance runs the full suite.
func RunConformance(t *testing.T, run JobRunner, opts Options) {
	if opts.LargeN == 0 {
		opts.LargeN = 100_000
	}
	t.Run("SmallMessage", func(t *testing.T) { testSmall(t, run) })
	t.Run("LargeMessage", func(t *testing.T) { testLarge(t, run, opts.LargeN) })
	t.Run("AnySourceAnyTag", func(t *testing.T) { testWildcards(t, run) })
	t.Run("Ordering", func(t *testing.T) { testOrdering(t, run) })
	t.Run("MatchOrder", func(t *testing.T) { testMatchOrder(t, run, opts.RelaxedPostedOrder) })
	t.Run("OrderingAcrossProtocols", func(t *testing.T) { testOrderingAcrossProtocols(t, run, opts.LargeN) })
	t.Run("SsendSynchronous", func(t *testing.T) { testSsend(t, run) })
	t.Run("SsendUnexpected", func(t *testing.T) { testSsendUnexpected(t, run) })
	t.Run("SelfMessage", func(t *testing.T) { testSelf(t, run) })
	t.Run("Probe", func(t *testing.T) { testProbe(t, run) })
	t.Run("ConcurrentTraffic", func(t *testing.T) { testConcurrent(t, run) })
	t.Run("Counters", func(t *testing.T) { testCounters(t, run, opts.RendezvousAt) })
	t.Run("RMA", func(t *testing.T) { testRMA(t, run) })
	if opts.HasPeek {
		t.Run("Peek", func(t *testing.T) { testPeek(t, run) })
	}
}

func send(t *testing.T, d xdev.Device, dst xdev.ProcessID, tag int, vals []int64) {
	t.Helper()
	buf := mpjbuf.New(len(vals)*8 + 16)
	if err := buf.WriteLongs(vals, 0, len(vals)); err != nil {
		t.Errorf("pack: %v", err)
		return
	}
	if err := d.Send(buf, dst, tag, 0); err != nil {
		t.Errorf("send: %v", err)
	}
}

func recv(t *testing.T, d xdev.Device, src xdev.ProcessID, tag, n int) ([]int64, xdev.Status) {
	t.Helper()
	buf := mpjbuf.New(0)
	st, err := d.Recv(buf, src, tag, 0)
	if err != nil {
		t.Errorf("recv: %v", err)
		return nil, st
	}
	out := make([]int64, n)
	if _, err := buf.ReadLongs(out, 0, n); err != nil {
		t.Errorf("unpack: %v", err)
		return nil, st
	}
	return out, st
}

func testSmall(t *testing.T, run JobRunner) {
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			send(t, d, pids[1], 7, []int64{1, 2, 3})
		} else {
			got, st := recv(t, d, pids[0], 7, 3)
			if len(got) == 3 && got[2] != 3 {
				t.Errorf("got %v", got)
			}
			if st.Source != pids[0] || st.Tag != 7 {
				t.Errorf("status %+v", st)
			}
		}
	})
}

func testLarge(t *testing.T, run JobRunner, n int) {
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(i * 3)
			}
			send(t, d, pids[1], 1, vals)
		} else {
			got, _ := recv(t, d, pids[0], 1, n)
			for i, v := range got {
				if v != int64(i*3) {
					t.Fatalf("element %d = %d", i, v)
				}
			}
		}
	})
}

func testWildcards(t *testing.T, run JobRunner) {
	run(t, 3, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		if rank > 0 {
			send(t, d, pids[0], 20+rank, []int64{int64(rank)})
			return
		}
		seen := map[int64]bool{}
		for i := 0; i < 2; i++ {
			got, st := recv(t, d, xdev.AnySource, xdev.AnyTag, 1)
			if len(got) != 1 {
				return
			}
			seen[got[0]] = true
			if st.Tag != 20+int(got[0]) {
				t.Errorf("tag %d for payload %d", st.Tag, got[0])
			}
		}
		if !seen[1] || !seen[2] {
			t.Errorf("senders seen: %v", seen)
		}
	})
}

func testOrdering(t *testing.T, run JobRunner) {
	const msgs = 40
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			for i := 0; i < msgs; i++ {
				send(t, d, pids[1], 4, []int64{int64(i)})
			}
		} else {
			for i := 0; i < msgs; i++ {
				got, _ := recv(t, d, pids[0], 4, 1)
				if len(got) == 1 && got[0] != int64(i) {
					t.Fatalf("message %d carried %d", i, got[0])
				}
			}
		}
	})
}

// testOrderingAcrossProtocols checks MPI's non-overtaking rule across
// the eager/rendezvous boundary: a large (rendezvous) message sent
// before a small (eager) one on the same (source, tag, context) must
// match the earlier-posted receive, even though the small message's
// payload reaches the receiver first.
func testOrderingAcrossProtocols(t *testing.T, run JobRunner, largeN int) {
	if largeN == 0 {
		largeN = 100_000
	}
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			big := make([]int64, largeN)
			for i := range big {
				big[i] = 7
			}
			send(t, d, pids[1], 5, big)        // rendezvous
			send(t, d, pids[1], 5, []int64{1}) // eager, same stream
		} else {
			first, _ := recv(t, d, pids[0], 5, largeN)
			if len(first) == largeN && (first[0] != 7 || first[largeN-1] != 7) {
				t.Errorf("first receive did not get the large message: head=%v", first[0])
			}
			second, _ := recv(t, d, pids[0], 5, 1)
			if len(second) == 1 && second[0] != 1 {
				t.Errorf("second receive got %v, want the small message", second[0])
			}
		}
	})
}

func testSsend(t *testing.T, run JobRunner) {
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			buf := mpjbuf.New(16)
			buf.WriteLongs([]int64{9}, 0, 1)
			req, err := d.ISsend(buf, pids[1], 3, 0)
			if err != nil {
				t.Error(err)
				return
			}
			time.Sleep(20 * time.Millisecond)
			if _, ok, _ := req.Test(); ok {
				t.Error("synchronous send completed before match")
			}
			send(t, d, pids[1], 4, []int64{0}) // go-ahead
			if _, err := req.Wait(); err != nil {
				t.Error(err)
			}
		} else {
			recv(t, d, pids[0], 4, 1)
			got, _ := recv(t, d, pids[0], 3, 1)
			if len(got) == 1 && got[0] != 9 {
				t.Errorf("got %v", got)
			}
		}
	})
}

// testSsendUnexpected: a synchronous send whose message lands in the
// unexpected queue must complete when the receive is finally posted
// (the match-time ACK path).
func testSsendUnexpected(t *testing.T, run JobRunner) {
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			buf := mpjbuf.New(16)
			buf.WriteLongs([]int64{77}, 0, 1)
			req, err := d.ISsend(buf, pids[1], 6, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := req.Wait(); err != nil {
				t.Errorf("ssend wait: %v", err)
			}
		} else {
			// Let the message land unposted first.
			time.Sleep(60 * time.Millisecond)
			got, _ := recv(t, d, pids[0], 6, 1)
			if len(got) == 1 && got[0] != 77 {
				t.Errorf("got %v", got)
			}
		}
	})
}

func testSelf(t *testing.T, run JobRunner) {
	run(t, 1, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		buf := mpjbuf.New(16)
		buf.WriteLongs([]int64{5}, 0, 1)
		req, err := d.ISend(buf, pids[0], 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := recv(t, d, pids[0], 2, 1)
		if len(got) == 1 && got[0] != 5 {
			t.Errorf("got %v", got)
		}
		if _, err := req.Wait(); err != nil {
			t.Error(err)
		}
	})
}

func testProbe(t *testing.T, run JobRunner) {
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			send(t, d, pids[1], 11, []int64{1, 2})
		} else {
			st, err := d.Probe(pids[0], 11, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if st.Tag != 11 {
				t.Errorf("probe tag %d", st.Tag)
			}
			if _, ok, _ := d.IProbe(xdev.AnySource, 11, 0); !ok {
				t.Error("iprobe missed available message")
			}
			recv(t, d, pids[0], 11, 2)
			if _, ok, _ := d.IProbe(xdev.AnySource, 11, 0); ok {
				t.Error("iprobe saw consumed message")
			}
		}
	})
}

func testConcurrent(t *testing.T, run JobRunner) {
	const goroutines = 6
	const per = 15
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		peer := pids[1-rank]
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					want := int64(g*100 + i)
					buf := mpjbuf.New(16)
					buf.WriteLongs([]int64{want}, 0, 1)
					if err := d.Send(buf, peer, g, 0); err != nil {
						t.Errorf("send: %v", err)
						return
					}
					got, _ := recv(t, d, peer, g, 1)
					if len(got) == 1 && got[0] != want {
						t.Errorf("g%d i%d: got %d want %d", g, i, got[0], want)
					}
				}
			}(g)
		}
		wg.Wait()
	})
}

// testMatchOrder checks the two halves of the MPI matching rule
// (non-overtaking, MPI 3.1 §3.5) that the shared progress core
// implements:
//
//   - among posted receives, the first *posted* match wins, even when
//     the candidates live in different wildcard buckets of the four-key
//     engine (an any-tag receive posted before a concrete-tag receive
//     takes the first message);
//   - among unexpected messages, the first *arrived* match wins: a
//     wildcard receive consumes parked messages in arrival order.
func testMatchOrder(t *testing.T, run JobRunner, relaxedPosted bool) {
	t.Run("PostedOrder", func(t *testing.T) {
		run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
			if rank == 0 {
				// Go-ahead: both receives are posted on rank 1.
				recv(t, d, pids[1], 99, 1)
				send(t, d, pids[1], 5, []int64{1})
				send(t, d, pids[1], 5, []int64{2})
				return
			}
			b1 := mpjbuf.New(0)
			b2 := mpjbuf.New(0)
			r1, err := d.IRecv(b1, pids[0], xdev.AnyTag, 0)
			if err != nil {
				t.Errorf("irecv any-tag: %v", err)
				return
			}
			r2, err := d.IRecv(b2, pids[0], 5, 0)
			if err != nil {
				t.Errorf("irecv tag 5: %v", err)
				return
			}
			send(t, d, pids[0], 99, []int64{0})
			st1, err := r1.Wait()
			if err != nil {
				t.Errorf("wait any-tag: %v", err)
				return
			}
			if _, err := r2.Wait(); err != nil {
				t.Errorf("wait tag 5: %v", err)
				return
			}
			if st1.Tag != 5 {
				t.Errorf("any-tag receive reported tag %d", st1.Tag)
			}
			var p1, p2 [1]int64
			if _, err := b1.ReadLongs(p1[:], 0, 1); err != nil {
				t.Errorf("unpack r1: %v", err)
				return
			}
			if _, err := b2.ReadLongs(p2[:], 0, 1); err != nil {
				t.Errorf("unpack r2: %v", err)
				return
			}
			if relaxedPosted {
				if !(p1[0] == 1 && p2[0] == 2) && !(p1[0] == 2 && p2[0] == 1) {
					t.Errorf("payloads (%d, %d), want {1, 2} in some order", p1[0], p2[0])
				}
				return
			}
			if p1[0] != 1 || p2[0] != 2 {
				t.Errorf("first-posted receive got %d, second got %d; want 1, 2", p1[0], p2[0])
			}
		})
	})
	t.Run("ArrivalOrder", func(t *testing.T) {
		run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
			if rank == 0 {
				send(t, d, pids[1], 7, []int64{1})
				send(t, d, pids[1], 8, []int64{2})
				return
			}
			// Park both messages unexpected before receiving anything.
			deadline := time.Now().Add(10 * time.Second)
			for {
				_, ok7, err7 := d.IProbe(pids[0], 7, 0)
				_, ok8, err8 := d.IProbe(pids[0], 8, 0)
				if err7 != nil || err8 != nil {
					t.Errorf("iprobe: %v / %v", err7, err8)
					return
				}
				if ok7 && ok8 {
					break
				}
				if time.Now().After(deadline) {
					t.Error("messages never both arrived")
					return
				}
				time.Sleep(time.Millisecond)
			}
			got1, st1 := recv(t, d, pids[0], xdev.AnyTag, 1)
			got2, st2 := recv(t, d, pids[0], xdev.AnyTag, 1)
			if len(got1) != 1 || len(got2) != 1 {
				return
			}
			if st1.Tag != 7 || got1[0] != 1 {
				t.Errorf("first wildcard receive got tag %d payload %d, want tag 7 payload 1", st1.Tag, got1[0])
			}
			if st2.Tag != 8 || got2[0] != 2 {
				t.Errorf("second wildcard receive got tag %d payload %d, want tag 8 payload 2", st2.Tag, got2[0])
			}
		})
	})
}

// testCounters runs a fixed message script — K unexpected eager sends,
// then N eager and M rendezvous sends into pre-posted receives — and
// asserts every device reports the same mpe counters for it:
//
//	rank 0 (sender):   EagerSent = K+N, RndvSent = M (all eager when
//	                   the device has no rendezvous path), plus the
//	                   matched go-ahead receive;
//	rank 1 (receiver): Unexpected = K, Matched = N+M, EagerSent = 1.
//
// Matched/Unexpected count the arrival-time matching decision; a
// parked unexpected message consumed by a later receive does not
// become Matched. This is the cross-device contract mpjtrace's
// summaries rely on.
func testCounters(t *testing.T, run JobRunner, rendezvousAt int) {
	const (
		nEager      = 3
		mRndv       = 2
		kUnexpected = 2
	)
	smallVals := []int64{1, 2, 3}
	largeElems := 32 << 10 // 256 KiB payload
	if rendezvousAt > 0 {
		largeElems = rendezvousAt / 8 * 2 // safely past the switch point
	}
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		src, ok := d.(mpe.StatsSource)
		if !ok {
			t.Errorf("device %T does not expose Stats()", d)
			return
		}
		if rank == 0 {
			for i := 0; i < kUnexpected; i++ {
				send(t, d, pids[1], 100+i, smallVals)
			}
			recv(t, d, pids[1], 99, 1) // go-ahead: receives are posted
			for i := 0; i < nEager; i++ {
				send(t, d, pids[1], i, smallVals)
			}
			big := make([]int64, largeElems)
			for i := 0; i < mRndv; i++ {
				send(t, d, pids[1], 10+i, big)
			}
			st := src.Stats()
			wantEager, wantRndv := uint64(kUnexpected+nEager), uint64(mRndv)
			if rendezvousAt == 0 {
				wantEager, wantRndv = wantEager+wantRndv, 0
			}
			if st.EagerSent != wantEager || st.RndvSent != wantRndv {
				t.Errorf("rank 0 sends: eager=%d rndv=%d, want eager=%d rndv=%d",
					st.EagerSent, st.RndvSent, wantEager, wantRndv)
			}
			if st.BytesSent == 0 {
				t.Error("rank 0: BytesSent = 0")
			}
			if st.Matched != 1 || st.Unexpected != 0 {
				t.Errorf("rank 0 matching: matched=%d unexpected=%d, want the go-ahead matched",
					st.Matched, st.Unexpected)
			}
			return
		}
		// Rank 1: wait for the K messages to arrive unposted.
		for i := 0; i < kUnexpected; i++ {
			for {
				_, ok, err := d.IProbe(pids[0], 100+i, 0)
				if err != nil {
					t.Errorf("iprobe: %v", err)
					return
				}
				if ok {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		// Post the N+M receives, let them register, then release the
		// sender so their messages arrive matched.
		var wg sync.WaitGroup
		post := func(tag, n int) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				recv(t, d, pids[0], tag, n)
			}()
		}
		for i := 0; i < nEager; i++ {
			post(i, len(smallVals))
		}
		for i := 0; i < mRndv; i++ {
			post(10+i, largeElems)
		}
		time.Sleep(100 * time.Millisecond)
		send(t, d, pids[0], 99, []int64{0})
		wg.Wait()
		// Consuming the parked unexpected messages must not count as
		// Matched.
		for i := 0; i < kUnexpected; i++ {
			recv(t, d, pids[0], 100+i, len(smallVals))
		}
		st := src.Stats()
		if st.Unexpected != kUnexpected {
			t.Errorf("rank 1: unexpected=%d, want %d", st.Unexpected, kUnexpected)
		}
		if st.Matched != nEager+mRndv {
			t.Errorf("rank 1: matched=%d, want %d", st.Matched, nEager+mRndv)
		}
		if st.EagerSent != 1 {
			t.Errorf("rank 1: eagerSent=%d, want 1 (the go-ahead)", st.EagerSent)
		}
	})
}

func testPeek(t *testing.T, run JobRunner) {
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			buf := mpjbuf.New(0)
			req, err := d.IRecv(buf, pids[1], 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.Peek()
			if err != nil {
				t.Fatal(err)
			}
			if got != req {
				t.Error("peek returned a different request")
			}
		} else {
			send(t, d, pids[0], 3, []int64{1})
		}
	})
}
