package devtest

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mpj/internal/ckpt"
	"mpj/internal/core"
	"mpj/internal/xdev"
)

// Survivor-continues recovery conformance: one rank dies mid-operation
// and the remaining ranks must observe a typed failure, revoke the
// damaged communicator, agree on the surviving membership, shrink, and
// keep computing on the result — the ULFM recovery contract of
// internal/core, exercised over a real device. The suite layers core
// onto the runner's already-initialized devices with core.Attach.

// RunRecovery runs the recovery suite. The device must implement
// xdev.PeerChecker and xdev.Revoker (all four in-tree devices do).
func RunRecovery(t *testing.T, run JobRunner) {
	t.Run("KillMidCollective", func(t *testing.T) { testRecoverMidCollective(t, run) })
	t.Run("KillMidRendezvous", func(t *testing.T) { testRecoverMidRendezvous(t, run) })
	t.Run("KillMidFence", func(t *testing.T) { testRecoverMidFence(t, run) })
	t.Run("RestoreAfterLoss", func(t *testing.T) { testRecoverRestore(t, run) })
}

// attach layers MPI semantics onto the runner's device.
func attach(t *testing.T, d xdev.Device, pids []xdev.ProcessID, rank int) *core.Intracomm {
	t.Helper()
	p, err := core.Attach(d, pids, rank)
	if err != nil {
		t.Errorf("rank %d: attach: %v", rank, err)
		return nil
	}
	return p.World()
}

// ckptDir picks where a recovery test writes its checkpoints. By
// default that is the test's own temp dir, reaped on completion; when
// MPJ_CKPT_ARTIFACT_DIR is set (the CI recovery job), checkpoints land
// in a per-test subdirectory of it instead so the manifests survive
// the run and can be uploaded as artifacts.
func ckptDir(t *testing.T) string {
	t.Helper()
	keep := os.Getenv("MPJ_CKPT_ARTIFACT_DIR")
	if keep == "" {
		return t.TempDir()
	}
	// Prefix with the test binary name: several device packages run the
	// same-named conformance test concurrently under `go test ./...`.
	dir := filepath.Join(keep,
		filepath.Base(os.Args[0])+"_"+strings.ReplaceAll(t.Name(), "/", "_"))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("MPJ_CKPT_ARTIFACT_DIR: %v", err)
	}
	return dir
}

// awaitDeath blocks until the device reports pid dead.
func awaitDeath(t *testing.T, rank int, d xdev.Device, pid xdev.ProcessID) bool {
	t.Helper()
	ck, ok := d.(xdev.PeerChecker)
	if !ok {
		t.Errorf("rank %d: device %T does not implement xdev.PeerChecker", rank, d)
		return false
	}
	deadline := time.Now().Add(chaosTimeout)
	for ck.PeerErr(pid) == nil {
		if time.Now().After(deadline) {
			t.Errorf("rank %d: peer death never detected", rank)
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// revokedOrLost reports whether err is one of the two sentinels a
// recovery-released operation may legitimately surface: the explicit
// revocation, or the device noticing the dead peer first.
func revokedOrLost(err error) bool {
	return errors.Is(err, xdev.ErrRevoked) || errors.Is(err, xdev.ErrPeerLost)
}

// shrinkAndCheck shrinks the (already revoked) communicator and proves
// the result fully operational with an Allreduce whose value depends
// on every survivor, then an agreement round.
func shrinkAndCheck(t *testing.T, w *core.Intracomm, survivors int) {
	t.Helper()
	nw, err := w.Shrink()
	if err != nil {
		t.Errorf("rank %d: Shrink: %v", w.Rank(), err)
		return
	}
	if nw.Size() != survivors {
		t.Errorf("rank %d: shrunken size = %d, want %d", w.Rank(), nw.Size(), survivors)
		return
	}
	in, out := []int64{int64(nw.Rank() + 1)}, []int64{0}
	if err := nw.Allreduce(in, 0, out, 0, 1, core.LONG, core.SUM); err != nil {
		t.Errorf("rank %d: Allreduce on shrunken comm: %v", w.Rank(), err)
		return
	}
	if want := int64(survivors * (survivors + 1) / 2); out[0] != want {
		t.Errorf("rank %d: Allreduce = %d, want %d", w.Rank(), out[0], want)
	}
	// Agreement on the fresh communicator: AND of flags that each
	// clear one distinct bit is zero.
	all := int64(1)<<uint(survivors) - 1
	v, err := nw.Agree(all &^ (1 << uint(nw.Rank())))
	if err != nil {
		t.Errorf("rank %d: Agree on shrunken comm: %v", w.Rank(), err)
	} else if v != 0 {
		t.Errorf("rank %d: Agree = %#b, want 0", w.Rank(), v)
	}
}

// testRecoverMidCollective: the survivors are blocked inside a
// collective the victim never joins when it dies. Revocation must
// release every one of them — including ranks blocked on live peers
// that already aborted the collective — and the shrunken communicator
// must work.
func testRecoverMidCollective(t *testing.T, run JobRunner) {
	const n, victim = 4, 1
	run(t, n, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		w := attach(t, d, pids, rank)
		if w == nil {
			return
		}
		if err := w.Barrier(); err != nil {
			t.Errorf("rank %d: barrier: %v", rank, err)
			return
		}
		if rank == victim {
			time.Sleep(100 * time.Millisecond) // let survivors enter the collective
			d.Finish()
			return
		}
		errc := make(chan error, 1)
		go func() {
			in, out := []int64{1}, []int64{0}
			errc <- w.Allreduce(in, 0, out, 0, 1, core.LONG, core.SUM)
		}()
		if !awaitDeath(t, rank, d, pids[victim]) {
			return
		}
		if err := w.Revoke(); err != nil {
			t.Errorf("rank %d: Revoke: %v", rank, err)
			return
		}
		select {
		case err := <-errc:
			if err == nil {
				t.Errorf("rank %d: collective with dead peer returned nil error", rank)
			} else if !revokedOrLost(err) {
				t.Errorf("rank %d: collective error %v is not revoked/peer-lost", rank, err)
			}
		case <-time.After(chaosTimeout):
			t.Errorf("rank %d: collective still blocked after revoke", rank)
			return
		}
		shrinkAndCheck(t, w, n-1)
	})
}

// testRecoverMidRendezvous: rank 0 is blocked in a rendezvous-sized
// send to the victim — which never posts the receive and dies — when
// the survivors revoke. The send must complete (with a typed error or,
// on an eager-buffering device, cleanly), never hang.
func testRecoverMidRendezvous(t *testing.T, run JobRunner) {
	const n, victim = 4, 2
	run(t, n, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		w := attach(t, d, pids, rank)
		if w == nil {
			return
		}
		if err := w.Barrier(); err != nil {
			t.Errorf("rank %d: barrier: %v", rank, err)
			return
		}
		if rank == victim {
			time.Sleep(150 * time.Millisecond) // stay alive until the send is in flight
			d.Finish()
			return
		}
		var sendc chan error
		if rank == 0 {
			sendc = make(chan error, 1)
			go func() {
				big := make([]int64, 256<<10) // 2 MiB: past every eager limit
				sendc <- w.Send(big, 0, len(big), core.LONG, victim, 5)
			}()
		}
		if !awaitDeath(t, rank, d, pids[victim]) {
			return
		}
		if err := w.Revoke(); err != nil {
			t.Errorf("rank %d: Revoke: %v", rank, err)
			return
		}
		if sendc != nil {
			select {
			case err := <-sendc:
				if err != nil && !revokedOrLost(err) {
					t.Errorf("rank 0: rendezvous send error %v is not revoked/peer-lost", err)
				}
			case <-time.After(chaosTimeout):
				t.Error("rank 0: rendezvous send to dead peer still blocked after revoke")
				return
			}
		}
		shrinkAndCheck(t, w, n-1)
	})
}

// testRecoverMidFence: the survivors are blocked in a window fence the
// victim never reaches. Revoking the communicator must poison the
// window and fail the fence instead of letting it hang.
func testRecoverMidFence(t *testing.T, run JobRunner) {
	const n, victim = 3, 0
	run(t, n, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		w := attach(t, d, pids, rank)
		if w == nil {
			return
		}
		// Window creation is collective and fences internally, so the
		// victim participates here and every rank holds a live window.
		win, err := w.WinCreate(make([]byte, 1024))
		if err != nil {
			t.Errorf("rank %d: WinCreate: %v", rank, err)
			return
		}
		if rank == victim {
			time.Sleep(100 * time.Millisecond) // let survivors enter the fence
			d.Finish()
			return
		}
		errc := make(chan error, 1)
		go func() {
			// A put to the fellow survivor keeps the epoch non-trivial.
			_ = win.Put(make([]byte, 64), n-rank, 0)
			errc <- win.Fence()
		}()
		if !awaitDeath(t, rank, d, pids[victim]) {
			return
		}
		if err := w.Revoke(); err != nil {
			t.Errorf("rank %d: Revoke: %v", rank, err)
			return
		}
		select {
		case err := <-errc:
			if err == nil {
				t.Errorf("rank %d: fence with dead peer returned nil error", rank)
			} else if !revokedOrLost(err) {
				t.Errorf("rank %d: fence error %v is not revoked/peer-lost", rank, err)
			}
		case <-time.After(chaosTimeout):
			t.Errorf("rank %d: fence still blocked after revoke", rank)
			return
		}
		shrinkAndCheck(t, w, n-1)
	})
}

// testRecoverRestore is the full flight plan: coordinated checkpoint,
// rank loss, revoke, shrink, restore — every survivor gets its own
// pre-failure state back under its old rank number.
func testRecoverRestore(t *testing.T, run JobRunner) {
	const n, victim = 4, 1
	dir := ckptDir(t)
	state := func(rank int) []byte {
		data := make([]byte, 128)
		for i := range data {
			data[i] = byte(rank*37 + i)
		}
		return data
	}
	run(t, n, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		w := attach(t, d, pids, rank)
		if w == nil {
			return
		}
		// The victim dies the instant its Checkpoint returns, and a
		// fast-detecting survivor may revoke while this rank is still in
		// the exit barrier. The checkpoint is complete regardless — the
		// victim cannot pass its exit barrier (and so cannot die) before
		// the manifest is published — so a revoked/peer-lost exit here is
		// part of the script, not a failure. Bailing instead would leave
		// the other survivors deadlocked in Agree waiting for this rank.
		err := ckpt.Checkpoint(w, dir, "s1", ckpt.Region{Name: "state", Data: state(rank)})
		if rank == victim {
			if err != nil {
				t.Errorf("rank %d: Checkpoint: %v", rank, err)
			}
			d.Finish()
			return
		}
		if err != nil && !revokedOrLost(err) {
			t.Errorf("rank %d: Checkpoint: %v", rank, err)
			return
		}
		if !awaitDeath(t, rank, d, pids[victim]) {
			return
		}
		if err := w.Revoke(); err != nil {
			t.Errorf("rank %d: Revoke: %v", rank, err)
			return
		}
		nw, err := w.Shrink()
		if err != nil {
			t.Errorf("rank %d: Shrink: %v", rank, err)
			return
		}
		id, err := ckpt.Latest(dir)
		if err != nil || id != "s1" {
			t.Errorf("rank %d: Latest = %q, %v", rank, id, err)
			return
		}
		snaps, err := ckpt.Restore(dir, id, w.Group(), nw)
		if err != nil {
			t.Errorf("rank %d: Restore: %v", rank, err)
			return
		}
		own := snaps[rank] // keyed by old rank
		if own == nil {
			t.Errorf("old rank %d (new %d): own snapshot missing", rank, nw.Rank())
			return
		}
		if string(own.Regions["state"]) != string(state(rank)) {
			t.Errorf("old rank %d: restored state mismatch", rank)
		}
	})
}
