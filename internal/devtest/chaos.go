package devtest

import (
	"errors"
	"testing"
	"time"

	"mpj/internal/mpjbuf"
	"mpj/internal/xdev"
)

// ChaosOptions tailors the failure-semantics suite to device
// capabilities.
type ChaosOptions struct {
	// HasPeek enables the blocked-Peek teardown test.
	HasPeek bool
}

// chaosTimeout bounds how long a blocked call may take to surface its
// failure; anything slower counts as a hang.
const chaosTimeout = 10 * time.Second

// RunChaos runs the failure-semantics conformance suite. The contract
// it checks, on every device: blocking calls return typed errors —
// never hang — when the device is finished underneath them or a peer
// rank dies mid-job.
func RunChaos(t *testing.T, run JobRunner, opts ChaosOptions) {
	t.Run("FinishUnblocksRecv", func(t *testing.T) { testFinishUnblocksRecv(t, run) })
	if opts.HasPeek {
		t.Run("FinishUnblocksPeek", func(t *testing.T) { testFinishUnblocksPeek(t, run) })
	}
	t.Run("KillOneRank", func(t *testing.T) { testKillOneRank(t, run) })
	t.Run("KillDuringFence", func(t *testing.T) { testKillDuringFence(t, run) })
	t.Run("KillDuringLock", func(t *testing.T) { testKillDuringLock(t, run) })
}

// closedOrLost reports whether err carries one of the sentinels a
// torn-down operation may legitimately surface.
func closedOrLost(err error) bool {
	return errors.Is(err, xdev.ErrDeviceClosed) ||
		errors.Is(err, xdev.ErrPeerLost) ||
		errors.Is(err, xdev.ErrAborted)
}

// testFinishUnblocksRecv: Finish while another goroutine is blocked in
// Recv must fail that receive with a typed error instead of leaving it
// wedged (the teardown path an aborting job depends on).
func testFinishUnblocksRecv(t *testing.T, run JobRunner) {
	run(t, 2, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		if rank == 0 {
			return // never sends: rank 1's receive can only end via Finish
		}
		errc := make(chan error, 1)
		go func() {
			buf := mpjbuf.New(0)
			_, err := d.Recv(buf, pids[0], 42, 0)
			errc <- err
		}()
		time.Sleep(50 * time.Millisecond) // let the receive block
		d.Finish()
		select {
		case err := <-errc:
			if err == nil {
				t.Error("recv on finished device returned nil error")
			} else if !closedOrLost(err) {
				t.Errorf("recv error %v is not a typed closed/lost/aborted error", err)
			}
		case <-time.After(chaosTimeout):
			t.Error("recv still blocked after Finish")
		}
	})
}

// testFinishUnblocksPeek: a goroutine blocked in Peek (the primitive
// beneath Waitany) must wake with an error when the device finishes.
func testFinishUnblocksPeek(t *testing.T, run JobRunner) {
	run(t, 1, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		errc := make(chan error, 1)
		go func() {
			_, err := d.Peek()
			errc <- err
		}()
		time.Sleep(50 * time.Millisecond)
		d.Finish()
		select {
		case err := <-errc:
			if err == nil {
				t.Error("peek on finished device returned a request")
			}
		case <-time.After(chaosTimeout):
			t.Error("peek still blocked after Finish")
		}
	})
}

// testKillOneRank: after real traffic proves the job wired, one rank
// dies while every survivor is blocked receiving from it. Each
// survivor's receive must fail with an error wrapping xdev.ErrPeerLost
// within the timeout — the job tears down instead of hanging.
// testKillDuringFence: one rank dies mid-epoch, between a window's
// creation and the next collective fence. Every survivor's Fence must
// fail with an error wrapping xdev.ErrPeerLost within the timeout —
// one-sided synchronization has the same no-hang contract as blocking
// receives.
func testKillDuringFence(t *testing.T, run JobRunner) {
	const victim = 0
	ctx := int(4096 + rmaCtxCounter.Add(1))
	run(t, 3, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		// Window creation is collective and fences internally, so every
		// rank — the victim included — holds a live window here.
		w := newWin(t, d, rank, pids, ctx, make([]byte, 1024))

		if rank == victim {
			time.Sleep(100 * time.Millisecond) // let survivors enter the fence
			d.Finish()                         // dies without Free: mid-epoch
			return
		}
		errc := make(chan error, 1)
		go func() {
			// A put to a fellow survivor keeps the epoch non-trivial.
			_ = w.Put(make([]byte, 64), 3-rank, 0)
			errc <- w.Fence()
		}()
		select {
		case err := <-errc:
			if err == nil {
				t.Errorf("rank %d: fence with dead peer returned nil error", rank)
			} else if !errors.Is(err, xdev.ErrPeerLost) {
				t.Errorf("rank %d: fence error %v does not wrap ErrPeerLost", rank, err)
			}
		case <-time.After(chaosTimeout):
			t.Errorf("rank %d: fence still blocked after peer death", rank)
		}
		_ = w.Free() // teardown must not hang either: the window is failed
	})
}

// testKillDuringLock: passive-target epochs have the same no-hang
// contract as fences. The victim dies after window creation; each
// survivor then opens a lock epoch targeting the dead rank. The grant
// can never arrive, so Lock (or the Unlock draining the epoch's
// operations) must fail with an error wrapping xdev.ErrPeerLost within
// the timeout instead of blocking.
func testKillDuringLock(t *testing.T, run JobRunner) {
	const victim = 0
	ctx := int(4096 + rmaCtxCounter.Add(1))
	run(t, 3, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		// Window creation is collective, so the victim participates and
		// every rank holds a live window before the death.
		w := newWin(t, d, rank, pids, ctx, make([]byte, 1024))

		if rank == victim {
			d.Finish() // dies holding its region: grants can never come
			return
		}
		// Make the death observable before requesting the lock, so the
		// epoch is pending against a peer that is already gone.
		if ck, ok := d.(xdev.PeerChecker); ok {
			deadline := time.Now().Add(chaosTimeout)
			for ck.PeerErr(pids[victim]) == nil && !time.Now().After(deadline) {
				time.Sleep(time.Millisecond)
			}
		} else {
			time.Sleep(200 * time.Millisecond)
		}
		errc := make(chan error, 1)
		go func() {
			err := w.Lock(victim, false)
			if err == nil {
				_ = w.Put(make([]byte, 64), victim, 0)
				err = w.Unlock(victim)
			}
			errc <- err
		}()
		select {
		case err := <-errc:
			if err == nil {
				t.Errorf("rank %d: lock epoch on dead rank returned nil error", rank)
			} else if !errors.Is(err, xdev.ErrPeerLost) {
				t.Errorf("rank %d: lock epoch error %v does not wrap ErrPeerLost", rank, err)
			}
		case <-time.After(chaosTimeout):
			t.Errorf("rank %d: lock epoch still blocked after peer death", rank)
		}
		_ = w.Free() // teardown must not hang either: the window is failed
	})
}

func testKillOneRank(t *testing.T, run JobRunner) {
	const victim = 0
	run(t, 4, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		n := len(pids)
		send(t, d, pids[(rank+1)%n], 1, []int64{int64(rank)})
		recv(t, d, pids[(rank-1+n)%n], 1, 1)

		if rank == victim {
			time.Sleep(100 * time.Millisecond) // let survivors block first
			d.Finish()
			return
		}
		errc := make(chan error, 1)
		go func() {
			buf := mpjbuf.New(0)
			_, err := d.Recv(buf, pids[victim], 99, 0)
			errc <- err
		}()
		select {
		case err := <-errc:
			if err == nil {
				t.Errorf("rank %d: recv from dead rank returned nil error", rank)
			} else if !errors.Is(err, xdev.ErrPeerLost) {
				t.Errorf("rank %d: recv error %v does not wrap ErrPeerLost", rank, err)
			}
		case <-time.After(chaosTimeout):
			t.Errorf("rank %d: recv from dead rank still blocked", rank)
		}
	})
}
