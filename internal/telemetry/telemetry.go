// Package telemetry is the live observability endpoint of a running
// job: an opt-in, per-rank HTTP server (MPJ_METRICS_ADDR /
// Options.MetricsAddr) exposing
//
//   - /metrics — Prometheus text exposition of every mpe counter and
//     latency histogram;
//   - /introspect — a JSON dump of live progress-engine state
//     (posted/unexpected queue depths, in-flight protocol exchanges,
//     per-peer failure state) from internal/devcore;
//   - /debug/pprof/ — the standard Go profiler endpoints.
//
// PR 1's tracing answers "what happened" after finalize; this package
// answers "what is happening" while the job runs. One process can host
// several ranks (RunLocal) — each registers a Source and the endpoints
// fan over all of them. The mpjrt daemon and mpjrun aggregate many
// per-rank servers into one job-level view (see aggregate.go).
//
// Stdlib only: net/http, net/http/pprof, encoding/json.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"mpj/internal/mpe"
	"mpj/internal/replay"
)

// Source is one rank's view into its live device state. Stats is
// required; SendHist/RecvHist/Introspect are nil when the rank is not
// tracing or the device exposes no introspection.
type Source struct {
	Rank       int
	Device     string
	Stats      func() mpe.CounterSnapshot
	SendHist   func() mpe.HistSnapshot
	RecvHist   func() mpe.HistSnapshot
	Introspect func() any
	// RmaHist reports the rank's RMA fence-epoch latency histogram
	// (nil when not tracing).
	RmaHist func() mpe.HistSnapshot
	// RecoveryHist reports the rank's fault-recovery latency histogram
	// (Recovered spans; nil when not tracing).
	RecoveryHist func() mpe.HistSnapshot
	// RMA reports the rank's live one-sided window state (nil when the
	// rank has no windows to report).
	RMA func() any
	// Replay reports the rank's record/replay session state (nil when
	// neither recording nor replaying).
	Replay func() replay.State
}

// Introspector is implemented by devices that can dump their live
// progress-engine state (all four devices in this repository).
type Introspector interface {
	Introspect() any
}

// Server is one process's telemetry endpoint, serving every rank
// registered with it.
type Server struct {
	mu      sync.Mutex
	sources []Source
	ln      net.Listener
	srv     *http.Server
}

// NewServer returns an empty telemetry server; Register sources, then
// Start it.
func NewServer() *Server { return &Server{} }

// Register adds a rank's source. Safe to call while serving.
func (s *Server) Register(src Source) {
	s.mu.Lock()
	s.sources = append(s.sources, src)
	s.mu.Unlock()
}

// snapshot returns the registered sources, rank-ordered.
func (s *Server) snapshot() []Source {
	s.mu.Lock()
	out := append([]Source(nil), s.sources...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// Handler returns the endpoint mux: /metrics, /introspect, and
// /debug/pprof/*.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/introspect", s.serveIntrospect)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (host:port; :0 picks a free port) and serves
// until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	srv := s.srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops serving. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, s.snapshot())
}

func (s *Server) serveIntrospect(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	out := map[string]any{}
	for _, src := range s.snapshot() {
		st := map[string]any{"device": src.Device}
		if src.Introspect != nil {
			st["state"] = src.Introspect()
		}
		if src.RMA != nil {
			if ws := src.RMA(); ws != nil {
				st["rma"] = ws
			}
		}
		if src.Replay != nil {
			st["replay"] = src.Replay()
		}
		out[fmt.Sprint(src.Rank)] = st
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(map[string]any{"ranks": out})
}

// counterDefs maps every CounterSnapshot field to a Prometheus metric.
var counterDefs = []struct {
	name, help string
	get        func(mpe.CounterSnapshot) uint64
}{
	{"mpj_eager_sent_total", "Sends that took the eager protocol.", func(c mpe.CounterSnapshot) uint64 { return c.EagerSent }},
	{"mpj_rndv_sent_total", "Sends that took the rendezvous protocol.", func(c mpe.CounterSnapshot) uint64 { return c.RndvSent }},
	{"mpj_bytes_sent_total", "Payload bytes handed to the transport.", func(c mpe.CounterSnapshot) uint64 { return c.BytesSent }},
	{"mpj_recv_unexpected_total", "Arrivals parked with no posted receive.", func(c mpe.CounterSnapshot) uint64 { return c.Unexpected }},
	{"mpj_recv_matched_total", "Arrivals that found a posted receive.", func(c mpe.CounterSnapshot) uint64 { return c.Matched }},
	{"mpj_peers_lost_total", "Peer processes declared dead.", func(c mpe.CounterSnapshot) uint64 { return c.PeersLost }},
	{"mpj_frames_corrupt_total", "Wire frames rejected by the integrity check.", func(c mpe.CounterSnapshot) uint64 { return c.FramesCorrupt }},
	{"mpj_requests_failed_total", "Requests completed with an error.", func(c mpe.CounterSnapshot) uint64 { return c.RequestsFailed }},
	{"mpj_coll_segs_sent_total", "Pipeline segments sent by segmented collectives.", func(c mpe.CounterSnapshot) uint64 { return c.CollSegsSent }},
	{"mpj_coll_segs_recv_total", "Pipeline segments received by segmented collectives.", func(c mpe.CounterSnapshot) uint64 { return c.CollSegsRecv }},
	{"mpj_rma_puts_total", "One-sided Put operations issued as origin.", func(c mpe.CounterSnapshot) uint64 { return c.RmaPuts }},
	{"mpj_rma_gets_total", "One-sided Get operations issued as origin.", func(c mpe.CounterSnapshot) uint64 { return c.RmaGets }},
	{"mpj_rma_accs_total", "One-sided Accumulate operations issued as origin.", func(c mpe.CounterSnapshot) uint64 { return c.RmaAccs }},
	{"mpj_rma_bytes_total", "Payload bytes moved by one-sided operations issued as origin.", func(c mpe.CounterSnapshot) uint64 { return c.RmaBytes }},
	{"mpj_send_batches_total", "Coalesced wire writes issued by the async send engine.", func(c mpe.CounterSnapshot) uint64 { return c.SendBatches }},
	{"mpj_frames_coalesced_total", "Frames carried by the send engine's coalesced writes.", func(c mpe.CounterSnapshot) uint64 { return c.FramesCoalesced }},
	{"mpj_send_batch_bytes_total", "Wire bytes (headers+payload) written by the send engine.", func(c mpe.CounterSnapshot) uint64 { return c.SendBatchBytes }},
	{"mpj_comm_revokes_total", "Communicator revocations initiated by this rank.", func(c mpe.CounterSnapshot) uint64 { return c.CommRevokes }},
	{"mpj_comm_shrinks_total", "Successful communicator Shrink operations.", func(c mpe.CounterSnapshot) uint64 { return c.CommShrinks }},
	{"mpj_comm_agrees_total", "Completed fault-tolerant agreement rounds.", func(c mpe.CounterSnapshot) uint64 { return c.CommAgrees }},
	{"mpj_replay_decisions_recorded_total", "Nondeterministic decisions captured by the record log.", func(c mpe.CounterSnapshot) uint64 { return c.DecisionsRecorded }},
	{"mpj_replay_decisions_enforced_total", "Recorded decisions enforced during replay.", func(c mpe.CounterSnapshot) uint64 { return c.DecisionsEnforced }},
	{"mpj_replay_stalls_total", "Completions parked waiting for their recorded turn.", func(c mpe.CounterSnapshot) uint64 { return c.ReplayStalls }},
}

// WriteMetrics writes the Prometheus text exposition (format 0.0.4)
// for the given rank sources: one sample per counter per rank, plus
// cumulative histograms of the send/recv completion latencies when the
// rank is tracing.
func WriteMetrics(w io.Writer, sources []Source) {
	stats := make([]mpe.CounterSnapshot, len(sources))
	for i, src := range sources {
		stats[i] = src.Stats()
	}
	for _, def := range counterDefs {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", def.name, def.help, def.name)
		for i, src := range sources {
			fmt.Fprintf(w, "%s{rank=\"%d\",device=\"%s\"} %d\n",
				def.name, src.Rank, src.Device, def.get(stats[i]))
		}
	}
	writeHistFamily(w, sources, "mpj_send_latency_ns",
		"Send completion latency in nanoseconds, by message-size class.",
		func(s Source) func() mpe.HistSnapshot { return s.SendHist })
	writeHistFamily(w, sources, "mpj_recv_latency_ns",
		"Receive completion latency in nanoseconds, by message-size class.",
		func(s Source) func() mpe.HistSnapshot { return s.RecvHist })
	writeHistFamily(w, sources, "mpj_rma_fence_latency_ns",
		"RMA fence epoch latency in nanoseconds, by epoch-bytes class.",
		func(s Source) func() mpe.HistSnapshot { return s.RmaHist })
	writeHistFamily(w, sources, "mpj_recovery_latency_ns",
		"Fault-recovery (Shrink) latency in nanoseconds, by ranks-lost class.",
		func(s Source) func() mpe.HistSnapshot { return s.RecoveryHist })
	headed := false
	for _, src := range sources {
		if src.Replay == nil {
			continue
		}
		if !headed {
			fmt.Fprint(w, "# HELP mpj_replay_append_avg_ns Mean nanoseconds spent appending one decision record (recording overhead).\n# TYPE mpj_replay_append_avg_ns gauge\n")
			headed = true
		}
		st := src.Replay()
		fmt.Fprintf(w, "mpj_replay_append_avg_ns{rank=\"%d\",device=\"%s\",mode=\"%s\"} %g\n",
			src.Rank, src.Device, st.Mode, st.AvgAppendNS)
	}
}

func writeHistFamily(w io.Writer, sources []Source, name, help string, pick func(Source) func() mpe.HistSnapshot) {
	headed := false
	for _, src := range sources {
		get := pick(src)
		if get == nil {
			continue
		}
		if !headed {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
			headed = true
		}
		snap := get()
		for _, b := range snap.Buckets {
			labels := fmt.Sprintf("rank=\"%d\",device=\"%s\",size=\"%s\"", src.Rank, src.Device, b.Label)
			// mpe duration bucket d holds [2^d, 2^(d+1)) ns (d=0 also
			// catches <=1ns), so the cumulative Prometheus le is the
			// bucket's upper bound 2^(d+1).
			var cum uint64
			for d, c := range b.Counts {
				cum += c
				if c == 0 && d > 0 && d < len(b.Counts)-1 {
					continue // keep the exposition compact: only emit buckets that moved
				}
				fmt.Fprintf(w, "%s_bucket{%s,le=\"%d\"} %d\n", name, labels, uint64(1)<<uint(d+1), cum)
			}
			fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, b.Count)
			fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, b.SumNS)
			fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, b.Count)
		}
	}
}

// baseName strips histogram sample suffixes so every line of a family
// groups under its # TYPE name.
func baseName(metric string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(metric, suf) {
			return strings.TrimSuffix(metric, suf)
		}
	}
	return metric
}
