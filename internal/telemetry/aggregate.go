package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Aggregator merges several per-rank telemetry servers into one
// job-level view: GET /metrics scrapes every registered target and
// concatenates the expositions family by family, GET /introspect
// returns a JSON object keyed by target name. The mpjrt daemon mounts
// one per job; mpjrun -metrics serves one for the whole job from the
// submitting host.
type Aggregator struct {
	mu      sync.Mutex
	targets map[string]string // name -> base URL ("http://host:port")
	client  *http.Client
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{
		targets: make(map[string]string),
		client:  &http.Client{Timeout: 5 * time.Second},
	}
}

// Add registers (or replaces) a scrape target. addr is host:port; the
// scheme is added here.
func (a *Aggregator) Add(name, addr string) {
	a.mu.Lock()
	a.targets[name] = "http://" + addr
	a.mu.Unlock()
}

// Remove drops a target.
func (a *Aggregator) Remove(name string) {
	a.mu.Lock()
	delete(a.targets, name)
	a.mu.Unlock()
}

// Targets returns the registered target names, sorted.
func (a *Aggregator) Targets() []string {
	a.mu.Lock()
	names := make([]string, 0, len(a.targets))
	for n := range a.targets {
		names = append(names, n)
	}
	a.mu.Unlock()
	sort.Strings(names)
	return names
}

func (a *Aggregator) urlOf(name string) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.targets[name]
}

// ServeHTTP serves /metrics and /introspect over the registered
// targets. Unreachable targets are reported inline (a comment line in
// /metrics, an error entry in /introspect) rather than failing the
// whole scrape — a dead rank must not blind the survivors' telemetry.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/metrics", "/":
		a.serveMetrics(w)
	case "/introspect":
		a.serveIntrospect(w)
	default:
		http.NotFound(w, r)
	}
}

func (a *Aggregator) fetch(name, path string) ([]byte, error) {
	url := a.urlOf(name)
	if url == "" {
		return nil, fmt.Errorf("telemetry: unknown target %q", name)
	}
	resp, err := a.client.Get(url + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("telemetry: %s%s: %s", url, path, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func (a *Aggregator) serveMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var pages []string
	for _, name := range a.Targets() {
		body, err := a.fetch(name, "/metrics")
		if err != nil {
			fmt.Fprintf(w, "# scrape error: target %s: %v\n", name, err)
			continue
		}
		pages = append(pages, string(body))
	}
	_, _ = io.WriteString(w, MergeExpositions(pages))
}

func (a *Aggregator) serveIntrospect(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	out := map[string]any{}
	for _, name := range a.Targets() {
		body, err := a.fetch(name, "/introspect")
		if err != nil {
			out[name] = map[string]string{"error": err.Error()}
			continue
		}
		out[name] = json.RawMessage(body)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(out)
}

// MergeExpositions concatenates Prometheus text expositions family by
// family: each metric family keeps one # HELP/# TYPE header (the first
// seen) and collects every page's samples under it, in page order —
// per-rank label sets keep the samples distinct. Families appear in
// first-seen order, so merging identical page sets is deterministic.
func MergeExpositions(pages []string) string {
	type family struct {
		header  []string
		samples []string
	}
	byName := map[string]*family{}
	var order []string
	fam := func(name string) *family {
		f := byName[name]
		if f == nil {
			f = &family{}
			byName[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, page := range pages {
		for _, line := range strings.Split(page, "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
				parts := strings.SplitN(line, " ", 4)
				if len(parts) < 3 {
					continue
				}
				f := fam(parts[2])
				// Keep the first page's header only.
				if !contains(f.header, line) && len(f.header) < 2 {
					f.header = append(f.header, line)
				}
				continue
			}
			if strings.HasPrefix(line, "#") {
				continue
			}
			metric := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				metric = line[:i]
			}
			f := fam(baseName(metric))
			f.samples = append(f.samples, line)
		}
	}
	var b strings.Builder
	for _, name := range order {
		f := byName[name]
		for _, h := range f.header {
			b.WriteString(h)
			b.WriteByte('\n')
		}
		for _, s := range f.samples {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
