package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mpj/internal/mpe"
)

func testSources() []Source {
	mk := func(rank int, eager, bytes uint64) Source {
		return Source{
			Rank: rank, Device: "testdev",
			Stats: func() mpe.CounterSnapshot {
				return mpe.CounterSnapshot{EagerSent: eager, BytesSent: bytes, Matched: eager}
			},
		}
	}
	return []Source{mk(1, 7, 700), mk(0, 3, 300)}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsMatchStats is the endpoint's contract: every sample on
// /metrics equals the device's Stats() snapshot, rank-labelled and
// rank-ordered.
func TestMetricsMatchStats(t *testing.T) {
	s := NewServer()
	for _, src := range testSources() {
		s.Register(src)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	body := scrape(t, "http://"+addr+"/metrics")
	for _, want := range []string{
		"# HELP mpj_eager_sent_total",
		"# TYPE mpj_eager_sent_total counter",
		`mpj_eager_sent_total{rank="0",device="testdev"} 3`,
		`mpj_eager_sent_total{rank="1",device="testdev"} 7`,
		`mpj_bytes_sent_total{rank="0",device="testdev"} 300`,
		`mpj_bytes_sent_total{rank="1",device="testdev"} 700`,
		`mpj_recv_matched_total{rank="1",device="testdev"} 7`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
	// Rank 0's sample line must precede rank 1's despite registration
	// order.
	if strings.Index(body, `rank="0"`) > strings.Index(body, `rank="1"`) {
		t.Error("samples not rank-ordered")
	}
}

func TestMetricsHistograms(t *testing.T) {
	var h mpe.Histogram
	h.Observe(100, 1000)
	h.Observe(100, 2000)
	h.Observe(8<<10, 500)
	src := Source{
		Rank: 0, Device: "testdev",
		Stats:    func() mpe.CounterSnapshot { return mpe.CounterSnapshot{} },
		SendHist: h.Snapshot,
		RecvHist: func() mpe.HistSnapshot { return mpe.HistSnapshot{} },
	}
	var b strings.Builder
	WriteMetrics(&b, []Source{src})
	body := b.String()
	for _, want := range []string{
		"# TYPE mpj_send_latency_ns histogram",
		`mpj_send_latency_ns_bucket{rank="0",device="testdev",size="<=256B",le="+Inf"} 2`,
		`mpj_send_latency_ns_sum{rank="0",device="testdev",size="<=256B"} 3000`,
		`mpj_send_latency_ns_count{rank="0",device="testdev",size="<=256B"} 2`,
		`mpj_send_latency_ns_count{rank="0",device="testdev",size="<=64KiB"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
	// Cumulative buckets must be monotone within each size class.
	var last uint64
	for _, line := range strings.Split(body, "\n") {
		if !strings.Contains(line, `size="<=256B",le=`) {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("unparsable sample %q", line)
		}
		if v < last {
			t.Errorf("non-monotone cumulative bucket: %q after %d", line, last)
		}
		last = v
	}
}

func TestIntrospectEndpoint(t *testing.T) {
	s := NewServer()
	s.Register(Source{
		Rank: 2, Device: "testdev",
		Stats:      func() mpe.CounterSnapshot { return mpe.CounterSnapshot{} },
		Introspect: func() any { return map[string]int{"posted": 5} },
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	body := scrape(t, "http://"+addr+"/introspect")
	var doc struct {
		Ranks map[string]struct {
			Device string         `json:"device"`
			State  map[string]int `json:"state"`
		} `json:"ranks"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	r2, ok := doc.Ranks["2"]
	if !ok {
		t.Fatalf("rank 2 missing: %s", body)
	}
	if r2.Device != "testdev" || r2.State["posted"] != 5 {
		t.Errorf("rank 2 = %+v", r2)
	}
}

func TestServerPprofAndClose(t *testing.T) {
	s := NewServer()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != addr {
		t.Errorf("Addr = %q, want %q", s.Addr(), addr)
	}
	if body := scrape(t, "http://"+addr+"/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline empty")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still serving after Close")
	}
}

func TestAggregator(t *testing.T) {
	mkServer := func(rank int, eager uint64) *Server {
		s := NewServer()
		s.Register(Source{
			Rank: rank, Device: "testdev",
			Stats: func() mpe.CounterSnapshot { return mpe.CounterSnapshot{EagerSent: eager} },
		})
		return s
	}
	s0, s1 := mkServer(0, 11), mkServer(1, 22)
	a0, err := s0.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Close()
	a1, err := s1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()

	agg := NewAggregator()
	agg.Add("rank-0", a0)
	agg.Add("rank-1", a1)
	agg.Add("rank-2", "127.0.0.1:1") // dead target
	ts := httptest.NewServer(agg)
	defer ts.Close()

	body := scrape(t, ts.URL+"/metrics")
	if !strings.Contains(body, `mpj_eager_sent_total{rank="0",device="testdev"} 11`) ||
		!strings.Contains(body, `mpj_eager_sent_total{rank="1",device="testdev"} 22`) {
		t.Errorf("aggregate missing rank samples:\n%s", body)
	}
	// One header per family even though both pages carried it.
	if got := strings.Count(body, "# TYPE mpj_eager_sent_total"); got != 1 {
		t.Errorf("family header repeated %d times", got)
	}
	// The dead target degrades to a comment, not a failed scrape.
	if !strings.Contains(body, "# scrape error: target rank-2") {
		t.Errorf("missing dead-target comment:\n%s", body)
	}

	intro := scrape(t, ts.URL+"/introspect")
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(intro), &doc); err != nil {
		t.Fatalf("invalid introspect JSON: %v", err)
	}
	for _, name := range []string{"rank-0", "rank-1", "rank-2"} {
		if _, ok := doc[name]; !ok {
			t.Errorf("introspect missing target %s", name)
		}
	}

	agg.Remove("rank-2")
	if got := agg.Targets(); len(got) != 2 || got[0] != "rank-0" || got[1] != "rank-1" {
		t.Errorf("Targets after Remove = %v", got)
	}
}

func TestMergeExpositions(t *testing.T) {
	page := func(rank int, v int) string {
		return fmt.Sprintf("# HELP m_total help text\n# TYPE m_total counter\nm_total{rank=\"%d\"} %d\nm_ns_bucket{rank=\"%d\",le=\"+Inf\"} 1\nm_ns_sum{rank=\"%d\"} 5\n", rank, v, rank, rank)
	}
	merged := MergeExpositions([]string{page(0, 1), page(1, 2)})
	if got := strings.Count(merged, "# HELP m_total"); got != 1 {
		t.Errorf("HELP repeated %d times:\n%s", got, merged)
	}
	for _, want := range []string{`m_total{rank="0"} 1`, `m_total{rank="1"} 2`} {
		if !strings.Contains(merged, want) {
			t.Errorf("merged missing %q:\n%s", want, merged)
		}
	}
	// _bucket/_sum lines group under one family, keeping samples of a
	// family contiguous.
	i0 := strings.Index(merged, `m_ns_bucket{rank="0"`)
	i1 := strings.Index(merged, `m_ns_bucket{rank="1"`)
	is := strings.Index(merged, `m_ns_sum{rank="0"`)
	if i0 < 0 || i1 < 0 || is < 0 {
		t.Fatalf("histogram lines missing:\n%s", merged)
	}
	if !(i0 < is && is < i1) {
		t.Errorf("m_ns family not in page order (bucket0 < sum0 < bucket1):\n%s", merged)
	}
	if it := strings.LastIndex(merged, "m_total{"); it > i0 {
		t.Errorf("families interleaved:\n%s", merged)
	}
	// Deterministic: merging the same pages twice is byte-identical.
	if again := MergeExpositions([]string{page(0, 1), page(1, 2)}); again != merged {
		t.Error("MergeExpositions not deterministic")
	}
}

// BenchmarkMetricsEndpoint measures one full /metrics scrape over four
// rank sources with live histograms — the cost a monitoring system
// imposes per poll.
func BenchmarkMetricsEndpoint(b *testing.B) {
	var h mpe.Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i%(1<<20), i*100)
	}
	s := NewServer()
	for r := 0; r < 4; r++ {
		s.Register(Source{
			Rank: r, Device: "niodev",
			Stats: func() mpe.CounterSnapshot {
				return mpe.CounterSnapshot{EagerSent: 123, BytesSent: 1 << 30}
			},
			SendHist: h.Snapshot,
			RecvHist: h.Snapshot,
		})
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(srv.URL + "/metrics")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}
