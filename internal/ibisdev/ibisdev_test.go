package ibisdev

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mpj/internal/devtest"
	"mpj/internal/mpjbuf"
	"mpj/internal/xdev"
)

var groupCounter atomic.Int64

func runner(t *testing.T, n int, fn func(d xdev.Device, rank int, pids []xdev.ProcessID)) {
	t.Helper()
	group := fmt.Sprintf("ibisdev-test-%d", groupCounter.Add(1))
	devs := make([]*Device, n)
	pidLists := make([][]xdev.ProcessID, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		devs[i] = New()
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			pidLists[rank], errs[rank] = devs[rank].Init(xdev.Config{Rank: rank, Size: n, Group: group})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", i, err)
		}
	}
	defer func() {
		for _, d := range devs {
			d.Finish()
		}
	}()
	var jobWG sync.WaitGroup
	for i := 0; i < n; i++ {
		jobWG.Add(1)
		go func(rank int) {
			defer jobWG.Done()
			fn(devs[rank], rank, pidLists[rank])
		}(i)
	}
	jobWG.Wait()
}

func TestConformance(t *testing.T) {
	// RelaxedPostedOrder: receives are serviced by polling worker
	// threads, so which of two same-matching receives reaches the
	// progress engine first is not the posting order.
	devtest.RunConformance(t, runner, devtest.Options{HasPeek: false, RelaxedPostedOrder: true})
}

// TestThreadCeiling reproduces the paper's §VI observation: MPJ/Ibis
// fails with "cannot create native threads" when ~650 receives are
// outstanding, because it starts a thread per operation.
func TestThreadCeiling(t *testing.T) {
	runner(t, 1, func(xd xdev.Device, rank int, pids []xdev.ProcessID) {
		d := xd.(*Device)
		var reqs []xdev.Request
		var failedAt int
		for i := 0; i < 650; i++ {
			buf := mpjbuf.New(0)
			r, err := d.IRecv(buf, xdev.AnySource, i, 0)
			if err != nil {
				failedAt = i
				if !strings.Contains(err.Error(), "native thread") {
					t.Fatalf("unexpected error text: %v", err)
				}
				break
			}
			reqs = append(reqs, r)
		}
		if failedAt == 0 {
			t.Fatalf("posted 650 receives without hitting the thread ceiling (active=%d)", d.ActiveThreads())
		}
		if failedAt != DefaultMaxThreads {
			t.Fatalf("failed at %d, expected the ceiling %d", failedAt, DefaultMaxThreads)
		}
		// Satisfy the outstanding receives so workers exit.
		for i := 0; i < failedAt; i++ {
			buf := mpjbuf.New(16)
			buf.WriteLongs([]int64{int64(i)}, 0, 1)
			if err := d.Send(buf, pids[0], i, 0); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range reqs {
			if _, err := r.Wait(); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestRaisedCeilingAllowsMore(t *testing.T) {
	runner(t, 1, func(xd xdev.Device, rank int, pids []xdev.ProcessID) {
		d := xd.(*Device)
		d.SetMaxThreads(2000)
		var reqs []xdev.Request
		for i := 0; i < 700; i++ {
			buf := mpjbuf.New(0)
			r, err := d.IRecv(buf, pids[0], i, 0)
			if err != nil {
				t.Fatalf("irecv %d: %v", i, err)
			}
			reqs = append(reqs, r)
		}
		for i := 0; i < 700; i++ {
			buf := mpjbuf.New(16)
			buf.WriteLongs([]int64{1}, 0, 1)
			if err := d.Send(buf, pids[0], i, 0); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range reqs {
			if _, err := r.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		if d.ActiveThreads() != 0 {
			t.Fatalf("threads leaked: %d", d.ActiveThreads())
		}
	})
}

func TestPeekUnsupported(t *testing.T) {
	runner(t, 1, func(d xdev.Device, rank int, pids []xdev.ProcessID) {
		if _, err := d.Peek(); err == nil {
			t.Error("Peek should be unsupported on ibisdev")
		}
	})
}

func TestThreadsReleasedOnSend(t *testing.T) {
	runner(t, 2, func(xd xdev.Device, rank int, pids []xdev.ProcessID) {
		d := xd.(*Device)
		if rank == 0 {
			for i := 0; i < 20; i++ {
				buf := mpjbuf.New(16)
				buf.WriteLongs([]int64{int64(i)}, 0, 1)
				r, err := d.ISend(buf, pids[1], 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := r.Wait(); err != nil {
					t.Fatal(err)
				}
			}
			if d.ActiveThreads() != 0 {
				t.Errorf("send workers leaked: %d", d.ActiveThreads())
			}
		} else {
			for i := 0; i < 20; i++ {
				buf := mpjbuf.New(0)
				if _, err := d.Recv(buf, pids[0], 0, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
}

// TestChaosConformance runs the shared failure-semantics suite:
// blocked calls must fail typed, not hang, under Finish and peer death.
func TestChaosConformance(t *testing.T) {
	devtest.RunChaos(t, runner, devtest.ChaosOptions{HasPeek: false})
}

// TestRecoveryConformance runs the survivor-continues recovery suite:
// kill a rank mid-operation, then Revoke/Shrink/Agree/Restore.
func TestRecoveryConformance(t *testing.T) {
	devtest.RunRecovery(t, runner)
}
