// Package ibisdev is a deliberately MPJ/Ibis-flavoured baseline device
// used by the comparison experiments (§II, §V-A, §VI of the paper):
//
//   - it starts a worker "thread" (goroutine) for every non-blocking
//     send and receive operation, as MPJ/Ibis did, and enforces a
//     native-thread ceiling so that posting many simultaneous
//     operations fails the way the paper observed ("cannot create
//     native threads" at ~650 outstanding receives);
//   - its receive workers poll for matching messages, consuming CPU
//     that competes with application compute — the behaviour MPJ
//     Express's ANY_SOURCE design avoids and the §V-A matrix experiment
//     quantifies;
//   - like TCPIbis/NIOIbis it performs no staging pack/unpack of its
//     own beyond the buffer wire form it is handed.
//
// It is NOT a reimplementation of the real Ibis runtime; it reproduces
// just the structural properties the paper contrasts against.
//
// The device rides on smpdev mailboxes, so its matching, completion
// and failure semantics come transitively from the shared progress
// core (internal/devcore); only the per-operation worker threading
// above it is Ibis-flavoured. Because receive workers poll, the order
// in which two same-matching receives reach the engine is not their
// posting order (devtest's RelaxedPostedOrder).
package ibisdev

import (
	"runtime"
	"sync/atomic"
	"time"

	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/smpdev"
	"mpj/internal/xdev"
)

// DeviceName is the registry name of this device.
const DeviceName = "ibisdev"

// DefaultMaxThreads models the JVM native-thread ceiling the paper hit
// when MPJ/Ibis attempted its 650th simultaneous receive.
const DefaultMaxThreads = 640

// DefaultPollInterval is how often a receive worker wakes to probe for
// its message. Each wakeup costs scheduler time and a mailbox lock
// acquisition — the per-operation-thread overhead that competes with
// application compute (§V-A). A zero interval selects busy polling
// (yield between probes), the "straightforward" strategy §IV-E.1 warns
// causes CPU starvation.
const DefaultPollInterval = 100 * time.Microsecond

func init() {
	xdev.Register(DeviceName, func() xdev.Device { return New() })
}

// Device implements xdev.Device in the MPJ/Ibis per-operation-thread
// style, delegating actual transport to an inner shared-memory device.
type Device struct {
	inner        *smpdev.Device
	maxThreads   int64
	threads      atomic.Int64
	pollInterval atomic.Int64 // nanoseconds; <0 selects busy polling
}

// New returns an uninitialized ibisdev with the default thread ceiling
// and polling interval.
func New() *Device {
	d := &Device{inner: smpdev.New(), maxThreads: DefaultMaxThreads}
	d.pollInterval.Store(int64(DefaultPollInterval))
	return d
}

// SetPollInterval changes how receive workers poll: a positive
// interval sleeps between probes; zero busy-polls, yielding the
// processor between probes (maximum CPU starvation).
func (d *Device) SetPollInterval(interval time.Duration) {
	if interval <= 0 {
		d.pollInterval.Store(-1)
		return
	}
	d.pollInterval.Store(int64(interval))
}

// SetMaxThreads overrides the simulated native-thread ceiling. It must
// be called before operations are posted.
func (d *Device) SetMaxThreads(n int) { d.maxThreads = int64(n) }

// ActiveThreads reports the current number of per-operation workers.
func (d *Device) ActiveThreads() int { return int(d.threads.Load()) }

// Init joins the job (see smpdev.Device.Init).
func (d *Device) Init(cfg xdev.Config) ([]xdev.ProcessID, error) {
	if cfg.Group == "" {
		cfg.Group = "ibis-default"
	}
	return d.inner.Init(cfg)
}

// ID returns this process's ProcessID.
func (d *Device) ID() xdev.ProcessID { return d.inner.ID() }

// Stats returns the counters of the inner transport device.
func (d *Device) Stats() mpe.CounterSnapshot { return d.inner.Stats() }

// CountersRef exposes the inner transport device's live counter block
// (mpe.CounterSource).
func (d *Device) CountersRef() *mpe.Counters { return d.inner.CountersRef() }

// Recorder exposes the inner device's event recorder
// (mpe.Instrumented).
func (d *Device) Recorder() mpe.Recorder { return d.inner.Recorder() }

// Introspect exposes the inner transport device's live progress-engine
// state for the telemetry /introspect endpoint.
func (d *Device) Introspect() any { return d.inner.Introspect() }

// PeerErr reports the recorded death error of peer p, delegated to the
// inner transport device (xdev.PeerChecker). ibisdev deliberately does
// NOT delegate xdev.MemoryDomain: keeping the shared-memory window
// path off exercises the active-message RMA delivery in-process.
func (d *Device) PeerErr(p xdev.ProcessID) error { return d.inner.PeerErr(p) }

// Finish shuts the device down.
func (d *Device) Finish() error { return d.inner.Finish() }

// Abort tears the whole job down with the given code by delegating to
// the inner transport device (xdev.Aborter). Receive workers blocked
// in their probe loop observe the abort as an IProbe error and exit.
func (d *Device) Abort(code int) error { return d.inner.Abort(code) }

// Revoke poisons a matching context job-wide by delegating to the
// inner transport device (xdev.Revoker). Receive workers polling the
// revoked context observe the revocation as an IProbe error and fail
// their operation with it.
func (d *Device) Revoke(context int) error { return d.inner.Revoke(context) }

// SendOverhead reports the per-message device overhead in bytes.
func (d *Device) SendOverhead() int { return d.inner.SendOverhead() }

// RecvOverhead reports the per-message device overhead in bytes.
func (d *Device) RecvOverhead() int { return d.inner.RecvOverhead() }

// spawn accounts for one per-operation worker thread, failing like a
// JVM that cannot create another native thread.
func (d *Device) spawn() error {
	if d.threads.Add(1) > d.maxThreads {
		d.threads.Add(-1)
		return xdev.Errf(DeviceName, "spawn", "unable to create native thread: %d already running", d.maxThreads)
	}
	return nil
}

func (d *Device) release() { d.threads.Add(-1) }

// request wraps the inner request, holding the worker's result.
type request struct {
	done       chan struct{}
	status     xdev.Status
	err        error
	attachment atomic.Value
}

// Wait blocks until the worker thread finishes the operation.
func (r *request) Wait() (xdev.Status, error) {
	<-r.done
	return r.status, r.err
}

// Test reports completion without blocking.
func (r *request) Test() (xdev.Status, bool, error) {
	select {
	case <-r.done:
		return r.status, true, r.err
	default:
		return xdev.Status{}, false, nil
	}
}

// SetAttachment stores opaque upper-layer state on the request.
func (r *request) SetAttachment(v any) { r.attachment.Store(v) }

// Attachment returns the value stored by SetAttachment.
func (r *request) Attachment() any { return r.attachment.Load() }

// ISend starts a send on a fresh worker thread (the Ibis pattern).
func (d *Device) ISend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	return d.opThread(func() (xdev.Status, error) {
		err := d.inner.Send(buf, dst, tag, context)
		return xdev.Status{Source: d.ID(), Tag: tag, Bytes: buf.WireLen()}, err
	})
}

// Send is the blocking standard-mode send.
func (d *Device) Send(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	return d.inner.Send(buf, dst, tag, context)
}

// ISsend starts a synchronous-mode send on a fresh worker thread.
func (d *Device) ISsend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	return d.opThread(func() (xdev.Status, error) {
		err := d.inner.Ssend(buf, dst, tag, context)
		return xdev.Status{Source: d.ID(), Tag: tag, Bytes: buf.WireLen()}, err
	})
}

// Ssend is the blocking synchronous-mode send.
func (d *Device) Ssend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	return d.inner.Ssend(buf, dst, tag, context)
}

// opThread runs op on an accounted worker. Like a Java thread, the
// worker is pinned to a dedicated OS thread (the thread exits with the
// goroutine), so its scheduling cost is the kernel's, not the Go
// runtime's — the interference §V-A measures.
func (d *Device) opThread(op func() (xdev.Status, error)) (xdev.Request, error) {
	if err := d.spawn(); err != nil {
		return nil, err
	}
	r := &request{done: make(chan struct{})}
	go func() {
		runtime.LockOSThread()
		defer d.release()
		r.status, r.err = op()
		close(r.done)
	}()
	return r, nil
}

// IRecv starts a polling receive worker: it repeatedly probes for a
// matching message, sleeping briefly between probes — scheduler churn
// and lock traffic that an application's compute threads pay for.
func (d *Device) IRecv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Request, error) {
	if err := d.spawn(); err != nil {
		return nil, err
	}
	r := &request{done: make(chan struct{})}
	go func() {
		runtime.LockOSThread()
		defer d.release()
		for {
			if _, ok, err := d.inner.IProbe(src, tag, context); ok || err != nil {
				if err != nil {
					r.err = err
					close(r.done)
					return
				}
				break
			}
			if pi := d.pollInterval.Load(); pi > 0 {
				time.Sleep(time.Duration(pi))
			} else {
				runtime.Gosched()
			}
		}
		r.status, r.err = d.inner.Recv(buf, src, tag, context)
		close(r.done)
	}()
	return r, nil
}

// Recv blocks until a matching message has been received.
func (d *Device) Recv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	return d.inner.Recv(buf, src, tag, context)
}

// Probe blocks until a matching message is available.
func (d *Device) Probe(src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	return d.inner.Probe(src, tag, context)
}

// IProbe checks for a matching message without receiving it.
func (d *Device) IProbe(src xdev.ProcessID, tag, context int) (xdev.Status, bool, error) {
	return d.inner.IProbe(src, tag, context)
}

// Peek is unsupported: the Ibis devices have no completion queue, which
// is why Waitany over them must poll (paper §IV-E.1's "straightforward"
// strategy). Callers needing Waitany over this device poll Test.
func (d *Device) Peek() (xdev.Request, error) {
	return nil, xdev.Errf(DeviceName, "peek", "not supported: device has no completion queue")
}

var _ xdev.Device = (*Device)(nil)
