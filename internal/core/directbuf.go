package core

import (
	"mpj/internal/mpjbuf"
)

// This file implements the API extension the paper's conclusion
// proposes: "the overhead associated with MPJ Express pure Java
// devices ... can potentially be resolved by extending the MPJ API to
// allow communicating data to and from ByteBuffers." Applications that
// manage their own mpjbuf Buffers skip the per-call pack/unpack of the
// typed interface entirely — the mpjdev performance level of §V-E.

// SendBuffer transmits a pre-packed buffer directly (standard mode).
// The buffer must not be modified until the call returns.
func (c *Comm) SendBuffer(b *mpjbuf.Buffer, dst, tag int) error {
	return c.ptp.Send(b, dst, tag)
}

// IsendBuffer starts a non-blocking direct-buffer send.
func (c *Comm) IsendBuffer(b *mpjbuf.Buffer, dst, tag int) (*Request, error) {
	r, err := c.ptp.Isend(b, dst, tag)
	if err != nil {
		return nil, err
	}
	return &Request{inner: r}, nil
}

// RecvBuffer receives a message into b, leaving it committed for
// reading. No unpacking is performed; the caller reads typed sections
// directly.
func (c *Comm) RecvBuffer(b *mpjbuf.Buffer, src, tag int) (*Status, error) {
	st, err := c.ptp.Recv(b, src, tag)
	if err != nil {
		return nil, err
	}
	return &Status{Source: st.Source, Tag: st.Tag, elems: -1}, nil
}

// IrecvBuffer starts a non-blocking direct-buffer receive into b.
func (c *Comm) IrecvBuffer(b *mpjbuf.Buffer, src, tag int) (*Request, error) {
	r, err := c.ptp.Irecv(b, src, tag)
	if err != nil {
		return nil, err
	}
	return &Request{inner: r}, nil
}
