package core

// Node topology view of a communicator. The job's rank→node placement
// (MPJ_NODE_MAP → xdev.Config.NodeOf → Process.nodeOf) restricted to a
// communicator's group tells the collectives which members share a
// node: messages between them are cheap (one in-process copy on the
// hybrid device) while inter-node messages cross the wire. The
// hierarchical algorithms in collhier.go exploit exactly that split —
// fold within each node first, exchange once per node, fan back out.

// commTopo is a communicator's placement, with node ids renumbered
// densely in order of first appearance among the comm's ranks.
type commTopo struct {
	nodeOf  []int   // comm rank -> dense node id
	myNode  int     // calling rank's node id
	nNodes  int     // number of distinct nodes in the comm
	leader  []int   // node id -> lowest comm rank on that node
	members [][]int // node id -> comm ranks on that node, ascending
}

// topo builds the communicator's placement view. Unknown placement —
// no node map, or group members outside it (dynamic pids) — collapses
// to a single node, which keeps every topology-aware path degenerate
// rather than wrong.
func (c *Comm) topo() commTopo {
	n := c.Size()
	world := c.p.nodeOf
	t := commTopo{nodeOf: make([]int, n)}
	known := world != nil
	if known {
		for r := 0; r < n; r++ {
			pid, err := c.group.PID(r)
			if err != nil || pid.UUID >= uint64(len(world)) {
				known = false
				break
			}
			t.nodeOf[r] = world[pid.UUID]
		}
	}
	if !known {
		for r := range t.nodeOf {
			t.nodeOf[r] = 0
		}
	}
	ids := make(map[int]int)
	for r, raw := range t.nodeOf {
		id, ok := ids[raw]
		if !ok {
			id = len(ids)
			ids[raw] = id
			t.leader = append(t.leader, r)
			t.members = append(t.members, nil)
		}
		t.nodeOf[r] = id
		t.members[id] = append(t.members[id], r)
	}
	t.nNodes = len(ids)
	t.myNode = t.nodeOf[c.Rank()]
	return t
}

// ranksPerNode reports the size of the largest node.
func (t *commTopo) ranksPerNode() int {
	m := 0
	for _, ms := range t.members {
		if len(ms) > m {
			m = len(ms)
		}
	}
	return m
}

// NodeCount reports how many distinct nodes the communicator's members
// occupy (1 when the placement is unknown).
func (c *Comm) NodeCount() int {
	t := c.topo()
	return t.nNodes
}

// NodeOf reports the dense node id of a communicator rank (node ids
// are numbered by first appearance in rank order). Out-of-range ranks
// report -1.
func (c *Comm) NodeOf(rank int) int {
	if rank < 0 || rank >= c.Size() {
		return -1
	}
	t := c.topo()
	return t.nodeOf[rank]
}

// NodeLeader reports the comm rank of the calling rank's node leader:
// the lowest rank sharing its node. A rank with IsNodeLeader() speaks
// for its node in the inter-node phase of hierarchical collectives.
func (c *Comm) NodeLeader() int {
	t := c.topo()
	return t.leader[t.myNode]
}

// IsNodeLeader reports whether the calling rank leads its node.
func (c *Comm) IsNodeLeader() bool { return c.NodeLeader() == c.Rank() }

// SplitByNode builds the intra-node sub-communicator: one new
// communicator per node, each covering the ranks placed there, ranks
// ordered as in c. Collective over c (it is a Split).
func (c *Intracomm) SplitByNode() (*Intracomm, error) {
	t := c.topo()
	return c.Split(t.myNode, c.Rank())
}

// SplitNodeLeaders builds the inter-node sub-communicator over the
// node leaders, ordered by node id; non-leaders get nil. Collective
// over c.
func (c *Intracomm) SplitNodeLeaders() (*Intracomm, error) {
	t := c.topo()
	color := Undefined
	if t.leader[t.myNode] == c.Rank() {
		color = 0
	}
	return c.Split(color, t.myNode)
}
