package core

import (
	"math/rand"
	"testing"
)

// TestRandomizedTrafficMatchesModel drives a random communication
// pattern through the full stack and checks every delivery against a
// sequential model: for each (src→dst, tag) stream, messages must
// arrive in order with intact payloads.
func TestRandomizedTrafficMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		n := 2 + rng.Intn(3)
		const tags = 3
		const perStream = 5
		runWorld(t, n, func(p *Process, w *Intracomm) {
			rank := w.Rank()
			// Everyone sends perStream messages on every (dst, tag)
			// stream; payload encodes (src, dst, tag, seq).
			reqs := make([]*Request, 0, n*tags*perStream)
			for dst := 0; dst < n; dst++ {
				for tag := 0; tag < tags; tag++ {
					for s := 0; s < perStream; s++ {
						payload := []int64{int64(rank*1_000_000 + dst*10_000 + tag*100 + s)}
						r, err := w.Isend(payload, 0, 1, LONG, dst, tag)
						if err != nil {
							t.Errorf("isend: %v", err)
							return
						}
						reqs = append(reqs, r)
					}
				}
			}
			// Receive every stream, checking order.
			for src := 0; src < n; src++ {
				for tag := 0; tag < tags; tag++ {
					for s := 0; s < perStream; s++ {
						buf := make([]int64, 1)
						st, err := w.Recv(buf, 0, 1, LONG, src, tag)
						if err != nil {
							t.Errorf("recv: %v", err)
							return
						}
						want := int64(src*1_000_000 + rank*10_000 + tag*100 + s)
						if buf[0] != want {
							t.Errorf("stream (%d->%d, tag %d) msg %d: got %d want %d",
								src, rank, tag, s, buf[0], want)
							return
						}
						if st.Source != src || st.Tag != tag {
							t.Errorf("status %+v for stream (%d, %d)", st, src, tag)
							return
						}
					}
				}
			}
			if _, err := WaitAll(reqs); err != nil {
				t.Errorf("waitall: %v", err)
			}
		})
	}
}

// TestRandomizedAlltoallv cross-checks Alltoallv against a locally
// computed reference for random counts and displacements.
func TestRandomizedAlltoallv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 4; trial++ {
		n := 2 + rng.Intn(3)
		// counts[i][j]: items rank i sends to rank j.
		counts := make([][]int, n)
		for i := range counts {
			counts[i] = make([]int, n)
			for j := range counts[i] {
				counts[i][j] = rng.Intn(4)
			}
		}
		runWorld(t, n, func(p *Process, w *Intracomm) {
			rank := w.Rank()
			scounts := counts[rank]
			sdispls := make([]int, n)
			total := 0
			for j, cnt := range scounts {
				sdispls[j] = total
				total += cnt
			}
			send := make([]int32, total)
			for j := 0; j < n; j++ {
				for k := 0; k < scounts[j]; k++ {
					send[sdispls[j]+k] = int32(rank*10_000 + j*100 + k)
				}
			}
			rcounts := make([]int, n)
			rdispls := make([]int, n)
			rtotal := 0
			for i := 0; i < n; i++ {
				rcounts[i] = counts[i][rank]
				rdispls[i] = rtotal
				rtotal += rcounts[i]
			}
			recv := make([]int32, rtotal)
			if err := w.Alltoallv(send, 0, scounts, sdispls, INT, recv, 0, rcounts, rdispls, INT); err != nil {
				t.Errorf("trial %d: %v", trial, err)
				return
			}
			for i := 0; i < n; i++ {
				for k := 0; k < rcounts[i]; k++ {
					want := int32(i*10_000 + rank*100 + k)
					if recv[rdispls[i]+k] != want {
						t.Errorf("trial %d rank %d: from %d item %d = %d want %d",
							trial, rank, i, k, recv[rdispls[i]+k], want)
						return
					}
				}
			}
		})
	}
}
