package core

import (
	"fmt"
	"sort"
)

// Dup returns a communicator with the same group but fresh contexts,
// fully isolating its traffic (MPI_Comm_dup). Collective.
func (c *Intracomm) Dup() (*Intracomm, error) {
	return c.p.newIntracomm(c.group, c.Rank())
}

// Create returns a communicator over the subgroup g (MPI_Comm_create).
// Collective over c; processes outside g receive nil. All members must
// pass equal groups.
func (c *Intracomm) Create(g *Group) (*Intracomm, error) {
	myPID, err := c.group.PID(c.Rank())
	if err != nil {
		return nil, err
	}
	return c.p.newIntracomm(g, g.Rank(myPID))
}

// Split partitions the communicator by color; within each color, ranks
// order by key with ties broken by old rank (MPI_Comm_split).
// Processes passing color Undefined receive nil. Collective.
func (c *Intracomm) Split(color, key int) (*Intracomm, error) {
	n := c.Size()
	rank := c.Rank()

	// Exchange (color, key) from every process.
	mine := []int32{int32(color), int32(key)}
	all := make([]int32, 2*n)
	if err := c.Allgather(mine, 0, 2, INT, all, 0, 2, INT); err != nil {
		return nil, fmt.Errorf("core: Split: %w", err)
	}

	type member struct {
		rank int
		key  int
	}
	var members []member
	for r := 0; r < n; r++ {
		if int(all[2*r]) == color {
			members = append(members, member{rank: r, key: int(all[2*r+1])})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].rank < members[j].rank
	})

	if color == Undefined {
		// Contexts must still advance identically on every process.
		c.p.allocContexts()
		return nil, nil
	}
	ranks := make([]int, len(members))
	newRank := Undefined
	for i, m := range members {
		ranks[i] = m.rank
		if m.rank == rank {
			newRank = i
		}
	}
	g, err := c.group.Incl(ranks)
	if err != nil {
		return nil, err
	}
	return c.p.newIntracomm(g, newRank)
}
