package core

import (
	"testing"
	"testing/quick"

	"mpj/internal/mpjbuf"
)

func TestBaseDatatypes(t *testing.T) {
	for _, d := range []*Datatype{BYTE, BOOLEAN, CHAR, SHORT, INT, LONG, FLOAT, DOUBLE, OBJECT} {
		if d.Size() != 1 || d.Extent() != 1 || !d.IsContiguous() {
			t.Errorf("%s: size=%d extent=%d contiguous=%v", d, d.Size(), d.Extent(), d.IsContiguous())
		}
	}
	if DOUBLE.Base() != mpjbuf.DoubleType {
		t.Error("DOUBLE base mismatch")
	}
}

func TestContiguousDatatype(t *testing.T) {
	d, err := DOUBLE.Contiguous(4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 4 || d.Extent() != 4 || !d.IsContiguous() {
		t.Fatalf("size=%d extent=%d contig=%v", d.Size(), d.Extent(), d.IsContiguous())
	}
	if _, err := DOUBLE.Contiguous(-1); err == nil {
		t.Error("negative count accepted")
	}
}

func TestVectorDatatype(t *testing.T) {
	// The paper's example: a column of a 4x4 matrix — blocklength 1,
	// stride 4, count 4.
	d, err := FLOAT.Vector(4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 4 {
		t.Fatalf("size = %d", d.Size())
	}
	if d.IsContiguous() {
		t.Fatal("column vector must not be contiguous")
	}
	want := []int{0, 4, 8, 12}
	for i, disp := range d.disps {
		if disp != want[i] {
			t.Fatalf("disps = %v", d.disps)
		}
	}
	if d.Extent() != 13 {
		t.Fatalf("extent = %d, want 13 (span to last element)", d.Extent())
	}
}

func TestVectorBlocks(t *testing.T) {
	d, err := INT.Vector(2, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 5, 6, 7}
	if len(d.disps) != len(want) {
		t.Fatalf("disps = %v", d.disps)
	}
	for i := range want {
		if d.disps[i] != want[i] {
			t.Fatalf("disps = %v", d.disps)
		}
	}
}

func TestIndexedDatatype(t *testing.T) {
	d, err := INT.Indexed([]int{2, 1}, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 5}
	for i := range want {
		if d.disps[i] != want[i] {
			t.Fatalf("disps = %v", d.disps)
		}
	}
	if d.Extent() != 6 {
		t.Fatalf("extent = %d", d.Extent())
	}
	if _, err := INT.Indexed([]int{1}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := INT.Indexed([]int{-1}, []int{0}); err == nil {
		t.Error("negative blocklength accepted")
	}
}

func TestNestedDerivedDatatype(t *testing.T) {
	// A vector of contiguous pairs.
	pair, err := DOUBLE.Contiguous(2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := pair.Vector(2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Items: pair at 0 (elements 0,1) and pair at stride 2 pairs = 4
	// elements (4,5).
	want := []int{0, 1, 4, 5}
	for i := range want {
		if d.disps[i] != want[i] {
			t.Fatalf("disps = %v", d.disps)
		}
	}
}

func TestStructDatatype(t *testing.T) {
	d, err := Struct([]int{1, 2}, []int{0, 1}, []*Datatype{INT, DOUBLE})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 || d.Extent() != 3 {
		t.Fatalf("size=%d extent=%d", d.Size(), d.Extent())
	}
	if _, err := Struct([]int{1}, []int{0, 1}, []*Datatype{INT, INT}); err == nil {
		t.Error("mismatched args accepted")
	}
	if _, err := d.Contiguous(2); err == nil {
		t.Error("Contiguous over struct accepted")
	}
}

func TestPackUnpackVectorColumn(t *testing.T) {
	// Send the first column of a 4x4 matrix, as in paper §IV-C.
	col, err := FLOAT.Vector(4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	matrix := make([]float32, 16)
	for i := range matrix {
		matrix[i] = float32(i)
	}
	b, err := pack(matrix, 0, 1, col)
	if err != nil {
		t.Fatal(err)
	}
	rb := mpjbuf.New(0)
	if err := rb.LoadWire(b.Wire()); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 4)
	if _, err := unpack(rb, out, 0, 4, FLOAT); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 4, 8, 12}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("column = %v", out)
		}
	}
}

func TestPackUnpackScatterBack(t *testing.T) {
	// Receive a contiguous stream back into a strided layout.
	col, err := INT.Vector(3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pack([]int32{10, 20, 30}, 0, 3, INT)
	if err != nil {
		t.Fatal(err)
	}
	rb := mpjbuf.New(0)
	if err := rb.LoadWire(b.Wire()); err != nil {
		t.Fatal(err)
	}
	dst := make([]int32, 9)
	if _, err := unpack(rb, dst, 0, 1, col); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 10 || dst[3] != 20 || dst[6] != 30 || dst[1] != 0 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestPackStructRoundTrip(t *testing.T) {
	d, err := Struct([]int{1, 2}, []int{0, 1}, []*Datatype{INT, DOUBLE})
	if err != nil {
		t.Fatal(err)
	}
	src := []any{int32(7), 1.5, 2.5, int32(8), 3.5, 4.5}
	b, err := pack(src, 0, 2, d)
	if err != nil {
		t.Fatal(err)
	}
	rb := mpjbuf.New(0)
	if err := rb.LoadWire(b.Wire()); err != nil {
		t.Fatal(err)
	}
	dst := make([]any, 6)
	if _, err := unpack(rb, dst, 0, 2, d); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst = %v", dst)
		}
	}
}

func TestPackTypeMismatch(t *testing.T) {
	if _, err := pack([]float64{1}, 0, 1, INT); err == nil {
		t.Error("float64 buffer packed as INT")
	}
	if _, err := pack("not a slice", 0, 1, INT); err == nil {
		t.Error("string buffer accepted")
	}
}

func TestPackBoundsChecks(t *testing.T) {
	if _, err := pack([]int32{1, 2}, 0, 3, INT); err == nil {
		t.Error("over-long pack accepted")
	}
	if _, err := pack([]int32{1, 2}, -1, 1, INT); err == nil {
		t.Error("negative offset accepted")
	}
	col, _ := INT.Vector(2, 1, 5)
	if _, err := pack(make([]int32, 5), 0, 1, col); err == nil {
		t.Error("vector pack beyond buffer accepted")
	}
}

func TestQuickPackUnpackRoundTrip(t *testing.T) {
	f := func(data []float64, strideSeed uint8) bool {
		if len(data) == 0 {
			return true
		}
		stride := int(strideSeed%4) + 1
		count := len(data)
		src := make([]float64, count*stride)
		for i, v := range data {
			src[i*stride] = v
		}
		dt, err := DOUBLE.Vector(count, 1, stride)
		if err != nil {
			return false
		}
		b, err := pack(src, 0, 1, dt)
		if err != nil {
			return false
		}
		rb := mpjbuf.New(0)
		if err := rb.LoadWire(b.Wire()); err != nil {
			return false
		}
		out := make([]float64, count)
		if _, err := unpack(rb, out, 0, count, DOUBLE); err != nil {
			return false
		}
		for i := range data {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
