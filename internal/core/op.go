package core

import "fmt"

// Op is a reduction operation (the mpijava Op class). Built-in ops are
// exported as package variables; user-defined ops come from NewOp.
//
// An op's function combines two equal-length slices of the reduction's
// base type, accumulating into inout: inout[i] = op(in[i], inout[i]).
type Op struct {
	name    string
	commute bool
	apply   func(in, inout any) error
	// atom is the number of consecutive base elements the op combines
	// as one indivisible group: 1 for element-wise ops, 2 for the
	// (value,index) pairs of MAXLOC/MINLOC. Segmented reduction
	// algorithms only split messages at atom boundaries; atom 0 marks
	// an op that must see the whole message in one application (the
	// default for user ops, whose structure is unknown).
	atom int
}

// NewOp wraps a user-defined reduction function (MPI_Op_create). The
// function receives two equal-length slices of the buffer's element
// type ([]int32, []float64, ...) and must accumulate into inout.
//
// A user op is applied to whole messages by default, which keeps any
// interpretation of the slice valid but disables segmented reduction
// algorithms; declare a SegmentAtom to re-enable them.
func NewOp(fn func(in, inout any) error, commute bool) *Op {
	return &Op{name: "USER", commute: commute, apply: fn}
}

// SegmentAtom returns a copy of the op declaring that it combines
// independent groups of atom consecutive base elements, so reductions
// may apply it to any atom-aligned sub-range of the message. This lets
// the segmented/pipelined reduction algorithms split large payloads;
// atom <= 0 restores whole-message application.
func (o *Op) SegmentAtom(atom int) *Op {
	cp := *o
	if atom < 0 {
		atom = 0
	}
	cp.atom = atom
	return &cp
}

// String returns the op's name.
func (o *Op) String() string { return o.name }

// IsCommutative reports whether the op may be applied in any order.
func (o *Op) IsCommutative() bool { return o.commute }

// number covers the element types of arithmetic reductions.
type number interface {
	~int16 | ~int32 | ~int64 | ~float32 | ~float64 | ~uint8 | ~uint16
}

func binOp[T any](f func(a, b T) T) func(in, inout []T) error {
	return func(in, inout []T) error {
		if len(in) != len(inout) {
			return fmt.Errorf("core: reduction length mismatch %d vs %d", len(in), len(inout))
		}
		for i := range in {
			inout[i] = f(in[i], inout[i])
		}
		return nil
	}
}

// numericApply dispatches a generic numeric combiner across the slice
// types that support it.
func numericApply(name string, f8 func(a, b float64) float64, fi func(a, b int64) int64) func(in, inout any) error {
	return func(in, inout any) error {
		switch a := in.(type) {
		case []byte:
			return binOp(func(x, y byte) byte { return byte(fi(int64(x), int64(y))) })(a, inout.([]byte))
		case []uint16:
			return binOp(func(x, y uint16) uint16 { return uint16(fi(int64(x), int64(y))) })(a, inout.([]uint16))
		case []int16:
			return binOp(func(x, y int16) int16 { return int16(fi(int64(x), int64(y))) })(a, inout.([]int16))
		case []int32:
			return binOp(func(x, y int32) int32 { return int32(fi(int64(x), int64(y))) })(a, inout.([]int32))
		case []int64:
			return binOp(fi)(a, inout.([]int64))
		case []float32:
			return binOp(func(x, y float32) float32 { return float32(f8(float64(x), float64(y))) })(a, inout.([]float32))
		case []float64:
			return binOp(f8)(a, inout.([]float64))
		}
		return fmt.Errorf("core: op %s unsupported for %T", name, in)
	}
}

// bitApply dispatches a bitwise combiner across integer slice types.
func bitApply(name string, fi func(a, b int64) int64) func(in, inout any) error {
	return func(in, inout any) error {
		switch a := in.(type) {
		case []byte:
			return binOp(func(x, y byte) byte { return byte(fi(int64(x), int64(y))) })(a, inout.([]byte))
		case []uint16:
			return binOp(func(x, y uint16) uint16 { return uint16(fi(int64(x), int64(y))) })(a, inout.([]uint16))
		case []int16:
			return binOp(func(x, y int16) int16 { return int16(fi(int64(x), int64(y))) })(a, inout.([]int16))
		case []int32:
			return binOp(func(x, y int32) int32 { return int32(fi(int64(x), int64(y))) })(a, inout.([]int32))
		case []int64:
			return binOp(fi)(a, inout.([]int64))
		}
		return fmt.Errorf("core: op %s unsupported for %T", name, in)
	}
}

// logicalApply dispatches a boolean combiner over bools and integers
// (non-zero meaning true, as in MPI).
func logicalApply(name string, fb func(a, b bool) bool) func(in, inout any) error {
	toI := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	fi := func(a, b int64) int64 { return toI(fb(a != 0, b != 0)) }
	return func(in, inout any) error {
		switch a := in.(type) {
		case []bool:
			return binOp(fb)(a, inout.([]bool))
		case []byte:
			return binOp(func(x, y byte) byte { return byte(fi(int64(x), int64(y))) })(a, inout.([]byte))
		case []int16:
			return binOp(func(x, y int16) int16 { return int16(fi(int64(x), int64(y))) })(a, inout.([]int16))
		case []int32:
			return binOp(func(x, y int32) int32 { return int32(fi(int64(x), int64(y))) })(a, inout.([]int32))
		case []int64:
			return binOp(fi)(a, inout.([]int64))
		}
		return fmt.Errorf("core: op %s unsupported for %T", name, in)
	}
}

// locApply implements MAXLOC/MINLOC over (value, index) pairs laid out
// as consecutive elements, the *_INT paired-type convention.
func locApply(name string, better func(a, b float64) bool) func(in, inout any) error {
	return func(in, inout any) error {
		switch a := in.(type) {
		case []int32:
			b := inout.([]int32)
			if len(a) != len(b) || len(a)%2 != 0 {
				return fmt.Errorf("core: %s needs even-length (value,index) pairs", name)
			}
			for i := 0; i < len(a); i += 2 {
				av, bv := float64(a[i]), float64(b[i])
				if better(av, bv) || (av == bv && a[i+1] < b[i+1]) {
					b[i], b[i+1] = a[i], a[i+1]
				}
			}
			return nil
		case []int64:
			b := inout.([]int64)
			if len(a) != len(b) || len(a)%2 != 0 {
				return fmt.Errorf("core: %s needs even-length (value,index) pairs", name)
			}
			for i := 0; i < len(a); i += 2 {
				av, bv := float64(a[i]), float64(b[i])
				if better(av, bv) || (av == bv && a[i+1] < b[i+1]) {
					b[i], b[i+1] = a[i], a[i+1]
				}
			}
			return nil
		case []float64:
			b := inout.([]float64)
			if len(a) != len(b) || len(a)%2 != 0 {
				return fmt.Errorf("core: %s needs even-length (value,index) pairs", name)
			}
			for i := 0; i < len(a); i += 2 {
				if better(a[i], b[i]) || (a[i] == b[i] && a[i+1] < b[i+1]) {
					b[i], b[i+1] = a[i], a[i+1]
				}
			}
			return nil
		case []float32:
			b := inout.([]float32)
			if len(a) != len(b) || len(a)%2 != 0 {
				return fmt.Errorf("core: %s needs even-length (value,index) pairs", name)
			}
			for i := 0; i < len(a); i += 2 {
				av, bv := float64(a[i]), float64(b[i])
				if better(av, bv) || (av == bv && a[i+1] < b[i+1]) {
					b[i], b[i+1] = a[i], a[i+1]
				}
			}
			return nil
		}
		return fmt.Errorf("core: op %s unsupported for %T", name, in)
	}
}

// Built-in reduction operations (the mpijava MPI.MAX, MPI.SUM, ...).
var (
	MAX = &Op{name: "MAX", commute: true, apply: numericApply("MAX",
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		},
		func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})}
	MIN = &Op{name: "MIN", commute: true, apply: numericApply("MIN",
		func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		},
		func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		})}
	SUM = &Op{name: "SUM", commute: true, apply: numericApply("SUM",
		func(a, b float64) float64 { return a + b },
		func(a, b int64) int64 { return a + b })}
	PROD = &Op{name: "PROD", commute: true, apply: numericApply("PROD",
		func(a, b float64) float64 { return a * b },
		func(a, b int64) int64 { return a * b })}
	LAND = &Op{name: "LAND", commute: true, apply: logicalApply("LAND",
		func(a, b bool) bool { return a && b })}
	LOR = &Op{name: "LOR", commute: true, apply: logicalApply("LOR",
		func(a, b bool) bool { return a || b })}
	LXOR = &Op{name: "LXOR", commute: true, apply: logicalApply("LXOR",
		func(a, b bool) bool { return a != b })}
	BAND = &Op{name: "BAND", commute: true, apply: bitApply("BAND",
		func(a, b int64) int64 { return a & b })}
	BOR = &Op{name: "BOR", commute: true, apply: bitApply("BOR",
		func(a, b int64) int64 { return a | b })}
	BXOR = &Op{name: "BXOR", commute: true, apply: bitApply("BXOR",
		func(a, b int64) int64 { return a ^ b })}
	MAXLOC = &Op{name: "MAXLOC", commute: true, apply: locApply("MAXLOC",
		func(a, b float64) bool { return a > b })}
	MINLOC = &Op{name: "MINLOC", commute: true, apply: locApply("MINLOC",
		func(a, b float64) bool { return a < b })}
)

func init() {
	// The arithmetic/bit/logical built-ins are element-wise; the LOC
	// ops combine (value,index) pairs. Segmented reductions split
	// messages only at these boundaries.
	for _, o := range []*Op{MAX, MIN, SUM, PROD, LAND, LOR, LXOR, BAND, BOR, BXOR} {
		o.atom = 1
	}
	MAXLOC.atom = 2
	MINLOC.atom = 2
}
