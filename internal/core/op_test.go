package core

import "testing"

func TestOpsAcrossElementTypes(t *testing.T) {
	cases := []struct {
		name  string
		op    *Op
		in    any
		inout any
		want  any
	}{
		{"sum-bytes", SUM, []byte{1, 2}, []byte{3, 4}, []byte{4, 6}},
		{"sum-chars", SUM, []uint16{1}, []uint16{2}, []uint16{3}},
		{"sum-shorts", SUM, []int16{-1, 5}, []int16{1, 5}, []int16{0, 10}},
		{"sum-ints", SUM, []int32{7}, []int32{8}, []int32{15}},
		{"sum-longs", SUM, []int64{1 << 40}, []int64{1 << 40}, []int64{1 << 41}},
		{"sum-floats", SUM, []float32{1.5}, []float32{2.5}, []float32{4}},
		{"sum-doubles", SUM, []float64{0.25}, []float64{0.5}, []float64{0.75}},
		{"max-ints", MAX, []int32{3, -9}, []int32{-2, 5}, []int32{3, 5}},
		{"min-doubles", MIN, []float64{2, -2}, []float64{1, 0}, []float64{1, -2}},
		{"prod-shorts", PROD, []int16{3}, []int16{4}, []int16{12}},
		{"land-bools", LAND, []bool{true, true}, []bool{true, false}, []bool{true, false}},
		{"lor-ints", LOR, []int32{0, 1}, []int32{0, 0}, []int32{0, 1}},
		{"lxor-bools", LXOR, []bool{true}, []bool{true}, []bool{false}},
		{"lxor-longs", LXOR, []int64{1}, []int64{0}, []int64{1}},
		{"band-bytes", BAND, []byte{0b1100}, []byte{0b1010}, []byte{0b1000}},
		{"bor-shorts", BOR, []int16{0b01}, []int16{0b10}, []int16{0b11}},
		{"bxor-longs", BXOR, []int64{0b1111}, []int64{0b1010}, []int64{0b0101}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.op.apply(c.in, c.inout); err != nil {
				t.Fatal(err)
			}
			switch want := c.want.(type) {
			case []byte:
				got := c.inout.([]byte)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("got %v want %v", got, want)
					}
				}
			case []uint16:
				got := c.inout.([]uint16)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("got %v want %v", got, want)
					}
				}
			case []int16:
				got := c.inout.([]int16)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("got %v want %v", got, want)
					}
				}
			case []int32:
				got := c.inout.([]int32)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("got %v want %v", got, want)
					}
				}
			case []int64:
				got := c.inout.([]int64)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("got %v want %v", got, want)
					}
				}
			case []float32:
				got := c.inout.([]float32)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("got %v want %v", got, want)
					}
				}
			case []float64:
				got := c.inout.([]float64)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("got %v want %v", got, want)
					}
				}
			case []bool:
				got := c.inout.([]bool)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("got %v want %v", got, want)
					}
				}
			}
		})
	}
}

func TestOpUnsupportedTypeErrors(t *testing.T) {
	if err := SUM.apply([]bool{true}, []bool{false}); err == nil {
		t.Error("SUM over bools accepted")
	}
	if err := BAND.apply([]float64{1}, []float64{2}); err == nil {
		t.Error("BAND over floats accepted")
	}
	if err := LAND.apply([]float64{1}, []float64{2}); err == nil {
		t.Error("LAND over floats accepted")
	}
	if err := MAXLOC.apply([]bool{true}, []bool{false}); err == nil {
		t.Error("MAXLOC over bools accepted")
	}
	if err := SUM.apply([]int32{1, 2}, []int32{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestLocOpsPairSemantics(t *testing.T) {
	// (value, index) pairs; ties resolve to the lower index.
	in := []float64{5, 2, 7, 9}
	inout := []float64{5, 1, 7, 3}
	if err := MAXLOC.apply(in, inout); err != nil {
		t.Fatal(err)
	}
	// Pair 0: equal values 5 — index 1 vs 1?? in has idx 2, inout idx 1:
	// equal value keeps the smaller index (1).
	if inout[0] != 5 || inout[1] != 1 {
		t.Errorf("pair 0 = (%v,%v)", inout[0], inout[1])
	}
	// Pair 1: equal values 7, indexes 9 vs 3 -> 3.
	if inout[2] != 7 || inout[3] != 3 {
		t.Errorf("pair 1 = (%v,%v)", inout[2], inout[3])
	}
	if err := MAXLOC.apply([]float64{1, 2, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("odd-length pairs accepted")
	}
	// int32 and int64 variants.
	i32in, i32out := []int32{9, 0}, []int32{3, 1}
	if err := MAXLOC.apply(i32in, i32out); err != nil || i32out[0] != 9 || i32out[1] != 0 {
		t.Errorf("int32 MAXLOC: %v %v", i32out, err)
	}
	i64in, i64out := []int64{-5, 2}, []int64{-3, 0}
	if err := MINLOC.apply(i64in, i64out); err != nil || i64out[0] != -5 || i64out[1] != 2 {
		t.Errorf("int64 MINLOC: %v %v", i64out, err)
	}
	f32in, f32out := []float32{1, 7}, []float32{2, 3}
	if err := MINLOC.apply(f32in, f32out); err != nil || f32out[0] != 1 || f32out[1] != 7 {
		t.Errorf("float32 MINLOC: %v %v", f32out, err)
	}
}

func TestOpMetadata(t *testing.T) {
	if SUM.String() != "SUM" || !SUM.IsCommutative() {
		t.Error("SUM metadata wrong")
	}
	user := NewOp(func(in, inout any) error { return nil }, false)
	if user.IsCommutative() || user.String() != "USER" {
		t.Error("user op metadata wrong")
	}
}
