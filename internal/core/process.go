package core

import (
	"fmt"
	"sync"

	"mpj/internal/mpe"
	"mpj/internal/mpjdev"
	"mpj/internal/replay"
	"mpj/internal/xdev"
)

// ThreadLevel is an MPI-2.0 thread-support level (§IV-B). The paper
// notes there were no Java bindings for these in MPI 1.2 and plans to
// add them; this reproduction includes them.
type ThreadLevel int

// Thread-support levels, in increasing order of freedom.
const (
	// ThreadSingle: only one thread executes.
	ThreadSingle ThreadLevel = iota
	// ThreadFunneled: only the main thread makes MPI calls.
	ThreadFunneled
	// ThreadSerialized: any thread, one at a time.
	ThreadSerialized
	// ThreadMultiple: any thread, any time — MPJ Express's default and
	// the level this library always provides.
	ThreadMultiple
)

var threadLevelNames = map[ThreadLevel]string{
	ThreadSingle:     "MPI_THREAD_SINGLE",
	ThreadFunneled:   "MPI_THREAD_FUNNELED",
	ThreadSerialized: "MPI_THREAD_SERIALIZED",
	ThreadMultiple:   "MPI_THREAD_MULTIPLE",
}

// String returns the MPI constant name.
func (l ThreadLevel) String() string {
	if s, ok := threadLevelNames[l]; ok {
		return s
	}
	return fmt.Sprintf("ThreadLevel(%d)", int(l))
}

// Process is one MPI process: the per-process state the Java bindings
// keep in the static MPI class. Keeping it in an object lets a single
// Go test or SMP application run many ranks in one address space.
type Process struct {
	dev      xdev.Device
	pids     []xdev.ProcessID
	world    *Intracomm
	provided ThreadLevel

	// nodeOf is the job's rank→node placement (xdev.Config.NodeOf):
	// world slot i runs on node nodeOf[i]. nil means unknown, which
	// every topology query treats as a single node — the collectives
	// then never pick a hierarchical algorithm. Set at InitThread from
	// the config, or by SetNodeMap for Attach-based harnesses.
	nodeOf []int

	rec mpe.Recorder
	// replay is the rank's record/replay session (nil when neither
	// MPJ_RECORD nor MPJ_REPLAY is active). The device layer enforces
	// matching and pop order; core only records/verifies agreement
	// outcomes, which never reach devcore as match decisions.
	replay *replay.Session
	// counters points at the device's live counter block when the
	// device exposes one (mpe.CounterSource), or at a shared discard
	// block otherwise — never nil, so hot paths bump unconditionally.
	counters *mpe.Counters

	mu        sync.Mutex
	nextCtx   int
	finalized bool
	finHooks  []func()

	// Fault-tolerance registries (see ft.go), keyed by a communicator's
	// point-to-point context — communicator values may be copied (the
	// topology communicators embed Intracomm by value), so per-comm
	// mutable state lives here rather than in Comm. fts holds each
	// communicator's lazily-started agreement state; wins the windows
	// created on it, which Revoke poisons along with the contexts.
	ftMu  sync.Mutex
	fts   map[int]*ftState
	winMu sync.Mutex
	wins  map[int][]*Win

	// Buffered-send pool (MPI_Buffer_attach).
	bsendMu    sync.Mutex
	bsendCap   int
	bsendInUse int
}

// Init initializes a process on an already-configured device and
// returns its handle; the world communicator covers all job processes.
// It is MPI_Init: thread level defaults to ThreadMultiple.
func Init(dev xdev.Device, cfg xdev.Config) (*Process, error) {
	p, _, err := InitThread(dev, cfg, ThreadMultiple)
	return p, err
}

// InitThread is MPI_Init_thread: it initializes the process requesting
// the given thread level and returns the provided level, which is
// always ThreadMultiple — the library's communication path is fully
// thread safe, so every request can be granted in full.
func InitThread(dev xdev.Device, cfg xdev.Config, required ThreadLevel) (*Process, ThreadLevel, error) {
	if required < ThreadSingle || required > ThreadMultiple {
		return nil, 0, fmt.Errorf("core: invalid thread level %d", int(required))
	}
	if err := validateCollEnv(); err != nil {
		return nil, 0, err
	}
	pids, err := dev.Init(cfg)
	if err != nil {
		return nil, 0, err
	}
	p := &Process{dev: dev, pids: pids, provided: ThreadMultiple, rec: mpe.RecorderOf(dev), counters: mpe.CountersOf(dev), replay: cfg.Replay}
	if len(cfg.NodeOf) == len(pids) {
		p.nodeOf = append([]int(nil), cfg.NodeOf...)
	}
	world, err := p.newIntracomm(NewGroup(pids), cfg.Rank)
	if err != nil {
		dev.Finish()
		return nil, 0, err
	}
	p.world = world
	return p, p.provided, nil
}

// Attach builds a Process over a device that is already initialized —
// its Init has run and produced pids, of which the caller is rank. The
// test harnesses use it to layer MPI semantics onto devices their
// runners manage; Finalize still finishes the device.
func Attach(dev xdev.Device, pids []xdev.ProcessID, rank int) (*Process, error) {
	if rank < 0 || rank >= len(pids) {
		return nil, fmt.Errorf("core: Attach: rank %d out of range [0,%d)", rank, len(pids))
	}
	p := &Process{dev: dev, pids: pids, provided: ThreadMultiple, rec: mpe.RecorderOf(dev), counters: mpe.CountersOf(dev)}
	world, err := p.newIntracomm(NewGroup(pids), rank)
	if err != nil {
		return nil, err
	}
	p.world = world
	return p, nil
}

// SetNodeMap installs the job's rank→node placement after the fact,
// for harnesses that build processes with Attach (which has no
// xdev.Config to carry it). len(nodeOf) must be the world size; call
// it before any collective runs — placement steers algorithm choice,
// which must agree on every rank.
func (p *Process) SetNodeMap(nodeOf []int) error {
	if len(nodeOf) != len(p.pids) {
		return fmt.Errorf("core: SetNodeMap: placement covers %d ranks, world has %d", len(nodeOf), len(p.pids))
	}
	p.nodeOf = append([]int(nil), nodeOf...)
	return nil
}

// NodeMap returns the job's rank→node placement, or nil when unknown.
func (p *Process) NodeMap() []int {
	if p.nodeOf == nil {
		return nil
	}
	return append([]int(nil), p.nodeOf...)
}

// World returns the COMM_WORLD communicator.
func (p *Process) World() *Intracomm { return p.world }

// Rank returns the process's world rank.
func (p *Process) Rank() int { return p.world.Rank() }

// Size returns the world size.
func (p *Process) Size() int { return p.world.Size() }

// QueryThread returns the provided thread level (MPI_Query_thread).
func (p *Process) QueryThread() ThreadLevel { return p.provided }

// Device exposes the underlying communication device.
func (p *Process) Device() xdev.Device { return p.dev }

// AddFinalizeHook registers fn to run when Finalize is called, after
// the device has shut down — the device's progress goroutines have
// quiesced by then, so trace collectors observe a stable recorder and
// final counter values. Hooks run in registration order; adding a hook
// after Finalize is a no-op.
func (p *Process) AddFinalizeHook(fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.finalized {
		p.finHooks = append(p.finHooks, fn)
	}
}

// Finalize shuts down the process's communication (MPI_Finalize).
func (p *Process) Finalize() error {
	p.mu.Lock()
	if p.finalized {
		p.mu.Unlock()
		return nil
	}
	p.finalized = true
	hooks := p.finHooks
	p.finHooks = nil
	p.mu.Unlock()
	err := p.dev.Finish()
	for _, fn := range hooks {
		fn()
	}
	return err
}

// Finalized reports whether Finalize has been called.
func (p *Process) Finalized() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.finalized
}

// allocContexts hands out the next pair of matching contexts
// (point-to-point, collective). MPI requires all members of a
// communicator to execute communicator-creation calls in the same
// order, which keeps these counters in agreement across processes.
func (p *Process) allocContexts() (ptp, coll int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ptp = p.nextCtx
	coll = p.nextCtx + 1
	p.nextCtx += 2
	return ptp, coll
}

// newIntracomm assembles an intracommunicator over the group with
// freshly allocated contexts. rank is this process's rank in group.
func (p *Process) newIntracomm(group *Group, rank int) (*Intracomm, error) {
	ptpCtx, collCtx := p.allocContexts()
	if rank == Undefined {
		return nil, nil // not a member; contexts still consumed
	}
	ptp, err := mpjdev.NewComm(p.dev, group.pids, rank, ptpCtx)
	if err != nil {
		return nil, err
	}
	coll, err := mpjdev.NewComm(p.dev, group.pids, rank, collCtx)
	if err != nil {
		return nil, err
	}
	return &Intracomm{Comm: Comm{p: p, group: group, ptp: ptp, coll: coll}}, nil
}

// BufferAttach provides buffer space for buffered-mode sends
// (MPI_Buffer_attach). The size is in bytes of packed message data.
func (p *Process) BufferAttach(size int) error {
	if size < 0 {
		return fmt.Errorf("core: BufferAttach: negative size")
	}
	p.bsendMu.Lock()
	defer p.bsendMu.Unlock()
	if p.bsendCap != 0 {
		return fmt.Errorf("core: BufferAttach: buffer already attached")
	}
	p.bsendCap = size
	return nil
}

// BufferDetach removes the buffered-send buffer and returns its size
// (MPI_Buffer_detach).
func (p *Process) BufferDetach() int {
	p.bsendMu.Lock()
	defer p.bsendMu.Unlock()
	size := p.bsendCap
	p.bsendCap = 0
	p.bsendInUse = 0
	return size
}

// reserveBsend claims space for one buffered send, failing when the
// attached buffer cannot hold the message (MPI_ERR_BUFFER).
func (p *Process) reserveBsend(n int) error {
	p.bsendMu.Lock()
	defer p.bsendMu.Unlock()
	if p.bsendCap == 0 {
		return fmt.Errorf("core: buffered send without an attached buffer")
	}
	if p.bsendInUse+n > p.bsendCap {
		return fmt.Errorf("core: buffered send of %d bytes exceeds attached buffer (%d of %d in use)",
			n, p.bsendInUse, p.bsendCap)
	}
	p.bsendInUse += n
	return nil
}

func (p *Process) releaseBsend(n int) {
	p.bsendMu.Lock()
	if p.bsendInUse >= n {
		p.bsendInUse -= n
	} else {
		p.bsendInUse = 0
	}
	p.bsendMu.Unlock()
}
