package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpj/internal/smpdev"
	"mpj/internal/xdev"
)

var groupCounter atomic.Int64

// runWorld starts an n-rank world over the shared-memory device and
// runs fn once per rank, each on its own goroutine.
func runWorld(t *testing.T, n int, fn func(p *Process, w *Intracomm)) {
	t.Helper()
	group := fmt.Sprintf("core-test-%d", groupCounter.Add(1))
	procs := make([]*Process, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			procs[rank], errs[rank] = Init(smpdev.New(), xdev.Config{Rank: rank, Size: n, Group: group})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", i, err)
		}
	}
	defer func() {
		for _, p := range procs {
			p.Finalize()
		}
	}()
	var jobWG sync.WaitGroup
	for i := 0; i < n; i++ {
		jobWG.Add(1)
		go func(rank int) {
			defer jobWG.Done()
			fn(procs[rank], procs[rank].World())
		}(i)
	}
	done := make(chan struct{})
	go func() {
		jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("world deadlocked")
	}
}

// runWorldBench is runWorld for benchmarks; fn runs once per rank and
// returns an error.
func runWorldBench(b *testing.B, n int, fn func(p *Process, w *Intracomm) error) {
	b.Helper()
	group := fmt.Sprintf("core-bench-%d", groupCounter.Add(1))
	procs := make([]*Process, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			procs[rank], errs[rank] = Init(smpdev.New(), xdev.Config{Rank: rank, Size: n, Group: group})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			b.Fatalf("rank %d init: %v", i, err)
		}
	}
	defer func() {
		for _, p := range procs {
			p.Finalize()
		}
	}()
	var jobWG sync.WaitGroup
	bodyErrs := make([]error, n)
	for i := 0; i < n; i++ {
		jobWG.Add(1)
		go func(rank int) {
			defer jobWG.Done()
			bodyErrs[rank] = fn(procs[rank], procs[rank].World())
		}(i)
	}
	jobWG.Wait()
	for i, err := range bodyErrs {
		if err != nil {
			b.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestWorldBasics(t *testing.T) {
	runWorld(t, 3, func(p *Process, w *Intracomm) {
		if w.Size() != 3 {
			t.Errorf("size = %d", w.Size())
		}
		if w.Rank() < 0 || w.Rank() > 2 {
			t.Errorf("rank = %d", w.Rank())
		}
		if p.QueryThread() != ThreadMultiple {
			t.Errorf("thread level %v", p.QueryThread())
		}
	})
}

func TestInitThreadProvidesMultiple(t *testing.T) {
	group := fmt.Sprintf("core-thread-%d", groupCounter.Add(1))
	for _, req := range []ThreadLevel{ThreadSingle, ThreadFunneled, ThreadSerialized, ThreadMultiple} {
		p, provided, err := InitThread(smpdev.New(), xdev.Config{Rank: 0, Size: 1, Group: fmt.Sprintf("%s-%d", group, req)}, req)
		if err != nil {
			t.Fatal(err)
		}
		if provided != ThreadMultiple {
			t.Errorf("requested %v, provided %v (want MPI_THREAD_MULTIPLE)", req, provided)
		}
		p.Finalize()
	}
	if _, _, err := InitThread(smpdev.New(), xdev.Config{Rank: 0, Size: 1}, ThreadLevel(9)); err == nil {
		t.Error("invalid thread level accepted")
	}
}

func TestThreadLevelString(t *testing.T) {
	if ThreadMultiple.String() != "MPI_THREAD_MULTIPLE" {
		t.Errorf("got %q", ThreadMultiple.String())
	}
	if ThreadLevel(42).String() == "" {
		t.Error("unknown level has empty name")
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	group := fmt.Sprintf("core-fin-%d", groupCounter.Add(1))
	p, err := Init(smpdev.New(), xdev.Config{Rank: 0, Size: 1, Group: group})
	if err != nil {
		t.Fatal(err)
	}
	if p.Finalized() {
		t.Error("finalized before Finalize")
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !p.Finalized() {
		t.Error("not finalized after Finalize")
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvTyped(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			data := []float64{1.5, 2.5, 3.5}
			if err := w.Send(data, 0, 3, DOUBLE, 1, 7); err != nil {
				t.Error(err)
			}
		} else {
			got := make([]float64, 3)
			st, err := w.Recv(got, 0, 3, DOUBLE, 0, 7)
			if err != nil {
				t.Error(err)
				return
			}
			if st.Source != 0 || st.Tag != 7 || st.Count() != 3 || st.GetCount(DOUBLE) != 3 {
				t.Errorf("status %+v count %d", st, st.Count())
			}
			if got[2] != 3.5 {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestSendRecvWithOffset(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			data := []int32{0, 0, 10, 20, 30}
			if err := w.Send(data, 2, 3, INT, 1, 0); err != nil {
				t.Error(err)
			}
		} else {
			got := make([]int32, 6)
			if _, err := w.Recv(got, 3, 3, INT, 0, 0); err != nil {
				t.Error(err)
				return
			}
			want := []int32{0, 0, 0, 10, 20, 30}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("got %v", got)
				}
			}
		}
	})
}

func TestIsendIrecvWaitAll(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		const k = 8
		if w.Rank() == 0 {
			reqs := make([]*Request, k)
			for i := range reqs {
				r, err := w.Isend([]int64{int64(i)}, 0, 1, LONG, 1, i)
				if err != nil {
					t.Error(err)
					return
				}
				reqs[i] = r
			}
			if _, err := WaitAll(reqs); err != nil {
				t.Error(err)
			}
		} else {
			reqs := make([]*Request, k)
			bufs := make([][]int64, k)
			for i := range reqs {
				bufs[i] = make([]int64, 1)
				r, err := w.Irecv(bufs[i], 0, 1, LONG, 0, i)
				if err != nil {
					t.Error(err)
					return
				}
				reqs[i] = r
			}
			sts, err := WaitAll(reqs)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range reqs {
				if bufs[i][0] != int64(i) {
					t.Errorf("req %d: got %d", i, bufs[i][0])
				}
				if sts[i].Tag != i {
					t.Errorf("req %d: tag %d", i, sts[i].Tag)
				}
			}
		}
	})
}

func TestCoreWaitAnyUnpacksData(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			if err := w.Send([]float64{42}, 0, 1, DOUBLE, 1, 5); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]float64, 1)
			req, err := w.Irecv(buf, 0, 1, DOUBLE, 0, 5)
			if err != nil {
				t.Error(err)
				return
			}
			idx, st, err := WaitAny([]*Request{req})
			if err != nil {
				t.Error(err)
				return
			}
			if idx != 0 || st.Tag != 5 {
				t.Errorf("idx=%d st=%+v", idx, st)
			}
			if buf[0] != 42 {
				t.Errorf("data not unpacked: %v", buf)
			}
		}
	})
}

func TestSsendIssend(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			req, err := w.Issend([]int32{1}, 0, 1, INT, 1, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if _, ok, _ := req.Test(); ok {
				t.Error("Issend complete before receiver matched")
			}
			if err := w.Send([]int32{0}, 0, 1, INT, 1, 1); err != nil {
				t.Error(err)
			}
			if _, err := req.Wait(); err != nil {
				t.Error(err)
			}
			// Blocking Ssend round.
			if err := w.Ssend([]int32{2}, 0, 1, INT, 1, 2); err != nil {
				t.Error(err)
			}
		} else {
			b := make([]int32, 1)
			w.Recv(b, 0, 1, INT, 0, 1)
			w.Recv(b, 0, 1, INT, 0, 0)
			if _, err := w.Recv(b, 0, 1, INT, 0, 2); err != nil {
				t.Error(err)
			}
			if b[0] != 2 {
				t.Errorf("got %d", b[0])
			}
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		peer := 1 - w.Rank()
		out := []int32{int32(w.Rank())}
		in := make([]int32, 1)
		st, err := w.Sendrecv(out, 0, 1, INT, peer, 9, in, 0, 1, INT, peer, 9)
		if err != nil {
			t.Error(err)
			return
		}
		if in[0] != int32(peer) || st.Source != peer {
			t.Errorf("in=%v st=%+v", in, st)
		}
	})
}

func TestBsendRequiresAttachedBuffer(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			if err := w.Bsend([]int32{1}, 0, 1, INT, 1, 0); err == nil {
				t.Error("Bsend without attached buffer succeeded")
			}
			if err := p.BufferAttach(1 << 16); err != nil {
				t.Error(err)
			}
			if err := p.BufferAttach(1); err == nil {
				t.Error("double attach accepted")
			}
			if err := w.Bsend([]int32{7}, 0, 1, INT, 1, 0); err != nil {
				t.Error(err)
			}
			// A message far beyond the pool must be rejected.
			big := make([]int32, 1<<16)
			if err := w.Bsend(big, 0, len(big), INT, 1, 1); err == nil {
				t.Error("oversized Bsend accepted")
			}
			if n := p.BufferDetach(); n != 1<<16 {
				t.Errorf("detach returned %d", n)
			}
		} else {
			b := make([]int32, 1)
			if _, err := w.Recv(b, 0, 1, INT, 0, 0); err != nil {
				t.Error(err)
			}
			if b[0] != 7 {
				t.Errorf("got %d", b[0])
			}
		}
	})
}

func TestProbeIprobeCore(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			w.Send([]int32{1, 2, 3}, 0, 3, INT, 1, 4)
		} else {
			st, err := w.Probe(AnySource, AnyTag)
			if err != nil {
				t.Error(err)
				return
			}
			if st.Source != 0 || st.Tag != 4 {
				t.Errorf("probe %+v", st)
			}
			if _, ok, _ := w.Iprobe(0, 4); !ok {
				t.Error("iprobe missed message")
			}
			b := make([]int32, 3)
			w.Recv(b, 0, 3, INT, 0, 4)
		}
	})
}

func TestRecvCountSmallerMessage(t *testing.T) {
	// Receiving into a larger window reports the actual element count.
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			w.Send([]int32{1, 2}, 0, 2, INT, 1, 0)
		} else {
			b := make([]int32, 10)
			st, err := w.Recv(b, 0, 10, INT, 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if st.Count() != 2 || st.GetCount(INT) != 2 {
				t.Errorf("count %d", st.Count())
			}
		}
	})
}

func TestThreadMultipleCore(t *testing.T) {
	// Concurrent sends/recvs through the full API stack.
	const goroutines = 6
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		peer := 1 - w.Rank()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					want := int64(g*1000 + i)
					if err := w.Send([]int64{want}, 0, 1, LONG, peer, g); err != nil {
						t.Errorf("send: %v", err)
						return
					}
					buf := make([]int64, 1)
					if _, err := w.Recv(buf, 0, 1, LONG, peer, g); err != nil {
						t.Errorf("recv: %v", err)
						return
					}
					if buf[0] != want {
						t.Errorf("g%d i%d: got %d", g, i, buf[0])
					}
				}
			}(g)
		}
		wg.Wait()
	})
}
