package core

import "fmt"

// Collective algorithm variants. Like production MPI libraries, the
// high-level operations pick an algorithm from message size, group
// size and operator properties:
//
//   - Allreduce uses recursive doubling for commutative operators
//     (log2(n) rounds, each rank ends with the result — half the
//     rounds of reduce+broadcast) and falls back to a rank-ordered
//     reduce+broadcast for non-commutative ones;
//   - Allgather/Allgatherv switch to a ring (bandwidth-optimal, n-1
//     neighbour exchanges) once the gathered payload is large, and use
//     gather+broadcast below that (latency-optimal for small data).
//
// The internal/core benchmarks compare the variants directly.

// Allreduce tags live beside the other collective tags.
const (
	tagAllreduceRD = tagBarrierRound + 64
	tagRing        = tagBarrierRound + 65
)

// ringThresholdBytes is the gathered-payload size above which
// Allgatherv uses the ring algorithm.
const ringThresholdBytes = 16 << 10

// allreduceRD performs recursive-doubling allreduce over a contiguous
// scratch slice in place. Requires a commutative op.
func (c *Intracomm) allreduceRD(scratch any, elems int, bdt *Datatype, op *Op) error {
	n := c.Size()
	rank := c.Rank()
	if n == 1 {
		return nil
	}

	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2

	recvTmp := func() (any, error) { return allocLike(scratch, elems) }

	// Fold the ranks beyond the largest power of two into the core:
	// even ranks below 2*rem contribute to their odd neighbour and sit
	// out the exchange phase.
	newRank := -1
	switch {
	case rank < 2*rem && rank%2 == 0:
		if err := c.collSend(scratch, 0, elems, bdt, rank+1, tagAllreduceRD); err != nil {
			return err
		}
	case rank < 2*rem:
		tmp, err := recvTmp()
		if err != nil {
			return err
		}
		if err := c.collRecv(tmp, 0, elems, bdt, rank-1, tagAllreduceRD); err != nil {
			return err
		}
		if err := op.apply(tmp, scratch); err != nil {
			return err
		}
		newRank = rank / 2
	default:
		newRank = rank - rem
	}

	if newRank != -1 {
		toReal := func(nr int) int {
			if nr < rem {
				return nr*2 + 1
			}
			return nr + rem
		}
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := toReal(newRank ^ mask)
			req, err := c.collIsend(scratch, 0, elems, bdt, partner, tagAllreduceRD)
			if err != nil {
				return err
			}
			tmp, err := recvTmp()
			if err != nil {
				return err
			}
			if err := c.collRecv(tmp, 0, elems, bdt, partner, tagAllreduceRD); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if err := op.apply(tmp, scratch); err != nil {
				return err
			}
		}
	}

	// Unfold: the core hands results back to the folded-out ranks.
	if rank < 2*rem {
		if rank%2 != 0 {
			return c.collSend(scratch, 0, elems, bdt, rank-1, tagAllreduceRD)
		}
		return c.collRecv(scratch, 0, elems, bdt, rank+1, tagAllreduceRD)
	}
	return nil
}

// allgathervRing circulates blocks around a ring: after n-1 steps every
// rank holds every block. Blocks live in recvbuf at their final
// displacements throughout; rank r's own contribution must already be
// in place.
func (c *Intracomm) allgathervRing(recvbuf any, roff int, rcounts, displs []int, rdt *Datatype) error {
	n := c.Size()
	rank := c.Rank()
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendIdx := (rank - s + n) % n
		recvIdx := (rank - s - 1 + n) % n
		req, err := c.collIsend(recvbuf, roff+displs[sendIdx]*rdt.extent, rcounts[sendIdx], rdt, right, tagRing)
		if err != nil {
			return fmt.Errorf("core: ring allgather step %d: %w", s, err)
		}
		if err := c.collRecv(recvbuf, roff+displs[recvIdx]*rdt.extent, rcounts[recvIdx], rdt, left, tagRing); err != nil {
			return fmt.Errorf("core: ring allgather step %d: %w", s, err)
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// binomialGatherThresholdBytes is the per-block size below which
// Gather uses the binomial tree (log2(n) rounds) instead of the
// linear receive-at-root (n-1 messages converging on one process).
const binomialGatherThresholdBytes = 2 << 10

// gatherBinomial gathers equal-size blocks to root along a binomial
// tree: at step k, subtree owners of 2^k blocks forward their whole
// region to their parent. Latency O(log n) at the cost of each block
// travelling up to log n hops.
//
// scratch is this rank's contiguous contribution (blockElems base
// elements); the gathered result lands in recvbuf via rdt at root.
func (c *Intracomm) gatherBinomial(scratch any, blockElems int, bdt *Datatype,
	recvbuf any, roff, rcount int, rdt *Datatype, root int) error {
	n := c.Size()
	rank := c.Rank()
	rel := (rank - root + n) % n

	// region holds blocks [rel, rel+span) in relative order.
	region, err := allocLike(scratch, blockElems*n)
	if err != nil {
		return err
	}
	if err := copyElems(scratch, 0, region, 0, blockElems); err != nil {
		return err
	}
	span := 1
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent := (rel - mask + root) % n
			send := min(span, n-rel)
			return c.collSend(region, 0, send*blockElems, bdt, parent, tagGather)
		}
		childRel := rel + mask
		if childRel < n {
			recvBlocks := min(mask, n-childRel)
			src := (childRel + root) % n
			if err := c.collRecv(region, mask*blockElems, recvBlocks*blockElems, bdt, src, tagGather); err != nil {
				return err
			}
		}
		span <<= 1
	}
	// Root: blocks sit in relative order; place each into recvbuf by
	// absolute rank through rdt's layout.
	for relIdx := 0; relIdx < n; relIdx++ {
		abs := (relIdx + root) % n
		sub, err := sliceRegion(region, relIdx*blockElems, blockElems)
		if err != nil {
			return err
		}
		if err := fromScratch(sub, recvbuf, roff+abs*rcount*rdt.extent, rcount, rdt); err != nil {
			return err
		}
	}
	return nil
}

// copyElems copies count elements between same-typed slices.
func copyElems(src any, soff int, dst any, doff, count int) error {
	switch s := src.(type) {
	case []byte:
		copy(dst.([]byte)[doff:doff+count], s[soff:])
	case []bool:
		copy(dst.([]bool)[doff:doff+count], s[soff:])
	case []uint16:
		copy(dst.([]uint16)[doff:doff+count], s[soff:])
	case []int16:
		copy(dst.([]int16)[doff:doff+count], s[soff:])
	case []int32:
		copy(dst.([]int32)[doff:doff+count], s[soff:])
	case []int64:
		copy(dst.([]int64)[doff:doff+count], s[soff:])
	case []float32:
		copy(dst.([]float32)[doff:doff+count], s[soff:])
	case []float64:
		copy(dst.([]float64)[doff:doff+count], s[soff:])
	case []any:
		copy(dst.([]any)[doff:doff+count], s[soff:])
	default:
		return fmt.Errorf("core: copyElems: unsupported type %T", src)
	}
	return nil
}

// sliceRegion returns src[off:off+count] preserving the dynamic type.
func sliceRegion(src any, off, count int) (any, error) {
	switch s := src.(type) {
	case []byte:
		return s[off : off+count], nil
	case []bool:
		return s[off : off+count], nil
	case []uint16:
		return s[off : off+count], nil
	case []int16:
		return s[off : off+count], nil
	case []int32:
		return s[off : off+count], nil
	case []int64:
		return s[off : off+count], nil
	case []float32:
		return s[off : off+count], nil
	case []float64:
		return s[off : off+count], nil
	case []any:
		return s[off : off+count], nil
	}
	return nil, fmt.Errorf("core: sliceRegion: unsupported type %T", src)
}

// gatheredBytes estimates the total payload of an allgather.
func gatheredBytes(rcounts []int, rdt *Datatype) int {
	total := 0
	for _, cnt := range rcounts {
		total += cnt
	}
	elem := rdt.Base().Size()
	if elem == 0 {
		elem = 64
	}
	return total * rdt.Size() * elem
}
