package core

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpj/internal/mpe"
)

// Collective algorithm variants. Like production MPI libraries, the
// high-level operations pick an algorithm from message size, group
// size and operator properties:
//
//   - Bcast pipelines large payloads down the binomial tree in
//     segments (O(depth·seg + msg) instead of O(depth·msg)), and
//     sends small ones whole;
//   - Reduce folds large commutative payloads segment-by-segment down
//     the same tree; non-commutative ops use a streamed rank-ordered
//     fold at the root with bounded memory;
//   - Allreduce uses recursive doubling for small commutative
//     payloads (log2(n) rounds, each rank ends with the result) and a
//     Rabenseifner-style reduce-scatter + allgather above
//     rsagThresholdBytes (each byte crosses the wire O(1) times); it
//     falls back to a rank-ordered reduce+broadcast for
//     non-commutative ones;
//   - Scatter/Gather stream large per-rank blocks in windowed
//     segments so several peers are in flight at once;
//   - Allgather/Allgatherv switch to a ring (bandwidth-optimal, n-1
//     neighbour exchanges) once the gathered payload is large, and use
//     gather+broadcast below that (latency-optimal for small data).
//
// The internal/core benchmarks compare the variants directly.

// Allreduce tags live beside the other collective tags. tagSegBase
// opens the per-segment tag space: segment i of a pipelined stream
// travels under tagSegBase+i, so windowed receives stay correctly
// paired even on devices that relax posted-order matching (ibisdev).
// Nothing else allocates tags above tagSegBase.
const (
	tagAllreduceRD = tagBarrierRound + 64
	tagRing        = tagBarrierRound + 65
	tagAllreduceRS = tagBarrierRound + 66 // RSAG reduce-scatter phase
	tagAllreduceAG = tagBarrierRound + 67 // RSAG allgather phase
	tagSegBase     = tagBarrierRound + 128
)

// ringThresholdBytes is the gathered-payload size above which
// Allgatherv uses the ring algorithm.
const ringThresholdBytes = 16 << 10

// rsagThresholdBytes is the payload size above which commutative
// Allreduce switches from recursive doubling to reduce-scatter +
// allgather.
const rsagThresholdBytes = 64 << 10

// hierThresholdBytes is the payload size above which Bcast, Reduce and
// Allreduce switch to the two-level node-leader algorithms when the
// placement spans several nodes with several ranks each. Below it the
// extra intra-node hops cost more than the saved wire messages; the
// two-level perfmodel predicts the crossover per fabric, and the
// collbench flat-vs-hierarchical comparison measures it.
const hierThresholdBytes = 64 << 10

// Environment knobs for collective tuning. They must be set to the
// same values on every rank of a job: segment size changes the number
// of messages a collective exchanges.
const (
	// EnvCollSegment sets the pipeline segment size in bytes
	// (default 32 KiB).
	EnvCollSegment = "MPJ_COLL_SEGMENT"
	// EnvCollAlgo forces an algorithm family instead of the size-based
	// table: auto (default), flat, pipeline, rd, rsag, hier.
	EnvCollAlgo = "MPJ_COLL_ALGO"
)

// ErrUnknownCollAlgo is returned by InitThread when MPJ_COLL_ALGO
// names an algorithm family the library does not have. A typo must
// fail loudly: silently falling back to the auto table would run a
// different algorithm than the one the job was told to measure — and
// since the knob must agree across ranks, one misspelled rank would
// otherwise deadlock against the others mid-collective.
var ErrUnknownCollAlgo = errors.New("core: unknown MPJ_COLL_ALGO algorithm")

const (
	defaultSegmentBytes = 32 << 10
	defaultCollWindow   = 4

	// pipelineReduceMaxRanks bounds the comm size for the pipelined
	// reduce. Unlike the pipelined broadcast — which packs once at the
	// root and forwards wire buffers verbatim — a reduce must unpack,
	// fold and repack at every level, so a deeper tree multiplies the
	// per-segment message count with no repack to save; past this size
	// the flat binomial's fewer, larger messages win.
	pipelineReduceMaxRanks = 8
)

// collForce is a forced algorithm family from MPJ_COLL_ALGO.
type collForce uint8

const (
	forceAuto collForce = iota
	forceFlat           // store-and-forward / unsegmented everywhere
	forcePipeline
	forceRD
	forceRSAG
	forceHier // two-level node-leader algorithms wherever the topology allows
)

// parseCollForce maps an MPJ_COLL_ALGO value to its algorithm family.
// Unknown names are a typed error (ErrUnknownCollAlgo) so InitThread
// can refuse them instead of silently running something else.
func parseCollForce(v string) (collForce, error) {
	switch strings.ToLower(v) {
	case "", "auto":
		return forceAuto, nil
	case "flat", "store-forward":
		return forceFlat, nil
	case "pipeline", "pipelined":
		return forcePipeline, nil
	case "rd", "recursive-doubling":
		return forceRD, nil
	case "rsag", "reduce-scatter-allgather":
		return forceRSAG, nil
	case "hier", "hierarchical":
		return forceHier, nil
	}
	return forceAuto, fmt.Errorf("%w: %q (valid: auto, flat, pipeline, rd, rsag, hier)", ErrUnknownCollAlgo, v)
}

// validateCollEnv checks the collective tuning environment; InitThread
// calls it so a job with a misspelled MPJ_COLL_ALGO fails at startup
// with a typed error rather than running the wrong algorithm.
func validateCollEnv() error {
	if _, err := parseCollForce(os.Getenv(EnvCollAlgo)); err != nil {
		return err
	}
	return nil
}

// collTuning carries the segmentation knobs read once at startup.
// Tests overwrite collCfg between worlds (never while one is running).
type collTuning struct {
	segBytes int // pipeline segment size
	window   int // outstanding segments per stream
	force    collForce
}

func loadCollTuning() collTuning {
	t := collTuning{segBytes: defaultSegmentBytes, window: defaultCollWindow}
	if v := os.Getenv(EnvCollSegment); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			t.segBytes = n
		}
	}
	// Unknown names keep forceAuto here — loadCollTuning runs at
	// package init and cannot fail; InitThread rejects them with
	// ErrUnknownCollAlgo via validateCollEnv before any traffic.
	if f, err := parseCollForce(os.Getenv(EnvCollAlgo)); err == nil {
		t.force = f
	}
	return t
}

var collCfg = loadCollTuning()

// payloadBytes is the contiguous wire size of count items of dt.
func payloadBytes(count int, dt *Datatype) int {
	return count * dt.Size() * max(dt.Base().Size(), 1)
}

// segmentable reports whether a payload of dt may move as segments:
// OBJECT elements have no fixed wire size and struct types interleave
// base types, so both always travel whole.
func segmentable(dt *Datatype) bool {
	return dt.fields == nil && dt.Base() != OBJECT.Base()
}

// hierEligible reports whether the two-level node-leader algorithms
// apply: the communicator spans several nodes, and — unless the user
// forces them — each wire message saved pays for at least one
// intra-node hop (some node holds several ranks) and the payload is
// past the crossover. Every rank computes this from the same global
// placement, so the choice agrees job-wide.
func (c *Intracomm) hierEligible(bytes int) bool {
	if c.Size() < 2 {
		return false
	}
	switch collCfg.force {
	case forceHier:
		return c.topo().nNodes >= 2
	case forceAuto:
		if bytes < hierThresholdBytes {
			return false
		}
		t := c.topo()
		return t.nNodes >= 2 && t.ranksPerNode() >= 2
	}
	return false
}

// chooseBcast picks the broadcast variant from the payload size and
// the node topology.
func (c *Intracomm) chooseBcast(bytes int, dt *Datatype) int32 {
	if c.Size() == 1 || !segmentable(dt) {
		return mpe.AlgoStoreForward
	}
	if c.hierEligible(bytes) {
		return mpe.AlgoHierarchical
	}
	switch collCfg.force {
	case forceFlat:
		return mpe.AlgoStoreForward
	case forcePipeline:
		if bytes > 0 {
			return mpe.AlgoPipelined
		}
		return mpe.AlgoStoreForward
	}
	if bytes > collCfg.segBytes {
		return mpe.AlgoPipelined
	}
	return mpe.AlgoStoreForward
}

// chooseReduce picks the reduce variant. Non-commutative ops always
// take the streamed rank-ordered fold (bounded memory at the root)
// unless flat is forced; commutative ops pipeline large payloads down
// the binomial tree when the op can be applied per segment and the
// comm is small enough that the extra per-segment messages pay off.
func (c *Intracomm) chooseReduce(bytes int, dt *Datatype, op *Op) int32 {
	if !op.commute {
		if collCfg.force == forceFlat {
			return mpe.AlgoStoreForward
		}
		return mpe.AlgoStreamedFold
	}
	if c.Size() == 1 || !segmentable(dt) || op.atom <= 0 {
		return mpe.AlgoStoreForward
	}
	if c.hierEligible(bytes) {
		return mpe.AlgoHierarchical
	}
	switch collCfg.force {
	case forceFlat:
		return mpe.AlgoStoreForward
	case forcePipeline:
		if bytes > 0 {
			return mpe.AlgoPipelined
		}
		return mpe.AlgoStoreForward
	}
	if bytes > collCfg.segBytes && c.Size() <= pipelineReduceMaxRanks {
		return mpe.AlgoPipelined
	}
	return mpe.AlgoStoreForward
}

// chooseAllreduce picks between recursive doubling and reduce-scatter
// + allgather for commutative ops (non-commutative Allreduce never
// reaches it — that path is reduce+broadcast). RSAG splits the vector
// across ranks, so it needs a segmentable payload, an op that allows
// atom-aligned splitting, and enough elements to give every rank a
// stripe.
func (c *Intracomm) chooseAllreduce(bytes, elems int, dt *Datatype, op *Op) int32 {
	rsagOK := segmentable(dt) && op.atom > 0 && c.Size() >= 4
	if rsagOK {
		pof2 := 1
		for pof2*2 <= c.Size() {
			pof2 *= 2
		}
		rsagOK = elems >= pof2*op.atom
	}
	if segmentable(dt) && c.hierEligible(bytes) {
		return mpe.AlgoHierarchical
	}
	switch collCfg.force {
	case forceFlat, forceRD:
		return mpe.AlgoRecursiveDoubling
	case forceRSAG, forcePipeline:
		if rsagOK {
			return mpe.AlgoReduceScatterAllgather
		}
		return mpe.AlgoRecursiveDoubling
	}
	if rsagOK && bytes >= rsagThresholdBytes {
		return mpe.AlgoReduceScatterAllgather
	}
	return mpe.AlgoRecursiveDoubling
}

// chooseBlockStream decides whether one root↔peer block of a scatter
// or gather moves as a single message or as a windowed segment
// stream. Root and peer compute this independently from their own
// count/datatype, which MPI requires to describe the same bytes, so
// the two sides always agree.
func chooseBlockStream(bytes int, dt *Datatype) bool {
	if !segmentable(dt) {
		return false
	}
	switch collCfg.force {
	case forceFlat:
		return false
	case forcePipeline:
		return bytes > 0
	}
	return bytes > collCfg.segBytes
}

// recordAlgo emits a CollectiveAlgo event so traces show which variant
// each collective picked.
func (c *Comm) recordAlgo(kind, algo int32, bytes int) {
	rec := c.p.rec
	if rec.Enabled() {
		rec.Event(mpe.CollectiveAlgo, algo, kind, int32(c.coll.Context()), int64(bytes))
	}
}

// allreduceRD performs recursive-doubling allreduce over a contiguous
// scratch slice in place. Requires a commutative op.
func (c *Intracomm) allreduceRD(scratch any, elems int, bdt *Datatype, op *Op) error {
	return c.allreduceRDOver(scratch, elems, bdt, op, c.allRanks())
}

// allreduceRDOver is allreduceRD over an explicit participant list
// (comm ranks, same order on every caller): position in the list plays
// the role of rank. The hierarchical allreduce runs it over the node
// leaders; non-members return immediately.
func (c *Intracomm) allreduceRDOver(scratch any, elems int, bdt *Datatype, op *Op, list []int) error {
	n := len(list)
	rank := rankIndex(list, c.Rank())
	if n == 1 || rank < 0 {
		return nil
	}

	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2

	// One receive temp serves every round (pooled for []byte payloads).
	var tmp any
	var putTmp func()
	recvTmp := func() (any, error) {
		if tmp == nil {
			var err error
			tmp, putTmp, err = tempLike(scratch, elems)
			if err != nil {
				return nil, err
			}
		}
		return tmp, nil
	}
	defer func() {
		if putTmp != nil {
			putTmp()
		}
	}()

	// Fold the ranks beyond the largest power of two into the core:
	// even ranks below 2*rem contribute to their odd neighbour and sit
	// out the exchange phase.
	newRank := -1
	switch {
	case rank < 2*rem && rank%2 == 0:
		if err := c.collSend(scratch, 0, elems, bdt, list[rank+1], tagAllreduceRD); err != nil {
			return err
		}
	case rank < 2*rem:
		t, err := recvTmp()
		if err != nil {
			return err
		}
		if err := c.collRecv(t, 0, elems, bdt, list[rank-1], tagAllreduceRD); err != nil {
			return err
		}
		if err := op.apply(t, scratch); err != nil {
			return err
		}
		newRank = rank / 2
	default:
		newRank = rank - rem
	}

	if newRank != -1 {
		toReal := func(nr int) int {
			if nr < rem {
				return nr*2 + 1
			}
			return nr + rem
		}
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := list[toReal(newRank^mask)]
			req, sb, err := c.collIsend(scratch, 0, elems, bdt, partner, tagAllreduceRD)
			if err != nil {
				return err
			}
			t, err := recvTmp()
			if err != nil {
				return err
			}
			if err := c.collRecv(t, 0, elems, bdt, partner, tagAllreduceRD); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			putSendBuf(sb)
			if err := op.apply(t, scratch); err != nil {
				return err
			}
		}
	}

	// Unfold: the core hands results back to the folded-out ranks.
	if rank < 2*rem {
		if rank%2 != 0 {
			return c.collSend(scratch, 0, elems, bdt, list[rank-1], tagAllreduceRD)
		}
		return c.collRecv(scratch, 0, elems, bdt, list[rank+1], tagAllreduceRD)
	}
	return nil
}

// allgathervRing circulates blocks around a ring: after n-1 steps every
// rank holds every block. Blocks live in recvbuf at their final
// displacements throughout; rank r's own contribution must already be
// in place.
func (c *Intracomm) allgathervRing(recvbuf any, roff int, rcounts, displs []int, rdt *Datatype) error {
	n := c.Size()
	rank := c.Rank()
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendIdx := (rank - s + n) % n
		recvIdx := (rank - s - 1 + n) % n
		req, sb, err := c.collIsend(recvbuf, roff+displs[sendIdx]*rdt.extent, rcounts[sendIdx], rdt, right, tagRing)
		if err != nil {
			return fmt.Errorf("core: ring allgather step %d: %w", s, err)
		}
		if err := c.collRecv(recvbuf, roff+displs[recvIdx]*rdt.extent, rcounts[recvIdx], rdt, left, tagRing); err != nil {
			return fmt.Errorf("core: ring allgather step %d: %w", s, err)
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		putSendBuf(sb)
	}
	return nil
}

// allreduceRSAG is the Rabenseifner-style allreduce for large
// commutative payloads, in place over a contiguous scratch slice: a
// recursive-halving reduce-scatter leaves each core rank owning a
// fully reduced stripe of the vector, and a recursive-doubling
// allgather reassembles the stripes. Each byte crosses the wire O(1)
// times instead of the O(log n) of recursive doubling, which wins once
// bandwidth dominates. Requires a commutative op with a positive
// segment atom and elems >= pof2*atom (chooseAllreduce guarantees
// both).
func (c *Intracomm) allreduceRSAG(scratch any, elems int, bdt *Datatype, op *Op) error {
	return c.allreduceRSAGOver(scratch, elems, bdt, op, c.allRanks())
}

// allreduceRSAGOver is allreduceRSAG over an explicit participant list
// (comm ranks, same order everywhere); position in the list plays the
// role of rank. The hierarchical allreduce runs it over the node
// leaders; non-members return immediately.
func (c *Intracomm) allreduceRSAGOver(scratch any, elems int, bdt *Datatype, op *Op, list []int) error {
	n := len(list)
	rank := rankIndex(list, c.Rank())
	if n == 1 || rank < 0 {
		return nil
	}
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	atom := op.atom

	// Fold the ranks beyond the largest power of two into the core,
	// exactly as in allreduceRD.
	newRank := -1
	switch {
	case rank < 2*rem && rank%2 == 0:
		if err := c.collSend(scratch, 0, elems, bdt, list[rank+1], tagAllreduceRS); err != nil {
			return err
		}
	case rank < 2*rem:
		t, putT, err := tempLike(scratch, elems)
		if err != nil {
			return err
		}
		if err := c.collRecv(t, 0, elems, bdt, list[rank-1], tagAllreduceRS); err != nil {
			putT()
			return err
		}
		err = op.apply(t, scratch)
		putT()
		if err != nil {
			return err
		}
		newRank = rank / 2
	default:
		newRank = rank - rem
	}

	if newRank != -1 {
		toReal := func(nr int) int {
			if nr < rem {
				return nr*2 + 1
			}
			return nr + rem
		}

		// Recursive-halving reduce-scatter: each round trades half of
		// the current region with the partner and folds the kept half.
		// Splits land on atom boundaries so per-segment ops stay valid.
		type region struct{ lo, hi int }
		hist := make([]region, 0, 8) // regions before each halving, replayed in reverse by the allgather
		lo, hi := 0, elems
		tmp, putTmp, err := tempLike(scratch, (elems+1)/2+atom)
		if err != nil {
			return err
		}
		defer putTmp()
		for mask := pof2 >> 1; mask >= 1; mask >>= 1 {
			partner := list[toReal(newRank^mask)]
			mid := lo + (hi-lo)/2
			mid -= (mid - lo) % atom
			var keepLo, keepHi, sendLo, sendHi int
			if newRank&mask == 0 {
				keepLo, keepHi = lo, mid
				sendLo, sendHi = mid, hi
			} else {
				keepLo, keepHi = mid, hi
				sendLo, sendHi = lo, mid
			}
			hist = append(hist, region{lo, hi})
			req, sb, err := c.collIsend(scratch, sendLo, sendHi-sendLo, bdt, partner, tagAllreduceRS)
			if err != nil {
				return err
			}
			keep := keepHi - keepLo
			if err := c.collRecv(tmp, 0, keep, bdt, partner, tagAllreduceRS); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			putSendBuf(sb)
			in, err := sliceRegion(tmp, 0, keep)
			if err != nil {
				return err
			}
			out, err := sliceRegion(scratch, keepLo, keep)
			if err != nil {
				return err
			}
			if err := op.apply(in, out); err != nil {
				return err
			}
			lo, hi = keepLo, keepHi
		}

		// Recursive-doubling allgather, replaying the halvings in
		// reverse: each round trades the owned stripe for the
		// partner's sibling stripe of the enclosing region.
		for i := len(hist) - 1; i >= 0; i-- {
			mask := pof2 >> (i + 1)
			partner := list[toReal(newRank^mask)]
			r := hist[i]
			mid := r.lo + (r.hi-r.lo)/2
			mid -= (mid - r.lo) % atom
			otherLo, otherHi := mid, r.hi
			if lo != r.lo {
				otherLo, otherHi = r.lo, mid
			}
			req, sb, err := c.collIsend(scratch, lo, hi-lo, bdt, partner, tagAllreduceAG)
			if err != nil {
				return err
			}
			if err := c.collRecv(scratch, otherLo, otherHi-otherLo, bdt, partner, tagAllreduceAG); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			putSendBuf(sb)
			lo, hi = r.lo, r.hi
		}
	}

	// Unfold: the core hands results back to the folded-out ranks.
	if rank < 2*rem {
		if rank%2 != 0 {
			return c.collSend(scratch, 0, elems, bdt, list[rank-1], tagAllreduceRS)
		}
		return c.collRecv(scratch, 0, elems, bdt, list[rank+1], tagAllreduceRS)
	}
	return nil
}

// binomialGatherThresholdBytes is the per-block size below which
// Gather uses the binomial tree (log2(n) rounds) instead of the
// linear receive-at-root (n-1 messages converging on one process).
const binomialGatherThresholdBytes = 2 << 10

// gatherBinomial gathers equal-size blocks to root along a binomial
// tree: at step k, subtree owners of 2^k blocks forward their whole
// region to their parent. Latency O(log n) at the cost of each block
// travelling up to log n hops.
//
// scratch is this rank's contiguous contribution (blockElems base
// elements); the gathered result lands in recvbuf via rdt at root.
func (c *Intracomm) gatherBinomial(scratch any, blockElems int, bdt *Datatype,
	recvbuf any, roff, rcount int, rdt *Datatype, root int) error {
	n := c.Size()
	rank := c.Rank()
	rel := (rank - root + n) % n

	// region holds blocks [rel, rel+span) in relative order.
	region, err := allocLike(scratch, blockElems*n)
	if err != nil {
		return err
	}
	if err := copyElems(scratch, 0, region, 0, blockElems); err != nil {
		return err
	}
	span := 1
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent := (rel - mask + root) % n
			send := min(span, n-rel)
			return c.collSend(region, 0, send*blockElems, bdt, parent, tagGather)
		}
		childRel := rel + mask
		if childRel < n {
			recvBlocks := min(mask, n-childRel)
			src := (childRel + root) % n
			if err := c.collRecv(region, mask*blockElems, recvBlocks*blockElems, bdt, src, tagGather); err != nil {
				return err
			}
		}
		span <<= 1
	}
	// Root: blocks sit in relative order; place each into recvbuf by
	// absolute rank through rdt's layout.
	for relIdx := 0; relIdx < n; relIdx++ {
		abs := (relIdx + root) % n
		sub, err := sliceRegion(region, relIdx*blockElems, blockElems)
		if err != nil {
			return err
		}
		if err := fromScratch(sub, recvbuf, roff+abs*rcount*rdt.extent, rcount, rdt); err != nil {
			return err
		}
	}
	return nil
}

// copyElems copies count elements between same-typed slices.
func copyElems(src any, soff int, dst any, doff, count int) error {
	switch s := src.(type) {
	case []byte:
		copy(dst.([]byte)[doff:doff+count], s[soff:])
	case []bool:
		copy(dst.([]bool)[doff:doff+count], s[soff:])
	case []uint16:
		copy(dst.([]uint16)[doff:doff+count], s[soff:])
	case []int16:
		copy(dst.([]int16)[doff:doff+count], s[soff:])
	case []int32:
		copy(dst.([]int32)[doff:doff+count], s[soff:])
	case []int64:
		copy(dst.([]int64)[doff:doff+count], s[soff:])
	case []float32:
		copy(dst.([]float32)[doff:doff+count], s[soff:])
	case []float64:
		copy(dst.([]float64)[doff:doff+count], s[soff:])
	case []any:
		copy(dst.([]any)[doff:doff+count], s[soff:])
	default:
		return fmt.Errorf("core: copyElems: unsupported type %T", src)
	}
	return nil
}

// sliceRegion returns src[off:off+count] preserving the dynamic type.
func sliceRegion(src any, off, count int) (any, error) {
	switch s := src.(type) {
	case []byte:
		return s[off : off+count], nil
	case []bool:
		return s[off : off+count], nil
	case []uint16:
		return s[off : off+count], nil
	case []int16:
		return s[off : off+count], nil
	case []int32:
		return s[off : off+count], nil
	case []int64:
		return s[off : off+count], nil
	case []float32:
		return s[off : off+count], nil
	case []float64:
		return s[off : off+count], nil
	case []any:
		return s[off : off+count], nil
	}
	return nil, fmt.Errorf("core: sliceRegion: unsupported type %T", src)
}

// gatheredBytes estimates the total payload of an allgather.
func gatheredBytes(rcounts []int, rdt *Datatype) int {
	total := 0
	for _, cnt := range rcounts {
		total += cnt
	}
	elem := rdt.Base().Size()
	if elem == 0 {
		elem = 64
	}
	return total * rdt.Size() * elem
}
