package core

import (
	"fmt"
	"math/bits"
	"sync"
	"testing"

	"mpj/internal/hybriddev"
	"mpj/internal/transport"
	"mpj/internal/xdev"
)

// runHybridWorldBench runs an n-rank world over the hybrid device with
// a simulated rank→node placement: node-local pairs route over the smp
// inner, cross-node pairs over the in-process niodev wire (full
// framing and protocol). This is the closest a single address space
// gets to a multi-node job, and the harness the flat-vs-hierarchical
// collective comparison runs on.
func runHybridWorldBench(b *testing.B, n int, nodeOf []int, fn func(p *Process, w *Intracomm) error) {
	b.Helper()
	job := groupCounter.Add(1)
	group := fmt.Sprintf("core-hyb-bench-%d", job)
	dialer := transport.NewInProc(0)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("%s-rank-%d", group, i)
	}
	procs := make([]*Process, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			procs[rank], errs[rank] = Init(hybriddev.New(), xdev.Config{
				Rank: rank, Size: n, Addrs: addrs, Dialer: dialer,
				Group: group, NodeOf: nodeOf, Colocated: true,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			b.Fatalf("rank %d init: %v", i, err)
		}
	}
	defer func() {
		for _, p := range procs {
			p.Finalize()
		}
	}()
	var jobWG sync.WaitGroup
	bodyErrs := make([]error, n)
	for i := 0; i < n; i++ {
		jobWG.Add(1)
		go func(rank int) {
			defer jobWG.Done()
			bodyErrs[rank] = fn(procs[rank], procs[rank].World())
		}(i)
	}
	jobWG.Wait()
	for i, err := range bodyErrs {
		if err != nil {
			b.Fatalf("rank %d: %v", i, err)
		}
	}
}

// hybridBenchPlacements are the np=16, two-node placements the
// comparison sweeps:
//
//   - blocked: ranks 0-7 on node 0, 8-15 on node 1 — the friendliest
//     case for flat binomial trees (only the top-distance edges cross);
//   - interleaved: rank i on node i%2 — mpjrun's default daemon
//     round-robin, where every odd-distance edge crosses;
//   - scattered: rank i on node popcount(i)%2 — every power-of-two
//     distance flips the node, so every edge of every binomial/RD/RSAG
//     round crosses the wire. This is the placement the two-level
//     model's "placement-blind trees pay wire cost on every edge"
//     assumption describes exactly.
func hybridBenchPlacements(n int) map[string][]int {
	blocked := make([]int, n)
	inter := make([]int, n)
	scattered := make([]int, n)
	for i := 0; i < n; i++ {
		blocked[i] = i * 2 / n
		inter[i] = i % 2
		scattered[i] = bits.OnesCount(uint(i)) % 2
	}
	return map[string][]int{"blocked": blocked, "interleaved": inter, "scattered": scattered}
}

// BenchmarkHybridColl is the flat-vs-hierarchical comparison on the
// hybrid device: np=16 across two simulated nodes, Bcast and Allreduce
// from 64 KiB to 4 MiB. "flat" forces the best placement-blind
// algorithms (pipelined Bcast, RSAG Allreduce); "hier" forces the
// two-level node-leader family. Routing is identical in both modes —
// only the algorithm changes.
//
//	go test ./internal/core -bench BenchmarkHybridColl -run '^$' -benchtime 3x
func BenchmarkHybridColl(b *testing.B) {
	const np = 16
	sizes := []struct {
		name  string
		bytes int
	}{
		{"64KiB", 64 << 10},
		{"256KiB", 256 << 10},
		{"1MiB", 1 << 20},
		{"4MiB", 4 << 20},
	}
	modes := []struct {
		name  string
		force collForce
	}{
		{"flat", forceRSAG},
		{"hier", forceHier},
	}
	type collCase struct {
		name string
		body func(w *Intracomm, elems int, in, out []int64) error
	}
	colls := []collCase{
		{"Bcast", func(w *Intracomm, elems int, in, _ []int64) error {
			return w.Bcast(in, 0, elems, LONG, 0)
		}},
		{"Allreduce", func(w *Intracomm, elems int, in, out []int64) error {
			return w.Allreduce(in, 0, out, 0, elems, LONG, SUM)
		}},
	}
	placements := hybridBenchPlacements(np)
	for _, cc := range colls {
		b.Run(cc.name, func(b *testing.B) {
			for _, sz := range sizes {
				b.Run(sz.name, func(b *testing.B) {
					for _, place := range []string{"blocked", "interleaved", "scattered"} {
						b.Run(place, func(b *testing.B) {
							for _, mode := range modes {
								b.Run(mode.name, func(b *testing.B) {
									restore := setColl(defaultSegmentBytes, defaultCollWindow, mode.force)
									defer restore()
									elems := sz.bytes / 8
									b.SetBytes(int64(sz.bytes))
									runHybridWorldBench(b, np, placements[place], func(p *Process, w *Intracomm) error {
										in := make([]int64, elems)
										for i := range in {
											in[i] = int64(w.Rank() + i)
										}
										out := make([]int64, elems)
										if err := w.Barrier(); err != nil {
											return err
										}
										if w.Rank() == 0 {
											b.ResetTimer()
										}
										for i := 0; i < b.N; i++ {
											if err := cc.body(w, elems, in, out); err != nil {
												return err
											}
										}
										if err := w.Barrier(); err != nil {
											return err
										}
										if w.Rank() == 0 {
											b.StopTimer()
										}
										return nil
									})
								})
							}
						})
					}
				})
			}
		})
	}
}
