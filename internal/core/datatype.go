// Package core implements the mpijava 1.2 API surface of MPJ Express:
// groups, communicators (intra- and inter-), the four point-to-point
// send modes with non-blocking variants, derived datatypes, the full
// collective set, virtual topologies, and MPI-2.0 thread-level bindings
// (the paper's planned extension, §IV-B). It is the "high level" and
// "base level" of Fig. 1, layered over mpjdev/xdev.
package core

import (
	"fmt"

	"mpj/internal/mpjbuf"
)

// Datatype describes the memory layout of message elements, mirroring
// MPI derived datatypes (§IV-C): contiguous, vector, indexed and
// struct, built over the base types. A Datatype is immutable once
// constructed; constructors derive new layouts from old ones.
type Datatype struct {
	base mpjbuf.Type
	// disps lists the element offsets (relative to an item origin)
	// that one item of this datatype covers, in pack order.
	disps []int
	// extent is the number of base elements an item spans, i.e. the
	// stride between consecutive items in a count>1 operation.
	extent int
	name   string
	// fields is non-nil for struct datatypes, which are heterogeneous
	// and operate over []any buffers.
	fields []structField
}

type structField struct {
	typ      *Datatype
	blocklen int
	disp     int
}

// Base datatypes (the mpijava MPI.BYTE, MPI.INT, ... constants).
var (
	BYTE    = &Datatype{base: mpjbuf.ByteType, disps: []int{0}, extent: 1, name: "BYTE"}
	BOOLEAN = &Datatype{base: mpjbuf.BooleanType, disps: []int{0}, extent: 1, name: "BOOLEAN"}
	CHAR    = &Datatype{base: mpjbuf.CharType, disps: []int{0}, extent: 1, name: "CHAR"}
	SHORT   = &Datatype{base: mpjbuf.ShortType, disps: []int{0}, extent: 1, name: "SHORT"}
	INT     = &Datatype{base: mpjbuf.IntType, disps: []int{0}, extent: 1, name: "INT"}
	LONG    = &Datatype{base: mpjbuf.LongType, disps: []int{0}, extent: 1, name: "LONG"}
	FLOAT   = &Datatype{base: mpjbuf.FloatType, disps: []int{0}, extent: 1, name: "FLOAT"}
	DOUBLE  = &Datatype{base: mpjbuf.DoubleType, disps: []int{0}, extent: 1, name: "DOUBLE"}
	OBJECT  = &Datatype{base: mpjbuf.ObjectType, disps: []int{0}, extent: 1, name: "OBJECT"}
)

// String returns the datatype's name.
func (d *Datatype) String() string { return d.name }

// Base returns the underlying element type tag.
func (d *Datatype) Base() mpjbuf.Type { return d.base }

// Extent returns the span, in base elements, between consecutive items.
func (d *Datatype) Extent() int { return d.extent }

// Size returns the number of base elements one item packs.
func (d *Datatype) Size() int {
	if d.fields != nil {
		n := 0
		for _, f := range d.fields {
			n += f.blocklen * f.typ.Size()
		}
		return n
	}
	return len(d.disps)
}

// IsContiguous reports whether one item's elements are densely packed
// starting at displacement zero (enabling the no-gather fast path).
func (d *Datatype) IsContiguous() bool {
	if d.fields != nil {
		return false
	}
	for i, disp := range d.disps {
		if disp != i {
			return false
		}
	}
	return len(d.disps) == d.extent
}

// Contiguous returns a datatype of count consecutive items of d
// (MPI_Type_contiguous).
func (d *Datatype) Contiguous(count int) (*Datatype, error) {
	if count < 0 {
		return nil, fmt.Errorf("core: Contiguous: negative count %d", count)
	}
	if d.fields != nil {
		return nil, fmt.Errorf("core: Contiguous over struct datatype is not supported")
	}
	nd := &Datatype{
		base:   d.base,
		extent: count * d.extent,
		name:   fmt.Sprintf("CONTIGUOUS(%d,%s)", count, d.name),
	}
	nd.disps = make([]int, 0, count*len(d.disps))
	for i := 0; i < count; i++ {
		for _, disp := range d.disps {
			nd.disps = append(nd.disps, i*d.extent+disp)
		}
	}
	return nd, nil
}

// Vector returns a strided datatype: count blocks of blocklength items,
// the starts of consecutive blocks stride items apart
// (MPI_Type_vector). The paper's example — sending a matrix column —
// uses blocklength 1 and stride equal to the row length.
func (d *Datatype) Vector(count, blocklength, stride int) (*Datatype, error) {
	if count < 0 || blocklength < 0 {
		return nil, fmt.Errorf("core: Vector: negative count/blocklength (%d, %d)", count, blocklength)
	}
	if d.fields != nil {
		return nil, fmt.Errorf("core: Vector over struct datatype is not supported")
	}
	nd := &Datatype{
		base: d.base,
		name: fmt.Sprintf("VECTOR(%d,%d,%d,%s)", count, blocklength, stride, d.name),
	}
	span := 0
	for i := 0; i < count; i++ {
		for j := 0; j < blocklength; j++ {
			itemStart := (i*stride + j) * d.extent
			for _, disp := range d.disps {
				nd.disps = append(nd.disps, itemStart+disp)
			}
			if end := (i*stride + j + 1) * d.extent; end > span {
				span = end
			}
		}
	}
	nd.extent = span
	return nd, nil
}

// Indexed returns a datatype of blocks with per-block lengths and
// displacements, both in items of d (MPI_Type_indexed).
func (d *Datatype) Indexed(blocklengths, displacements []int) (*Datatype, error) {
	if len(blocklengths) != len(displacements) {
		return nil, fmt.Errorf("core: Indexed: %d blocklengths but %d displacements",
			len(blocklengths), len(displacements))
	}
	if d.fields != nil {
		return nil, fmt.Errorf("core: Indexed over struct datatype is not supported")
	}
	nd := &Datatype{
		base: d.base,
		name: fmt.Sprintf("INDEXED(%s)", d.name),
	}
	span := 0
	for b := range blocklengths {
		if blocklengths[b] < 0 || displacements[b] < 0 {
			return nil, fmt.Errorf("core: Indexed: negative block %d", b)
		}
		for j := 0; j < blocklengths[b]; j++ {
			itemStart := (displacements[b] + j) * d.extent
			for _, disp := range d.disps {
				nd.disps = append(nd.disps, itemStart+disp)
			}
			if end := (displacements[b] + j + 1) * d.extent; end > span {
				span = end
			}
		}
	}
	nd.extent = span
	return nd, nil
}

// Struct returns a heterogeneous datatype (MPI_Type_struct). Because
// Go slices are homogeneous, struct datatypes operate over []any
// buffers: block b occupies blocklengths[b] consecutive entries of the
// buffer starting at displacements[b], each packed as types[b].
func Struct(blocklengths, displacements []int, types []*Datatype) (*Datatype, error) {
	if len(blocklengths) != len(displacements) || len(blocklengths) != len(types) {
		return nil, fmt.Errorf("core: Struct: mismatched argument lengths")
	}
	nd := &Datatype{base: mpjbuf.ObjectType, name: "STRUCT"}
	span := 0
	for b := range types {
		if types[b] == nil || types[b].fields != nil {
			return nil, fmt.Errorf("core: Struct: block %d has invalid type", b)
		}
		if blocklengths[b] < 0 || displacements[b] < 0 {
			return nil, fmt.Errorf("core: Struct: negative block %d", b)
		}
		nd.fields = append(nd.fields, structField{
			typ: types[b], blocklen: blocklengths[b], disp: displacements[b],
		})
		if end := displacements[b] + blocklengths[b]; end > span {
			span = end
		}
	}
	nd.extent = span
	return nd, nil
}
