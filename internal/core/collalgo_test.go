package core

import (
	"math/rand"
	"testing"
)

// TestAllreduceRDAllSizes exercises recursive doubling across group
// sizes, including non-powers of two (the fold/unfold path).
func TestAllreduceRDAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		n := n
		runWorld(t, n, func(p *Process, w *Intracomm) {
			const k = 3
			in := make([]int64, k)
			for i := range in {
				in[i] = int64(w.Rank()*10 + i)
			}
			out := make([]int64, k)
			if err := w.Allreduce(in, 0, out, 0, k, LONG, SUM); err != nil {
				t.Errorf("n=%d: %v", n, err)
				return
			}
			for i := range out {
				want := int64(0)
				for r := 0; r < n; r++ {
					want += int64(r*10 + i)
				}
				if out[i] != want {
					t.Errorf("n=%d rank %d: out[%d]=%d want %d", n, w.Rank(), i, out[i], want)
					return
				}
			}
		})
	}
}

// TestAllreduceRDMatchesReduceBcast compares the two algorithms on
// random inputs: recursive doubling (commutative path) must agree with
// the explicit reduce+broadcast.
func TestAllreduceRDMatchesReduceBcast(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(5)
		k := 1 + rng.Intn(8)
		inputs := make([][]float64, n)
		for r := range inputs {
			inputs[r] = make([]float64, k)
			for i := range inputs[r] {
				inputs[r][i] = float64(rng.Intn(100)) / 4
			}
		}
		runWorld(t, n, func(p *Process, w *Intracomm) {
			rank := w.Rank()
			viaRD := make([]float64, k)
			if err := w.Allreduce(inputs[rank], 0, viaRD, 0, k, DOUBLE, MAX); err != nil {
				t.Error(err)
				return
			}
			viaRB := make([]float64, k)
			if err := w.Reduce(inputs[rank], 0, viaRB, 0, k, DOUBLE, MAX, 0); err != nil {
				t.Error(err)
				return
			}
			if err := w.Bcast(viaRB, 0, k, DOUBLE, 0); err != nil {
				t.Error(err)
				return
			}
			for i := range viaRD {
				if viaRD[i] != viaRB[i] {
					t.Errorf("trial %d rank %d: RD %v vs RB %v", trial, rank, viaRD, viaRB)
					return
				}
			}
		})
	}
}

// TestAllgatherRingLargePayload pushes the gathered size over the ring
// threshold and checks every block lands intact on every rank.
func TestAllgatherRingLargePayload(t *testing.T) {
	const n = 5
	const per = 2048 // 5 ranks * 2048 int64 = 80 KiB > threshold
	runWorld(t, n, func(p *Process, w *Intracomm) {
		mine := make([]int64, per)
		for i := range mine {
			mine[i] = int64(w.Rank()*1_000_000 + i)
		}
		recv := make([]int64, per*n)
		if err := w.Allgather(mine, 0, per, LONG, recv, 0, per, LONG); err != nil {
			t.Error(err)
			return
		}
		for r := 0; r < n; r++ {
			for i := 0; i < per; i += 512 {
				if recv[r*per+i] != int64(r*1_000_000+i) {
					t.Errorf("rank %d: block %d elem %d = %d", w.Rank(), r, i, recv[r*per+i])
					return
				}
			}
		}
	})
}

// TestAllgathervRingUnequalBlocks uses the ring with varying block
// sizes and displacement gaps.
func TestAllgathervRingUnequalBlocks(t *testing.T) {
	const n = 3
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		counts := []int{3000, 1000, 2000} // 48 KB total > threshold
		displs := []int{0, 3500, 5000}    // gap after block 0
		mine := make([]int64, counts[rank])
		for i := range mine {
			mine[i] = int64(rank*100_000 + i)
		}
		recv := make([]int64, 7000)
		for i := range recv {
			recv[i] = -1
		}
		if err := w.Allgatherv(mine, 0, counts[rank], LONG, recv, 0, counts, displs, LONG); err != nil {
			t.Error(err)
			return
		}
		for r := 0; r < n; r++ {
			for i := 0; i < counts[r]; i += 333 {
				if recv[displs[r]+i] != int64(r*100_000+i) {
					t.Errorf("rank %d: block %d elem %d = %d", rank, r, i, recv[displs[r]+i])
					return
				}
			}
		}
		// The gap must be untouched.
		if recv[3200] != -1 {
			t.Errorf("gap overwritten: %d", recv[3200])
		}
	})
}

// BenchmarkAllreduceAlgorithms is the algorithm ablation: recursive
// doubling vs reduce+broadcast on the same payload.
func BenchmarkAllreduceAlgorithms(b *testing.B) {
	const n = 4
	const k = 1 << 10
	run := func(b *testing.B, body func(w *Intracomm, in, out []float64) error) {
		runWorldBench(b, n, func(p *Process, w *Intracomm) error {
			in := make([]float64, k)
			out := make([]float64, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := body(w, in, out); err != nil {
					return err
				}
			}
			b.StopTimer()
			return nil
		})
	}
	b.Run("recursive-doubling", func(b *testing.B) {
		run(b, func(w *Intracomm, in, out []float64) error {
			return w.Allreduce(in, 0, out, 0, k, DOUBLE, SUM)
		})
	})
	b.Run("reduce-bcast", func(b *testing.B) {
		run(b, func(w *Intracomm, in, out []float64) error {
			if err := w.Reduce(in, 0, out, 0, k, DOUBLE, SUM, 0); err != nil {
				return err
			}
			return w.Bcast(out, 0, k, DOUBLE, 0)
		})
	})
}

// BenchmarkAllgatherAlgorithms compares ring vs gather+bcast by
// straddling the threshold.
func BenchmarkAllgatherAlgorithms(b *testing.B) {
	const n = 4
	bench := func(b *testing.B, per int) {
		runWorldBench(b, n, func(p *Process, w *Intracomm) error {
			mine := make([]int64, per)
			recv := make([]int64, per*n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Allgather(mine, 0, per, LONG, recv, 0, per, LONG); err != nil {
					return err
				}
			}
			b.StopTimer()
			return nil
		})
	}
	b.Run("small-gather-bcast", func(b *testing.B) { bench(b, 64) })
	b.Run("large-ring", func(b *testing.B) { bench(b, 4096) })
}

// TestGatherBinomialAllRootsAllSizes drives the binomial path (small
// blocks) across group sizes and roots, including non-powers of two.
func TestGatherBinomialAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7, 8} {
		n := n
		runWorld(t, n, func(p *Process, w *Intracomm) {
			for root := 0; root < n; root++ {
				send := []int32{int32(w.Rank()*10 + root), int32(w.Rank())}
				var recv []int32
				if w.Rank() == root {
					recv = make([]int32, 2*n)
				}
				if err := w.Gather(send, 0, 2, INT, recv, 0, 2, INT, root); err != nil {
					t.Errorf("n=%d root=%d: %v", n, root, err)
					return
				}
				if w.Rank() == root {
					for r := 0; r < n; r++ {
						if recv[2*r] != int32(r*10+root) || recv[2*r+1] != int32(r) {
							t.Errorf("n=%d root=%d: recv=%v", n, root, recv)
							return
						}
					}
				}
			}
		})
	}
}

// TestGatherLargeBlocksUseLinearPath confirms big blocks still gather
// correctly (linear path) and with derived datatypes.
func TestGatherLargeBlocksUseLinearPath(t *testing.T) {
	const n = 4
	const k = 2048 // 8 KiB per block > binomial threshold
	runWorld(t, n, func(p *Process, w *Intracomm) {
		send := make([]int32, k)
		for i := range send {
			send[i] = int32(w.Rank()*100000 + i)
		}
		var recv []int32
		if w.Rank() == 1 {
			recv = make([]int32, k*n)
		}
		if err := w.Gather(send, 0, k, INT, recv, 0, k, INT, 1); err != nil {
			t.Error(err)
			return
		}
		if w.Rank() == 1 {
			for r := 0; r < n; r++ {
				if recv[r*k+k-1] != int32(r*100000+k-1) {
					t.Errorf("block %d tail = %d", r, recv[r*k+k-1])
					return
				}
			}
		}
	})
}

// BenchmarkGatherAlgorithms compares binomial and linear gathers at a
// block size near the threshold.
func BenchmarkGatherAlgorithms(b *testing.B) {
	const n = 8
	bench := func(b *testing.B, per int) {
		runWorldBench(b, n, func(p *Process, w *Intracomm) error {
			send := make([]int32, per)
			var recv []int32
			if w.Rank() == 0 {
				recv = make([]int32, per*n)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Gather(send, 0, per, INT, recv, 0, per, INT, 0); err != nil {
					return err
				}
			}
			b.StopTimer()
			return nil
		})
	}
	b.Run("small-binomial", func(b *testing.B) { bench(b, 64) })
	b.Run("large-linear", func(b *testing.B) { bench(b, 8192) })
}
