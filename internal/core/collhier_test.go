package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mpj/internal/mpe"
	"mpj/internal/smpdev"
	"mpj/internal/xdev"
)

// runPlacedWorld is runWorld with a simulated rank→node placement
// installed before any traffic. Placement only shapes which algorithm
// the collectives pick — correctness must not depend on whether the
// "nodes" are real, which is exactly what these tests exploit.
func runPlacedWorld(t *testing.T, n int, nodeOf []int, fn func(p *Process, w *Intracomm)) {
	t.Helper()
	group := fmt.Sprintf("core-hier-%d", groupCounter.Add(1))
	procs := make([]*Process, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			procs[rank], errs[rank] = Init(smpdev.New(), xdev.Config{
				Rank: rank, Size: n, Group: group, NodeOf: nodeOf,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", i, err)
		}
	}
	defer func() {
		for _, p := range procs {
			p.Finalize()
		}
	}()
	var jobWG sync.WaitGroup
	for i := 0; i < n; i++ {
		jobWG.Add(1)
		go func(rank int) {
			defer jobWG.Done()
			fn(procs[rank], procs[rank].World())
		}(i)
	}
	done := make(chan struct{})
	go func() {
		jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("world deadlocked")
	}
}

func TestTopologyView(t *testing.T) {
	nodeOf := []int{0, 0, 1, 1, 2}
	runPlacedWorld(t, 5, nodeOf, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		if got := w.NodeCount(); got != 3 {
			t.Errorf("rank %d: NodeCount = %d, want 3", rank, got)
		}
		if got := w.NodeOf(rank); got != nodeOf[rank] {
			t.Errorf("rank %d: NodeOf = %d, want %d", rank, got, nodeOf[rank])
		}
		wantLeader := []int{0, 0, 2, 2, 4}[rank]
		if got := w.NodeLeader(); got != wantLeader {
			t.Errorf("rank %d: NodeLeader = %d, want %d", rank, got, wantLeader)
		}
		if got := w.IsNodeLeader(); got != (rank == wantLeader) {
			t.Errorf("rank %d: IsNodeLeader = %v", rank, got)
		}

		intra, err := w.SplitByNode()
		if err != nil {
			t.Errorf("rank %d: SplitByNode: %v", rank, err)
			return
		}
		wantSize := []int{2, 2, 2, 2, 1}[rank]
		if intra.Size() != wantSize {
			t.Errorf("rank %d: intra size = %d, want %d", rank, intra.Size(), wantSize)
		}
		// The intra-node comm spans one node by construction.
		if intra.NodeCount() != 1 {
			t.Errorf("rank %d: intra NodeCount = %d, want 1", rank, intra.NodeCount())
		}

		leaders, err := w.SplitNodeLeaders()
		if err != nil {
			t.Errorf("rank %d: SplitNodeLeaders: %v", rank, err)
			return
		}
		if rank == wantLeader {
			if leaders == nil || leaders.Size() != 3 {
				t.Errorf("rank %d: leader comm = %v", rank, leaders)
			} else if leaders.NodeCount() != 3 {
				t.Errorf("rank %d: leader comm NodeCount = %d, want 3", rank, leaders.NodeCount())
			}
		} else if leaders != nil {
			t.Errorf("rank %d: non-leader got a leader comm", rank)
		}
	})
}

// TestTopologyUnknownPlacement: no node map means one node — the
// degenerate view that keeps every topology-aware path flat.
func TestTopologyUnknownPlacement(t *testing.T) {
	runWorld(t, 3, func(p *Process, w *Intracomm) {
		if w.NodeCount() != 1 || w.NodeLeader() != 0 {
			t.Errorf("rank %d: unknown placement: nodes=%d leader=%d, want 1/0",
				w.Rank(), w.NodeCount(), w.NodeLeader())
		}
		if p.NodeMap() != nil {
			t.Errorf("rank %d: NodeMap = %v, want nil", w.Rank(), p.NodeMap())
		}
	})
}

// hierPlacements exercises the two-level algorithms across topology
// shapes: balanced, interleaved (node ids out of rank order), uneven
// (different ranks per node, odd leader count for the RD/RSAG rem
// fold), and a node map naming more ranks per node than nodes.
var hierPlacements = map[string][]int{
	"balanced-2x4":    {0, 0, 0, 0, 1, 1, 1, 1},
	"interleaved-2x4": {0, 1, 0, 1, 0, 1, 0, 1},
	"uneven-3nodes":   {0, 0, 0, 1, 1, 2, 2, 2},
	"4x2":             {0, 0, 1, 1, 2, 2, 3, 3},
}

// TestHierCollectivesMatchFlat forces the hierarchical family and
// checks Bcast/Reduce/Allreduce against locally computed expectations
// for payloads straddling the leader-phase RSAG stripe gate, with
// leader and non-leader roots.
func TestHierCollectivesMatchFlat(t *testing.T) {
	const np = 8
	for name, nodeOf := range hierPlacements {
		t.Run(name, func(t *testing.T) {
			restore := setColl(1024, 2, forceHier)
			defer restore()
			runPlacedWorld(t, np, nodeOf, func(p *Process, w *Intracomm) {
				rank := w.Rank()
				for _, count := range []int{1, 7, 256, 1023} {
					for _, root := range []int{0, np - 1, np / 2} {
						// Bcast: non-root data must be overwritten.
						buf := make([]int64, count)
						if rank == root {
							for i := range buf {
								buf[i] = int64(root*1000 + i)
							}
						}
						if err := w.Bcast(buf, 0, count, LONG, root); err != nil {
							t.Errorf("rank %d: Bcast(root=%d,count=%d): %v", rank, root, count, err)
							return
						}
						for i, v := range buf {
							if v != int64(root*1000+i) {
								t.Errorf("rank %d: Bcast(root=%d,count=%d)[%d] = %d", rank, root, count, i, v)
								return
							}
						}

						// Reduce: sum of deterministic contributions.
						send := make([]int64, count)
						for i := range send {
							send[i] = int64(rank + i)
						}
						recv := make([]int64, count)
						if err := w.Reduce(send, 0, recv, 0, count, LONG, SUM, root); err != nil {
							t.Errorf("rank %d: Reduce(root=%d,count=%d): %v", rank, root, count, err)
							return
						}
						if rank == root {
							for i, v := range recv {
								want := int64(np*(np-1)/2 + np*i)
								if v != want {
									t.Errorf("rank %d: Reduce(root=%d,count=%d)[%d] = %d, want %d",
										rank, root, count, i, v, want)
									return
								}
							}
						}
					}

					// Allreduce: everyone holds the sum.
					send := make([]int64, count)
					for i := range send {
						send[i] = int64(rank + i)
					}
					recv := make([]int64, count)
					if err := w.Allreduce(send, 0, recv, 0, count, LONG, SUM); err != nil {
						t.Errorf("rank %d: Allreduce(count=%d): %v", rank, count, err)
						return
					}
					for i, v := range recv {
						want := int64(np*(np-1)/2 + np*i)
						if v != want {
							t.Errorf("rank %d: Allreduce(count=%d)[%d] = %d, want %d", rank, count, i, v, want)
							return
						}
					}
				}
			})
		})
	}
}

// TestHierAutoSelection: the auto table only goes hierarchical past
// the size threshold on a genuinely multi-node placement.
func TestHierAutoSelection(t *testing.T) {
	restore := setColl(defaultSegmentBytes, defaultCollWindow, forceAuto)
	defer restore()
	runPlacedWorld(t, 4, []int{0, 0, 1, 1}, func(p *Process, w *Intracomm) {
		if got := w.chooseBcast(hierThresholdBytes, LONG); got != mpe.AlgoHierarchical {
			t.Errorf("chooseBcast(big) = %s, want hierarchical", mpe.AlgoName(got))
		}
		if got := w.chooseBcast(100, LONG); got == mpe.AlgoHierarchical {
			t.Errorf("chooseBcast(small) picked hierarchical")
		}
		if got := w.chooseAllreduce(hierThresholdBytes, hierThresholdBytes/8, LONG, SUM); got != mpe.AlgoHierarchical {
			t.Errorf("chooseAllreduce(big) = %s, want hierarchical", mpe.AlgoName(got))
		}
	})
	// Single node: never hierarchical, regardless of size.
	runPlacedWorld(t, 4, []int{0, 0, 0, 0}, func(p *Process, w *Intracomm) {
		if got := w.chooseBcast(hierThresholdBytes, LONG); got == mpe.AlgoHierarchical {
			t.Errorf("single-node chooseBcast picked hierarchical")
		}
	})
}

// TestUnknownCollAlgoRejected: a misspelled MPJ_COLL_ALGO must fail
// InitThread with the typed error, not silently fall back (satellite
// of the hierarchical-collectives change; previously loadCollTuning
// ignored unknown names).
func TestUnknownCollAlgoRejected(t *testing.T) {
	t.Setenv(EnvCollAlgo, "rabenseifner") // plausible typo for rsag
	_, _, err := InitThread(smpdev.New(), xdev.Config{Rank: 0, Size: 1, Group: "coll-algo-reject"}, ThreadMultiple)
	if err == nil {
		t.Fatal("InitThread accepted an unknown MPJ_COLL_ALGO")
	}
	if !errors.Is(err, ErrUnknownCollAlgo) {
		t.Fatalf("InitThread error %v does not wrap ErrUnknownCollAlgo", err)
	}
}

// TestCollAlgoNamesAccepted: every documented family name parses, in
// either case, including the aliases.
func TestCollAlgoNamesAccepted(t *testing.T) {
	want := map[string]collForce{
		"":         forceAuto,
		"auto":     forceAuto,
		"flat":     forceFlat,
		"Flat":     forceFlat,
		"PIPELINE": forcePipeline, "pipelined": forcePipeline,
		"rd": forceRD, "recursive-doubling": forceRD,
		"rsag": forceRSAG, "reduce-scatter-allgather": forceRSAG,
		"hier": forceHier, "hierarchical": forceHier,
	}
	for in, f := range want {
		got, err := parseCollForce(in)
		if err != nil || got != f {
			t.Errorf("parseCollForce(%q) = %v, %v; want %v", in, got, err, f)
		}
	}
}
