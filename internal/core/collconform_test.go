package core

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// Conformance matrix for the segmented/pipelined collectives: every
// algorithm variant must produce results bit-identical to the
// unsegmented baseline, across commutative and non-commutative ops,
// derived datatypes, and payload sizes straddling the segment, eager
// and rendezvous boundaries (including off-by-one on the segment
// boundary). The forced segment size is 1 KiB so even small payloads
// split into several segments; over niodev the eager limit is 2 KiB so
// the same sizes also straddle the eager→rendezvous switch.

// setColl swaps the collective tuning; the caller must invoke the
// returned restore after the world has shut down (never while one is
// running).
func setColl(seg, window int, force collForce) (restore func()) {
	old := collCfg
	collCfg = collTuning{segBytes: seg, window: window, force: force}
	return func() { collCfg = old }
}

// conformCounts straddle the 1 KiB segment boundary (128 int64 elems)
// and the 2 KiB nio eager limit (256 elems) by one element each way.
var conformCounts = []int{1, 127, 128, 129, 255, 256, 257, 400}

type worldRunner func(t *testing.T, n int, fn func(p *Process, w *Intracomm))

// matProdOp is a non-commutative, associative user op: the slice is a
// sequence of 2x2 int64 matrices (row-major) combined by matrix
// product, with trailing non-matrix elements combined by projection
// onto the left operand. SegmentAtom(4) lets reductions split between
// matrices.
func matProdOp() *Op {
	return NewOp(matProdFn, false).SegmentAtom(4)
}

func matProdFn(in, inout any) error {
	a, ok := in.([]int64)
	if !ok {
		return fmt.Errorf("matProd: want []int64, got %T", in)
	}
	b := inout.([]int64)
	if len(a) != len(b) {
		return fmt.Errorf("matProd: length mismatch %d vs %d", len(a), len(b))
	}
	i := 0
	for ; i+4 <= len(a); i += 4 {
		// inout = in × inout.
		c00 := a[i]*b[i] + a[i+1]*b[i+2]
		c01 := a[i]*b[i+1] + a[i+1]*b[i+3]
		c10 := a[i+2]*b[i] + a[i+3]*b[i+2]
		c11 := a[i+2]*b[i+1] + a[i+3]*b[i+3]
		b[i], b[i+1], b[i+2], b[i+3] = c00, c01, c10, c11
	}
	for ; i < len(a); i++ {
		b[i] = a[i]
	}
	return nil
}

// matInput is rank r's deterministic contribution: unit-determinant
// matrices with rank-dependent off-diagonals, so products from
// different rank orders differ (the op is genuinely non-commutative)
// while entries stay far from overflow.
func matInput(rank, count int) []int64 {
	v := make([]int64, count)
	for i := 0; i+4 <= count; i += 4 {
		v[i], v[i+1] = 1, int64((rank+i/4)%5)
		v[i+2], v[i+3] = 0, 2
	}
	for i := count - count%4; i < count; i++ {
		v[i] = int64(rank*100 + i)
	}
	return v
}

// foldExpected computes the flat baseline result p_0 op (p_1 op (...))
// locally.
func foldExpected(n, count int, input func(rank, count int) []int64) []int64 {
	acc := input(n-1, count)
	for i := n - 2; i >= 0; i-- {
		if err := matProdFn(input(i, count), acc); err != nil {
			panic(err)
		}
	}
	return acc
}

func collConformance(t *testing.T, np int, run worldRunner) {
	t.Run("BcastLong", func(t *testing.T) {
		for _, force := range []collForce{forceFlat, forcePipeline} {
			restore := setColl(1024, 2, force)
			run(t, np, func(p *Process, w *Intracomm) {
				rank := w.Rank()
				for _, count := range conformCounts {
					for _, root := range []int{0, np - 1} {
						buf := make([]int64, count)
						if rank == root {
							for i := range buf {
								buf[i] = int64(i*3 + 1)
							}
						}
						if err := w.Bcast(buf, 0, count, LONG, root); err != nil {
							t.Errorf("Bcast(count=%d,root=%d,force=%d): %v", count, root, force, err)
							return
						}
						for i := range buf {
							if buf[i] != int64(i*3+1) {
								t.Errorf("Bcast(count=%d,root=%d,force=%d): elem %d = %d", count, root, force, i, buf[i])
								return
							}
						}
					}
				}
			})
			restore()
		}
	})

	t.Run("BcastDerived", func(t *testing.T) {
		for _, force := range []collForce{forceFlat, forcePipeline} {
			restore := setColl(1024, 2, force)
			run(t, np, func(p *Process, w *Intracomm) {
				rank := w.Rank()
				// Contiguous derived type: zero-copy view path.
				cdt, err := LONG.Contiguous(3)
				if err != nil {
					t.Errorf("Contiguous: %v", err)
					return
				}
				const citems = 150 // 450 elems = 3600 B: several segments
				cbuf := make([]int64, citems*3)
				if rank == 0 {
					for i := range cbuf {
						cbuf[i] = int64(i + 7)
					}
				}
				if err := w.Bcast(cbuf, 0, citems, cdt, 0); err != nil {
					t.Errorf("Bcast contiguous derived: %v", err)
					return
				}
				for i := range cbuf {
					if cbuf[i] != int64(i+7) {
						t.Errorf("Bcast contiguous derived: elem %d = %d", i, cbuf[i])
						return
					}
				}
				// Strided vector: gather-to-scratch + writeback path.
				// Gap elements must survive untouched.
				vdt, err := DOUBLE.Vector(2, 1, 3)
				if err != nil {
					t.Errorf("Vector: %v", err)
					return
				}
				const vitems = 120
				vlen := vitems*vdt.Extent() + 4
				vbuf := make([]float64, vlen)
				for i := range vbuf {
					vbuf[i] = -1
				}
				if rank == 0 {
					for k := 0; k < vitems; k++ {
						vbuf[k*vdt.Extent()] = float64(k) + 0.25
						vbuf[k*vdt.Extent()+3] = float64(k) + 0.5
					}
				}
				if err := w.Bcast(vbuf, 0, vitems, vdt, 0); err != nil {
					t.Errorf("Bcast vector: %v", err)
					return
				}
				for k := 0; k < vitems; k++ {
					at := k * vdt.Extent()
					if vbuf[at] != float64(k)+0.25 || vbuf[at+3] != float64(k)+0.5 {
						t.Errorf("Bcast vector: item %d = %v/%v", k, vbuf[at], vbuf[at+3])
						return
					}
					if vbuf[at+1] != -1 || vbuf[at+2] != -1 {
						t.Errorf("Bcast vector: item %d gap clobbered", k)
						return
					}
				}
			})
			restore()
		}
	})

	t.Run("ReduceSumExact", func(t *testing.T) {
		for _, force := range []collForce{forceFlat, forcePipeline} {
			restore := setColl(1024, 2, force)
			run(t, np, func(p *Process, w *Intracomm) {
				rank := w.Rank()
				n := w.Size()
				for _, count := range conformCounts {
					for _, root := range []int{0, np - 1} {
						send := make([]int64, count)
						for i := range send {
							send[i] = int64(rank*7 + i)
						}
						recv := make([]int64, count)
						if err := w.Reduce(send, 0, recv, 0, count, LONG, SUM, root); err != nil {
							t.Errorf("Reduce(count=%d,root=%d,force=%d): %v", count, root, force, err)
							return
						}
						if rank == root {
							for i := range recv {
								want := int64(7*n*(n-1)/2 + n*i)
								if recv[i] != want {
									t.Errorf("Reduce(count=%d,root=%d,force=%d): elem %d = %d, want %d",
										count, root, force, i, recv[i], want)
									return
								}
							}
						}
					}
				}
			})
			restore()
		}
	})

	// The pipelined commutative reduce preserves the flat tree's exact
	// per-element fold order, so even floating-point sums — where
	// association changes the bits — must match the flat result
	// bit-for-bit.
	t.Run("ReduceDoubleBitIdentical", func(t *testing.T) {
		const count = 400
		const root = 0
		results := make([][]float64, 2)
		for idx, force := range []collForce{forceFlat, forcePipeline} {
			restore := setColl(1024, 2, force)
			out := make([]float64, count)
			run(t, np, func(p *Process, w *Intracomm) {
				rank := w.Rank()
				send := make([]float64, count)
				for i := range send {
					send[i] = math.Sqrt(float64(rank*1009 + i + 2))
				}
				recv := make([]float64, count)
				if err := w.Reduce(send, 0, recv, 0, count, DOUBLE, SUM, root); err != nil {
					t.Errorf("Reduce double (force=%d): %v", force, err)
					return
				}
				if rank == root {
					copy(out, recv)
				}
			})
			restore()
			results[idx] = out
		}
		for i := range results[0] {
			if math.Float64bits(results[0][i]) != math.Float64bits(results[1][i]) {
				t.Fatalf("pipelined Reduce not bit-identical to flat at elem %d: %x vs %x",
					i, math.Float64bits(results[0][i]), math.Float64bits(results[1][i]))
			}
		}
	})

	t.Run("ReduceNonCommutative", func(t *testing.T) {
		// Segment-splittable matrix op (atom 4) and the same op with
		// whole-message application (no atom): both must reproduce the
		// flat rank-ordered fold exactly, via the legacy buffer-all
		// path (forceFlat) and the streamed bounded-window fold (auto).
		counts := []int{4, 128, 132, 400, 402}
		for _, force := range []collForce{forceFlat, forceAuto} {
			for _, atom := range []bool{true, false} {
				op := matProdOp()
				if !atom {
					op = NewOp(matProdFn, false)
				}
				restore := setColl(1024, 2, force)
				run(t, np, func(p *Process, w *Intracomm) {
					rank := w.Rank()
					n := w.Size()
					for _, count := range counts {
						for _, root := range []int{0, np - 1} {
							recv := make([]int64, count)
							if err := w.Reduce(matInput(rank, count), 0, recv, 0, count, LONG, op, root); err != nil {
								t.Errorf("Reduce mat(count=%d,root=%d,force=%d,atom=%v): %v", count, root, force, atom, err)
								return
							}
							if rank == root {
								want := foldExpected(n, count, matInput)
								for i := range recv {
									if recv[i] != want[i] {
										t.Errorf("Reduce mat(count=%d,root=%d,force=%d,atom=%v): elem %d = %d, want %d",
											count, root, force, atom, i, recv[i], want[i])
										return
									}
								}
							}
						}
					}
				})
				restore()
			}
		}
	})

	t.Run("AllreduceVariants", func(t *testing.T) {
		counts := append(append([]int{}, conformCounts...), 8192, 8193)
		for _, force := range []collForce{forceRD, forceRSAG, forceAuto} {
			restore := setColl(1024, 2, force)
			run(t, np, func(p *Process, w *Intracomm) {
				rank := w.Rank()
				n := w.Size()
				for _, count := range counts {
					send := make([]int64, count)
					for i := range send {
						send[i] = int64(rank*7 + i)
					}
					recv := make([]int64, count)
					if err := w.Allreduce(send, 0, recv, 0, count, LONG, SUM); err != nil {
						t.Errorf("Allreduce(count=%d,force=%d): %v", count, force, err)
						return
					}
					for i := range recv {
						want := int64(7*n*(n-1)/2 + n*i)
						if recv[i] != want {
							t.Errorf("Allreduce(count=%d,force=%d): elem %d = %d, want %d", count, force, i, recv[i], want)
							return
						}
					}
				}
			})
			restore()
		}
	})

	t.Run("AllreduceMaxloc", func(t *testing.T) {
		// MAXLOC's (value,index) pairs are 2-element atoms: segment and
		// stripe splits must never separate a pair.
		pairCounts := []int{8, 256, 514}
		for _, force := range []collForce{forceRD, forceRSAG, forceAuto} {
			restore := setColl(1024, 2, force)
			run(t, np, func(p *Process, w *Intracomm) {
				rank := w.Rank()
				n := w.Size()
				val := func(r, k int) int64 { return int64(((r+k)*37)%101) * 10 }
				for _, elems := range pairCounts {
					send := make([]int64, elems)
					for k := 0; k < elems/2; k++ {
						send[2*k] = val(rank, k)
						send[2*k+1] = int64(rank)
					}
					recv := make([]int64, elems)
					if err := w.Allreduce(send, 0, recv, 0, elems, LONG, MAXLOC); err != nil {
						t.Errorf("Allreduce MAXLOC(elems=%d,force=%d): %v", elems, force, err)
						return
					}
					for k := 0; k < elems/2; k++ {
						bestV, bestR := val(0, k), int64(0)
						for r := 1; r < n; r++ {
							if v := val(r, k); v > bestV {
								bestV, bestR = v, int64(r)
							}
						}
						if recv[2*k] != bestV || recv[2*k+1] != bestR {
							t.Errorf("Allreduce MAXLOC(elems=%d,force=%d): pair %d = (%d,%d), want (%d,%d)",
								elems, force, k, recv[2*k], recv[2*k+1], bestV, bestR)
							return
						}
					}
				}
			})
			restore()
		}
	})

	t.Run("ScatterGather", func(t *testing.T) {
		blockCounts := []int{127, 129, 300}
		for _, force := range []collForce{forceFlat, forcePipeline} {
			restore := setColl(1024, 2, force)
			run(t, np, func(p *Process, w *Intracomm) {
				rank := w.Rank()
				n := w.Size()
				for _, count := range blockCounts {
					var sendAll []int64
					if rank == 0 {
						sendAll = make([]int64, n*count)
						for i := range sendAll {
							sendAll[i] = int64(i * 11)
						}
					}
					block := make([]int64, count)
					if err := w.Scatter(sendAll, 0, count, LONG, block, 0, count, LONG, 0); err != nil {
						t.Errorf("Scatter(count=%d,force=%d): %v", count, force, err)
						return
					}
					for i := range block {
						if want := int64((rank*count + i) * 11); block[i] != want {
							t.Errorf("Scatter(count=%d,force=%d): elem %d = %d, want %d", count, force, i, block[i], want)
							return
						}
					}
					for i := range block {
						block[i] += int64(rank)
					}
					var recvAll []int64
					if rank == 0 {
						recvAll = make([]int64, n*count)
					}
					if err := w.Gather(block, 0, count, LONG, recvAll, 0, count, LONG, 0); err != nil {
						t.Errorf("Gather(count=%d,force=%d): %v", count, force, err)
						return
					}
					if rank == 0 {
						for i := range recvAll {
							if want := int64(i*11 + i/count); recvAll[i] != want {
								t.Errorf("Gather(count=%d,force=%d): elem %d = %d, want %d", count, force, i, recvAll[i], want)
								return
							}
						}
					}
				}
			})
			restore()
		}
	})

	t.Run("GathervDerivedRoot", func(t *testing.T) {
		// Root receives through a strided vector type, so the streamed
		// blocks land in scratch and scatter back through the layout.
		for _, force := range []collForce{forceFlat, forcePipeline} {
			restore := setColl(1024, 2, force)
			run(t, np, func(p *Process, w *Intracomm) {
				rank := w.Rank()
				n := w.Size()
				vdt, err := LONG.Vector(2, 1, 2)
				if err != nil {
					t.Errorf("Vector: %v", err)
					return
				}
				const items = 200 // 400 elems = 3200 B per peer: streams
				scount := items * vdt.Size()
				send := make([]int64, scount)
				for i := range send {
					send[i] = int64(rank*100000 + i)
				}
				rcounts := make([]int, n)
				displs := make([]int, n)
				for i := range rcounts {
					rcounts[i] = items
					displs[i] = i * items
				}
				var recv []int64
				if rank == 0 {
					recv = make([]int64, n*items*vdt.Extent()+2)
					for i := range recv {
						recv[i] = -5
					}
				}
				if err := w.Gatherv(send, 0, scount, LONG, recv, 0, rcounts, displs, vdt, 0); err != nil {
					t.Errorf("Gatherv derived(force=%d): %v", force, err)
					return
				}
				if rank == 0 {
					want := make([]int64, len(recv))
					for i := range want {
						want[i] = -5
					}
					for r := 0; r < n; r++ {
						src := make([]int64, scount)
						for i := range src {
							src[i] = int64(r*100000 + i)
						}
						if err := fromScratch(src, want, displs[r]*vdt.Extent(), items, vdt); err != nil {
							t.Errorf("fromScratch: %v", err)
							return
						}
					}
					for i := range recv {
						if recv[i] != want[i] {
							t.Errorf("Gatherv derived(force=%d): elem %d = %d, want %d", force, i, recv[i], want[i])
							return
						}
					}
				}
			})
			restore()
		}
	})
}

func TestCollConformanceSMP(t *testing.T) {
	collConformance(t, 5, runWorld)
}

func TestCollConformanceNio(t *testing.T) {
	collConformance(t, 4, func(t *testing.T, n int, fn func(p *Process, w *Intracomm)) {
		runWorldNio(t, n, 2048, fn)
	})
}

// TestCollectivesConcurrentStress drives segmented collectives from
// two goroutines per rank on two different communicators at once
// (ThreadMultiple), sized so every call pipelines. Run under -race it
// checks the stream/window machinery shares nothing it shouldn't.
func TestCollectivesConcurrentStress(t *testing.T) {
	restore := setColl(4096, 3, forceAuto)
	defer restore()
	const (
		iters = 8
		elems = 16 << 10 // 128 KiB of int64
	)
	runWorld(t, 6, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		n := w.Size()
		dup, err := w.Split(0, rank)
		if err != nil {
			t.Errorf("Split dup: %v", err)
			return
		}
		sub, err := w.Split(rank%2, rank)
		if err != nil {
			t.Errorf("Split sub: %v", err)
			return
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			send := make([]int64, elems)
			recv := make([]int64, elems)
			for it := 0; it < iters; it++ {
				for i := range send {
					send[i] = int64(rank + i + it)
				}
				if err := dup.Allreduce(send, 0, recv, 0, elems, LONG, SUM); err != nil {
					t.Errorf("stress Allreduce: %v", err)
					return
				}
				want := int64(n*(n-1)/2 + n*(3+it))
				if recv[3] != want {
					t.Errorf("stress Allreduce iter %d: got %d, want %d", it, recv[3], want)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			srank := sub.Rank()
			sn := sub.Size()
			buf := make([]int64, elems)
			recv := make([]int64, elems)
			for it := 0; it < iters; it++ {
				if srank == 0 {
					for i := range buf {
						buf[i] = int64(i ^ it)
					}
				}
				if err := sub.Bcast(buf, 0, elems, LONG, 0); err != nil {
					t.Errorf("stress Bcast: %v", err)
					return
				}
				if buf[5] != int64(5^it) {
					t.Errorf("stress Bcast iter %d: got %d", it, buf[5])
					return
				}
				if err := sub.Reduce(buf, 0, recv, 0, elems, LONG, SUM, 0); err != nil {
					t.Errorf("stress Reduce: %v", err)
					return
				}
				if srank == 0 && recv[5] != int64(sn)*int64(5^it) {
					t.Errorf("stress Reduce iter %d: got %d", it, recv[5])
					return
				}
			}
		}()
		wg.Wait()
	})
}
