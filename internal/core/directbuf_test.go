package core

import (
	"testing"

	"mpj/internal/mpjbuf"
)

func TestDirectBufferSendRecv(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			b := mpjbuf.New(64)
			if err := b.WriteDoubles([]float64{1.5, 2.5}, 0, 2); err != nil {
				t.Error(err)
				return
			}
			if err := b.WriteInts([]int32{7}, 0, 1); err != nil {
				t.Error(err)
				return
			}
			if err := w.SendBuffer(b, 1, 3); err != nil {
				t.Error(err)
			}
		} else {
			b := mpjbuf.New(0)
			st, err := w.RecvBuffer(b, 0, 3)
			if err != nil {
				t.Error(err)
				return
			}
			if st.Source != 0 || st.Tag != 3 {
				t.Errorf("status %+v", st)
			}
			ds := make([]float64, 2)
			if _, err := b.ReadDoubles(ds, 0, 2); err != nil {
				t.Error(err)
				return
			}
			is := make([]int32, 1)
			if _, err := b.ReadInts(is, 0, 1); err != nil {
				t.Error(err)
				return
			}
			if ds[1] != 2.5 || is[0] != 7 {
				t.Errorf("ds=%v is=%v", ds, is)
			}
		}
	})
}

func TestDirectBufferNonBlocking(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			b := mpjbuf.New(16)
			b.WriteLongs([]int64{99}, 0, 1)
			req, err := w.IsendBuffer(b, 1, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := req.Wait(); err != nil {
				t.Error(err)
			}
		} else {
			b := mpjbuf.New(0)
			req, err := w.IrecvBuffer(b, 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := req.Wait(); err != nil {
				t.Error(err)
				return
			}
			out := make([]int64, 1)
			if _, err := b.ReadLongs(out, 0, 1); err != nil {
				t.Error(err)
				return
			}
			if out[0] != 99 {
				t.Errorf("got %d", out[0])
			}
		}
	})
}

// TestDirectBufferReuse packs once and sends the same buffer many
// times — the zero-repack pattern the extension enables.
func TestDirectBufferReuse(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		const rounds = 10
		if w.Rank() == 0 {
			b := mpjbuf.New(1024)
			data := make([]float64, 100)
			for i := range data {
				data[i] = float64(i)
			}
			if err := b.WriteDoubles(data, 0, len(data)); err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				if err := w.SendBuffer(b, 1, r); err != nil {
					t.Error(err)
					return
				}
			}
		} else {
			for r := 0; r < rounds; r++ {
				b := mpjbuf.New(0)
				if _, err := w.RecvBuffer(b, 0, r); err != nil {
					t.Error(err)
					return
				}
				out := make([]float64, 100)
				if _, err := b.ReadDoubles(out, 0, 100); err != nil {
					t.Error(err)
					return
				}
				if out[99] != 99 {
					t.Errorf("round %d: tail %v", r, out[99])
					return
				}
			}
		}
	})
}
