package core

import (
	"fmt"
	"sync"

	"mpj/internal/devcore"
	"mpj/internal/mpjbuf"
	"mpj/internal/mpjdev"
)

// Message matching wildcards (mpijava values).
const (
	// AnySource matches a message from any rank.
	AnySource = mpjdev.AnySource
	// AnyTag matches a message with any tag.
	AnyTag = mpjdev.AnyTag
)

// Status describes a completed receive (the mpijava Status class).
type Status struct {
	// Source is the sender's rank in the communicator.
	Source int
	// Tag is the message tag.
	Tag   int
	elems int
}

// Count returns the number of base-type elements received.
func (s *Status) Count() int { return s.elems }

// GetCount returns the number of items of dt received
// (Status.Get_count).
func (s *Status) GetCount(dt *Datatype) int {
	if dt == nil || dt.Size() == 0 {
		return 0
	}
	return s.elems / dt.Size()
}

// Comm is the communicator base: a process group plus private matching
// contexts for point-to-point and collective traffic. Intracomm embeds
// it; all methods are safe for concurrent use (MPI_THREAD_MULTIPLE).
type Comm struct {
	p     *Process
	group *Group
	ptp   *mpjdev.Comm
	coll  *mpjdev.Comm
}

// Rank reports this process's rank in the communicator.
func (c *Comm) Rank() int { return c.ptp.Rank() }

// Size reports the number of processes in the communicator.
func (c *Comm) Size() int { return c.group.Size() }

// Group returns the communicator's process group.
func (c *Comm) Group() *Group { return c.group }

// Process returns the owning process handle.
func (c *Comm) Process() *Process { return c.p }

// Compare relates two communicators' groups (MPI_Comm_compare; Ident
// here means identical groups, not handle identity).
func (c *Comm) Compare(other *Comm) int { return c.group.Compare(other.group) }

// Abort terminates the job with the given error code (MPI_Abort): the
// abort is broadcast to the other ranks when the device supports it,
// and every local pending operation fails with an error satisfying
// errors.Is(err, xdev.ErrAborted).
func (c *Comm) Abort(code int) error { return c.ptp.Abort(code) }

// Request is an in-flight non-blocking operation at the API level. For
// receives it defers unpacking into the user buffer until completion
// is observed.
type Request struct {
	inner *mpjdev.Request

	// Receive-side unpack state.
	recvBuf any
	offset  int
	count   int
	dt      *Datatype
	wire    *mpjbuf.Buffer

	unpackOnce sync.Once
	elems      int
	unpackErr  error

	// onComplete, if set, runs exactly once when completion is
	// observed (used by buffered sends to release pool space).
	onComplete func()
	compOnce   sync.Once
}

func (r *Request) finish(st mpjdev.Status) (*Status, error) {
	if r.recvBuf != nil || r.wire != nil {
		r.unpackOnce.Do(func() {
			r.elems, r.unpackErr = unpack(r.wire, r.recvBuf, r.offset, r.count, r.dt)
		})
	}
	if r.onComplete != nil {
		r.compOnce.Do(r.onComplete)
	}
	if r.unpackErr != nil {
		return nil, r.unpackErr
	}
	return &Status{Source: st.Source, Tag: st.Tag, elems: r.elems}, nil
}

// Wait blocks until the operation completes and returns its status.
func (r *Request) Wait() (*Status, error) {
	st, err := r.inner.Wait()
	if err != nil {
		return nil, err
	}
	return r.finish(st)
}

// Test reports completion without blocking; on completion the status
// is returned and receive data is in place.
func (r *Request) Test() (*Status, bool, error) {
	st, ok, err := r.inner.Test()
	if err != nil || !ok {
		return nil, ok, err
	}
	s, err := r.finish(st)
	return s, true, err
}

// ---- blocking point-to-point ----

// Send performs a blocking standard-mode send of count items of dt
// from buf starting at offset. The wire buffer is pooled: the blocking
// call does not return until the device is done with it, so it can be
// recycled immediately after.
func (c *Comm) Send(buf any, offset, count int, dt *Datatype, dst, tag int) error {
	b := devcore.GetBuffer()
	defer devcore.PutBuffer(b)
	if err := packInto(b, buf, offset, count, dt); err != nil {
		return err
	}
	return c.ptp.Send(b, dst, tag)
}

// Ssend performs a blocking synchronous-mode send: it returns only
// after the receiver has matched the message.
func (c *Comm) Ssend(buf any, offset, count int, dt *Datatype, dst, tag int) error {
	b := devcore.GetBuffer()
	defer devcore.PutBuffer(b)
	if err := packInto(b, buf, offset, count, dt); err != nil {
		return err
	}
	return c.ptp.Ssend(b, dst, tag)
}

// Rsend performs a blocking ready-mode send. The standard-mode
// implementation is a legal realization of ready mode.
func (c *Comm) Rsend(buf any, offset, count int, dt *Datatype, dst, tag int) error {
	return c.Send(buf, offset, count, dt, dst, tag)
}

// Bsend performs a buffered-mode send: the message is staged through
// the buffer attached with Process.BufferAttach and the call returns
// without waiting for the receiver.
func (c *Comm) Bsend(buf any, offset, count int, dt *Datatype, dst, tag int) error {
	_, err := c.Ibsend(buf, offset, count, dt, dst, tag)
	return err
}

// Recv blocks until a matching message arrives and unpacks up to count
// items of dt into buf at offset.
func (c *Comm) Recv(buf any, offset, count int, dt *Datatype, src, tag int) (*Status, error) {
	b := devcore.GetBuffer()
	defer devcore.PutBuffer(b)
	st, err := c.ptp.Recv(b, src, tag)
	if err != nil {
		return nil, err
	}
	elems, err := unpack(b, buf, offset, count, dt)
	if err != nil {
		return nil, err
	}
	return &Status{Source: st.Source, Tag: st.Tag, elems: elems}, nil
}

// Sendrecv exchanges messages: a standard send to dst and a receive
// from src proceed concurrently, avoiding the pairwise-exchange
// deadlock (MPI_Sendrecv).
func (c *Comm) Sendrecv(
	sendBuf any, sendOffset, sendCount int, sendType *Datatype, dst, sendTag int,
	recvBuf any, recvOffset, recvCount int, recvType *Datatype, src, recvTag int,
) (*Status, error) {
	sreq, err := c.Isend(sendBuf, sendOffset, sendCount, sendType, dst, sendTag)
	if err != nil {
		return nil, err
	}
	st, err := c.Recv(recvBuf, recvOffset, recvCount, recvType, src, recvTag)
	if err != nil {
		return nil, err
	}
	if _, err := sreq.Wait(); err != nil {
		return nil, err
	}
	return st, nil
}

// ---- non-blocking point-to-point ----

// Isend starts a standard-mode non-blocking send.
func (c *Comm) Isend(buf any, offset, count int, dt *Datatype, dst, tag int) (*Request, error) {
	b, err := pack(buf, offset, count, dt)
	if err != nil {
		return nil, err
	}
	r, err := c.ptp.Isend(b, dst, tag)
	if err != nil {
		return nil, err
	}
	return &Request{inner: r}, nil
}

// Issend starts a synchronous-mode non-blocking send.
func (c *Comm) Issend(buf any, offset, count int, dt *Datatype, dst, tag int) (*Request, error) {
	b, err := pack(buf, offset, count, dt)
	if err != nil {
		return nil, err
	}
	r, err := c.ptp.Issend(b, dst, tag)
	if err != nil {
		return nil, err
	}
	return &Request{inner: r}, nil
}

// Irsend starts a ready-mode non-blocking send (standard realization).
func (c *Comm) Irsend(buf any, offset, count int, dt *Datatype, dst, tag int) (*Request, error) {
	return c.Isend(buf, offset, count, dt, dst, tag)
}

// Ibsend starts a buffered-mode non-blocking send. Packing copies the
// user data immediately, so the returned request reflects only
// buffer-pool accounting: space is reserved here and released when the
// message has left (MPI_Ibsend).
func (c *Comm) Ibsend(buf any, offset, count int, dt *Datatype, dst, tag int) (*Request, error) {
	b, err := pack(buf, offset, count, dt)
	if err != nil {
		return nil, err
	}
	n := b.WireLen()
	if err := c.p.reserveBsend(n); err != nil {
		return nil, err
	}
	r, err := c.ptp.Isend(b, dst, tag)
	if err != nil {
		c.p.releaseBsend(n)
		return nil, err
	}
	req := &Request{inner: r, onComplete: func() { c.p.releaseBsend(n) }}
	// Release pool space as soon as the transfer completes, even if
	// the caller never waits on the request.
	go func() {
		r.Wait()
		req.compOnce.Do(req.onComplete)
	}()
	return req, nil
}

// Irecv starts a non-blocking receive of up to count items of dt into
// buf at offset.
func (c *Comm) Irecv(buf any, offset, count int, dt *Datatype, src, tag int) (*Request, error) {
	b := mpjbuf.New(0)
	r, err := c.ptp.Irecv(b, src, tag)
	if err != nil {
		return nil, err
	}
	return &Request{inner: r, recvBuf: buf, offset: offset, count: count, dt: dt, wire: b}, nil
}

// Probe blocks until a matching message is available and returns its
// envelope without receiving it.
func (c *Comm) Probe(src, tag int) (*Status, error) {
	st, err := c.ptp.Probe(src, tag)
	if err != nil {
		return nil, err
	}
	return &Status{Source: st.Source, Tag: st.Tag, elems: -1}, nil
}

// Iprobe reports whether a matching message is available.
func (c *Comm) Iprobe(src, tag int) (*Status, bool, error) {
	st, ok, err := c.ptp.Iprobe(src, tag)
	if err != nil || !ok {
		return nil, ok, err
	}
	return &Status{Source: st.Source, Tag: st.Tag, elems: -1}, true, nil
}

// ---- request-array operations ----

// WaitAll blocks until all non-nil requests complete (MPI_Waitall).
func WaitAll(reqs []*Request) ([]*Status, error) {
	sts := make([]*Status, len(reqs))
	for i, r := range reqs {
		if r == nil {
			continue
		}
		st, err := r.Wait()
		if err != nil {
			return sts, fmt.Errorf("core: Waitall request %d: %w", i, err)
		}
		sts[i] = st
	}
	return sts, nil
}

// WaitAny blocks until one of the non-nil requests completes,
// returning its index and status. It uses the poll-free peek-based
// machinery of mpjdev (paper §IV-E.1), so blocked waiters cost no CPU.
func WaitAny(reqs []*Request) (int, *Status, error) {
	inner := make([]*mpjdev.Request, len(reqs))
	for i, r := range reqs {
		if r != nil {
			inner[i] = r.inner
		}
	}
	idx, ist, err := mpjdev.WaitAny(inner)
	if err != nil {
		return idx, nil, err
	}
	st, err := reqs[idx].finish(ist)
	return idx, st, err
}

// TestAny polls the requests once (MPI_Testany).
func TestAny(reqs []*Request) (int, *Status, bool, error) {
	for i, r := range reqs {
		if r == nil {
			continue
		}
		st, ok, err := r.Test()
		if err != nil {
			return i, nil, false, err
		}
		if ok {
			return i, st, true, nil
		}
	}
	return -1, nil, false, nil
}

// TestAll reports whether all non-nil requests have completed
// (MPI_Testall).
func TestAll(reqs []*Request) ([]*Status, bool, error) {
	// First verify completion without consuming partial state.
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, ok, err := r.inner.Test(); err != nil || !ok {
			return nil, false, err
		}
	}
	sts, err := WaitAll(reqs)
	return sts, err == nil, err
}
