package core

import (
	"fmt"

	"mpj/internal/xdev"
)

// Comparison results for Group.Compare and Comm.Compare (mpijava
// constants).
const (
	// Ident: same members in the same order.
	Ident = iota
	// Similar: same members, different order.
	Similar
	// Unequal: different membership.
	Unequal
)

// Undefined is returned by rank queries for processes outside a group
// and used as the "no color" value in Split.
const Undefined = -3

// Group is an ordered set of processes (identified by device
// ProcessIDs), the mpijava Group class.
type Group struct {
	pids []xdev.ProcessID
}

// NewGroup builds a group from an ordered process list.
func NewGroup(pids []xdev.ProcessID) *Group {
	return &Group{pids: append([]xdev.ProcessID(nil), pids...)}
}

// Size reports the number of processes in the group.
func (g *Group) Size() int { return len(g.pids) }

// Rank reports the rank of pid within the group, or Undefined.
func (g *Group) Rank(pid xdev.ProcessID) int {
	for r, p := range g.pids {
		if p == pid {
			return r
		}
	}
	return Undefined
}

// PID returns the ProcessID at the given rank.
func (g *Group) PID(rank int) (xdev.ProcessID, error) {
	if rank < 0 || rank >= len(g.pids) {
		return xdev.ProcessID{}, fmt.Errorf("core: group rank %d out of range [0,%d)", rank, len(g.pids))
	}
	return g.pids[rank], nil
}

// PIDs returns a copy of the ordered member list.
func (g *Group) PIDs() []xdev.ProcessID {
	return append([]xdev.ProcessID(nil), g.pids...)
}

// TranslateRanks maps ranks in this group to ranks in other; processes
// absent from other map to Undefined (MPI_Group_translate_ranks).
func (g *Group) TranslateRanks(ranks []int, other *Group) ([]int, error) {
	out := make([]int, len(ranks))
	for i, r := range ranks {
		pid, err := g.PID(r)
		if err != nil {
			return nil, err
		}
		out[i] = other.Rank(pid)
	}
	return out, nil
}

// Compare reports Ident, Similar or Unequal (MPI_Group_compare).
func (g *Group) Compare(other *Group) int {
	if len(g.pids) != len(other.pids) {
		return Unequal
	}
	ident := true
	for i, p := range g.pids {
		if other.pids[i] != p {
			ident = false
			break
		}
	}
	if ident {
		return Ident
	}
	for _, p := range g.pids {
		if other.Rank(p) == Undefined {
			return Unequal
		}
	}
	return Similar
}

// Union returns the processes of g followed by those of other not in g
// (MPI_Group_union).
func (g *Group) Union(other *Group) *Group {
	out := append([]xdev.ProcessID(nil), g.pids...)
	for _, p := range other.pids {
		if g.Rank(p) == Undefined {
			out = append(out, p)
		}
	}
	return &Group{pids: out}
}

// Intersection returns the processes of g also present in other, in
// g's order (MPI_Group_intersection).
func (g *Group) Intersection(other *Group) *Group {
	var out []xdev.ProcessID
	for _, p := range g.pids {
		if other.Rank(p) != Undefined {
			out = append(out, p)
		}
	}
	return &Group{pids: out}
}

// Difference returns the processes of g absent from other
// (MPI_Group_difference).
func (g *Group) Difference(other *Group) *Group {
	var out []xdev.ProcessID
	for _, p := range g.pids {
		if other.Rank(p) == Undefined {
			out = append(out, p)
		}
	}
	return &Group{pids: out}
}

// Incl returns the subgroup containing exactly the listed ranks, in
// that order (MPI_Group_incl).
func (g *Group) Incl(ranks []int) (*Group, error) {
	out := make([]xdev.ProcessID, len(ranks))
	for i, r := range ranks {
		pid, err := g.PID(r)
		if err != nil {
			return nil, err
		}
		out[i] = pid
	}
	return &Group{pids: out}, nil
}

// Excl returns the subgroup with the listed ranks removed
// (MPI_Group_excl).
func (g *Group) Excl(ranks []int) (*Group, error) {
	drop := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		if r < 0 || r >= len(g.pids) {
			return nil, fmt.Errorf("core: Excl rank %d out of range", r)
		}
		drop[r] = true
	}
	var out []xdev.ProcessID
	for r, p := range g.pids {
		if !drop[r] {
			out = append(out, p)
		}
	}
	return &Group{pids: out}, nil
}
