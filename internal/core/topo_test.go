package core

import "testing"

func TestCartCommBasics(t *testing.T) {
	const n = 6
	runWorld(t, n, func(p *Process, w *Intracomm) {
		cart, err := w.CreateCart([]int{2, 3}, []bool{false, true}, false)
		if err != nil {
			t.Error(err)
			return
		}
		if cart == nil {
			t.Error("member got nil cart")
			return
		}
		rank := cart.Rank()
		coords := cart.MyCoords()
		if len(coords) != 2 {
			t.Errorf("coords %v", coords)
			return
		}
		wantRow, wantCol := rank/3, rank%3
		if coords[0] != wantRow || coords[1] != wantCol {
			t.Errorf("rank %d coords %v", rank, coords)
		}
		back, err := cart.RankOf(coords)
		if err != nil || back != rank {
			t.Errorf("RankOf(Coords(%d)) = %d, %v", rank, back, err)
		}
	})
}

func TestCartShiftPeriodicAndEdge(t *testing.T) {
	const n = 6
	runWorld(t, n, func(p *Process, w *Intracomm) {
		cart, err := w.CreateCart([]int{2, 3}, []bool{false, true}, false)
		if err != nil || cart == nil {
			t.Errorf("cart: %v", err)
			return
		}
		coords := cart.MyCoords()
		// Dimension 0 is non-periodic: shifts off the edge give ProcNull.
		src0, dst0, err := cart.Shift(0, 1)
		if err != nil {
			t.Error(err)
			return
		}
		if coords[0] == 1 && dst0 != ProcNull {
			t.Errorf("bottom row shift dst = %d", dst0)
		}
		if coords[0] == 0 && src0 != ProcNull {
			t.Errorf("top row shift src = %d", src0)
		}
		if coords[0] == 0 && dst0 == ProcNull {
			t.Error("interior shift returned ProcNull")
		}
		// Dimension 1 is periodic: always valid and wraps.
		src1, dst1, err := cart.Shift(1, 1)
		if err != nil {
			t.Error(err)
			return
		}
		if src1 == ProcNull || dst1 == ProcNull {
			t.Error("periodic shift returned ProcNull")
		}
		wantDst, _ := cart.RankOf([]int{coords[0], (coords[1] + 1) % 3})
		if dst1 != wantDst {
			t.Errorf("periodic shift dst %d, want %d", dst1, wantDst)
		}
	})
}

func TestCartHaloExchange(t *testing.T) {
	// A ring over the periodic dimension: each process passes its rank
	// around once.
	const n = 4
	runWorld(t, n, func(p *Process, w *Intracomm) {
		cart, err := w.CreateCart([]int{4}, []bool{true}, false)
		if err != nil || cart == nil {
			t.Errorf("cart: %v", err)
			return
		}
		src, dst, err := cart.Shift(0, 1)
		if err != nil {
			t.Error(err)
			return
		}
		out := []int32{int32(cart.Rank())}
		in := make([]int32, 1)
		if _, err := cart.Sendrecv(out, 0, 1, INT, dst, 0, in, 0, 1, INT, src, 0); err != nil {
			t.Errorf("sendrecv: %v", err)
			return
		}
		if in[0] != int32((cart.Rank()+3)%4) {
			t.Errorf("rank %d received %d", cart.Rank(), in[0])
		}
	})
}

func TestCartExcessProcesses(t *testing.T) {
	runWorld(t, 5, func(p *Process, w *Intracomm) {
		cart, err := w.CreateCart([]int{2, 2}, []bool{false, false}, false)
		if err != nil {
			t.Error(err)
			return
		}
		if w.Rank() == 4 {
			if cart != nil {
				t.Error("excess process got a cart comm")
			}
		} else if cart == nil {
			t.Error("grid member got nil")
		}
	})
}

func TestCartValidation(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if _, err := w.CreateCart([]int{2, 2}, []bool{false, false}, false); err == nil {
			t.Error("oversized grid accepted")
		}
		if _, err := w.CreateCart([]int{2}, []bool{false, false}, false); err == nil {
			t.Error("dims/periods mismatch accepted")
		}
		if _, err := w.CreateCart([]int{0}, []bool{false}, false); err == nil {
			t.Error("zero dimension accepted")
		}
	})
}

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		nnodes int
		dims   []int
		want   []int
	}{
		{6, []int{0, 0}, []int{3, 2}},
		{12, []int{0, 0, 0}, []int{3, 2, 2}},
		{8, []int{2, 0}, []int{2, 4}},
		{7, []int{0}, []int{7}},
	}
	for _, c := range cases {
		got, err := DimsCreate(c.nnodes, c.dims)
		if err != nil {
			t.Errorf("DimsCreate(%d, %v): %v", c.nnodes, c.dims, err)
			continue
		}
		prod := 1
		for _, d := range got {
			prod *= d
		}
		if prod != c.nnodes {
			t.Errorf("DimsCreate(%d, %v) = %v (product %d)", c.nnodes, c.dims, got, prod)
		}
	}
	if _, err := DimsCreate(7, []int{2, 0}); err == nil {
		t.Error("non-divisible constraint accepted")
	}
	if _, err := DimsCreate(6, []int{5}); err == nil {
		t.Error("wrong fixed dims accepted")
	}
}

func TestGraphComm(t *testing.T) {
	const n = 4
	runWorld(t, n, func(p *Process, w *Intracomm) {
		// Ring graph: 0-1-2-3-0.
		index := []int{2, 4, 6, 8}
		edges := []int{1, 3, 0, 2, 1, 3, 2, 0}
		gc, err := w.CreateGraph(index, edges, false)
		if err != nil {
			t.Error(err)
			return
		}
		if gc == nil {
			t.Error("member got nil graph comm")
			return
		}
		ns := gc.MyNeighbors()
		if len(ns) != 2 {
			t.Errorf("rank %d neighbors %v", gc.Rank(), ns)
			return
		}
		want := map[int][2]int{0: {1, 3}, 1: {0, 2}, 2: {1, 3}, 3: {2, 0}}[gc.Rank()]
		if ns[0] != want[0] || ns[1] != want[1] {
			t.Errorf("rank %d neighbors %v, want %v", gc.Rank(), ns, want)
		}
		// Exchange with each neighbour.
		for _, nb := range ns {
			req, err := gc.Isend([]int32{int32(gc.Rank())}, 0, 1, INT, nb, 3)
			if err != nil {
				t.Error(err)
				return
			}
			in := make([]int32, 1)
			if _, err := gc.Recv(in, 0, 1, INT, nb, 3); err != nil {
				t.Error(err)
				return
			}
			if in[0] != int32(nb) {
				t.Errorf("neighbour %d sent %d", nb, in[0])
			}
			req.Wait()
		}
	})
}

func TestGraphValidation(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if _, err := w.CreateGraph([]int{2, 1}, []int{1, 0, 1}, false); err == nil {
			t.Error("decreasing index accepted")
		}
		if _, err := w.CreateGraph([]int{1}, []int{5}, false); err == nil {
			t.Error("edge out of range accepted")
		}
		if _, err := w.CreateGraph([]int{1, 2}, []int{1}, false); err == nil {
			t.Error("index/edges mismatch accepted")
		}
	})
}
