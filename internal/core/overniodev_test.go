package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mpj/internal/niodev"
	"mpj/internal/transport"
	"mpj/internal/xdev"
)

// runWorldNio is runWorld over the real niodev stack (in-memory
// transport): the full API exercised over the eager/rendezvous
// protocols instead of the shared-memory device.
func runWorldNio(t *testing.T, n int, eagerLimit int, fn func(p *Process, w *Intracomm)) {
	t.Helper()
	job := groupCounter.Add(1)
	tr := transport.NewInProc(0)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("core-nio-%d-%d", job, i)
	}
	procs := make([]*Process, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			procs[rank], errs[rank] = Init(niodev.New(), xdev.Config{
				Rank: rank, Size: n, Addrs: addrs, Dialer: tr, EagerLimit: eagerLimit,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", i, err)
		}
	}
	defer func() {
		for _, p := range procs {
			p.Finalize()
		}
	}()
	var jobWG sync.WaitGroup
	for i := 0; i < n; i++ {
		jobWG.Add(1)
		go func(rank int) {
			defer jobWG.Done()
			fn(procs[rank], procs[rank].World())
		}(i)
	}
	done := make(chan struct{})
	go func() {
		jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("niodev world deadlocked")
	}
}

// TestFullStackOverNiodev drives point-to-point, wildcard, derived
// datatype and collective traffic through the real wire protocols.
func TestFullStackOverNiodev(t *testing.T) {
	runWorldNio(t, 3, 0, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		// Collectives.
		sum := make([]int64, 1)
		if err := w.Allreduce([]int64{int64(rank)}, 0, sum, 0, 1, LONG, SUM); err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		if sum[0] != 3 {
			t.Errorf("sum %d", sum[0])
		}
		if err := w.Barrier(); err != nil {
			t.Errorf("barrier: %v", err)
			return
		}
		// Derived datatype ptp around a ring.
		col, err := DOUBLE.Vector(3, 1, 3)
		if err != nil {
			t.Error(err)
			return
		}
		matrix := make([]float64, 9)
		for i := 0; i < 3; i++ {
			matrix[i*3] = float64(rank*10 + i)
		}
		right := (rank + 1) % 3
		left := (rank - 1 + 3) % 3
		in := make([]float64, 3)
		req, err := w.Isend(matrix, 0, 1, col, right, 4)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := w.Recv(in, 0, 3, DOUBLE, left, 4); err != nil {
			t.Error(err)
			return
		}
		if _, err := req.Wait(); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 3; i++ {
			if in[i] != float64(left*10+i) {
				t.Errorf("rank %d: in = %v", rank, in)
				return
			}
		}
		// Wildcards via WaitAny.
		if rank == 0 {
			bufs := [2][]int64{make([]int64, 1), make([]int64, 1)}
			reqs := make([]*Request, 2)
			for i := range reqs {
				r, err := w.Irecv(bufs[i], 0, 1, LONG, AnySource, 100+i)
				if err != nil {
					t.Error(err)
					return
				}
				reqs[i] = r
			}
			for remaining := 2; remaining > 0; remaining-- {
				idx, st, err := WaitAny(reqs)
				if err != nil {
					t.Error(err)
					return
				}
				if bufs[idx][0] != int64(st.Source) {
					t.Errorf("payload %d from %d", bufs[idx][0], st.Source)
				}
				reqs[idx] = nil
			}
		} else {
			if err := w.Send([]int64{int64(rank)}, 0, 1, LONG, 0, 100+rank-1); err != nil {
				t.Error(err)
			}
		}
	})
}

// TestRendezvousCollectivesOverNiodev forces every transfer through
// the rendezvous protocol with a tiny eager limit.
func TestRendezvousCollectivesOverNiodev(t *testing.T) {
	runWorldNio(t, 3, 64, func(p *Process, w *Intracomm) {
		const k = 512
		in := make([]float64, k)
		for i := range in {
			in[i] = float64(w.Rank() + 1)
		}
		out := make([]float64, k)
		if err := w.Allreduce(in, 0, out, 0, k, DOUBLE, SUM); err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		for i := range out {
			if out[i] != 6 {
				t.Errorf("out[%d] = %v", i, out[i])
				return
			}
		}
		recv := make([]float64, k*3)
		if err := w.Allgather(in, 0, k, DOUBLE, recv, 0, k, DOUBLE); err != nil {
			t.Errorf("allgather: %v", err)
			return
		}
		for r := 0; r < 3; r++ {
			if recv[r*k] != float64(r+1) {
				t.Errorf("allgather block %d = %v", r, recv[r*k])
				return
			}
		}
	})
}

// TestSplitAndCartOverNiodev exercises communicator creation over the
// real device (context agreement across the wire).
func TestSplitAndCartOverNiodev(t *testing.T) {
	runWorldNio(t, 4, 0, func(p *Process, w *Intracomm) {
		sub, err := w.Split(w.Rank()%2, w.Rank())
		if err != nil || sub == nil {
			t.Errorf("split: %v", err)
			return
		}
		sum := make([]int32, 1)
		if err := sub.Allreduce([]int32{int32(w.Rank())}, 0, sum, 0, 1, INT, SUM); err != nil {
			t.Errorf("sub allreduce: %v", err)
			return
		}
		want := int32(0 + 2)
		if w.Rank()%2 == 1 {
			want = 1 + 3
		}
		if sum[0] != want {
			t.Errorf("sum %d want %d", sum[0], want)
		}
		cart, err := w.CreateCart([]int{2, 2}, []bool{true, true}, false)
		if err != nil || cart == nil {
			t.Errorf("cart: %v", err)
			return
		}
		src, dst, err := cart.Shift(0, 1)
		if err != nil {
			t.Error(err)
			return
		}
		out := []int32{int32(cart.Rank())}
		in := make([]int32, 1)
		if _, err := cart.Sendrecv(out, 0, 1, INT, dst, 0, in, 0, 1, INT, src, 0); err != nil {
			t.Errorf("halo: %v", err)
			return
		}
		if in[0] != int32(src) {
			t.Errorf("got %d from %d", in[0], src)
		}
	})
}
