package core

import (
	"fmt"

	"mpj/internal/devcore"
	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/mpjdev"
)

// Intracomm is a communicator whose processes form a single group; it
// carries the full collective operation set (the mpijava Intracomm
// class). Collectives run on a context separate from point-to-point
// traffic, so user messages can never intercept collective internals.
type Intracomm struct {
	Comm
}

// Collective operation tags within the collective context.
const (
	tagBarrier = iota + 1
	tagBcast
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
	tagReduce
	tagScan
	tagReduceScatter
	tagSplit
	tagBarrierRound // base for dissemination rounds; keep last
)

// nopPhase is the shared deferred value when tracing is off, keeping
// the disabled path allocation-free.
var nopPhase = func() {}

// phase opens a CollectivePhase span covering one collective call,
// tagged with the communicator's collective context id; the returned
// func closes it and is meant to be deferred.
func (c *Comm) phase(kind int32) func() {
	rec := c.p.rec
	if !rec.Enabled() {
		return nopPhase
	}
	start := rec.Now()
	ctx := int32(c.coll.Context())
	return func() { rec.Span(mpe.CollectivePhase, -1, kind, ctx, 0, start) }
}

// ---- collective-context point-to-point helpers ----

func (c *Comm) collSend(buf any, offset, count int, dt *Datatype, dst, tag int) error {
	b := devcore.GetBuffer()
	defer devcore.PutBuffer(b)
	if err := packInto(b, buf, offset, count, dt); err != nil {
		return err
	}
	return c.coll.Send(b, dst, tag)
}

// collIsend packs into a pooled wire buffer and starts the send. The
// caller must hand the returned buffer to putSendBuf after the
// request's Wait succeeds (the device may still read it before then).
func (c *Comm) collIsend(buf any, offset, count int, dt *Datatype, dst, tag int) (*mpjdev.Request, *mpjbuf.Buffer, error) {
	b := devcore.GetBuffer()
	if err := packInto(b, buf, offset, count, dt); err != nil {
		devcore.PutBuffer(b)
		return nil, nil, err
	}
	req, err := c.coll.Isend(b, dst, tag)
	if err != nil {
		devcore.PutBuffer(b)
		return nil, nil, err
	}
	return req, b, nil
}

func (c *Comm) collRecv(buf any, offset, count int, dt *Datatype, src, tag int) error {
	b := devcore.GetBuffer()
	defer devcore.PutBuffer(b)
	if _, err := c.coll.Recv(b, src, tag); err != nil {
		return err
	}
	_, err := unpack(b, buf, offset, count, dt)
	return err
}

// baseDt maps a buffer's element type to its base datatype.
func baseDt(buf any) (*Datatype, error) {
	switch buf.(type) {
	case []byte:
		return BYTE, nil
	case []bool:
		return BOOLEAN, nil
	case []uint16:
		return CHAR, nil
	case []int16:
		return SHORT, nil
	case []int32:
		return INT, nil
	case []int64:
		return LONG, nil
	case []float32:
		return FLOAT, nil
	case []float64:
		return DOUBLE, nil
	case []any:
		return OBJECT, nil
	}
	return nil, fmt.Errorf("core: unsupported buffer type %T", buf)
}

// allocLike returns a fresh slice of the same element type as buf.
func allocLike(buf any, n int) (any, error) {
	switch buf.(type) {
	case []byte:
		return make([]byte, n), nil
	case []bool:
		return make([]bool, n), nil
	case []uint16:
		return make([]uint16, n), nil
	case []int16:
		return make([]int16, n), nil
	case []int32:
		return make([]int32, n), nil
	case []int64:
		return make([]int64, n), nil
	case []float32:
		return make([]float32, n), nil
	case []float64:
		return make([]float64, n), nil
	case []any:
		return make([]any, n), nil
	}
	return nil, fmt.Errorf("core: unsupported buffer type %T", buf)
}

// toScratch gathers count items of dt from buf into a fresh contiguous
// slice of the base element type — the canonical form reductions and
// internal transfers operate on.
func toScratch(buf any, offset, count int, dt *Datatype) (any, error) {
	n, err := bufferElems(buf)
	if err != nil {
		return nil, err
	}
	if err := span(dt, offset, count, n, "gather"); err != nil {
		return nil, err
	}
	scratch, err := allocLike(buf, count*dt.Size())
	if err != nil {
		return nil, err
	}
	switch s := buf.(type) {
	case []byte:
		gatherInto(s, scratch.([]byte), offset, count, dt)
	case []bool:
		gatherInto(s, scratch.([]bool), offset, count, dt)
	case []uint16:
		gatherInto(s, scratch.([]uint16), offset, count, dt)
	case []int16:
		gatherInto(s, scratch.([]int16), offset, count, dt)
	case []int32:
		gatherInto(s, scratch.([]int32), offset, count, dt)
	case []int64:
		gatherInto(s, scratch.([]int64), offset, count, dt)
	case []float32:
		gatherInto(s, scratch.([]float32), offset, count, dt)
	case []float64:
		gatherInto(s, scratch.([]float64), offset, count, dt)
	case []any:
		gatherInto(s, scratch.([]any), offset, count, dt)
	}
	return scratch, nil
}

func gatherInto[T any](src, dst []T, offset, count int, dt *Datatype) {
	k := 0
	for i := 0; i < count; i++ {
		base := offset + i*dt.extent
		for _, disp := range dt.disps {
			dst[k] = src[base+disp]
			k++
		}
	}
}

// fromScratch scatters a contiguous slice back into buf's dt layout.
func fromScratch(scratch, buf any, offset, count int, dt *Datatype) error {
	n, err := bufferElems(buf)
	if err != nil {
		return err
	}
	if err := span(dt, offset, count, n, "scatter"); err != nil {
		return err
	}
	switch s := buf.(type) {
	case []byte:
		scatterInto(scratch.([]byte), s, offset, count, dt)
	case []bool:
		scatterInto(scratch.([]bool), s, offset, count, dt)
	case []uint16:
		scatterInto(scratch.([]uint16), s, offset, count, dt)
	case []int16:
		scatterInto(scratch.([]int16), s, offset, count, dt)
	case []int32:
		scatterInto(scratch.([]int32), s, offset, count, dt)
	case []int64:
		scatterInto(scratch.([]int64), s, offset, count, dt)
	case []float32:
		scatterInto(scratch.([]float32), s, offset, count, dt)
	case []float64:
		scatterInto(scratch.([]float64), s, offset, count, dt)
	case []any:
		scatterInto(scratch.([]any), s, offset, count, dt)
	}
	return nil
}

func scatterInto[T any](scratch, dst []T, offset, count int, dt *Datatype) {
	k := 0
	for i := 0; i < count; i++ {
		base := offset + i*dt.extent
		for _, disp := range dt.disps {
			if k >= len(scratch) {
				return
			}
			dst[base+disp] = scratch[k]
			k++
		}
	}
}

// localCopy moves data between two typed buffer regions through the
// two datatypes' layouts (the root's self-contribution in gather
// /scatter collectives).
func localCopy(src any, soff, scount int, sdt *Datatype, dst any, doff, dcount int, ddt *Datatype) error {
	scratch, err := toScratch(src, soff, scount, sdt)
	if err != nil {
		return err
	}
	return fromScratch(scratch, dst, doff, dcount, ddt)
}

// ---- collectives ----

// Barrier blocks until all processes in the communicator have entered
// it (dissemination algorithm, log2(n) rounds).
func (c *Intracomm) Barrier() error {
	defer c.phase(mpe.CollBarrier)()
	n := c.Size()
	rank := c.Rank()
	round := 0
	for k := 1; k < n; k <<= 1 {
		dst := (rank + k) % n
		src := (rank - k + n) % n
		tag := tagBarrierRound + round
		req, sb, err := c.collIsend([]byte{1}, 0, 1, BYTE, dst, tag)
		if err != nil {
			return fmt.Errorf("core: Barrier: %w", err)
		}
		if err := c.collRecv(make([]byte, 1), 0, 1, BYTE, src, tag); err != nil {
			return fmt.Errorf("core: Barrier: %w", err)
		}
		if _, err := req.Wait(); err != nil {
			return fmt.Errorf("core: Barrier: %w", err)
		}
		putSendBuf(sb)
		round++
	}
	return nil
}

// Bcast broadcasts count items of dt from root's buf to every process
// (binomial tree; payloads above the segment size are pipelined down
// the tree in windowed segments).
func (c *Intracomm) Bcast(buf any, offset, count int, dt *Datatype, root int) error {
	defer c.phase(mpe.CollBcast)()
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("core: Bcast: root %d out of range", root)
	}
	if n == 1 {
		return nil
	}
	bytes := payloadBytes(count, dt)
	algo := c.chooseBcast(bytes, dt)
	c.recordAlgo(mpe.CollBcast, algo, bytes)
	switch algo {
	case mpe.AlgoPipelined:
		if err := c.bcastPipelined(buf, offset, count, dt, root); err != nil {
			return fmt.Errorf("core: Bcast: %w", err)
		}
		return nil
	case mpe.AlgoHierarchical:
		if err := c.bcastHier(buf, offset, count, dt, root); err != nil {
			return fmt.Errorf("core: Bcast: %w", err)
		}
		return nil
	}
	rank := c.Rank()
	rel := (rank - root + n) % n

	// Receive from the parent (if not the root).
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (rel - mask + root) % n
			if err := c.collRecv(buf, offset, count, dt, parent, tagBcast); err != nil {
				return fmt.Errorf("core: Bcast recv: %w", err)
			}
			break
		}
		mask <<= 1
	}
	// Forward to children: rel's children are rel+m for every m below
	// rel's lowest set bit (or below the tree size for the root).
	mask = 1
	for mask < n {
		if rel&mask != 0 {
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			child := (rel + mask + root) % n
			if err := c.collSend(buf, offset, count, dt, child, tagBcast); err != nil {
				return fmt.Errorf("core: Bcast send: %w", err)
			}
		}
		mask >>= 1
	}
	return nil
}

// Gather collects scount items of sdt from every process into root's
// recvbuf, rank i's data landing at item offset i*rcount. Small blocks
// ride a binomial tree (log2(n) rounds); larger ones use the linear
// receive-at-root, which moves each byte only once.
func (c *Intracomm) Gather(sendbuf any, soff, scount int, sdt *Datatype,
	recvbuf any, roff, rcount int, rdt *Datatype, root int) error {
	defer c.phase(mpe.CollGather)()
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("core: Gather: root %d out of range", root)
	}
	// Algorithm choice must agree across ranks: decide from the send
	// signature, which MPI requires to match the receive signature.
	blockBytes := payloadBytes(scount, sdt)
	if collCfg.force != forcePipeline && n >= 4 && sdt.Base() != OBJECT.Base() &&
		blockBytes > 0 && blockBytes <= binomialGatherThresholdBytes {
		c.recordAlgo(mpe.CollGather, mpe.AlgoBinomialGather, blockBytes*n)
		scratch, err := toScratch(sendbuf, soff, scount, sdt)
		if err != nil {
			return err
		}
		bdt, err := baseDt(scratch)
		if err != nil {
			return err
		}
		return c.gatherBinomial(scratch, scount*sdt.Size(), bdt, recvbuf, roff, rcount, rdt, root)
	}
	counts := make([]int, n)
	displs := make([]int, n)
	for i := range counts {
		counts[i] = rcount
		displs[i] = i * rcount
	}
	return c.Gatherv(sendbuf, soff, scount, sdt, recvbuf, roff, counts, displs, rdt, root)
}

// Gatherv collects varying counts: rank i contributes scount items and
// root stores them at item displacement displs[i] (counts[i] items).
// Blocks above the segment size stream to the root in windowed
// segments, several peers in flight at once; the rest arrive whole.
func (c *Intracomm) Gatherv(sendbuf any, soff, scount int, sdt *Datatype,
	recvbuf any, roff int, rcounts, displs []int, rdt *Datatype, root int) error {
	defer c.phase(mpe.CollGatherv)()
	n := c.Size()
	rank := c.Rank()
	if root < 0 || root >= n {
		return fmt.Errorf("core: Gatherv: root %d out of range", root)
	}
	if rank != root {
		// Stream-or-whole must agree with the root's per-block choice;
		// both sides compute it from their own (matching) signatures.
		if chooseBlockStream(payloadBytes(scount, sdt), sdt) {
			c.recordAlgo(mpe.CollGatherv, mpe.AlgoPipelined, payloadBytes(scount, sdt))
			if err := c.streamBlockSend(sendbuf, soff, scount, sdt, root); err != nil {
				return fmt.Errorf("core: Gatherv stream to root: %w", err)
			}
			return nil
		}
		c.recordAlgo(mpe.CollGatherv, mpe.AlgoStoreForward, payloadBytes(scount, sdt))
		return c.collSend(sendbuf, soff, scount, sdt, root, tagGather)
	}
	if len(rcounts) != n || len(displs) != n {
		return fmt.Errorf("core: Gatherv: need %d counts/displs, have %d/%d", n, len(rcounts), len(displs))
	}
	// Whole-block peers are serviced in rank order as before; the
	// streamed peers' windows then run concurrently until drained.
	var blocks []*blockStream
	for i := 0; i < n; i++ {
		if i == rank || !chooseBlockStream(payloadBytes(rcounts[i], rdt), rdt) {
			continue
		}
		at := roff + displs[i]*rdt.extent
		b, err := newBlockStream(recvbuf, at, rcounts[i], rdt, i, true)
		if err != nil {
			return fmt.Errorf("core: Gatherv from %d: %w", i, err)
		}
		blocks = append(blocks, b)
	}
	algo := mpe.AlgoStoreForward
	if len(blocks) > 0 {
		algo = mpe.AlgoPipelined
	}
	c.recordAlgo(mpe.CollGatherv, algo, gatheredBytes(rcounts, rdt))
	for i := 0; i < n; i++ {
		at := roff + displs[i]*rdt.extent
		if i == rank {
			if err := localCopy(sendbuf, soff, scount, sdt, recvbuf, at, rcounts[i], rdt); err != nil {
				return fmt.Errorf("core: Gatherv self: %w", err)
			}
			continue
		}
		if chooseBlockStream(payloadBytes(rcounts[i], rdt), rdt) {
			continue
		}
		if err := c.collRecv(recvbuf, at, rcounts[i], rdt, i, tagGather); err != nil {
			return fmt.Errorf("core: Gatherv from %d: %w", i, err)
		}
	}
	if len(blocks) > 0 {
		if err := c.streamBlocksIn(blocks); err != nil {
			return fmt.Errorf("core: Gatherv streams: %w", err)
		}
	}
	return nil
}

// Scatter distributes scount items of sdt to each process from root's
// sendbuf, rank i receiving the block at item offset i*scount.
func (c *Intracomm) Scatter(sendbuf any, soff, scount int, sdt *Datatype,
	recvbuf any, roff, rcount int, rdt *Datatype, root int) error {
	defer c.phase(mpe.CollScatter)()
	n := c.Size()
	counts := make([]int, n)
	displs := make([]int, n)
	for i := range counts {
		counts[i] = scount
		displs[i] = i * scount
	}
	return c.Scatterv(sendbuf, soff, counts, displs, sdt, recvbuf, roff, rcount, rdt, root)
}

// Scatterv distributes varying counts from root. Blocks above the
// segment size leave the root as windowed segment streams, all
// destinations' pipelines filling concurrently; the rest go whole.
func (c *Intracomm) Scatterv(sendbuf any, soff int, scounts, displs []int, sdt *Datatype,
	recvbuf any, roff, rcount int, rdt *Datatype, root int) error {
	defer c.phase(mpe.CollScatterv)()
	n := c.Size()
	rank := c.Rank()
	if root < 0 || root >= n {
		return fmt.Errorf("core: Scatterv: root %d out of range", root)
	}
	if rank != root {
		if chooseBlockStream(payloadBytes(rcount, rdt), rdt) {
			c.recordAlgo(mpe.CollScatterv, mpe.AlgoPipelined, payloadBytes(rcount, rdt))
			if err := c.streamBlockRecv(recvbuf, roff, rcount, rdt, root); err != nil {
				return fmt.Errorf("core: Scatterv stream from root: %w", err)
			}
			return nil
		}
		c.recordAlgo(mpe.CollScatterv, mpe.AlgoStoreForward, payloadBytes(rcount, rdt))
		return c.collRecv(recvbuf, roff, rcount, rdt, root, tagScatter)
	}
	if len(scounts) != n || len(displs) != n {
		return fmt.Errorf("core: Scatterv: need %d counts/displs, have %d/%d", n, len(scounts), len(displs))
	}
	var blocks []*blockStream
	for i := 0; i < n; i++ {
		at := soff + displs[i]*sdt.extent
		if i == rank {
			if err := localCopy(sendbuf, at, scounts[i], sdt, recvbuf, roff, rcount, rdt); err != nil {
				return fmt.Errorf("core: Scatterv self: %w", err)
			}
			continue
		}
		if chooseBlockStream(payloadBytes(scounts[i], sdt), sdt) {
			b, err := newBlockStream(sendbuf, at, scounts[i], sdt, i, false)
			if err != nil {
				return fmt.Errorf("core: Scatterv to %d: %w", i, err)
			}
			blocks = append(blocks, b)
			continue
		}
		if err := c.collSend(sendbuf, at, scounts[i], sdt, i, tagScatter); err != nil {
			return fmt.Errorf("core: Scatterv to %d: %w", i, err)
		}
	}
	algo := mpe.AlgoStoreForward
	if len(blocks) > 0 {
		algo = mpe.AlgoPipelined
	}
	c.recordAlgo(mpe.CollScatterv, algo, gatheredBytes(scounts, sdt))
	if len(blocks) > 0 {
		if err := c.streamBlocksOut(blocks); err != nil {
			return fmt.Errorf("core: Scatterv streams: %w", err)
		}
	}
	return nil
}

// Allgather gathers every process's scount items into every process's
// recvbuf (gather to rank 0, then broadcast).
func (c *Intracomm) Allgather(sendbuf any, soff, scount int, sdt *Datatype,
	recvbuf any, roff, rcount int, rdt *Datatype) error {
	defer c.phase(mpe.CollAllgather)()
	if err := c.Gather(sendbuf, soff, scount, sdt, recvbuf, roff, rcount, rdt, 0); err != nil {
		return err
	}
	return c.Bcast(recvbuf, roff, rcount*c.Size(), rdt, 0)
}

// Allgatherv is the varying-count Allgather. Large payloads move by a
// bandwidth-optimal ring; small ones by gather + per-block broadcast.
func (c *Intracomm) Allgatherv(sendbuf any, soff, scount int, sdt *Datatype,
	recvbuf any, roff int, rcounts, displs []int, rdt *Datatype) error {
	defer c.phase(mpe.CollAllgatherv)()
	n := c.Size()
	if len(rcounts) != n || len(displs) != n {
		return fmt.Errorf("core: Allgatherv: need %d counts/displs, have %d/%d", n, len(rcounts), len(displs))
	}
	if n > 2 && gatheredBytes(rcounts, rdt) >= ringThresholdBytes {
		c.recordAlgo(mpe.CollAllgatherv, mpe.AlgoRing, gatheredBytes(rcounts, rdt))
		rank := c.Rank()
		at := roff + displs[rank]*rdt.extent
		if err := localCopy(sendbuf, soff, scount, sdt, recvbuf, at, rcounts[rank], rdt); err != nil {
			return fmt.Errorf("core: Allgatherv self: %w", err)
		}
		return c.allgathervRing(recvbuf, roff, rcounts, displs, rdt)
	}
	c.recordAlgo(mpe.CollAllgatherv, mpe.AlgoStoreForward, gatheredBytes(rcounts, rdt))
	if err := c.Gatherv(sendbuf, soff, scount, sdt, recvbuf, roff, rcounts, displs, rdt, 0); err != nil {
		return err
	}
	// Broadcast each block so displacement gaps are preserved.
	for i := 0; i < n; i++ {
		at := roff + displs[i]*rdt.extent
		if err := c.Bcast(recvbuf, at, rcounts[i], rdt, 0); err != nil {
			return err
		}
	}
	return nil
}

// Alltoall sends a distinct scount-item block to every process and
// receives one from each (pairwise exchange schedule).
func (c *Intracomm) Alltoall(sendbuf any, soff, scount int, sdt *Datatype,
	recvbuf any, roff, rcount int, rdt *Datatype) error {
	defer c.phase(mpe.CollAlltoall)()
	n := c.Size()
	scounts := make([]int, n)
	sdispls := make([]int, n)
	rcounts := make([]int, n)
	rdispls := make([]int, n)
	for i := 0; i < n; i++ {
		scounts[i], sdispls[i] = scount, i*scount
		rcounts[i], rdispls[i] = rcount, i*rcount
	}
	return c.Alltoallv(sendbuf, soff, scounts, sdispls, sdt, recvbuf, roff, rcounts, rdispls, rdt)
}

// Alltoallv is the varying-count Alltoall.
func (c *Intracomm) Alltoallv(sendbuf any, soff int, scounts, sdispls []int, sdt *Datatype,
	recvbuf any, roff int, rcounts, rdispls []int, rdt *Datatype) error {
	defer c.phase(mpe.CollAlltoallv)()
	n := c.Size()
	rank := c.Rank()
	if len(scounts) != n || len(sdispls) != n || len(rcounts) != n || len(rdispls) != n {
		return fmt.Errorf("core: Alltoallv: counts/displs must have length %d", n)
	}
	// Self block.
	if err := localCopy(sendbuf, soff+sdispls[rank]*sdt.extent, scounts[rank], sdt,
		recvbuf, roff+rdispls[rank]*rdt.extent, rcounts[rank], rdt); err != nil {
		return fmt.Errorf("core: Alltoallv self: %w", err)
	}
	// Pairwise exchange: in step k talk to rank±k.
	for k := 1; k < n; k++ {
		dst := (rank + k) % n
		src := (rank - k + n) % n
		req, sb, err := c.collIsend(sendbuf, soff+sdispls[dst]*sdt.extent, scounts[dst], sdt, dst, tagAlltoall)
		if err != nil {
			return fmt.Errorf("core: Alltoallv send to %d: %w", dst, err)
		}
		if err := c.collRecv(recvbuf, roff+rdispls[src]*rdt.extent, rcounts[src], rdt, src, tagAlltoall); err != nil {
			return fmt.Errorf("core: Alltoallv recv from %d: %w", src, err)
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		putSendBuf(sb)
	}
	return nil
}

// Reduce combines count items of dt from every process with op,
// leaving the result in root's recvbuf. Commutative ops ride a
// binomial tree, pipelined per segment above the segment size;
// non-commutative ops use a streamed rank-ordered fold whose root
// memory is bounded by the window, falling back to the buffer-all
// flat fold only when flat is forced.
func (c *Intracomm) Reduce(sendbuf any, soff int, recvbuf any, roff, count int,
	dt *Datatype, op *Op, root int) error {
	defer c.phase(mpe.CollReduce)()
	n := c.Size()
	rank := c.Rank()
	if root < 0 || root >= n {
		return fmt.Errorf("core: Reduce: root %d out of range", root)
	}
	scratch, err := toScratch(sendbuf, soff, count, dt)
	if err != nil {
		return err
	}
	bdt, err := baseDt(scratch)
	if err != nil {
		return err
	}
	elems := count * dt.Size()

	bytes := payloadBytes(count, dt)
	algo := c.chooseReduce(bytes, dt, op)
	c.recordAlgo(mpe.CollReduce, algo, bytes)
	switch algo {
	case mpe.AlgoStreamedFold:
		if err := c.reduceStreamedFold(scratch, elems, bdt, op, recvbuf, roff, count, dt, root); err != nil {
			return fmt.Errorf("core: Reduce: %w", err)
		}
		return nil
	case mpe.AlgoPipelined:
		if err := c.reducePipelined(scratch, elems, bdt, op, recvbuf, roff, count, dt, root); err != nil {
			return fmt.Errorf("core: Reduce: %w", err)
		}
		return nil
	case mpe.AlgoHierarchical:
		if err := c.reduceHier(scratch, elems, bdt, op, root); err != nil {
			return fmt.Errorf("core: Reduce: %w", err)
		}
		if rank == root {
			return fromScratch(scratch, recvbuf, roff, count, dt)
		}
		return nil
	}

	if !op.commute {
		// Order-preserving fold at the root.
		if rank != root {
			return c.collSend(scratch, 0, elems, bdt, root, tagReduce)
		}
		parts := make([]any, n)
		parts[rank] = scratch
		for i := 0; i < n; i++ {
			if i == rank {
				continue
			}
			p, err := allocLike(scratch, elems)
			if err != nil {
				return err
			}
			if err := c.collRecv(p, 0, elems, bdt, i, tagReduce); err != nil {
				return err
			}
			parts[i] = p
		}
		acc := parts[n-1]
		for i := n - 2; i >= 0; i-- {
			if err := op.apply(parts[i], acc); err != nil {
				return err
			}
		}
		return fromScratch(acc, recvbuf, roff, count, dt)
	}

	rel := (rank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (rel - mask + root) % n
			if err := c.collSend(scratch, 0, elems, bdt, parent, tagReduce); err != nil {
				return err
			}
			break
		}
		partner := rel | mask
		if partner < n {
			in, err := allocLike(scratch, elems)
			if err != nil {
				return err
			}
			src := (partner + root) % n
			if err := c.collRecv(in, 0, elems, bdt, src, tagReduce); err != nil {
				return err
			}
			if err := op.apply(in, scratch); err != nil {
				return err
			}
		}
		mask <<= 1
	}
	if rank == root {
		return fromScratch(scratch, recvbuf, roff, count, dt)
	}
	return nil
}

// Allreduce combines like Reduce and distributes the result to every
// process. Commutative operators use recursive doubling (log2(n)
// exchange rounds) for small payloads and a Rabenseifner-style
// reduce-scatter + allgather once bandwidth dominates; non-commutative
// ones fall back to the rank-ordered reduce followed by a broadcast.
func (c *Intracomm) Allreduce(sendbuf any, soff int, recvbuf any, roff, count int,
	dt *Datatype, op *Op) error {
	defer c.phase(mpe.CollAllreduce)()
	if !op.commute {
		c.recordAlgo(mpe.CollAllreduce, mpe.AlgoStoreForward, payloadBytes(count, dt))
		if err := c.Reduce(sendbuf, soff, recvbuf, roff, count, dt, op, 0); err != nil {
			return err
		}
		return c.Bcast(recvbuf, roff, count, dt, 0)
	}
	scratch, err := toScratch(sendbuf, soff, count, dt)
	if err != nil {
		return err
	}
	bdt, err := baseDt(scratch)
	if err != nil {
		return err
	}
	elems := count * dt.Size()
	bytes := payloadBytes(count, dt)
	algo := c.chooseAllreduce(bytes, elems, dt, op)
	c.recordAlgo(mpe.CollAllreduce, algo, bytes)
	switch algo {
	case mpe.AlgoReduceScatterAllgather:
		if err := c.allreduceRSAG(scratch, elems, bdt, op); err != nil {
			return fmt.Errorf("core: Allreduce: %w", err)
		}
	case mpe.AlgoHierarchical:
		if err := c.allreduceHier(scratch, elems, bdt, op); err != nil {
			return fmt.Errorf("core: Allreduce: %w", err)
		}
	default:
		if err := c.allreduceRD(scratch, elems, bdt, op); err != nil {
			return err
		}
	}
	return fromScratch(scratch, recvbuf, roff, count, dt)
}

// ReduceScatter combines sum(recvcounts) items with op and scatters the
// result: rank i receives recvcounts[i] items.
func (c *Intracomm) ReduceScatter(sendbuf any, soff int, recvbuf any, roff int,
	recvcounts []int, dt *Datatype, op *Op) error {
	defer c.phase(mpe.CollReduceScatter)()
	n := c.Size()
	if len(recvcounts) != n {
		return fmt.Errorf("core: ReduceScatter: need %d counts, have %d", n, len(recvcounts))
	}
	total := 0
	displs := make([]int, n)
	for i, cnt := range recvcounts {
		displs[i] = total
		total += cnt
	}
	// Reduce the full vector to rank 0, then scatter it by counts. The
	// intermediate buffer is laid out with dt's own extent so Scatterv
	// can address per-rank blocks by item displacement.
	fullLen := 0
	if c.Rank() == 0 {
		fullLen = total * dt.extent
	}
	full, err := allocLike(sendbuf, fullLen)
	if err != nil {
		return err
	}
	if err := c.Reduce(sendbuf, soff, full, 0, total, dt, op, 0); err != nil {
		return err
	}
	return c.Scatterv(full, 0, recvcounts, displs, dt, recvbuf, roff, recvcounts[c.Rank()], dt, 0)
}

// Scan computes the inclusive prefix reduction: rank i receives
// buf_0 op buf_1 op ... op buf_i (linear chain).
func (c *Intracomm) Scan(sendbuf any, soff int, recvbuf any, roff, count int,
	dt *Datatype, op *Op) error {
	defer c.phase(mpe.CollScan)()
	n := c.Size()
	rank := c.Rank()
	acc, err := toScratch(sendbuf, soff, count, dt)
	if err != nil {
		return err
	}
	bdt, err := baseDt(acc)
	if err != nil {
		return err
	}
	elems := count * dt.Size()
	if rank > 0 {
		prefix, err := allocLike(acc, elems)
		if err != nil {
			return err
		}
		if err := c.collRecv(prefix, 0, elems, bdt, rank-1, tagScan); err != nil {
			return err
		}
		if err := op.apply(prefix, acc); err != nil {
			return err
		}
	}
	if rank < n-1 {
		if err := c.collSend(acc, 0, elems, bdt, rank+1, tagScan); err != nil {
			return err
		}
	}
	return fromScratch(acc, recvbuf, roff, count, dt)
}
