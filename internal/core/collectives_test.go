package core

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		n := n
		var entered atomic.Int32
		runWorld(t, n, func(p *Process, w *Intracomm) {
			// Stagger arrivals; everyone must have entered before any
			// process leaves.
			time.Sleep(time.Duration(w.Rank()) * 10 * time.Millisecond)
			entered.Add(1)
			if err := w.Barrier(); err != nil {
				t.Errorf("barrier: %v", err)
				return
			}
			if got := entered.Load(); got != int32(n) {
				t.Errorf("rank %d left barrier with %d/%d entered", w.Rank(), got, n)
			}
		})
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		runWorld(t, n, func(p *Process, w *Intracomm) {
			for root := 0; root < n; root++ {
				buf := make([]int64, 4)
				if w.Rank() == root {
					for i := range buf {
						buf[i] = int64(root*100 + i)
					}
				}
				if err := w.Bcast(buf, 0, 4, LONG, root); err != nil {
					t.Errorf("bcast root %d: %v", root, err)
					return
				}
				for i := range buf {
					if buf[i] != int64(root*100+i) {
						t.Errorf("rank %d root %d: buf = %v", w.Rank(), root, buf)
						return
					}
				}
			}
		})
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 4
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		// Gather: each rank contributes two ints.
		send := []int32{int32(rank * 10), int32(rank*10 + 1)}
		var recv []int32
		if rank == 2 {
			recv = make([]int32, 2*n)
		}
		if err := w.Gather(send, 0, 2, INT, recv, 0, 2, INT, 2); err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		if rank == 2 {
			for r := 0; r < n; r++ {
				if recv[2*r] != int32(r*10) || recv[2*r+1] != int32(r*10+1) {
					t.Errorf("gathered %v", recv)
					return
				}
			}
		}
		// Scatter back from rank 2.
		var src []int32
		if rank == 2 {
			src = make([]int32, 2*n)
			for r := 0; r < n; r++ {
				src[2*r], src[2*r+1] = int32(r), int32(r+100)
			}
		}
		out := make([]int32, 2)
		if err := w.Scatter(src, 0, 2, INT, out, 0, 2, INT, 2); err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		if out[0] != int32(rank) || out[1] != int32(rank+100) {
			t.Errorf("rank %d scattered %v", rank, out)
		}
	})
}

func TestGathervScatterv(t *testing.T) {
	const n = 3
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		// Rank r contributes r+1 doubles.
		mine := make([]float64, rank+1)
		for i := range mine {
			mine[i] = float64(rank) + float64(i)/10
		}
		counts := []int{1, 2, 3}
		displs := []int{0, 2, 5} // with gaps
		var recv []float64
		if rank == 0 {
			recv = make([]float64, 8)
		}
		if err := w.Gatherv(mine, 0, rank+1, DOUBLE, recv, 0, counts, displs, DOUBLE, 0); err != nil {
			t.Errorf("gatherv: %v", err)
			return
		}
		if rank == 0 {
			if recv[0] != 0 || recv[2] != 1 || recv[3] != 1.1 || recv[5] != 2 || recv[7] != 2.2 {
				t.Errorf("gatherv result %v", recv)
			}
			// The gap must be untouched.
			if recv[1] != 0 || recv[4] != 0 {
				t.Errorf("gatherv wrote into gaps: %v", recv)
			}
		}
		// Scatterv the same layout back.
		out := make([]float64, rank+1)
		if err := w.Scatterv(recv, 0, counts, displs, DOUBLE, out, 0, rank+1, DOUBLE, 0); err != nil {
			t.Errorf("scatterv: %v", err)
			return
		}
		for i := range mine {
			if out[i] != mine[i] {
				t.Errorf("rank %d scatterv got %v want %v", rank, out, mine)
				return
			}
		}
	})
}

func TestAllgather(t *testing.T) {
	const n = 4
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		recv := make([]int32, n)
		if err := w.Allgather([]int32{int32(rank * 7)}, 0, 1, INT, recv, 0, 1, INT); err != nil {
			t.Errorf("allgather: %v", err)
			return
		}
		for r := 0; r < n; r++ {
			if recv[r] != int32(r*7) {
				t.Errorf("rank %d: %v", rank, recv)
				return
			}
		}
	})
}

func TestAllgatherv(t *testing.T) {
	const n = 3
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		mine := make([]int32, rank+1)
		for i := range mine {
			mine[i] = int32(rank*10 + i)
		}
		counts := []int{1, 2, 3}
		displs := []int{0, 1, 3}
		recv := make([]int32, 6)
		if err := w.Allgatherv(mine, 0, rank+1, INT, recv, 0, counts, displs, INT); err != nil {
			t.Errorf("allgatherv: %v", err)
			return
		}
		want := []int32{0, 10, 11, 20, 21, 22}
		for i := range want {
			if recv[i] != want[i] {
				t.Errorf("rank %d: %v", rank, recv)
				return
			}
		}
	})
}

func TestAlltoall(t *testing.T) {
	const n = 4
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		send := make([]int32, n)
		for i := range send {
			send[i] = int32(rank*100 + i) // element i goes to rank i
		}
		recv := make([]int32, n)
		if err := w.Alltoall(send, 0, 1, INT, recv, 0, 1, INT); err != nil {
			t.Errorf("alltoall: %v", err)
			return
		}
		for r := 0; r < n; r++ {
			if recv[r] != int32(r*100+rank) {
				t.Errorf("rank %d: %v", rank, recv)
				return
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const n = 2
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		// Rank 0 sends 1 element to itself, 2 to rank 1.
		// Rank 1 sends 3 elements to rank 0, 1 to itself.
		var scounts, sdispls, rcounts, rdispls []int
		var send []int64
		if rank == 0 {
			scounts, sdispls = []int{1, 2}, []int{0, 1}
			send = []int64{100, 101, 102}
			rcounts, rdispls = []int{1, 3}, []int{0, 1}
		} else {
			scounts, sdispls = []int{3, 1}, []int{0, 3}
			send = []int64{200, 201, 202, 203}
			rcounts, rdispls = []int{2, 1}, []int{0, 2}
		}
		recv := make([]int64, 4)
		if err := w.Alltoallv(send, 0, scounts, sdispls, LONG, recv, 0, rcounts, rdispls, LONG); err != nil {
			t.Errorf("alltoallv: %v", err)
			return
		}
		if rank == 0 {
			want := []int64{100, 200, 201, 202}
			for i := range want {
				if recv[i] != want[i] {
					t.Errorf("rank 0: %v", recv)
					return
				}
			}
		} else {
			want := []int64{101, 102, 203}
			for i := range want {
				if recv[i] != want[i] {
					t.Errorf("rank 1: %v", recv)
					return
				}
			}
		}
	})
}

func TestReduceSumAllRoots(t *testing.T) {
	const n = 5
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		for root := 0; root < n; root++ {
			send := []float64{float64(rank), float64(rank * 2)}
			recv := make([]float64, 2)
			if err := w.Reduce(send, 0, recv, 0, 2, DOUBLE, SUM, root); err != nil {
				t.Errorf("reduce: %v", err)
				return
			}
			if rank == root {
				wantA := float64(n * (n - 1) / 2)
				if recv[0] != wantA || recv[1] != 2*wantA {
					t.Errorf("root %d: %v", root, recv)
					return
				}
			}
		}
	})
}

func TestReduceMaxMinProd(t *testing.T) {
	const n = 4
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		maxOut := make([]int32, 1)
		if err := w.Reduce([]int32{int32(rank * 3)}, 0, maxOut, 0, 1, INT, MAX, 0); err != nil {
			t.Errorf("max: %v", err)
			return
		}
		minOut := make([]int32, 1)
		if err := w.Reduce([]int32{int32(rank + 5)}, 0, minOut, 0, 1, INT, MIN, 0); err != nil {
			t.Errorf("min: %v", err)
			return
		}
		prodOut := make([]int64, 1)
		if err := w.Reduce([]int64{int64(rank + 1)}, 0, prodOut, 0, 1, LONG, PROD, 0); err != nil {
			t.Errorf("prod: %v", err)
			return
		}
		if rank == 0 {
			if maxOut[0] != 9 {
				t.Errorf("max = %d", maxOut[0])
			}
			if minOut[0] != 5 {
				t.Errorf("min = %d", minOut[0])
			}
			if prodOut[0] != 24 {
				t.Errorf("prod = %d", prodOut[0])
			}
		}
	})
}

func TestAllreduce(t *testing.T) {
	const n = 6
	runWorld(t, n, func(p *Process, w *Intracomm) {
		recv := make([]int64, 1)
		if err := w.Allreduce([]int64{int64(w.Rank())}, 0, recv, 0, 1, LONG, SUM); err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		if recv[0] != int64(n*(n-1)/2) {
			t.Errorf("rank %d: sum = %d", w.Rank(), recv[0])
		}
	})
}

func TestLogicalAndBitwiseOps(t *testing.T) {
	const n = 3
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		land := make([]bool, 1)
		if err := w.Allreduce([]bool{rank != 1}, 0, land, 0, 1, BOOLEAN, LAND); err != nil {
			t.Errorf("land: %v", err)
			return
		}
		if land[0] {
			t.Error("LAND over {T,F,T} = true")
		}
		lor := make([]bool, 1)
		if err := w.Allreduce([]bool{rank == 1}, 0, lor, 0, 1, BOOLEAN, LOR); err != nil {
			t.Errorf("lor: %v", err)
			return
		}
		if !lor[0] {
			t.Error("LOR over {F,T,F} = false")
		}
		bor := make([]int32, 1)
		if err := w.Allreduce([]int32{1 << rank}, 0, bor, 0, 1, INT, BOR); err != nil {
			t.Errorf("bor: %v", err)
			return
		}
		if bor[0] != 7 {
			t.Errorf("BOR = %d", bor[0])
		}
		band := make([]int32, 1)
		if err := w.Allreduce([]int32{6 | (1 << rank)}, 0, band, 0, 1, INT, BAND); err != nil {
			t.Errorf("band: %v", err)
			return
		}
		if band[0] != 6 {
			t.Errorf("BAND = %d", band[0])
		}
	})
}

func TestMaxlocMinloc(t *testing.T) {
	const n = 4
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		// Pairs (value, index): value peaks at rank 2.
		vals := []float64{float64(10 - (rank-2)*(rank-2)), float64(rank)}
		out := make([]float64, 2)
		if err := w.Allreduce(vals, 0, out, 0, 2, DOUBLE, MAXLOC); err != nil {
			t.Errorf("maxloc: %v", err)
			return
		}
		if out[0] != 10 || out[1] != 2 {
			t.Errorf("MAXLOC = %v", out)
		}
		if err := w.Allreduce(vals, 0, out, 0, 2, DOUBLE, MINLOC); err != nil {
			t.Errorf("minloc: %v", err)
			return
		}
		if out[1] != 0 { // minimum at rank 0 (value 6)
			t.Errorf("MINLOC = %v", out)
		}
	})
}

func TestUserDefinedOp(t *testing.T) {
	// Associative but non-commutative op: 2x2 matrix multiplication
	// over elements laid out as [a, b, c, d]. The result must be
	// M_0 · M_1 · M_2 in rank order.
	const n = 3
	op := NewOp(func(in, inout any) error {
		a := in.([]int64) // earlier operand
		b := inout.([]int64)
		for i := 0; i+3 < len(a); i += 4 {
			p := [4]int64{
				a[i]*b[i] + a[i+1]*b[i+2],
				a[i]*b[i+1] + a[i+1]*b[i+3],
				a[i+2]*b[i] + a[i+3]*b[i+2],
				a[i+2]*b[i+1] + a[i+3]*b[i+3],
			}
			copy(b[i:i+4], p[:])
		}
		return nil
	}, false)
	mats := [][]int64{
		{1, 1, 0, 1},
		{2, 0, 0, 1},
		{1, 0, 3, 1},
	}
	// M0·M1·M2 = [[1,1],[0,1]]·[[2,0],[0,1]]·[[1,0],[3,1]] =
	// [[2,1],[0,1]]·[[1,0],[3,1]] = [[5,1],[3,1]].
	want := []int64{5, 1, 3, 1}
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		out := make([]int64, 4)
		if err := w.Reduce(mats[rank], 0, out, 0, 4, LONG, op, 0); err != nil {
			t.Errorf("user op: %v", err)
			return
		}
		if rank == 0 {
			for i := range want {
				if out[i] != want[i] {
					t.Errorf("non-commutative fold = %v, want %v", out, want)
					return
				}
			}
		}
	})
}

func TestScan(t *testing.T) {
	const n = 5
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		out := make([]int32, 1)
		if err := w.Scan([]int32{int32(rank + 1)}, 0, out, 0, 1, INT, SUM); err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		want := int32((rank + 1) * (rank + 2) / 2)
		if out[0] != want {
			t.Errorf("rank %d: scan = %d, want %d", rank, out[0], want)
		}
	})
}

func TestReduceScatter(t *testing.T) {
	const n = 3
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		// Everyone contributes [r, r, r, r, r, r]; counts 1,2,3.
		send := make([]int32, 6)
		for i := range send {
			send[i] = int32(rank + 1)
		}
		counts := []int{1, 2, 3}
		recv := make([]int32, counts[rank])
		if err := w.ReduceScatter(send, 0, recv, 0, counts, INT, SUM); err != nil {
			t.Errorf("reducescatter: %v", err)
			return
		}
		for i := range recv {
			if recv[i] != 6 { // 1+2+3
				t.Errorf("rank %d: %v", rank, recv)
				return
			}
		}
	})
}

func TestBcastDerivedDatatype(t *testing.T) {
	// Broadcast a matrix column.
	const n = 3
	runWorld(t, n, func(p *Process, w *Intracomm) {
		col, err := DOUBLE.Vector(4, 1, 4)
		if err != nil {
			t.Error(err)
			return
		}
		matrix := make([]float64, 16)
		if w.Rank() == 0 {
			for i := 0; i < 4; i++ {
				matrix[i*4] = float64(i + 1)
			}
		}
		if err := w.Bcast(matrix, 0, 1, col, 0); err != nil {
			t.Errorf("bcast: %v", err)
			return
		}
		for i := 0; i < 4; i++ {
			if matrix[i*4] != float64(i+1) {
				t.Errorf("rank %d: column %v", w.Rank(), matrix)
				return
			}
			if i > 0 && matrix[i*4-3] != 0 {
				t.Errorf("rank %d: off-column touched", w.Rank())
				return
			}
		}
	})
}

func TestCollectiveValidation(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if err := w.Bcast([]int32{1}, 0, 1, INT, 5); err == nil {
			t.Error("Bcast with bad root accepted")
		}
		if err := w.Gatherv(nil, 0, 0, INT, nil, 0, []int{1}, []int{0}, INT, w.Rank()); err == nil {
			t.Error("Gatherv with short counts accepted")
		}
	})
}
