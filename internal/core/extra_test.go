package core

import (
	"testing"
)

func TestRsendIrsend(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			if err := w.Rsend([]int32{1}, 0, 1, INT, 1, 0); err != nil {
				t.Error(err)
			}
			req, err := w.Irsend([]int32{2}, 0, 1, INT, 1, 1)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := req.Wait(); err != nil {
				t.Error(err)
			}
		} else {
			b := make([]int32, 1)
			if _, err := w.Recv(b, 0, 1, INT, 0, 0); err != nil || b[0] != 1 {
				t.Errorf("rsend: %v %v", b, err)
			}
			if _, err := w.Recv(b, 0, 1, INT, 0, 1); err != nil || b[0] != 2 {
				t.Errorf("irsend: %v %v", b, err)
			}
		}
	})
}

func TestSendrecvSelf(t *testing.T) {
	runWorld(t, 1, func(p *Process, w *Intracomm) {
		out := []int64{7}
		in := make([]int64, 1)
		st, err := w.Sendrecv(out, 0, 1, LONG, 0, 0, in, 0, 1, LONG, 0, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if in[0] != 7 || st.Source != 0 {
			t.Errorf("in=%v st=%+v", in, st)
		}
	})
}

func TestCollectivesSizeOne(t *testing.T) {
	runWorld(t, 1, func(p *Process, w *Intracomm) {
		if err := w.Barrier(); err != nil {
			t.Error(err)
		}
		buf := []int32{5}
		if err := w.Bcast(buf, 0, 1, INT, 0); err != nil {
			t.Error(err)
		}
		out := make([]int32, 1)
		if err := w.Allreduce(buf, 0, out, 0, 1, INT, SUM); err != nil {
			t.Error(err)
		}
		if out[0] != 5 {
			t.Errorf("allreduce = %d", out[0])
		}
		g := make([]int32, 1)
		if err := w.Allgather(buf, 0, 1, INT, g, 0, 1, INT); err != nil {
			t.Error(err)
		}
		if g[0] != 5 {
			t.Errorf("allgather = %v", g)
		}
		sc := make([]int32, 1)
		if err := w.Scan(buf, 0, sc, 0, 1, INT, SUM); err != nil {
			t.Error(err)
		}
		if sc[0] != 5 {
			t.Errorf("scan = %v", sc)
		}
	})
}

func TestReduceWithDerivedDatatype(t *testing.T) {
	// Reduce matrix columns: each rank contributes its first column of
	// a 3x3 matrix; the root receives the elementwise sum as a column.
	const n = 3
	runWorld(t, n, func(p *Process, w *Intracomm) {
		col, err := DOUBLE.Vector(3, 1, 3)
		if err != nil {
			t.Error(err)
			return
		}
		matrix := make([]float64, 9)
		for i := 0; i < 3; i++ {
			matrix[i*3] = float64(w.Rank() + 1) // column 0
		}
		out := make([]float64, 9)
		if err := w.Reduce(matrix, 0, out, 0, 1, col, SUM, 0); err != nil {
			t.Error(err)
			return
		}
		if w.Rank() == 0 {
			want := float64(1 + 2 + 3)
			for i := 0; i < 3; i++ {
				if out[i*3] != want {
					t.Errorf("column[%d] = %v", i, out[i*3])
				}
				if out[i*3+1] != 0 {
					t.Errorf("off-column touched at %d", i*3+1)
				}
			}
		}
	})
}

func TestScanWithMin(t *testing.T) {
	const n = 4
	runWorld(t, n, func(p *Process, w *Intracomm) {
		// Values descend with rank: prefix min equals own value.
		v := []int64{int64(100 - w.Rank())}
		out := make([]int64, 1)
		if err := w.Scan(v, 0, out, 0, 1, LONG, MIN); err != nil {
			t.Error(err)
			return
		}
		if out[0] != int64(100-w.Rank()) {
			t.Errorf("rank %d: scan min = %d", w.Rank(), out[0])
		}
	})
}

func TestGetCountWithDerivedType(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		pair, err := DOUBLE.Contiguous(2)
		if err != nil {
			t.Error(err)
			return
		}
		if w.Rank() == 0 {
			if err := w.Send([]float64{1, 2, 3, 4}, 0, 2, pair, 1, 0); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]float64, 4)
			st, err := w.Recv(buf, 0, 2, pair, 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if st.Count() != 4 {
				t.Errorf("base count %d", st.Count())
			}
			if st.GetCount(pair) != 2 {
				t.Errorf("pair count %d", st.GetCount(pair))
			}
			if st.GetCount(nil) != 0 {
				t.Errorf("nil datatype count %d", st.GetCount(nil))
			}
		}
	})
}

func TestCreateIntercommValidation(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if _, err := w.CreateIntercomm(nil, 0, 0, 1); err == nil {
			t.Error("nil local comm accepted")
		}
	})
}

func TestPackEmptyMessage(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		// Zero-count messages with nil buffers are legal (pure
		// synchronization).
		if w.Rank() == 0 {
			if err := w.Send(nil, 0, 0, INT, 1, 0); err != nil {
				t.Error(err)
			}
		} else {
			st, err := w.Recv(nil, 0, 0, INT, 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if st.Count() != 0 {
				t.Errorf("count = %d", st.Count())
			}
		}
	})
}

func TestAllgathervDerivedGaps(t *testing.T) {
	// Allgatherv with displacement gaps must leave the gaps untouched
	// on every rank.
	const n = 2
	runWorld(t, n, func(p *Process, w *Intracomm) {
		mine := []int32{int32(10 + w.Rank())}
		counts := []int{1, 1}
		displs := []int{0, 2} // gap at index 1
		recv := []int32{-1, -1, -1}
		if err := w.Allgatherv(mine, 0, 1, INT, recv, 0, counts, displs, INT); err != nil {
			t.Error(err)
			return
		}
		if recv[0] != 10 || recv[2] != 11 {
			t.Errorf("recv = %v", recv)
		}
		if recv[1] != -1 {
			t.Errorf("gap overwritten: %v", recv)
		}
	})
}

func TestWaitAllReportsErrorIndex(t *testing.T) {
	runWorld(t, 1, func(p *Process, w *Intracomm) {
		// A request slice with only nils is trivially complete.
		sts, err := WaitAll([]*Request{nil, nil})
		if err != nil || len(sts) != 2 {
			t.Errorf("WaitAll(nils) = %v, %v", sts, err)
		}
	})
}

func TestCommAccessors(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Process() != p {
			t.Error("Process() mismatch")
		}
		if w.Group().Size() != 2 {
			t.Error("Group size")
		}
		dup, err := w.Dup()
		if err != nil {
			t.Error(err)
			return
		}
		if w.Compare(&dup.Comm) != Ident {
			t.Error("dup not Ident")
		}
	})
}
