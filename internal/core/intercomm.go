package core

import (
	"fmt"

	"mpj/internal/mpjdev"
	"mpj/internal/xdev"
)

// Intercomm is a communicator between two disjoint groups
// (the mpijava Intercomm class): point-to-point ranks address the
// *remote* group. The paper lists inter-communicators among the
// higher-level MPI features MPJ Express implements and MPJ/Ibis lacks.
type Intercomm struct {
	Comm
	localGroup  *Group
	remoteGroup *Group
}

// LocalGroup returns the caller's side of the intercommunicator.
func (ic *Intercomm) LocalGroup() *Group { return ic.localGroup }

// RemoteGroup returns the opposite side.
func (ic *Intercomm) RemoteGroup() *Group { return ic.remoteGroup }

// RemoteSize reports the number of processes in the remote group.
func (ic *Intercomm) RemoteSize() int { return ic.remoteGroup.Size() }

// Rank reports the caller's rank in its local group.
func (ic *Intercomm) Rank() int { return ic.localGroup.Rank(ic.selfPID()) }

// Size reports the local group size.
func (ic *Intercomm) Size() int { return ic.localGroup.Size() }

func (ic *Intercomm) selfPID() xdev.ProcessID { return ic.p.dev.ID() }

// CreateIntercomm builds an intercommunicator (Intracomm.Create_intercomm).
// The receiver c is the peer communicator containing both leaders;
// local is the caller's intracommunicator; localLeader is the leader's
// rank in local; remoteLeader is the other group's leader's rank in c;
// tag disambiguates concurrent constructions over c.
func (c *Intracomm) CreateIntercomm(local *Intracomm, localLeader, remoteLeader, tag int) (*Intercomm, error) {
	if local == nil {
		return nil, fmt.Errorf("core: CreateIntercomm: caller must be in a local group")
	}
	lsize := local.Size()
	lrank := local.Rank()

	// Leaders exchange the ordered member lists (as world ranks in c).
	myPIDs := local.group.PIDs()
	myRanksInPeer := make([]int32, lsize)
	for i, pid := range myPIDs {
		r := c.group.Rank(pid)
		if r == Undefined {
			return nil, fmt.Errorf("core: CreateIntercomm: local member %v not in peer communicator", pid)
		}
		myRanksInPeer[i] = int32(r)
	}

	var remoteRanks []int32
	if lrank == localLeader {
		// Exchange sizes, then member lists.
		sizeBuf := []int32{int32(lsize)}
		otherSize := make([]int32, 1)
		if _, err := c.Sendrecv(
			sizeBuf, 0, 1, INT, remoteLeader, tag,
			otherSize, 0, 1, INT, remoteLeader, tag); err != nil {
			return nil, fmt.Errorf("core: CreateIntercomm size exchange: %w", err)
		}
		remoteRanks = make([]int32, otherSize[0])
		if _, err := c.Sendrecv(
			myRanksInPeer, 0, lsize, INT, remoteLeader, tag,
			remoteRanks, 0, int(otherSize[0]), INT, remoteLeader, tag); err != nil {
			return nil, fmt.Errorf("core: CreateIntercomm member exchange: %w", err)
		}
	}
	// Leader broadcasts the remote member list within the local group.
	sz := []int32{int32(len(remoteRanks))}
	if err := local.Bcast(sz, 0, 1, INT, localLeader); err != nil {
		return nil, err
	}
	if lrank != localLeader {
		remoteRanks = make([]int32, sz[0])
	}
	if err := local.Bcast(remoteRanks, 0, int(sz[0]), INT, localLeader); err != nil {
		return nil, err
	}

	remotePIDs := make([]xdev.ProcessID, len(remoteRanks))
	for i, r := range remoteRanks {
		pid, err := c.group.PID(int(r))
		if err != nil {
			return nil, err
		}
		remotePIDs[i] = pid
	}
	remoteGroup := NewGroup(remotePIDs)
	localGroup := local.group

	// Point-to-point ranks address the remote group, so the mpjdev
	// comm's pid table is remote-first; local members follow so the
	// device can also resolve local sources if needed.
	union := append(append([]xdev.ProcessID(nil), remotePIDs...), localGroup.pids...)
	ptpCtx, collCtx := c.p.allocContexts()
	selfIndex := len(remotePIDs) + lrank
	ptp, err := mpjdev.NewComm(c.p.dev, union, selfIndex, ptpCtx)
	if err != nil {
		return nil, err
	}
	coll, err := mpjdev.NewComm(c.p.dev, union, selfIndex, collCtx)
	if err != nil {
		return nil, err
	}
	return &Intercomm{
		Comm:        Comm{p: c.p, group: NewGroup(union), ptp: ptp, coll: coll},
		localGroup:  localGroup,
		remoteGroup: remoteGroup,
	}, nil
}
