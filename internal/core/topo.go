package core

import "fmt"

// Virtual topologies (mpijava Cartcomm and Graphcomm): among the
// higher-level MPI features the paper notes MPJ/Ibis does not
// implement (§II).

// ProcNull is the null process rank: a Shift past a non-periodic edge
// returns it, and sends/receives addressed to it are no-ops at the
// application's discretion (MPI_PROC_NULL).
const ProcNull = -1

// CartComm is a communicator with a Cartesian process grid attached.
type CartComm struct {
	Intracomm
	dims    []int
	periods []bool
}

// CreateCart attaches an ndims-dimensional grid to the first
// prod(dims) processes of c (MPI_Cart_create; reorder is accepted for
// signature compatibility and ignored). Collective over c; processes
// beyond the grid receive nil.
func (c *Intracomm) CreateCart(dims []int, periods []bool, reorder bool) (*CartComm, error) {
	if len(dims) == 0 || len(dims) != len(periods) {
		return nil, fmt.Errorf("core: CreateCart: dims/periods mismatch")
	}
	size := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("core: CreateCart: non-positive dimension %d", d)
		}
		size *= d
	}
	if size > c.Size() {
		return nil, fmt.Errorf("core: CreateCart: grid of %d exceeds communicator size %d", size, c.Size())
	}
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = i
	}
	g, err := c.group.Incl(ranks)
	if err != nil {
		return nil, err
	}
	newRank := Undefined
	if c.Rank() < size {
		newRank = c.Rank()
	}
	ic, err := c.p.newIntracomm(g, newRank)
	if err != nil {
		return nil, err
	}
	if ic == nil {
		return nil, nil
	}
	return &CartComm{
		Intracomm: *ic,
		dims:      append([]int(nil), dims...),
		periods:   append([]bool(nil), periods...),
	}, nil
}

// Dims returns the grid shape.
func (cc *CartComm) Dims() []int { return append([]int(nil), cc.dims...) }

// Periods returns the per-dimension periodicity.
func (cc *CartComm) Periods() []bool { return append([]bool(nil), cc.periods...) }

// Coords converts a rank to grid coordinates (MPI_Cart_coords).
func (cc *CartComm) Coords(rank int) ([]int, error) {
	if rank < 0 || rank >= cc.Size() {
		return nil, fmt.Errorf("core: Coords: rank %d out of range", rank)
	}
	coords := make([]int, len(cc.dims))
	for i := len(cc.dims) - 1; i >= 0; i-- {
		coords[i] = rank % cc.dims[i]
		rank /= cc.dims[i]
	}
	return coords, nil
}

// MyCoords returns the calling process's grid coordinates.
func (cc *CartComm) MyCoords() []int {
	coords, _ := cc.Coords(cc.Rank())
	return coords
}

// RankOf converts grid coordinates to a rank (MPI_Cart_rank).
// Out-of-range coordinates in periodic dimensions wrap; in
// non-periodic dimensions they are an error.
func (cc *CartComm) RankOf(coords []int) (int, error) {
	if len(coords) != len(cc.dims) {
		return 0, fmt.Errorf("core: RankOf: want %d coordinates, have %d", len(cc.dims), len(coords))
	}
	rank := 0
	for i, x := range coords {
		d := cc.dims[i]
		if x < 0 || x >= d {
			if !cc.periods[i] {
				return 0, fmt.Errorf("core: RankOf: coordinate %d out of range in non-periodic dimension %d", x, i)
			}
			x = ((x % d) + d) % d
		}
		rank = rank*d + x
	}
	return rank, nil
}

// Shift returns the source and destination ranks for a displacement
// along one dimension (MPI_Cart_shift). Over a non-periodic edge the
// corresponding rank is ProcNull.
func (cc *CartComm) Shift(dim, disp int) (src, dst int, err error) {
	if dim < 0 || dim >= len(cc.dims) {
		return 0, 0, fmt.Errorf("core: Shift: dimension %d out of range", dim)
	}
	coords := cc.MyCoords()
	at := func(delta int) int {
		c2 := append([]int(nil), coords...)
		c2[dim] += delta
		if c2[dim] < 0 || c2[dim] >= cc.dims[dim] {
			if !cc.periods[dim] {
				return ProcNull
			}
		}
		r, err := cc.RankOf(c2)
		if err != nil {
			return ProcNull
		}
		return r
	}
	return at(-disp), at(disp), nil
}

// DimsCreate factors nnodes into ndims balanced dimensions
// (MPI_Dims_create). Zero entries in dims are free; non-zero entries
// are constraints.
func DimsCreate(nnodes int, dims []int) ([]int, error) {
	out := append([]int(nil), dims...)
	fixed := 1
	free := 0
	for _, d := range out {
		if d < 0 {
			return nil, fmt.Errorf("core: DimsCreate: negative dimension")
		}
		if d > 0 {
			fixed *= d
		} else {
			free++
		}
	}
	if fixed == 0 || nnodes%fixed != 0 {
		return nil, fmt.Errorf("core: DimsCreate: %d nodes not divisible by fixed dims %d", nnodes, fixed)
	}
	rem := nnodes / fixed
	if free == 0 {
		if rem != 1 {
			return nil, fmt.Errorf("core: DimsCreate: fixed dims cover %d of %d nodes", fixed, nnodes)
		}
		return out, nil
	}
	// Greedy balanced factorization: repeatedly assign the largest
	// prime factor to the smallest dimension.
	factors := primeFactors(rem)
	vals := make([]int, free)
	for i := range vals {
		vals[i] = 1
	}
	for i := len(factors) - 1; i >= 0; i-- {
		smallest := 0
		for j := 1; j < free; j++ {
			if vals[j] < vals[smallest] {
				smallest = j
			}
		}
		vals[smallest] *= factors[i]
	}
	// Place in non-increasing order into the free slots.
	for i := 0; i < free; i++ {
		for j := i + 1; j < free; j++ {
			if vals[j] > vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	k := 0
	for i, d := range out {
		if d == 0 {
			out[i] = vals[k]
			k++
		}
	}
	return out, nil
}

func primeFactors(n int) []int {
	var fs []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			fs = append(fs, f)
			n /= f
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// GraphComm is a communicator with an arbitrary neighbour graph
// attached (MPI_Graph_create).
type GraphComm struct {
	Intracomm
	index []int
	edges []int
}

// CreateGraph attaches a graph topology: index is the cumulative
// neighbour count per node, edges the flattened adjacency lists.
// Collective; processes beyond len(index) receive nil.
func (c *Intracomm) CreateGraph(index, edges []int, reorder bool) (*GraphComm, error) {
	nnodes := len(index)
	if nnodes == 0 || nnodes > c.Size() {
		return nil, fmt.Errorf("core: CreateGraph: %d nodes vs communicator size %d", nnodes, c.Size())
	}
	prev := 0
	for i, x := range index {
		if x < prev {
			return nil, fmt.Errorf("core: CreateGraph: index not non-decreasing at %d", i)
		}
		prev = x
	}
	if prev != len(edges) {
		return nil, fmt.Errorf("core: CreateGraph: index covers %d edges, have %d", prev, len(edges))
	}
	for _, e := range edges {
		if e < 0 || e >= nnodes {
			return nil, fmt.Errorf("core: CreateGraph: edge to %d out of range", e)
		}
	}
	ranks := make([]int, nnodes)
	for i := range ranks {
		ranks[i] = i
	}
	g, err := c.group.Incl(ranks)
	if err != nil {
		return nil, err
	}
	newRank := Undefined
	if c.Rank() < nnodes {
		newRank = c.Rank()
	}
	ic, err := c.p.newIntracomm(g, newRank)
	if err != nil {
		return nil, err
	}
	if ic == nil {
		return nil, nil
	}
	return &GraphComm{
		Intracomm: *ic,
		index:     append([]int(nil), index...),
		edges:     append([]int(nil), edges...),
	}, nil
}

// Neighbors returns the adjacency list of rank (MPI_Graph_neighbors).
func (gc *GraphComm) Neighbors(rank int) ([]int, error) {
	if rank < 0 || rank >= len(gc.index) {
		return nil, fmt.Errorf("core: Neighbors: rank %d out of range", rank)
	}
	start := 0
	if rank > 0 {
		start = gc.index[rank-1]
	}
	return append([]int(nil), gc.edges[start:gc.index[rank]]...), nil
}

// MyNeighbors returns the calling process's adjacency list.
func (gc *GraphComm) MyNeighbors() []int {
	ns, _ := gc.Neighbors(gc.Rank())
	return ns
}
