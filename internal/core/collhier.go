package core

import "fmt"

// Hierarchical (topology-aware) collectives. When the job's placement
// (MPJ_NODE_MAP) spans several nodes, the flat algorithms waste the
// asymmetry the hybrid device exposes: an intra-node message is one
// shared-memory copy while an inter-node message crosses the wire. The
// two-level variants here restructure the communication so each node's
// traffic folds locally and only the node leaders speak on the wire —
// one inter-node message per node instead of one per rank:
//
//   - Bcast: a fused two-level tree — binomial over the node
//     representatives (inter-node edges) with each node's binomial
//     fan-out grafted under its representative — driven by the
//     segmented pipeline engine, so segments stream from the root
//     through the leaders into the leaves without a phase barrier;
//   - Reduce: the same fused tree folded upward (commutative ops);
//   - Allreduce: a pipelined intra-node fold to the leader, a
//     Rabenseifner reduce-scatter+allgather (or recursive doubling
//     when the vector cannot be striped) over the leaders, then a
//     pipelined intra-node broadcast of the result.
//
// All phases are tag-disciplined point-to-point on the communicator's
// own collective context — no sub-communicator is allocated per call.
// The tree edges of the intra- and inter-node levels are disjoint
// (representatives pair only with representatives across nodes,
// members only within their node) and segment streams flow in one
// direction per edge, so the levels cannot mismatch each other's
// messages.
//
// The root's node is represented by the root itself (not its leader),
// which saves the final leader→root hop in Reduce and the root→leader
// hop in Bcast.

// rankIndex locates rank in a participant list, -1 when absent.
func rankIndex(list []int, rank int) int {
	for i, r := range list {
		if r == rank {
			return i
		}
	}
	return -1
}

// allRanks is the identity participant list — the whole communicator.
func (c *Comm) allRanks() []int {
	list := make([]int, c.Size())
	for i := range list {
		list[i] = i
	}
	return list
}

// treeOver computes rank's binomial-tree neighbours over an explicit
// participant list rooted at list[rootIdx]: the parent segments arrive
// from (-1 at the root or for non-members) and the children they are
// forwarded to, largest subtree first — the same shape the flat
// pipelined collectives use over the whole communicator.
func treeOver(list []int, rootIdx, rank int) (parent int, children []int) {
	n := len(list)
	me := rankIndex(list, rank)
	parent = -1
	if n <= 1 || me < 0 {
		return parent, nil
	}
	rel := (me - rootIdx + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent = list[(rel-mask+rootIdx)%n]
			break
		}
		mask <<= 1
	}
	for m := mask >> 1; m > 0; m >>= 1 {
		if rel+m < n {
			children = append(children, list[(rel+m+rootIdx)%n])
		}
	}
	return parent, children
}

// reps returns the per-node representative list in node-id order: each
// node's leader, except the root's node which the root itself
// represents.
func (t commTopo) reps(root int) []int {
	reps := append([]int(nil), t.leader...)
	reps[t.nodeOf[root]] = root
	return reps
}

// twoLevelTree fuses the inter-node representative tree and the
// intra-node member trees into one rooted tree: a representative's
// parent is its representative-tree parent (another node's rep, a wire
// edge) and its children are its representative-tree children followed
// by its intra-node children; every other rank hangs off its node's
// member tree. Segment streams traverse the whole structure with no
// barrier between the levels.
func (c *Intracomm) twoLevelTree(t commTopo, root int) (parent int, children []int) {
	rank := c.Rank()
	reps := t.reps(root)
	rep := reps[t.myNode]
	members := t.members[t.myNode]
	repIdx := rankIndex(members, rep)
	if rank != rep {
		return treeOver(members, repIdx, rank)
	}
	parent, children = treeOver(reps, t.nodeOf[root], rank)
	_, intraKids := treeOver(members, repIdx, rank)
	return parent, append(children, intraKids...)
}

// bcastHier is the two-level broadcast: the segmented pipeline run
// over the fused representative+member tree.
func (c *Intracomm) bcastHier(buf any, offset, count int, dt *Datatype, root int) error {
	t := c.topo()
	parent, children := c.twoLevelTree(t, root)
	if err := c.bcastPipeTree(buf, offset, count, dt, parent, children); err != nil {
		return fmt.Errorf("hierarchical bcast: %w", err)
	}
	return nil
}

// reduceHier is the two-level commutative reduce over contiguous
// scratch: the same fused tree folded upward. The result lands in
// root's scratch.
func (c *Intracomm) reduceHier(scratch any, elems int, bdt *Datatype, op *Op, root int) error {
	t := c.topo()
	parent, children := c.twoLevelTree(t, root)
	if err := c.reducePipeTree(scratch, elems, bdt, op, parent, children); err != nil {
		return fmt.Errorf("hierarchical reduce: %w", err)
	}
	return nil
}

// allreduceHier is the two-level commutative allreduce over contiguous
// scratch, in place on every rank: fold each node onto its leader
// (pipelined member tree), allreduce across the leaders — Rabenseifner
// reduce-scatter+allgather when the vector can be striped across them,
// recursive doubling otherwise — and fan the result back out within
// each node. Unlike Bcast/Reduce the leader phase needs every node's
// full vector, so the intra and inter levels cannot fuse into one
// tree; each phase is individually pipelined instead.
func (c *Intracomm) allreduceHier(scratch any, elems int, bdt *Datatype, op *Op) error {
	t := c.topo()
	members := t.members[t.myNode]
	parent, children := treeOver(members, 0, c.Rank())
	if err := c.reducePipeTree(scratch, elems, bdt, op, parent, children); err != nil {
		return fmt.Errorf("intra-node fold: %w", err)
	}
	if c.Rank() == t.leader[t.myNode] {
		leaders := t.leader
		pof2 := 1
		for pof2*2 <= len(leaders) {
			pof2 *= 2
		}
		if op.atom > 0 && elems >= pof2*op.atom && len(leaders) >= 2 {
			if err := c.allreduceRSAGOver(scratch, elems, bdt, op, leaders); err != nil {
				return fmt.Errorf("inter-node rsag: %w", err)
			}
		} else if err := c.allreduceRDOver(scratch, elems, bdt, op, leaders); err != nil {
			return fmt.Errorf("inter-node rd: %w", err)
		}
	}
	if err := c.bcastPipeTree(scratch, 0, elems, bdt, parent, children); err != nil {
		return fmt.Errorf("intra-node bcast: %w", err)
	}
	return nil
}
