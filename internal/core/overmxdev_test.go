package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mpj/internal/mxdev"
	"mpj/internal/xdev"
)

// runWorldMx runs the core API over the simulated Myrinet eXpress
// device — the paper's mxdev path, where eager/rendezvous live inside
// the MX library and Waitany peeks the MX completion queue.
func runWorldMx(t *testing.T, n int, fn func(p *Process, w *Intracomm)) {
	t.Helper()
	group := fmt.Sprintf("core-mx-%d", groupCounter.Add(1))
	procs := make([]*Process, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			procs[rank], errs[rank] = Init(mxdev.New(), xdev.Config{Rank: rank, Size: n, Group: group})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", i, err)
		}
	}
	defer func() {
		for _, p := range procs {
			p.Finalize()
		}
	}()
	var jobWG sync.WaitGroup
	for i := 0; i < n; i++ {
		jobWG.Add(1)
		go func(rank int) {
			defer jobWG.Done()
			fn(procs[rank], procs[rank].World())
		}(i)
	}
	done := make(chan struct{})
	go func() {
		jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("mxdev world deadlocked")
	}
}

// TestFullStackOverMxdev runs collectives, communicator creation and
// Waitany over the MX path.
func TestFullStackOverMxdev(t *testing.T) {
	runWorldMx(t, 4, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		// Collectives.
		sum := make([]int64, 1)
		if err := w.Allreduce([]int64{int64(rank)}, 0, sum, 0, 1, LONG, SUM); err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		if sum[0] != 6 {
			t.Errorf("sum %d", sum[0])
		}
		// Gather a large block (exercises mxsim's single-copy path).
		const k = 50_000
		mine := make([]float64, k)
		for i := range mine {
			mine[i] = float64(rank)
		}
		var all []float64
		if rank == 0 {
			all = make([]float64, 4*k)
		}
		if err := w.Gather(mine, 0, k, DOUBLE, all, 0, k, DOUBLE, 0); err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		if rank == 0 {
			for r := 0; r < 4; r++ {
				if all[r*k+k/2] != float64(r) {
					t.Errorf("block %d corrupted", r)
					return
				}
			}
		}
		// Waitany over the MX completion queue.
		if rank == 0 {
			bufs := make([][]int64, 3)
			reqs := make([]*Request, 3)
			for i := range reqs {
				bufs[i] = make([]int64, 1)
				r, err := w.Irecv(bufs[i], 0, 1, LONG, AnySource, 50+i)
				if err != nil {
					t.Error(err)
					return
				}
				reqs[i] = r
			}
			for remaining := 3; remaining > 0; remaining-- {
				idx, st, err := WaitAny(reqs)
				if err != nil {
					t.Error(err)
					return
				}
				if bufs[idx][0] != int64(st.Source)*7 {
					t.Errorf("idx %d: payload %d from %d", idx, bufs[idx][0], st.Source)
				}
				reqs[idx] = nil
			}
		} else {
			if err := w.Send([]int64{int64(rank) * 7}, 0, 1, LONG, 0, 50+rank-1); err != nil {
				t.Error(err)
			}
		}
		// Communicator creation over MX contexts.
		sub, err := w.Split(rank%2, rank)
		if err != nil || sub == nil {
			t.Errorf("split: %v", err)
			return
		}
		s := make([]int32, 1)
		if err := sub.Allreduce([]int32{1}, 0, s, 0, 1, INT, SUM); err != nil {
			t.Errorf("sub allreduce: %v", err)
			return
		}
		if s[0] != 2 {
			t.Errorf("sub size sum %d", s[0])
		}
	})
}
