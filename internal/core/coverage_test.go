package core

import (
	"strings"
	"testing"
	"time"

	"mpj/internal/mpjbuf"
)

func TestCoreTestAnyTestAll(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 1 {
			time.Sleep(30 * time.Millisecond)
			w.Send([]int64{1}, 0, 1, LONG, 0, 0)
			w.Send([]int64{2}, 0, 1, LONG, 0, 1)
			return
		}
		b1, b2 := make([]int64, 1), make([]int64, 1)
		r1, err := w.Irecv(b1, 0, 1, LONG, 1, 0)
		if err != nil {
			t.Error(err)
			return
		}
		r2, err := w.Irecv(b2, 0, 1, LONG, 1, 1)
		if err != nil {
			t.Error(err)
			return
		}
		reqs := []*Request{r1, nil, r2}
		// Nothing has arrived yet (peer sleeps): TestAny/TestAll false.
		if _, _, ok, _ := TestAny(reqs); ok {
			// Timing-dependent: acceptable if already arrived.
			_ = ok
		}
		// Poll TestAll until everything lands.
		deadline := time.Now().Add(5 * time.Second)
		for {
			sts, ok, err := TestAll(reqs)
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				if sts[0].Tag != 0 || sts[2].Tag != 1 {
					t.Errorf("tags %d/%d", sts[0].Tag, sts[2].Tag)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Error("TestAll never true")
				return
			}
			time.Sleep(time.Millisecond)
		}
		if idx, _, ok, err := TestAny(reqs); err != nil || !ok || idx < 0 {
			t.Errorf("TestAny after completion: idx=%d ok=%v err=%v", idx, ok, err)
		}
		if b1[0] != 1 || b2[0] != 2 {
			t.Errorf("payloads %d/%d", b1[0], b2[0])
		}
	})
}

func TestStructDatatypeAllFieldKinds(t *testing.T) {
	dt, err := Struct(
		[]int{2, 1, 1, 1, 1, 2},
		[]int{0, 2, 3, 4, 5, 6},
		[]*Datatype{BYTE, BOOLEAN, FLOAT, LONG, OBJECT, INT},
	)
	if err != nil {
		t.Fatal(err)
	}
	src := []any{
		byte(1), byte(2), // BYTE x2
		true,               // BOOLEAN
		float32(1.5),       // FLOAT
		int64(-9),          // LONG
		"obj",              // OBJECT
		int32(3), int32(4), // INT x2
	}
	b, err := pack(src, 0, 1, dt)
	if err != nil {
		t.Fatal(err)
	}
	rb := mpjbuf.New(0)
	if err := rb.LoadWire(b.Wire()); err != nil {
		t.Fatal(err)
	}
	dst := make([]any, len(src))
	if _, err := unpack(rb, dst, 0, 1, dt); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("field %d: got %v want %v", i, dst[i], src[i])
		}
	}
}

func TestStructDatatypeFieldTypeMismatch(t *testing.T) {
	dt, err := Struct([]int{1}, []int{0}, []*Datatype{DOUBLE})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pack([]any{"not a float64"}, 0, 1, dt); err == nil {
		t.Fatal("wrong field type accepted")
	}
	if _, err := pack([]float64{1}, 0, 1, dt); err == nil {
		t.Fatal("non-[]any buffer accepted for struct type")
	}
}

func TestPackNilAllBaseTypes(t *testing.T) {
	for _, dt := range []*Datatype{BYTE, BOOLEAN, CHAR, SHORT, INT, LONG, FLOAT, DOUBLE, OBJECT} {
		b, err := pack(nil, 0, 0, dt)
		if err != nil {
			t.Fatalf("%s: %v", dt, err)
		}
		rb := mpjbuf.New(0)
		if err := rb.LoadWire(b.Wire()); err != nil {
			t.Fatalf("%s: %v", dt, err)
		}
		if n, err := unpack(rb, nil, 0, 0, dt); err != nil || n != 0 {
			t.Fatalf("%s: unpack nil = (%d, %v)", dt, n, err)
		}
	}
}

func TestDatatypeString(t *testing.T) {
	if DOUBLE.String() != "DOUBLE" {
		t.Errorf("DOUBLE.String() = %q", DOUBLE.String())
	}
	v, _ := INT.Vector(2, 1, 3)
	if !strings.Contains(v.String(), "VECTOR") {
		t.Errorf("vector name %q", v.String())
	}
}

func TestProcessAccessors(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if p.Rank() != w.Rank() || p.Size() != 2 {
			t.Errorf("accessors rank=%d size=%d", p.Rank(), p.Size())
		}
		if p.Device() == nil {
			t.Error("Device() nil")
		}
	})
}

// TestGatherBinomialAllTypes pushes every element type through the
// binomial gather's copy helpers.
func TestGatherBinomialAllTypes(t *testing.T) {
	const n = 4
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		check := func(err error, what string) bool {
			if err != nil {
				t.Errorf("%s: %v", what, err)
				return false
			}
			return true
		}
		// float64
		fsend := []float64{float64(rank) + 0.5}
		var frecv []float64
		if rank == 0 {
			frecv = make([]float64, n)
		}
		if !check(w.Gather(fsend, 0, 1, DOUBLE, frecv, 0, 1, DOUBLE, 0), "double") {
			return
		}
		// bool
		bsend := []bool{rank%2 == 0}
		var brecv []bool
		if rank == 0 {
			brecv = make([]bool, n)
		}
		if !check(w.Gather(bsend, 0, 1, BOOLEAN, brecv, 0, 1, BOOLEAN, 0), "boolean") {
			return
		}
		// uint16 / int16 / byte / float32 / int64
		csend := []uint16{uint16(rank)}
		var crecv []uint16
		if rank == 0 {
			crecv = make([]uint16, n)
		}
		if !check(w.Gather(csend, 0, 1, CHAR, crecv, 0, 1, CHAR, 0), "char") {
			return
		}
		ssend := []int16{int16(-rank)}
		var srecv []int16
		if rank == 0 {
			srecv = make([]int16, n)
		}
		if !check(w.Gather(ssend, 0, 1, SHORT, srecv, 0, 1, SHORT, 0), "short") {
			return
		}
		bysend := []byte{byte(rank + 1)}
		var byrecv []byte
		if rank == 0 {
			byrecv = make([]byte, n)
		}
		if !check(w.Gather(bysend, 0, 1, BYTE, byrecv, 0, 1, BYTE, 0), "byte") {
			return
		}
		flsend := []float32{float32(rank) * 2}
		var flrecv []float32
		if rank == 0 {
			flrecv = make([]float32, n)
		}
		if !check(w.Gather(flsend, 0, 1, FLOAT, flrecv, 0, 1, FLOAT, 0), "float") {
			return
		}
		lsend := []int64{int64(rank) << 33}
		var lrecv []int64
		if rank == 0 {
			lrecv = make([]int64, n)
		}
		if !check(w.Gather(lsend, 0, 1, LONG, lrecv, 0, 1, LONG, 0), "long") {
			return
		}
		if rank == 0 {
			for r := 0; r < n; r++ {
				if frecv[r] != float64(r)+0.5 || crecv[r] != uint16(r) ||
					srecv[r] != int16(-r) || byrecv[r] != byte(r+1) ||
					flrecv[r] != float32(r)*2 || lrecv[r] != int64(r)<<33 ||
					brecv[r] != (r%2 == 0) {
					t.Errorf("rank %d block mismatch", r)
					return
				}
			}
		}
	})
}

// TestPackExplicitAllTypes drives appendSections over every section
// kind.
func TestPackExplicitAllTypes(t *testing.T) {
	pb, err := Pack([]byte{1}, 0, 1, BYTE, nil)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		buf any
		dt  *Datatype
	}{
		{[]bool{true}, BOOLEAN},
		{[]uint16{7}, CHAR},
		{[]int16{-2}, SHORT},
		{[]int32{3}, INT},
		{[]int64{4}, LONG},
		{[]float32{1.5}, FLOAT},
		{[]float64{2.5}, DOUBLE},
		{[]any{"o"}, OBJECT},
	}
	for _, st := range steps {
		pb, err = Pack(st.buf, 0, 1, st.dt, pb)
		if err != nil {
			t.Fatalf("%s: %v", st.dt, err)
		}
	}
	rb := mpjbuf.New(0)
	if err := rb.LoadWire(pb.Wire()); err != nil {
		t.Fatal(err)
	}
	by := make([]byte, 1)
	if _, err := Unpack(rb, by, 0, 1, BYTE); err != nil || by[0] != 1 {
		t.Fatalf("byte: %v %v", by, err)
	}
	bo := make([]bool, 1)
	if _, err := Unpack(rb, bo, 0, 1, BOOLEAN); err != nil || !bo[0] {
		t.Fatalf("bool: %v %v", bo, err)
	}
	ch := make([]uint16, 1)
	if _, err := Unpack(rb, ch, 0, 1, CHAR); err != nil || ch[0] != 7 {
		t.Fatalf("char: %v %v", ch, err)
	}
	sh := make([]int16, 1)
	if _, err := Unpack(rb, sh, 0, 1, SHORT); err != nil || sh[0] != -2 {
		t.Fatalf("short: %v %v", sh, err)
	}
	in := make([]int32, 1)
	if _, err := Unpack(rb, in, 0, 1, INT); err != nil || in[0] != 3 {
		t.Fatalf("int: %v %v", in, err)
	}
	lo := make([]int64, 1)
	if _, err := Unpack(rb, lo, 0, 1, LONG); err != nil || lo[0] != 4 {
		t.Fatalf("long: %v %v", lo, err)
	}
	fl := make([]float32, 1)
	if _, err := Unpack(rb, fl, 0, 1, FLOAT); err != nil || fl[0] != 1.5 {
		t.Fatalf("float: %v %v", fl, err)
	}
	db := make([]float64, 1)
	if _, err := Unpack(rb, db, 0, 1, DOUBLE); err != nil || db[0] != 2.5 {
		t.Fatalf("double: %v %v", db, err)
	}
	ob := make([]any, 1)
	if _, err := Unpack(rb, ob, 0, 1, OBJECT); err != nil || ob[0] != "o" {
		t.Fatalf("object: %v %v", ob, err)
	}
}
