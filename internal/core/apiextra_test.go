package core

import (
	"testing"
	"time"

	"mpj/internal/mpjbuf"
)

func TestRangeIncl(t *testing.T) {
	g := NewGroup(pidsOf(0, 1, 2, 3, 4, 5, 6, 7))
	sub, err := g.RangeIncl([][3]int{{0, 6, 2}, {7, 7, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 2, 4, 6, 7}
	if sub.Size() != len(want) {
		t.Fatalf("size %d", sub.Size())
	}
	for i, id := range want {
		if sub.pids[i].UUID != id {
			t.Fatalf("pids %v", sub.PIDs())
		}
	}
	// Descending stride.
	desc, err := g.RangeIncl([][3]int{{3, 1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if desc.pids[0].UUID != 3 || desc.pids[2].UUID != 1 {
		t.Fatalf("desc %v", desc.PIDs())
	}
	if _, err := g.RangeIncl([][3]int{{0, 3, 0}}); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := g.RangeIncl([][3]int{{3, 0, 1}}); err == nil {
		t.Error("empty ascending range accepted")
	}
	if _, err := g.RangeIncl([][3]int{{0, 99, 1}}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestRangeExcl(t *testing.T) {
	g := NewGroup(pidsOf(0, 1, 2, 3, 4, 5))
	sub, err := g.RangeExcl([][3]int{{1, 5, 2}}) // drop 1,3,5
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 2, 4}
	if sub.Size() != 3 {
		t.Fatalf("size %d", sub.Size())
	}
	for i, id := range want {
		if sub.pids[i].UUID != id {
			t.Fatalf("pids %v", sub.PIDs())
		}
	}
}

func TestPackUnpackExplicit(t *testing.T) {
	pb, err := Pack([]int32{1, 2, 3}, 0, 3, INT, nil)
	if err != nil {
		t.Fatal(err)
	}
	pb, err = Pack([]float64{1.5, 2.5}, 0, 2, DOUBLE, pb)
	if err != nil {
		t.Fatal(err)
	}
	if got := PackSize(3, INT) + PackSize(2, DOUBLE); got < pb.WireLen() {
		t.Errorf("PackSize bound %d < actual %d", got, pb.WireLen())
	}
	rb := mpjbuf.New(0)
	if err := rb.LoadWire(pb.Wire()); err != nil {
		t.Fatal(err)
	}
	ints := make([]int32, 3)
	if _, err := Unpack(rb, ints, 0, 3, INT); err != nil {
		t.Fatal(err)
	}
	dbls := make([]float64, 2)
	if _, err := Unpack(rb, dbls, 0, 2, DOUBLE); err != nil {
		t.Fatal(err)
	}
	if ints[2] != 3 || dbls[1] != 2.5 {
		t.Fatalf("ints=%v dbls=%v", ints, dbls)
	}
}

func TestPackedBufferTravelsAsMessage(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			pb, err := Pack([]int32{9, 8}, 0, 2, INT, nil)
			if err != nil {
				t.Error(err)
				return
			}
			pb, err = Pack([]any{"tail"}, 0, 1, OBJECT, pb)
			if err != nil {
				t.Error(err)
				return
			}
			if err := w.SendBuffer(pb, 1, 0); err != nil {
				t.Error(err)
			}
		} else {
			rb := mpjbuf.New(0)
			if _, err := w.RecvBuffer(rb, 0, 0); err != nil {
				t.Error(err)
				return
			}
			ints := make([]int32, 2)
			if _, err := Unpack(rb, ints, 0, 2, INT); err != nil {
				t.Error(err)
				return
			}
			objs := make([]any, 1)
			if _, err := Unpack(rb, objs, 0, 1, OBJECT); err != nil {
				t.Error(err)
				return
			}
			if ints[0] != 9 || objs[0] != "tail" {
				t.Errorf("ints=%v objs=%v", ints, objs)
			}
		}
	})
}

func TestSendrecvReplace(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		peer := 1 - w.Rank()
		buf := []int64{int64(w.Rank() + 10)}
		st, err := w.SendrecvReplace(buf, 0, 1, LONG, peer, 3, peer, 3)
		if err != nil {
			t.Error(err)
			return
		}
		if buf[0] != int64(peer+10) {
			t.Errorf("rank %d: buf = %d", w.Rank(), buf[0])
		}
		if st.Source != peer {
			t.Errorf("status %+v", st)
		}
	})
}

func TestWaitSomeTestSome(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			// Two receives; peer satisfies both promptly.
			b1, b2 := make([]int64, 1), make([]int64, 1)
			r1, err := w.Irecv(b1, 0, 1, LONG, 1, 1)
			if err != nil {
				t.Error(err)
				return
			}
			r2, err := w.Irecv(b2, 0, 1, LONG, 1, 2)
			if err != nil {
				t.Error(err)
				return
			}
			reqs := []*Request{r1, r2}
			done := map[int]bool{}
			for len(done) < 2 {
				idx, sts, err := WaitSome(reqs)
				if err != nil {
					t.Error(err)
					return
				}
				if len(idx) == 0 {
					t.Error("WaitSome returned nothing")
					return
				}
				for k, i := range idx {
					if sts[k].Tag != i+1 {
						t.Errorf("index %d tag %d", i, sts[k].Tag)
					}
					done[i] = true
					reqs[i] = nil
				}
			}
			// TestSome over the emptied array is a harmless no-op.
			idx, _, err := TestSome(reqs)
			if err != nil || len(idx) != 0 {
				t.Errorf("TestSome over nils: %v %v", idx, err)
			}
		} else {
			w.Send([]int64{1}, 0, 1, LONG, 0, 1)
			w.Send([]int64{2}, 0, 1, LONG, 0, 2)
		}
	})
}

func TestCartSub(t *testing.T) {
	const n = 6
	runWorld(t, n, func(p *Process, w *Intracomm) {
		cart, err := w.CreateCart([]int{2, 3}, []bool{false, true}, false)
		if err != nil || cart == nil {
			t.Errorf("cart: %v", err)
			return
		}
		// Keep dimension 1: rows become independent 1-D grids of 3.
		rowGrid, err := cart.Sub([]bool{false, true})
		if err != nil {
			t.Error(err)
			return
		}
		if rowGrid == nil {
			t.Error("member got nil subgrid")
			return
		}
		if rowGrid.Size() != 3 {
			t.Errorf("row size %d", rowGrid.Size())
		}
		d := rowGrid.Dims()
		if len(d) != 1 || d[0] != 3 {
			t.Errorf("row dims %v", d)
		}
		if !rowGrid.Periods()[0] {
			t.Error("periodicity not inherited")
		}
		// Sum ranks within the row: every member of a row must agree.
		sum := make([]int32, 1)
		if err := rowGrid.Allreduce([]int32{int32(cart.Rank())}, 0, sum, 0, 1, INT, SUM); err != nil {
			t.Error(err)
			return
		}
		row := cart.MyCoords()[0]
		want := int32(3*row*3 + 0 + 1 + 2) // ranks 3r,3r+1,3r+2
		if sum[0] != want {
			t.Errorf("row %d sum %d want %d", row, sum[0], want)
		}
		if _, err := cart.Sub([]bool{true}); err == nil {
			t.Error("wrong flag count accepted")
		}
	})
}

func TestWtime(t *testing.T) {
	a := Wtime()
	time.Sleep(2 * time.Millisecond)
	b := Wtime()
	if b <= a {
		t.Fatalf("Wtime not increasing: %v then %v", a, b)
	}
	if Wtick() <= 0 {
		t.Fatal("Wtick not positive")
	}
}
