package core

import (
	"fmt"

	"mpj/internal/mpjbuf"
)

// This file bridges typed user arrays and the mpjbuf wire buffers: the
// "packing and unpacking" overhead the paper's §V-E analyses. Derived
// datatypes gather their elements into a contiguous scratch area before
// packing (paper §IV-C: "the first column is copied to a contiguous
// area, which is used for the actual send").

// bufferElems reports the length of a supported message buffer.
func bufferElems(buf any) (int, error) {
	switch s := buf.(type) {
	case []byte:
		return len(s), nil
	case []bool:
		return len(s), nil
	case []uint16:
		return len(s), nil
	case []int16:
		return len(s), nil
	case []int32:
		return len(s), nil
	case []int64:
		return len(s), nil
	case []float32:
		return len(s), nil
	case []float64:
		return len(s), nil
	case []any:
		return len(s), nil
	case nil:
		return 0, nil
	}
	return 0, fmt.Errorf("core: unsupported buffer type %T", buf)
}

// span returns the number of elements an operation of count items
// touches, and validates the range against the buffer length.
// span validates an (offset, count) range against the buffer length.
// op is a constant verb; dt.name joins it only in the error formats, so
// the hot path never concatenates strings.
func span(dt *Datatype, offset, count, bufLen int, op string) error {
	if count < 0 || offset < 0 {
		return fmt.Errorf("core: %s %s: negative offset/count (%d, %d)", op, dt.name, offset, count)
	}
	if count == 0 {
		return nil
	}
	need := offset + (count-1)*dt.extent + dt.spanOne()
	if need > bufLen {
		return fmt.Errorf("core: %s: datatype %s needs %d elements, buffer has %d",
			op, dt.name, need, bufLen)
	}
	return nil
}

// spanOne returns the element span of a single item.
func (d *Datatype) spanOne() int {
	if d.fields != nil {
		return d.extent
	}
	max := 0
	for _, disp := range d.disps {
		if disp+1 > max {
			max = disp + 1
		}
	}
	return max
}

// checkBase verifies the buffer's element type against the datatype.
func checkBase(dt *Datatype, want mpjbuf.Type, buf any) error {
	if dt.fields != nil {
		if want != mpjbuf.ObjectType {
			return fmt.Errorf("core: struct datatype requires []any buffer, have %T", buf)
		}
		return nil
	}
	if dt.base != want {
		return fmt.Errorf("core: datatype %s incompatible with buffer %T", dt.name, buf)
	}
	return nil
}

func gatherPack[T any](
	write func([]T, int, int) error,
	src []T, offset, count int, dt *Datatype,
) error {
	if dt.IsContiguous() {
		return write(src, offset, count*dt.extent)
	}
	scratch := make([]T, 0, count*len(dt.disps))
	for i := 0; i < count; i++ {
		base := offset + i*dt.extent
		for _, disp := range dt.disps {
			scratch = append(scratch, src[base+disp])
		}
	}
	return write(scratch, 0, len(scratch))
}

func scatterUnpack[T any](
	read func([]T, int, int) (int, error),
	dst []T, offset, count int, dt *Datatype,
) (int, error) {
	if dt.IsContiguous() {
		return read(dst, offset, count*dt.extent)
	}
	scratch := make([]T, count*len(dt.disps))
	n, err := read(scratch, 0, len(scratch))
	if err != nil {
		return 0, err
	}
	k := 0
scatter:
	for i := 0; i < count; i++ {
		base := offset + i*dt.extent
		for _, disp := range dt.disps {
			if k >= n {
				break scatter
			}
			dst[base+disp] = scratch[k]
			k++
		}
	}
	return n, nil
}

// pack serializes count items of dt from buf (starting at offset) into
// a fresh wire buffer.
func pack(buf any, offset, count int, dt *Datatype) (*mpjbuf.Buffer, error) {
	b := mpjbuf.New(0)
	if err := packInto(b, buf, offset, count, dt); err != nil {
		return nil, err
	}
	return b, nil
}

// packInto serializes count items of dt from buf (starting at offset)
// into b, which must be fresh or Reset — the blocking paths reuse
// pooled buffers through here. The section payload size is known up
// front, so the buffer is presized exactly: a pooled buffer whose
// retained capacity is too small (or a message past mpjbuf's retention
// bound) costs one allocation, not a doubling overshoot.
func packInto(b *mpjbuf.Buffer, buf any, offset, count int, dt *Datatype) error {
	if dt == nil {
		return fmt.Errorf("core: nil datatype")
	}
	b.Grow(count*dt.Size()*max(dt.base.Size(), 1) + 16)
	n, err := bufferElems(buf)
	if err != nil {
		return err
	}
	if err := span(dt, offset, count, n, "pack"); err != nil {
		return err
	}
	if dt.fields != nil {
		s, ok := buf.([]any)
		if !ok {
			return fmt.Errorf("core: struct datatype requires []any buffer, have %T", buf)
		}
		return packStruct(b, s, offset, count, dt)
	}
	switch s := buf.(type) {
	case []byte:
		err = errOr(checkBase(dt, mpjbuf.ByteType, buf), func() error {
			return gatherPack(b.WriteBytes, s, offset, count, dt)
		})
	case []bool:
		err = errOr(checkBase(dt, mpjbuf.BooleanType, buf), func() error {
			return gatherPack(b.WriteBooleans, s, offset, count, dt)
		})
	case []uint16:
		err = errOr(checkBase(dt, mpjbuf.CharType, buf), func() error {
			return gatherPack(b.WriteChars, s, offset, count, dt)
		})
	case []int16:
		err = errOr(checkBase(dt, mpjbuf.ShortType, buf), func() error {
			return gatherPack(b.WriteShorts, s, offset, count, dt)
		})
	case []int32:
		err = errOr(checkBase(dt, mpjbuf.IntType, buf), func() error {
			return gatherPack(b.WriteInts, s, offset, count, dt)
		})
	case []int64:
		err = errOr(checkBase(dt, mpjbuf.LongType, buf), func() error {
			return gatherPack(b.WriteLongs, s, offset, count, dt)
		})
	case []float32:
		err = errOr(checkBase(dt, mpjbuf.FloatType, buf), func() error {
			return gatherPack(b.WriteFloats, s, offset, count, dt)
		})
	case []float64:
		err = errOr(checkBase(dt, mpjbuf.DoubleType, buf), func() error {
			return gatherPack(b.WriteDoubles, s, offset, count, dt)
		})
	case []any:
		err = errOr(checkBase(dt, mpjbuf.ObjectType, buf), func() error {
			return gatherPack(b.WriteObjects, s, offset, count, dt)
		})
	case nil:
		// Zero-element message: pack an empty section of the base type.
		err = packEmpty(b, dt)
	default:
		err = fmt.Errorf("core: unsupported buffer type %T", buf)
	}
	return err
}

func packEmpty(b *mpjbuf.Buffer, dt *Datatype) error {
	switch dt.base {
	case mpjbuf.ByteType:
		return b.WriteBytes(nil, 0, 0)
	case mpjbuf.BooleanType:
		return b.WriteBooleans(nil, 0, 0)
	case mpjbuf.CharType:
		return b.WriteChars(nil, 0, 0)
	case mpjbuf.ShortType:
		return b.WriteShorts(nil, 0, 0)
	case mpjbuf.IntType:
		return b.WriteInts(nil, 0, 0)
	case mpjbuf.LongType:
		return b.WriteLongs(nil, 0, 0)
	case mpjbuf.FloatType:
		return b.WriteFloats(nil, 0, 0)
	case mpjbuf.DoubleType:
		return b.WriteDoubles(nil, 0, 0)
	default:
		return b.WriteObjects(nil, 0, 0)
	}
}

func errOr(err error, fn func() error) error {
	if err != nil {
		return err
	}
	return fn()
}

// unpack deserializes a received wire buffer into count items of dt in
// buf, returning the number of base elements stored.
func unpack(b *mpjbuf.Buffer, buf any, offset, count int, dt *Datatype) (int, error) {
	if dt == nil {
		return 0, fmt.Errorf("core: nil datatype")
	}
	n, err := bufferElems(buf)
	if err != nil {
		return 0, err
	}
	if buf == nil {
		// Zero-element receive: consume and discard the section.
		_, cnt, ok := b.PeekSection()
		if ok && cnt == 0 {
			return 0, nil
		}
		if !ok {
			return 0, nil
		}
		return 0, fmt.Errorf("core: nil receive buffer for non-empty message (%d elements)", cnt)
	}
	if err := span(dt, offset, count, n, "unpack"); err != nil {
		return 0, err
	}
	if dt.fields != nil {
		s, ok := buf.([]any)
		if !ok {
			return 0, fmt.Errorf("core: struct datatype requires []any buffer, have %T", buf)
		}
		return unpackStruct(b, s, offset, count, dt)
	}
	switch s := buf.(type) {
	case []byte:
		if err := checkBase(dt, mpjbuf.ByteType, buf); err != nil {
			return 0, err
		}
		return scatterUnpack(b.ReadBytes, s, offset, count, dt)
	case []bool:
		if err := checkBase(dt, mpjbuf.BooleanType, buf); err != nil {
			return 0, err
		}
		return scatterUnpack(b.ReadBooleans, s, offset, count, dt)
	case []uint16:
		if err := checkBase(dt, mpjbuf.CharType, buf); err != nil {
			return 0, err
		}
		return scatterUnpack(b.ReadChars, s, offset, count, dt)
	case []int16:
		if err := checkBase(dt, mpjbuf.ShortType, buf); err != nil {
			return 0, err
		}
		return scatterUnpack(b.ReadShorts, s, offset, count, dt)
	case []int32:
		if err := checkBase(dt, mpjbuf.IntType, buf); err != nil {
			return 0, err
		}
		return scatterUnpack(b.ReadInts, s, offset, count, dt)
	case []int64:
		if err := checkBase(dt, mpjbuf.LongType, buf); err != nil {
			return 0, err
		}
		return scatterUnpack(b.ReadLongs, s, offset, count, dt)
	case []float32:
		if err := checkBase(dt, mpjbuf.FloatType, buf); err != nil {
			return 0, err
		}
		return scatterUnpack(b.ReadFloats, s, offset, count, dt)
	case []float64:
		if err := checkBase(dt, mpjbuf.DoubleType, buf); err != nil {
			return 0, err
		}
		return scatterUnpack(b.ReadDoubles, s, offset, count, dt)
	case []any:
		if err := checkBase(dt, mpjbuf.ObjectType, buf); err != nil {
			return 0, err
		}
		return scatterUnpack(b.ReadObjects, s, offset, count, dt)
	}
	return 0, fmt.Errorf("core: unsupported buffer type %T", buf)
}

// packStruct packs count items of a struct datatype from an []any
// buffer: each field block becomes a typed section.
func packStruct(b *mpjbuf.Buffer, src []any, offset, count int, dt *Datatype) error {
	for i := 0; i < count; i++ {
		base := offset + i*dt.extent
		for fi, f := range dt.fields {
			start := base + f.disp
			if err := packStructField(b, src[start:start+f.blocklen], f); err != nil {
				return fmt.Errorf("core: struct item %d field %d: %w", i, fi, err)
			}
		}
	}
	return nil
}

func packStructField(b *mpjbuf.Buffer, vals []any, f structField) error {
	switch f.typ.base {
	case mpjbuf.IntType:
		s := make([]int32, len(vals))
		for i, v := range vals {
			x, ok := v.(int32)
			if !ok {
				return fmt.Errorf("field value %T, want int32", v)
			}
			s[i] = x
		}
		return b.WriteInts(s, 0, len(s))
	case mpjbuf.LongType:
		s := make([]int64, len(vals))
		for i, v := range vals {
			x, ok := v.(int64)
			if !ok {
				return fmt.Errorf("field value %T, want int64", v)
			}
			s[i] = x
		}
		return b.WriteLongs(s, 0, len(s))
	case mpjbuf.FloatType:
		s := make([]float32, len(vals))
		for i, v := range vals {
			x, ok := v.(float32)
			if !ok {
				return fmt.Errorf("field value %T, want float32", v)
			}
			s[i] = x
		}
		return b.WriteFloats(s, 0, len(s))
	case mpjbuf.DoubleType:
		s := make([]float64, len(vals))
		for i, v := range vals {
			x, ok := v.(float64)
			if !ok {
				return fmt.Errorf("field value %T, want float64", v)
			}
			s[i] = x
		}
		return b.WriteDoubles(s, 0, len(s))
	case mpjbuf.ByteType:
		s := make([]byte, len(vals))
		for i, v := range vals {
			x, ok := v.(byte)
			if !ok {
				return fmt.Errorf("field value %T, want byte", v)
			}
			s[i] = x
		}
		return b.WriteBytes(s, 0, len(s))
	case mpjbuf.BooleanType:
		s := make([]bool, len(vals))
		for i, v := range vals {
			x, ok := v.(bool)
			if !ok {
				return fmt.Errorf("field value %T, want bool", v)
			}
			s[i] = x
		}
		return b.WriteBooleans(s, 0, len(s))
	default:
		return b.WriteObjects(vals, 0, len(vals))
	}
}

// unpackStruct reverses packStruct.
func unpackStruct(b *mpjbuf.Buffer, dst []any, offset, count int, dt *Datatype) (int, error) {
	total := 0
	for i := 0; i < count; i++ {
		base := offset + i*dt.extent
		for fi, f := range dt.fields {
			start := base + f.disp
			n, err := unpackStructField(b, dst[start:start+f.blocklen], f)
			if err != nil {
				return total, fmt.Errorf("core: struct item %d field %d: %w", i, fi, err)
			}
			total += n
		}
	}
	return total, nil
}

func unpackStructField(b *mpjbuf.Buffer, out []any, f structField) (int, error) {
	switch f.typ.base {
	case mpjbuf.IntType:
		s := make([]int32, len(out))
		n, err := b.ReadInts(s, 0, len(s))
		for i := 0; i < n; i++ {
			out[i] = s[i]
		}
		return n, err
	case mpjbuf.LongType:
		s := make([]int64, len(out))
		n, err := b.ReadLongs(s, 0, len(s))
		for i := 0; i < n; i++ {
			out[i] = s[i]
		}
		return n, err
	case mpjbuf.FloatType:
		s := make([]float32, len(out))
		n, err := b.ReadFloats(s, 0, len(s))
		for i := 0; i < n; i++ {
			out[i] = s[i]
		}
		return n, err
	case mpjbuf.DoubleType:
		s := make([]float64, len(out))
		n, err := b.ReadDoubles(s, 0, len(s))
		for i := 0; i < n; i++ {
			out[i] = s[i]
		}
		return n, err
	case mpjbuf.ByteType:
		s := make([]byte, len(out))
		n, err := b.ReadBytes(s, 0, len(s))
		for i := 0; i < n; i++ {
			out[i] = s[i]
		}
		return n, err
	case mpjbuf.BooleanType:
		s := make([]bool, len(out))
		n, err := b.ReadBooleans(s, 0, len(s))
		for i := 0; i < n; i++ {
			out[i] = s[i]
		}
		return n, err
	default:
		return b.ReadObjects(out, 0, len(out))
	}
}
