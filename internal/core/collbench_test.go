package core

import (
	"fmt"
	"testing"
)

// BenchmarkColl is the collective performance matrix: four collectives
// × three payload sizes × three communicator sizes, each measured with
// the pipeline disabled (flat: the store-and-forward baselines) and
// with the size-tuned selection on (pipe). Payload is the total
// message a rank broadcasts/reduces; for Allgather it is the total
// gathered result, split evenly across ranks.
//
//	go test ./internal/core -bench BenchmarkColl -run '^$'
func BenchmarkColl(b *testing.B) {
	sizes := []struct {
		name  string
		bytes int
	}{
		{"1KiB", 1 << 10},
		{"64KiB", 64 << 10},
		{"1MiB", 1 << 20},
	}
	nps := []int{4, 8, 16}
	modes := []struct {
		name  string
		force collForce
	}{
		{"flat", forceFlat},
		{"pipe", forceAuto},
	}

	type collCase struct {
		name string
		body func(w *Intracomm, elems int, in, out []int64) error
	}
	colls := []collCase{
		{"Bcast", func(w *Intracomm, elems int, in, _ []int64) error {
			return w.Bcast(in, 0, elems, LONG, 0)
		}},
		{"Reduce", func(w *Intracomm, elems int, in, out []int64) error {
			return w.Reduce(in, 0, out, 0, elems, LONG, SUM, 0)
		}},
		{"Allreduce", func(w *Intracomm, elems int, in, out []int64) error {
			return w.Allreduce(in, 0, out, 0, elems, LONG, SUM)
		}},
		{"Allgather", func(w *Intracomm, elems int, in, out []int64) error {
			per := elems / w.Size()
			return w.Allgather(in, 0, per, LONG, out, 0, per, LONG)
		}},
	}

	for _, cc := range colls {
		b.Run(cc.name, func(b *testing.B) {
			for _, sz := range sizes {
				b.Run(sz.name, func(b *testing.B) {
					for _, np := range nps {
						b.Run(fmt.Sprintf("np%d", np), func(b *testing.B) {
							for _, mode := range modes {
								b.Run(mode.name, func(b *testing.B) {
									restore := setColl(defaultSegmentBytes, defaultCollWindow, mode.force)
									defer restore()
									elems := sz.bytes / 8
									b.SetBytes(int64(sz.bytes))
									runWorldBench(b, np, func(p *Process, w *Intracomm) error {
										in := make([]int64, elems)
										for i := range in {
											in[i] = int64(w.Rank() + i)
										}
										out := make([]int64, elems)
										// Only rank 0 touches the timer: concurrent
										// ResetTimer/StopTimer from every rank race and
										// can zero the measurement. The barriers fence
										// the measured region.
										if err := w.Barrier(); err != nil {
											return err
										}
										if w.Rank() == 0 {
											b.ResetTimer()
										}
										for i := 0; i < b.N; i++ {
											if err := cc.body(w, elems, in, out); err != nil {
												return err
											}
										}
										if err := w.Barrier(); err != nil {
											return err
										}
										if w.Rank() == 0 {
											b.StopTimer()
										}
										return nil
									})
								})
							}
						})
					}
				})
			}
		})
	}
}
