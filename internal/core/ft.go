package core

// ULFM-style fault tolerance (the MPI Forum's User-Level Failure
// Mitigation proposal): Revoke poisons a communicator job-wide so no
// operation on it can hang on a dead rank, Agree reaches uniform
// agreement among the survivors even when participants die
// mid-protocol, and Shrink builds a working communicator over the
// survivors. Together they let an application that lost a rank fence
// off the damaged communicator, agree on who is left, and continue on
// a smaller one (typically restoring state from a checkpoint — see
// internal/ckpt).
//
// The agreement protocol runs on a private recovery context that is
// never revoked: communicator contexts are allocated upward from zero
// (Process.allocContexts), so the negative context space is free, and
// each communicator's recovery channel lives at -(ptpCtx+1). Messages
// there are handled by a per-communicator responder goroutine that
// stays alive after Agree returns, which is what makes the protocol
// safe against coordinator death: a rank that already holds the
// decided value keeps answering queries about it, so a later
// coordinator adopts the delivered decision instead of recomputing a
// divergent one.

import (
	"fmt"
	"sync"
	"time"

	"mpj/internal/devcore"
	"mpj/internal/mpe"
	"mpj/internal/mpjdev"
	"mpj/internal/xdev"
)

// Agreement message tags on the recovery context. All messages carry
// four int64 words: sequence number, coordinator epoch, value, flag.
const (
	agTagContribute = 1 // participant -> coordinator: my flag word
	agTagQuery      = 2 // new coordinator -> survivor: decided yet?
	agTagReply      = 3 // survivor -> coordinator: (decided, value)
	agTagDecide     = 4 // coordinator -> participant: the decision
)

// ftPollEvery is how often a blocked agreement step re-checks peer
// liveness while waiting for protocol progress.
const ftPollEvery = 25 * time.Millisecond

// agReply is one survivor's answer to a coordinator's query.
type agReply struct {
	decided bool
	value   int64
}

// ftState is a communicator's fault-tolerance machinery: the recovery
// endpoint, the responder goroutine's protocol memory, and the change
// broadcast blocked agreement steps wait on.
type ftState struct {
	comm    *mpjdev.Comm     // recovery-context endpoint (negative ctx, never revoked)
	checker xdev.PeerChecker // nil when the device cannot report liveness

	mu      sync.Mutex
	change  chan struct{} // closed+replaced on every state change
	nextSeq uint64
	contrib map[uint64]map[int]int64              // seq -> rank -> contributed flag
	decided map[uint64]*int64                     // seq -> agreed value
	replies map[uint64]map[uint64]map[int]agReply // seq -> epoch -> rank -> reply
	err     error                                 // responder terminal error (device closed)
	done    chan struct{}                         // closed when the responder exits
}

// ftInit lazily starts the communicator's recovery machinery. The
// responder runs until the device closes; contributions that arrive
// before a rank's first Agree park in the device's unexpected queue
// and are consumed when the responder starts.
func (c *Comm) ftInit() *ftState {
	p := c.p
	p.ftMu.Lock()
	defer p.ftMu.Unlock()
	if p.fts == nil {
		p.fts = make(map[int]*ftState)
	}
	f := p.fts[c.ptp.Context()]
	if f == nil {
		f = &ftState{
			comm:    c.ptp.Dup(-c.ptp.Context() - 1),
			change:  make(chan struct{}),
			contrib: make(map[uint64]map[int]int64),
			decided: make(map[uint64]*int64),
			replies: make(map[uint64]map[uint64]map[int]agReply),
			done:    make(chan struct{}),
		}
		if ck, ok := p.dev.(xdev.PeerChecker); ok {
			f.checker = ck
		}
		go f.serve()
		p.fts[c.ptp.Context()] = f
	}
	return f
}

// bcastLocked wakes every blocked agreement step by retiring the
// current change generation. Callers hold f.mu.
func (f *ftState) bcastLocked() {
	close(f.change)
	f.change = make(chan struct{})
}

// send transmits one protocol message, best effort: a send that fails
// because the destination died is dropped — the protocol's liveness
// polling covers the loss.
func (f *ftState) send(dst, tag int, seq, epoch uint64, value, flag int64) {
	buf := devcore.GetBuffer()
	defer devcore.PutBuffer(buf)
	w := [4]int64{int64(seq), int64(epoch), value, flag}
	if err := buf.WriteLongs(w[:], 0, 4); err != nil {
		return
	}
	_ = f.comm.Send(buf, dst, tag)
}

// peerDead reports whether the device has recorded rank's death.
func (f *ftState) peerDead(rank int) bool {
	if f.checker == nil {
		return false
	}
	pid, ok := f.comm.PID(rank)
	if !ok {
		return false
	}
	return f.checker.PeerErr(pid) != nil
}

// serve is the responder goroutine: it receives every protocol message
// addressed to this rank and updates the shared state. Crucially it
// answers agTagQuery for sequences whose Agree call has long returned,
// which is what lets a replacement coordinator recover a decision that
// the original coordinator only partially delivered before dying.
func (f *ftState) serve() {
	defer close(f.done)
	for {
		buf := devcore.GetBuffer()
		st, err := f.comm.Recv(buf, mpjdev.AnySource, mpjdev.AnyTag)
		if err != nil {
			devcore.PutBuffer(buf)
			f.mu.Lock()
			if f.err == nil {
				f.err = err
			}
			f.bcastLocked()
			f.mu.Unlock()
			return
		}
		var w [4]int64
		_, rerr := buf.ReadLongs(w[:], 0, 4)
		devcore.PutBuffer(buf)
		if rerr != nil {
			continue
		}
		seq, epoch, val := uint64(w[0]), uint64(w[1]), w[2]
		switch st.Tag {
		case agTagContribute:
			f.mu.Lock()
			m := f.contrib[seq]
			if m == nil {
				m = make(map[int]int64)
				f.contrib[seq] = m
			}
			m[st.Source] = val
			f.bcastLocked()
			f.mu.Unlock()
		case agTagQuery:
			f.mu.Lock()
			d := f.decided[seq]
			f.mu.Unlock()
			if d != nil {
				f.send(st.Source, agTagReply, seq, epoch, *d, 1)
			} else {
				f.send(st.Source, agTagReply, seq, epoch, 0, 0)
			}
		case agTagReply:
			f.mu.Lock()
			es := f.replies[seq]
			if es == nil {
				es = make(map[uint64]map[int]agReply)
				f.replies[seq] = es
			}
			rs := es[epoch]
			if rs == nil {
				rs = make(map[int]agReply)
				es[epoch] = rs
			}
			rs[st.Source] = agReply{decided: w[3] == 1, value: val}
			f.bcastLocked()
			f.mu.Unlock()
		case agTagDecide:
			f.mu.Lock()
			if f.decided[seq] == nil {
				v := val
				f.decided[seq] = &v
			}
			f.bcastLocked()
			f.mu.Unlock()
		}
	}
}

// wait blocks until pred (evaluated under f.mu) holds or the responder
// died. It re-evaluates on every state change and every ftPollEvery,
// so predicates that consult peer liveness make progress when a peer
// dies silently.
func (f *ftState) wait(pred func() bool) error {
	for {
		f.mu.Lock()
		if pred() {
			f.mu.Unlock()
			return nil
		}
		if f.err != nil {
			err := f.err
			f.mu.Unlock()
			return err
		}
		ch := f.change
		f.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(ftPollEvery):
		}
	}
}

// agree drives one agreement sequence to a decision. Coordinators
// rotate by epoch: the coordinator of epoch e is rank e mod size, and
// every rank advances its epoch only on observing the current
// coordinator's death, so survivors converge on the same leader.
func (f *ftState) agree(seq uint64, size, self int) (int64, error) {
	for epoch := uint64(0); ; epoch++ {
		coord := int(epoch % uint64(size))
		if coord == self {
			return f.lead(seq, epoch, size, self)
		}
		if f.peerDead(coord) {
			continue
		}
		f.mu.Lock()
		myFlag := f.contrib[seq][self]
		f.mu.Unlock()
		f.send(coord, agTagContribute, seq, epoch, myFlag, 0)
		var out int64
		found := false
		err := f.wait(func() bool {
			if d := f.decided[seq]; d != nil {
				out, found = *d, true
				return true
			}
			return f.peerDead(coord)
		})
		if err != nil {
			return 0, err
		}
		if found {
			return out, nil
		}
		// The coordinator died before delivering a decision here; the
		// next epoch's coordinator takes over.
	}
}

// lead runs the coordinator role for one epoch: recover any earlier
// decision, else gather the survivors' contributions, AND them, and
// broadcast the result.
func (f *ftState) lead(seq, epoch uint64, size, self int) (int64, error) {
	if epoch > 0 {
		// An earlier coordinator may have delivered a decision to some
		// survivors before dying. Uniformity requires adopting it: query
		// everyone still alive and wait until each has replied or died.
		queried := make(map[int]bool)
		for r := 0; r < size; r++ {
			if r == self || f.peerDead(r) {
				continue
			}
			f.send(r, agTagQuery, seq, epoch, 0, 0)
			queried[r] = true
		}
		err := f.wait(func() bool {
			rs := f.replies[seq][epoch]
			for r := range queried {
				if _, ok := rs[r]; !ok && !f.peerDead(r) {
					return false
				}
			}
			return true
		})
		if err != nil {
			return 0, err
		}
		f.mu.Lock()
		for _, rep := range f.replies[seq][epoch] {
			if rep.decided && f.decided[seq] == nil {
				v := rep.value
				f.decided[seq] = &v
			}
		}
		f.mu.Unlock()
	}
	// Gather: wait until every rank has contributed or died. A rank
	// that dies after contributing stays in the AND — including more
	// information is always safe; what matters is never excluding a
	// survivor.
	err := f.wait(func() bool {
		if f.decided[seq] != nil {
			return true
		}
		m := f.contrib[seq]
		for r := 0; r < size; r++ {
			if r == self {
				continue
			}
			if _, ok := m[r]; !ok && !f.peerDead(r) {
				return false
			}
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	d := f.decided[seq]
	if d == nil {
		v := int64(-1) // all-ones: the identity of bitwise AND
		for _, fl := range f.contrib[seq] {
			v &= fl
		}
		d = &v
		f.decided[seq] = d
	}
	value := *d
	f.mu.Unlock()
	for r := 0; r < size; r++ {
		if r == self || f.peerDead(r) {
			continue
		}
		f.send(r, agTagDecide, seq, 0, value, 0)
	}
	return value, nil
}

// Revoke poisons the communicator job-wide (MPI_Comm_revoke): every
// pending and future point-to-point, collective and one-sided
// operation on it — at every rank, not just the caller — fails
// promptly with an error satisfying errors.Is(err, xdev.ErrRevoked)
// instead of blocking on a dead rank. Revocation is not collective:
// any single rank that detects a failure calls it, and the device
// floods it to the survivors. It is idempotent and permanent; Agree
// and Shrink still work on a revoked communicator because they run on
// its never-revoked recovery context.
func (c *Comm) Revoke() error {
	rv, ok := c.p.dev.(xdev.Revoker)
	if !ok {
		return fmt.Errorf("core: Revoke: device %T cannot revoke matching contexts", c.p.dev)
	}
	c.p.counters.CommRevokes.Add(1)
	if err := rv.Revoke(c.ptp.Context()); err != nil {
		return err
	}
	if err := rv.Revoke(c.coll.Context()); err != nil {
		return err
	}
	// Windows created on this communicator have private contexts of
	// their own: revoke them so every rank's handler and epoch waiters
	// fail, and poison the local side immediately so a caller blocked
	// in Fence/Lock/Unlock does not wait for the device round-trip.
	c.p.winMu.Lock()
	wins := append([]*Win(nil), c.p.wins[c.ptp.Context()]...)
	c.p.winMu.Unlock()
	for _, w := range wins {
		_ = rv.Revoke(w.ctx)
		w.w.Poison(fmt.Errorf("core: communicator revoked: %w", xdev.ErrRevoked))
	}
	return nil
}

// Agree performs fault-tolerant agreement (MPI_Comm_agree): it returns
// the bitwise AND of every contributed flag word, computed uniformly —
// all ranks that return successfully observe the same value, even when
// participants (including the coordinating rank) die mid-protocol.
// Collective over the communicator's surviving members; a rank that
// died before contributing is excluded from the AND. Agreement works
// on a revoked communicator. Calls must be made in the same order on
// every rank, like all collectives.
func (c *Comm) Agree(flag int64) (int64, error) {
	f := c.ftInit()
	f.mu.Lock()
	seq := f.nextSeq
	f.nextSeq++
	m := f.contrib[seq]
	if m == nil {
		m = make(map[int]int64)
		f.contrib[seq] = m
	}
	m[c.Rank()] = flag
	f.mu.Unlock()
	v, err := f.agree(seq, c.Size(), c.Rank())
	if err != nil {
		return 0, err
	}
	c.p.counters.CommAgrees.Add(1)
	// Record/verify the agreed value: agreement outcomes depend on which
	// ranks were alive to contribute, a nondeterminism devcore never
	// sees. A replayed run that agrees on a different word has diverged.
	if s := c.p.replay; s != nil {
		if s.Recording() {
			c.p.counters.DecisionsRecorded.Add(1)
		}
		if s.Replaying() {
			c.p.counters.DecisionsEnforced.Add(1)
		}
		if rerr := s.Agree(int64(c.ptp.Context()), v); rerr != nil {
			return 0, rerr
		}
	}
	return v, nil
}

// Shrink returns a new communicator over the survivors
// (MPI_Comm_shrink): the ranks every participant agrees are alive,
// ordered by their old ranks. Collective over the survivors; it works
// on a revoked communicator. The caller's rank in the result is its
// position among the survivors. Because context allocation is aligned
// by collective-call order, the shrunken communicator's contexts agree
// across survivors without extra communication.
//
// A rank that died undetected may survive the agreement and appear in
// the new group; operations on the new communicator then fail and the
// application revokes and shrinks again — the ULFM model.
func (c *Intracomm) Shrink() (*Intracomm, error) {
	n := c.Size()
	if n > 64 {
		return nil, fmt.Errorf("core: Shrink: groups larger than 64 ranks not supported (have %d)", n)
	}
	traced := c.p.rec.Enabled()
	var start int64
	if traced {
		start = c.p.rec.Now()
	}
	f := c.ftInit()
	alive := int64(0)
	for r := 0; r < n; r++ {
		if r == c.Rank() || !f.peerDead(r) {
			alive |= int64(1) << uint(r)
		}
	}
	// AND of alive-masks = complement of the union of everyone's
	// suspects: a rank is kept only if nobody saw it die.
	mask, err := c.Agree(alive)
	if err != nil {
		return nil, err
	}
	var ranks []int
	newRank := Undefined
	for r := 0; r < n; r++ {
		if mask&(int64(1)<<uint(r)) == 0 {
			continue
		}
		if r == c.Rank() {
			newRank = len(ranks)
		}
		ranks = append(ranks, r)
	}
	if newRank == Undefined {
		return nil, fmt.Errorf("core: Shrink: the group agreed this rank failed")
	}
	g, err := c.group.Incl(ranks)
	if err != nil {
		return nil, err
	}
	nc, err := c.p.newIntracomm(g, newRank)
	if err != nil {
		return nil, err
	}
	c.p.counters.CommShrinks.Add(1)
	if traced {
		c.p.rec.Span(mpe.Recovered, -1, 0, int32(c.ptp.Context()), int64(n-len(ranks)), start)
	}
	return nc, nil
}
