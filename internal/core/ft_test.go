package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mpj/internal/xdev"
)

// TestAgree checks plain agreement: the result is the bitwise AND of
// every rank's contribution, identical everywhere.
func TestAgree(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	got := make(map[int]int64)
	runWorld(t, n, func(p *Process, w *Intracomm) {
		flag := int64(0b1111) &^ (1 << uint(w.Rank())) // each rank clears its own bit
		v, err := w.Agree(flag)
		if err != nil {
			t.Errorf("rank %d: Agree: %v", w.Rank(), err)
			return
		}
		mu.Lock()
		got[w.Rank()] = v
		mu.Unlock()
	})
	for r, v := range got {
		if v != 0 {
			t.Errorf("rank %d: Agree = %#b, want 0 (AND of all contributions)", r, v)
		}
	}
}

// TestAgreeRepeated checks that consecutive agreement rounds stay in
// step (sequence numbers align across ranks).
func TestAgreeRepeated(t *testing.T) {
	const n = 3
	runWorld(t, n, func(p *Process, w *Intracomm) {
		for round := 0; round < 5; round++ {
			want := int64(^round)
			v, err := w.Agree(want)
			if err != nil {
				t.Errorf("rank %d round %d: Agree: %v", w.Rank(), round, err)
				return
			}
			if v != want {
				t.Errorf("rank %d round %d: Agree = %d, want %d", w.Rank(), round, v, want)
			}
		}
	})
}

// TestAgreeCoordinatorDies kills the epoch-0 coordinator (rank 0)
// mid-protocol: the survivors have already sent it their contributions
// and are waiting for its decision when it dies. They must rotate to
// the next coordinator, recover via the query phase, and agree
// uniformly — the dead rank's contribution is excluded.
func TestAgreeCoordinatorDies(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	got := make(map[int]int64)
	runWorld(t, n, func(p *Process, w *Intracomm) {
		if w.Rank() == 0 {
			// Let the survivors enter the protocol and block on this
			// coordinator, then die without ever participating.
			time.Sleep(100 * time.Millisecond)
			p.Finalize()
			return
		}
		v, err := w.Agree(int64(0b111000 | w.Rank()))
		if err != nil {
			t.Errorf("rank %d: Agree: %v", w.Rank(), err)
			return
		}
		mu.Lock()
		got[w.Rank()] = v
		mu.Unlock()
	})
	if len(got) != n-1 {
		t.Fatalf("only %d survivors returned, want %d", len(got), n-1)
	}
	var first int64
	seen := false
	for r, v := range got {
		if !seen {
			first, seen = v, true
			continue
		}
		if v != first {
			t.Errorf("rank %d: Agree = %d, disagrees with %d — agreement not uniform", r, v, first)
		}
	}
	// AND of survivors' flags: 0b111000 | (1&2&3) = 0b111000.
	if seen && first != 0b111000 {
		t.Errorf("agreed value = %#b, want %#b", first, 0b111000)
	}
}

// TestShrinkAfterRankLoss is the survivor-continues scenario: a rank
// dies, the others revoke the damaged communicator, shrink it, and run
// a collective on the result.
func TestShrinkAfterRankLoss(t *testing.T) {
	const n = 4
	const victim = 2
	runWorld(t, n, func(p *Process, w *Intracomm) {
		if w.Rank() == victim {
			p.Finalize()
			return
		}
		// Wait until the device has recorded the death so the shrink
		// excludes the victim deterministically.
		pid, _ := w.Group().PID(victim)
		deadline := time.Now().Add(5 * time.Second)
		ck := p.Device().(xdev.PeerChecker)
		for ck.PeerErr(pid) == nil {
			if time.Now().After(deadline) {
				t.Errorf("rank %d: victim death never detected", w.Rank())
				return
			}
			time.Sleep(time.Millisecond)
		}
		if err := w.Revoke(); err != nil {
			t.Errorf("rank %d: Revoke: %v", w.Rank(), err)
			return
		}
		nw, err := w.Shrink()
		if err != nil {
			t.Errorf("rank %d: Shrink: %v", w.Rank(), err)
			return
		}
		if nw.Size() != n-1 {
			t.Errorf("rank %d: shrunken size = %d, want %d", w.Rank(), nw.Size(), n-1)
			return
		}
		// Old rank 3 must have become new rank 2 (survivors keep old order).
		wantRank := w.Rank()
		if w.Rank() > victim {
			wantRank--
		}
		if nw.Rank() != wantRank {
			t.Errorf("old rank %d: new rank = %d, want %d", w.Rank(), nw.Rank(), wantRank)
		}
		// The shrunken communicator must be fully operational.
		in := []int64{int64(nw.Rank() + 1)}
		out := []int64{0}
		if err := nw.Allreduce(in, 0, out, 0, 1, LONG, SUM); err != nil {
			t.Errorf("rank %d: Allreduce on shrunken comm: %v", w.Rank(), err)
			return
		}
		if out[0] != 6 { // 1+2+3
			t.Errorf("rank %d: Allreduce = %d, want 6", w.Rank(), out[0])
		}
	})
}

// TestRevokeFailsPendingAndFutureOps checks that Revoke poisons the
// communicator everywhere: a receive already blocked on another rank
// fails with ErrRevoked, as does any operation issued afterwards,
// while a different communicator's traffic is untouched.
func TestRevokeFailsPendingAndFutureOps(t *testing.T) {
	const n = 3
	runWorld(t, n, func(p *Process, w *Intracomm) {
		other, err := w.Dup()
		if err != nil {
			t.Errorf("rank %d: Dup: %v", w.Rank(), err)
			return
		}
		if w.Rank() == 1 {
			// Block in a receive that no send will ever match; the
			// remote revocation must fail it promptly.
			buf := []int64{0}
			_, err := w.Recv(buf, 0, 1, LONG, 0, 42)
			if !errors.Is(err, xdev.ErrRevoked) {
				t.Errorf("rank 1: pending Recv err = %v, want ErrRevoked", err)
			}
		} else if w.Rank() == 0 {
			time.Sleep(50 * time.Millisecond) // let rank 1 block
			if err := w.Revoke(); err != nil {
				t.Errorf("rank 0: Revoke: %v", err)
			}
		}
		// Everyone: future operations on the revoked communicator fail.
		deadline := time.Now().Add(5 * time.Second)
		for {
			err := w.Send([]int64{1}, 0, 1, LONG, (w.Rank()+1)%n, 7)
			if errors.Is(err, xdev.ErrRevoked) {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("rank %d: Send err = %v, want ErrRevoked", w.Rank(), err)
				break
			}
			time.Sleep(time.Millisecond) // revocation still in flight
		}
		// A different communicator is unaffected.
		in, out := []int64{1}, []int64{0}
		if err := other.Allreduce(in, 0, out, 0, 1, LONG, SUM); err != nil {
			t.Errorf("rank %d: Allreduce on separate comm after revoke: %v", w.Rank(), err)
		} else if out[0] != n {
			t.Errorf("rank %d: Allreduce = %d, want %d", w.Rank(), out[0], n)
		}
		// Shrink still works on a revoked communicator (no deaths, so
		// the membership is unchanged but the contexts are fresh).
		nw, err := w.Shrink()
		if err != nil {
			t.Errorf("rank %d: Shrink of revoked comm: %v", w.Rank(), err)
			return
		}
		if nw.Size() != n || nw.Rank() != w.Rank() {
			t.Errorf("rank %d: shrink of intact group changed shape: size %d rank %d", w.Rank(), nw.Size(), nw.Rank())
		}
		if err := nw.Barrier(); err != nil {
			t.Errorf("rank %d: Barrier on replacement comm: %v", w.Rank(), err)
		}
	})
}

// TestRevokePoisonsWindow checks that revoking a communicator fails
// one-sided epochs on its windows instead of letting them hang.
func TestRevokePoisonsWindow(t *testing.T) {
	const n = 3
	runWorld(t, n, func(p *Process, w *Intracomm) {
		win, err := w.WinCreate(make([]byte, 64))
		if err != nil {
			t.Errorf("rank %d: WinCreate: %v", w.Rank(), err)
			return
		}
		if w.Rank() == 0 {
			time.Sleep(50 * time.Millisecond) // let the others reach Fence
			if err := w.Revoke(); err != nil {
				t.Errorf("rank 0: Revoke: %v", err)
			}
			if err := win.Fence(); !errors.Is(err, xdev.ErrRevoked) {
				t.Errorf("rank 0: Fence err = %v, want ErrRevoked", err)
			}
			return
		}
		// Ranks 1..n-1 fence immediately: rank 0 never will, so only the
		// revocation can release them.
		if err := win.Fence(); !errors.Is(err, xdev.ErrRevoked) {
			t.Errorf("rank %d: Fence err = %v, want ErrRevoked", w.Rank(), err)
		}
	})
}

// TestAgreeUnderConcurrentCollectives runs agreement rounds on the
// world concurrently with collectives on split communicators — the
// -race coverage for the recovery path sharing a device with live
// traffic.
func TestAgreeUnderConcurrentCollectives(t *testing.T) {
	const n = 4
	const rounds = 8
	runWorld(t, n, func(p *Process, w *Intracomm) {
		half, err := w.Split(w.Rank()%2, w.Rank())
		if err != nil {
			t.Errorf("rank %d: Split: %v", w.Rank(), err)
			return
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				in, out := []int64{int64(half.Rank() + 1)}, []int64{0}
				if err := half.Allreduce(in, 0, out, 0, 1, LONG, SUM); err != nil {
					t.Errorf("rank %d: split Allreduce: %v", w.Rank(), err)
					return
				}
				if out[0] != 3 { // ranks 1+2 within each half
					t.Errorf("rank %d: split Allreduce = %d, want 3", w.Rank(), out[0])
					return
				}
			}
		}()
		for i := 0; i < rounds; i++ {
			want := int64(i) | (1 << 40)
			v, err := w.Agree(want)
			if err != nil {
				t.Errorf("rank %d: Agree round %d: %v", w.Rank(), i, err)
				break
			}
			if v != want {
				t.Errorf("rank %d: Agree round %d = %d, want %d", w.Rank(), i, v, want)
				break
			}
		}
		wg.Wait()
	})
}
