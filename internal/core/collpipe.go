package core

import (
	"mpj/internal/devcore"
	"mpj/internal/mpjbuf"
	"mpj/internal/mpjdev"
)

// Segmented, pipelined collectives. Large payloads move as a stream of
// segments (collCfg.segBytes each) through bounded windows of
// nonblocking operations, so receiving segment k+1 overlaps folding or
// forwarding segment k. Each segment travels under its own tag
// (tagSegBase+index): a windowed receiver then stays correctly paired
// with its sender even on devices whose workers reorder the matching
// of same-signature operations (ibisdev). The tag space is reused by
// consecutive collectives, which is safe because every stream drains
// before its collective returns — a rank cannot have segments of two
// collectives outstanding at once.

// segTag returns the stream tag for segment index i.
func segTag(i int) int { return tagSegBase + i }

// segPlan slices a contiguous payload of elems base elements into
// segments of segElems (the last may be short).
type segPlan struct {
	elems    int
	segElems int
	segs     int
}

// planSegments fits collCfg.segBytes to the element size, aligning
// segment boundaries to the op's atom so per-segment reductions stay
// valid. atom <= 0 means the payload must not be split (user ops with
// unknown structure): the whole message becomes one segment, so the
// stream degenerates to a single windowed transfer.
func planSegments(elems, elemBytes, atom int) segPlan {
	if atom <= 0 {
		return segPlan{elems: elems, segElems: elems, segs: 1}
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	se := collCfg.segBytes / elemBytes
	if se < 1 {
		se = 1
	}
	se -= se % atom
	if se < atom {
		se = atom
	}
	segs := (elems + se - 1) / se
	if segs < 1 {
		segs = 1
	}
	return segPlan{elems: elems, segElems: se, segs: segs}
}

// bounds returns segment i's element offset and length.
func (p segPlan) bounds(i int) (off, n int) {
	off = i * p.segElems
	n = p.segElems
	if off+n > p.elems {
		n = p.elems - off
	}
	if n < 0 {
		n = 0
	}
	return off, n
}

// putSendBuf recycles a pooled wire buffer once its send completed.
func putSendBuf(b *mpjbuf.Buffer) { devcore.PutBuffer(b) }

// tempLike returns a contiguous temp slice with buf's element type,
// drawing []byte temps from devcore's power-of-two pool. put releases
// pooled storage and must be called exactly once, after the temp's
// last use.
func tempLike(buf any, n int) (any, func(), error) {
	if _, ok := buf.([]byte); ok {
		b := devcore.GetSlice(n)
		return b, func() { devcore.PutSlice(b) }, nil
	}
	t, err := allocLike(buf, n)
	return t, func() {}, err
}

// contiguousView returns count items of dt at offset as a contiguous
// base-element view. When dt is contiguous the view aliases buf
// directly (zero copy); otherwise the data is gathered into scratch
// and, when needBack is set (receive-side buffers), the returned
// writeback scatters it back through dt's layout.
func contiguousView(buf any, offset, count int, dt *Datatype, needBack bool) (view any, writeback func() error, err error) {
	if dt.IsContiguous() {
		n, err := bufferElems(buf)
		if err != nil {
			return nil, nil, err
		}
		if err := span(dt, offset, count, n, "view"); err != nil {
			return nil, nil, err
		}
		v, err := sliceRegion(buf, offset, count*dt.extent)
		if err != nil {
			return nil, nil, err
		}
		return v, nil, nil
	}
	scratch, err := toScratch(buf, offset, count, dt)
	if err != nil {
		return nil, nil, err
	}
	if !needBack {
		return scratch, nil, nil
	}
	return scratch, func() error { return fromScratch(scratch, buf, offset, count, dt) }, nil
}

// sendStream pushes segments of a contiguous payload to one
// destination through a bounded window of Isends. Wire buffers are
// pooled and recycled as the window drains.
type sendStream struct {
	c    *Comm
	dst  int
	win  *mpjdev.Window
	bufs []*mpjbuf.Buffer
}

func (c *Comm) newSendStream(dst int) *sendStream {
	return &sendStream{c: c, dst: dst, win: mpjdev.NewWindow(collCfg.window)}
}

// send packs view[off:off+n] and posts it under tag, waiting on the
// oldest in-flight segment first when the window is full.
func (s *sendStream) send(view any, off, n int, bdt *Datatype, tag int) error {
	if s.win.Full() {
		if _, err := s.win.WaitOldest(); err != nil {
			return err
		}
		putSendBuf(s.bufs[0])
		s.bufs = s.bufs[1:]
	}
	b := devcore.GetBuffer()
	if err := packInto(b, view, off, n, bdt); err != nil {
		putSendBuf(b)
		return err
	}
	req, err := s.c.coll.Isend(b, s.dst, tag)
	if err != nil {
		putSendBuf(b)
		return err
	}
	if err := s.win.Add(req); err != nil {
		return err
	}
	s.bufs = append(s.bufs, b)
	s.c.p.counters.CollSegsSent.Add(1)
	return nil
}

// drain waits for every in-flight segment and recycles its buffer.
func (s *sendStream) drain() error {
	err := s.win.Drain()
	for _, b := range s.bufs {
		putSendBuf(b)
	}
	s.bufs = nil
	return err
}

// pendSeg is one outstanding segment receive and its unpack target.
type pendSeg struct {
	buf    *mpjbuf.Buffer
	dst    any
	off, n int
}

// recvStream posts windowed segment receives from one source and
// delivers them in order, unpacking each into its recorded target
// region as it completes. The caller drives it: post up to the window
// limit ahead, then alternate deliver/post.
type recvStream struct {
	c    *Comm
	src  int
	bdt  *Datatype
	win  *mpjdev.Window
	pend []pendSeg
}

func (c *Comm) newRecvStream(src int, bdt *Datatype) *recvStream {
	return &recvStream{c: c, src: src, bdt: bdt, win: mpjdev.NewWindow(collCfg.window)}
}

// post starts the receive of one segment destined for dst[off:off+n].
func (r *recvStream) post(dst any, off, n, tag int) error {
	b := devcore.GetBuffer()
	req, err := r.c.coll.Irecv(b, r.src, tag)
	if err != nil {
		putSendBuf(b)
		return err
	}
	if err := r.win.Add(req); err != nil {
		return err
	}
	r.pend = append(r.pend, pendSeg{buf: b, dst: dst, off: off, n: n})
	return nil
}

// deliver waits for the oldest outstanding segment, unpacks it into
// its target region, and recycles the wire buffer.
func (r *recvStream) deliver() error {
	b, err := r.deliverKeep()
	if err == nil {
		putSendBuf(b)
	}
	return err
}

// deliverKeep is deliver, except the packed segment buffer is handed
// to the caller instead of recycled — a forwarding rank re-sends it to
// its children as-is, skipping the unpack→repack round trip.
func (r *recvStream) deliverKeep() (*mpjbuf.Buffer, error) {
	if _, err := r.win.WaitOldest(); err != nil {
		return nil, err
	}
	p := r.pend[0]
	r.pend = r.pend[1:]
	sub, err := sliceRegion(p.dst, p.off, p.n)
	if err != nil {
		putSendBuf(p.buf)
		return nil, err
	}
	if _, err := unpack(p.buf, sub, 0, p.n, r.bdt); err != nil {
		putSendBuf(p.buf)
		return nil, err
	}
	r.c.p.counters.CollSegsRecv.Add(1)
	return p.buf, nil
}

// fwdWindow is the bounded window of a rank that fans one packed
// segment buffer out to several children: the buffer is shared by all
// of a segment's sends and recycled only when the oldest segment's
// requests have all completed.
type fwdSeg struct {
	buf  *mpjbuf.Buffer
	reqs []*mpjdev.Request
}

type fwdWindow struct {
	limit int
	segs  []fwdSeg
}

func newFwdWindow() *fwdWindow { return &fwdWindow{limit: collCfg.window} }

// forward posts buf to every child under tag and enters it into the
// window, retiring the oldest segment first if the window is full.
// The window owns buf from here on, even on error.
func (f *fwdWindow) forward(c *Comm, buf *mpjbuf.Buffer, children []int, tag int) error {
	if len(f.segs) == f.limit {
		if err := f.retireOldest(); err != nil {
			putSendBuf(buf)
			return err
		}
	}
	seg := fwdSeg{buf: buf}
	for _, ch := range children {
		req, err := c.coll.Isend(buf, ch, tag)
		if err != nil {
			f.segs = append(f.segs, seg) // drain started sends via the window
			return err
		}
		seg.reqs = append(seg.reqs, req)
		c.p.counters.CollSegsSent.Add(1)
	}
	f.segs = append(f.segs, seg)
	return nil
}

func (f *fwdWindow) retireOldest() error {
	s := f.segs[0]
	f.segs = f.segs[1:]
	var first error
	for _, r := range s.reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	putSendBuf(s.buf)
	return first
}

func (f *fwdWindow) drain() error {
	var first error
	for len(f.segs) > 0 {
		if err := f.retireOldest(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// bcastPipelined is the segmented binomial-tree broadcast: the payload
// moves down the same tree as the flat Bcast, but a rank forwards
// segment k to its children as soon as it arrives, while segment k+1
// is still in flight from its parent. End-to-end latency drops from
// O(depth·msg) to O(depth·seg + msg).
func (c *Intracomm) bcastPipelined(buf any, offset, count int, dt *Datatype, root int) error {
	n := c.Size()
	rank := c.Rank()
	rel := (rank - root + n) % n

	// Tree neighbours, same shape as the flat Bcast: the parent sits at
	// rel minus its lowest set bit; children at rel+m for every m below
	// that bit (below the tree size for the root), largest subtree
	// first.
	parent := -1
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent = (rel - mask + root) % n
			break
		}
		mask <<= 1
	}
	var children []int
	for m := mask >> 1; m > 0; m >>= 1 {
		if rel+m < n {
			children = append(children, (rel+m+root)%n)
		}
	}
	return c.bcastPipeTree(buf, offset, count, dt, parent, children)
}

// bcastPipeTree runs the segmented broadcast stream over an explicit
// tree: parent is the rank segments arrive from (-1 at the root) and
// children the ranks each segment is forwarded to. The hierarchical
// broadcast feeds it a fused two-level tree (wire edges between node
// representatives, shared-memory edges within each node), so segments
// stream from the root through the leaders into the leaves with no
// phase barrier in between.
func (c *Intracomm) bcastPipeTree(buf any, offset, count int, dt *Datatype, parent int, children []int) error {
	if parent < 0 && len(children) == 0 {
		return nil
	}
	view, writeback, err := contiguousView(buf, offset, count, dt, parent >= 0)
	if err != nil {
		return err
	}
	bdt, err := baseDt(view)
	if err != nil {
		return err
	}
	plan := planSegments(count*dt.Size(), max(dt.Base().Size(), 1), 1)

	// One packed wire buffer per segment, shared by every child send:
	// the root packs each segment exactly once, and every other rank
	// forwards the buffer it received as-is — per message, the whole
	// tree packs once and each rank unpacks once, where the flat tree
	// repacks on every edge.
	fwd := newFwdWindow()
	if parent < 0 {
		for s := 0; s < plan.segs; s++ {
			off, cnt := plan.bounds(s)
			b := devcore.GetBuffer()
			if err := packInto(b, view, off, cnt, bdt); err != nil {
				putSendBuf(b)
				return err
			}
			if err := fwd.forward(&c.Comm, b, children, segTag(s)); err != nil {
				return err
			}
		}
	} else {
		rs := c.newRecvStream(parent, bdt)
		ahead := min(collCfg.window, plan.segs)
		for s := 0; s < ahead; s++ {
			off, cnt := plan.bounds(s)
			if err := rs.post(view, off, cnt, segTag(s)); err != nil {
				return err
			}
		}
		for s := 0; s < plan.segs; s++ {
			b, err := rs.deliverKeep()
			if err != nil {
				return err
			}
			if nxt := s + ahead; nxt < plan.segs {
				off, cnt := plan.bounds(nxt)
				if err := rs.post(view, off, cnt, segTag(nxt)); err != nil {
					putSendBuf(b)
					return err
				}
			}
			if len(children) == 0 {
				putSendBuf(b)
				continue
			}
			if err := fwd.forward(&c.Comm, b, children, segTag(s)); err != nil {
				return err
			}
		}
	}
	if err := fwd.drain(); err != nil {
		return err
	}
	if writeback != nil {
		return writeback()
	}
	return nil
}

// reducePipelined is the segmented binomial-tree reduce for
// commutative ops: for each segment a rank receives its children's
// contributions into per-child window rings, folds them in the same
// increasing-mask order as the flat tree, and forwards the folded
// segment to its parent while later segments are still arriving. The
// per-element fold nesting matches the flat algorithm exactly, so
// results are bit-identical to the unsegmented tree.
func (c *Intracomm) reducePipelined(scratch any, elems int, bdt *Datatype, op *Op,
	recvbuf any, roff, count int, dt *Datatype, root int) error {
	n := c.Size()
	rank := c.Rank()
	rel := (rank - root + n) % n

	parent := -1
	var children []int
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent = (rel - mask + root) % n
			break
		}
		if rel|mask < n {
			children = append(children, ((rel|mask)+root)%n)
		}
	}
	if err := c.reducePipeTree(scratch, elems, bdt, op, parent, children); err != nil {
		return err
	}
	if parent < 0 {
		return fromScratch(scratch, recvbuf, roff, count, dt)
	}
	return nil
}

// reducePipeTree runs the segmented commutative fold over an explicit
// tree: each rank folds its children's segment streams into scratch
// and forwards the folded segments to parent (-1 at the root, where
// the result stays in scratch). The hierarchical reduce feeds it a
// fused two-level tree, so a node representative folds its local
// members and its downstream representatives in one overlapped stream.
func (c *Intracomm) reducePipeTree(scratch any, elems int, bdt *Datatype, op *Op,
	parent int, children []int) error {
	if parent < 0 && len(children) == 0 {
		return nil
	}
	plan := planSegments(elems, max(bdt.Base().Size(), 1), op.atom)

	// Per-child receive streams unpack into window-sized rings of
	// segment slots, allocated once and reused across all segments
	// (slot s%window holds segment s; it is reused only after segment
	// s has been folded).
	type childStream struct {
		rs   *recvStream
		ring any
	}
	streams := make([]*childStream, len(children))
	var puts []func()
	defer func() {
		for _, put := range puts {
			put()
		}
	}()
	ahead := min(collCfg.window, plan.segs)
	for i, ch := range children {
		ring, put, err := tempLike(scratch, collCfg.window*plan.segElems)
		if err != nil {
			return err
		}
		puts = append(puts, put)
		streams[i] = &childStream{rs: c.newRecvStream(ch, bdt), ring: ring}
		for s := 0; s < ahead; s++ {
			_, cnt := plan.bounds(s)
			slot := (s % collCfg.window) * plan.segElems
			if err := streams[i].rs.post(ring, slot, cnt, segTag(s)); err != nil {
				return err
			}
		}
	}

	var ps *sendStream
	if parent >= 0 {
		ps = c.newSendStream(parent)
	}
	for s := 0; s < plan.segs; s++ {
		off, cnt := plan.bounds(s)
		seg, err := sliceRegion(scratch, off, cnt)
		if err != nil {
			return err
		}
		for _, cs := range streams {
			if err := cs.rs.deliver(); err != nil {
				return err
			}
			slot := (s % collCfg.window) * plan.segElems
			in, err := sliceRegion(cs.ring, slot, cnt)
			if err != nil {
				return err
			}
			if err := op.apply(in, seg); err != nil {
				return err
			}
			if nxt := s + ahead; nxt < plan.segs {
				_, ncnt := plan.bounds(nxt)
				nslot := (nxt % collCfg.window) * plan.segElems
				if err := cs.rs.post(cs.ring, nslot, ncnt, segTag(nxt)); err != nil {
					return err
				}
			}
		}
		if ps != nil {
			if err := ps.send(scratch, off, cnt, bdt, segTag(s)); err != nil {
				return err
			}
		}
	}
	if ps != nil {
		return ps.drain()
	}
	return nil
}

// reduceStreamedFold is the non-commutative Reduce: every rank streams
// its contribution to the root in windowed segments, and the root
// folds the streams strictly in rank order — seeding with rank n-1 and
// applying acc = p_i op acc for i = n-2..0, the same association and
// operand order as the flat rank-ordered fold, so results are
// bit-identical. Unlike the flat path, which buffers n-1 full
// messages, the root holds only a window of segments per peer:
// memory O(n·window·segment + message) instead of O(n·message).
func (c *Intracomm) reduceStreamedFold(scratch any, elems int, bdt *Datatype, op *Op,
	recvbuf any, roff, count int, dt *Datatype, root int) error {
	n := c.Size()
	rank := c.Rank()
	plan := planSegments(elems, max(bdt.Base().Size(), 1), op.atom)

	if rank != root {
		st := c.newSendStream(root)
		for s := 0; s < plan.segs; s++ {
			off, cnt := plan.bounds(s)
			if err := st.send(scratch, off, cnt, bdt, segTag(s)); err != nil {
				return err
			}
		}
		return st.drain()
	}

	acc, putAcc, err := tempLike(scratch, elems)
	if err != nil {
		return err
	}
	defer putAcc()

	ahead := min(collCfg.window, plan.segs)
	streams := make([]*recvStream, n)
	rings := make([]any, n)
	var puts []func()
	defer func() {
		for _, put := range puts {
			put()
		}
	}()
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		rs := c.newRecvStream(i, bdt)
		streams[i] = rs
		if i == n-1 {
			// The seed contribution streams straight into acc at its
			// final offsets: no intermediate copy.
			for s := 0; s < ahead; s++ {
				off, cnt := plan.bounds(s)
				if err := rs.post(acc, off, cnt, segTag(s)); err != nil {
					return err
				}
			}
			continue
		}
		ring, put, err := tempLike(scratch, collCfg.window*plan.segElems)
		if err != nil {
			return err
		}
		puts = append(puts, put)
		rings[i] = ring
		for s := 0; s < ahead; s++ {
			_, cnt := plan.bounds(s)
			slot := (s % collCfg.window) * plan.segElems
			if err := rs.post(ring, slot, cnt, segTag(s)); err != nil {
				return err
			}
		}
	}
	if root == n-1 {
		if err := copyElems(scratch, 0, acc, 0, elems); err != nil {
			return err
		}
	}

	// advance delivers stream i's current segment and keeps its window
	// topped up.
	advance := func(i, s int) error {
		if err := streams[i].deliver(); err != nil {
			return err
		}
		nxt := s + ahead
		if nxt >= plan.segs {
			return nil
		}
		off, cnt := plan.bounds(nxt)
		if i == n-1 {
			return streams[i].post(acc, off, cnt, segTag(nxt))
		}
		slot := (nxt % collCfg.window) * plan.segElems
		return streams[i].post(rings[i], slot, cnt, segTag(nxt))
	}

	for s := 0; s < plan.segs; s++ {
		off, cnt := plan.bounds(s)
		if root != n-1 {
			if err := advance(n-1, s); err != nil {
				return err
			}
		}
		accSeg, err := sliceRegion(acc, off, cnt)
		if err != nil {
			return err
		}
		for i := n - 2; i >= 0; i-- {
			var in any
			if i == root {
				if in, err = sliceRegion(scratch, off, cnt); err != nil {
					return err
				}
			} else {
				if err := advance(i, s); err != nil {
					return err
				}
				slot := (s % collCfg.window) * plan.segElems
				if in, err = sliceRegion(rings[i], slot, cnt); err != nil {
					return err
				}
			}
			if err := op.apply(in, accSeg); err != nil {
				return err
			}
		}
	}
	return fromScratch(acc, recvbuf, roff, count, dt)
}

// blockStream is one large scatter/gather block moving as a segment
// stream between the root and one peer.
type blockStream struct {
	peer      int
	plan      segPlan
	view      any
	bdt       *Datatype
	writeback func() error
}

// newBlockStream prepares one root-side block of count items of dt at
// offset for streaming (needBack for gather, where the root writes the
// received data back through dt's layout).
func newBlockStream(buf any, offset, count int, dt *Datatype, peer int, needBack bool) (*blockStream, error) {
	view, writeback, err := contiguousView(buf, offset, count, dt, needBack)
	if err != nil {
		return nil, err
	}
	bdt, err := baseDt(view)
	if err != nil {
		return nil, err
	}
	return &blockStream{
		peer:      peer,
		plan:      planSegments(count*dt.Size(), max(dt.Base().Size(), 1), 1),
		view:      view,
		bdt:       bdt,
		writeback: writeback,
	}, nil
}

// streamBlocksOut drives the root side of a segmented scatter:
// segment-major across the per-peer streams, so every destination's
// pipeline fills concurrently instead of one peer at a time.
func (c *Intracomm) streamBlocksOut(blocks []*blockStream) error {
	sends := make([]*sendStream, len(blocks))
	for i, b := range blocks {
		sends[i] = c.newSendStream(b.peer)
	}
	for s := 0; ; s++ {
		active := false
		for i, b := range blocks {
			if s >= b.plan.segs {
				continue
			}
			active = true
			off, cnt := b.plan.bounds(s)
			if err := sends[i].send(b.view, off, cnt, b.bdt, segTag(s)); err != nil {
				return err
			}
		}
		if !active {
			break
		}
	}
	for _, st := range sends {
		if err := st.drain(); err != nil {
			return err
		}
	}
	return nil
}

// streamBlocksIn drives the root side of a segmented gather: windowed
// receives from every streaming peer at once, delivered segment-major.
func (c *Intracomm) streamBlocksIn(blocks []*blockStream) error {
	recvs := make([]*recvStream, len(blocks))
	for i, b := range blocks {
		recvs[i] = c.newRecvStream(b.peer, b.bdt)
		ahead := min(collCfg.window, b.plan.segs)
		for s := 0; s < ahead; s++ {
			off, cnt := b.plan.bounds(s)
			if err := recvs[i].post(b.view, off, cnt, segTag(s)); err != nil {
				return err
			}
		}
	}
	for s := 0; ; s++ {
		active := false
		for i, b := range blocks {
			if s >= b.plan.segs {
				continue
			}
			active = true
			if err := recvs[i].deliver(); err != nil {
				return err
			}
			ahead := min(collCfg.window, b.plan.segs)
			if nxt := s + ahead; nxt < b.plan.segs {
				off, cnt := b.plan.bounds(nxt)
				if err := recvs[i].post(b.view, off, cnt, segTag(nxt)); err != nil {
					return err
				}
			}
		}
		if !active {
			break
		}
	}
	for _, b := range blocks {
		if b.writeback != nil {
			if err := b.writeback(); err != nil {
				return err
			}
		}
	}
	return nil
}

// streamBlockSend is the peer side of a segmented gather: stream the
// local contribution to the root.
func (c *Intracomm) streamBlockSend(buf any, offset, count int, dt *Datatype, root int) error {
	b, err := newBlockStream(buf, offset, count, dt, root, false)
	if err != nil {
		return err
	}
	return c.streamBlocksOut([]*blockStream{b})
}

// streamBlockRecv is the peer side of a segmented scatter: receive the
// local block as a stream from the root.
func (c *Intracomm) streamBlockRecv(buf any, offset, count int, dt *Datatype, root int) error {
	b, err := newBlockStream(buf, offset, count, dt, root, true)
	if err != nil {
		return err
	}
	return c.streamBlocksIn([]*blockStream{b})
}
