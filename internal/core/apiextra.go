package core

import (
	"fmt"
	"time"

	"mpj/internal/mpjbuf"
)

// This file completes the long tail of the mpijava 1.2 API surface:
// group ranges, explicit pack/unpack, Sendrecv_replace, Waitsome/
// Testsome, Cartesian subgrids, and the wall-clock utilities.

// ---- Group ranges (Group.Range_incl / Range_excl) ----

// RangeIncl builds a subgroup from [first, last, stride] triples, in
// triple order (MPI_Group_range_incl).
func (g *Group) RangeIncl(ranges [][3]int) (*Group, error) {
	var ranks []int
	for i, r := range ranges {
		first, last, stride := r[0], r[1], r[2]
		if stride == 0 {
			return nil, fmt.Errorf("core: RangeIncl: zero stride in triple %d", i)
		}
		if (stride > 0 && first > last) || (stride < 0 && first < last) {
			return nil, fmt.Errorf("core: RangeIncl: empty range in triple %d", i)
		}
		for rank := first; (stride > 0 && rank <= last) || (stride < 0 && rank >= last); rank += stride {
			ranks = append(ranks, rank)
		}
	}
	return g.Incl(ranks)
}

// RangeExcl builds the subgroup excluding the ranks covered by the
// triples (MPI_Group_range_excl).
func (g *Group) RangeExcl(ranges [][3]int) (*Group, error) {
	inc, err := g.RangeIncl(ranges)
	if err != nil {
		return nil, err
	}
	drop := make([]int, 0, inc.Size())
	for _, pid := range inc.pids {
		drop = append(drop, g.Rank(pid))
	}
	return g.Excl(drop)
}

// ---- explicit pack/unpack (MPI_Pack / MPI_Unpack) ----

// Pack appends count items of dt from buf (at offset) to the packing
// buffer pb, creating it when nil, and returns it. The result can be
// sent with SendBuffer or transmitted as BYTE data.
func Pack(buf any, offset, count int, dt *Datatype, pb *mpjbuf.Buffer) (*mpjbuf.Buffer, error) {
	tmp, err := pack(buf, offset, count, dt)
	if err != nil {
		return nil, err
	}
	if pb == nil || pb.Len() == 0 {
		return tmp, nil
	}
	// Append tmp's sections after pb's by replaying both into a fresh
	// buffer (buffers are value-cheap; sections self-describe).
	out := mpjbuf.New(pb.Len() + tmp.Len() + 16)
	if err := appendSections(out, pb); err != nil {
		return nil, err
	}
	if err := appendSections(out, tmp); err != nil {
		return nil, err
	}
	return out, nil
}

// appendSections re-writes every section of src into dst.
func appendSections(dst, src *mpjbuf.Buffer) error {
	rb := mpjbuf.New(0)
	if err := rb.LoadWire(src.Wire()); err != nil {
		return err
	}
	for {
		typ, count, ok := rb.PeekSection()
		if !ok {
			return nil
		}
		switch typ {
		case mpjbuf.ByteType:
			s := make([]byte, count)
			if _, err := rb.ReadBytes(s, 0, count); err != nil {
				return err
			}
			if err := dst.WriteBytes(s, 0, count); err != nil {
				return err
			}
		case mpjbuf.BooleanType:
			s := make([]bool, count)
			if _, err := rb.ReadBooleans(s, 0, count); err != nil {
				return err
			}
			if err := dst.WriteBooleans(s, 0, count); err != nil {
				return err
			}
		case mpjbuf.CharType:
			s := make([]uint16, count)
			if _, err := rb.ReadChars(s, 0, count); err != nil {
				return err
			}
			if err := dst.WriteChars(s, 0, count); err != nil {
				return err
			}
		case mpjbuf.ShortType:
			s := make([]int16, count)
			if _, err := rb.ReadShorts(s, 0, count); err != nil {
				return err
			}
			if err := dst.WriteShorts(s, 0, count); err != nil {
				return err
			}
		case mpjbuf.IntType:
			s := make([]int32, count)
			if _, err := rb.ReadInts(s, 0, count); err != nil {
				return err
			}
			if err := dst.WriteInts(s, 0, count); err != nil {
				return err
			}
		case mpjbuf.LongType:
			s := make([]int64, count)
			if _, err := rb.ReadLongs(s, 0, count); err != nil {
				return err
			}
			if err := dst.WriteLongs(s, 0, count); err != nil {
				return err
			}
		case mpjbuf.FloatType:
			s := make([]float32, count)
			if _, err := rb.ReadFloats(s, 0, count); err != nil {
				return err
			}
			if err := dst.WriteFloats(s, 0, count); err != nil {
				return err
			}
		case mpjbuf.DoubleType:
			s := make([]float64, count)
			if _, err := rb.ReadDoubles(s, 0, count); err != nil {
				return err
			}
			if err := dst.WriteDoubles(s, 0, count); err != nil {
				return err
			}
		case mpjbuf.ObjectType:
			s := make([]any, count)
			if _, err := rb.ReadObjects(s, 0, count); err != nil {
				return err
			}
			if err := dst.WriteObjects(s, 0, count); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: appendSections: unknown section type %v", typ)
		}
	}
}

// Unpack extracts the next count items of dt from the packing buffer
// into buf at offset (MPI_Unpack). The buffer must be committed (as
// returned by RecvBuffer or after Commit).
func Unpack(pb *mpjbuf.Buffer, buf any, offset, count int, dt *Datatype) (int, error) {
	return unpack(pb, buf, offset, count, dt)
}

// PackSize bounds the packed size in bytes of count items of dt
// (MPI_Pack_size).
func PackSize(count int, dt *Datatype) int {
	if dt == nil {
		return 0
	}
	elem := dt.Base().Size()
	if elem == 0 {
		elem = 64 // objects: a loose per-element estimate
	}
	const sectionHeader = 5
	return count*dt.Size()*elem + sectionHeader + 16
}

// ---- Sendrecv_replace ----

// SendrecvReplace exchanges in place: buf's items go to dst and are
// replaced by the message from src (MPI_Sendrecv_replace).
func (c *Comm) SendrecvReplace(buf any, offset, count int, dt *Datatype, dst, sendTag, src, recvTag int) (*Status, error) {
	// Stage the outgoing data first so the receive can overwrite.
	staged, err := pack(buf, offset, count, dt)
	if err != nil {
		return nil, err
	}
	sreq, err := c.ptp.Isend(staged, dst, sendTag)
	if err != nil {
		return nil, err
	}
	st, err := c.Recv(buf, offset, count, dt, src, recvTag)
	if err != nil {
		return nil, err
	}
	if _, err := sreq.Wait(); err != nil {
		return nil, err
	}
	return st, nil
}

// ---- Waitsome / Testsome ----

// WaitSome blocks until at least one non-nil request completes and
// returns the indices and statuses of all requests found complete
// (MPI_Waitsome). Completed entries should be set to nil by the caller
// before the next call.
func WaitSome(reqs []*Request) ([]int, []*Status, error) {
	idx, st, err := WaitAny(reqs)
	if err != nil {
		return nil, nil, err
	}
	indices := []int{idx}
	statuses := []*Status{st}
	// Harvest anything else already complete.
	for i, r := range reqs {
		if r == nil || i == idx {
			continue
		}
		s, ok, err := r.Test()
		if err != nil {
			return indices, statuses, err
		}
		if ok {
			indices = append(indices, i)
			statuses = append(statuses, s)
		}
	}
	return indices, statuses, nil
}

// TestSome returns the indices and statuses of all currently completed
// non-nil requests, possibly none (MPI_Testsome).
func TestSome(reqs []*Request) ([]int, []*Status, error) {
	var indices []int
	var statuses []*Status
	for i, r := range reqs {
		if r == nil {
			continue
		}
		s, ok, err := r.Test()
		if err != nil {
			return indices, statuses, err
		}
		if ok {
			indices = append(indices, i)
			statuses = append(statuses, s)
		}
	}
	return indices, statuses, nil
}

// ---- Cartesian subgrids (MPI_Cart_sub) ----

// Sub partitions the grid into lower-dimensional subgrids: remain[d]
// selects the dimensions kept; processes sharing the dropped
// coordinates land in the same subgrid communicator.
func (cc *CartComm) Sub(remain []bool) (*CartComm, error) {
	if len(remain) != len(cc.dims) {
		return nil, fmt.Errorf("core: Cart.Sub: want %d flags, have %d", len(cc.dims), len(remain))
	}
	coords := cc.MyCoords()
	// Color = the dropped coordinates; key = rank order within.
	color := 0
	for d, keep := range remain {
		if !keep {
			color = color*cc.dims[d] + coords[d]
		}
	}
	sub, err := cc.Split(color, cc.Rank())
	if err != nil {
		return nil, err
	}
	if sub == nil {
		return nil, nil
	}
	var dims []int
	var periods []bool
	for d, keep := range remain {
		if keep {
			dims = append(dims, cc.dims[d])
			periods = append(periods, cc.periods[d])
		}
	}
	if len(dims) == 0 {
		dims = []int{1}
		periods = []bool{false}
	}
	return &CartComm{Intracomm: *sub, dims: dims, periods: periods}, nil
}

// ---- timers (MPI_Wtime / MPI_Wtick) ----

var wtimeEpoch = time.Now()

// Wtime returns elapsed wall-clock seconds since an arbitrary fixed
// point in the past (MPI_Wtime).
func Wtime() float64 { return time.Since(wtimeEpoch).Seconds() }

// Wtick returns the resolution of Wtime in seconds (MPI_Wtick).
func Wtick() float64 { return 1e-9 }
