package core

import (
	"testing"

	"mpj/internal/xdev"
)

func pidsOf(ids ...uint64) []xdev.ProcessID {
	out := make([]xdev.ProcessID, len(ids))
	for i, id := range ids {
		out[i] = xdev.ProcessID{UUID: id}
	}
	return out
}

func TestGroupBasics(t *testing.T) {
	g := NewGroup(pidsOf(3, 1, 2))
	if g.Size() != 3 {
		t.Fatalf("size = %d", g.Size())
	}
	if g.Rank(xdev.ProcessID{UUID: 1}) != 1 {
		t.Fatal("rank lookup failed")
	}
	if g.Rank(xdev.ProcessID{UUID: 9}) != Undefined {
		t.Fatal("absent process has a rank")
	}
	if _, err := g.PID(3); err == nil {
		t.Fatal("out-of-range PID accepted")
	}
}

func TestGroupCompare(t *testing.T) {
	a := NewGroup(pidsOf(1, 2, 3))
	b := NewGroup(pidsOf(1, 2, 3))
	c := NewGroup(pidsOf(3, 2, 1))
	d := NewGroup(pidsOf(1, 2, 4))
	e := NewGroup(pidsOf(1, 2))
	if a.Compare(b) != Ident {
		t.Error("identical groups not Ident")
	}
	if a.Compare(c) != Similar {
		t.Error("permuted groups not Similar")
	}
	if a.Compare(d) != Unequal || a.Compare(e) != Unequal {
		t.Error("different groups not Unequal")
	}
}

func TestGroupSetOps(t *testing.T) {
	a := NewGroup(pidsOf(1, 2, 3))
	b := NewGroup(pidsOf(3, 4))

	u := a.Union(b)
	if u.Size() != 4 || u.Rank(xdev.ProcessID{UUID: 4}) != 3 {
		t.Errorf("union %v", u.PIDs())
	}
	i := a.Intersection(b)
	if i.Size() != 1 || i.Rank(xdev.ProcessID{UUID: 3}) != 0 {
		t.Errorf("intersection %v", i.PIDs())
	}
	d := a.Difference(b)
	if d.Size() != 2 || d.Rank(xdev.ProcessID{UUID: 3}) != Undefined {
		t.Errorf("difference %v", d.PIDs())
	}
}

func TestGroupInclExcl(t *testing.T) {
	g := NewGroup(pidsOf(10, 11, 12, 13))
	inc, err := g.Incl([]int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Size() != 2 || inc.pids[0].UUID != 13 || inc.pids[1].UUID != 10 {
		t.Errorf("incl %v", inc.PIDs())
	}
	if _, err := g.Incl([]int{7}); err == nil {
		t.Error("bad rank accepted by Incl")
	}
	exc, err := g.Excl([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if exc.Size() != 2 || exc.pids[0].UUID != 10 || exc.pids[1].UUID != 13 {
		t.Errorf("excl %v", exc.PIDs())
	}
	if _, err := g.Excl([]int{-1}); err == nil {
		t.Error("bad rank accepted by Excl")
	}
}

func TestTranslateRanks(t *testing.T) {
	a := NewGroup(pidsOf(1, 2, 3))
	b := NewGroup(pidsOf(3, 1))
	out, err := a.TranslateRanks([]int{0, 1, 2}, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, Undefined, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("translate = %v", out)
		}
	}
	if _, err := a.TranslateRanks([]int{9}, b); err == nil {
		t.Error("bad rank accepted")
	}
}

func TestCommGroupAndCompare(t *testing.T) {
	runWorld(t, 3, func(p *Process, w *Intracomm) {
		g := w.Group()
		if g.Size() != 3 {
			t.Errorf("world group size %d", g.Size())
		}
		dup, err := w.Dup()
		if err != nil {
			t.Error(err)
			return
		}
		if w.Compare(&dup.Comm) != Ident {
			t.Error("dup group differs")
		}
	})
}

func TestDupIsolatesTraffic(t *testing.T) {
	runWorld(t, 2, func(p *Process, w *Intracomm) {
		dup, err := w.Dup()
		if err != nil {
			t.Error(err)
			return
		}
		if w.Rank() == 0 {
			if err := w.Send([]int32{1}, 0, 1, INT, 1, 0); err != nil {
				t.Error(err)
			}
			if err := dup.Send([]int32{2}, 0, 1, INT, 1, 0); err != nil {
				t.Error(err)
			}
		} else {
			// Receive from the dup first: must get the dup's message.
			b := make([]int32, 1)
			if _, err := dup.Recv(b, 0, 1, INT, 0, 0); err != nil {
				t.Error(err)
				return
			}
			if b[0] != 2 {
				t.Errorf("dup delivered %d", b[0])
			}
			if _, err := w.Recv(b, 0, 1, INT, 0, 0); err != nil {
				t.Error(err)
				return
			}
			if b[0] != 1 {
				t.Errorf("world delivered %d", b[0])
			}
		}
	})
}

func TestSplitColorsAndKeys(t *testing.T) {
	const n = 6
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		color := rank % 2
		key := -rank // reverse order within each color
		sub, err := w.Split(color, key)
		if err != nil {
			t.Error(err)
			return
		}
		if sub == nil {
			t.Error("member got nil comm")
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size %d", sub.Size())
		}
		// Reverse key order: world rank 4 (color 0) gets sub rank 0.
		wantRank := map[int]int{4: 0, 2: 1, 0: 2, 5: 0, 3: 1, 1: 2}[rank]
		if sub.Rank() != wantRank {
			t.Errorf("world rank %d: sub rank %d, want %d", rank, sub.Rank(), wantRank)
		}
		// Traffic within the subcomm.
		sum := make([]int32, 1)
		if err := sub.Allreduce([]int32{int32(rank)}, 0, sum, 0, 1, INT, SUM); err != nil {
			t.Errorf("sub allreduce: %v", err)
			return
		}
		want := int32(0 + 2 + 4)
		if color == 1 {
			want = 1 + 3 + 5
		}
		if sum[0] != want {
			t.Errorf("color %d sum %d", color, sum[0])
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	runWorld(t, 3, func(p *Process, w *Intracomm) {
		color := 0
		if w.Rank() == 2 {
			color = Undefined
		}
		sub, err := w.Split(color, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if w.Rank() == 2 {
			if sub != nil {
				t.Error("Undefined color got a communicator")
			}
			return
		}
		if sub == nil || sub.Size() != 2 {
			t.Error("members did not get a 2-comm")
		}
	})
}

func TestCommCreateSubgroup(t *testing.T) {
	runWorld(t, 4, func(p *Process, w *Intracomm) {
		g, err := w.Group().Incl([]int{3, 1})
		if err != nil {
			t.Error(err)
			return
		}
		sub, err := w.Create(g)
		if err != nil {
			t.Error(err)
			return
		}
		switch w.Rank() {
		case 1, 3:
			if sub == nil {
				t.Error("member got nil")
				return
			}
			wantRank := 1
			if w.Rank() == 3 {
				wantRank = 0
			}
			if sub.Rank() != wantRank {
				t.Errorf("sub rank %d, want %d", sub.Rank(), wantRank)
			}
			// Quick traffic check.
			b := make([]int32, 1)
			if sub.Rank() == 0 {
				sub.Send([]int32{42}, 0, 1, INT, 1, 0)
			} else {
				sub.Recv(b, 0, 1, INT, 0, 0)
				if b[0] != 42 {
					t.Errorf("got %d", b[0])
				}
			}
		default:
			if sub != nil {
				t.Error("non-member got a communicator")
			}
		}
	})
}

func TestIntercomm(t *testing.T) {
	const n = 4
	runWorld(t, n, func(p *Process, w *Intracomm) {
		rank := w.Rank()
		color := rank % 2
		local, err := w.Split(color, rank)
		if err != nil || local == nil {
			t.Errorf("split: %v", err)
			return
		}
		// Leaders: local rank 0 of each side; remote leader ranks in
		// world: color 0's peer leader is world rank 1, and vice versa.
		remoteLeader := 1 - color
		inter, err := w.CreateIntercomm(local, 0, remoteLeader, 77)
		if err != nil {
			t.Errorf("create intercomm: %v", err)
			return
		}
		if inter.Size() != 2 || inter.RemoteSize() != 2 {
			t.Errorf("sizes %d/%d", inter.Size(), inter.RemoteSize())
		}
		if inter.Rank() != rank/2 {
			t.Errorf("local rank %d, want %d", inter.Rank(), rank/2)
		}
		// Each process sends to the same-index process on the other
		// side and receives from it.
		peer := inter.Rank()
		out := []int32{int32(rank * 11)}
		in := make([]int32, 1)
		req, err := inter.Isend(out, 0, 1, INT, peer, 5)
		if err != nil {
			t.Errorf("isend: %v", err)
			return
		}
		st, err := inter.Recv(in, 0, 1, INT, peer, 5)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if _, err := req.Wait(); err != nil {
			t.Error(err)
		}
		// The partner is the world rank with the other parity.
		wantFrom := rank - 1
		if color == 0 {
			wantFrom = rank + 1
		}
		if in[0] != int32(wantFrom*11) {
			t.Errorf("rank %d got %d, want %d", rank, in[0], wantFrom*11)
		}
		if st.Source != peer {
			t.Errorf("status source %d, want remote rank %d", st.Source, peer)
		}
		if inter.LocalGroup().Size() != 2 || inter.RemoteGroup().Size() != 2 {
			t.Error("group sizes wrong")
		}
	})
}
