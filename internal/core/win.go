package core

import (
	"fmt"
	"os"
	"strconv"

	"mpj/internal/mpjbuf"
	"mpj/internal/mpjdev"
	"mpj/internal/rma"
)

// One-sided communication (MPI-2 RMA) at the API layer: WinCreate
// exposes a rank-local byte region as a window; Put/Get/Accumulate
// access any rank's region without that rank posting a receive;
// Fence and Lock/Unlock provide active- and passive-target
// synchronization. The mechanics — shared-memory direct delivery on
// smpdev, active-message frames elsewhere — live in internal/rma.

// EnvRmaSegment sets the payload size, in bytes, that one-sided
// transfers are split into on the active-message path (default
// 64 KiB). Like the collective knobs it must agree across ranks only
// in the sense that each origin segments its own traffic; mismatched
// values are functionally harmless.
const EnvRmaSegment = "MPJ_RMA_SEGMENT"

// Lock types for Win.Lock (MPI_LOCK_SHARED / MPI_LOCK_EXCLUSIVE).
const (
	LockShared    = 1
	LockExclusive = 2
)

// REPLACE is the MPI_REPLACE accumulate operation: the incoming value
// overwrites the target element. It is not commutative — same-origin
// ordering matters — and is only meaningful to Accumulate, though its
// apply works anywhere an Op does.
var REPLACE = &Op{name: "REPLACE", commute: false, atom: 1, apply: func(in, inout any) error {
	switch a := in.(type) {
	case []byte:
		copy(inout.([]byte), a)
	case []int16:
		copy(inout.([]int16), a)
	case []int32:
		copy(inout.([]int32), a)
	case []int64:
		copy(inout.([]int64), a)
	case []float32:
		copy(inout.([]float32), a)
	case []float64:
		copy(inout.([]float64), a)
	default:
		return fmt.Errorf("core: REPLACE unsupported for %T", in)
	}
	return nil
}}

// rmaElem maps a base datatype to the rma wire element code.
func rmaElem(dt *Datatype) (rma.ElemType, error) {
	if dt == nil {
		return 0, fmt.Errorf("core: Accumulate: nil datatype")
	}
	switch dt.base {
	case mpjbuf.ByteType:
		return rma.Byte, nil
	case mpjbuf.IntType:
		return rma.Int32, nil
	case mpjbuf.LongType:
		return rma.Int64, nil
	case mpjbuf.FloatType:
		return rma.Float32, nil
	case mpjbuf.DoubleType:
		return rma.Float64, nil
	}
	return 0, fmt.Errorf("core: Accumulate: datatype %s not supported for one-sided ops", dt)
}

// rmaOp maps a reduction op to the rma wire code. Only built-ins
// travel: a user-defined op's function cannot be shipped to the
// target.
func rmaOp(op *Op) (rma.AccOp, error) {
	switch op {
	case REPLACE:
		return rma.Replace, nil
	case SUM:
		return rma.Sum, nil
	case PROD:
		return rma.Prod, nil
	case MAX:
		return rma.Max, nil
	case MIN:
		return rma.Min, nil
	case BAND:
		return rma.Band, nil
	case BOR:
		return rma.Bor, nil
	case BXOR:
		return rma.Bxor, nil
	}
	if op == nil {
		return 0, fmt.Errorf("core: Accumulate: nil op")
	}
	return 0, fmt.Errorf("core: Accumulate: op %s not supported for one-sided ops", op)
}

// Win is a window: each rank of the communicator exposes a byte region
// that every rank accesses one-sidedly (the mpijava Win class, MPI-2
// §11). Offsets and lengths are in bytes; multi-byte elements are
// little-endian, matching Accumulate's wire format.
type Win struct {
	comm *Intracomm
	w    *rma.Win
	ctx  int // the window's private matching context
}

// WinCreate exposes buf as this rank's region of a new window
// (MPI_Win_create). Collective over the communicator; regions may
// differ in size across ranks. The window gets a private matching
// context, so its traffic cannot collide with point-to-point or
// collective messages, and it starts inside a fence epoch: the return
// is itself a barrier.
func (c *Intracomm) WinCreate(buf []byte) (*Win, error) {
	ptpCtx, _ := c.p.allocContexts()
	dc, err := mpjdev.NewComm(c.p.dev, c.group.pids, c.Rank(), ptpCtx)
	if err != nil {
		return nil, err
	}
	seg := 0
	if v := os.Getenv(EnvRmaSegment); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			seg = n
		}
	}
	w, err := rma.New(dc, buf, rma.Config{
		Segment:  seg,
		Counters: c.p.counters,
		Recorder: c.p.rec,
	})
	if err != nil {
		return nil, err
	}
	win := &Win{comm: c, w: w, ctx: ptpCtx}
	c.p.winMu.Lock()
	if c.p.wins == nil {
		c.p.wins = make(map[int][]*Win)
	}
	key := c.ptp.Context()
	c.p.wins[key] = append(c.p.wins[key], win)
	c.p.winMu.Unlock()
	return win, nil
}

// Buffer returns the locally exposed region.
func (w *Win) Buffer() []byte { return w.w.Buffer() }

// Put copies data into target's region at byte offset off. It
// completes at the target by the closing Fence, or by Unlock when
// issued inside a lock epoch.
func (w *Win) Put(data []byte, target, off int) error { return w.w.Put(data, target, off) }

// Get copies len(dst) bytes from target's region at byte offset off;
// dst holds the data on return.
func (w *Win) Get(dst []byte, target, off int) error { return w.w.Get(dst, target, off) }

// Accumulate combines data into target's region element-wise:
// region[i] = op(region[i], data[i]), atomically per operation with
// respect to all other one-sided accesses (MPI_Accumulate). dt must be
// a base datatype (BYTE, INT, LONG, FLOAT, DOUBLE) and op a built-in
// (REPLACE, SUM, PROD, MAX, MIN, BAND, BOR, BXOR). Operations from the
// same origin apply in issue order; concurrent origins are unordered
// within an epoch.
func (w *Win) Accumulate(data []byte, target, off int, dt *Datatype, op *Op) error {
	et, err := rmaElem(dt)
	if err != nil {
		return err
	}
	ao, err := rmaOp(op)
	if err != nil {
		return err
	}
	return w.w.Accumulate(data, target, off, et, ao)
}

// Fence closes the current active-target epoch (MPI_Win_fence):
// collective; when it returns everywhere, every one-sided operation
// issued before it is visible at its target. A peer dying mid-epoch
// fails the fence with an error satisfying errors.Is(err,
// xdev.ErrPeerLost) rather than hanging.
func (w *Win) Fence() error { return w.w.Fence() }

// Lock opens a passive-target epoch on target's region
// (MPI_Win_lock): LockShared admits concurrent shared holders,
// LockExclusive serializes against all others. Requests queue FIFO at
// the target, so readers cannot starve a waiting writer.
func (w *Win) Lock(lockType, target int) error {
	switch lockType {
	case LockShared:
		return w.w.Lock(target, true)
	case LockExclusive:
		return w.w.Lock(target, false)
	}
	return fmt.Errorf("core: Lock: unknown lock type %d", lockType)
}

// Unlock closes the passive-target epoch on target (MPI_Win_unlock):
// it drains this origin's operations to the target and releases the
// lock; on return they are visible at the target.
func (w *Win) Unlock(target int) error { return w.w.Unlock(target) }

// Free releases the window (MPI_Win_free). Collective: it fences
// before teardown so no rank frees a region another rank is still
// writing.
func (w *Win) Free() error {
	p := w.comm.p
	key := w.comm.ptp.Context()
	p.winMu.Lock()
	ws := p.wins[key]
	for i, ww := range ws {
		if ww == w {
			p.wins[key] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	p.winMu.Unlock()
	return w.w.Free()
}
