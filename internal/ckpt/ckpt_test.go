package ckpt_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpj/internal/ckpt"
	"mpj/internal/core"
	"mpj/internal/smpdev"
	"mpj/internal/xdev"
)

var groupCounter atomic.Int64

// runWorld starts an n-rank world over the shared-memory device and
// runs fn once per rank, each on its own goroutine.
func runWorld(t *testing.T, n int, fn func(p *core.Process, w *core.Intracomm)) {
	t.Helper()
	group := fmt.Sprintf("ckpt-test-%d", groupCounter.Add(1))
	procs := make([]*core.Process, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			procs[rank], errs[rank] = core.Init(smpdev.New(), xdev.Config{Rank: rank, Size: n, Group: group})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", i, err)
		}
	}
	defer func() {
		for _, p := range procs {
			p.Finalize()
		}
	}()
	var jobWG sync.WaitGroup
	for i := 0; i < n; i++ {
		jobWG.Add(1)
		go func(rank int) {
			defer jobWG.Done()
			fn(procs[rank], procs[rank].World())
		}(i)
	}
	done := make(chan struct{})
	go func() {
		jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("world deadlocked")
	}
}

// rankState builds deterministic per-rank test state.
func rankState(rank int) []byte {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(rank*31 + i)
	}
	return data
}

// TestCheckpointRestoreIdentity checkpoints a world and restores it on
// the same communicator: every rank gets exactly its own snapshot
// back.
func TestCheckpointRestoreIdentity(t *testing.T) {
	dir := t.TempDir()
	const n = 4
	runWorld(t, n, func(p *core.Process, w *core.Intracomm) {
		err := ckpt.Checkpoint(w, dir, "step-10",
			ckpt.Region{Name: "grid", Data: rankState(w.Rank())},
			ckpt.Region{Name: "iter", Data: []byte{10}},
		)
		if err != nil {
			t.Errorf("rank %d: Checkpoint: %v", w.Rank(), err)
			return
		}
		snaps, err := ckpt.Restore(dir, "step-10", w.Group(), w)
		if err != nil {
			t.Errorf("rank %d: Restore: %v", w.Rank(), err)
			return
		}
		if len(snaps) != 1 {
			t.Errorf("rank %d: restored %d snapshots, want 1", w.Rank(), len(snaps))
			return
		}
		snap := snaps[w.Rank()]
		if snap == nil {
			t.Errorf("rank %d: own snapshot missing", w.Rank())
			return
		}
		if got, want := snap.Regions["grid"], rankState(w.Rank()); string(got) != string(want) {
			t.Errorf("rank %d: grid region mismatch", w.Rank())
		}
		if got := snap.Regions["iter"]; len(got) != 1 || got[0] != 10 {
			t.Errorf("rank %d: iter region = %v", w.Rank(), got)
		}
	})
}

// TestRestoreAfterShrink is the recovery flow: checkpoint with 4
// ranks, rank 2 dies, the survivors shrink and restore — each
// survivor recovers its own old state by identity, and the dead
// rank's snapshot is dealt to old-rank-2 mod 3 = new rank 2.
func TestRestoreAfterShrink(t *testing.T) {
	dir := t.TempDir()
	const n = 4
	const victim = 2
	runWorld(t, n, func(p *core.Process, w *core.Intracomm) {
		err := ckpt.Checkpoint(w, dir, "pre-fail", ckpt.Region{Name: "grid", Data: rankState(w.Rank())})
		if err != nil {
			t.Errorf("rank %d: Checkpoint: %v", w.Rank(), err)
			return
		}
		if w.Rank() == victim {
			p.Finalize()
			return
		}
		pid, _ := w.Group().PID(victim)
		ck := p.Device().(xdev.PeerChecker)
		for deadline := time.Now().Add(5 * time.Second); ck.PeerErr(pid) == nil; {
			if time.Now().After(deadline) {
				t.Errorf("rank %d: victim death never detected", w.Rank())
				return
			}
			time.Sleep(time.Millisecond)
		}
		if err := w.Revoke(); err != nil {
			t.Errorf("rank %d: Revoke: %v", w.Rank(), err)
			return
		}
		nw, err := w.Shrink()
		if err != nil {
			t.Errorf("rank %d: Shrink: %v", w.Rank(), err)
			return
		}
		id, err := ckpt.Latest(dir)
		if err != nil || id != "pre-fail" {
			t.Errorf("rank %d: Latest = %q, %v", w.Rank(), id, err)
			return
		}
		snaps, err := ckpt.Restore(dir, id, w.Group(), nw)
		if err != nil {
			t.Errorf("rank %d: Restore: %v", w.Rank(), err)
			return
		}
		// Own old state must be present under the OLD rank number.
		own := snaps[w.Rank()]
		if own == nil {
			t.Errorf("old rank %d (new %d): own snapshot missing, got %d snaps", w.Rank(), nw.Rank(), len(snaps))
			return
		}
		if string(own.Regions["grid"]) != string(rankState(w.Rank())) {
			t.Errorf("old rank %d: restored state mismatch", w.Rank())
		}
		// The orphan (old rank 2) goes to old-rank-2 mod 3 = new rank 2,
		// which is old rank 3.
		if orphanOwner := victim % (n - 1); nw.Rank() == orphanOwner {
			orphan := snaps[victim]
			if orphan == nil {
				t.Errorf("new rank %d: orphan snapshot of old rank %d missing", nw.Rank(), victim)
				return
			}
			if string(orphan.Regions["grid"]) != string(rankState(victim)) {
				t.Errorf("orphan snapshot state mismatch")
			}
		} else if len(snaps) != 1 {
			t.Errorf("new rank %d: got %d snapshots, want 1", nw.Rank(), len(snaps))
		}
	})
}

// TestRestoreRejectsCorruption flips one payload byte and expects the
// CRC check to refuse the snapshot.
func TestRestoreRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	runWorld(t, 1, func(p *core.Process, w *core.Intracomm) {
		if err := ckpt.Checkpoint(w, dir, "c1", ckpt.Region{Name: "x", Data: rankState(0)}); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		path := filepath.Join(dir, "c1", "rank-0.ckpt")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = ckpt.Restore(dir, "c1", w.Group(), w)
		if err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("Restore of corrupt snapshot: err = %v, want CRC mismatch", err)
		}
	})
}

// TestLatestIgnoresUnpublished checks that a checkpoint directory
// without a manifest — a checkpoint interrupted before rank 0
// published it — is not offered for restart.
func TestLatestIgnoresUnpublished(t *testing.T) {
	dir := t.TempDir()
	runWorld(t, 2, func(p *core.Process, w *core.Intracomm) {
		if err := ckpt.Checkpoint(w, dir, "good", ckpt.Region{Name: "x", Data: []byte{1}}); err != nil {
			t.Errorf("Checkpoint: %v", err)
			return
		}
		if w.Rank() == 0 {
			// Fake a torn checkpoint: snapshot files but no manifest.
			if err := os.MkdirAll(filepath.Join(dir, "torn"), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "torn", "rank-0.ckpt"), []byte("junk"), 0o644); err != nil {
				t.Fatal(err)
			}
			id, err := ckpt.Latest(dir)
			if err != nil {
				t.Errorf("Latest: %v", err)
			}
			if id != "good" {
				t.Errorf("Latest = %q, want %q", id, "good")
			}
		}
	})
}
