// Package ckpt implements coordinated checkpoint/restart for MPJ
// jobs: the fault-tolerance companion of the ULFM operations in
// internal/core. Checkpoint is collective — it barriers the
// communicator so no message is in flight, writes each rank's
// application state to its own CRC-protected snapshot file, barriers
// again, and then rank 0 publishes a job manifest; a checkpoint
// exists only once its manifest does, so a crash mid-checkpoint
// leaves the previous checkpoint intact rather than a torn one. Every
// file lands via a temp-file rename, so readers never observe partial
// writes.
//
// Restore is the other half: after a failure the survivors Shrink the
// damaged communicator and each reloads state from the last
// checkpoint. Ranks are remapped by process identity
// (Group.TranslateRanks), so a survivor recovers its own old state no
// matter how its rank number changed; the snapshots of dead ranks are
// dealt out round-robin (old rank mod new size) so the shrunken job
// can redistribute the lost work.
package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"mpj/internal/core"
)

// magic identifies a rank snapshot file.
var magic = [4]byte{'M', 'P', 'J', 'C'}

// version is the snapshot file format version.
const version = 1

// headerLen is the fixed-size snapshot header: magic, version, rank,
// region count, payload length, payload CRC, header CRC.
const headerLen = 4 + 4 + 4 + 4 + 8 + 4 + 4

// crcTab is the Castagnoli table, matching the wire CRC the devices
// negotiate.
var crcTab = crc32.MakeTable(crc32.Castagnoli)

// manifestName is the per-checkpoint manifest file.
const manifestName = "MANIFEST.json"

// Region is one named piece of rank-local application state included
// in a snapshot.
type Region struct {
	Name string
	Data []byte
}

// Snapshot is one rank's restored state.
type Snapshot struct {
	// Rank is the rank that wrote the snapshot, in the checkpointing
	// communicator's numbering.
	Rank int
	// Regions maps region names to their restored bytes.
	Regions map[string][]byte
}

// Manifest describes a completed coordinated checkpoint. It is
// written by rank 0 only after every rank's snapshot file is durable,
// so its presence certifies the checkpoint.
type Manifest struct {
	// ID is the caller-chosen checkpoint identifier.
	ID string `json:"id"`
	// Size is the number of ranks that participated.
	Size int `json:"size"`
	// Files lists the per-rank snapshot file names, rank order.
	Files []string `json:"files"`
	// CreatedUnixNano is the manifest's creation time.
	CreatedUnixNano int64 `json:"createdUnixNano"`
}

// rankFile returns the snapshot file name for a rank.
func rankFile(rank int) string { return fmt.Sprintf("rank-%d.ckpt", rank) }

// ckptDir returns the directory of one checkpoint.
func ckptDir(dir, id string) string { return filepath.Join(dir, id) }

// atomicWrite writes data to path via a temp file and rename.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// encode serializes one rank's regions into the snapshot format.
func encode(rank int, regions []Region) ([]byte, error) {
	var payload []byte
	for _, r := range regions {
		if len(r.Name) > 1<<16 {
			return nil, fmt.Errorf("ckpt: region name %q too long", r.Name[:32])
		}
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Name)))
		payload = append(payload, u32[:]...)
		payload = append(payload, r.Name...)
		var u64 [8]byte
		binary.LittleEndian.PutUint64(u64[:], uint64(len(r.Data)))
		payload = append(payload, u64[:]...)
		payload = append(payload, r.Data...)
	}
	out := make([]byte, headerLen, headerLen+len(payload))
	copy(out[0:4], magic[:])
	binary.LittleEndian.PutUint32(out[4:8], version)
	binary.LittleEndian.PutUint32(out[8:12], uint32(rank))
	binary.LittleEndian.PutUint32(out[12:16], uint32(len(regions)))
	binary.LittleEndian.PutUint64(out[16:24], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[24:28], crc32.Checksum(payload, crcTab))
	binary.LittleEndian.PutUint32(out[28:32], crc32.Checksum(out[:28], crcTab))
	return append(out, payload...), nil
}

// decode parses and verifies one snapshot file.
func decode(name string, data []byte) (*Snapshot, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("ckpt: %s: truncated header (%d bytes)", name, len(data))
	}
	if [4]byte(data[0:4]) != magic {
		return nil, fmt.Errorf("ckpt: %s: bad magic", name)
	}
	if got := crc32.Checksum(data[:28], crcTab); got != binary.LittleEndian.Uint32(data[28:32]) {
		return nil, fmt.Errorf("ckpt: %s: header CRC mismatch", name)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != version {
		return nil, fmt.Errorf("ckpt: %s: unsupported version %d", name, v)
	}
	rank := int(binary.LittleEndian.Uint32(data[8:12]))
	nRegions := int(binary.LittleEndian.Uint32(data[12:16]))
	payLen := binary.LittleEndian.Uint64(data[16:24])
	payload := data[headerLen:]
	if uint64(len(payload)) != payLen {
		return nil, fmt.Errorf("ckpt: %s: payload length %d, header says %d", name, len(payload), payLen)
	}
	if got := crc32.Checksum(payload, crcTab); got != binary.LittleEndian.Uint32(data[24:28]) {
		return nil, fmt.Errorf("ckpt: %s: payload CRC mismatch", name)
	}
	snap := &Snapshot{Rank: rank, Regions: make(map[string][]byte, nRegions)}
	for i := 0; i < nRegions; i++ {
		if len(payload) < 4 {
			return nil, fmt.Errorf("ckpt: %s: truncated region %d", name, i)
		}
		nameLen := int(binary.LittleEndian.Uint32(payload[:4]))
		payload = payload[4:]
		if len(payload) < nameLen+8 {
			return nil, fmt.Errorf("ckpt: %s: truncated region %d name", name, i)
		}
		rname := string(payload[:nameLen])
		payload = payload[nameLen:]
		dataLen := binary.LittleEndian.Uint64(payload[:8])
		payload = payload[8:]
		if uint64(len(payload)) < dataLen {
			return nil, fmt.Errorf("ckpt: %s: truncated region %q data", name, rname)
		}
		snap.Regions[rname] = append([]byte(nil), payload[:dataLen]...)
		payload = payload[dataLen:]
	}
	return snap, nil
}

// Checkpoint takes a coordinated snapshot of the communicator: each
// rank's regions land in dir/<id>/rank-<r>.ckpt, and rank 0 publishes
// the manifest once every file is durable. Collective — barriers
// bracket the writes, so the snapshot is consistent: no message of
// the application is in flight across it. Checkpoint ids must be
// fresh; re-running an id overwrites it.
func Checkpoint(comm *core.Intracomm, dir, id string, regions ...Region) error {
	cdir := ckptDir(dir, id)
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	// Entry barrier: every rank has quiesced its application traffic
	// and sees the directory in place.
	if err := comm.Barrier(); err != nil {
		return fmt.Errorf("ckpt: entry barrier: %w", err)
	}
	data, err := encode(comm.Rank(), regions)
	if err != nil {
		return err
	}
	if err := atomicWrite(filepath.Join(cdir, rankFile(comm.Rank())), data); err != nil {
		return fmt.Errorf("ckpt: write snapshot: %w", err)
	}
	// Completion barrier: all snapshot files exist before the manifest
	// certifies them.
	if err := comm.Barrier(); err != nil {
		return fmt.Errorf("ckpt: completion barrier: %w", err)
	}
	if comm.Rank() == 0 {
		m := Manifest{ID: id, Size: comm.Size(), CreatedUnixNano: time.Now().UnixNano()}
		for r := 0; r < comm.Size(); r++ {
			m.Files = append(m.Files, rankFile(r))
		}
		data, err := json.MarshalIndent(&m, "", " ")
		if err != nil {
			return fmt.Errorf("ckpt: marshal manifest: %w", err)
		}
		if err := atomicWrite(filepath.Join(cdir, manifestName), data); err != nil {
			return fmt.Errorf("ckpt: write manifest: %w", err)
		}
	}
	// Exit barrier: when Checkpoint returns anywhere, the checkpoint is
	// published everywhere.
	if err := comm.Barrier(); err != nil {
		return fmt.Errorf("ckpt: exit barrier: %w", err)
	}
	return nil
}

// ReadManifest loads and validates a checkpoint's manifest.
func ReadManifest(dir, id string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(ckptDir(dir, id), manifestName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	m := new(Manifest)
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("ckpt: parse manifest: %w", err)
	}
	if m.Size <= 0 || len(m.Files) != m.Size {
		return nil, fmt.Errorf("ckpt: manifest %s: inconsistent (size %d, %d files)", id, m.Size, len(m.Files))
	}
	return m, nil
}

// Latest returns the id of the newest completed checkpoint under dir
// (by manifest creation time), or "" when none exists. Checkpoints
// without a manifest — interrupted mid-write — are ignored.
func Latest(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", fmt.Errorf("ckpt: %w", err)
	}
	type cand struct {
		id string
		at int64
	}
	var cands []cand
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := ReadManifest(dir, e.Name())
		if err != nil {
			continue
		}
		cands = append(cands, cand{id: m.ID, at: m.CreatedUnixNano})
	}
	if len(cands) == 0 {
		return "", nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].at < cands[j].at })
	return cands[len(cands)-1].id, nil
}

// Restore loads the snapshots this rank owns from checkpoint id: its
// own old state, located by process identity in old (the group of the
// communicator that took the checkpoint), plus any orphaned snapshots
// of dead ranks assigned to it (old rank mod new size). comm is the
// current — typically shrunken — communicator. The result maps old
// ranks to their snapshots; collective only in the sense that every
// rank should call it to cover all orphans.
func Restore(dir, id string, old *core.Group, comm *core.Intracomm) (map[int]*Snapshot, error) {
	m, err := ReadManifest(dir, id)
	if err != nil {
		return nil, err
	}
	if m.Size != old.Size() {
		return nil, fmt.Errorf("ckpt: checkpoint %s has %d ranks, old group has %d", id, m.Size, old.Size())
	}
	oldRanks := make([]int, old.Size())
	for r := range oldRanks {
		oldRanks[r] = r
	}
	// Map every old rank to its surviving new rank (core.Undefined for
	// the dead).
	newRanks, err := old.TranslateRanks(oldRanks, comm.Group())
	if err != nil {
		return nil, err
	}
	out := make(map[int]*Snapshot)
	for o, nr := range newRanks {
		owner := nr
		if owner == core.Undefined {
			owner = o % comm.Size() // orphan: deal dead ranks out round-robin
		}
		if owner != comm.Rank() {
			continue
		}
		path := filepath.Join(ckptDir(dir, id), rankFile(o))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
		snap, err := decode(rankFile(o), data)
		if err != nil {
			return nil, err
		}
		if snap.Rank != o {
			return nil, fmt.Errorf("ckpt: %s records rank %d, expected %d", rankFile(o), snap.Rank, o)
		}
		out[o] = snap
	}
	return out, nil
}
