package xdev

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Node placement. A job's ranks are spread over nodes by the runtime
// (mpjrun assigns ranks to daemons round-robin); MPJ_NODE_MAP carries
// that placement to every rank so the device layer can route
// node-local traffic differently from inter-node traffic and the
// collective layer can build node-leader hierarchies.
//
// Two forms are accepted:
//
//   - per-rank list: "0,0,1,1" — entry i is rank i's node id;
//   - block form: "nodeA:2,nodeB:2" — name:count pairs, ranks assigned
//     to nodes block-wise in order.
//
// Either way the result is normalized to dense 0-based node ids in
// order of first appearance, so len(NodeOf) is the job size and
// max(NodeOf)+1 is the node count.

// ErrBadNodeMap is the typed parse failure every malformed
// MPJ_NODE_MAP surfaces (wrapped with the offending detail).
var ErrBadNodeMap = errors.New("xdev: malformed node map")

// ParseNodeMap parses an MPJ_NODE_MAP value into a slot->node-id
// slice of length size. size <= 0 skips the length check (the block
// form then defines the job size). An empty string returns (nil, nil):
// placement simply unknown.
func ParseNodeMap(s string, size int) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	entries := strings.Split(s, ",")
	block := strings.Contains(s, ":")
	var raw []string // one node label per rank, in rank order
	for i, e := range entries {
		e = strings.TrimSpace(e)
		if e == "" {
			return nil, fmt.Errorf("%w: empty entry at position %d in %q", ErrBadNodeMap, i, s)
		}
		if block {
			name, cntStr, ok := strings.Cut(e, ":")
			if !ok || strings.TrimSpace(name) == "" {
				return nil, fmt.Errorf("%w: entry %q is not name:count", ErrBadNodeMap, e)
			}
			cnt, err := strconv.Atoi(strings.TrimSpace(cntStr))
			if err != nil || cnt <= 0 {
				return nil, fmt.Errorf("%w: entry %q has invalid count", ErrBadNodeMap, e)
			}
			for j := 0; j < cnt; j++ {
				raw = append(raw, strings.TrimSpace(name))
			}
		} else {
			if _, err := strconv.Atoi(e); err != nil {
				return nil, fmt.Errorf("%w: entry %q is not a node id (use name:count for named nodes)", ErrBadNodeMap, e)
			}
			raw = append(raw, e)
		}
	}
	if size > 0 && len(raw) != size {
		return nil, fmt.Errorf("%w: %q places %d ranks, job has %d", ErrBadNodeMap, s, len(raw), size)
	}
	// Normalize labels (numeric or named) to dense ids in order of
	// first appearance.
	ids := make(map[string]int)
	nodeOf := make([]int, len(raw))
	for i, label := range raw {
		id, ok := ids[label]
		if !ok {
			id = len(ids)
			ids[label] = id
		}
		nodeOf[i] = id
	}
	return nodeOf, nil
}

// FormatNodeMap renders a slot->node-id slice back into the per-rank
// list form ParseNodeMap accepts — the form the runtime puts in each
// rank's environment.
func FormatNodeMap(nodeOf []int) string {
	if len(nodeOf) == 0 {
		return ""
	}
	parts := make([]string, len(nodeOf))
	for i, n := range nodeOf {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// NodeCount reports the number of distinct nodes in a dense placement
// (0 for unknown placement).
func NodeCount(nodeOf []int) int {
	maxID := -1
	for _, n := range nodeOf {
		if n > maxID {
			maxID = n
		}
	}
	return maxID + 1
}
