package xdev

import (
	"errors"
	"reflect"
	"testing"
)

func TestParseNodeMap(t *testing.T) {
	cases := []struct {
		name string
		in   string
		size int
		want []int
	}{
		{"per-rank list", "0,0,1,1", 4, []int{0, 0, 1, 1}},
		{"uneven ranks per node", "0,0,0,1,1,2", 6, []int{0, 0, 0, 1, 1, 2}},
		{"single node", "0,0,0,0", 4, []int{0, 0, 0, 0}},
		{"one rank per node", "0,1,2,3", 4, []int{0, 1, 2, 3}},
		{"interleaved round-robin", "0,1,0,1", 4, []int{0, 1, 0, 1}},
		{"block form", "n0:2,n1:2", 4, []int{0, 0, 1, 1}},
		{"block form uneven", "a:3,b:1", 4, []int{0, 0, 0, 1}},
		{"block form single node", "only:4", 4, []int{0, 0, 0, 0}},
		{"block form one rank per node", "a:1,b:1,c:1", 3, []int{0, 1, 2}},
		{"sparse ids renumber densely", "7,7,9,9", 4, []int{0, 0, 1, 1}},
		{"repeated block names merge", "a:1,b:1,a:1", 3, []int{0, 1, 0}},
		{"whitespace tolerated", " 0 , 0 , 1 , 1 ", 4, []int{0, 0, 1, 1}},
		{"no length check when size unknown", "0,1", 0, []int{0, 1}},
		{"empty means unknown", "", 4, nil},
		{"blank means unknown", "   ", 4, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseNodeMap(tc.in, tc.size)
			if err != nil {
				t.Fatalf("ParseNodeMap(%q, %d): %v", tc.in, tc.size, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("ParseNodeMap(%q, %d) = %v, want %v", tc.in, tc.size, got, tc.want)
			}
		})
	}
}

func TestParseNodeMapMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		size int
	}{
		{"wrong length", "0,0,1", 4},
		{"too many entries", "0,0,1,1,2", 4},
		{"empty entry", "0,,1,1", 4},
		{"trailing comma", "0,0,1,1,", 4},
		{"non-numeric id without count", "zero,one", 2},
		{"block missing count", "n0:,n1:2", 4},
		{"block zero count", "n0:0,n1:4", 4},
		{"block negative count", "n0:-2,n1:6", 4},
		{"block garbage count", "n0:two,n1:2", 4},
		{"block empty name", ":2,n1:2", 4},
		{"block wrong total", "n0:2,n1:3", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseNodeMap(tc.in, tc.size)
			if err == nil {
				t.Fatalf("ParseNodeMap(%q, %d) accepted malformed input", tc.in, tc.size)
			}
			if !errors.Is(err, ErrBadNodeMap) {
				t.Errorf("ParseNodeMap(%q, %d) error %v does not wrap ErrBadNodeMap", tc.in, tc.size, err)
			}
		})
	}
}

func TestFormatNodeMapRoundTrip(t *testing.T) {
	nodeOf := []int{0, 0, 1, 1, 2}
	got, err := ParseNodeMap(FormatNodeMap(nodeOf), len(nodeOf))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !reflect.DeepEqual(got, nodeOf) {
		t.Errorf("round trip = %v, want %v", got, nodeOf)
	}
	if FormatNodeMap(nil) != "" {
		t.Errorf("FormatNodeMap(nil) = %q, want empty", FormatNodeMap(nil))
	}
}

func TestNodeCount(t *testing.T) {
	if n := NodeCount([]int{0, 0, 1, 1}); n != 2 {
		t.Errorf("NodeCount = %d, want 2", n)
	}
	if n := NodeCount(nil); n != 0 {
		t.Errorf("NodeCount(nil) = %d, want 0", n)
	}
}
