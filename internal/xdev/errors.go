package xdev

import (
	"errors"
	"fmt"
)

// Failure taxonomy shared by every device. Devices wrap these sentinels
// (directly or via errors.Join) so upper layers and applications can
// classify failures with errors.Is regardless of which device produced
// them:
//
//   - ErrPeerLost: a specific peer process died or its connection broke.
//     Every pending request addressed to that peer fails with it, and
//     new operations naming the peer fail immediately.
//   - ErrDeviceClosed: the local device was finished while the
//     operation was pending (or before it was issued).
//   - ErrCorruptFrame: frame integrity checking (niodev's negotiated
//     CRC32) detected wire corruption. The connection is treated as
//     compromised, so the error usually appears joined with ErrPeerLost.
//   - ErrAborted: the job was torn down by Comm.Abort, locally or by a
//     remote rank's abort control frame.
//   - ErrRevoked: the communication context the operation used was
//     revoked (ULFM-style) by some rank of its communicator. Unlike
//     ErrAborted the device survives: other contexts keep working, so
//     survivors can agree, shrink and continue on a new communicator.
var (
	ErrPeerLost     = errors.New("xdev: peer lost")
	ErrDeviceClosed = errors.New("xdev: device closed")
	ErrCorruptFrame = errors.New("xdev: corrupt frame")
	ErrAborted      = errors.New("xdev: job aborted")
	ErrRevoked      = errors.New("xdev: communicator revoked")
)

// AbortError carries the application-supplied code of an Abort and the
// slot of the process that initiated it. errors.Is(err, ErrAborted)
// matches it.
type AbortError struct {
	// Code is the code passed to Abort.
	Code int
	// From is the job slot that initiated the abort (-1 if unknown).
	From int
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("xdev: job aborted with code %d by slot %d", e.Code, e.From)
}

// Is makes AbortError match the ErrAborted sentinel.
func (e *AbortError) Is(target error) bool { return target == ErrAborted }

// Aborter is implemented by devices that can broadcast an abort to the
// rest of the job (a control frame, a group notification) before
// tearing down locally. Devices without native support are simply
// finished by the layer above.
type Aborter interface {
	// Abort notifies every reachable peer that the job is aborting with
	// the given code, then fails all pending local requests with an
	// AbortError. The device remains finishable afterwards.
	Abort(code int) error
}

// Revoker is implemented by devices that can revoke a matching context
// job-wide: every pending operation on that context — posted receives,
// parked synchronous sends, unmatched arrivals, rendezvous in flight —
// fails with an error wrapping ErrRevoked, locally and on every
// reachable peer, and future operations on the context fail fast. Other
// contexts are untouched; the device stays usable, which is what
// separates revocation from Abort.
type Revoker interface {
	// Revoke poisons the given matching context everywhere. It is
	// idempotent: revoking an already-revoked context is a no-op, which
	// lets peers re-broadcast the revocation for reliability.
	Revoke(context int) error
}
