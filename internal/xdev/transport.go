package xdev

import "net"

// Transport abstracts the byte-stream fabric beneath a network device.
// Implementations provide real TCP, in-process pipes for single-process
// jobs, and throttled links that emulate a target fabric's latency and
// bandwidth (see internal/transport and internal/netsim).
type Transport interface {
	// Listen opens a listener on addr. Devices accept peer connections
	// from it for the life of the job.
	Listen(addr string) (net.Listener, error)
	// Dial connects to a peer's listener.
	Dial(addr string) (net.Conn, error)
}
