// Package xdev defines the MPJ Express low-level device API (paper
// Fig. 2). A Device provides raw, thread-safe point-to-point messaging
// between processes identified by opaque ProcessIDs. It knows nothing
// about MPI groups, communicators, or ranks — those abstractions live in
// the mpjdev and core layers above. Contexts and tags pass through the
// device solely for message matching.
//
// Implementations in this repository:
//
//   - niodev  — pure-Go TCP device with eager and rendezvous protocols
//   - mxdev   — device over the simulated Myrinet eXpress library (mxsim)
//   - smpdev  — shared-memory device for ranks within one process
//   - ibisdev — an MPJ/Ibis-style baseline (thread per operation)
package xdev

import (
	"fmt"
	"sort"
	"sync"

	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/replay"
)

// Wildcard tag and matching constants. Context values are assigned by
// the communicator layer and never wildcarded.
const (
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// ProcessID identifies a process at the device level. The device layer
// deliberately has no notion of rank; the mapping from MPI ranks to
// ProcessIDs belongs to the layers above.
type ProcessID struct {
	// UUID is a job-unique process identifier.
	UUID uint64
}

// AnySource is the wildcard ProcessID matching a message from any peer.
var AnySource = ProcessID{UUID: ^uint64(0)}

// IsAnySource reports whether p is the source wildcard.
func (p ProcessID) IsAnySource() bool { return p == AnySource }

// String returns a compact form for logs and errors.
func (p ProcessID) String() string {
	if p.IsAnySource() {
		return "ANY_SOURCE"
	}
	return fmt.Sprintf("pid(%d)", p.UUID)
}

// Status describes a completed (or probed) receive.
type Status struct {
	// Source is the process the message came from.
	Source ProcessID
	// Tag is the message tag.
	Tag int
	// Bytes is the wire payload length of the message.
	Bytes int
}

// Request represents an in-flight non-blocking operation.
//
// The paper's peek() contract requires the device to hand back the most
// recently completed Request object; mpjdev attaches its WaitAny
// bookkeeping to the request via the Attachment mechanism.
type Request interface {
	// Wait blocks until the operation completes and returns its status.
	// The status of a send operation has zero Source/Tag meaning.
	Wait() (Status, error)
	// Test reports without blocking whether the operation has completed.
	Test() (Status, bool, error)
	// SetAttachment associates opaque upper-layer state with the request.
	SetAttachment(v any)
	// Attachment returns the value set by SetAttachment, or nil.
	Attachment() any
}

// Config carries everything a device needs to join a job at Init time.
// It replaces the string[] args of the Java API with a typed struct.
type Config struct {
	// Rank and Size describe this process's position in the job. The
	// device uses them only to index Addrs and to derive ProcessIDs.
	Rank int
	Size int
	// Addrs maps job slot -> listen address. Required by network
	// devices; ignored by in-process devices.
	Addrs []string
	// Dialer abstracts the byte transport (real TCP, in-process pipes,
	// or throttled/simulated links). Nil selects the device default.
	Dialer Transport
	// EagerLimit is the protocol switch point in bytes: messages with a
	// wire length at or below the limit use the eager protocol, larger
	// ones use rendezvous. Zero selects the device default (128 KiB,
	// the figure the paper reports for TCP).
	EagerLimit int
	// Group names an in-process job namespace for devices (smpdev,
	// mxdev) that rendezvous through process-local registries.
	Group string
	// Recorder receives protocol and request-lifecycle events from
	// the device and the layers above it (see internal/mpe). Nil
	// means tracing is disabled; devices substitute mpe.Nop.
	Recorder mpe.Recorder
	// DisableChecksum turns off per-frame integrity checksums on
	// devices that support them (niodev's CRC32C). Checksums are on by
	// default; each side advertises its setting in the connection
	// handshake, and a frame is only verified when its sender computed
	// the checksum.
	DisableChecksum bool
	// NodeOf maps job slot -> node id (dense, 0-based; see
	// ParseNodeMap), the placement the runtime derived from daemon
	// assignment or MPJ_NODE_MAP. Topology-aware devices (hybriddev)
	// route by it and topology-aware collectives build node-leader
	// trees from it. Nil means placement is unknown: devices assume
	// the degenerate topology natural to them.
	NodeOf []int
	// Colocated declares that every rank of the job runs in this OS
	// process (RunLocal, in-process test runners). Only then may a
	// composing device route node-local traffic over shared memory;
	// it is never inferred, because a wrong guess would strand
	// cross-process messages in a process-local mailbox.
	Colocated bool
	// SendEngine selects the outbound path on devices with an
	// asynchronous send engine (niodev): "" or "engine" enqueues frames
	// on per-peer queues drained by coalescing sender goroutines;
	// "direct" restores the synchronous lock-and-write path. Empty
	// falls back to MPJ_SEND_ENGINE.
	SendEngine string
	// SendQueue bounds the per-peer send queue in frames (backpressure:
	// data sends block while the queue is full). Zero selects
	// MPJ_SEND_QUEUE, then the device default (256).
	SendQueue int
	// SendSpin is how many scheduler yields an idle sender goroutine
	// busy-polls for new frames before parking. Zero selects
	// MPJ_SEND_SPIN, then the device default (128); negative disables
	// spinning (park immediately).
	SendSpin int
	// Replay is this rank's record/replay session (internal/replay):
	// when non-nil the device records every nondeterministic decision
	// it makes — wildcard match resolutions, completion-pop order,
	// dual-post claim arbitration — into the session, and under replay
	// enforces the recorded outcomes. Nil means record/replay is off.
	// A composing device passes the same session to every inner device.
	Replay *replay.Session
}

// Device is the xdev API of paper Fig. 2. All methods are safe for
// concurrent use by multiple goroutines (MPI_THREAD_MULTIPLE).
type Device interface {
	// Init joins the job and returns the ProcessIDs of all job members
	// indexed by slot; the slot order is identical across processes.
	Init(cfg Config) ([]ProcessID, error)
	// ID returns this process's ProcessID.
	ID() ProcessID
	// Finish leaves the job and releases device resources.
	Finish() error

	// SendOverhead and RecvOverhead report the per-message byte
	// overhead the device adds to a buffer's wire form, so upper
	// layers can size buffers.
	SendOverhead() int
	RecvOverhead() int

	// ISend starts a standard-mode non-blocking send.
	ISend(buf *mpjbuf.Buffer, dst ProcessID, tag, context int) (Request, error)
	// Send is a blocking standard-mode send.
	Send(buf *mpjbuf.Buffer, dst ProcessID, tag, context int) error
	// ISsend starts a synchronous-mode non-blocking send: the request
	// completes only after the receiver has matched the message.
	ISsend(buf *mpjbuf.Buffer, dst ProcessID, tag, context int) (Request, error)
	// Ssend is a blocking synchronous-mode send.
	Ssend(buf *mpjbuf.Buffer, dst ProcessID, tag, context int) error

	// IRecv starts a non-blocking receive into buf.
	IRecv(buf *mpjbuf.Buffer, src ProcessID, tag, context int) (Request, error)
	// Recv blocks until a matching message has been received into buf.
	Recv(buf *mpjbuf.Buffer, src ProcessID, tag, context int) (Status, error)

	// Probe blocks until a matching message is available and returns
	// its envelope without receiving it.
	Probe(src ProcessID, tag, context int) (Status, error)
	// IProbe is the non-blocking form of Probe; ok reports a match.
	IProbe(src ProcessID, tag, context int) (Status, bool, error)

	// Peek blocks until some request completes and returns the most
	// recently completed Request (idea borrowed from Myrinet eXpress).
	// It is the primitive beneath mpjdev's Waitany.
	Peek() (Request, error)
}

// MemoryDomain is an optional capability of devices whose job members
// share one address space (smpdev). Such a device names its shared
// domain, letting one-sided layers (internal/rma) rendezvous through a
// process-local registry and complete Put/Get as direct memory copies
// instead of active messages. Devices whose ranks may live in separate
// processes must not implement it.
type MemoryDomain interface {
	// MemoryDomain returns a job-unique namespace shared by every rank
	// of the job, and true. Returning false disables the shared-memory
	// path (e.g. before Init).
	MemoryDomain() (string, bool)
}

// PeerChecker is an optional capability of devices that can report
// whether a specific peer is known to be gone. One-sided
// synchronization (rma.Fence/Unlock) polls it so an epoch blocked on a
// dead peer fails with an error wrapping ErrPeerLost instead of
// hanging. A nil return means the peer is alive as far as the device
// knows — it is not a liveness guarantee.
type PeerChecker interface {
	PeerErr(p ProcessID) error
}

// Error is the xdev error type (the Java XDevException).
type Error struct {
	Dev string // device name
	Op  string // operation
	Err error  // cause
}

func (e *Error) Error() string { return e.Dev + ": " + e.Op + ": " + e.Err.Error() }

// Unwrap returns the cause.
func (e *Error) Unwrap() error { return e.Err }

// Errf builds an *Error with a formatted cause.
func Errf(dev, op, format string, args ...any) *Error {
	return &Error{Dev: dev, Op: op, Err: fmt.Errorf(format, args...)}
}

// ---- device registry (Device.newInstance in the Java API) ----

var (
	regMu    sync.RWMutex
	registry = map[string]func() Device{}
)

// Register makes a device constructor available to NewInstance. It is
// intended to be called from package init functions of device packages.
func Register(name string, factory func() Device) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("xdev: duplicate device registration: " + name)
	}
	registry[name] = factory
}

// NewInstance returns a fresh, uninitialized device of the named kind.
func NewInstance(name string) (Device, error) {
	regMu.RLock()
	factory, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("xdev: unknown device %q (registered: %v)", name, Names())
	}
	return factory(), nil
}

// Names lists the registered device names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
