package xdev

import (
	"errors"
	"strings"
	"testing"
)

func TestProcessIDString(t *testing.T) {
	if got := (ProcessID{UUID: 3}).String(); got != "pid(3)" {
		t.Errorf("String = %q", got)
	}
	if got := AnySource.String(); got != "ANY_SOURCE" {
		t.Errorf("AnySource.String = %q", got)
	}
	if !AnySource.IsAnySource() || (ProcessID{UUID: 0}).IsAnySource() {
		t.Error("IsAnySource misbehaves")
	}
}

func TestErrorWrapping(t *testing.T) {
	cause := errors.New("boom")
	e := &Error{Dev: "testdev", Op: "send", Err: cause}
	if !strings.Contains(e.Error(), "testdev") || !strings.Contains(e.Error(), "send") {
		t.Errorf("Error() = %q", e.Error())
	}
	if !errors.Is(e, cause) {
		t.Error("Unwrap does not reach the cause")
	}
	e2 := Errf("d", "op", "code %d", 42)
	if !strings.Contains(e2.Error(), "code 42") {
		t.Errorf("Errf = %q", e2.Error())
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := NewInstance("definitely-not-registered"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	Register("xdev-test-dup", func() Device { return nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register("xdev-test-dup", func() Device { return nil })
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}
