package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFabricDerivedQuantities(t *testing.T) {
	f := GigabitEthernet()
	wantNS := 8.0 * 1000.0 / (1000 * 0.92)
	if math.Abs(f.NSPerByte()-wantNS) > 1e-9 {
		t.Fatalf("NSPerByte = %v, want %v", f.NSPerByte(), wantNS)
	}
	if math.Abs(f.MaxMbps()-920) > 1e-9 {
		t.Fatalf("MaxMbps = %v, want 920", f.MaxMbps())
	}
	if f.BytesPerSecond() <= 0 {
		t.Fatal("BytesPerSecond must be positive")
	}
}

func TestFabricByName(t *testing.T) {
	for _, name := range []string{"fast", "gige", "mx", "Fast Ethernet", "Gigabit Ethernet", "Myrinet 2G"} {
		if _, err := FabricByName(name); err != nil {
			t.Errorf("FabricByName(%q): %v", name, err)
		}
	}
	if _, err := FabricByName("token-ring"); err == nil {
		t.Error("expected error for unknown fabric")
	}
	if len(Fabrics()) != 3 {
		t.Error("Fabrics() should return the three paper fabrics")
	}
}

func TestPipelineSingleStage(t *testing.T) {
	stages := []Stage{{Name: "wire", SetupUS: 10, NSPerByte: 100}}
	// 1000 bytes at 100 ns/B = 100 us, + 10 us setup.
	got := PipelineUS(stages, 1000, 1<<20) // single chunk
	if math.Abs(got-110) > 1e-6 {
		t.Fatalf("single stage = %v, want 110", got)
	}
}

func TestPipelineZeroBytes(t *testing.T) {
	stages := []Stage{
		{Name: "sw", SetupUS: 5},
		{Name: "wire", SetupUS: 55, NSPerByte: 80},
	}
	got := PipelineUS(stages, 0, 8<<10)
	if math.Abs(got-60) > 1e-6 {
		t.Fatalf("zero-byte = %v, want 60 (setup only)", got)
	}
}

func TestPipelineOverlapHidesFastStages(t *testing.T) {
	// A fast copy stage pipelined against a slow wire stage should be
	// almost entirely hidden for large messages.
	wireOnly := []Stage{{Name: "wire", NSPerByte: 80}}
	withCopy := []Stage{
		{Name: "copy", NSPerByte: 2},
		{Name: "wire", NSPerByte: 80},
	}
	const size = 16 << 20
	t0 := PipelineUS(wireOnly, size, 8<<10)
	t1 := PipelineUS(withCopy, size, 8<<10)
	if t1 < t0 {
		t.Fatalf("adding a stage made it faster: %v < %v", t1, t0)
	}
	if (t1-t0)/t0 > 0.01 {
		t.Fatalf("pipelined copy not hidden: %.2f%% slower", 100*(t1-t0)/t0)
	}
}

func TestPipelineWholeMessageStageSerializes(t *testing.T) {
	// A WholeMessage copy stage must add its full per-byte cost.
	wireOnly := []Stage{{Name: "wire", NSPerByte: 80}}
	withPack := []Stage{
		{Name: "pack", NSPerByte: 2, WholeMessage: true},
		{Name: "wire", NSPerByte: 80},
	}
	const size = 16 << 20
	t0 := PipelineUS(wireOnly, size, 8<<10)
	t1 := PipelineUS(withPack, size, 8<<10)
	wantExtra := float64(size) * 2 / 1000
	if math.Abs((t1-t0)-wantExtra) > wantExtra*0.05 {
		t.Fatalf("whole-message stage added %v us, want ~%v us", t1-t0, wantExtra)
	}
}

func TestPipelineMonotoneInSize(t *testing.T) {
	stages := []Stage{
		{Name: "pack", NSPerByte: 1.5, WholeMessage: true},
		{Name: "sw", SetupUS: 20},
		{Name: "wire", SetupUS: 55, NSPerByte: 87},
		{Name: "unpack", NSPerByte: 1.5, WholeMessage: true},
	}
	prev := -1.0
	for size := 1; size <= 16<<20; size *= 2 {
		got := PipelineUS(stages, size, 8<<10)
		if got <= prev {
			t.Fatalf("PipelineUS not increasing at size %d: %v <= %v", size, got, prev)
		}
		prev = got
	}
}

func TestQuickPipelineNonNegativeAndMonotone(t *testing.T) {
	f := func(sizeSeed uint32, chunkSeed uint16) bool {
		size := int(sizeSeed % (1 << 24))
		chunk := int(chunkSeed%512)*64 + 64
		stages := []Stage{
			{Name: "a", SetupUS: 1, NSPerByte: 0.5},
			{Name: "b", SetupUS: 2, NSPerByte: 3, WholeMessage: true},
			{Name: "c", NSPerByte: 10},
		}
		t1 := PipelineUS(stages, size, chunk)
		t2 := PipelineUS(stages, size+chunk, chunk)
		return t1 >= 0 && t2 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArrivalAfterPoll(t *testing.T) {
	// phase 10, poll 64: ticks at 10, 74, 138, ...
	cases := []struct{ t, want float64 }{
		{0, 10}, {10, 10}, {10.1, 74}, {74, 74}, {100, 138},
	}
	for _, c := range cases {
		if got := ArrivalAfterPoll(c.t, 64, 10); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ArrivalAfterPoll(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := ArrivalAfterPoll(33, 0, 0); got != 33 {
		t.Errorf("zero poll interval must deliver immediately, got %v", got)
	}
}

func TestQuickArrivalAfterPollProperties(t *testing.T) {
	f := func(tRaw, phaseRaw uint32) bool {
		tm := float64(tRaw%100000) / 10
		poll := 64.0
		phase := float64(phaseRaw%640) / 10
		got := ArrivalAfterPoll(tm, poll, phase)
		// Delivery is never before arrival and never more than one
		// polling interval late.
		return got >= tm-1e-9 && got <= tm+poll+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestModifiedPingPongReducesVariance(t *testing.T) {
	// The paper's point: with a 64 us polling interval, the conventional
	// ping-pong's half-RTT estimates are phase-locked and far from the
	// true one-way time; random receiver delays decorrelate the phases.
	const owUS = 80.0
	rng := rand.New(rand.NewSource(1))

	// Across many independent runs, the spread of conventional means is
	// wide; the spread of modified means is narrow and close to truth.
	spread := func(randomDelay bool) (lo, hi float64) {
		lo, hi = 1e18, -1e18
		for run := 0; run < 40; run++ {
			r := PingPong(owUS, 64, 200, randomDelay, rng)
			if r.MeanUS < lo {
				lo = r.MeanUS
			}
			if r.MeanUS > hi {
				hi = r.MeanUS
			}
		}
		return lo, hi
	}
	cLo, cHi := spread(false)
	mLo, mHi := spread(true)
	if (cHi - cLo) <= (mHi - mLo) {
		t.Fatalf("modified technique did not reduce run-to-run spread: conventional %v, modified %v",
			cHi-cLo, mHi-mLo)
	}
	// Modified means should sit within ~one polling interval of truth.
	if mLo < owUS-5 || mHi > owUS+64+5 {
		t.Fatalf("modified means [%v, %v] out of plausible range around %v", mLo, mHi, owUS)
	}
}

func TestPingPongNoPolling(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := PingPong(10, 0, 100, false, rng)
	if math.Abs(r.MeanUS-10) > 1e-9 || r.StdDevUS > 1e-9 {
		t.Fatalf("without polling, half-RTT must equal one-way time exactly: %+v", r)
	}
}
