package netsim

import (
	"math"
	"math/rand"
)

// This file models the paper's ping-pong measurement methodology (§V).
//
// StarBug's NIC drivers had a 64 microsecond "network latency"
// attribute — the polling interval at which the driver checks for new
// messages. A conventional ping-pong locks into a phase relationship
// with that polling clock, so measured round-trip times are quantized
// and highly variable between runs. The paper's modified technique
// inserts a random delay before the receiver replies, decorrelating the
// benchmark from the polling phase so the mean converges.

// ArrivalAfterPoll returns the time at which a message that finishes
// arriving at wire-time t (microseconds) is actually delivered to the
// application, given a driver polling interval pollUS and the driver's
// polling phase offset (0 <= phase < pollUS). A zero pollUS delivers
// immediately (kernel-bypass fabrics such as MX).
func ArrivalAfterPoll(t, pollUS, phase float64) float64 {
	if pollUS <= 0 {
		return t
	}
	// Next poll tick at or after t, on the grid {phase + k*pollUS}.
	k := (t - phase) / pollUS
	ki := float64(int(k))
	if ki < k {
		ki++
	}
	tick := phase + ki*pollUS
	if tick < t {
		tick += pollUS
	}
	return tick
}

// PingPongResult summarizes repeated ping-pong measurements.
type PingPongResult struct {
	MeanUS   float64
	MinUS    float64
	MaxUS    float64
	StdDevUS float64
}

// PingPong simulates reps round trips for a message whose one-way
// transfer time is owUS microseconds, over a driver with the given
// polling interval. If randomDelay is true, random delays
// (0..4*pollUS) are inserted before each ping and before each reply —
// the paper's modified technique, which decorrelates both hops from
// the drivers' polling phases; the inserted delays are excluded from
// the measurement. Otherwise both sides respond immediately and the
// measurement locks into the polling phase. rng must not be nil.
func PingPong(owUS, pollUS float64, reps int, randomDelay bool, rng *rand.Rand) PingPongResult {
	if reps <= 0 {
		reps = 1
	}
	phaseA := rng.Float64() * maxf(pollUS, 1)
	phaseB := rng.Float64() * maxf(pollUS, 1)
	var res PingPongResult
	res.MinUS = 1e18
	sum, sumsq := 0.0, 0.0
	now := rng.Float64() * maxf(pollUS, 1) // arbitrary start phase
	for i := 0; i < reps; i++ {
		if randomDelay {
			// Desynchronize the ping from A's own poll-locked clock.
			now += rng.Float64() * 4 * maxf(pollUS, 1)
		}
		start := now
		// Ping: A -> B, delivered at B's next poll.
		arriveB := ArrivalAfterPoll(now+owUS, pollUS, phaseB)
		replyAt := arriveB
		if randomDelay {
			replyAt += rng.Float64() * 4 * maxf(pollUS, 1)
		}
		// Pong: B -> A.
		arriveA := ArrivalAfterPoll(replyAt+owUS, pollUS, phaseA)
		rtt := arriveA - start
		if randomDelay {
			rtt -= replyAt - arriveB // subtract the known inserted delay
		}
		half := rtt / 2
		sum += half
		sumsq += half * half
		if half < res.MinUS {
			res.MinUS = half
		}
		if half > res.MaxUS {
			res.MaxUS = half
		}
		now = arriveA
	}
	n := float64(reps)
	res.MeanUS = sum / n
	v := sumsq/n - res.MeanUS*res.MeanUS
	if v < 0 {
		v = 0
	}
	res.StdDevUS = math.Sqrt(v)
	return res
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
