// Package netsim models the network fabrics of the paper's StarBug
// testbed — Fast Ethernet, Gigabit Ethernet and 2-Gigabit Myrinet — so
// the evaluation figures can be regenerated without the 2006 hardware.
//
// Two facilities are provided:
//
//   - Fabric descriptions (latency, bandwidth, achievable efficiency,
//     NIC-driver polling interval, socket buffer size) that both the
//     live shaped transport (internal/transport.NewShaped) and the
//     analytic models (internal/perfmodel) consume; and
//
//   - a message-transfer pipeline calculator: a message crosses a
//     sequence of stages (pack, wire, unpack, ...) in chunks, stages
//     overlap across chunks like a hardware pipeline, and whole-message
//     (non-pipelined) stages serialize. This single mechanism produces
//     the qualitative effects the paper reports: copy costs that are
//     hidden for small eager messages but exposed for large rendezvous
//     transfers, and the throughput drop at the protocol switch point.
package netsim

import "fmt"

// Fabric describes an interconnect as seen by one process pair.
type Fabric struct {
	// Name appears in reports ("Fast Ethernet", ...).
	Name string
	// LatencyUS is the one-way zero-byte wire latency in microseconds,
	// including switch traversal.
	LatencyUS float64
	// BandwidthMbps is the signalling rate in megabits per second.
	BandwidthMbps float64
	// Efficiency is the fraction of BandwidthMbps achievable by a
	// well-tuned zero-copy stack (protocol headers, interframe gaps).
	Efficiency float64
	// PollUS is the NIC driver's polling interval in microseconds; the
	// paper measured 64 us on StarBug's Intel e1000 driver and it is
	// the reason for their modified ping-pong technique (§V).
	PollUS float64
	// SocketBufBytes is the kernel socket buffer (send and receive);
	// the paper sets 512 KiB on Gigabit Ethernet.
	SocketBufBytes int
	// ChunkBytes is the unit in which data moves through pipeline
	// stages (an MTU-batch / internal transfer granularity).
	ChunkBytes int
}

// String returns the fabric name.
func (f Fabric) String() string { return f.Name }

// NSPerByte returns the wire occupancy per byte in nanoseconds at the
// achievable (efficiency-scaled) bandwidth.
func (f Fabric) NSPerByte() float64 {
	return 8.0 * 1000.0 / (f.BandwidthMbps * f.Efficiency)
}

// MaxMbps returns the achievable bandwidth in Mbps.
func (f Fabric) MaxMbps() float64 { return f.BandwidthMbps * f.Efficiency }

// BytesPerSecond returns the achievable bandwidth in bytes/second.
func (f Fabric) BytesPerSecond() float64 { return f.MaxMbps() * 1e6 / 8 }

// FastEthernet models StarBug's 100 Mbit/s network (Figs. 10–11).
func FastEthernet() Fabric {
	return Fabric{
		Name:           "Fast Ethernet",
		LatencyUS:      55,
		BandwidthMbps:  100,
		Efficiency:     0.92,
		PollUS:         64,
		SocketBufBytes: 64 << 10,
		ChunkBytes:     8 << 10,
	}
}

// GigabitEthernet models StarBug's Intel e1000 network with the paper's
// 512 KiB socket buffers (Figs. 12–13).
func GigabitEthernet() Fabric {
	return Fabric{
		Name:           "Gigabit Ethernet",
		LatencyUS:      21,
		BandwidthMbps:  1000,
		Efficiency:     0.92,
		PollUS:         64,
		SocketBufBytes: 512 << 10,
		ChunkBytes:     32 << 10,
	}
}

// Myrinet2G models the 2 Gbit/s Myrinet with the MX library
// (Figs. 14–15). MX bypasses the kernel: no driver polling interval.
func Myrinet2G() Fabric {
	return Fabric{
		Name:           "Myrinet 2G",
		LatencyUS:      2.2,
		BandwidthMbps:  2000,
		Efficiency:     0.93,
		PollUS:         0,
		SocketBufBytes: 1 << 20,
		ChunkBytes:     32 << 10,
	}
}

// SharedMemory models the intra-node path of a hybrid (smpdev-routed)
// job: a process-internal handoff, no NIC. Latency is a cond-var
// wakeup; bandwidth is a single-stream memcpy. It is the intra level
// of perfmodel's two-level collective model.
func SharedMemory() Fabric {
	return Fabric{
		Name:          "Shared Memory",
		LatencyUS:     0.5,
		BandwidthMbps: 48_000, // ~6 GB/s single-stream copy
		Efficiency:    1.0,
		ChunkBytes:    32 << 10,
	}
}

// Fabrics returns the three modelled fabrics in paper order.
func Fabrics() []Fabric {
	return []Fabric{FastEthernet(), GigabitEthernet(), Myrinet2G()}
}

// FabricByName resolves a fabric by its short or full name.
func FabricByName(name string) (Fabric, error) {
	switch name {
	case "fast", "fastethernet", "Fast Ethernet":
		return FastEthernet(), nil
	case "gige", "gigabit", "Gigabit Ethernet":
		return GigabitEthernet(), nil
	case "mx", "myrinet", "Myrinet 2G":
		return Myrinet2G(), nil
	}
	return Fabric{}, fmt.Errorf("netsim: unknown fabric %q", name)
}

// Stage is one step a message chunk passes through on its way from the
// sender's user buffer to the receiver's user buffer.
type Stage struct {
	// Name identifies the stage in traces ("pack", "wire", ...).
	Name string
	// SetupUS is a fixed cost paid once, by the first chunk.
	SetupUS float64
	// NSPerByte is the stage's per-byte occupancy.
	NSPerByte float64
	// WholeMessage marks a stage that cannot be pipelined: the entire
	// message must pass through it before the next stage starts (e.g.
	// mpjbuf packing into a staging buffer before any data is written,
	// or a JNI copy of the full array before the native send).
	WholeMessage bool
}

func (s Stage) chunkUS(bytes int) float64 { return float64(bytes) * s.NSPerByte / 1000.0 }

// PipelineUS returns the time, in microseconds, for a message of the
// given size to traverse the stages, moving in chunks of chunkBytes.
// Pipelined stages overlap across chunks (classic pipeline formula:
// fill time plus bottleneck-dominated steady state); WholeMessage
// stages act as barriers that drain the pipeline.
func PipelineUS(stages []Stage, msgBytes, chunkBytes int) float64 {
	if msgBytes < 0 {
		msgBytes = 0
	}
	if chunkBytes <= 0 {
		chunkBytes = 8 << 10
	}
	total := 0.0
	// Split the stage list into segments separated by WholeMessage
	// barriers; each pipelined segment contributes fill + steady-state,
	// each barrier contributes its full-message time.
	var segment []Stage
	flush := func() {
		if len(segment) == 0 {
			return
		}
		nChunks := (msgBytes + chunkBytes - 1) / chunkBytes
		if nChunks == 0 {
			nChunks = 1
		}
		lastChunk := msgBytes - (nChunks-1)*chunkBytes
		if msgBytes == 0 {
			lastChunk = 0
		}
		fill, bottleneck := 0.0, 0.0
		for _, s := range segment {
			fill += s.SetupUS + s.chunkUS(min(chunkBytes, max(msgBytes, 0)))
			if t := s.chunkUS(chunkBytes); t > bottleneck {
				bottleneck = t
			}
		}
		// Steady state: remaining nChunks-1 chunks each take the
		// bottleneck stage time; the final (possibly short) chunk is
		// approximated at its proportional share.
		if nChunks > 1 {
			steady := float64(nChunks-2) * bottleneck
			if steady < 0 {
				steady = 0
			}
			lastFrac := float64(lastChunk) / float64(chunkBytes)
			total += fill + steady + bottleneck*lastFrac
		} else {
			total += fill
		}
		segment = segment[:0]
	}
	for _, s := range stages {
		if s.WholeMessage {
			flush()
			total += s.SetupUS + s.chunkUS(msgBytes)
			continue
		}
		segment = append(segment, s)
	}
	flush()
	return total
}
