package rma

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mpj/internal/ibisdev"
	"mpj/internal/mpjdev"
	"mpj/internal/smpdev"
	"mpj/internal/xdev"
)

var groupCtr atomic.Int64

// runWin runs an n-rank in-process job on the named device flavour,
// creates one window of winBytes per rank, runs fn, and tears
// everything down. "smp" exercises the shared-memory direct path,
// "ibis" the active-message path (ibisdev rides smpdev but does not
// expose xdev.MemoryDomain).
func runWin(t *testing.T, flavour string, n, winBytes int, cfg Config, fn func(w *Win, rank int)) {
	t.Helper()
	group := fmt.Sprintf("rma-%s-%d", flavour, groupCtr.Add(1))
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = func() error {
				var d xdev.Device
				switch flavour {
				case "smp":
					d = smpdev.New()
				case "ibis":
					d = ibisdev.New()
				default:
					return fmt.Errorf("unknown flavour %q", flavour)
				}
				pids, err := d.Init(xdev.Config{Rank: rank, Size: n, Group: group})
				if err != nil {
					return fmt.Errorf("init: %w", err)
				}
				defer d.Finish()
				comm, err := mpjdev.NewComm(d, pids, rank, 4096)
				if err != nil {
					return err
				}
				w, err := New(comm, make([]byte, winBytes), cfg)
				if err != nil {
					return fmt.Errorf("window create: %w", err)
				}
				fn(w, rank)
				if err := w.Free(); err != nil {
					return fmt.Errorf("free: %w", err)
				}
				return nil
			}()
		}(i)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestAccumulateApply(t *testing.T) {
	le := binary.LittleEndian
	i64 := func(vs ...int64) []byte {
		b := make([]byte, 8*len(vs))
		for i, v := range vs {
			le.PutUint64(b[8*i:], uint64(v))
		}
		return b
	}
	cases := []struct {
		name          string
		dst, src, out []byte
		et            ElemType
		op            AccOp
	}{
		{"replace", i64(1, 2), i64(9, 8), i64(9, 8), Int64, Replace},
		{"sum64", i64(1, -2), i64(10, 3), i64(11, 1), Int64, Sum},
		{"prod64", i64(3, -4), i64(5, 2), i64(15, -8), Int64, Prod},
		{"max64", i64(3, 9), i64(5, 2), i64(5, 9), Int64, Max},
		{"min64", i64(3, 9), i64(5, 2), i64(3, 2), Int64, Min},
		{"band", i64(0b1100), i64(0b1010), i64(0b1000), Int64, Band},
		{"bor", i64(0b1100), i64(0b1010), i64(0b1110), Int64, Bor},
		{"bxor", i64(0b1100), i64(0b1010), i64(0b0110), Int64, Bxor},
		{"bytesum", []byte{1, 2}, []byte{3, 4}, []byte{4, 6}, Byte, Sum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := append([]byte(nil), tc.dst...)
			if err := accumulate(dst, tc.src, tc.et, tc.op); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, tc.out) {
				t.Fatalf("got %v want %v", dst, tc.out)
			}
		})
	}

	t.Run("int32", func(t *testing.T) {
		dst := make([]byte, 4)
		src := make([]byte, 4)
		neg := int32(-5)
		le.PutUint32(dst, uint32(neg))
		le.PutUint32(src, 7)
		if err := accumulate(dst, src, Int32, Sum); err != nil {
			t.Fatal(err)
		}
		if got := int32(le.Uint32(dst)); got != 2 {
			t.Fatalf("got %d want 2", got)
		}
	})
	t.Run("float64", func(t *testing.T) {
		dst := make([]byte, 8)
		src := make([]byte, 8)
		le.PutUint64(dst, f64bits(1.5))
		le.PutUint64(src, f64bits(2.25))
		if err := accumulate(dst, src, Float64, Sum); err != nil {
			t.Fatal(err)
		}
		if got := f64(le.Uint64(dst)); got != 3.75 {
			t.Fatalf("got %v want 3.75", got)
		}
	})
	t.Run("float32-band-rejected", func(t *testing.T) {
		if err := accumulate(make([]byte, 4), make([]byte, 4), Float32, Band); err == nil {
			t.Fatal("BAND over floats accepted")
		}
	})
	t.Run("length-mismatch", func(t *testing.T) {
		if err := accumulate(make([]byte, 8), make([]byte, 7), Int64, Sum); err == nil {
			t.Fatal("ragged length accepted")
		}
	})
}

// testWindowOps drives the core Put/Get/Accumulate/Fence/Lock cycle;
// shared between the direct and active-message paths.
func testWindowOps(t *testing.T, flavour string) {
	const winBytes = 200 << 10 // forces segmentation on the AM path
	runWin(t, flavour, 2, winBytes, Config{}, func(w *Win, rank int) {
		if sm := w.State().SharedMem; sm != (flavour == "smp") {
			t.Errorf("rank %d: SharedMem=%v on %s", rank, sm, flavour)
		}
		// Epoch 1: rank 0 puts a large pattern into rank 1.
		data := make([]byte, 150<<10)
		if rank == 0 {
			for i := range data {
				data[i] = byte(i*31 + 7)
			}
			if err := w.Put(data, 1, 4096); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		if err := w.Fence(); err != nil {
			t.Errorf("rank %d fence 1: %v", rank, err)
			return
		}
		if rank == 1 {
			win := w.Buffer()
			for i := range data {
				if win[4096+i] != byte(i*31+7) {
					t.Errorf("byte %d: got %d want %d", i, win[4096+i], byte(i*31+7))
					break
				}
			}
		}
		// Rank 0 reads its data back one-sidedly: bit-identity round trip.
		if rank == 0 {
			back := make([]byte, len(data))
			if err := w.Get(back, 1, 4096); err != nil {
				t.Errorf("get: %v", err)
			} else if !bytes.Equal(back, data) {
				t.Error("get round trip differs from put data")
			}
		}
		if err := w.Fence(); err != nil {
			t.Errorf("rank %d fence 2: %v", rank, err)
			return
		}
		// Epoch 3: both ranks accumulate into rank 0; same-origin
		// Replace-then-Sum must apply in issue order.
		le := binary.LittleEndian
		val := make([]byte, 8)
		le.PutUint64(val, uint64(100+rank))
		if err := w.Accumulate(val, 0, 8*rank, Int64, Replace); err != nil {
			t.Errorf("accumulate replace: %v", err)
		}
		le.PutUint64(val, 7)
		if err := w.Accumulate(val, 0, 8*rank, Int64, Sum); err != nil {
			t.Errorf("accumulate sum: %v", err)
		}
		if err := w.Fence(); err != nil {
			t.Errorf("rank %d fence 3: %v", rank, err)
			return
		}
		if rank == 0 {
			for r := 0; r < 2; r++ {
				if got := int64(le.Uint64(w.Buffer()[8*r:])); got != int64(107+r) {
					t.Errorf("slot %d: got %d want %d", r, got, 107+r)
				}
			}
		}
		// Passive target: rank 1 writes rank 0's window under an
		// exclusive lock; rank 0 waits on a fence-free flag.
		if rank == 1 {
			if err := w.Lock(0, false); err != nil {
				t.Errorf("lock: %v", err)
				return
			}
			le.PutUint64(val, 4242)
			if err := w.Put(val, 0, 1024); err != nil {
				t.Errorf("locked put: %v", err)
			}
			if err := w.Unlock(0); err != nil {
				t.Errorf("unlock: %v", err)
			}
		}
		if err := w.Fence(); err != nil {
			t.Errorf("rank %d fence 4: %v", rank, err)
			return
		}
		if rank == 0 {
			if got := le.Uint64(w.Buffer()[1024:]); got != 4242 {
				t.Errorf("locked put: got %d want 4242", got)
			}
		}
	})
}

func TestWindowOpsShared(t *testing.T) { testWindowOps(t, "smp") }
func TestWindowOpsAM(t *testing.T)     { testWindowOps(t, "ibis") }

// TestSharedPutZeroAllocs pins the tentpole performance property: on a
// shared-address-space device a Put is a lock + memcpy with zero
// steady-state allocation.
func TestSharedPutZeroAllocs(t *testing.T) {
	runWin(t, "smp", 2, 1<<16, Config{}, func(w *Win, rank int) {
		if rank != 0 {
			return
		}
		data := make([]byte, 4096)
		if err := w.Put(data, 1, 0); err != nil {
			t.Fatalf("warmup put: %v", err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if err := w.Put(data, 1, 128); err != nil {
				t.Fatalf("put: %v", err)
			}
		})
		if allocs != 0 {
			t.Errorf("shared-memory Put: %.1f allocs/op, want 0", allocs)
		}
		got := make([]byte, 64)
		allocsGet := testing.AllocsPerRun(200, func() {
			if err := w.Get(got, 1, 128); err != nil {
				t.Fatalf("get: %v", err)
			}
		})
		if allocsGet != 0 {
			t.Errorf("shared-memory Get: %.1f allocs/op, want 0", allocsGet)
		}
	})
}

func TestOutOfRange(t *testing.T) {
	runWin(t, "smp", 2, 1024, Config{}, func(w *Win, rank int) {
		if rank == 0 {
			if err := w.Put(make([]byte, 64), 1, 1000); !errors.Is(err, ErrOutOfRange) {
				t.Errorf("overrun put: err=%v, want ErrOutOfRange", err)
			}
			if err := w.Get(make([]byte, 2048), 1, 0); !errors.Is(err, ErrOutOfRange) {
				t.Errorf("overrun get: err=%v, want ErrOutOfRange", err)
			}
			if err := w.Put(make([]byte, 8), 5, 0); err == nil {
				t.Error("put to rank 5 of 2 accepted")
			}
		}
	})
}

// TestAMOutOfRangeGet checks the remote bounds check on the message
// path: the target rejects the access and the origin sees
// ErrOutOfRange rather than corrupt data or a hang.
func TestAMOutOfRangeGet(t *testing.T) {
	runWin(t, "ibis", 2, 1024, Config{}, func(w *Win, rank int) {
		if rank == 0 {
			err := w.Get(make([]byte, 512), 1, 900)
			if !errors.Is(err, ErrOutOfRange) {
				t.Errorf("remote overrun get: err=%v, want ErrOutOfRange", err)
			}
		}
	})
}

func TestLockQueueFIFO(t *testing.T) {
	// Unit-level check of the lock state machine: a queued exclusive
	// request blocks later shared requests (no reader starvation of the
	// writer), and promotion grants the leading run.
	w := &Win{exclHolder: -1, sharedHolders: make(map[int]bool)}
	if !w.grantableLocked(true) {
		t.Fatal("first shared not grantable")
	}
	w.takeLockLocked(1, true)
	if w.grantableLocked(false) {
		t.Fatal("exclusive grantable while shared held")
	}
	w.lkQ = append(w.lkQ, lockReq{src: 2, opID: 10, shared: false})
	if w.grantableLocked(true) {
		t.Fatal("shared grantable past queued exclusive")
	}
	w.lkQ = append(w.lkQ, lockReq{src: 3, opID: 11, shared: true})
	w.lkQ = append(w.lkQ, lockReq{src: 4, opID: 12, shared: true})
	w.releaseLockLocked(1)
	g := w.promoteLocked()
	if len(g) != 1 || g[0].src != 2 || g[0].shared {
		t.Fatalf("promotion after release: %+v, want exclusive for rank 2", g)
	}
	w.releaseLockLocked(2)
	g = w.promoteLocked()
	if len(g) != 2 || g[0].src != 3 || g[1].src != 4 {
		t.Fatalf("shared batch promotion: %+v, want ranks 3,4", g)
	}
}
