package rma

import (
	"fmt"

	"mpj/internal/mpjbuf"
	"mpj/internal/mpjdev"
)

// loop is the window's handler goroutine: the "agent" that makes
// one-sided communication one-sided. It receives every frame addressed
// to this rank on the window's context — data operations to apply to
// the local region, synchronization traffic to count, replies to
// release blocked origin calls — until a stop frame or a device-level
// receive failure (Finish, Abort) retires it.
//
// The handler never blocks on another rank while holding w.mu, and
// every send it issues is an eager-sized frame, so it cannot deadlock
// against a peer's handler doing the same.
func (w *Win) loop() {
	defer close(w.hdone)
	for {
		buf := mpjbuf.New(frameWords * 8)
		st, err := w.comm.Recv(buf, mpjdev.AnySource, rmaTag)
		if err != nil {
			w.fail(fmt.Errorf("rma: window handler: %w", err))
			return
		}
		if w.handle(buf, st.Source) {
			return
		}
	}
}

// handle dispatches one frame; it reports whether the handler should
// exit.
func (w *Win) handle(buf *mpjbuf.Buffer, src int) bool {
	var hdr [frameWords]int64
	if _, err := buf.ReadLongs(hdr[:], 0, frameWords); err != nil {
		w.fail(fmt.Errorf("rma: corrupt frame from rank %d: %w", src, err))
		return true
	}
	kind, id := hdr[0], uint64(hdr[1])
	off, n := hdr[2], hdr[3]
	a1, a2 := hdr[4], hdr[5]

	switch kind {
	case frStop:
		return true

	case frPut:
		status := remoteOK
		w.local.mu.Lock()
		if off < 0 || n < 0 || off+n > int64(len(w.local.buf)) {
			status = remoteRange
		} else if _, err := buf.ReadBytes(w.local.buf[off:off+n], 0, int(n)); err != nil {
			status = remoteApply
		}
		w.local.mu.Unlock()
		w.reply(src, frAck, id, status)

	case frAcc:
		status := remoteOK
		if off < 0 || n < 0 || off+n > int64(len(w.local.buf)) {
			status = remoteRange
		} else {
			payload := make([]byte, n)
			if _, err := buf.ReadBytes(payload, 0, int(n)); err != nil {
				status = remoteApply
			} else {
				w.local.mu.Lock()
				err := accumulate(w.local.buf[off:off+n], payload, ElemType(a1), AccOp(a2))
				w.local.mu.Unlock()
				if err != nil {
					status = remoteApply
				}
			}
		}
		w.reply(src, frAck, id, status)

	case frGet:
		if off < 0 || n < 0 || off+n > int64(len(w.local.buf)) {
			_ = w.sendFrame(src, frGetRep, id, 0, 0, remoteRange, 0, nil)
			break
		}
		payload := make([]byte, n)
		w.local.mu.Lock()
		copy(payload, w.local.buf[off:off+n])
		w.local.mu.Unlock()
		_ = w.sendFrame(src, frGetRep, id, off, n, remoteOK, 0, payload)

	case frGetRep:
		w.mu.Lock()
		wt := w.waits[id]
		delete(w.waits, id)
		w.mu.Unlock()
		if wt == nil {
			break // origin gave up on this reply (peer-death path)
		}
		if a1 != remoteOK {
			wt.err = fmt.Errorf("rma: remote get from rank %d: %w", src, remoteErr(a1))
		} else if _, err := buf.ReadBytes(wt.dst, 0, int(n)); err != nil {
			wt.err = fmt.Errorf("rma: get reply from rank %d: %w", src, err)
		}
		close(wt.done)

	case frAck:
		w.mu.Lock()
		if a1 != remoteOK && w.failed == nil {
			w.failed = fmt.Errorf("rma: remote operation rejected by rank %d: %w", src, remoteErr(a1))
		}
		if w.pending[src] > 0 {
			w.pending[src]--
			w.pendTot--
		}
		w.bcastLocked()
		w.mu.Unlock()

	case frFence:
		w.mu.Lock()
		w.fences[a2]++
		w.bcastLocked()
		w.mu.Unlock()

	case frLock:
		shared := a1 == 1
		grant := false
		w.mu.Lock()
		if w.grantableLocked(shared) {
			w.takeLockLocked(src, shared)
			grant = true
		} else {
			w.lkQ = append(w.lkQ, lockReq{src: src, opID: id, shared: shared})
		}
		w.mu.Unlock()
		if grant {
			w.reply(src, frGrant, id, remoteOK)
		}

	case frUnlock:
		w.mu.Lock()
		w.releaseLockLocked(src)
		grants := w.promoteLocked()
		w.mu.Unlock()
		w.reply(src, frUnlockAck, id, remoteOK)
		for _, g := range grants {
			w.reply(g.src, frGrant, g.opID, remoteOK)
		}

	case frGrant, frUnlockAck:
		w.mu.Lock()
		wt := w.waits[id]
		delete(w.waits, id)
		w.mu.Unlock()
		if wt == nil {
			break
		}
		close(wt.done)

	default:
		w.fail(fmt.Errorf("rma: unknown frame kind %d from rank %d", kind, src))
		return true
	}
	return false
}

// reply sends a header-only response frame; a failure means the origin
// is gone, and its own liveness polling handles that.
func (w *Win) reply(dst int, kind int64, id uint64, status int64) {
	_ = w.sendFrame(dst, kind, id, 0, 0, status, 0, nil)
}

// remoteErr maps a wire status code to an error.
func remoteErr(code int64) error {
	switch code {
	case remoteRange:
		return ErrOutOfRange
	case remoteApply:
		return fmt.Errorf("apply failed")
	}
	return fmt.Errorf("status %d", code)
}

// Passive-target lock state machine. All four helpers run under w.mu;
// grants are sent by the caller after the lock is dropped.

// grantableLocked reports whether a fresh request can be granted now.
// A non-empty queue always defers the request behind it (FIFO), which
// is what keeps a stream of shared requests from starving a queued
// exclusive one.
func (w *Win) grantableLocked(shared bool) bool {
	if len(w.lkQ) > 0 {
		return false
	}
	if shared {
		return w.exclHolder < 0
	}
	return w.exclHolder < 0 && len(w.sharedHolders) == 0
}

func (w *Win) takeLockLocked(src int, shared bool) {
	if shared {
		w.sharedHolders[src] = true
	} else {
		w.exclHolder = src
	}
}

func (w *Win) releaseLockLocked(src int) {
	if w.exclHolder == src {
		w.exclHolder = -1
		return
	}
	delete(w.sharedHolders, src)
}

// promoteLocked grants as many queued requests as the new state
// admits: either one exclusive, or the leading run of shared
// requests.
func (w *Win) promoteLocked() []lockReq {
	var out []lockReq
	for len(w.lkQ) > 0 {
		h := w.lkQ[0]
		if h.shared {
			if w.exclHolder >= 0 {
				break
			}
			w.sharedHolders[h.src] = true
		} else {
			if w.exclHolder >= 0 || len(w.sharedHolders) > 0 {
				break
			}
			w.exclHolder = h.src
		}
		out = append(out, h)
		w.lkQ = w.lkQ[1:]
	}
	return out
}
