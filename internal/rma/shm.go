package rma

import "sync"

// region is one rank's exposed window memory. Every one-sided access —
// local, shared-memory direct, or applied by the window's message
// handler — happens under mu, which is what makes an individual Put,
// Get or Accumulate atomic with respect to every other one on the same
// window.
type region struct {
	mu  sync.Mutex
	buf []byte
}

// shmGroup is the rendezvous for the windows of one WinCreate on a
// shared-address-space device: each rank registers its region under
// its rank index, and afterwards every rank reaches every region with
// a plain slice access. Registration happens before the window's
// initial fence and lookup after it, so the fence's message exchange
// (through the device's own locks and channels) is the happens-before
// edge that publishes the slice to all ranks.
type shmGroup struct {
	regions []*region
	joined  int
}

// shmBoard is the process-global registry of window groups, keyed by
// the device's memory domain plus the window's private context. Two
// windows of the same communicator land on different contexts and
// therefore different groups; ranks of unrelated jobs differ in
// domain.
var shmBoard = struct {
	sync.Mutex
	groups map[string]*shmGroup
}{groups: make(map[string]*shmGroup)}

// shmJoin registers rank's region under key and returns the group
// shared by all ranks of the window.
func shmJoin(key string, size, rank int, r *region) *shmGroup {
	shmBoard.Lock()
	defer shmBoard.Unlock()
	g := shmBoard.groups[key]
	if g == nil || len(g.regions) != size {
		g = &shmGroup{regions: make([]*region, size)}
		shmBoard.groups[key] = g
	}
	g.regions[rank] = r
	g.joined++
	return g
}

// shmLeave drops rank's registration, deleting the group once the last
// rank leaves so a later window may reuse the context.
func shmLeave(key string, rank int) {
	shmBoard.Lock()
	defer shmBoard.Unlock()
	g := shmBoard.groups[key]
	if g == nil {
		return
	}
	if rank >= 0 && rank < len(g.regions) {
		g.regions[rank] = nil
	}
	g.joined--
	if g.joined <= 0 {
		delete(shmBoard.groups, key)
	}
}
