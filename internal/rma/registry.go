package rma

import (
	"sync"

	"mpj/internal/xdev"
)

// WinState is a point-in-time view of one window's rank-local state,
// surfaced through the telemetry /introspect endpoint.
type WinState struct {
	// Context is the window's private matching context.
	Context int `json:"ctx"`
	// Bytes is the size of the locally exposed region.
	Bytes int `json:"bytes"`
	// SharedMem reports whether data operations take the direct
	// shared-memory path.
	SharedMem bool `json:"sharedMem"`
	// Epoch counts completed fences.
	Epoch int64 `json:"epoch"`
	// PendingOps is the number of unacked outbound Put/Accumulate
	// segments.
	PendingOps int `json:"pendingOps"`
	// ExclHolder is the rank holding this window's exclusive lock, -1
	// when none.
	ExclHolder int `json:"exclHolder"`
	// SharedHolders is the number of ranks holding shared locks.
	SharedHolders int `json:"sharedHolders"`
	// QueuedLocks is the number of lock requests waiting at this
	// window.
	QueuedLocks int `json:"queuedLocks"`
	// Failed carries the window's failure, when it has one.
	Failed string `json:"failed,omitempty"`
}

// State snapshots the window.
func (w *Win) State() WinState {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WinState{
		Context:       w.comm.Context(),
		Bytes:         len(w.local.buf),
		SharedMem:     w.shm != nil,
		Epoch:         w.epoch,
		PendingOps:    w.pendTot,
		ExclHolder:    w.exclHolder,
		SharedHolders: len(w.sharedHolders),
		QueuedLocks:   len(w.lkQ),
	}
	if w.failed != nil {
		st.Failed = w.failed.Error()
	}
	return st
}

// winReg tracks the live windows of each device instance so telemetry
// can enumerate them without the core layer keeping its own list.
var winReg = struct {
	sync.Mutex
	m map[xdev.Device][]*Win
}{m: make(map[xdev.Device][]*Win)}

func regAdd(dev xdev.Device, w *Win) {
	winReg.Lock()
	winReg.m[dev] = append(winReg.m[dev], w)
	winReg.Unlock()
}

func regDel(dev xdev.Device, w *Win) {
	winReg.Lock()
	defer winReg.Unlock()
	wins := winReg.m[dev]
	for i, x := range wins {
		if x == w {
			wins = append(wins[:i], wins[i+1:]...)
			break
		}
	}
	if len(wins) == 0 {
		delete(winReg.m, dev)
		return
	}
	winReg.m[dev] = wins
}

// DeviceState snapshots every live window of dev (telemetry hook).
func DeviceState(dev xdev.Device) []WinState {
	winReg.Lock()
	wins := append([]*Win(nil), winReg.m[dev]...)
	winReg.Unlock()
	out := make([]WinState, 0, len(wins))
	for _, w := range wins {
		out = append(out, w.State())
	}
	return out
}
