package rma

import (
	"encoding/binary"
	"fmt"
	"math"
)

func f32(b uint32) float32     { return math.Float32frombits(b) }
func f32bits(f float32) uint32 { return math.Float32bits(f) }
func f64(b uint64) float64     { return math.Float64frombits(b) }
func f64bits(f float64) uint64 { return math.Float64bits(f) }

// One-sided operations ride a single active-message frame shape on the
// window's private matching context: a fixed header of six int64 words
// followed by an optional byte payload, packed with the mpjbuf typed
// sections so every device moves it like any other message.
//
//	[kind, opID, offset, length, aux1, aux2] + payload
//
// kind selects the decode; opID correlates a request with its reply;
// offset/length address the target window in bytes; aux1/aux2 carry
// kind-specific extras (element type + accumulate op, fence epoch,
// lock mode, error codes). Large Put/Get transfers are split into
// segments of at most Config.Segment payload bytes, each its own
// frame, so frames stay under the devices' eager limits and a transfer
// never monopolizes the target's handler.
const (
	frPut int64 = iota + 1
	frGet
	frAcc
	frGetRep
	frAck
	frFence
	frLock
	frGrant
	frUnlock
	frUnlockAck
	frStop // local handler shutdown, only ever self-addressed
)

// frameWords is the fixed header length in int64 words.
const frameWords = 6

// Remote status codes carried in a reply's aux1.
const (
	remoteOK int64 = iota
	remoteRange
	remoteApply
)

// AccOp identifies the combining operation of an Accumulate. The codes
// are wire-stable: both sides of a job must agree on them.
type AccOp uint8

// Built-in accumulate operations (MPI_REPLACE, MPI_SUM, ...). Only
// built-ins travel the wire; user-defined ops cannot be shipped to the
// target.
const (
	Replace AccOp = iota + 1
	Sum
	Prod
	Max
	Min
	Band
	Bor
	Bxor
)

var accOpNames = map[AccOp]string{
	Replace: "REPLACE", Sum: "SUM", Prod: "PROD", Max: "MAX",
	Min: "MIN", Band: "BAND", Bor: "BOR", Bxor: "BXOR",
}

// String names the accumulate op.
func (o AccOp) String() string {
	if n, ok := accOpNames[o]; ok {
		return n
	}
	return fmt.Sprintf("AccOp(%d)", uint8(o))
}

// ElemType identifies the element layout of an Accumulate payload.
// Elements are little-endian in both the payload and the window.
type ElemType uint8

// Element types accumulate operations combine over.
const (
	Byte ElemType = iota + 1
	Int32
	Int64
	Float32
	Float64
)

// Size returns the element width in bytes.
func (e ElemType) Size() int {
	switch e {
	case Byte:
		return 1
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	}
	return 0
}

var elemNames = map[ElemType]string{
	Byte: "BYTE", Int32: "INT32", Int64: "INT64",
	Float32: "FLOAT32", Float64: "FLOAT64",
}

// String names the element type.
func (e ElemType) String() string {
	if n, ok := elemNames[e]; ok {
		return n
	}
	return fmt.Sprintf("ElemType(%d)", uint8(e))
}

func combineInt(target, in int64, op AccOp) (int64, error) {
	switch op {
	case Sum:
		return target + in, nil
	case Prod:
		return target * in, nil
	case Max:
		if in > target {
			return in, nil
		}
		return target, nil
	case Min:
		if in < target {
			return in, nil
		}
		return target, nil
	case Band:
		return target & in, nil
	case Bor:
		return target | in, nil
	case Bxor:
		return target ^ in, nil
	}
	return 0, fmt.Errorf("rma: accumulate op %v unsupported for integers", op)
}

func combineFloat(target, in float64, op AccOp) (float64, error) {
	switch op {
	case Sum:
		return target + in, nil
	case Prod:
		return target * in, nil
	case Max:
		if in > target {
			return in, nil
		}
		return target, nil
	case Min:
		if in < target {
			return in, nil
		}
		return target, nil
	}
	return 0, fmt.Errorf("rma: accumulate op %v unsupported for floats", op)
}

// accumulate combines src into dst element-wise: dst[i] = op(dst[i],
// src[i]). The caller holds the target region's lock, so the
// read-modify-write of each element is atomic with respect to every
// other one-sided operation on the window.
func accumulate(dst, src []byte, et ElemType, op AccOp) error {
	w := et.Size()
	if w == 0 {
		return fmt.Errorf("rma: unknown element type %v", et)
	}
	if len(dst) != len(src) || len(src)%w != 0 {
		return fmt.Errorf("rma: accumulate length %d not a multiple of %v elements", len(src), et)
	}
	if op == Replace {
		copy(dst, src)
		return nil
	}
	le := binary.LittleEndian
	switch et {
	case Byte:
		for i := range src {
			v, err := combineInt(int64(dst[i]), int64(src[i]), op)
			if err != nil {
				return err
			}
			dst[i] = byte(v)
		}
	case Int32:
		for i := 0; i < len(src); i += 4 {
			v, err := combineInt(int64(int32(le.Uint32(dst[i:]))), int64(int32(le.Uint32(src[i:]))), op)
			if err != nil {
				return err
			}
			le.PutUint32(dst[i:], uint32(int32(v)))
		}
	case Int64:
		for i := 0; i < len(src); i += 8 {
			v, err := combineInt(int64(le.Uint64(dst[i:])), int64(le.Uint64(src[i:])), op)
			if err != nil {
				return err
			}
			le.PutUint64(dst[i:], uint64(v))
		}
	case Float32:
		for i := 0; i < len(src); i += 4 {
			v, err := combineFloat(float64(f32(le.Uint32(dst[i:]))), float64(f32(le.Uint32(src[i:]))), op)
			if err != nil {
				return err
			}
			le.PutUint32(dst[i:], f32bits(float32(v)))
		}
	case Float64:
		for i := 0; i < len(src); i += 8 {
			v, err := combineFloat(f64(le.Uint64(dst[i:])), f64(le.Uint64(src[i:])), op)
			if err != nil {
				return err
			}
			le.PutUint64(dst[i:], f64bits(v))
		}
	}
	return nil
}
