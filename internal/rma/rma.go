// Package rma implements one-sided communication (MPI-2 RMA) over the
// mpjdev point-to-point layer: windows of rank-local memory that any
// rank reads, writes and combines into with Put, Get and Accumulate,
// without the target posting a matching receive.
//
// Delivery is device-differentiated. On a shared-address-space device
// (xdev.MemoryDomain — smpdev), every rank's window region is
// published on a process-global board, so a Put is a mutex-guarded
// memcpy into the target's memory with zero steady-state allocation;
// only synchronization (Fence, Lock/Unlock) exchanges messages. On
// message-passing devices (niodev, mxdev, ibisdev), data operations
// ride active-message frames on the window's private context: each
// window runs one handler goroutine that receives frames and applies
// them to the local region, and large transfers are segmented so
// frames stay inside the devices' eager limits.
//
// Synchronization follows MPI-2: Fence closes an active-target epoch —
// after every rank's Fence returns, all one-sided operations issued
// before it are visible everywhere; Lock/Unlock bracket passive-target
// epochs, with shared locks admitting concurrent readers and an
// exclusive lock serializing a writer against everyone. A peer dying
// mid-epoch fails Fence/Lock/Unlock with an error satisfying
// errors.Is(err, xdev.ErrPeerLost) instead of hanging: every blocking
// wait polls the device's xdev.PeerChecker.
package rma

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/mpjdev"
	"mpj/internal/xdev"
)

// DefaultSegment is the payload size one-sided transfers are split
// into on the active-message path. It sits below every device's eager
// threshold so RMA frames never enter a rendezvous exchange — the
// target's handler must stay non-blocking.
const DefaultSegment = 64 << 10

// maxOutstanding bounds the unacknowledged Put/Accumulate segments an
// origin keeps in flight before it waits for acks — backpressure so a
// tight one-sided loop cannot bury a target.
const maxOutstanding = 64

// pollEvery is how often a blocked synchronization call re-checks peer
// liveness while waiting for remote progress.
const pollEvery = 25 * time.Millisecond

// rmaTag is the only tag used on the window's private context.
const rmaTag = 0

// Errors reported by window operations.
var (
	// ErrOutOfRange reports an access outside the target's window.
	ErrOutOfRange = errors.New("rma: access outside window bounds")
	// ErrFreed reports an operation on a freed window.
	ErrFreed = errors.New("rma: window freed")
)

// Config tunes a window.
type Config struct {
	// Segment overrides DefaultSegment when positive.
	Segment int
	// Counters receives RmaPuts/RmaGets/RmaAccs/RmaBytes accounting;
	// nil discards it.
	Counters *mpe.Counters
	// Recorder receives RmaPut/RmaGet/RmaAcc events and RmaFence spans;
	// nil disables tracing.
	Recorder mpe.Recorder
}

// repWait is one origin-side slot awaiting a remote reply (a Get
// segment's data, a lock grant, an unlock ack).
type repWait struct {
	dst  []byte // Get only: where the payload lands
	err  error  // written before done is closed
	done chan struct{}
}

// lockReq is a queued passive-target lock request at this window.
type lockReq struct {
	src    int
	opID   uint64
	shared bool
}

// Win is one rank's view of a window: the local exposed region plus
// the machinery to reach every other rank's.
type Win struct {
	comm    *mpjdev.Comm
	seg     int
	ctr     *mpe.Counters
	rec     mpe.Recorder
	checker xdev.PeerChecker // nil when the device cannot report liveness

	local  *region
	shmKey string
	shm    *shmGroup // non-nil on shared-address-space devices

	epochBytes atomic.Int64 // origin bytes since the last fence, for the fence histogram

	mu      sync.Mutex
	change  chan struct{} // closed+replaced on every state change (generation broadcast)
	failed  error
	freed   bool
	epoch   int64
	fences  map[int64]int // epoch -> fence frames received
	pending []int         // per-target unacked Put/Acc segments
	pendTot int
	nextOp  uint64
	waits   map[uint64]*repWait

	// Passive-target lock state of the LOCAL window, driven by the
	// handler.
	exclHolder    int // rank holding the exclusive lock, -1 when none
	sharedHolders map[int]bool
	lkQ           []lockReq

	hdone chan struct{} // closed when the handler goroutine exits
}

// New creates this rank's side of a window exposing buf. It is
// collective over comm's group: every rank must call it, and it
// completes with an initial fence so that when it returns, every
// rank's window exists and its handler is running. The comm must be
// private to the window (a dedicated context); rma owns tag 0 on it.
func New(comm *mpjdev.Comm, buf []byte, cfg Config) (*Win, error) {
	seg := cfg.Segment
	if seg <= 0 {
		seg = DefaultSegment
	}
	ctr := cfg.Counters
	if ctr == nil {
		ctr = mpe.CountersOf(nil)
	}
	var rec mpe.Recorder = mpe.Nop{}
	if cfg.Recorder != nil {
		rec = cfg.Recorder
	}
	w := &Win{
		comm:          comm,
		seg:           seg,
		ctr:           ctr,
		rec:           rec,
		local:         &region{buf: buf},
		change:        make(chan struct{}),
		fences:        make(map[int64]int),
		pending:       make([]int, comm.Size()),
		waits:         make(map[uint64]*repWait),
		exclHolder:    -1,
		sharedHolders: make(map[int]bool),
		hdone:         make(chan struct{}),
	}
	if ck, ok := comm.Device().(xdev.PeerChecker); ok {
		w.checker = ck
	}
	if md, ok := comm.Device().(xdev.MemoryDomain); ok {
		if dom, ok := md.MemoryDomain(); ok {
			w.shmKey = fmt.Sprintf("%s/ctx%d", dom, comm.Context())
			w.shm = shmJoin(w.shmKey, comm.Size(), comm.Rank(), w.local)
		}
	}
	go w.loop()
	regAdd(comm.Device(), w)
	// The initial fence doubles as the collective barrier: its
	// completion proves every rank has registered its region (shm) and
	// started its handler (message path).
	if err := w.Fence(); err != nil {
		w.mu.Lock()
		w.freed = true
		w.mu.Unlock()
		_ = w.sendFrame(comm.Rank(), frStop, 0, 0, 0, 0, 0, nil)
		<-w.hdone
		w.teardown()
		return nil, fmt.Errorf("rma: window create: %w", err)
	}
	return w, nil
}

// Buffer returns the local exposed region. The caller may read and
// write it directly between synchronization calls, per the usual MPI
// rules: local access races with concurrent remote epochs unless
// ordered by Fence or a lock.
func (w *Win) Buffer() []byte { return w.local.buf }

// Size returns the number of ranks in the window's group.
func (w *Win) Size() int { return w.comm.Size() }

// Rank returns the calling rank within the window's group.
func (w *Win) Rank() int { return w.comm.Rank() }

// opCheck validates target rank and state before an operation.
func (w *Win) opCheck(target int) error {
	if target < 0 || target >= w.comm.Size() {
		return fmt.Errorf("rma: target rank %d out of range (size %d)", target, w.comm.Size())
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.freed {
		return ErrFreed
	}
	return w.failed
}

// directRegion returns the target's region when it is reachable by
// plain memory access (the local window, or any window on a
// shared-address-space device), and nil when the operation must take
// the active-message path.
func (w *Win) directRegion(target int) *region {
	if target == w.comm.Rank() {
		return w.local
	}
	if w.shm != nil {
		return w.shm.regions[target]
	}
	return nil
}

// bcastLocked wakes every waiter by retiring the current change
// generation. Callers hold w.mu.
func (w *Win) bcastLocked() {
	close(w.change)
	w.change = make(chan struct{})
}

// fail marks the window failed, releasing every registered reply
// waiter and waking every condition waiter. The first error wins.
func (w *Win) fail(err error) {
	w.mu.Lock()
	if w.failed == nil {
		w.failed = err
	}
	for id, wt := range w.waits {
		delete(w.waits, id)
		wt.err = w.failed
		close(wt.done)
	}
	w.bcastLocked()
	w.mu.Unlock()
}

// Poison marks the window failed with err: every pending reply wait is
// released and every blocked synchronization call (Fence, Lock,
// Unlock, throttled Put/Accumulate) returns err instead of hanging.
// Subsequent operations fail fast with the same error. The core layer
// calls this when the window's communicator is revoked; the first
// failure recorded on a window wins, so poisoning an already-failed
// window is a no-op.
func (w *Win) Poison(err error) { w.fail(err) }

// peersErr polls liveness: of the given ranks, or of every rank in the
// group when targets is nil. The device's death record is wrapped with
// the window role so the failure names the peer.
func (w *Win) peersErr(targets []int) error {
	if w.checker == nil {
		return nil
	}
	check := func(r int) error {
		if r == w.comm.Rank() {
			return nil
		}
		pid, ok := w.comm.PID(r)
		if !ok {
			return nil
		}
		if err := w.checker.PeerErr(pid); err != nil {
			return fmt.Errorf("rma: window peer %d: %w", r, err)
		}
		return nil
	}
	if targets == nil {
		for r := 0; r < w.comm.Size(); r++ {
			if err := check(r); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range targets {
		if err := check(r); err != nil {
			return err
		}
	}
	return nil
}

// waitCond blocks until pred (evaluated under w.mu) holds, the window
// fails, or a liveness poll of targets (nil = whole group) detects a
// dead peer.
func (w *Win) waitCond(pred func() bool, targets []int) error {
	for {
		w.mu.Lock()
		if w.failed != nil {
			err := w.failed
			w.mu.Unlock()
			return err
		}
		if pred() {
			w.mu.Unlock()
			return nil
		}
		ch := w.change
		w.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(pollEvery):
			if err := w.peersErr(targets); err != nil {
				w.fail(err)
				return err
			}
		}
	}
}

// addWait registers a reply slot, failing fast if the window already
// failed (after failure nobody would ever release the slot).
func (w *Win) addWait(wt *repWait) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.freed {
		return 0, ErrFreed
	}
	if w.failed != nil {
		return 0, w.failed
	}
	id := w.nextOp
	w.nextOp++
	w.waits[id] = wt
	return id, nil
}

// waitRep blocks until the slot is released or target dies.
func (w *Win) waitRep(wt *repWait, id uint64, target int) error {
	for {
		select {
		case <-wt.done:
			return wt.err
		case <-time.After(pollEvery):
			if err := w.peersErr([]int{target}); err != nil {
				w.mu.Lock()
				delete(w.waits, id)
				w.mu.Unlock()
				w.fail(err)
				return err
			}
		}
	}
}

// sendFrame packs and sends one active-message frame. The send is
// blocking (standard mode): frames are eager-sized, so it completes as
// soon as the transport has buffered the frame and never waits on the
// target's application.
func (w *Win) sendFrame(dst int, kind int64, opID uint64, off, n, a1, a2 int64, payload []byte) error {
	buf := mpjbuf.New(frameWords*8 + len(payload) + 16)
	hdr := [frameWords]int64{kind, int64(opID), off, n, a1, a2}
	if err := buf.WriteLongs(hdr[:], 0, frameWords); err != nil {
		return err
	}
	if len(payload) > 0 {
		if err := buf.WriteBytes(payload, 0, len(payload)); err != nil {
			return err
		}
	}
	return w.comm.Send(buf, dst, rmaTag)
}

// sendErr wraps a transport failure: it fails the window (one-sided
// state is no longer coherent) and returns the error.
func (w *Win) sendErr(err error) error {
	werr := fmt.Errorf("rma: %w", err)
	w.fail(werr)
	return werr
}

// throttle waits until the outstanding-segment budget has room.
func (w *Win) throttle(target int) error {
	return w.waitCond(func() bool { return w.pendTot < maxOutstanding }, []int{target})
}

// account records one origin-side user operation.
func (w *Win) account(t mpe.EventType, c *atomic.Uint64, target, n int) {
	c.Add(1)
	w.ctr.RmaBytes.Add(uint64(n))
	w.epochBytes.Add(int64(n))
	if w.rec.Enabled() {
		w.rec.Event(t, int32(target), rmaTag, int32(w.comm.Context()), int64(n))
	}
}

// Put copies data into target's window at byte offset off. On return
// the data is in flight (or, on the direct path, already visible);
// completion at the target is established by the next Fence or by
// Unlock of a lock held around the Put.
func (w *Win) Put(data []byte, target, off int) error {
	if err := w.opCheck(target); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	if r := w.directRegion(target); r != nil {
		if off < 0 || off+len(data) > len(r.buf) {
			return fmt.Errorf("%w: put [%d,%d) into %d-byte window of rank %d",
				ErrOutOfRange, off, off+len(data), len(r.buf), target)
		}
		r.mu.Lock()
		copy(r.buf[off:], data)
		r.mu.Unlock()
		w.account(mpe.RmaPut, &w.ctr.RmaPuts, target, len(data))
		return nil
	}
	for sent := 0; sent < len(data); {
		n := min(w.seg, len(data)-sent)
		if err := w.throttle(target); err != nil {
			return err
		}
		w.mu.Lock()
		id := w.nextOp
		w.nextOp++
		w.pending[target]++
		w.pendTot++
		w.mu.Unlock()
		if err := w.sendFrame(target, frPut, id, int64(off+sent), int64(n), 0, 0, data[sent:sent+n]); err != nil {
			return w.sendErr(err)
		}
		sent += n
	}
	w.account(mpe.RmaPut, &w.ctr.RmaPuts, target, len(data))
	return nil
}

// Get copies len(dst) bytes from target's window at byte offset off
// into dst. Get is locally complete on return: dst holds the data.
func (w *Win) Get(dst []byte, target, off int) error {
	if err := w.opCheck(target); err != nil {
		return err
	}
	if len(dst) == 0 {
		return nil
	}
	if r := w.directRegion(target); r != nil {
		if off < 0 || off+len(dst) > len(r.buf) {
			return fmt.Errorf("%w: get [%d,%d) from %d-byte window of rank %d",
				ErrOutOfRange, off, off+len(dst), len(r.buf), target)
		}
		r.mu.Lock()
		copy(dst, r.buf[off:])
		r.mu.Unlock()
		w.account(mpe.RmaGet, &w.ctr.RmaGets, target, len(dst))
		return nil
	}
	type seg struct {
		wt *repWait
		id uint64
	}
	var segs []seg
	for got := 0; got < len(dst); {
		n := min(w.seg, len(dst)-got)
		wt := &repWait{dst: dst[got : got+n], done: make(chan struct{})}
		id, err := w.addWait(wt)
		if err != nil {
			return err
		}
		if err := w.sendFrame(target, frGet, id, int64(off+got), int64(n), 0, 0, nil); err != nil {
			w.mu.Lock()
			delete(w.waits, id)
			w.mu.Unlock()
			return w.sendErr(err)
		}
		segs = append(segs, seg{wt, id})
		got += n
	}
	var firstErr error
	for _, s := range segs {
		if err := w.waitRep(s.wt, s.id, target); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	w.account(mpe.RmaGet, &w.ctr.RmaGets, target, len(dst))
	return nil
}

// Accumulate combines data into target's window at byte offset off:
// window[i] = op(window[i], data[i]) element-wise. The combination is
// applied atomically at the target with respect to every other
// one-sided operation. Operations from one origin to one target are
// applied in issue order (so Replace-then-Sum behaves as written);
// operations from different origins are unordered within an epoch,
// which is safe exactly when op is commutative-associative.
func (w *Win) Accumulate(data []byte, target, off int, et ElemType, op AccOp) error {
	if err := w.opCheck(target); err != nil {
		return err
	}
	es := et.Size()
	if es == 0 {
		return fmt.Errorf("rma: unknown element type %v", et)
	}
	if len(data)%es != 0 {
		return fmt.Errorf("rma: accumulate length %d not a multiple of %v elements", len(data), et)
	}
	if len(data) == 0 {
		return nil
	}
	if r := w.directRegion(target); r != nil {
		if off < 0 || off+len(data) > len(r.buf) {
			return fmt.Errorf("%w: accumulate [%d,%d) into %d-byte window of rank %d",
				ErrOutOfRange, off, off+len(data), len(r.buf), target)
		}
		r.mu.Lock()
		err := accumulate(r.buf[off:off+len(data)], data, et, op)
		r.mu.Unlock()
		if err != nil {
			return err
		}
		w.account(mpe.RmaAcc, &w.ctr.RmaAccs, target, len(data))
		return nil
	}
	// Segment on element boundaries so each frame is independently
	// applicable.
	segBytes := w.seg - w.seg%es
	if segBytes <= 0 {
		segBytes = es
	}
	for sent := 0; sent < len(data); {
		n := min(segBytes, len(data)-sent)
		if err := w.throttle(target); err != nil {
			return err
		}
		w.mu.Lock()
		id := w.nextOp
		w.nextOp++
		w.pending[target]++
		w.pendTot++
		w.mu.Unlock()
		if err := w.sendFrame(target, frAcc, id, int64(off+sent), int64(n), int64(et), int64(op), data[sent:sent+n]); err != nil {
			return w.sendErr(err)
		}
		sent += n
	}
	w.account(mpe.RmaAcc, &w.ctr.RmaAccs, target, len(data))
	return nil
}

// Fence closes the current active-target epoch, collectively: it
// drains this origin's in-flight operations, then exchanges a fence
// frame with every other rank and waits for theirs. When Fence returns
// on every rank, all one-sided operations issued before the fence are
// complete and visible at their targets.
func (w *Win) Fence() error {
	traced := w.rec.Enabled()
	var start int64
	if traced {
		start = w.rec.Now()
	}
	// Local completion: every Put/Acc segment this rank issued has been
	// applied and acked.
	if err := w.waitCond(func() bool { return w.pendTot == 0 }, nil); err != nil {
		return err
	}
	w.mu.Lock()
	if w.freed {
		w.mu.Unlock()
		return ErrFreed
	}
	e := w.epoch
	w.mu.Unlock()
	size, self := w.comm.Size(), w.comm.Rank()
	for r := 0; r < size; r++ {
		if r == self {
			continue
		}
		if err := w.sendFrame(r, frFence, 0, 0, 0, 0, e, nil); err != nil {
			return w.sendErr(err)
		}
	}
	if err := w.waitCond(func() bool { return w.fences[e] >= size-1 }, nil); err != nil {
		return err
	}
	w.mu.Lock()
	delete(w.fences, e)
	w.epoch = e + 1
	w.mu.Unlock()
	if traced {
		w.rec.Span(mpe.RmaFence, -1, rmaTag, int32(w.comm.Context()), w.epochBytes.Swap(0), start)
	} else {
		w.epochBytes.Store(0)
	}
	return nil
}

// Epoch returns the number of completed fence epochs.
func (w *Win) Epoch() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// Lock opens a passive-target access epoch on target's window. shared
// admits concurrent shared holders (readers); exclusive serializes
// against every other lock. Lock blocks until the target grants it —
// grants are queued FIFO at the target, and a queued request blocks
// later grants, so writers are not starved by a stream of readers.
func (w *Win) Lock(target int, shared bool) error {
	if err := w.opCheck(target); err != nil {
		return err
	}
	mode := int64(0)
	if shared {
		mode = 1
	}
	wt := &repWait{done: make(chan struct{})}
	id, err := w.addWait(wt)
	if err != nil {
		return err
	}
	if err := w.sendFrame(target, frLock, id, 0, 0, mode, 0, nil); err != nil {
		w.mu.Lock()
		delete(w.waits, id)
		w.mu.Unlock()
		return w.sendErr(err)
	}
	return w.waitRep(wt, id, target)
}

// Unlock closes the passive-target epoch on target: it drains this
// origin's in-flight operations to the target, releases the lock, and
// waits for the target's acknowledgement. On return every operation
// issued inside the epoch is complete and visible at the target.
func (w *Win) Unlock(target int) error {
	if err := w.opCheck(target); err != nil {
		return err
	}
	if err := w.waitCond(func() bool { return w.pending[target] == 0 }, []int{target}); err != nil {
		return err
	}
	wt := &repWait{done: make(chan struct{})}
	id, err := w.addWait(wt)
	if err != nil {
		return err
	}
	if err := w.sendFrame(target, frUnlock, id, 0, 0, 0, 0, nil); err != nil {
		w.mu.Lock()
		delete(w.waits, id)
		w.mu.Unlock()
		return w.sendErr(err)
	}
	return w.waitRep(wt, id, target)
}

// Free releases the window, collectively: it fences (so no rank frees
// while another's operations are in flight), stops the handler, and
// withdraws the window from the shared-memory board and the registry.
// The fence error, if any, is returned after local teardown completes.
func (w *Win) Free() error {
	ferr := w.Fence()
	w.mu.Lock()
	if w.freed {
		w.mu.Unlock()
		return ferr
	}
	w.freed = true
	w.mu.Unlock()
	// A self-addressed stop frame retires the handler. If the device is
	// already closed the send fails — and the same closure has already
	// broken the handler's blocking receive, so it exits either way.
	_ = w.sendFrame(w.comm.Rank(), frStop, 0, 0, 0, 0, 0, nil)
	<-w.hdone
	w.teardown()
	return ferr
}

// teardown withdraws the window from the process-global structures.
func (w *Win) teardown() {
	regDel(w.comm.Device(), w)
	if w.shm != nil {
		shmLeave(w.shmKey, w.comm.Rank())
		w.shm = nil
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
