package match

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPatternMatches(t *testing.T) {
	cases := []struct {
		p    Pattern
		c    Concrete
		want bool
	}{
		{Pattern{1, 5, 2}, Concrete{1, 5, 2}, true},
		{Pattern{1, 5, 2}, Concrete{1, 5, 3}, false},
		{Pattern{1, 5, 2}, Concrete{1, 6, 2}, false},
		{Pattern{1, 5, 2}, Concrete{2, 5, 2}, false},
		{Pattern{1, AnyTag, 2}, Concrete{1, 99, 2}, true},
		{Pattern{1, 5, AnySource}, Concrete{1, 5, 77}, true},
		{Pattern{1, AnyTag, AnySource}, Concrete{1, 0, 0}, true},
		{Pattern{1, AnyTag, AnySource}, Concrete{2, 0, 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Matches(c.c); got != c.want {
			t.Errorf("%v.Matches(%v) = %v, want %v", c.p, c.c, got, c.want)
		}
	}
}

func TestPatternSetExactMatch(t *testing.T) {
	s := NewPatternSet[string]()
	s.Add(Pattern{1, 5, 2}, "a")
	if v, ok := s.Match(Concrete{1, 5, 2}); !ok || v != "a" {
		t.Fatalf("Match = (%v, %v)", v, ok)
	}
	if _, ok := s.Match(Concrete{1, 5, 2}); ok {
		t.Fatal("matched twice")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestPatternSetWildcardPriorityByPostingOrder(t *testing.T) {
	s := NewPatternSet[string]()
	s.Add(Pattern{1, AnyTag, AnySource}, "wild")
	s.Add(Pattern{1, 5, 2}, "exact")
	// The wildcard was posted first, so it must match first.
	if v, _ := s.Match(Concrete{1, 5, 2}); v != "wild" {
		t.Fatalf("first match = %q, want wild", v)
	}
	if v, _ := s.Match(Concrete{1, 5, 2}); v != "exact" {
		t.Fatalf("second match = %q, want exact", v)
	}
}

func TestPatternSetExactBeforeLaterWildcard(t *testing.T) {
	s := NewPatternSet[string]()
	s.Add(Pattern{1, 5, 2}, "exact")
	s.Add(Pattern{1, AnyTag, AnySource}, "wild")
	if v, _ := s.Match(Concrete{1, 5, 2}); v != "exact" {
		t.Fatalf("first match = %q, want exact", v)
	}
}

func TestPatternSetNoMatchAcrossContexts(t *testing.T) {
	s := NewPatternSet[string]()
	s.Add(Pattern{7, AnyTag, AnySource}, "ctx7")
	if _, ok := s.Match(Concrete{8, 1, 1}); ok {
		t.Fatal("matched across contexts")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestItemSetFIFOWithinKey(t *testing.T) {
	s := NewItemSet[int]()
	s.Add(Concrete{1, 5, 2}, 100)
	s.Add(Concrete{1, 5, 2}, 200)
	if v, _ := s.Match(Pattern{1, 5, 2}); v != 100 {
		t.Fatalf("first = %d, want 100", v)
	}
	if v, _ := s.Match(Pattern{1, 5, 2}); v != 200 {
		t.Fatalf("second = %d, want 200", v)
	}
}

func TestItemSetWildcardProbes(t *testing.T) {
	s := NewItemSet[string]()
	s.Add(Concrete{1, 5, 2}, "m1")
	s.Add(Concrete{1, 6, 3}, "m2")

	if v, ok := s.Match(Pattern{1, AnyTag, AnySource}); !ok || v != "m1" {
		t.Fatalf("wildcard probe = (%v,%v), want m1 (earliest arrival)", v, ok)
	}
	// m1 was consumed; it must not be returned by any other key.
	if v, ok := s.Match(Pattern{1, 5, 2}); ok {
		t.Fatalf("consumed item matched again: %v", v)
	}
	if v, ok := s.Match(Pattern{1, AnyTag, 3}); !ok || v != "m2" {
		t.Fatalf("src-specific wildcard probe = (%v,%v), want m2", v, ok)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestItemSetPeekDoesNotConsume(t *testing.T) {
	s := NewItemSet[string]()
	s.Add(Concrete{1, 5, 2}, "m")
	if v, ok := s.Peek(Pattern{1, AnyTag, 2}); !ok || v != "m" {
		t.Fatalf("Peek = (%v,%v)", v, ok)
	}
	if v, ok := s.Match(Pattern{1, 5, AnySource}); !ok || v != "m" {
		t.Fatalf("Match after Peek = (%v,%v)", v, ok)
	}
	if _, ok := s.Peek(Pattern{1, AnyTag, AnySource}); ok {
		t.Fatal("Peek found consumed item")
	}
}

// TestCrossSetsEquivalence checks PatternSet and ItemSet agree with a
// brute-force ordered-scan model under random workloads.
func TestCrossSetsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type post struct {
		p     Pattern
		id    int
		taken bool
	}
	for trial := 0; trial < 200; trial++ {
		s := NewPatternSet[int]()
		var model []*post
		id := 0
		for op := 0; op < 60; op++ {
			if rng.Intn(2) == 0 {
				p := Pattern{
					Ctx: int32(rng.Intn(2)),
					Tag: int32(rng.Intn(3)),
					Src: uint64(rng.Intn(2)),
				}
				if rng.Intn(3) == 0 {
					p.Tag = AnyTag
				}
				if rng.Intn(3) == 0 {
					p.Src = AnySource
				}
				s.Add(p, id)
				model = append(model, &post{p: p, id: id})
				id++
			} else {
				c := Concrete{
					Ctx: int32(rng.Intn(2)),
					Tag: int32(rng.Intn(3)),
					Src: uint64(rng.Intn(2)),
				}
				got, gotOK := s.Match(c)
				var want int
				wantOK := false
				for _, m := range model {
					if !m.taken && m.p.Matches(c) {
						want, wantOK = m.id, true
						m.taken = true
						break
					}
				}
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("trial %d: Match(%v) = (%d,%v), model says (%d,%v)",
						trial, c, got, gotOK, want, wantOK)
				}
			}
		}
	}
}

func TestItemSetEquivalenceWithScanModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type item struct {
		c     Concrete
		id    int
		taken bool
	}
	for trial := 0; trial < 200; trial++ {
		s := NewItemSet[int]()
		var model []*item
		id := 0
		for op := 0; op < 60; op++ {
			if rng.Intn(2) == 0 {
				c := Concrete{
					Ctx: int32(rng.Intn(2)),
					Tag: int32(rng.Intn(3)),
					Src: uint64(rng.Intn(2)),
				}
				s.Add(c, id)
				model = append(model, &item{c: c, id: id})
				id++
			} else {
				p := Pattern{
					Ctx: int32(rng.Intn(2)),
					Tag: int32(rng.Intn(3)),
					Src: uint64(rng.Intn(2)),
				}
				if rng.Intn(3) == 0 {
					p.Tag = AnyTag
				}
				if rng.Intn(3) == 0 {
					p.Src = AnySource
				}
				got, gotOK := s.Match(p)
				var want int
				wantOK := false
				for _, m := range model {
					if !m.taken && p.Matches(m.c) {
						want, wantOK = m.id, true
						m.taken = true
						break
					}
				}
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("trial %d: Match(%v) = (%d,%v), model says (%d,%v)",
						trial, p, got, gotOK, want, wantOK)
				}
			}
		}
	}
}

func TestQuickPatternSymmetry(t *testing.T) {
	// If a PatternSet match succeeds for envelope c against pattern p,
	// then p.Matches(c) must hold.
	f := func(ctx int8, tag int8, src uint8, wildTag, wildSrc bool) bool {
		p := Pattern{Ctx: int32(ctx), Tag: int32(tag) & 0x7f, Src: uint64(src)}
		if wildTag {
			p.Tag = AnyTag
		}
		if wildSrc {
			p.Src = AnySource
		}
		s := NewPatternSet[struct{}]()
		s.Add(p, struct{}{})
		c := Concrete{Ctx: int32(ctx), Tag: int32(tag) & 0x7f, Src: uint64(src)}
		_, ok := s.Match(c)
		return ok == p.Matches(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPatternSetPostMatch(b *testing.B) {
	s := NewPatternSet[int]()
	for i := 0; i < b.N; i++ {
		s.Add(Pattern{1, int32(i % 8), AnySource}, i)
		if _, ok := s.Match(Concrete{1, int32(i % 8), 3}); !ok {
			b.Fatal("no match")
		}
	}
}

func BenchmarkItemSet650PendingWildcards(b *testing.B) {
	// The workload behind the paper's 650-simultaneous-receives claim.
	for i := 0; i < b.N; i++ {
		s := NewPatternSet[int]()
		for j := 0; j < 650; j++ {
			s.Add(Pattern{1, int32(j), AnySource}, j)
		}
		for j := 0; j < 650; j++ {
			if _, ok := s.Match(Concrete{1, int32(j), 0}); !ok {
				b.Fatal("no match")
			}
		}
	}
}
