package match

import "testing"

// TestPatternSetRecountHealsDrift simulates the stale live-count the
// replay hold-release path can leave behind (ISSUE 10 satellite fix):
// the counters drift from the buckets, Recount restores them, and the
// lazy wildcard index probes correctly again.
func TestPatternSetRecountHealsDrift(t *testing.T) {
	s := NewPatternSet[int]()
	s.Add(Pattern{Ctx: 1, Tag: 5, Src: 2}, 10)
	s.Add(Pattern{Ctx: 1, Tag: AnyTag, Src: 2}, 11)
	s.Add(Pattern{Ctx: 1, Tag: 5, Src: AnySource}, 12)
	s.Add(Pattern{Ctx: 1, Tag: AnyTag, Src: AnySource}, 13)

	// Drift the counters the way a missed decrement would.
	s.live = 99
	s.classes = [4]int{7, 7, 7, 7}

	s.Recount()
	if got := s.Len(); got != 4 {
		t.Fatalf("Len after Recount = %d, want 4", got)
	}
	if s.classes != [4]int{1, 1, 1, 1} {
		t.Fatalf("classes after Recount = %v, want [1 1 1 1]", s.classes)
	}

	// Every posted pattern must still match, most specific first.
	want := []int{10, 11, 12, 13}
	for i, w := range want {
		v, ok := s.Match(Concrete{Ctx: 1, Tag: 5, Src: 2})
		if !ok || v != w {
			t.Fatalf("match %d = (%d,%v), want (%d,true)", i, v, ok, w)
		}
	}
	s.Recount()
	if got := s.Len(); got != 0 {
		t.Fatalf("Len after draining = %d, want 0", got)
	}
}

// TestItemSetRecountHealsDrift is the arrived-side counterpart.
func TestItemSetRecountHealsDrift(t *testing.T) {
	s := NewItemSet[int]()
	s.Add(Concrete{Ctx: 1, Tag: 5, Src: 2}, 20)
	s.Add(Concrete{Ctx: 1, Tag: 6, Src: 3}, 21)

	s.live = -5
	s.Recount()
	if got := s.Len(); got != 2 {
		t.Fatalf("Len after Recount = %d, want 2", got)
	}
	if v, ok := s.Match(Pattern{Ctx: 1, Tag: AnyTag, Src: AnySource}); !ok || v != 20 {
		t.Fatalf("wildcard match = (%d,%v), want (20,true)", v, ok)
	}
	s.Recount()
	if got := s.Len(); got != 1 {
		t.Fatalf("Len after one take = %d, want 1", got)
	}
}
