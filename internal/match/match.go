// Package match implements MPJ Express message matching (§IV-E.2 of the
// paper). A message is identified by (context, tag, source); receives
// may wildcard tag and/or source. Each posted receive generates four
// possible keys — (ctx,tag,src), (ctx,ANY_TAG,src), (ctx,tag,ANY_SOURCE)
// and (ctx,ANY_TAG,ANY_SOURCE) — and incoming messages are matched
// against those keys in O(1) per key, rather than by scanning.
//
// Two symmetric structures cover the two directions of the race between
// a receive being posted and its message arriving:
//
//   - PatternSet holds posted receive patterns (which may contain
//     wildcards) and is probed with the concrete envelope of an
//     arriving message;
//   - ItemSet holds arrived-but-unmatched message envelopes (always
//     concrete) and is probed with a receive pattern.
//
// Both preserve MPI's ordering rule: among multiple candidates the one
// posted (or arrived) first wins, even across wildcard and non-wildcard
// buckets. Neither type is goroutine-safe; callers hold the relevant
// communication-set lock, exactly as in the paper's pseudocode.
package match

import "sort"

// Wildcard values within a Pattern.
const (
	// AnyTag matches any message tag.
	AnyTag int32 = -1
	// AnySource matches any source process.
	AnySource uint64 = ^uint64(0)
)

// Pattern is a receive-side match specification; Tag and Src may hold
// the wildcard values.
type Pattern struct {
	Ctx int32
	Tag int32
	Src uint64
}

// Concrete is a message envelope; no wildcards.
type Concrete struct {
	Ctx int32
	Tag int32
	Src uint64
}

// Matches reports whether the pattern accepts the envelope.
func (p Pattern) Matches(c Concrete) bool {
	return p.Ctx == c.Ctx &&
		(p.Tag == AnyTag || p.Tag == c.Tag) &&
		(p.Src == AnySource || p.Src == c.Src)
}

// keys returns the four probe keys for an envelope, most to least
// specific. The index of each key is its wildcard class (see classOf).
func (c Concrete) keys() [4]Pattern {
	return [4]Pattern{
		{c.Ctx, c.Tag, c.Src},
		{c.Ctx, AnyTag, c.Src},
		{c.Ctx, c.Tag, AnySource},
		{c.Ctx, AnyTag, AnySource},
	}
}

// classOf returns a pattern's wildcard class: bit 0 set for AnyTag,
// bit 1 for AnySource. Class 0 is a fully concrete pattern. The class
// of keys()[i] is i.
func classOf(p Pattern) int {
	cls := 0
	if p.Tag == AnyTag {
		cls |= 1
	}
	if p.Src == AnySource {
		cls |= 2
	}
	return cls
}

type entry[T any] struct {
	seq   uint64
	value T
	taken bool
}

// fifo is a slice-backed queue with lazy removal of taken entries.
type fifo[T any] struct {
	items []*entry[T]
}

func (q *fifo[T]) push(e *entry[T]) { q.items = append(q.items, e) }

// head returns the oldest non-taken entry, compacting as it goes.
func (q *fifo[T]) head() *entry[T] {
	for len(q.items) > 0 && q.items[0].taken {
		q.items[0] = nil
		q.items = q.items[1:]
	}
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// PatternSet holds posted receive patterns, each indexed under its own
// (possibly wildcarded) key, in posting order. classes counts the live
// patterns per wildcard class so a probe skips the map lookups for
// classes nothing is posted under — in the common no-wildcard workload
// an arriving message costs one map access, not four.
type PatternSet[T any] struct {
	seq     uint64
	buckets map[Pattern]*fifo[T]
	live    int
	classes [4]int
}

// NewPatternSet returns an empty pattern set.
func NewPatternSet[T any]() *PatternSet[T] {
	return &PatternSet[T]{buckets: make(map[Pattern]*fifo[T])}
}

// Add posts a pattern with its associated value.
func (s *PatternSet[T]) Add(p Pattern, v T) {
	q := s.buckets[p]
	if q == nil {
		q = &fifo[T]{}
		s.buckets[p] = q
	}
	s.seq++
	q.push(&entry[T]{seq: s.seq, value: v})
	s.live++
	s.classes[classOf(p)]++
}

// Match finds, removes and returns the earliest-posted pattern that
// accepts the envelope. ok is false when nothing matches.
func (s *PatternSet[T]) Match(c Concrete) (v T, ok bool) {
	var best *entry[T]
	bestCls := 0
	for cls, k := range c.keys() {
		if s.classes[cls] == 0 {
			continue
		}
		q := s.buckets[k]
		if q == nil {
			continue
		}
		if e := q.head(); e != nil && (best == nil || e.seq < best.seq) {
			best = e
			bestCls = cls
		}
	}
	if best == nil {
		return v, false
	}
	best.taken = true
	s.live--
	s.classes[bestCls]--
	return best.value, true
}

// Len reports the number of live (unmatched) patterns.
func (s *PatternSet[T]) Len() int { return s.live }

// Recount recomputes the live total and per-class counts directly from
// the buckets. The class counters are a probe-skipping cache; the
// replay hold-release path recounts before probing so enforcement
// never trusts a stale cache while it rewrites patterns the cache was
// maintained under (ISSUE 10 stale live-count fix).
func (s *PatternSet[T]) Recount() {
	s.live = 0
	s.classes = [4]int{}
	for k, q := range s.buckets {
		n := 0
		for _, e := range q.items {
			if e != nil && !e.taken {
				n++
			}
		}
		if n == 0 {
			continue
		}
		s.live += n
		s.classes[classOf(k)] += n
	}
}

// TakeFunc removes and returns every live pattern accepted by pred, in
// posting order. The failure paths use it to drain receives that can no
// longer complete (dead source, device shutdown).
func (s *PatternSet[T]) TakeFunc(pred func(Pattern, T) bool) []T {
	var taken []*entry[T]
	for k, q := range s.buckets {
		for _, e := range q.items {
			if e == nil || e.taken {
				continue
			}
			if pred(k, e.value) {
				e.taken = true
				s.live--
				s.classes[classOf(k)]--
				taken = append(taken, e)
			}
		}
	}
	sortEntries(taken)
	out := make([]T, len(taken))
	for i, e := range taken {
		out[i] = e.value
	}
	return out
}

// ItemSet holds arrived message envelopes. An item is always indexed
// under its exact (class-0) key; the three wildcard-class indexes are
// built lazily, the first time a probe of that class occurs. A
// workload that never posts a wildcard receive — the message-rate hot
// path — pays one map access and one push per unexpected message
// instead of four of each, while ANY_TAG/ANY_SOURCE apps pay a
// one-time O(n log n) index build and then the same O(1) probes as
// before.
type ItemSet[T any] struct {
	seq     uint64
	buckets map[Pattern]*fifo[T]
	live    int
	active  [4]bool
}

// NewItemSet returns an empty item set.
func NewItemSet[T any]() *ItemSet[T] {
	s := &ItemSet[T]{buckets: make(map[Pattern]*fifo[T])}
	s.active[0] = true
	return s
}

// Add records an arrived envelope with its associated value.
func (s *ItemSet[T]) Add(c Concrete, v T) {
	s.seq++
	e := &entry[T]{seq: s.seq, value: v}
	for cls, k := range c.keys() {
		if !s.active[cls] {
			continue
		}
		q := s.buckets[k]
		if q == nil {
			q = &fifo[T]{}
			s.buckets[k] = q
		}
		q.push(e)
	}
	s.live++
}

// activate builds the bucket index for a wildcard class from the live
// entries. Every live entry sits in its exact bucket (class 0 is
// always active), so enumerating class-0 buckets finds each exactly
// once; sorting by seq restores arrival order within the new buckets.
func (s *ItemSet[T]) activate(cls int) {
	s.active[cls] = true
	type pending struct {
		e *entry[T]
		k Pattern
	}
	var ps []pending
	for k, q := range s.buckets {
		if classOf(k) != 0 {
			continue
		}
		for _, e := range q.items {
			if e == nil || e.taken {
				continue
			}
			ck := Concrete{Ctx: k.Ctx, Tag: k.Tag, Src: k.Src}.keys()[cls]
			ps = append(ps, pending{e, ck})
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].e.seq < ps[j].e.seq })
	for _, p := range ps {
		q := s.buckets[p.k]
		if q == nil {
			q = &fifo[T]{}
			s.buckets[p.k] = q
		}
		q.push(p.e)
	}
}

// Match finds, removes and returns the earliest-arrived item accepted
// by the pattern.
func (s *ItemSet[T]) Match(p Pattern) (v T, ok bool) {
	if cls := classOf(p); !s.active[cls] {
		s.activate(cls)
	}
	q := s.buckets[p]
	if q == nil {
		return v, false
	}
	e := q.head()
	if e == nil {
		return v, false
	}
	e.taken = true
	s.live--
	return e.value, true
}

// Peek returns the earliest-arrived item accepted by the pattern
// without removing it (the probe operation).
func (s *ItemSet[T]) Peek(p Pattern) (v T, ok bool) {
	if cls := classOf(p); !s.active[cls] {
		s.activate(cls)
	}
	q := s.buckets[p]
	if q == nil {
		return v, false
	}
	e := q.head()
	if e == nil {
		return v, false
	}
	return e.value, true
}

// Len reports the number of live (unmatched) items.
func (s *ItemSet[T]) Len() int { return s.live }

// Recount recomputes the live count from the class-0 buckets (every
// live item is indexed there exactly once). Companion to
// PatternSet.Recount for the replay hold-release path.
func (s *ItemSet[T]) Recount() {
	s.live = 0
	for k, q := range s.buckets {
		if classOf(k) != 0 {
			continue
		}
		for _, e := range q.items {
			if e != nil && !e.taken {
				s.live++
			}
		}
	}
}

// TakeFunc removes and returns every live item accepted by pred, in
// arrival order. An item may be indexed under several keys sharing one
// entry, so the taken flag both removes and deduplicates.
func (s *ItemSet[T]) TakeFunc(pred func(T) bool) []T {
	var taken []*entry[T]
	seen := map[*entry[T]]bool{}
	for _, q := range s.buckets {
		for _, e := range q.items {
			if e == nil || e.taken || seen[e] {
				continue
			}
			seen[e] = true
			if pred(e.value) {
				e.taken = true
				s.live--
				taken = append(taken, e)
			}
		}
	}
	sortEntries(taken)
	out := make([]T, len(taken))
	for i, e := range taken {
		out[i] = e.value
	}
	return out
}

// sortEntries orders drained entries by their posting/arrival sequence.
func sortEntries[T any](es []*entry[T]) {
	sort.Slice(es, func(i, j int) bool { return es[i].seq < es[j].seq })
}
