// Package match implements MPJ Express message matching (§IV-E.2 of the
// paper). A message is identified by (context, tag, source); receives
// may wildcard tag and/or source. Each posted receive generates four
// possible keys — (ctx,tag,src), (ctx,ANY_TAG,src), (ctx,tag,ANY_SOURCE)
// and (ctx,ANY_TAG,ANY_SOURCE) — and incoming messages are matched
// against those keys in O(1) per key, rather than by scanning.
//
// Two symmetric structures cover the two directions of the race between
// a receive being posted and its message arriving:
//
//   - PatternSet holds posted receive patterns (which may contain
//     wildcards) and is probed with the concrete envelope of an
//     arriving message;
//   - ItemSet holds arrived-but-unmatched message envelopes (always
//     concrete) and is probed with a receive pattern.
//
// Both preserve MPI's ordering rule: among multiple candidates the one
// posted (or arrived) first wins, even across wildcard and non-wildcard
// buckets. Neither type is goroutine-safe; callers hold the relevant
// communication-set lock, exactly as in the paper's pseudocode.
package match

import "sort"

// Wildcard values within a Pattern.
const (
	// AnyTag matches any message tag.
	AnyTag int32 = -1
	// AnySource matches any source process.
	AnySource uint64 = ^uint64(0)
)

// Pattern is a receive-side match specification; Tag and Src may hold
// the wildcard values.
type Pattern struct {
	Ctx int32
	Tag int32
	Src uint64
}

// Concrete is a message envelope; no wildcards.
type Concrete struct {
	Ctx int32
	Tag int32
	Src uint64
}

// Matches reports whether the pattern accepts the envelope.
func (p Pattern) Matches(c Concrete) bool {
	return p.Ctx == c.Ctx &&
		(p.Tag == AnyTag || p.Tag == c.Tag) &&
		(p.Src == AnySource || p.Src == c.Src)
}

// keys returns the four probe keys for an envelope, most to least
// specific.
func (c Concrete) keys() [4]Pattern {
	return [4]Pattern{
		{c.Ctx, c.Tag, c.Src},
		{c.Ctx, AnyTag, c.Src},
		{c.Ctx, c.Tag, AnySource},
		{c.Ctx, AnyTag, AnySource},
	}
}

type entry[T any] struct {
	seq   uint64
	value T
	taken bool
}

// fifo is a slice-backed queue with lazy removal of taken entries.
type fifo[T any] struct {
	items []*entry[T]
}

func (q *fifo[T]) push(e *entry[T]) { q.items = append(q.items, e) }

// head returns the oldest non-taken entry, compacting as it goes.
func (q *fifo[T]) head() *entry[T] {
	for len(q.items) > 0 && q.items[0].taken {
		q.items[0] = nil
		q.items = q.items[1:]
	}
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// PatternSet holds posted receive patterns, each indexed under its own
// (possibly wildcarded) key, in posting order.
type PatternSet[T any] struct {
	seq     uint64
	buckets map[Pattern]*fifo[T]
	live    int
}

// NewPatternSet returns an empty pattern set.
func NewPatternSet[T any]() *PatternSet[T] {
	return &PatternSet[T]{buckets: make(map[Pattern]*fifo[T])}
}

// Add posts a pattern with its associated value.
func (s *PatternSet[T]) Add(p Pattern, v T) {
	q := s.buckets[p]
	if q == nil {
		q = &fifo[T]{}
		s.buckets[p] = q
	}
	s.seq++
	q.push(&entry[T]{seq: s.seq, value: v})
	s.live++
}

// Match finds, removes and returns the earliest-posted pattern that
// accepts the envelope. ok is false when nothing matches.
func (s *PatternSet[T]) Match(c Concrete) (v T, ok bool) {
	var best *entry[T]
	for _, k := range c.keys() {
		q := s.buckets[k]
		if q == nil {
			continue
		}
		if e := q.head(); e != nil && (best == nil || e.seq < best.seq) {
			best = e
		}
	}
	if best == nil {
		return v, false
	}
	best.taken = true
	s.live--
	return best.value, true
}

// Len reports the number of live (unmatched) patterns.
func (s *PatternSet[T]) Len() int { return s.live }

// TakeFunc removes and returns every live pattern accepted by pred, in
// posting order. The failure paths use it to drain receives that can no
// longer complete (dead source, device shutdown).
func (s *PatternSet[T]) TakeFunc(pred func(Pattern, T) bool) []T {
	var taken []*entry[T]
	for k, q := range s.buckets {
		for _, e := range q.items {
			if e == nil || e.taken {
				continue
			}
			if pred(k, e.value) {
				e.taken = true
				s.live--
				taken = append(taken, e)
			}
		}
	}
	sortEntries(taken)
	out := make([]T, len(taken))
	for i, e := range taken {
		out[i] = e.value
	}
	return out
}

// ItemSet holds arrived message envelopes. Each item is indexed under
// all four keys that could match it, so pattern probes are O(1).
type ItemSet[T any] struct {
	seq     uint64
	buckets map[Pattern]*fifo[T]
	live    int
}

// NewItemSet returns an empty item set.
func NewItemSet[T any]() *ItemSet[T] {
	return &ItemSet[T]{buckets: make(map[Pattern]*fifo[T])}
}

// Add records an arrived envelope with its associated value.
func (s *ItemSet[T]) Add(c Concrete, v T) {
	s.seq++
	e := &entry[T]{seq: s.seq, value: v}
	for _, k := range c.keys() {
		q := s.buckets[k]
		if q == nil {
			q = &fifo[T]{}
			s.buckets[k] = q
		}
		q.push(e)
	}
	s.live++
}

// Match finds, removes and returns the earliest-arrived item accepted
// by the pattern.
func (s *ItemSet[T]) Match(p Pattern) (v T, ok bool) {
	q := s.buckets[p]
	if q == nil {
		return v, false
	}
	e := q.head()
	if e == nil {
		return v, false
	}
	e.taken = true
	s.live--
	return e.value, true
}

// Peek returns the earliest-arrived item accepted by the pattern
// without removing it (the probe operation).
func (s *ItemSet[T]) Peek(p Pattern) (v T, ok bool) {
	q := s.buckets[p]
	if q == nil {
		return v, false
	}
	e := q.head()
	if e == nil {
		return v, false
	}
	return e.value, true
}

// Len reports the number of live (unmatched) items.
func (s *ItemSet[T]) Len() int { return s.live }

// TakeFunc removes and returns every live item accepted by pred, in
// arrival order. Each item is indexed under four keys sharing one
// entry, so the taken flag both removes and deduplicates.
func (s *ItemSet[T]) TakeFunc(pred func(T) bool) []T {
	var taken []*entry[T]
	seen := map[*entry[T]]bool{}
	for _, q := range s.buckets {
		for _, e := range q.items {
			if e == nil || e.taken || seen[e] {
				continue
			}
			seen[e] = true
			if pred(e.value) {
				e.taken = true
				s.live--
				taken = append(taken, e)
			}
		}
	}
	sortEntries(taken)
	out := make([]T, len(taken))
	for i, e := range taken {
		out[i] = e.value
	}
	return out
}

// sortEntries orders drained entries by their posting/arrival sequence.
func sortEntries[T any](es []*entry[T]) {
	sort.Slice(es, func(i, j int) bool { return es[i].seq < es[j].seq })
}
