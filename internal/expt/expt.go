// Package expt implements the paper's live (non-modelled) experiments
// against this repository's actual implementation:
//
//   - the §V-A qualitative ANY_SOURCE experiment: two processes post
//     many wildcard receives, overlap a matrix multiplication with
//     them, and finally exchange the messages — comparing MPJ
//     Express's poll-free receive machinery against an MPJ/Ibis-style
//     thread-per-receive device whose polling steals compute cycles;
//   - the §VI claim that MPJ Express can post unbounded simultaneous
//     non-blocking receives while a thread-per-operation design dies
//     around 650;
//   - live ping-pong over the real Go devices, the counterpart of the
//     modelled curves in internal/perfmodel.
package expt

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"mpj/internal/core"
	"mpj/internal/ibisdev"
	"mpj/internal/mpjbuf"
	"mpj/internal/niodev"
	"mpj/internal/smpdev"
	"mpj/internal/transport"
	"mpj/internal/xdev"
)

var jobCounter struct {
	sync.Mutex
	n int
}

func nextJob(prefix string) string {
	jobCounter.Lock()
	defer jobCounter.Unlock()
	jobCounter.n++
	return fmt.Sprintf("%s-%d", prefix, jobCounter.n)
}

// newDevice builds an uninitialized device for the experiment modes.
func newDevice(mode string) (xdev.Device, error) {
	switch mode {
	case "mpj":
		return smpdev.New(), nil
	case "mpj-nio":
		return niodev.New(), nil
	case "ibis":
		return ibisdev.New(), nil
	case "ibis-spin":
		d := ibisdev.New()
		d.SetPollInterval(0)
		return d, nil
	}
	return nil, fmt.Errorf("expt: unknown mode %q (mpj, mpj-nio, ibis, ibis-spin)", mode)
}

// matmul multiplies two n x n matrices naively and returns a checksum,
// standing in for the paper's 3000x3000 multiplication.
func matmul(a, b, c []float64, n int) float64 {
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * b[k*n+j]
			}
		}
	}
	return c[0] + c[len(c)-1]
}

// OverlapResult reports one §V-A run.
type OverlapResult struct {
	// Mode is "mpj" or "ibis".
	Mode string
	// Compute is the matrix-multiplication makespan (the slower of the
	// two ranks' multiplications) while the wildcard receives were
	// outstanding.
	Compute time.Duration
	// Total is rank 0's whole-experiment wall time.
	Total time.Duration
}

// AnySourceOverlap runs the §V-A experiment: both processes post nMsgs
// non-blocking ANY_SOURCE receives, multiply two matrixN x matrixN
// matrices, then send nMsgs messages to each other and collect the
// receives. The returned Compute time shows how much CPU the pending
// receives cost the computation.
//
// The paper ran one process per dual-CPU node; to model that CPU
// budget inside one address space the experiment clamps GOMAXPROCS to
// two while it runs (both ranks' compute goroutines plus any device
// worker threads share two cores), restoring it afterwards. The median
// of five runs is reported to suppress scheduling noise.
func AnySourceOverlap(mode string, matrixN, nMsgs int) (OverlapResult, error) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)

	const trials = 5
	runs := make([]OverlapResult, 0, trials)
	for trial := 0; trial < trials; trial++ {
		res, err := anySourceOverlapOnce(mode, matrixN, nMsgs)
		if err != nil {
			return OverlapResult{Mode: mode}, err
		}
		runs = append(runs, res)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].Compute < runs[j].Compute })
	return runs[trials/2], nil
}

func anySourceOverlapOnce(mode string, matrixN, nMsgs int) (OverlapResult, error) {
	res := OverlapResult{Mode: mode}
	group := nextJob("expt-overlap-" + mode)

	type rankResult struct {
		compute time.Duration
		total   time.Duration
		err     error
	}
	results := make([]rankResult, 2)

	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			dev, err := newDevice(mode)
			if err != nil {
				results[rank].err = err
				return
			}
			p, err := core.Init(dev, xdev.Config{Rank: rank, Size: 2, Group: group})
			if err != nil {
				results[rank].err = err
				return
			}
			defer p.Finalize()
			w := p.World()
			peer := 1 - rank

			start := time.Now()
			// Post the wildcard receives up front, as in the paper.
			reqs := make([]*core.Request, nMsgs)
			bufs := make([][]int64, nMsgs)
			for i := 0; i < nMsgs; i++ {
				bufs[i] = make([]int64, 1)
				r, err := w.Irecv(bufs[i], 0, 1, core.LONG, core.AnySource, i)
				if err != nil {
					results[rank].err = err
					return
				}
				reqs[i] = r
			}

			// The computation the pending receives must not starve.
			a := make([]float64, matrixN*matrixN)
			b := make([]float64, matrixN*matrixN)
			c := make([]float64, matrixN*matrixN)
			for i := range a {
				a[i] = float64(i % 7)
				b[i] = float64(i % 5)
			}
			computeStart := time.Now()
			matmul(a, b, c, matrixN)
			results[rank].compute = time.Since(computeStart)

			// Now exchange the messages.
			for i := 0; i < nMsgs; i++ {
				if err := w.Send([]int64{int64(i)}, 0, 1, core.LONG, peer, i); err != nil {
					results[rank].err = err
					return
				}
			}
			if _, err := core.WaitAll(reqs); err != nil {
				results[rank].err = err
				return
			}
			for i := 0; i < nMsgs; i++ {
				if bufs[i][0] != int64(i) {
					results[rank].err = fmt.Errorf("message %d carried %d", i, bufs[i][0])
					return
				}
			}
			results[rank].total = time.Since(start)
		}(rank)
	}
	wg.Wait()
	for rank, r := range results {
		if r.err != nil {
			return res, fmt.Errorf("rank %d: %w", rank, r.err)
		}
	}
	res.Compute = results[0].compute
	if results[1].compute > res.Compute {
		res.Compute = results[1].compute
	}
	res.Total = results[0].total
	return res, nil
}

// ManyPendingReceives posts n simultaneous wildcard receives on a
// 1-process job and then satisfies them, returning how many were
// successfully posted and the error (if any) that stopped posting —
// the §VI comparison (MPJ Express: unbounded; Ibis-style: ~650).
func ManyPendingReceives(mode string, n int) (posted int, postErr error, err error) {
	dev, err := newDevice(mode)
	if err != nil {
		return 0, nil, err
	}
	p, err := core.Init(dev, xdev.Config{Rank: 0, Size: 1, Group: nextJob("expt-many-" + mode)})
	if err != nil {
		return 0, nil, err
	}
	defer p.Finalize()
	w := p.World()

	reqs := make([]*core.Request, 0, n)
	bufs := make([][]int64, 0, n)
	for i := 0; i < n; i++ {
		buf := make([]int64, 1)
		r, rerr := w.Irecv(buf, 0, 1, core.LONG, core.AnySource, i)
		if rerr != nil {
			postErr = rerr
			break
		}
		reqs = append(reqs, r)
		bufs = append(bufs, buf)
		posted++
	}
	// Satisfy whatever was posted so worker goroutines exit cleanly.
	for i := 0; i < posted; i++ {
		if serr := w.Send([]int64{int64(i)}, 0, 1, core.LONG, 0, i); serr != nil {
			return posted, postErr, serr
		}
	}
	if _, werr := core.WaitAll(reqs); werr != nil {
		return posted, postErr, werr
	}
	for i := range bufs {
		if bufs[i][0] != int64(i) {
			return posted, postErr, fmt.Errorf("receive %d carried %d", i, bufs[i][0])
		}
	}
	return posted, postErr, nil
}

// PingPongResult is one live ping-pong measurement.
type PingPongResult struct {
	Bytes     int
	HalfRTT   time.Duration // mean one-way time
	Bandwidth float64       // Mbit/s
}

// PingPongLive measures round trips of size-byte messages between two
// in-process ranks over the real niodev stack (in-memory transport),
// reporting the mean half round-trip time and derived bandwidth. This
// measures this implementation's genuine software overheads — packing,
// matching, protocol — without a network.
func PingPongLive(size, reps int, eagerLimit int) (PingPongResult, error) {
	res := PingPongResult{Bytes: size}
	group := nextJob("expt-pp")
	tr := transport.NewInProc(256 << 10)
	addrs := []string{group + "/0", group + "/1"}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	var elapsed time.Duration
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			dev := niodev.New()
			_, err := dev.Init(xdev.Config{
				Rank: rank, Size: 2, Addrs: addrs, Dialer: tr, EagerLimit: eagerLimit, Group: group,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer dev.Finish()
			peer := xdev.ProcessID{UUID: uint64(1 - rank)}
			payload := make([]byte, size)
			buf := mpjbuf.New(size + 64)
			rbuf := mpjbuf.New(size + 64)

			send := func() error {
				buf.Clear()
				if err := buf.WriteBytes(payload, 0, size); err != nil {
					return err
				}
				return dev.Send(buf, peer, 0, 0)
			}
			recv := func() error {
				rbuf.Clear()
				_, err := dev.Recv(rbuf, peer, 0, 0)
				return err
			}

			if rank == 0 {
				start := time.Now()
				for i := 0; i < reps; i++ {
					if err := send(); err != nil {
						errs[rank] = err
						return
					}
					if err := recv(); err != nil {
						errs[rank] = err
						return
					}
				}
				elapsed = time.Since(start)
			} else {
				for i := 0; i < reps; i++ {
					if err := recv(); err != nil {
						errs[rank] = err
						return
					}
					if err := send(); err != nil {
						errs[rank] = err
						return
					}
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return res, fmt.Errorf("rank %d: %w", rank, err)
		}
	}
	res.HalfRTT = elapsed / time.Duration(2*reps)
	if res.HalfRTT > 0 {
		res.Bandwidth = float64(size) * 8 / res.HalfRTT.Seconds() / 1e6
	}
	return res, nil
}
