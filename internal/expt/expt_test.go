package expt

import (
	"strings"
	"testing"
)

func TestAnySourceOverlapBothModes(t *testing.T) {
	// Keep sizes modest for the unit test; the benchmark harness runs
	// the full-size experiment.
	for _, mode := range []string{"mpj", "ibis"} {
		res, err := AnySourceOverlap(mode, 64, 10)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Compute <= 0 || res.Total < res.Compute {
			t.Fatalf("%s: nonsense timings %+v", mode, res)
		}
	}
}

func TestAnySourceOverlapUnknownMode(t *testing.T) {
	if _, err := AnySourceOverlap("nope", 8, 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestManyPendingReceivesMPJ(t *testing.T) {
	posted, postErr, err := ManyPendingReceives("mpj", 650)
	if err != nil {
		t.Fatal(err)
	}
	if postErr != nil {
		t.Fatalf("MPJ Express failed to post all receives: %v", postErr)
	}
	if posted != 650 {
		t.Fatalf("posted %d of 650", posted)
	}
}

func TestManyPendingReceivesNiodev(t *testing.T) {
	posted, postErr, err := ManyPendingReceives("mpj-nio", 650)
	if err != nil {
		t.Fatal(err)
	}
	if postErr != nil || posted != 650 {
		t.Fatalf("niodev posted %d/650: %v", posted, postErr)
	}
}

func TestManyPendingReceivesIbisFails(t *testing.T) {
	// The ibis-style device must refuse around its thread ceiling with
	// the JVM's characteristic complaint.
	posted, postErr, err := ManyPendingReceives("ibis", 650)
	if err != nil {
		t.Fatal(err)
	}
	if postErr == nil {
		t.Fatal("ibis-style device posted 650 receives; paper says it cannot")
	}
	if !strings.Contains(postErr.Error(), "native thread") {
		t.Fatalf("unexpected failure text: %v", postErr)
	}
	if posted >= 650 {
		t.Fatalf("posted %d", posted)
	}
}

func TestPingPongLiveEagerAndRendezvous(t *testing.T) {
	small, err := PingPongLive(1024, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if small.HalfRTT <= 0 || small.Bandwidth <= 0 {
		t.Fatalf("small: %+v", small)
	}
	// Force rendezvous with a tiny eager limit.
	large, err := PingPongLive(1<<20, 5, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if large.HalfRTT <= small.HalfRTT {
		t.Fatalf("1 MB (%v) not slower than 1 KB (%v)", large.HalfRTT, small.HalfRTT)
	}
	if large.Bandwidth <= small.Bandwidth {
		t.Fatalf("bandwidth should rise with size: %v vs %v", large.Bandwidth, small.Bandwidth)
	}
}
