// Package smpdev is a shared-memory xdev device for ranks running in a
// single OS process — the SMP-cluster scenario that motivates the
// paper's emphasis on thread safety (§I), and the "shared memory
// device" its future work anticipates. Messages move by a single
// in-memory copy of the buffer's wire form.
//
// The device is a thin binding over the shared progress core
// (internal/devcore): each rank's mailbox IS a devcore.Core, holding
// the four-key matching engine, the completion queue, and the
// peer-death/abort propagation. Matching happens on the sender's
// thread against the destination rank's core — the in-process
// equivalent of a network device's input handler — so receive-side
// counters (Matched/Unexpected) and unexpected-arrival events land on
// the destination core, while a request always completes into its
// creator's core.
package smpdev

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mpj/internal/devcore"
	"mpj/internal/match"
	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/xdev"
)

// DeviceName is the registry name of this device.
const DeviceName = "smpdev"

// ErrDeviceClosed is returned for operations on a finished device. It
// wraps xdev.ErrDeviceClosed for device-agnostic errors.Is tests.
var ErrDeviceClosed = fmt.Errorf("smpdev: %w", xdev.ErrDeviceClosed)

func init() {
	xdev.Register(DeviceName, func() xdev.Device { return New() })
}

// board is the process-global registry of SMP job groups.
var board = struct {
	sync.Mutex
	groups map[string]*group
}{groups: make(map[string]*group)}

// group is one SMP job: a progress core per rank, created together so
// senders can deliver into a rank's core before that rank has joined.
type group struct {
	name   string
	size   int
	cores  []*devcore.Core
	joined int
}

func newGroup(name string, size int) *group {
	g := &group{name: name, size: size, cores: make([]*devcore.Core, size)}
	for i := range g.cores {
		c := devcore.New(DeviceName)
		c.SetClosedErr(func(op string) error {
			if op == "peek" {
				return ErrDeviceClosed
			}
			return fmt.Errorf("smpdev: %s: %w", op, ErrDeviceClosed)
		})
		g.cores[i] = c
	}
	return g
}

// Device implements xdev.Device for in-process ranks.
type Device struct {
	cfg      xdev.Config
	self     xdev.ProcessID
	pids     []xdev.ProcessID
	grp      *group
	core     *devcore.Core // this rank's mailbox core
	mu       sync.Mutex
	initDone bool
	// finished is atomic: operations check it lock-free on their fast
	// path while Finish (possibly on another goroutine) sets it.
	finished atomic.Bool

	rec mpe.Recorder
}

// New returns an uninitialized smpdev device.
func New() *Device { return &Device{rec: mpe.Nop{}} }

// Stats returns a snapshot of the device's activity counters: its own
// sends plus the receive-side activity other ranks recorded into this
// rank's core.
func (d *Device) Stats() mpe.CounterSnapshot {
	if d.core == nil {
		return mpe.CounterSnapshot{}
	}
	return d.core.Counters.Snapshot()
}

// Recorder exposes the device's event recorder (mpe.Instrumented).
func (d *Device) Recorder() mpe.Recorder { return d.rec }

// CountersRef exposes the live counter block (mpe.CounterSource) so
// upper layers account into the same counters Stats reports. Nil until
// Init.
func (d *Device) CountersRef() *mpe.Counters {
	if d.core == nil {
		return nil
	}
	return &d.core.Counters
}

// Introspect snapshots this rank's mailbox core for the telemetry
// /introspect endpoint.
func (d *Device) Introspect() any {
	if d.core == nil {
		return struct{}{}
	}
	return struct {
		Core devcore.CoreState `json:"core"`
	}{Core: d.core.Introspect()}
}

// MemoryDomain names the in-process job namespace this device joined,
// enabling the one-sided layer's zero-copy shared-memory delivery
// (xdev.MemoryDomain): every rank of an smpdev job lives in this
// process, so a window's memory is directly addressable by its peers.
func (d *Device) MemoryDomain() (string, bool) {
	if !d.initDone {
		return "", false
	}
	name := d.cfg.Group
	if name == "" {
		name = "smp-default"
	}
	return DeviceName + "/" + name, true
}

// PeerErr reports the recorded death error of peer p, or nil while it
// is alive (xdev.PeerChecker). Finish propagates departures as sticky
// per-peer records on every survivor core, so the answer is stable.
func (d *Device) PeerErr(p xdev.ProcessID) error {
	if d.core == nil {
		return nil
	}
	return d.core.PeerErr(p.UUID)
}

// Init joins (and if necessary creates) the in-process group named by
// cfg.Group, claiming the core for cfg.Rank.
func (d *Device) Init(cfg xdev.Config) ([]xdev.ProcessID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.initDone {
		return nil, xdev.Errf(DeviceName, "init", "device already initialized")
	}
	if cfg.Size < 1 {
		return nil, xdev.Errf(DeviceName, "init", "job size %d < 1", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, xdev.Errf(DeviceName, "init", "rank %d out of range [0,%d)", cfg.Rank, cfg.Size)
	}
	name := cfg.Group
	if name == "" {
		name = "smp-default"
	}
	board.Lock()
	g := board.groups[name]
	if g == nil {
		g = newGroup(name, cfg.Size)
		board.groups[name] = g
	}
	if g.size != cfg.Size {
		board.Unlock()
		return nil, xdev.Errf(DeviceName, "init", "group %q has size %d, not %d", name, g.size, cfg.Size)
	}
	g.joined++
	board.Unlock()

	d.cfg = cfg
	if cfg.Recorder != nil {
		d.rec = cfg.Recorder
	}
	d.grp = g
	d.core = g.cores[cfg.Rank]
	d.core.SetRecorder(d.rec)
	if cfg.Replay != nil {
		d.core.SetReplay(cfg.Replay)
	}
	d.pids = make([]xdev.ProcessID, cfg.Size)
	for i := range d.pids {
		d.pids[i] = xdev.ProcessID{UUID: uint64(i)}
	}
	d.self = d.pids[cfg.Rank]
	d.initDone = true
	return append([]xdev.ProcessID(nil), d.pids...), nil
}

// ID returns this process's ProcessID.
func (d *Device) ID() xdev.ProcessID { return d.self }

// Finish closes this rank's core, fails its pending requests so no
// blocked caller hangs, and propagates this rank's departure to the
// rest of the group: receives other ranks have pinned on this rank
// fail with an error wrapping xdev.ErrPeerLost. The group is released
// when every member has finished.
func (d *Device) Finish() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.finished.Swap(true) || !d.initDone {
		return nil
	}

	closedErr := &xdev.Error{Dev: DeviceName, Op: "finish", Err: ErrDeviceClosed}
	peerLost := &xdev.Error{
		Dev: DeviceName,
		Op:  fmt.Sprintf("peer %d", d.cfg.Rank),
		Err: fmt.Errorf("rank %d finished: %w", d.cfg.Rank, xdev.ErrPeerLost),
	}
	// Posted receives fail as device-closed; synchronous senders parked
	// unmatched in this mailbox will never be matched now — their Ssend
	// fails with the receiver's departure.
	d.core.Shutdown(closedErr, peerLost)

	// Tell the survivors: receives pinned on this rank cannot complete.
	// The departure is graceful — propagated, but not counted a loss.
	for slot, c := range d.grp.cores {
		if slot == d.cfg.Rank {
			continue
		}
		c.FailPeer(uint64(d.cfg.Rank), devcore.PeerFail{Err: peerLost, Graceful: true, Sticky: true})
	}

	board.Lock()
	d.grp.joined--
	if d.grp.joined == 0 {
		delete(board.groups, d.grp.name)
	}
	board.Unlock()
	return nil
}

// Abort tears the whole group down with the given code: every member's
// pending requests fail with an *xdev.AbortError and their blocked
// Recv/Probe/Peek callers wake. Implements xdev.Aborter.
func (d *Device) Abort(code int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.initDone || d.finished.Load() {
		return nil
	}
	ab := &xdev.AbortError{Code: code, From: d.cfg.Rank}
	if d.rec.Enabled() {
		d.rec.Event(mpe.Aborted, int32(d.cfg.Rank), int32(code), -1, 0)
	}
	for _, c := range d.grp.cores {
		c.SetAborted(ab)
		c.Shutdown(ab, ab)
	}
	return nil
}

// Revoke poisons the matching context on every member's core: posted
// receives, unmatched arrivals (and the synchronous senders parked
// behind them) on the context fail with an error wrapping
// xdev.ErrRevoked and future operations on it fail fast. Propagation
// is direct — the board registry reaches every mailbox in-process, so
// no broadcast protocol is needed. Implements xdev.Revoker.
func (d *Device) Revoke(context int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.initDone || d.finished.Load() {
		return nil
	}
	rerr := &xdev.Error{
		Dev: DeviceName,
		Op:  fmt.Sprintf("context %d", context),
		Err: xdev.ErrRevoked,
	}
	first := false
	for _, c := range d.grp.cores {
		if c.RevokeContext(int32(context), rerr) {
			first = true
		}
	}
	if first && d.rec.Enabled() {
		d.rec.Event(mpe.Revoked, int32(d.cfg.Rank), -1, int32(context), 0)
	}
	return nil
}

var _ xdev.Revoker = (*Device)(nil)

// SendOverhead reports the per-message device overhead (none: headers
// never hit a wire).
func (d *Device) SendOverhead() int { return 0 }

// RecvOverhead reports the per-message device overhead.
func (d *Device) RecvOverhead() int { return 0 }

func (d *Device) isend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int, sync bool) (*devcore.Request, error) {
	if !d.initDone || d.finished.Load() {
		return nil, xdev.Errf(DeviceName, "isend", "device not ready")
	}
	if dst.UUID >= uint64(len(d.grp.cores)) {
		return nil, xdev.Errf(DeviceName, "isend", "unknown process %v", dst)
	}
	if err := d.core.CtxErr(int32(context)); err != nil {
		return nil, err
	}
	dstCore := d.grp.cores[dst.UUID]
	sreq := d.core.NewRequest(devcore.SendReq, nil)
	env := match.Concrete{Ctx: int32(context), Tag: int32(tag), Src: uint64(d.cfg.Rank)}
	wireLen := buf.WireLen()
	st := xdev.Status{Source: d.self, Tag: tag, Bytes: wireLen}

	var seq uint64
	if d.rec.Enabled() || d.core.ReplayActive() {
		// The seq matters for cross-rank trace correlation and as the
		// record/replay match stamp, so the counter bump is paid only
		// when either is on. Under a replay session the stamp is drawn
		// from the deterministic per-(dst,ctx,tag) stream.
		seq = d.core.NextSeqSend(dst.UUID, int32(context), int32(tag))
	}
	if d.rec.Enabled() {
		sreq.TraceSeq(int32(dst.UUID), int32(tag), int32(context), seq)
		d.rec.Event(mpe.SendBegin, int32(dst.UUID), int32(tag), int32(context), int64(wireLen))
	}
	if d.core.ReplayActive() {
		sreq.SetReplayID(int64(dst.UUID), int32(tag), int32(context), seq)
	}
	d.core.Counters.EagerSent.Add(1)
	d.core.Counters.BytesSent.Add(uint64(wireLen))

	// One in-memory copy of the wire form, from a pooled slice; the
	// destination core matches it on this (the sender's) thread.
	arr := &devcore.Arrival{
		Src: uint64(d.cfg.Rank), Tag: int32(tag), Ctx: int32(context),
		Seq: seq, WireLen: wireLen, Data: devcore.WireCopy(buf),
	}
	if sync {
		arr.SyncReq = sreq
	}
	rreq, matched, err := dstCore.MatchOrPark(env, arr)
	if err != nil {
		devcore.PutSlice(arr.Data)
		if errors.Is(err, devcore.ErrClosed) {
			return nil, &xdev.Error{
				Dev: DeviceName, Op: "isend",
				Err: fmt.Errorf("destination mailbox %d closed: %w", dst.UUID, xdev.ErrPeerLost),
			}
		}
		return nil, err // job aborted
	}
	if matched {
		lerr := rreq.Buf.LoadWire(arr.Data)
		devcore.PutSlice(arr.Data)
		rreq.Complete(xdev.Status{Source: d.self, Tag: tag, Bytes: wireLen}, lerr)
		if d.rec.Enabled() {
			d.rec.EventSeq(mpe.EagerOut, int32(dst.UUID), int32(tag), int32(context), int64(wireLen), seq)
		}
		sreq.Complete(st, nil)
		return sreq, nil
	}
	if d.rec.Enabled() {
		d.rec.EventSeq(mpe.EagerOut, int32(dst.UUID), int32(tag), int32(context), int64(wireLen), seq)
	}
	if !sync {
		sreq.Complete(st, nil)
	}
	return sreq, nil
}

// ISend starts a standard-mode non-blocking send.
func (d *Device) ISend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	return d.isend(buf, dst, tag, context, false)
}

// Send is the blocking standard-mode send.
func (d *Device) Send(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	r, err := d.isend(buf, dst, tag, context, false)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

// ISsend starts a synchronous-mode non-blocking send.
func (d *Device) ISsend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	return d.isend(buf, dst, tag, context, true)
}

// Ssend is the blocking synchronous-mode send.
func (d *Device) Ssend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	r, err := d.isend(buf, dst, tag, context, true)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

func (d *Device) pattern(src xdev.ProcessID, tag, context int) (match.Pattern, error) {
	p := match.Pattern{Ctx: int32(context)}
	if tag == xdev.AnyTag {
		p.Tag = match.AnyTag
	} else {
		p.Tag = int32(tag)
	}
	if src.IsAnySource() {
		p.Src = match.AnySource
	} else {
		if src.UUID >= uint64(d.cfg.Size) {
			return p, xdev.Errf(DeviceName, "recv", "unknown process %v", src)
		}
		p.Src = src.UUID
	}
	return p, nil
}

// IRecv posts a non-blocking receive.
func (d *Device) IRecv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Request, error) {
	if !d.initDone || d.finished.Load() {
		return nil, xdev.Errf(DeviceName, "irecv", "device not ready")
	}
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return nil, err
	}
	req := d.core.NewRequest(devcore.RecvReq, buf)
	if d.rec.Enabled() {
		peer := int32(-1)
		if !src.IsAnySource() {
			peer = int32(p.Src)
		}
		req.Trace(peer, int32(tag), int32(context))
		d.rec.Event(mpe.RecvPosted, peer, int32(tag), int32(context), 0)
	}
	if err := d.irecvReq(req, p); err != nil {
		return nil, err
	}
	return req, nil
}

// irecvReq is the post-creation half of IRecv: post req, or deliver a
// matching parked arrival into it. A nil return means the core now
// owns the request's lifecycle; devcore.ErrClaimed means a dual-posted
// request was won by the sibling core first (req untouched here).
func (d *Device) irecvReq(req *devcore.Request, p match.Pattern) error {
	arr, err := d.core.PostRecv(p, req, nil)
	if err != nil {
		return err
	}
	if arr == nil {
		return nil
	}
	st := xdev.Status{Source: d.pids[arr.Src], Tag: int(arr.Tag), Bytes: arr.WireLen}
	lerr := req.Buf.LoadWire(arr.Data)
	devcore.PutSlice(arr.Data)
	arr.Data = nil
	if arr.SyncReq != nil {
		arr.SyncReq.Complete(st, nil)
	}
	req.Complete(st, lerr)
	return nil
}

// PostRecvReq posts a receive on an externally created request — the
// composition hook hybriddev uses to dual-post one ANY_SOURCE request
// into this device and its wire sibling. The caller owns request
// creation and tracing.
func (d *Device) PostRecvReq(req *devcore.Request, src xdev.ProcessID, tag, context int) error {
	if !d.initDone || d.finished.Load() {
		return xdev.Errf(DeviceName, "irecv", "device not ready")
	}
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return err
	}
	return d.irecvReq(req, p)
}

// Core exposes this rank's mailbox core for composition (hybriddev's
// shared completion queue and notification hooks).
func (d *Device) Core() *devcore.Core { return d.core }

// Recv blocks until a matching message has been received.
func (d *Device) Recv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	r, err := d.IRecv(buf, src, tag, context)
	if err != nil {
		return xdev.Status{}, err
	}
	return r.Wait()
}

// IProbe checks for a matching message without receiving it.
func (d *Device) IProbe(src xdev.ProcessID, tag, context int) (xdev.Status, bool, error) {
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return xdev.Status{}, false, err
	}
	arr, err := d.core.IProbe(p, "iprobe")
	if err != nil {
		return xdev.Status{}, false, err
	}
	if arr == nil {
		return xdev.Status{}, false, nil
	}
	return xdev.Status{Source: d.pids[arr.Src], Tag: int(arr.Tag), Bytes: arr.WireLen}, true, nil
}

// Probe blocks until a matching message is available.
func (d *Device) Probe(src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return xdev.Status{}, err
	}
	arr, err := d.core.Probe(p, "probe")
	if err != nil {
		return xdev.Status{}, err
	}
	return xdev.Status{Source: d.pids[arr.Src], Tag: int(arr.Tag), Bytes: arr.WireLen}, nil
}

// Peek blocks until some request completes and returns it.
func (d *Device) Peek() (xdev.Request, error) {
	if d.core == nil {
		return nil, ErrDeviceClosed
	}
	r, err := d.core.Peek()
	if err != nil {
		return nil, err
	}
	return r, nil
}

// ReplayActive reports whether a record/replay session is installed
// (mpjdev's WaitAny skips its Test fast path while one is).
func (d *Device) ReplayActive() bool { return d.core != nil && d.core.ReplayActive() }

var _ xdev.Device = (*Device)(nil)
