// Package smpdev is a shared-memory xdev device for ranks running in a
// single OS process — the SMP-cluster scenario that motivates the
// paper's emphasis on thread safety (§I), and the "shared memory
// device" its future work anticipates. Messages move by a single
// in-memory copy of the buffer's wire form; matching uses the same
// four-key engine as niodev; peek/completion semantics are identical.
package smpdev

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mpj/internal/cqueue"
	"mpj/internal/match"
	"mpj/internal/mpe"
	"mpj/internal/mpjbuf"
	"mpj/internal/xdev"
)

// DeviceName is the registry name of this device.
const DeviceName = "smpdev"

// ErrDeviceClosed is returned for operations on a finished device. It
// wraps xdev.ErrDeviceClosed for device-agnostic errors.Is tests.
var ErrDeviceClosed = fmt.Errorf("smpdev: %w", xdev.ErrDeviceClosed)

func init() {
	xdev.Register(DeviceName, func() xdev.Device { return New() })
}

// board is the process-global registry of SMP job groups.
var board = struct {
	sync.Mutex
	groups map[string]*group
}{groups: make(map[string]*group)}

// group is one SMP job: a set of mailboxes indexed by rank.
type group struct {
	name   string
	size   int
	boxes  []*mailbox
	joined int
}

// mailbox is the per-rank receive side. Matching happens on the
// sender's thread, so receive-side counters and the owner's event
// recorder live here: the sender attributes Matched/Unexpected to the
// destination rank, as a network device's input handler would.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	posted  *match.PatternSet[*request]
	arrived *match.ItemSet[*arrival]
	closed  bool
	// dead records source ranks that left the group (or died) with the
	// propagated error, so receives pinned on them fail instead of
	// waiting forever. Buffered arrivals from a dead source remain
	// deliverable.
	dead map[uint64]error
	// aborted is the job-wide abort error, set on every box by Abort.
	aborted error
	ctr     mpe.Counters
	rec     mpe.Recorder // owner's recorder; set at Init under mu
	owner   *Device      // owning device; set at Init under mu
}

func newMailbox() *mailbox {
	m := &mailbox{
		posted:  match.NewPatternSet[*request](),
		arrived: match.NewItemSet[*arrival](),
		dead:    make(map[uint64]error),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// arrival is an unmatched message parked in a mailbox.
type arrival struct {
	src     uint64
	tag     int32
	wireLen int
	data    []byte
	syncReq *request // synchronous sender awaiting match, if any
}

// Device implements xdev.Device for in-process ranks.
type Device struct {
	cfg      xdev.Config
	self     xdev.ProcessID
	pids     []xdev.ProcessID
	grp      *group
	box      *mailbox
	cq       *cqueue.Queue[*request]
	mu       sync.Mutex
	initDone bool
	// finished is atomic: operations check it lock-free on their fast
	// path while Finish (possibly on another goroutine) sets it.
	finished atomic.Bool

	stats mpe.Counters // send-side counters; receive side is in box.ctr
	rec   mpe.Recorder
}

// New returns an uninitialized smpdev device.
func New() *Device { return &Device{cq: cqueue.New[*request](), rec: mpe.Nop{}} }

// Stats returns a snapshot of the device's activity counters: its
// send-side counters plus the receive-side counters of its mailbox.
func (d *Device) Stats() mpe.CounterSnapshot {
	s := d.stats.Snapshot()
	if d.box != nil {
		s = s.Add(d.box.ctr.Snapshot())
	}
	return s
}

// Recorder exposes the device's event recorder (mpe.Instrumented).
func (d *Device) Recorder() mpe.Recorder { return d.rec }

// Init joins (and if necessary creates) the in-process group named by
// cfg.Group, claiming the mailbox for cfg.Rank.
func (d *Device) Init(cfg xdev.Config) ([]xdev.ProcessID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.initDone {
		return nil, xdev.Errf(DeviceName, "init", "device already initialized")
	}
	if cfg.Size < 1 {
		return nil, xdev.Errf(DeviceName, "init", "job size %d < 1", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, xdev.Errf(DeviceName, "init", "rank %d out of range [0,%d)", cfg.Rank, cfg.Size)
	}
	name := cfg.Group
	if name == "" {
		name = "smp-default"
	}
	board.Lock()
	g := board.groups[name]
	if g == nil {
		g = &group{name: name, size: cfg.Size, boxes: make([]*mailbox, cfg.Size)}
		for i := range g.boxes {
			g.boxes[i] = newMailbox()
		}
		board.groups[name] = g
	}
	if g.size != cfg.Size {
		board.Unlock()
		return nil, xdev.Errf(DeviceName, "init", "group %q has size %d, not %d", name, g.size, cfg.Size)
	}
	g.joined++
	board.Unlock()

	d.cfg = cfg
	if cfg.Recorder != nil {
		d.rec = cfg.Recorder
	}
	d.grp = g
	d.box = g.boxes[cfg.Rank]
	d.box.mu.Lock()
	d.box.rec = d.rec
	d.box.owner = d
	d.box.mu.Unlock()
	d.pids = make([]xdev.ProcessID, cfg.Size)
	for i := range d.pids {
		d.pids[i] = xdev.ProcessID{UUID: uint64(i)}
	}
	d.self = d.pids[cfg.Rank]
	d.initDone = true
	return append([]xdev.ProcessID(nil), d.pids...), nil
}

// ID returns this process's ProcessID.
func (d *Device) ID() xdev.ProcessID { return d.self }

// Finish closes this rank's mailbox, fails its pending requests so no
// blocked caller hangs, and propagates this rank's departure to the
// rest of the group: receives other ranks have pinned on this rank
// fail with an error wrapping xdev.ErrPeerLost. The group is released
// when every member has finished.
func (d *Device) Finish() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.finished.Swap(true) || !d.initDone {
		return nil
	}

	closedErr := &xdev.Error{Dev: DeviceName, Op: "finish", Err: ErrDeviceClosed}
	d.box.mu.Lock()
	d.box.closed = true
	victims := d.box.posted.TakeFunc(func(match.Pattern, *request) bool { return true })
	// Synchronous senders parked unmatched in this mailbox will never
	// be matched now; their Ssend fails with the receiver's departure.
	var syncs []*request
	for _, a := range d.box.arrived.TakeFunc(func(a *arrival) bool { return a.syncReq != nil }) {
		syncs = append(syncs, a.syncReq)
	}
	d.box.cond.Broadcast()
	d.box.mu.Unlock()
	for _, r := range victims {
		r.complete(xdev.Status{}, closedErr)
	}
	peerLost := &xdev.Error{
		Dev: DeviceName,
		Op:  fmt.Sprintf("peer %d", d.cfg.Rank),
		Err: fmt.Errorf("rank %d finished: %w", d.cfg.Rank, xdev.ErrPeerLost),
	}
	for _, r := range syncs {
		r.complete(xdev.Status{}, peerLost)
	}
	d.cq.Close()

	// Tell the survivors: receives pinned on this rank cannot complete.
	for slot, box := range d.grp.boxes {
		if slot == d.cfg.Rank {
			continue
		}
		box.mu.Lock()
		if box.dead[uint64(d.cfg.Rank)] == nil {
			box.dead[uint64(d.cfg.Rank)] = peerLost
		}
		pinned := box.posted.TakeFunc(func(p match.Pattern, _ *request) bool {
			return p.Src == uint64(d.cfg.Rank)
		})
		box.cond.Broadcast()
		box.mu.Unlock()
		for _, r := range pinned {
			r.complete(xdev.Status{}, peerLost)
		}
	}

	board.Lock()
	d.grp.joined--
	if d.grp.joined == 0 {
		delete(board.groups, d.grp.name)
	}
	board.Unlock()
	return nil
}

// Abort tears the whole group down with the given code: every member's
// pending requests fail with an *xdev.AbortError and their blocked
// Recv/Probe/Peek callers wake. Implements xdev.Aborter.
func (d *Device) Abort(code int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.initDone || d.finished.Load() {
		return nil
	}
	ab := &xdev.AbortError{Code: code, From: d.cfg.Rank}
	if d.rec.Enabled() {
		d.rec.Event(mpe.Aborted, int32(d.cfg.Rank), int32(code), -1, 0)
	}
	for _, box := range d.grp.boxes {
		box.mu.Lock()
		if box.aborted == nil {
			box.aborted = ab
		}
		victims := box.posted.TakeFunc(func(match.Pattern, *request) bool { return true })
		for _, a := range box.arrived.TakeFunc(func(a *arrival) bool { return a.syncReq != nil }) {
			victims = append(victims, a.syncReq)
		}
		owner := box.owner
		box.cond.Broadcast()
		box.mu.Unlock()
		for _, r := range victims {
			r.complete(xdev.Status{}, ab)
		}
		if owner != nil {
			owner.cq.Close()
		}
	}
	return nil
}

// SendOverhead reports the per-message device overhead (none: headers
// never hit a wire).
func (d *Device) SendOverhead() int { return 0 }

// RecvOverhead reports the per-message device overhead.
func (d *Device) RecvOverhead() int { return 0 }

// request implements xdev.Request.
type request struct {
	dev        *Device
	buf        *mpjbuf.Buffer
	done       chan struct{}
	status     xdev.Status
	err        error
	mu         sync.Mutex
	attachment any

	// Tracing envelope (see niodev): t0 < 0 means untraced.
	t0   int64
	send bool
	peer int32
	tag  int32
	ctx  int32
}

func (d *Device) newRequest(buf *mpjbuf.Buffer) *request {
	return &request{dev: d, buf: buf, t0: -1, done: make(chan struct{})}
}

func (r *request) trace(send bool, peer, tag, ctx int32) {
	r.t0 = r.dev.rec.Now()
	r.send, r.peer, r.tag, r.ctx = send, peer, tag, ctx
}

func (r *request) complete(st xdev.Status, err error) {
	if err != nil {
		r.dev.stats.RequestsFailed.Add(1)
	}
	if r.t0 >= 0 {
		typ := mpe.RecvMatched
		if r.send {
			typ = mpe.SendEnd
		}
		r.dev.rec.Span(typ, r.peer, r.tag, r.ctx, int64(st.Bytes), r.t0)
	}
	r.status = st
	r.err = err
	close(r.done)
	r.dev.cq.Push(r)
}

// Wait blocks until the request completes.
func (r *request) Wait() (xdev.Status, error) {
	<-r.done
	r.dev.cq.Collect(r)
	return r.status, r.err
}

// Test reports completion without blocking.
func (r *request) Test() (xdev.Status, bool, error) {
	select {
	case <-r.done:
		r.dev.cq.Collect(r)
		return r.status, true, r.err
	default:
		return xdev.Status{}, false, nil
	}
}

// SetAttachment stores opaque upper-layer state on the request.
func (r *request) SetAttachment(v any) {
	r.mu.Lock()
	r.attachment = v
	r.mu.Unlock()
}

// Attachment returns the value stored by SetAttachment.
func (r *request) Attachment() any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attachment
}

func (d *Device) isend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int, sync bool) (*request, error) {
	if !d.initDone || d.finished.Load() {
		return nil, xdev.Errf(DeviceName, "isend", "device not ready")
	}
	if dst.UUID >= uint64(len(d.grp.boxes)) {
		return nil, xdev.Errf(DeviceName, "isend", "unknown process %v", dst)
	}
	box := d.grp.boxes[dst.UUID]
	sreq := d.newRequest(nil)
	env := match.Concrete{Ctx: int32(context), Tag: int32(tag), Src: uint64(d.cfg.Rank)}
	st := xdev.Status{Source: d.self, Tag: tag, Bytes: buf.WireLen()}

	wireLen := buf.WireLen()
	if d.rec.Enabled() {
		sreq.trace(true, int32(dst.UUID), int32(tag), int32(context))
		d.rec.Event(mpe.SendBegin, int32(dst.UUID), int32(tag), int32(context), int64(wireLen))
	}
	d.stats.EagerSent.Add(1)
	d.stats.BytesSent.Add(uint64(wireLen))

	box.mu.Lock()
	if box.aborted != nil {
		ab := box.aborted
		box.mu.Unlock()
		return nil, ab
	}
	if box.closed {
		box.mu.Unlock()
		return nil, &xdev.Error{
			Dev: DeviceName, Op: "isend",
			Err: fmt.Errorf("destination mailbox %d closed: %w", dst.UUID, xdev.ErrPeerLost),
		}
	}
	if rreq, ok := box.posted.Match(env); ok {
		box.ctr.Matched.Add(1)
		box.mu.Unlock()
		err := rreq.buf.LoadWire(buf.Wire())
		rreq.complete(xdev.Status{Source: d.self, Tag: tag, Bytes: buf.WireLen()}, err)
		if d.rec.Enabled() {
			d.rec.Event(mpe.EagerOut, int32(dst.UUID), int32(tag), int32(context), int64(wireLen))
		}
		sreq.complete(st, nil)
		return sreq, nil
	}
	box.ctr.Unexpected.Add(1)
	if box.rec != nil && box.rec.Enabled() {
		box.rec.Event(mpe.RecvUnexpected, int32(d.cfg.Rank), int32(tag), int32(context), int64(wireLen))
	}
	arr := &arrival{src: uint64(d.cfg.Rank), tag: int32(tag), wireLen: buf.WireLen(), data: buf.Wire()}
	if sync {
		arr.syncReq = sreq
	}
	box.arrived.Add(env, arr)
	box.cond.Broadcast()
	box.mu.Unlock()
	if d.rec.Enabled() {
		d.rec.Event(mpe.EagerOut, int32(dst.UUID), int32(tag), int32(context), int64(wireLen))
	}
	if !sync {
		sreq.complete(st, nil)
	}
	return sreq, nil
}

// ISend starts a standard-mode non-blocking send.
func (d *Device) ISend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	return d.isend(buf, dst, tag, context, false)
}

// Send is the blocking standard-mode send.
func (d *Device) Send(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	r, err := d.isend(buf, dst, tag, context, false)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

// ISsend starts a synchronous-mode non-blocking send.
func (d *Device) ISsend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) (xdev.Request, error) {
	return d.isend(buf, dst, tag, context, true)
}

// Ssend is the blocking synchronous-mode send.
func (d *Device) Ssend(buf *mpjbuf.Buffer, dst xdev.ProcessID, tag, context int) error {
	r, err := d.isend(buf, dst, tag, context, true)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

func (d *Device) pattern(src xdev.ProcessID, tag, context int) (match.Pattern, error) {
	p := match.Pattern{Ctx: int32(context)}
	if tag == xdev.AnyTag {
		p.Tag = match.AnyTag
	} else {
		p.Tag = int32(tag)
	}
	if src.IsAnySource() {
		p.Src = match.AnySource
	} else {
		if src.UUID >= uint64(d.cfg.Size) {
			return p, xdev.Errf(DeviceName, "recv", "unknown process %v", src)
		}
		p.Src = src.UUID
	}
	return p, nil
}

// IRecv posts a non-blocking receive.
func (d *Device) IRecv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Request, error) {
	if !d.initDone || d.finished.Load() {
		return nil, xdev.Errf(DeviceName, "irecv", "device not ready")
	}
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return nil, err
	}
	req := d.newRequest(buf)
	if d.rec.Enabled() {
		peer := int32(-1)
		if !src.IsAnySource() {
			peer = int32(p.Src)
		}
		req.trace(false, peer, int32(tag), int32(context))
		d.rec.Event(mpe.RecvPosted, peer, int32(tag), int32(context), 0)
	}
	d.box.mu.Lock()
	if arr, ok := d.box.arrived.Match(p); ok {
		d.box.mu.Unlock()
		st := xdev.Status{Source: d.pids[arr.src], Tag: int(arr.tag), Bytes: arr.wireLen}
		err := buf.LoadWire(arr.data)
		if arr.syncReq != nil {
			arr.syncReq.complete(st, nil)
		}
		req.complete(st, err)
		return req, nil
	}
	if ab := d.box.aborted; ab != nil {
		d.box.mu.Unlock()
		return nil, ab
	}
	if p.Src != match.AnySource {
		if err := d.box.dead[p.Src]; err != nil {
			d.box.mu.Unlock()
			return nil, err
		}
	}
	d.box.posted.Add(p, req)
	d.box.mu.Unlock()
	return req, nil
}

// Recv blocks until a matching message has been received.
func (d *Device) Recv(buf *mpjbuf.Buffer, src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	r, err := d.IRecv(buf, src, tag, context)
	if err != nil {
		return xdev.Status{}, err
	}
	return r.Wait()
}

// IProbe checks for a matching message without receiving it.
func (d *Device) IProbe(src xdev.ProcessID, tag, context int) (xdev.Status, bool, error) {
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return xdev.Status{}, false, err
	}
	d.box.mu.Lock()
	defer d.box.mu.Unlock()
	arr, ok := d.box.arrived.Peek(p)
	if !ok {
		if ab := d.box.aborted; ab != nil {
			return xdev.Status{}, false, ab
		}
		if d.box.closed {
			return xdev.Status{}, false, fmt.Errorf("smpdev: iprobe: %w", ErrDeviceClosed)
		}
		if p.Src != match.AnySource {
			if err := d.box.dead[p.Src]; err != nil {
				return xdev.Status{}, false, err
			}
		}
		return xdev.Status{}, false, nil
	}
	return xdev.Status{Source: d.pids[arr.src], Tag: int(arr.tag), Bytes: arr.wireLen}, true, nil
}

// Probe blocks until a matching message is available.
func (d *Device) Probe(src xdev.ProcessID, tag, context int) (xdev.Status, error) {
	p, err := d.pattern(src, tag, context)
	if err != nil {
		return xdev.Status{}, err
	}
	d.box.mu.Lock()
	defer d.box.mu.Unlock()
	for {
		if arr, ok := d.box.arrived.Peek(p); ok {
			return xdev.Status{Source: d.pids[arr.src], Tag: int(arr.tag), Bytes: arr.wireLen}, nil
		}
		if ab := d.box.aborted; ab != nil {
			return xdev.Status{}, ab
		}
		if d.box.closed {
			return xdev.Status{}, fmt.Errorf("smpdev: probe: %w", ErrDeviceClosed)
		}
		if p.Src != match.AnySource {
			if err := d.box.dead[p.Src]; err != nil {
				return xdev.Status{}, err
			}
		}
		d.box.cond.Wait()
	}
}

// Peek blocks until some request completes and returns it.
func (d *Device) Peek() (xdev.Request, error) {
	r, err := d.cq.Peek()
	if err != nil {
		if d.box != nil {
			d.box.mu.Lock()
			ab := d.box.aborted
			d.box.mu.Unlock()
			if ab != nil {
				return nil, ab
			}
		}
		return nil, ErrDeviceClosed
	}
	return r, nil
}

var _ xdev.Device = (*Device)(nil)
