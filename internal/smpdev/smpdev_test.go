package smpdev

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mpj/internal/devtest"
	"mpj/internal/xdev"
)

var groupCounter atomic.Int64

func runner(t *testing.T, n int, fn func(d xdev.Device, rank int, pids []xdev.ProcessID)) {
	t.Helper()
	group := fmt.Sprintf("smpdev-test-%d", groupCounter.Add(1))
	devs := make([]*Device, n)
	pidLists := make([][]xdev.ProcessID, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		devs[i] = New()
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			pidLists[rank], errs[rank] = devs[rank].Init(xdev.Config{Rank: rank, Size: n, Group: group})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", i, err)
		}
	}
	defer func() {
		for _, d := range devs {
			d.Finish()
		}
	}()
	var jobWG sync.WaitGroup
	for i := 0; i < n; i++ {
		jobWG.Add(1)
		go func(rank int) {
			defer jobWG.Done()
			fn(devs[rank], rank, pidLists[rank])
		}(i)
	}
	jobWG.Wait()
}

func TestConformance(t *testing.T) {
	devtest.RunConformance(t, runner, devtest.Options{HasPeek: true})
}

func TestGroupSizeMismatch(t *testing.T) {
	group := fmt.Sprintf("smpdev-mismatch-%d", groupCounter.Add(1))
	a := New()
	if _, err := a.Init(xdev.Config{Rank: 0, Size: 2, Group: group}); err != nil {
		t.Fatal(err)
	}
	defer a.Finish()
	b := New()
	if _, err := b.Init(xdev.Config{Rank: 0, Size: 3, Group: group}); err == nil {
		t.Fatal("size mismatch accepted")
		b.Finish()
	}
}

func TestGroupReleasedAfterAllFinish(t *testing.T) {
	group := fmt.Sprintf("smpdev-release-%d", groupCounter.Add(1))
	a, b := New(), New()
	if _, err := a.Init(xdev.Config{Rank: 0, Size: 2, Group: group}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Init(xdev.Config{Rank: 1, Size: 2, Group: group}); err != nil {
		t.Fatal(err)
	}
	a.Finish()
	b.Finish()
	// The name must be reusable with a different size now.
	c := New()
	if _, err := c.Init(xdev.Config{Rank: 0, Size: 1, Group: group}); err != nil {
		t.Fatalf("group not released: %v", err)
	}
	c.Finish()
}

func TestSendAfterFinish(t *testing.T) {
	group := fmt.Sprintf("smpdev-closed-%d", groupCounter.Add(1))
	d := New()
	if _, err := d.Init(xdev.Config{Rank: 0, Size: 1, Group: group}); err != nil {
		t.Fatal(err)
	}
	d.Finish()
	if _, err := d.ISend(nil, xdev.ProcessID{UUID: 0}, 0, 0); err == nil {
		t.Fatal("send accepted after Finish")
	}
	if _, err := d.IRecv(nil, xdev.ProcessID{UUID: 0}, 0, 0); err == nil {
		t.Fatal("recv accepted after Finish")
	}
}

func TestDeviceRegistry(t *testing.T) {
	d, err := xdev.NewInstance(DeviceName)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*Device); !ok {
		t.Fatalf("registry returned %T", d)
	}
}

// TestChaosConformance runs the shared failure-semantics suite:
// blocked calls must fail typed, not hang, under Finish and peer death.
func TestChaosConformance(t *testing.T) {
	devtest.RunChaos(t, runner, devtest.ChaosOptions{HasPeek: true})
}

// TestRecoveryConformance runs the survivor-continues recovery suite:
// kill a rank mid-operation, then Revoke/Shrink/Agree/Restore.
func TestRecoveryConformance(t *testing.T) {
	devtest.RunRecovery(t, runner)
}
