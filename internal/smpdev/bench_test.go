package smpdev

import (
	"fmt"
	"testing"

	"mpj/internal/mpjbuf"
	"mpj/internal/xdev"
)

// BenchmarkManyOutstandingReceives measures matching cost with a deep
// posted-receive set: the receiver keeps `depth` receives outstanding
// on distinct tags and the sender satisfies the most recently posted
// one, which a linear scan reaches only after walking every older
// entry. The four-key engine in devcore makes the lookup O(1) in the
// depth, so ns/op should be flat across sub-benchmarks.
func BenchmarkManyOutstandingReceives(b *testing.B) {
	for _, depth := range []int{1, 64, 512, 4096} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			group := fmt.Sprintf("smpdev-bench-%d", groupCounter.Add(1))
			snd, rcv := New(), New()
			done := make(chan error, 1)
			go func() {
				_, err := rcv.Init(xdev.Config{Rank: 1, Size: 2, Group: group})
				done <- err
			}()
			pids, err := snd.Init(xdev.Config{Rank: 0, Size: 2, Group: group})
			if err != nil {
				b.Fatal(err)
			}
			if err := <-done; err != nil {
				b.Fatal(err)
			}
			defer snd.Finish()
			defer rcv.Finish()

			// Hot tag depth-1 is the newest posted receive; tags
			// [0,depth-1) stay outstanding for the whole run.
			cold := make([]xdev.Request, 0, depth-1)
			for tag := 0; tag < depth-1; tag++ {
				r, err := rcv.IRecv(mpjbuf.New(0), pids[0], tag, 0)
				if err != nil {
					b.Fatal(err)
				}
				cold = append(cold, r)
			}
			hotTag := depth - 1
			payload := mpjbuf.New(16)
			if err := payload.WriteLongs([]int64{1}, 0, 1); err != nil {
				b.Fatal(err)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rb := mpjbuf.New(0)
				rreq, err := rcv.IRecv(rb, pids[0], hotTag, 0)
				if err != nil {
					b.Fatal(err)
				}
				if err := snd.Send(payload, pids[1], hotTag, 0); err != nil {
					b.Fatal(err)
				}
				if _, err := rreq.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = cold
		})
	}
}
