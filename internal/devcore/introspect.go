package devcore

import (
	"sort"

	"mpj/internal/replay"
)

// PendingState is one named protocol pending set's live depth.
type PendingState struct {
	Name string `json:"name"`
	Len  int    `json:"len"`
}

// PeerState is one slot's recorded death, as seen by this core.
type PeerState struct {
	Slot uint64 `json:"slot"`
	Err  string `json:"err"`
}

// CoreState is a point-in-time snapshot of the progress engine for the
// live-telemetry introspection endpoint: queue depths, in-flight
// protocol exchanges, and failure state, all read under the core lock.
type CoreState struct {
	Device string `json:"device"`
	// Posted is the depth of the posted-receive set; Unexpected the
	// depth of the arrived-but-unmatched set.
	Posted     int `json:"posted"`
	Unexpected int `json:"unexpected"`
	// Pending lists each registered protocol pending set (rendezvous
	// sends awaiting RTR, receives awaiting rendezvous data, sync
	// sends awaiting ACK, ...) with its depth.
	Pending []PendingState `json:"pending,omitempty"`
	// PeersDead lists slots with recorded (sticky) death errors.
	PeersDead []PeerState `json:"peersDead,omitempty"`
	// Revoked lists matching contexts poisoned by RevokeContext, in
	// ascending order.
	Revoked []int32 `json:"revoked,omitempty"`
	Aborted string  `json:"aborted,omitempty"`
	Closed  bool    `json:"closed"`
	// Seq is the last sequence number handed out — total seq-stamped
	// messages originated by this rank.
	Seq uint64 `json:"seq"`
	// Replay is the record/replay session state (mode, decision counts,
	// stalls, first divergence); absent when record/replay is off.
	Replay *replay.State `json:"replay,omitempty"`
}

// Introspect snapshots the core's live state.
func (c *Core) Introspect() CoreState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CoreState{
		Device:     c.dev,
		Posted:     c.posted.Len(),
		Unexpected: c.arrived.Len(),
		Closed:     c.closed,
		Seq:        c.seq.Load(),
	}
	for _, s := range c.pending {
		st.Pending = append(st.Pending, PendingState{Name: s.name, Len: len(s.m)})
	}
	for slot, err := range c.peerDead {
		st.PeersDead = append(st.PeersDead, PeerState{Slot: slot, Err: err.Error()})
	}
	sort.Slice(st.PeersDead, func(i, j int) bool { return st.PeersDead[i].Slot < st.PeersDead[j].Slot })
	for ctx := range c.revoked {
		st.Revoked = append(st.Revoked, ctx)
	}
	sort.Slice(st.Revoked, func(i, j int) bool { return st.Revoked[i] < st.Revoked[j] })
	if c.aborted != nil {
		st.Aborted = c.aborted.Error()
	}
	if s := c.session.Load(); s != nil {
		rs := s.State()
		st.Replay = &rs
	}
	return st
}
